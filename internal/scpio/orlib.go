package scpio

import (
	"fmt"
	"io"
)

// ORLibReader streams a Beasley OR-Library "scp" instance:
//
//	m n
//	cost_1 ... cost_n
//	k_1  col ... col      (for each row i: its column count, then the
//	k_2  col ... col       1-based columns covering it, free-format)
//	...
//
// All tokens are whitespace separated and may wrap lines arbitrarily.
// The header (counts and the n costs) is read eagerly — O(n) memory —
// and rows stream one at a time through Next, so an instance with
// millions of rows never materialises.
type ORLibReader struct {
	lx    *Lexer
	nrows int
	ncols int
	cost  []int
	next  int
}

// NewORLibReader parses the header: the row/column counts and the
// column costs.
func NewORLibReader(r io.Reader) (*ORLibReader, error) {
	lx := NewLexer(r)
	m, err := lx.Int()
	if err != nil {
		return nil, fmt.Errorf("line %d: reading row count: %w", lx.Line(), err)
	}
	n, err := lx.Int()
	if err != nil {
		return nil, fmt.Errorf("line %d: reading column count: %w", lx.Line(), err)
	}
	if m < 0 || n <= 0 || m > MaxDim || n > MaxDim {
		return nil, lx.Errf("invalid size %d x %d", m, n)
	}
	cost := make([]int, n)
	for j := range cost {
		if cost[j], err = lx.Int(); err != nil {
			return nil, fmt.Errorf("line %d: reading cost %d: %w", lx.Line(), j, err)
		}
	}
	return &ORLibReader{lx: lx, nrows: m, ncols: n, cost: cost}, nil
}

// NumRows returns the declared row count.
func (o *ORLibReader) NumRows() int { return o.nrows }

// NumCols returns the declared column count.
func (o *ORLibReader) NumCols() int { return o.ncols }

// Cost returns the column cost vector (owned by the reader).
func (o *ORLibReader) Cost() []int { return o.cost }

// Next returns the next row's 0-based column ids, in file order,
// appended to buf[:0] (pass the previous return value to reuse its
// backing).  After the declared number of rows it returns io.EOF;
// trailing bytes are ignored, as the historical reader did.
func (o *ORLibReader) Next(buf []int) ([]int, error) {
	if o.next >= o.nrows {
		return nil, io.EOF
	}
	i := o.next
	o.next++
	k, err := o.lx.Int()
	if err != nil {
		return nil, fmt.Errorf("line %d: reading degree of row %d: %w", o.lx.Line(), i, err)
	}
	if k < 0 {
		return nil, o.lx.Errf("row %d has negative degree", i)
	}
	row := buf[:0]
	for t := 0; t < k; t++ {
		col, err := o.lx.Int()
		if err != nil {
			return nil, fmt.Errorf("line %d: reading row %d: %w", o.lx.Line(), i, err)
		}
		if col < 1 || col > o.ncols {
			return nil, o.lx.Errf("row %d references column %d of %d", i, col, o.ncols)
		}
		row = append(row, col-1)
	}
	return row, nil
}
