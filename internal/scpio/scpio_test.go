package scpio

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

// iotaReader hands out one byte per Read call, forcing every buffer
// boundary the lexer can hit.
type byteAtATime struct{ s string }

func (b *byteAtATime) Read(p []byte) (int, error) {
	if len(b.s) == 0 {
		return 0, io.EOF
	}
	p[0] = b.s[0]
	b.s = b.s[1:]
	return 1, nil
}

const orlibSample = `3 4
2 1 3 5
2 1 2
3
2 3 4
1 4
`

func drainORLib(t *testing.T, r io.Reader) (*ORLibReader, [][]int) {
	t.Helper()
	or, err := NewORLibReader(r)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	var rows [][]int
	for {
		row, err := or.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("row %d: %v", len(rows), err)
		}
		rows = append(rows, append([]int(nil), row...))
	}
	return or, rows
}

func TestORLibReader(t *testing.T) {
	or, rows := drainORLib(t, strings.NewReader(orlibSample))
	if or.NumRows() != 3 || or.NumCols() != 4 {
		t.Fatalf("size %dx%d, want 3x4", or.NumRows(), or.NumCols())
	}
	if !reflect.DeepEqual(or.Cost(), []int{2, 1, 3, 5}) {
		t.Fatalf("cost = %v", or.Cost())
	}
	want := [][]int{{0, 1}, {1, 2, 3}, {3}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

// TestORLibReaderTinyReads re-parses the sample one byte per Read call:
// the result must be identical regardless of how the stream fragments.
func TestORLibReaderTinyReads(t *testing.T) {
	_, base := drainORLib(t, strings.NewReader(orlibSample))
	_, tiny := drainORLib(t, &byteAtATime{orlibSample})
	if !reflect.DeepEqual(base, tiny) {
		t.Fatalf("fragmented parse diverged: %v vs %v", base, tiny)
	}
}

func TestORLibReaderErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"truncated header", "3", "line 1"},
		{"bad size", "-1 4", "invalid size"},
		{"non-numeric cost", "1 2\n1 x\n", "line 2"},
		{"truncated row", "2 2\n1 1\n2 1\n", "unexpected EOF"},
		{"column out of range", "1 2\n1 1\n1 5\n", "line 3: row 0 references column 5 of 2"},
		{"negative degree", "1 2\n1 1\n-2\n", "negative degree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			or, err := NewORLibReader(strings.NewReader(tc.in))
			for err == nil {
				_, err = or.Next(nil)
			}
			if err == io.EOF || err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

const matrixSample = `# a comment
p 3 4

c 2 1 3 5
r 0 1
# interior comment
r 1 2 3
r 3
`

func drainMatrix(t *testing.T, r io.Reader) (*MatrixReader, [][]int) {
	t.Helper()
	mr, err := NewMatrixReader(r)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	var rows [][]int
	for {
		row, err := mr.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("row %d: %v", len(rows), err)
		}
		rows = append(rows, append([]int(nil), row...))
	}
	return mr, rows
}

func TestMatrixReader(t *testing.T) {
	mr, rows := drainMatrix(t, strings.NewReader(matrixSample))
	if mr.NumRows() != 3 || mr.NumCols() != 4 {
		t.Fatalf("size %dx%d, want 3x4", mr.NumRows(), mr.NumCols())
	}
	if !reflect.DeepEqual(mr.Cost(), []int{2, 1, 3, 5}) {
		t.Fatalf("cost = %v", mr.Cost())
	}
	want := [][]int{{0, 1}, {1, 2, 3}, {3}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestMatrixReaderNoCosts(t *testing.T) {
	mr, rows := drainMatrix(t, strings.NewReader("p 1 2\nr 0 1\n"))
	if mr.Cost() != nil {
		t.Fatalf("cost = %v, want nil (unit costs)", mr.Cost())
	}
	if !reflect.DeepEqual(rows, [][]int{{0, 1}}) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMatrixReaderEmptyRow(t *testing.T) {
	_, rows := drainMatrix(t, strings.NewReader("p 2 2\nr\nr 1\n"))
	want := [][]int{{}, {1}}
	if len(rows) != 2 || len(rows[0]) != 0 || !reflect.DeepEqual(rows[1], want[1]) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestMatrixReaderTinyReads(t *testing.T) {
	_, base := drainMatrix(t, strings.NewReader(matrixSample))
	_, tiny := drainMatrix(t, &byteAtATime{matrixSample})
	if !reflect.DeepEqual(base, tiny) {
		t.Fatalf("fragmented parse diverged: %v vs %v", base, tiny)
	}
}

func TestMatrixReaderErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"missing p", "r 0 1\n", "line 1: r line before p line"},
		{"unknown directive", "p 1 2\nq 1\n", "line 2: unknown directive"},
		{"cost after rows", "p 2 2\nr 0\nc 1 1\nr 1\n", `"c" line after row data`},
		{"duplicate p", "p 1 2\np 1 2\n", "duplicate p line"},
		{"short cost line", "p 1 3\nc 1 1\nr 0\n", "2 costs for 3 columns"},
		{"row count mismatch", "p 3 2\nr 0\nr 1\n", "declares 3 rows, found 2"},
		{"non-numeric column", "p 1 2\nr 0 x\n", "line 2: bad column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mr, err := NewMatrixReader(strings.NewReader(tc.in))
			for err == nil {
				_, err = mr.Next(nil)
			}
			if err == io.EOF || err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
