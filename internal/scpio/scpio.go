// Package scpio streams set-covering instances from their interchange
// formats — the Beasley OR-Library "scp" format and the repo's
// covering-matrix text format — without ever materialising the file or
// the full row set: a fixed-size read buffer, one row handed out at a
// time.  It is the IO substrate of the out-of-core sharded driver
// (internal/shard) and of the in-memory readers in internal/benchmarks
// and the ucp root, which collect the same stream into a
// matrix.Problem.  Every parse error carries the 1-based line number
// it was detected on.
package scpio

import (
	"fmt"
	"io"
)

// MaxDim bounds declared row/column counts in both formats.
const MaxDim = 1 << 24

// bufSize is the lexer's read buffer: tokens are integers, so a tiny
// fixed buffer bounds memory regardless of the instance size.
const bufSize = 64 << 10

// Lexer tokenizes whitespace-separated integers from a stream, keeping
// a fixed-size buffer and the current 1-based line number.
type Lexer struct {
	r    io.Reader
	buf  []byte
	pos  int
	end  int
	line int
	err  error // sticky read error (io.EOF included)
}

// NewLexer wraps r.
func NewLexer(r io.Reader) *Lexer {
	return &Lexer{r: r, buf: make([]byte, bufSize), line: 1}
}

// Line returns the 1-based line number of the last byte consumed.
func (lx *Lexer) Line() int { return lx.line }

// Errf builds a parse error tagged with the current line.
func (lx *Lexer) Errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *Lexer) fill() bool {
	if lx.pos < lx.end {
		return true
	}
	if lx.err != nil {
		return false
	}
	for {
		n, err := lx.r.Read(lx.buf)
		if n > 0 {
			lx.pos, lx.end = 0, n
			if err != nil {
				lx.err = err
			}
			return true
		}
		if err != nil {
			lx.err = err
			return false
		}
	}
}

// readErr is the stream error to surface after fill returned false:
// clean EOF maps to io.ErrUnexpectedEOF for callers mid-structure.
func (lx *Lexer) readErr() error {
	if lx.err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return lx.err
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// skipSpace consumes whitespace (counting newlines); it reports
// whether a non-space byte is available.
func (lx *Lexer) skipSpace() bool {
	for {
		if !lx.fill() {
			return false
		}
		c := lx.buf[lx.pos]
		if !isSpace(c) {
			return true
		}
		if c == '\n' {
			lx.line++
		}
		lx.pos++
	}
}

// skipSpaceInLine consumes spaces and tabs up to (not including) the
// next newline.  It returns the next byte and false at a newline or
// end of stream.
func (lx *Lexer) skipSpaceInLine() (byte, bool) {
	for {
		if !lx.fill() {
			return 0, false
		}
		c := lx.buf[lx.pos]
		if c == '\n' {
			return 0, false
		}
		if !isSpace(c) {
			return c, true
		}
		lx.pos++
	}
}

// skipRestOfLine consumes everything up to and including the next
// newline (or end of stream).
func (lx *Lexer) skipRestOfLine() {
	for lx.fill() {
		c := lx.buf[lx.pos]
		lx.pos++
		if c == '\n' {
			lx.line++
			return
		}
	}
}

// number parses the integer starting at the current (non-space)
// position.  Same grammar as the historical readers: an optional
// leading '-', then decimal digits, magnitude capped at 2³¹.
func (lx *Lexer) number() (int, error) {
	v := 0
	neg := false
	digits := 0
	first := true
	for {
		if !lx.fill() {
			break
		}
		c := lx.buf[lx.pos]
		if first && c == '-' {
			neg = true
			first = false
			lx.pos++
			continue
		}
		first = false
		if c < '0' || c > '9' {
			if isSpace(c) {
				break
			}
			return 0, lx.Errf("non-numeric token (unexpected %q)", string(c))
		}
		v = v*10 + int(c-'0')
		digits++
		if v > 1<<31 {
			return 0, lx.Errf("numeric token out of range")
		}
		lx.pos++
	}
	if digits == 0 {
		return 0, lx.Errf("non-numeric token")
	}
	if neg {
		v = -v
	}
	return v, nil
}

// Int returns the next integer token, skipping any whitespace
// (newlines included).  At a clean end of stream it returns
// io.ErrUnexpectedEOF — callers ask for an Int only when the format
// requires one.
func (lx *Lexer) Int() (int, error) {
	if !lx.skipSpace() {
		return 0, lx.readErr()
	}
	return lx.number()
}

// IntInLine returns the next integer on the current line.  done=true
// (with a consumed newline) means the line ended before another token;
// the stream error, if any, surfaces on the *next* call.
func (lx *Lexer) IntInLine() (v int, done bool, err error) {
	c, ok := lx.skipSpaceInLine()
	if !ok {
		if lx.pos < lx.end { // at a newline
			lx.pos++
			lx.line++
			return 0, true, nil
		}
		if lx.err == io.EOF {
			return 0, true, nil
		}
		return 0, true, lx.err
	}
	_ = c
	v, err = lx.number()
	return v, false, err
}
