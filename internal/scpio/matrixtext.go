package scpio

import (
	"fmt"
	"io"
)

// MatrixReader streams the repo's covering-matrix text format:
//
//	# comment
//	p <rows> <cols>
//	c <cost_0> ... <cost_{cols-1}>     (optional; default 1)
//	r <col> <col> ...                  (one line per row)
//
// Column ids are zero-based.  Unlike the in-memory ucp.ReadProblem,
// the streaming reader requires the optional cost line to precede the
// first row (costs must be known before rows can be dispatched); a
// file with `c` after `r` lines is rejected with a line-numbered
// error.
type MatrixReader struct {
	lx    *Lexer
	nrows int
	ncols int
	cost  []int
	seen  int
	done  bool
}

// NewMatrixReader parses the header: everything up to (not including)
// the first row directive.
func NewMatrixReader(r io.Reader) (*MatrixReader, error) {
	m := &MatrixReader{lx: NewLexer(r), nrows: -1, ncols: -1}
	for {
		d, eof, err := m.directive()
		if err != nil {
			return nil, err
		}
		if eof {
			if m.ncols < 0 {
				return nil, fmt.Errorf("missing p line")
			}
			m.done = true
			return m, nil
		}
		switch d {
		case 'p':
			if m.ncols >= 0 {
				return nil, m.lx.Errf("duplicate p line")
			}
			nr, d1, err := m.lx.IntInLine()
			if err != nil {
				return nil, fmt.Errorf("line %d: malformed p line: %w", m.lx.Line(), err)
			}
			nc, d2, err := m.lx.IntInLine()
			if err != nil {
				return nil, fmt.Errorf("line %d: malformed p line: %w", m.lx.Line(), err)
			}
			if d1 || d2 {
				return nil, m.lx.Errf("malformed p line")
			}
			if nr < 0 || nc < 0 || nr > MaxDim || nc > MaxDim {
				return nil, m.lx.Errf("bad problem size")
			}
			m.nrows, m.ncols = nr, nc
			m.lx.skipRestOfLine()
		case 'c':
			if m.ncols < 0 {
				return nil, m.lx.Errf("c line before p line")
			}
			m.cost = make([]int, m.ncols)
			for j := range m.cost {
				v, done, err := m.lx.IntInLine()
				if err != nil {
					return nil, fmt.Errorf("line %d: bad cost: %w", m.lx.Line(), err)
				}
				if done {
					return nil, m.lx.Errf("%d costs for %d columns", j, m.ncols)
				}
				m.cost[j] = v
			}
			if _, done, err := m.lx.IntInLine(); err != nil || !done {
				return nil, m.lx.Errf("more than %d costs on c line", m.ncols)
			}
		case 'r':
			if m.ncols < 0 {
				return nil, m.lx.Errf("r line before p line")
			}
			return m, nil // header complete; Next picks up this row
		default:
			return nil, m.lx.Errf("unknown directive %q", string(d))
		}
	}
}

// directive positions the lexer after the next directive letter,
// skipping blank lines and comments.  eof=true at a clean end of
// stream.
func (m *MatrixReader) directive() (d byte, eof bool, err error) {
	for {
		if !m.lx.skipSpace() {
			if m.lx.err == io.EOF {
				return 0, true, nil
			}
			return 0, false, m.lx.err
		}
		c := m.lx.buf[m.lx.pos]
		if c == '#' {
			m.lx.skipRestOfLine()
			continue
		}
		m.lx.pos++
		return c, false, nil
	}
}

// NumRows returns the declared row count (-1 when the p line omitted
// it — the format always declares it, so -1 never survives a valid
// header).
func (m *MatrixReader) NumRows() int { return m.nrows }

// NumCols returns the declared column count.
func (m *MatrixReader) NumCols() int { return m.ncols }

// Cost returns the cost vector, or nil for uniform unit costs.
func (m *MatrixReader) Cost() []int { return m.cost }

// Next returns the next row's column ids (raw file order, duplicates
// preserved) appended to buf[:0].  io.EOF after the last row; the
// declared row count is validated against the rows actually seen.
func (m *MatrixReader) Next(buf []int) ([]int, error) {
	if m.done {
		return nil, m.finish()
	}
	row := buf[:0]
	for {
		v, done, err := m.lx.IntInLine()
		if err != nil {
			return nil, fmt.Errorf("line %d: bad column: %w", m.lx.Line(), err)
		}
		if done {
			break
		}
		row = append(row, v)
	}
	m.seen++
	// Find the next row directive (or EOF) so the following Next call
	// starts positioned on a row.
	for {
		d, eof, err := m.directive()
		if err != nil {
			return nil, err
		}
		if eof {
			m.done = true
			return row, nil
		}
		switch d {
		case 'r':
			return row, nil
		case 'c', 'p':
			return nil, m.lx.Errf("%q line after row data", string(d))
		default:
			return nil, m.lx.Errf("unknown directive %q", string(d))
		}
	}
}

// finish validates the declared row count once the stream is drained.
func (m *MatrixReader) finish() error {
	if m.nrows >= 0 && m.nrows != m.seen {
		return fmt.Errorf("p line declares %d rows, found %d", m.nrows, m.seen)
	}
	return io.EOF
}
