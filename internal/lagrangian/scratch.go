package lagrangian

import (
	"math"

	"ucp/internal/bitmat"
	"ucp/internal/matrix"
)

// Scratch owns every buffer the subgradient engine, the greedy primal
// heuristic and the dual ascent touch, so a caller that runs many
// phases (the fixing loop, the restart portfolio) allocates once and
// reuses.  Buffers grow to high-water marks and are never shrunk; the
// zero value is ready to use.
//
// Ownership rules (see DESIGN.md §9):
//   - a Scratch is single-owner state: one goroutine at a time, one
//     SubgradientScratch call at a time;
//   - nothing in a Scratch survives as part of a Result — every Result
//     field is freshly copied — so reusing a Scratch (or pooling it
//     across goroutines) cannot change any output;
//   - every buffer is fully re-initialised for the problem at hand on
//     each call, so stale contents from a previous (differently sized)
//     problem are harmless.
type Scratch struct {
	// Subgradient engine state.  The float caches are the incremental
	// core: ctilde mirrors c − A'λ, e mirrors the per-row dual partials
	// 1 − Σμ, m and g mirror the inner dual solution and its
	// subgradient c − A'm.  cnt[i] counts the c̃ ≤ 0 columns of row i,
	// so the primal subgradient s_i = 1 − cnt_i needs no matrix pass.
	lambda, mu, ctilde, e, m, g []float64
	cbar, s, trueCosts          []float64
	cnt                         []int32
	// Dirty sets for the incremental updates: columns whose c̃ must be
	// regathered after a λ step, rows whose e must be regathered after
	// a μ step, columns whose g must be regathered after an m flip.
	// chRows/chCols list the multipliers a step actually changed, so
	// the engine can size the touched volume before deciding between
	// the selective refresh and a full (bit-identical) rebuild.
	dirtyCols, dirtyRows, gDirty bitmat.Vec
	chRows, chCols               []int32
	// negCt mirrors the sign of every cached c̃_j (bit j set ⇔ c̃_j ≤ 0)
	// so both λ-refresh paths maintain cnt by sign flips alone.
	negCt bitmat.Vec
	// Dense sidecar for the greedy kernels, rebuilt in place per phase.
	bm       bitmat.Matrix
	useDense bool

	gr greedyRun
	da daScratch
}

// greedyRun is the per-build state of the greedy kernels.
type greedyRun struct {
	covered   []bool
	inSol     []bool
	sol       []int
	n         []int32
	w         []float64
	w0        []float64
	rowWeight []float64
	nCovered  int
	uncovered bitmat.Vec
	gcnt      []int32
	cand      []int32
	pos       []int32
	// stamp/stampEpoch tell a column's first touch in the current
	// build from a later one, so the count-derived start (greedySparse
	// with rowCnt) initialises only the columns it actually meets.
	stamp      []uint32
	stampEpoch uint32
	bestBuf    []int
	ws         matrix.Workspace
}

// daScratch is the dual-ascent working set.
type daScratch struct {
	cbar, m, seed, colSum []float64
	order                 []int32
	keys                  []int64
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// attach sizes the phase-wide state for p: the dense sidecar (when the
// problem qualifies) and the row cost minima c̄.
func (sc *Scratch) attach(p *matrix.Problem) {
	nr := len(p.Rows)
	sc.cbar = growF64(sc.cbar, nr)
	nnz := 0
	for i, r := range p.Rows {
		nnz += len(r)
		cb := math.Inf(1)
		for _, j := range r {
			if float64(p.Cost[j]) < cb {
				cb = float64(p.Cost[j])
			}
		}
		sc.cbar[i] = cb
	}
	// The dense greedy kernel regathers candidate counts from the
	// uncovered rows on every pick, while the sparse kernel maintains
	// them incrementally and pays an O(ncols) argmin instead.  The
	// rescans only win when covering steps retire many rows at once —
	// long rows — so route greedy to the bit kernel only above ~1/8
	// density; both kernels build identical covers, making the split a
	// pure cost decision.
	sc.useDense = matrix.DenseEligible(p) && 8*nnz >= nr*p.NCol
	if sc.useDense {
		sc.bm.BuildFrom(p.Rows, p.NCol)
	}
	sc.prepGreedyWeights(p)
}
