// Package lagrangian implements the optimisation machinery of the
// paper's Section 3: the lagrangian relaxation of the unate covering
// problem, its dual, the subgradient ascent that tightens both, the
// dual-ascent and greedy primal heuristics, and the penalty tests that
// fix columns in or out of the solution.
//
// All functions operate on a compact matrix.Problem: column ids must
// be dense in [0, NCol) (see (*matrix.Problem).Compact).
package lagrangian

import (
	"math"
	"slices"

	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// DualAscent builds a feasible solution m of the dual problem
//
//	max e'm   s.t.  A'm ≤ c,  0 ≤ m ≤ c̄,   c̄_i = min_{j∋i} c_j
//
// with the paper's two-phase scheme: starting from m0 (or from the
// upper bounds c̄ when m0 is nil), the first phase decreases the
// variables of the most covered rows first until every dual constraint
// holds; the second phase raises the variables of the least covered
// rows as far as the slacks allow.  It returns m and its value e'm,
// which is a lower bound on the optimum of p (LB_DA).
func DualAscent(p *matrix.Problem, m0 []float64) ([]float64, float64) {
	return DualAscentBudget(p, m0, nil)
}

// DualAscentBudget is DualAscent under a budget: the iterated
// feasibility-restoring passes poll the tracker and, when the budget
// runs out mid-restoration, the multipliers collapse to the all-zero
// vector (trivially dual feasible, bound 0) so the returned value is
// always a valid lower bound.
func DualAscentBudget(p *matrix.Problem, m0 []float64, tr *budget.Tracker) ([]float64, float64) {
	var da daScratch
	m, w := da.run(p, m0, tr)
	if m == nil {
		return nil, w
	}
	return append([]float64(nil), m...), w
}

// run is the dual ascent against da's buffers; the returned slice is
// backed by da, valid until its next use.
func (da *daScratch) run(p *matrix.Problem, m0 []float64, tr *budget.Tracker) ([]float64, float64) {
	nr := len(p.Rows)
	if nr == 0 {
		return nil, 0
	}
	da.cbar = growF64(da.cbar, nr)
	cbar := da.cbar
	for i, r := range p.Rows {
		cb := math.Inf(1)
		for _, j := range r {
			if float64(p.Cost[j]) < cb {
				cb = float64(p.Cost[j])
			}
		}
		cbar[i] = cb
	}
	da.m = growF64(da.m, nr)
	if m0 != nil {
		for i := range da.m {
			da.m[i] = math.Min(math.Max(m0[i], 0), cbar[i])
		}
		return da.ascend(p, cbar, da.m, tr)
	}
	// Cold start: try both the all-c̄ start (decrease into
	// feasibility) and the independent-set start (already feasible, so
	// only phase 2 applies).  The latter guarantees the Proposition 1
	// dominance LB_DA ≥ LB_MIS; the former often does better on dense
	// matrices.  Keep the stronger result.
	copy(da.m, cbar)
	mA, wA := da.ascend(p, cbar, da.m, tr)
	_, misRows := matrix.MISBound(p)
	da.seed = growF64(da.seed, nr)
	for i := range da.seed {
		da.seed[i] = 0
	}
	for _, i := range misRows {
		da.seed[i] = cbar[i]
	}
	mB, wB := da.ascend(p, cbar, da.seed, tr)
	if wB > wA {
		return mB, wB
	}
	return mA, wA
}

// ascend runs the two dual-ascent phases from the start vector m,
// which must already respect 0 ≤ m ≤ c̄.  m is modified in place.
func (da *daScratch) ascend(p *matrix.Problem, cbar, m []float64, tr *budget.Tracker) ([]float64, float64) {
	nr := len(p.Rows)

	// colSum[j] = Σ_{i covered by j} m_i; viol_j = colSum[j] - c_j.
	da.colSum = growF64(da.colSum, p.NCol)
	colSum := da.colSum
	for j := range colSum {
		colSum[j] = 0
	}
	for i, r := range p.Rows {
		for _, j := range r {
			colSum[j] += m[i]
		}
	}

	// Phase 1: decrease.  Rows covered by many columns first: lowering
	// them relaxes many constraints per unit of objective lost.  The
	// (length desc, index asc) comparator is total, so sorting packed
	// (maxPack − length, index) keys gives the identical order without
	// a comparator closure.
	da.order = growI32(da.order, nr)
	da.keys = growI64(da.keys, nr)
	const maxPack = 1<<31 - 1
	for i := 0; i < nr; i++ {
		da.keys[i] = int64(maxPack-len(p.Rows[i]))<<32 | int64(i)
	}
	slices.Sort(da.keys)
	order := da.order
	for k, key := range da.keys {
		order[k] = int32(key & 0xffffffff)
	}
	for _, oi := range order {
		i := int(oi)
		worst := 0.0
		for _, j := range p.Rows[i] {
			if v := colSum[j] - float64(p.Cost[j]); v > worst {
				worst = v
			}
		}
		if worst <= 0 {
			continue
		}
		dec := math.Min(worst, m[i])
		if dec <= 0 {
			continue
		}
		m[i] -= dec
		for _, j := range p.Rows[i] {
			colSum[j] -= dec
		}
	}
	// A single sweep may leave violations (each row only fixes its own
	// worst constraint); iterate until feasible.
	for pass := 0; pass < nr+1; pass++ {
		if tr.Interrupted() {
			// Mid-restoration the vector may be dual infeasible and its
			// value would not be a valid bound; fall back to m = 0,
			// which is feasible with value 0.
			for i := range m {
				m[i] = 0
			}
			return m, 0
		}
		fixed := true
		for _, oi := range order {
			i := int(oi)
			if m[i] == 0 {
				continue
			}
			worst := 0.0
			for _, j := range p.Rows[i] {
				if v := colSum[j] - float64(p.Cost[j]); v > worst {
					worst = v
				}
			}
			if worst > 1e-12 {
				dec := math.Min(worst, m[i])
				m[i] -= dec
				for _, j := range p.Rows[i] {
					colSum[j] -= dec
				}
				fixed = false
			}
		}
		if fixed {
			break
		}
	}

	// Phase 2: increase.  Rows covered by few columns first: raising
	// them consumes slack in few constraints — the phase-1 order walked
	// backwards.
	for k := len(order) - 1; k >= 0; k-- {
		i := int(order[k])
		slack := math.Inf(1)
		for _, j := range p.Rows[i] {
			if s := float64(p.Cost[j]) - colSum[j]; s < slack {
				slack = s
			}
		}
		if slack <= 0 {
			continue
		}
		inc := math.Min(slack, cbar[i]-m[i])
		if inc <= 0 {
			continue
		}
		m[i] += inc
		for _, j := range p.Rows[i] {
			colSum[j] += inc
		}
	}

	w := 0.0
	for i := range m {
		w += m[i]
	}

	return m, w
}

// DualFeasible reports whether m satisfies A'm ≤ c + tol and m ≥ -tol.
func DualFeasible(p *matrix.Problem, m []float64, tol float64) bool {
	colSum := make([]float64, p.NCol)
	for i, r := range p.Rows {
		if m[i] < -tol {
			return false
		}
		for _, j := range r {
			colSum[j] += m[i]
		}
	}
	for j, s := range colSum {
		if s > float64(p.Cost[j])+tol {
			return false
		}
	}
	return true
}
