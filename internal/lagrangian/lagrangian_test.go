package lagrangian

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/matrix"
	"ucp/internal/simplex"
)

func randomProblem(rng *rand.Rand, maxRows, maxCols, maxCost int) *matrix.Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	p, _ := matrix.New(rows, nc, cost)
	q, _ := p.Compact()
	return q
}

func bruteForce(p *matrix.Problem) int {
	best := math.MaxInt
	for mask := 0; mask < 1<<p.NCol; mask++ {
		var cols []int
		for j := 0; j < p.NCol; j++ {
			if mask>>j&1 == 1 {
				cols = append(cols, j)
			}
		}
		if p.IsCover(cols) {
			if c := p.CostOf(cols); c < best {
				best = c
			}
		}
	}
	return best
}

// lpBound computes the exact linear-relaxation bound with the simplex
// solver (including the x ≤ 1 box).
func lpBound(p *matrix.Problem) float64 {
	n := p.NCol
	var a [][]float64
	var b []float64
	for _, r := range p.Rows {
		row := make([]float64, n)
		for _, j := range r {
			row[j] = 1
		}
		a = append(a, row)
		b = append(b, 1)
	}
	for j := 0; j < n; j++ {
		box := make([]float64, n)
		box[j] = -1
		a = append(a, box)
		b = append(b, -1)
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	_, z, err := simplex.Solve(c, a, b)
	if err != nil {
		panic(err)
	}
	return z
}

func TestDualAscentFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 8, 8, 4)
		m, w := DualAscent(p, nil)
		if !DualFeasible(p, m, 1e-9) {
			t.Fatalf("trial %d: dual ascent infeasible", trial)
		}
		sum := 0.0
		for _, v := range m {
			sum += v
		}
		if math.Abs(sum-w) > 1e-9 {
			t.Fatalf("trial %d: reported value %v != Σm %v", trial, w, sum)
		}
		if opt := bruteForce(p); w > float64(opt)+1e-9 {
			t.Fatalf("trial %d: dual bound %v exceeds optimum %d", trial, w, opt)
		}
	}
}

// TestBoundDominanceChain verifies Proposition 1 on random instances:
// LB_MIS ≤ LB_DA ≤ z*_P (linear relaxation) ≤ optimum, and with
// uniform costs LB_MIS = LB_DA for the dual solutions that correspond
// to independent sets (the ascent may do better, so only ≤ is
// asserted there).
func TestBoundDominanceChain(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		mis, _ := matrix.MISBound(p)
		_, da := DualAscent(p, nil)
		lp := lpBound(p)
		opt := bruteForce(p)
		if float64(mis) > da+1e-6 {
			t.Fatalf("trial %d: MIS %d > dual ascent %v", trial, mis, da)
		}
		if da > lp+1e-6 {
			t.Fatalf("trial %d: dual ascent %v > LP %v", trial, da, lp)
		}
		if lp > float64(opt)+1e-6 {
			t.Fatalf("trial %d: LP %v > optimum %d", trial, lp, opt)
		}
	}
}

func TestGreedyProducesIrredundantCover(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 9, 9, 4)
		for v := GammaPerRow; v <= GammaRowImportance; v++ {
			sol := GreedyLagrangian(p, FloatCosts(p), v)
			if sol == nil {
				t.Fatalf("trial %d: greedy failed on feasible problem", trial)
			}
			if !p.IsCover(sol) {
				t.Fatalf("trial %d variant %d: not a cover", trial, v)
			}
			for k := range sol {
				rest := append(append([]int(nil), sol[:k]...), sol[k+1:]...)
				if p.IsCover(rest) {
					t.Fatalf("trial %d variant %d: redundant column in %v", trial, v, sol)
				}
			}
		}
	}
}

func TestSubgradientBoundsAndOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	proved, total := 0, 0
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 9, 9, 3)
		opt := bruteForce(p)
		res := Subgradient(p, Params{}, nil, 0)
		if res.Best == nil {
			t.Fatalf("trial %d: no solution on feasible problem", trial)
		}
		if !p.IsCover(res.Best) {
			t.Fatalf("trial %d: best not a cover", trial)
		}
		if res.BestCost < opt {
			t.Fatalf("trial %d: impossible cost %d < optimum %d", trial, res.BestCost, opt)
		}
		if math.Ceil(res.LB-1e-9) > float64(opt) {
			t.Fatalf("trial %d: lower bound %v exceeds optimum %d", trial, res.LB, opt)
		}
		if lp := lpBound(p); res.LB > lp+1e-6 {
			t.Fatalf("trial %d: lagrangian LB %v above LP bound %v", trial, res.LB, lp)
		}
		if res.ProvedOptimal {
			if res.BestCost != opt {
				t.Fatalf("trial %d: claimed optimal %d but optimum is %d", trial, res.BestCost, opt)
			}
			proved++
		}
		total++
	}
	// The paper reports near-universal optimality proofs on easy
	// problems; demand a healthy fraction on these tiny instances.
	if proved*2 < total {
		t.Fatalf("only %d/%d instances proved optimal", proved, total)
	}
}

func TestSubgradientWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	p := randomProblem(rng, 10, 10, 3)
	res := Subgradient(p, Params{}, nil, 0)
	init := &Multipliers{Lambda: res.Lambda, Mu: res.Mu}
	res2 := Subgradient(p, Params{}, init, res.BestCost)
	if res2.LB < res.LB-1e-6 && !res2.ProvedOptimal {
		// A warm start must not be catastrophically worse; allow tiny
		// slack for the oscillating nature of the method.
		if res.LB-res2.LB > 1 {
			t.Fatalf("warm start lost the bound: %v vs %v", res2.LB, res.LB)
		}
	}
}

func TestSubgradientEmptyProblem(t *testing.T) {
	p, _ := matrix.New(nil, 0, nil)
	res := Subgradient(p, Params{}, nil, 0)
	if !res.ProvedOptimal || len(res.Best) != 0 || res.BestCost != 0 {
		t.Fatal("empty problem should be trivially optimal")
	}
}

func TestLagrangianPenaltiesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		res := Subgradient(p, Params{}, nil, 0)
		if res.Best == nil {
			continue
		}
		pen := LagrangianPenalties(res.CTilde, res.LB, res.BestCost)
		// Soundness: every solution strictly cheaper than BestCost
		// must include every FixIn column and exclude every FixOut
		// column.
		for mask := 0; mask < 1<<p.NCol; mask++ {
			var cols []int
			for j := 0; j < p.NCol; j++ {
				if mask>>j&1 == 1 {
					cols = append(cols, j)
				}
			}
			if !p.IsCover(cols) || p.CostOf(cols) >= res.BestCost {
				continue
			}
			has := make(map[int]bool)
			for _, j := range cols {
				has[j] = true
			}
			for _, j := range pen.FixIn {
				if !has[j] {
					t.Fatalf("trial %d: cheaper solution %v misses FixIn col %d", trial, cols, j)
				}
			}
			for _, j := range pen.FixOut {
				if has[j] {
					t.Fatalf("trial %d: cheaper solution %v uses FixOut col %d", trial, cols, j)
				}
			}
		}
	}
}

func TestDualPenaltiesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng, 7, 7, 3)
		res := Subgradient(p, Params{}, nil, 0)
		if res.Best == nil {
			continue
		}
		pen := DualPenalties(p, res.Lambda, res.BestCost)
		for mask := 0; mask < 1<<p.NCol; mask++ {
			var cols []int
			for j := 0; j < p.NCol; j++ {
				if mask>>j&1 == 1 {
					cols = append(cols, j)
				}
			}
			if !p.IsCover(cols) || p.CostOf(cols) >= res.BestCost {
				continue
			}
			has := make(map[int]bool)
			for _, j := range cols {
				has[j] = true
			}
			for _, j := range pen.FixIn {
				if !has[j] {
					t.Fatalf("trial %d: cheaper solution misses dual FixIn col %d", trial, j)
				}
			}
			for _, j := range pen.FixOut {
				if has[j] {
					t.Fatalf("trial %d: cheaper solution uses dual FixOut col %d", trial, j)
				}
			}
		}
	}
}

func TestDualPenaltiesRestoreCosts(t *testing.T) {
	p := matrix.MustNew([][]int{{0, 1}, {1, 2}}, 3, []int{2, 3, 4})
	orig := append([]int(nil), p.Cost...)
	DualPenalties(p, nil, 100)
	for j := range orig {
		if p.Cost[j] != orig[j] {
			t.Fatal("DualPenalties mutated the cost vector")
		}
	}
}

func TestSigmaAndPromising(t *testing.T) {
	ctilde := []float64{0.0005, 2, -1}
	mu := []float64{1, 0.9995, 0.5}
	s := Sigma(ctilde, mu, 2)
	if math.Abs(s[0]-(0.0005-2)) > 1e-12 || math.Abs(s[1]-(2-2*0.9995)) > 1e-12 {
		t.Fatalf("sigma = %v", s)
	}
	prom := Promising(ctilde, mu, Params{})
	if len(prom) != 1 || prom[0] != 0 {
		t.Fatalf("promising = %v", prom)
	}
}

func TestMergeDetectsContradiction(t *testing.T) {
	a := &Penalties{FixIn: []int{3}}
	b := &Penalties{FixOut: []int{3}}
	m := a.Merge(b)
	if !m.NoBetter {
		t.Fatal("contradictory fixes should set NoBetter")
	}
}

func TestLimitBoundSubsumedByDualPenalties(t *testing.T) {
	// Proposition 3: any column removable by the limit bound theorem
	// is also removed by the dual penalties.
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 7, 7, 3)
		zbest := bruteForce(p) + 1 // a genuine upper bound
		lbMIS, rows := matrix.MISBound(p)
		removable := LimitBound(p, rows, lbMIS, zbest)
		if len(removable) == 0 {
			continue
		}
		// Build the dual solution corresponding to the MIS and verify
		// each removable column also satisfies dual penalty (6) with
		// that m as warm start.
		m := make([]float64, len(p.Rows))
		for _, i := range rows {
			cb := math.Inf(1)
			for _, j := range p.Rows[i] {
				if float64(p.Cost[j]) < cb {
					cb = float64(p.Cost[j])
				}
			}
			m[i] = cb
		}
		pen := DualPenalties(p, m, zbest)
		outSet := make(map[int]bool)
		for _, j := range pen.FixOut {
			outSet[j] = true
		}
		for _, j := range removable {
			if !outSet[j] {
				t.Fatalf("trial %d: limit bound removes col %d but dual penalties do not", trial, j)
			}
		}
	}
}

// TestSubgradientArbitraryInitStillSound: any non-negative multiplier
// initialisation must yield a valid lower bound — warm starts coming
// from a previous fixing phase are only heuristically related to the
// new problem, so soundness cannot depend on them.
func TestSubgradientArbitraryInitStillSound(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		opt := bruteForce(p)
		init := &Multipliers{
			Lambda: make([]float64, len(p.Rows)),
			Mu:     make([]float64, p.NCol),
		}
		for i := range init.Lambda {
			init.Lambda[i] = rng.Float64() * 5
		}
		for j := range init.Mu {
			init.Mu[j] = rng.Float64()
		}
		res := Subgradient(p, Params{}, init, 0)
		if res.Best == nil {
			t.Fatalf("trial %d: no solution", trial)
		}
		if math.Ceil(res.LB-1e-9) > float64(opt) {
			t.Fatalf("trial %d: warm-started LB %v above optimum %d", trial, res.LB, opt)
		}
		if res.BestCost < opt {
			t.Fatalf("trial %d: impossible cost", trial)
		}
		if res.ProvedOptimal && res.BestCost != opt {
			t.Fatalf("trial %d: false certificate", trial)
		}
	}
}
