package lagrangian

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/bitmat"
	"ucp/internal/matrix"
)

// refSubgradient is the pre-scratch engine: full O(nnz) rebuilds of
// c̃, e, and g every iteration, exactly as the loop stood before the
// incremental rewrite.  The differential tests below hold the
// incremental engine to bit-identical Results against it.
func refSubgradient(p *matrix.Problem, prm Params, init *Multipliers, ub0 int) *Result {
	prm.fill()
	nr, nc := len(p.Rows), p.NCol
	res := &Result{}
	if nr == 0 {
		res.Best = []int{}
		res.ProvedOptimal = true
		return res
	}

	var bm *bitmat.Matrix
	if matrix.DenseEligible(p) {
		bm = bitmat.Build(p.Rows, p.NCol)
	}
	refGreedy := func(ctilde []float64, v GammaVariant) []int {
		if bm != nil && v != GammaRowImportance {
			return GreedyLagrangianDense(p, bm, ctilde, v)
		}
		return GreedyLagrangian(p, ctilde, v)
	}
	refBest := func(ctilde []float64) []int {
		var best []int
		bestCost := math.MaxInt
		for v := GammaPerRow; v <= GammaRowImportance; v++ {
			sol := refGreedy(ctilde, v)
			if sol == nil {
				continue
			}
			if c := p.CostOf(sol); c < bestCost {
				best, bestCost = sol, c
			}
		}
		return best
	}

	best := refBest(FloatCosts(p))
	if best == nil {
		return res
	}
	res.Best, res.BestCost = best, p.CostOf(best)
	ubKnown := res.BestCost
	if ub0 > 0 && ub0 < ubKnown {
		ubKnown = ub0
	}

	var lambda, mu []float64
	if init != nil && len(init.Lambda) == nr && len(init.Mu) == nc {
		lambda = append([]float64(nil), init.Lambda...)
		mu = append([]float64(nil), init.Mu...)
	} else {
		m, _ := DualAscentBudget(p, nil, nil)
		lambda = m
		mu = make([]float64, nc)
		for _, j := range best {
			mu[j] = 1
		}
	}

	res.Lambda = append([]float64(nil), lambda...)
	res.Mu = append([]float64(nil), mu...)
	res.LB = math.Inf(-1)
	res.UBDual = math.Inf(1)

	ctilde := make([]float64, nc)
	s := make([]float64, nr)
	g := make([]float64, nc)
	m := make([]float64, nr)
	cbar := make([]float64, nr)
	for i, r := range p.Rows {
		cb := math.Inf(1)
		for _, j := range r {
			if float64(p.Cost[j]) < cb {
				cb = float64(p.Cost[j])
			}
		}
		cbar[i] = cb
	}

	t := prm.T0
	sinceImprove := 0
	variant := GammaPerRow

	for k := 0; k < prm.MaxIters; k++ {
		res.Iters = k + 1

		for j := 0; j < nc; j++ {
			ctilde[j] = float64(p.Cost[j])
		}
		zl := 0.0
		for i := 0; i < nr; i++ {
			zl += lambda[i]
			for _, j := range p.Rows[i] {
				ctilde[j] -= lambda[i]
			}
		}
		for j := 0; j < nc; j++ {
			if ctilde[j] <= 0 {
				zl += ctilde[j]
			}
		}
		improved := false
		if zl > res.LB {
			res.LB = zl
			copy(res.Lambda, lambda)
			res.CTilde = append(res.CTilde[:0], ctilde...)
			improved = true
		}

		if improved || k%prm.GreedyEvery == 0 {
			sol := refGreedy(ctilde, variant)
			variant = (variant + 1) % 4
			if sol != nil {
				if c := p.CostOf(sol); c < res.BestCost {
					res.Best, res.BestCost = sol, c
					if c < ubKnown {
						ubKnown = c
					}
				}
			}
		}

		if float64(ubKnown) <= math.Ceil(res.LB-1e-9) {
			break
		}

		wld := 0.0
		for j := 0; j < nc; j++ {
			wld += mu[j] * float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			et := 1.0
			for _, j := range p.Rows[i] {
				et -= mu[j]
			}
			if et > 0 {
				m[i] = cbar[i]
				wld += et * cbar[i]
			} else {
				m[i] = 0
			}
		}
		if wld < res.UBDual {
			res.UBDual = wld
			copy(res.Mu, mu)
		}

		ub := math.Min(res.UBDual, float64(ubKnown))

		if ub-zl < prm.Delta {
			break
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= prm.NT {
				t /= 2
				sinceImprove = 0
			}
		}
		if t < prm.TMin {
			break
		}

		norm := 0.0
		for i := 0; i < nr; i++ {
			s[i] = 1
			for _, j := range p.Rows[i] {
				if ctilde[j] <= 0 {
					s[i]--
				}
			}
			norm += s[i] * s[i]
		}
		if norm == 0 {
			break
		}
		step := t * math.Abs(ub-zl) / norm
		for i := 0; i < nr; i++ {
			lambda[i] = math.Max(lambda[i]+step*s[i], 0)
		}

		gnorm := 0.0
		for j := 0; j < nc; j++ {
			g[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			if m[i] > 0 {
				for _, j := range p.Rows[i] {
					g[j] -= m[i]
				}
			}
		}
		for j := 0; j < nc; j++ {
			gnorm += g[j] * g[j]
		}
		if gnorm > 0 {
			dstep := t * math.Abs(wld-res.LB) / gnorm
			for j := 0; j < nc; j++ {
				mu[j] = math.Min(math.Max(mu[j]-dstep*g[j], 0), 1)
			}
		}
	}

	if res.CTilde == nil {
		res.CTilde = make([]float64, nc)
		for j := 0; j < nc; j++ {
			res.CTilde[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			for _, j := range p.Rows[i] {
				res.CTilde[j] -= res.Lambda[i]
			}
		}
	}
	if float64(res.BestCost) <= math.Ceil(res.LB-1e-9) {
		res.ProvedOptimal = true
	}
	return res
}

func f64BitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
			return false
		}
	}
	return true
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

func compareResults(t *testing.T, trial int, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.LB) != math.Float64bits(want.LB) {
		t.Fatalf("trial %d: LB %v != reference %v", trial, got.LB, want.LB)
	}
	if math.Float64bits(got.UBDual) != math.Float64bits(want.UBDual) {
		t.Fatalf("trial %d: UBDual %v != reference %v", trial, got.UBDual, want.UBDual)
	}
	if got.Iters != want.Iters {
		t.Fatalf("trial %d: Iters %d != reference %d", trial, got.Iters, want.Iters)
	}
	if got.BestCost != want.BestCost || !intsEq(got.Best, want.Best) {
		t.Fatalf("trial %d: Best %v (%d) != reference %v (%d)",
			trial, got.Best, got.BestCost, want.Best, want.BestCost)
	}
	if got.ProvedOptimal != want.ProvedOptimal {
		t.Fatalf("trial %d: ProvedOptimal %v != reference %v", trial, got.ProvedOptimal, want.ProvedOptimal)
	}
	if !f64BitsEq(got.Lambda, want.Lambda) {
		t.Fatalf("trial %d: Lambda differs from reference", trial)
	}
	if !f64BitsEq(got.Mu, want.Mu) {
		t.Fatalf("trial %d: Mu differs from reference", trial)
	}
	if !f64BitsEq(got.CTilde, want.CTilde) {
		t.Fatalf("trial %d: CTilde differs from reference", trial)
	}
}

// TestIncrementalMatchesReference holds the incremental engine to
// bit-identical Results against the full-rebuild reference, cold and
// warm starts alike, with one Scratch reused across every trial (so
// stale buffer contents are exercised too).
func TestIncrementalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sc := &Scratch{}
	for trial := 0; trial < 120; trial++ {
		p := randomProblem(rng, 14, 14, 4)
		want := refSubgradient(p, Params{}, nil, 0)
		got := SubgradientScratch(p, Params{}, nil, 0, nil, sc)
		compareResults(t, trial, got, want)

		// Warm start from the cold result's multipliers.
		init := &Multipliers{Lambda: want.Lambda, Mu: want.Mu}
		want2 := refSubgradient(p, Params{}, init, 0)
		got2 := SubgradientScratch(p, Params{}, init, 0, nil, sc)
		compareResults(t, trial, got2, want2)
	}
}

// TestIncrementalMatchesReferenceLarger runs fewer, bigger instances
// so the dirty sets stay sparse for many iterations (the regime the
// incremental updates are for).
func TestIncrementalMatchesReferenceLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sc := &Scratch{}
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(rng, 60, 80, 9)
		want := refSubgradient(p, Params{}, nil, 0)
		got := SubgradientScratch(p, Params{}, nil, 0, nil, sc)
		compareResults(t, trial, got, want)
	}
}

// TestIncrementalCachesBitIdentical recomputes every engine cache from
// scratch at the end of each iteration — via the debug hook — and
// holds the cached values to bit-equality with the row-major scatter
// the caches replaced.
func TestIncrementalCachesBitIdentical(t *testing.T) {
	defer func() { debugIterCheck = nil }()
	iters := 0
	debugIterCheck = func(p *matrix.Problem, sc *Scratch) {
		iters++
		nr, nc := len(p.Rows), p.NCol
		// c̃ by full row-major scatter.
		fresh := make([]float64, nc)
		for j := 0; j < nc; j++ {
			fresh[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			for _, j := range p.Rows[i] {
				fresh[j] -= sc.lambda[i]
			}
		}
		if !f64BitsEq(sc.ctilde[:nc], fresh) {
			t.Fatal("cached ctilde differs from scatter rebuild")
		}
		// cnt from the fresh c̃.
		for i := 0; i < nr; i++ {
			n := int32(0)
			for _, j := range p.Rows[i] {
				if fresh[j] <= 0 {
					n++
				}
			}
			if sc.cnt[i] != n {
				t.Fatalf("cached cnt[%d] = %d, fresh %d", i, sc.cnt[i], n)
			}
		}
		// e and m by full row recomputation.
		for i := 0; i < nr; i++ {
			et := 1.0
			for _, j := range p.Rows[i] {
				et -= sc.mu[j]
			}
			if math.Float64bits(sc.e[i]) != math.Float64bits(et) {
				t.Fatalf("cached e[%d] differs from rebuild", i)
			}
			var em float64
			if et > 0 {
				em = sc.cbar[i]
			}
			if math.Float64bits(sc.m[i]) != math.Float64bits(em) {
				t.Fatalf("cached m[%d] differs from rebuild", i)
			}
		}
		// g by full row-major scatter of the inner solution.
		gf := make([]float64, nc)
		for j := 0; j < nc; j++ {
			gf[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			if sc.m[i] > 0 {
				for _, j := range p.Rows[i] {
					gf[j] -= sc.m[i]
				}
			}
		}
		if !f64BitsEq(sc.g[:nc], gf) {
			t.Fatal("cached g differs from scatter rebuild")
		}
	}

	rng := rand.New(rand.NewSource(63))
	sc := &Scratch{}
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 20, 20, 5)
		SubgradientScratch(p, Params{}, nil, 0, nil, sc)
	}
	if iters == 0 {
		t.Fatal("debug hook never ran")
	}
}

// TestExternalBoundKeepsBestConsistent is the regression test for the
// old Best/BestCost mismatch: with an external bound below anything
// the heuristic finds, the result used to report ub0 as BestCost while
// Best held the pricier cover.  BestCost must always price Best.
func TestExternalBoundKeepsBestConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	tightened := 0
	for trial := 0; trial < 120; trial++ {
		p := randomProblem(rng, 10, 10, 4)
		base := Subgradient(p, Params{}, nil, 0)
		if base.Best == nil {
			t.Fatalf("trial %d: no solution", trial)
		}
		for _, ub0 := range []int{base.BestCost, base.BestCost - 1, 1} {
			res := Subgradient(p, Params{}, nil, ub0)
			if res.Best == nil {
				t.Fatalf("trial %d: no solution with ub0=%d", trial, ub0)
			}
			if !p.IsCover(res.Best) {
				t.Fatalf("trial %d ub0=%d: Best is not a cover", trial, ub0)
			}
			if got := p.CostOf(res.Best); got != res.BestCost {
				t.Fatalf("trial %d ub0=%d: BestCost %d but CostOf(Best) %d",
					trial, ub0, res.BestCost, got)
			}
			if res.ProvedOptimal && float64(res.BestCost) > math.Ceil(res.LB-1e-9) {
				t.Fatalf("trial %d ub0=%d: certificate without a matching Best", trial, ub0)
			}
			if ub0 < res.BestCost {
				tightened++
			}
		}
	}
	if tightened == 0 {
		t.Fatal("no trial exercised an external bound below the heuristic cover")
	}
}

// TestScratchReuseBitIdentical interleaves differently sized problems
// through one Scratch and checks each result is bit-identical to a
// fresh-scratch solve — reuse (and therefore pooling in the restart
// portfolio) cannot leak state between phases.
func TestScratchReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	shared := &Scratch{}
	for trial := 0; trial < 60; trial++ {
		var p *matrix.Problem
		if trial%2 == 0 {
			p = randomProblem(rng, 30, 30, 6)
		} else {
			p = randomProblem(rng, 6, 40, 3)
		}
		got := SubgradientScratch(p, Params{}, nil, 0, nil, shared)
		want := SubgradientScratch(p, Params{}, nil, 0, nil, &Scratch{})
		compareResults(t, trial, got, want)
	}
}

// TestSubgradientSteadyStateAllocs pins the per-iteration heap
// allocation count of the scratch engine to zero: two runs differing
// only in MaxIters must allocate exactly the same once the scratch
// high-water marks are warm.
func TestSubgradientSteadyStateAllocs(t *testing.T) {
	// Keep every stopping test out of the way so both runs execute
	// exactly MaxIters iterations.
	prm := func(iters int) Params {
		return Params{Delta: 1e-300, TMin: 1e-300, NT: 1 << 30, MaxIters: iters}
	}
	const n1, n2 = 40, 160
	sc := &Scratch{}
	// Find an instance whose duality gap keeps the ascent running for
	// the full budget (most random instances certify early and stop).
	var p *matrix.Problem
	for seed := int64(1); seed < 64; seed++ {
		q := randomProblem(rand.New(rand.NewSource(seed)), 60, 80, 19)
		if r := SubgradientScratch(q, prm(n2), nil, 0, nil, sc); r.Iters == n2 {
			p = q
			break
		}
	}
	if p == nil {
		t.Fatal("no probe instance ran the full iteration budget")
	}
	a1 := testing.AllocsPerRun(5, func() {
		SubgradientScratch(p, prm(n1), nil, 0, nil, sc)
	})
	a2 := testing.AllocsPerRun(5, func() {
		SubgradientScratch(p, prm(n2), nil, 0, nil, sc)
	})
	if a2 != a1 {
		t.Fatalf("steady-state iterations allocate: %v allocs at %d iters vs %v at %d (%.3f allocs/iter)",
			a2, n2, a1, n1, (a2-a1)/float64(n2-n1))
	}
}
