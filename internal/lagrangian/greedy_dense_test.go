package lagrangian

import (
	"math/rand"
	"reflect"
	"testing"

	"ucp/internal/bitmat"
	"ucp/internal/matrix"
)

// TestDenseSparseGreedyAgree holds the dense and sparse greedy kernels
// to bit-equality: same counts, same ratings, same tie-breaks, so the
// exact same cover in the exact same order (before the shared
// irredundant cleanup normalises it further).
func TestDenseSparseGreedyAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		nr, nc := 1+rng.Intn(40), 1+rng.Intn(40)
		rows := make([][]int, nr)
		for i := range rows {
			for j := 0; j < nc; j++ {
				if rng.Intn(3) == 0 {
					rows[i] = append(rows[i], j)
				}
			}
			if len(rows[i]) == 0 {
				rows[i] = append(rows[i], rng.Intn(nc))
			}
		}
		cost := make([]int, nc)
		for j := range cost {
			cost[j] = 1 + rng.Intn(4)
		}
		p := matrix.MustNew(rows, nc, cost)
		bm := bitmat.Build(p.Rows, p.NCol)

		// Random lagrangian costs, some non-positive to exercise the
		// relaxed start set.
		ctilde := make([]float64, nc)
		for j := range ctilde {
			ctilde[j] = rng.Float64()*4 - 1
		}

		for v := GammaPerRow; v <= GammaRowLog; v++ {
			sparse := GreedyLagrangian(p, ctilde, v)
			dense := GreedyLagrangianDense(p, bm, ctilde, v)
			if !reflect.DeepEqual(sparse, dense) {
				t.Fatalf("trial %d variant %d: sparse %v dense %v", trial, v, sparse, dense)
			}
		}
	}
}

// TestDenseGreedyInfeasible: a row no column covers must yield nil on
// both paths.
func TestDenseGreedyInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{0}, {}}, NCol: 2, Cost: []int{1, 1}}
	bm := bitmat.Build(p.Rows, p.NCol)
	ctilde := []float64{1, 1}
	if got := GreedyLagrangianDense(p, bm, ctilde, GammaPerRow); got != nil {
		t.Fatalf("dense greedy returned %v on infeasible problem", got)
	}
	if got := GreedyLagrangian(p, ctilde, GammaPerRow); got != nil {
		t.Fatalf("sparse greedy returned %v on infeasible problem", got)
	}
}
