package lagrangian

import (
	"math"

	"ucp/internal/matrix"
)

// Penalties is the outcome of the lagrangian and dual penalty tests of
// §3.6 against a known feasible cost zBest.
type Penalties struct {
	FixIn  []int // columns proven to be in every solution cheaper than zBest
	FixOut []int // columns proven to be in no solution cheaper than zBest
	// NoBetter is set when some column was proven both in and out:
	// then no solution cheaper than zBest exists at all, i.e. the best
	// known solution is optimal.
	NoBetter bool
}

// LagrangianPenalties applies conditions (3) and (4): branching on p_j
// and pruning one side with the lagrangian bound z*_LP ± c̃_j.  With
// integer costs the bound may be rounded up before comparing.
//
//	c̃_j ≤ 0 and ⌈z_LP − c̃_j⌉ ≥ zBest  ⇒  p_j = 1    (3)
//	c̃_j > 0 and ⌈z_LP + c̃_j⌉ ≥ zBest  ⇒  p_j = 0    (4)
func LagrangianPenalties(ctilde []float64, zLP float64, zBest int) *Penalties {
	pen := &Penalties{}
	for j, ct := range ctilde {
		if ct <= 0 {
			if math.Ceil(zLP-ct-1e-9) >= float64(zBest) {
				pen.FixIn = append(pen.FixIn, j)
			}
		} else if math.Ceil(zLP+ct-1e-9) >= float64(zBest) {
			pen.FixOut = append(pen.FixOut, j)
		}
	}
	return pen
}

// DualPenalties applies conditions (5) and (6): the dual problem is
// re-solved by dual ascent with column j's cost raised to infinity
// (pruning p_j = 0) or lowered to zero (pruning p_j = 1).  This
// generalises the limit bound theorem; it is slower than the
// lagrangian penalties, so the caller is expected to gate it on the
// column count (Params.DualPen).
func DualPenalties(p *matrix.Problem, warm []float64, zBest int) *Penalties {
	pen := &Penalties{}
	active := p.ActiveCols()
	const big = 1 << 30
	for _, j := range active {
		orig := p.Cost[j]

		// (5): forbid column j; if even the dual bound of that
		// subproblem reaches zBest, j must be taken.
		p.Cost[j] = big
		_, w0 := DualAscent(p, warm)
		p.Cost[j] = orig
		if math.Ceil(w0-1e-9) >= float64(zBest) {
			pen.FixIn = append(pen.FixIn, j)
		}

		// (6): force column j (cost 0 plus the constant c_j); if the
		// bound reaches zBest, j can be excluded.
		p.Cost[j] = 0
		_, w1 := DualAscent(p, warm)
		p.Cost[j] = orig
		if math.Ceil(w1+float64(orig)-1e-9) >= float64(zBest) {
			pen.FixOut = append(pen.FixOut, j)
		}
	}
	return pen
}

// Merge combines two penalty sets, detecting contradictions (a column
// fixed both in and out proves that no solution beats zBest).
func (a *Penalties) Merge(b *Penalties) *Penalties {
	out := &Penalties{NoBetter: a.NoBetter || b.NoBetter}
	in := make(map[int]bool)
	for _, j := range a.FixIn {
		in[j] = true
	}
	for _, j := range b.FixIn {
		in[j] = true
	}
	outSet := make(map[int]bool)
	for _, j := range a.FixOut {
		outSet[j] = true
	}
	for _, j := range b.FixOut {
		outSet[j] = true
	}
	for j := range in {
		if outSet[j] {
			out.NoBetter = true
		}
		out.FixIn = append(out.FixIn, j)
	}
	for j := range outSet {
		out.FixOut = append(out.FixOut, j)
	}
	sortInts(out.FixIn)
	sortInts(out.FixOut)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// LimitBound applies the classical limit bound theorem (Theorem 2)
// directly: given an independent row set with bound lbMIS, any column
// covering none of those rows whose cost pushes the bound to zBest can
// be removed.  Provided for the bound-comparison experiments; the dual
// penalties subsume it.
func LimitBound(p *matrix.Problem, misRows []int, lbMIS int, zBest int) []int {
	inMIS := make(map[int]bool)
	for _, i := range misRows {
		inMIS[i] = true
	}
	coversMIS := make([]bool, p.NCol)
	for _, i := range misRows {
		for _, j := range p.Rows[i] {
			coversMIS[j] = true
		}
	}
	var removable []int
	for _, j := range p.ActiveCols() {
		if !coversMIS[j] && lbMIS+p.Cost[j] >= zBest {
			removable = append(removable, j)
		}
	}
	return removable
}
