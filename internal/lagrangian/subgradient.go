package lagrangian

import (
	"math"

	"ucp/internal/bitmat"
	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// Params tunes the subgradient ascent.  Zero values select the
// defaults from the paper (DefaultParams).
type Params struct {
	Alpha       float64 // σ_j = c̃_j − α·μ_j rating weight (paper: 2)
	CHat        float64 // promising-column threshold on c̃ (paper: 0.001)
	MuHat       float64 // promising-column threshold on μ (paper: 0.999)
	Delta       float64 // stop when UB − z_λ < Delta
	T0          float64 // initial step coefficient t_0
	TMin        float64 // stop when t_k < TMin
	NT          int     // halve t_k after NT non-improving steps
	MaxIters    int     // hard iteration cap
	DualPen     int     // skip dual penalties above this column count (paper: 100)
	GreedyEvery int     // run the primal heuristic every this many iterations
}

// DefaultParams returns the parameter set used throughout the paper's
// experiments.
func DefaultParams() Params {
	return Params{
		Alpha:       2,
		CHat:        0.001,
		MuHat:       0.999,
		Delta:       1e-3,
		T0:          2,
		TMin:        0.005,
		NT:          15,
		MaxIters:    600,
		DualPen:     100,
		GreedyEvery: 3,
	}
}

func (p *Params) fill() {
	d := DefaultParams()
	if p.Alpha == 0 {
		p.Alpha = d.Alpha
	}
	if p.CHat == 0 {
		p.CHat = d.CHat
	}
	if p.MuHat == 0 {
		p.MuHat = d.MuHat
	}
	if p.Delta == 0 {
		p.Delta = d.Delta
	}
	if p.T0 == 0 {
		p.T0 = d.T0
	}
	if p.TMin == 0 {
		p.TMin = d.TMin
	}
	if p.NT == 0 {
		p.NT = d.NT
	}
	if p.MaxIters == 0 {
		p.MaxIters = d.MaxIters
	}
	if p.DualPen == 0 {
		p.DualPen = d.DualPen
	}
	if p.GreedyEvery == 0 {
		p.GreedyEvery = d.GreedyEvery
	}
}

// Multipliers carries the primal (λ, one per row) and dual-lagrangian
// (μ, one per column) multiplier vectors between subgradient phases,
// so a phase can warm-start from the previous fixing step's result.
type Multipliers struct {
	Lambda []float64
	Mu     []float64
}

// Result is the outcome of one subgradient ascent phase.  Every slice
// is freshly allocated — a Result never aliases the Scratch it was
// computed with.
type Result struct {
	Lambda        []float64 // multipliers achieving LB
	Mu            []float64 // dual-lagrangian multipliers achieving UBDual
	CTilde        []float64 // lagrangian costs c − A'λ at Lambda
	LB            float64   // best lagrangian lower bound z*_LP(λ)
	UBDual        float64   // best dual-lagrangian upper bound on z*_P
	Best          []int     // cheapest feasible solution found by the heuristic
	BestCost      int       // true cost of Best (always p.CostOf(Best))
	ProvedOptimal bool      // BestCost == ⌈LB⌉
	Iters         int
}

// debugIterCheck, when non-nil, is invoked at the end of every
// subgradient iteration with the engine's scratch so differential
// tests can hold the incremental caches (c̃, e, m, g, cnt) to
// bit-equality against from-scratch recomputation.
var debugIterCheck func(p *matrix.Problem, sc *Scratch)

// Subgradient runs the two-sided subgradient scheme of §3.2–3.3 on the
// compact problem p: the primal lagrangian multipliers λ are pushed
// toward the linear-relaxation optimum with update (2), while the dual
// lagrangian multipliers μ descend toward the dual optimum; each side
// supplies the bound the other uses in its step size.  init may carry
// multipliers from a previous phase (nil for a cold start, which seeds
// λ from dual ascent and μ from a greedy cover).  ub0, if positive, is
// a known feasible cost used as an external upper bound: it tightens
// the stopping tests and step sizes but never masquerades as Best —
// Result.BestCost is always the cost of Result.Best.
func Subgradient(p *matrix.Problem, prm Params, init *Multipliers, ub0 int) *Result {
	return SubgradientBudget(p, prm, init, ub0, nil)
}

// SubgradientBudget is Subgradient under a budget: every iteration is
// charged to the tracker and the ascent stops as soon as the budget
// runs out.  The result is still usable — the initial greedy solution
// guarantees Best is a feasible cover (when one exists) even with zero
// iterations, and LB only ever reports bounds actually certified by
// some multiplier vector.
func SubgradientBudget(p *matrix.Problem, prm Params, init *Multipliers, ub0 int, tr *budget.Tracker) *Result {
	var sc Scratch
	return SubgradientScratch(p, prm, init, ub0, tr, &sc)
}

// SubgradientScratch is SubgradientBudget against caller-owned
// scratch, the allocation-free core the fixing loop and the restart
// portfolio run on.  All per-iteration state — the lagrangian costs
// c̃ = c − A'λ, the dual partials e_i = 1 − Σμ, the inner dual
// solution m and its subgradient g = c − A'm — lives in sc and is
// updated incrementally: a multiplier step regathers only the columns
// (rows) whose value actually changed, over the problem's CSC mirror,
// and each regather replays the exact subtraction sequence of a full
// rebuild, so every float is bit-identical to the from-scratch
// computation (see DESIGN.md §9).  Steady-state iterations perform no
// heap allocation.
func SubgradientScratch(p *matrix.Problem, prm Params, init *Multipliers, ub0 int, tr *budget.Tracker, sc *Scratch) *Result {
	if sc == nil {
		sc = &Scratch{}
	}
	prm.fill()
	nr, nc := len(p.Rows), p.NCol
	res := &Result{}
	if nr == 0 {
		res.Best = []int{}
		res.ProvedOptimal = true
		return res
	}
	start, idx := p.CSC()
	sc.attach(p)
	cbar := sc.cbar

	// ----- initial feasible solution (upper bound) -----
	sc.trueCosts = growF64(sc.trueCosts, nc)
	trueCosts := sc.trueCosts
	for j := 0; j < nc; j++ {
		trueCosts[j] = float64(p.Cost[j])
	}
	bestSol := sc.bestGreedy(p, trueCosts)
	if bestSol == nil {
		// Some row is uncoverable; report infeasibility by a nil Best.
		return res
	}
	res.Best = append(make([]int, 0, nc), bestSol...)
	res.BestCost = p.CostOf(res.Best)
	// ubKnown is the tightest feasible cost known anywhere — our own
	// Best or the caller's external bound.  It drives the stopping
	// tests and step sizes; Best/BestCost stay a consistent pair.
	ubKnown := res.BestCost
	if ub0 > 0 && ub0 < ubKnown {
		ubKnown = ub0
	}

	// ----- multiplier initialisation -----
	sc.lambda = growF64(sc.lambda, nr)
	sc.mu = growF64(sc.mu, nc)
	lambda, mu := sc.lambda, sc.mu
	if init != nil && len(init.Lambda) == nr && len(init.Mu) == nc {
		copy(lambda, init.Lambda)
		copy(mu, init.Mu)
	} else {
		// λ₀ from dual ascent (§3.3), μ₀ from the primal heuristic.
		m, _ := sc.da.run(p, nil, tr)
		copy(lambda, m)
		for j := range mu {
			mu[j] = 0
		}
		for _, j := range res.Best {
			mu[j] = 1
		}
	}

	res.Lambda = append([]float64(nil), lambda...)
	res.Mu = append([]float64(nil), mu...)
	res.CTilde = make([]float64, nc)
	res.LB = math.Inf(-1)
	res.UBDual = math.Inf(1)

	// ----- incremental caches at (λ₀, μ₀) -----
	// c̃_j gathered down column j subtracts the λ_i in ascending row
	// order — the same sequence the row-major scatter produces — and
	// cnt[i] counts the c̃ ≤ 0 columns of each row.  negCt mirrors the
	// sign of every c̃_j, so both refresh paths can update cnt purely by
	// sign flips (an exact integer delta) instead of rebuilding it.
	sc.ctilde = growF64(sc.ctilde, nc)
	sc.cnt = growI32(sc.cnt, nr)
	ctilde, cnt := sc.ctilde, sc.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	sc.negCt = bitmat.GrowVec(sc.negCt, nc)
	negCt := sc.negCt
	negCt.Zero()
	for j := 0; j < nc; j++ {
		ctilde[j] = bitmat.GatherSub32(trueCosts[j], idx[start[j]:start[j+1]], lambda)
		if ctilde[j] <= 0 {
			negCt.Set(j)
			for _, i := range idx[start[j]:start[j+1]] {
				cnt[i]++
			}
		}
	}
	// Dual side: e_i = 1 − Σ_{j∋i} μ_j, the inner solution m_i = c̄_i
	// when e_i > 0, and its subgradient g = c − A'm (gathering m down
	// each column; the zero m_i subtract as exact no-ops, so skipping
	// or including them is bit-identical).
	sc.e = growF64(sc.e, nr)
	sc.m = growF64(sc.m, nr)
	e, m := sc.e, sc.m
	for i := 0; i < nr; i++ {
		e[i] = bitmat.GatherSub(1.0, p.Rows[i], mu)
		if e[i] > 0 {
			m[i] = cbar[i]
		} else {
			m[i] = 0
		}
	}
	sc.g = growF64(sc.g, nc)
	g := sc.g
	for j := 0; j < nc; j++ {
		g[j] = bitmat.GatherSub32(trueCosts[j], idx[start[j]:start[j+1]], m)
	}
	sc.s = growF64(sc.s, nr)
	s := sc.s
	sc.dirtyCols = bitmat.GrowVec(sc.dirtyCols, nc)
	sc.dirtyRows = bitmat.GrowVec(sc.dirtyRows, nr)
	sc.gDirty = bitmat.GrowVec(sc.gDirty, nc)
	dirtyCols, dirtyRows, gDirty := sc.dirtyCols, sc.dirtyRows, sc.gDirty
	sc.chRows = growI32(sc.chRows, nr)
	sc.chCols = growI32(sc.chCols, nc)
	chRows, chCols := sc.chRows, sc.chCols

	t := prm.T0
	sinceImprove := 0
	variant := GammaPerRow

	// zlL carries Σλ between iterations: the λ step re-accumulates it
	// over the freshly written multipliers in the same ascending order
	// as this seed loop, so the running value is always bit-identical
	// to a from-scratch sum.
	zlL := 0.0
	for i := 0; i < nr; i++ {
		zlL += lambda[i]
	}

	for k := 0; k < prm.MaxIters; k++ {
		if tr.AddIters(1) {
			break // budget exhausted: keep the bounds certified so far
		}
		res.Iters = k + 1

		// ----- bound ingredients, fused -----
		// One pass over the columns and one over the rows compute every
		// per-iteration aggregate: z_λ (seeded with Σλ, then the c̃ ≤ 0
		// terms in ascending column order), w_LD (μ·c terms first, then
		// the e·c̄ terms — the exact order of the two-loop spelling),
		// ‖g‖² and ‖s‖².  Each accumulator still sums its own terms in
		// its own ascending order, so fusing changes no bits; g, e and
		// cnt are untouched between here and their use below, so hoisting
		// the norms costs nothing but a wasted sum on an early break.
		zl := zlL
		wld := 0.0
		gnorm := 0.0
		for j := 0; j < nc; j++ {
			if ctilde[j] <= 0 {
				zl += ctilde[j]
			}
			wld += mu[j] * trueCosts[j]
			gnorm += g[j] * g[j]
		}
		norm := 0.0
		for i := 0; i < nr; i++ {
			if e[i] > 0 {
				wld += e[i] * cbar[i]
			}
			si := 1 - float64(cnt[i])
			s[i] = si
			norm += si * si
		}
		improved := false
		if zl > res.LB {
			res.LB = zl
			copy(res.Lambda, lambda)
			improved = true
		}

		// ----- primal heuristic on the lagrangian costs -----
		if improved || k%prm.GreedyEvery == 0 {
			sol := sc.greedyAuto(p, ctilde, variant, cnt)
			variant = (variant + 1) % 4
			if sol != nil {
				if c := p.CostOf(sol); c < res.BestCost {
					res.Best = append(res.Best[:0], sol...)
					res.BestCost = c
					if c < ubKnown {
						ubKnown = c
					}
				}
			}
		}

		// Integer costs: a feasible cost matching ⌈LB⌉ ends the ascent
		// (the closing check below decides whether our own Best earns
		// the optimality certificate).
		if float64(ubKnown) <= math.Ceil(res.LB-1e-9) {
			break
		}

		// ----- dual lagrangian value at μ, from the cached partials -----
		if wld < res.UBDual {
			res.UBDual = wld
			copy(res.Mu, mu)
		}

		ub := math.Min(res.UBDual, float64(ubKnown))

		// ----- stopping tests -----
		if ub-zl < prm.Delta {
			break
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= prm.NT {
				t /= 2
				sinceImprove = 0
			}
		}
		if t < prm.TMin {
			break
		}

		// ----- primal subgradient step (formula 2) -----
		// s_i = 1 − |{j ∈ row i : c̃_j ≤ 0}| straight from the
		// maintained counts (s and ‖s‖² were filled in the fused pass).
		if norm == 0 {
			// The relaxed solution is feasible and tight: λ is optimal.
			break
		}
		step := t * math.Abs(ub-zl) / norm
		nch := 0
		zlL = 0
		for i := 0; i < nr; i++ {
			// Branch clamp, bit-identical to math.Max(·, 0): every
			// non-positive value (including −0) maps to +0, NaN passes.
			nl := lambda[i] + step*s[i]
			if nl <= 0 {
				nl = 0
			}
			// Bit compare: one integer test covering both a value change
			// and a ±0 sign flip.
			if math.Float64bits(nl) != math.Float64bits(lambda[i]) {
				lambda[i] = nl
				chRows[nch] = int32(i)
				nch++
			}
			zlL += lambda[i]
		}
		// Both refresh paths below produce bit-identical c̃ and cnt — a
		// full column gather replays the exact subtraction order of a
		// rebuild — so the dense/sparse choice is purely a cost decision:
		// when most of the matrix changed, straight loops beat paying
		// bitset marking on top of the same regathers.  The volume proxy
		// is the changed-row count against the row count (average row
		// length cancels), which keeps the step loop free of per-row
		// length lookups.
		if nch*4 >= nr {
			// Row-major scatter instead of per-column gathers: for any
			// fixed column the subtractions still arrive in ascending row
			// order — the gather's exact sequence — and rows with λ_i = 0
			// are skipped outright, which is a bitwise no-op (x − (+0)
			// keeps every payload, and the clamp never produces −0).
			copy(ctilde, trueCosts)
			for i := 0; i < nr; i++ {
				if li := lambda[i]; li != 0 {
					for _, j := range p.Rows[i] {
						ctilde[j] -= li
					}
				}
			}
			// cnt by sign flips against the negCt mirror — an exact
			// integer delta, so no clear-and-rebuild pass over the rows.
			for j := 0; j < nc; j++ {
				if now := ctilde[j] <= 0; now != negCt.Has(j) {
					if now {
						negCt.Set(j)
						for _, i := range idx[start[j]:start[j+1]] {
							cnt[i]++
						}
					} else {
						negCt.Clear(j)
						for _, i := range idx[start[j]:start[j+1]] {
							cnt[i]--
						}
					}
				}
			}
		} else if nch > 0 {
			for _, i := range chRows[:nch] {
				for _, j := range p.Rows[i] {
					dirtyCols.Set(j)
				}
			}
			dirtyCols.Range(func(j int) bool {
				nv := bitmat.GatherSub32(trueCosts[j], idx[start[j]:start[j+1]], lambda)
				ctilde[j] = nv
				if now := nv <= 0; now != negCt.Has(j) {
					if now {
						negCt.Set(j)
						for _, i := range idx[start[j]:start[j+1]] {
							cnt[i]++
						}
					} else {
						negCt.Clear(j)
						for _, i := range idx[start[j]:start[j+1]] {
							cnt[i]--
						}
					}
				}
				return true
			})
			dirtyCols.Zero()
		}

		// ----- dual subgradient step (descent on w_LD) -----
		// ‖g‖² comes from the fused pass: g last changed in the previous
		// iteration's dual refresh, so the early value is the same value.
		if gnorm > 0 {
			// LB is the tightest available lower estimate of z*_P for
			// sizing the descent step on the dual side.
			dstep := t * math.Abs(wld-res.LB) / gnorm
			nch = 0
			for j := 0; j < nc; j++ {
				// Branch clamp, bit-identical to Min(Max(·, 0), 1).
				nv := mu[j] - dstep*g[j]
				if nv <= 0 {
					nv = 0
				} else if nv > 1 {
					nv = 1
				}
				if math.Float64bits(nv) != math.Float64bits(mu[j]) {
					mu[j] = nv
					chCols[nch] = int32(j)
					nch++
				}
			}
			// Same dense/sparse split as the primal side: the full path
			// regathers every e, m and g — bit-identical to the selective
			// refresh, since unchanged inputs regather to unchanged bits.
			if nch*4 >= nc {
				// Scatter both halves with zero skipping.  e: start from
				// the all-ones vector and subtract each non-zero μ_j down
				// its column — for a fixed row the subtractions arrive in
				// ascending column order, the per-row gather's exact
				// sequence, and skipping μ_j = 0 is a bitwise no-op.
				// g: scatter the m_i > 0 rows into c, same argument on
				// the other axis (ascending row order down each column).
				for i := 0; i < nr; i++ {
					e[i] = 1
				}
				for j := 0; j < nc; j++ {
					if mj := mu[j]; mj != 0 {
						for _, i := range idx[start[j]:start[j+1]] {
							e[i] -= mj
						}
					}
				}
				copy(g, trueCosts)
				for i := 0; i < nr; i++ {
					if e[i] > 0 {
						mi := cbar[i]
						m[i] = mi
						for _, j := range p.Rows[i] {
							g[j] -= mi
						}
					} else {
						m[i] = 0
					}
				}
			} else if nch > 0 {
				for _, j := range chCols[:nch] {
					for _, i := range idx[start[j]:start[j+1]] {
						dirtyRows.Set(int(i))
					}
				}
				// Refresh e for the touched rows; when the inner solution
				// m_i flips, the columns of row i need their g regathered.
				dirtyRows.Range(func(i int) bool {
					e[i] = bitmat.GatherSub(1.0, p.Rows[i], mu)
					nm := 0.0
					if e[i] > 0 {
						nm = cbar[i]
					}
					if nm != m[i] {
						m[i] = nm
						for _, j := range p.Rows[i] {
							gDirty.Set(j)
						}
					}
					return true
				})
				dirtyRows.Zero()
				gDirty.Range(func(j int) bool {
					g[j] = bitmat.GatherSub32(trueCosts[j], idx[start[j]:start[j+1]], m)
					return true
				})
				gDirty.Zero()
			}
		}

		if debugIterCheck != nil {
			debugIterCheck(p, sc)
		}
	}

	// One gather at exit replaces a copy on every LB improvement: the
	// incremental cache invariant says c̃ at any λ equals the full
	// column gather at that λ bit for bit, so gathering at res.Lambda
	// reproduces exactly the cache contents the improving iteration saw.
	for j := 0; j < nc; j++ {
		res.CTilde[j] = bitmat.GatherSub32(trueCosts[j], idx[start[j]:start[j+1]], res.Lambda)
	}
	if float64(res.BestCost) <= math.Ceil(res.LB-1e-9) {
		res.ProvedOptimal = true
	}
	return res
}

// Sigma rates every column with the fixing score σ_j = c̃_j − α·μ_j of
// §3.7: the smaller the score, the more likely the column belongs to
// an optimal solution.
func Sigma(ctilde, mu []float64, alpha float64) []float64 {
	s := make([]float64, len(ctilde))
	for j := range s {
		s[j] = ctilde[j] - alpha*mu[j]
	}
	return s
}

// Promising returns the columns satisfying both fixing conditions of
// §3.7: lagrangian cost below CHat and dual value above MuHat.
func Promising(ctilde, mu []float64, prm Params) []int {
	prm.fill()
	var out []int
	for j := range ctilde {
		if ctilde[j] <= prm.CHat && mu[j] >= prm.MuHat {
			out = append(out, j)
		}
	}
	return out
}
