package lagrangian

import (
	"math"

	"ucp/internal/bitmat"
	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// Params tunes the subgradient ascent.  Zero values select the
// defaults from the paper (DefaultParams).
type Params struct {
	Alpha       float64 // σ_j = c̃_j − α·μ_j rating weight (paper: 2)
	CHat        float64 // promising-column threshold on c̃ (paper: 0.001)
	MuHat       float64 // promising-column threshold on μ (paper: 0.999)
	Delta       float64 // stop when UB − z_λ < Delta
	T0          float64 // initial step coefficient t_0
	TMin        float64 // stop when t_k < TMin
	NT          int     // halve t_k after NT non-improving steps
	MaxIters    int     // hard iteration cap
	DualPen     int     // skip dual penalties above this column count (paper: 100)
	GreedyEvery int     // run the primal heuristic every this many iterations
}

// DefaultParams returns the parameter set used throughout the paper's
// experiments.
func DefaultParams() Params {
	return Params{
		Alpha:       2,
		CHat:        0.001,
		MuHat:       0.999,
		Delta:       1e-3,
		T0:          2,
		TMin:        0.005,
		NT:          15,
		MaxIters:    600,
		DualPen:     100,
		GreedyEvery: 3,
	}
}

func (p *Params) fill() {
	d := DefaultParams()
	if p.Alpha == 0 {
		p.Alpha = d.Alpha
	}
	if p.CHat == 0 {
		p.CHat = d.CHat
	}
	if p.MuHat == 0 {
		p.MuHat = d.MuHat
	}
	if p.Delta == 0 {
		p.Delta = d.Delta
	}
	if p.T0 == 0 {
		p.T0 = d.T0
	}
	if p.TMin == 0 {
		p.TMin = d.TMin
	}
	if p.NT == 0 {
		p.NT = d.NT
	}
	if p.MaxIters == 0 {
		p.MaxIters = d.MaxIters
	}
	if p.DualPen == 0 {
		p.DualPen = d.DualPen
	}
	if p.GreedyEvery == 0 {
		p.GreedyEvery = d.GreedyEvery
	}
}

// Multipliers carries the primal (λ, one per row) and dual-lagrangian
// (μ, one per column) multiplier vectors between subgradient phases,
// so a phase can warm-start from the previous fixing step's result.
type Multipliers struct {
	Lambda []float64
	Mu     []float64
}

// Result is the outcome of one subgradient ascent phase.
type Result struct {
	Lambda        []float64 // multipliers achieving LB
	Mu            []float64 // dual-lagrangian multipliers achieving UBDual
	CTilde        []float64 // lagrangian costs c − A'λ at Lambda
	LB            float64   // best lagrangian lower bound z*_LP(λ)
	UBDual        float64   // best dual-lagrangian upper bound on z*_P
	Best          []int     // cheapest feasible solution found
	BestCost      int
	ProvedOptimal bool // BestCost == ⌈LB⌉
	Iters         int
}

// Subgradient runs the two-sided subgradient scheme of §3.2–3.3 on the
// compact problem p: the primal lagrangian multipliers λ are pushed
// toward the linear-relaxation optimum with update (2), while the dual
// lagrangian multipliers μ descend toward the dual optimum; each side
// supplies the bound the other uses in its step size.  init may carry
// multipliers from a previous phase (nil for a cold start, which seeds
// λ from dual ascent and μ from a greedy cover).  ub0, if positive, is
// a known feasible cost used as the initial upper bound.
func Subgradient(p *matrix.Problem, prm Params, init *Multipliers, ub0 int) *Result {
	return SubgradientBudget(p, prm, init, ub0, nil)
}

// SubgradientBudget is Subgradient under a budget: every iteration is
// charged to the tracker and the ascent stops as soon as the budget
// runs out.  The result is still usable — the initial greedy solution
// guarantees Best is a feasible cover (when one exists) even with zero
// iterations, and LB only ever reports bounds actually certified by
// some multiplier vector.
func SubgradientBudget(p *matrix.Problem, prm Params, init *Multipliers, ub0 int, tr *budget.Tracker) *Result {
	prm.fill()
	nr, nc := len(p.Rows), p.NCol
	res := &Result{}
	if nr == 0 {
		res.Best = []int{}
		res.ProvedOptimal = true
		return res
	}
	colRows := p.ColumnRows()

	// Dense bit-matrix sidecar for the coverage-counting kernels (the
	// greedy primal heuristic and the per-iteration subgradient s);
	// nil above the density/size threshold keeps everything sparse.
	var bm *bitmat.Matrix
	if matrix.DenseEligible(p) {
		bm = bitmat.Build(p.Rows, p.NCol)
	}

	// ----- initial feasible solution (upper bound) -----
	trueCosts := FloatCosts(p)
	best := BestGreedy(p, colRows, bm, trueCosts)
	if best == nil {
		// Some row is uncoverable; report infeasibility by a nil Best.
		return res
	}
	res.Best, res.BestCost = best, p.CostOf(best)
	if ub0 > 0 && ub0 < res.BestCost {
		res.BestCost = ub0 // caller knows a better cover elsewhere
	}

	// ----- multiplier initialisation -----
	var lambda, mu []float64
	if init != nil && len(init.Lambda) == nr && len(init.Mu) == nc {
		lambda = append([]float64(nil), init.Lambda...)
		mu = append([]float64(nil), init.Mu...)
	} else {
		// λ₀ from dual ascent (§3.3), μ₀ from the primal heuristic.
		m, _ := DualAscentBudget(p, nil, tr)
		lambda = m
		mu = make([]float64, nc)
		for _, j := range best {
			mu[j] = 1
		}
	}

	res.Lambda = append([]float64(nil), lambda...)
	res.Mu = append([]float64(nil), mu...)
	res.LB = math.Inf(-1)
	res.UBDual = math.Inf(1)

	ctilde := make([]float64, nc)
	s := make([]float64, nr) // primal subgradient e − Ap*
	g := make([]float64, nc) // dual subgradient c − A'm*
	var nonpos bitmat.Vec    // columns with c̃ ≤ 0, for the dense kernel
	if bm != nil {
		nonpos = bitmat.NewVec(nc)
	}
	m := make([]float64, nr) // dual-lagrangian inner solution
	cbar := make([]float64, nr)
	for i, r := range p.Rows {
		cb := math.Inf(1)
		for _, j := range r {
			if float64(p.Cost[j]) < cb {
				cb = float64(p.Cost[j])
			}
		}
		cbar[i] = cb
	}

	t := prm.T0
	sinceImprove := 0
	variant := GammaPerRow

	for k := 0; k < prm.MaxIters; k++ {
		if tr.AddIters(1) {
			break // budget exhausted: keep the bounds certified so far
		}
		res.Iters = k + 1

		// ----- primal lagrangian value at λ -----
		for j := 0; j < nc; j++ {
			ctilde[j] = float64(p.Cost[j])
		}
		zl := 0.0
		for i := 0; i < nr; i++ {
			zl += lambda[i]
			for _, j := range p.Rows[i] {
				ctilde[j] -= lambda[i]
			}
		}
		for j := 0; j < nc; j++ {
			if ctilde[j] <= 0 {
				zl += ctilde[j]
			}
		}
		improved := false
		if zl > res.LB {
			res.LB = zl
			copy(res.Lambda, lambda)
			res.CTilde = append(res.CTilde[:0], ctilde...)
			improved = true
		}

		// ----- primal heuristic on the lagrangian costs -----
		if improved || k%prm.GreedyEvery == 0 {
			sol := greedyAuto(p, colRows, bm, ctilde, variant)
			variant = (variant + 1) % 4
			if sol != nil {
				if c := p.CostOf(sol); c < res.BestCost {
					res.Best, res.BestCost = sol, c
				}
			}
		}

		// Integer costs: a solution matching ⌈LB⌉ is optimal.
		if float64(res.BestCost) <= math.Ceil(res.LB-1e-9) {
			res.ProvedOptimal = true
			break
		}

		// ----- dual lagrangian value at μ -----
		wld := 0.0
		for j := 0; j < nc; j++ {
			wld += mu[j] * float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			et := 1.0
			for _, j := range p.Rows[i] {
				et -= mu[j]
			}
			if et > 0 {
				m[i] = cbar[i]
				wld += et * cbar[i]
			} else {
				m[i] = 0
			}
		}
		if wld < res.UBDual {
			res.UBDual = wld
			copy(res.Mu, mu)
		}

		ub := math.Min(res.UBDual, float64(res.BestCost))

		// ----- stopping tests -----
		if ub-zl < prm.Delta {
			break
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= prm.NT {
				t /= 2
				sinceImprove = 0
			}
		}
		if t < prm.TMin {
			break
		}

		// ----- primal subgradient step (formula 2) -----
		// s_i = 1 − |{j ∈ row i : c̃_j ≤ 0}|: with the dense sidecar
		// the count is a popcount of row ∧ mask instead of a walk over
		// the sparse row (identical integer, so identical floats).
		norm := 0.0
		if bm != nil {
			nonpos.Zero()
			for j := 0; j < nc; j++ {
				if ctilde[j] <= 0 {
					nonpos.Set(j)
				}
			}
			for i := 0; i < nr; i++ {
				s[i] = 1 - float64(bm.Row(i).AndPopcount(nonpos))
				norm += s[i] * s[i]
			}
		} else {
			for i := 0; i < nr; i++ {
				s[i] = 1
				for _, j := range p.Rows[i] {
					if ctilde[j] <= 0 {
						s[i]--
					}
				}
				norm += s[i] * s[i]
			}
		}
		if norm == 0 {
			// The relaxed solution is feasible and tight: λ is optimal.
			break
		}
		step := t * math.Abs(ub-zl) / norm
		for i := 0; i < nr; i++ {
			lambda[i] = math.Max(lambda[i]+step*s[i], 0)
		}

		// ----- dual subgradient step (descent on w_LD) -----
		gnorm := 0.0
		for j := 0; j < nc; j++ {
			g[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			if m[i] > 0 {
				for _, j := range p.Rows[i] {
					g[j] -= m[i]
				}
			}
		}
		for j := 0; j < nc; j++ {
			gnorm += g[j] * g[j]
		}
		if gnorm > 0 {
			// LB is the tightest available lower estimate of z*_P for
			// sizing the descent step on the dual side.
			dstep := t * math.Abs(wld-res.LB) / gnorm
			for j := 0; j < nc; j++ {
				mu[j] = math.Min(math.Max(mu[j]-dstep*g[j], 0), 1)
			}
		}
	}

	if res.CTilde == nil {
		// MaxIters = 0 corner: compute c̃ at the initial λ.
		res.CTilde = make([]float64, nc)
		for j := 0; j < nc; j++ {
			res.CTilde[j] = float64(p.Cost[j])
		}
		for i := 0; i < nr; i++ {
			for _, j := range p.Rows[i] {
				res.CTilde[j] -= res.Lambda[i]
			}
		}
	}
	if float64(res.BestCost) <= math.Ceil(res.LB-1e-9) {
		res.ProvedOptimal = true
	}
	return res
}

// Sigma rates every column with the fixing score σ_j = c̃_j − α·μ_j of
// §3.7: the smaller the score, the more likely the column belongs to
// an optimal solution.
func Sigma(ctilde, mu []float64, alpha float64) []float64 {
	s := make([]float64, len(ctilde))
	for j := range s {
		s[j] = ctilde[j] - alpha*mu[j]
	}
	return s
}

// Promising returns the columns satisfying both fixing conditions of
// §3.7: lagrangian cost below CHat and dual value above MuHat.
func Promising(ctilde, mu []float64, prm Params) []int {
	prm.fill()
	var out []int
	for j := range ctilde {
		if ctilde[j] <= prm.CHat && mu[j] >= prm.MuHat {
			out = append(out, j)
		}
	}
	return out
}
