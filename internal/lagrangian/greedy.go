package lagrangian

import (
	"math"
	"math/bits"
	"sync/atomic"

	"ucp/internal/bitmat"
	"ucp/internal/matrix"
)

// GammaVariant selects one of the paper's four rating functions used
// by the auxiliary greedy primal heuristic (§3.5).
type GammaVariant int

// The four rating functions γ_j of §3.5.
const (
	GammaPerRow        GammaVariant = iota // c̃_j / n_j
	GammaLog                               // c̃_j / lg₂(n_j + 1)
	GammaRowLog                            // c̃_j / (n_j · lg₂(n_j + 1))
	GammaRowImportance                     // c̃_j weighted by row scarcity
)

// log2Cache holds the shared table with t[n] = lg₂(n+1): the greedy
// rating loops evaluate lg₂ once per candidate per pick, and a table
// of the exact same math.Log2 values (so bit-identical ratings) turns
// that hot transcendental into a load.  The table is grown
// copy-on-write behind an atomic pointer — entries depend only on
// their index, so concurrent growers in the restart portfolio all
// produce prefixes of the same table and any published version is
// valid.
var log2Cache atomic.Pointer[[]float64]

func log2Table(max int) []float64 {
	if t := log2Cache.Load(); t != nil && len(*t) > max {
		return *t
	}
	n := 2 * (max + 1)
	if t := log2Cache.Load(); t != nil && 2*len(*t) > n {
		n = 2 * len(*t)
	}
	nt := make([]float64, n)
	for i := 1; i < n; i++ {
		nt[i] = math.Log2(float64(i) + 1)
	}
	log2Cache.Store(&nt)
	return nt
}

// nlog2Cache memoises i·log₂(i+1), the GammaRowLog denominator, so
// that variant's argmin scan is one table load instead of a convert
// and a multiply per candidate.  Entry i is the exact IEEE product of
// float64(i) and the log2Table entry, so the substitution changes no
// bits.  Same racy-but-idempotent publication as log2Cache.
var nlog2Cache atomic.Pointer[[]float64]

func nlog2Table(max int) []float64 {
	if t := nlog2Cache.Load(); t != nil && len(*t) > max {
		return *t
	}
	lg := log2Table(max)
	nt := make([]float64, len(lg))
	for i := range nt {
		nt[i] = float64(i) * lg[i]
	}
	nlog2Cache.Store(&nt)
	return nt
}

// GreedyLagrangian builds a feasible solution of p.  It starts from
// the lagrangian relaxation's solution (every column with c̃_j ≤ 0),
// then repeatedly adds the column minimising γ_j over the still
// uncovered rows, and finally drops redundant columns (highest true
// cost first).  ctilde may be the true costs (as floats) to obtain the
// classical Chvátal-style greedy start.  The returned slice is
// caller-owned; the subgradient engine runs the same kernel against
// its Scratch so the hot path allocates nothing.
func GreedyLagrangian(p *matrix.Problem, ctilde []float64, v GammaVariant) []int {
	var sc Scratch
	if v == GammaRowImportance {
		sc.prepGreedyWeights(p)
	}
	sol := sc.greedySparse(p, ctilde, v, nil)
	if sol == nil {
		return nil
	}
	return append(make([]int, 0, len(sol)), sol...)
}

// greedySparse is the sparse greedy kernel against sc's buffers.  The
// per-column "uncovered rows" counts (and, for the fourth variant,
// scarcity weights) are maintained incrementally, so one full build
// costs O(nnz + Σ picks·live) rather than O(picks·nnz); column row
// lists come from the problem's CSC mirror.  The returned slice is
// backed by sc, valid until its next use.
//
// A column is a pick candidate exactly while n_j > 0 — adding column j
// covers all its rows, so n_j drops to zero and it can never recur —
// and n only decreases within a build, so the live candidates form a
// shrinking set kept as a swap-remove list.  The argmin visits that
// list in arbitrary order, which betterGamma's total order makes
// harmless.
//
// rowCnt, when non-nil, must hold |{j ∈ row i : c̃_j ≤ 0}| for the
// given ctilde (the subgradient engine maintains exactly this).  The
// start state is then reconstructed directly — covered_i ⇔ rowCnt_i >
// 0, n from one pass over the uncovered rows — instead of replaying
// every start column's add.  The reconstruction is exact: the integer
// state is order-independent, and the scarcity variant's float w
// decrements for the start batch are applied in ascending row order by
// both paths (the canonical order — see the classic branch), so the
// two starts agree bit for bit.
func (sc *Scratch) greedySparse(p *matrix.Problem, ctilde []float64, v GammaVariant, rowCnt []int32) []int {
	nr, nc := len(p.Rows), p.NCol
	start, idx := p.CSC()
	gr := &sc.gr
	covered := growBool(gr.covered, nr)
	gr.covered = covered
	gr.sol = gr.sol[:0]

	// Scarcity weights for the fourth variant are phase-wide (see
	// prepGreedyWeights): each build starts from the all-uncovered
	// column sums w0 instead of regathering them.
	w, rowWeight := gr.w, gr.rowWeight
	if v == GammaRowImportance {
		w = growF64(gr.w, nc)
		gr.w = w
		copy(w, gr.w0)
	}

	// n[j]: uncovered rows of column j, with the n > 0 columns listed
	// in act (pos[j] is j's slot there, -1 once retired).
	n := growI32(gr.n, nc)
	gr.n = n
	act := growI32(gr.cand, nc)
	gr.cand = act
	pos := growI32(gr.pos, nc)
	gr.pos = pos
	na := 0

	retire := func(k int) {
		pk := pos[k]
		na--
		last := act[na]
		act[pk] = last
		pos[last] = pk
		pos[k] = -1
	}
	add := func(j int) {
		gr.sol = append(gr.sol, j)
		for _, ii := range idx[start[j]:start[j+1]] {
			i := int(ii)
			if covered[i] {
				continue
			}
			covered[i] = true
			gr.nCovered++
			if v == GammaRowImportance {
				for _, k := range p.Rows[i] {
					w[k] -= rowWeight[i]
					if n[k]--; n[k] == 0 {
						retire(k)
					}
				}
			} else {
				for _, k := range p.Rows[i] {
					if n[k]--; n[k] == 0 {
						retire(k)
					}
				}
			}
		}
	}

	if rowCnt != nil {
		// Start state straight from the engine's counts.  Only columns
		// touching an uncovered row enter the candidate machinery; the
		// epoch stamp tells a first touch from an increment, so nothing
		// needs a full clear.  The resulting covered/n/act state is
		// exactly what replaying the start adds produces — same covered
		// set, same integer counts, same candidate set — only the act
		// order differs, which the argmin's total order absorbs.  The
		// scarcity weights are decremented in ascending row order over
		// the covered rows, matching the classic branch exactly.
		gr.stampEpoch++
		if gr.stampEpoch == 0 { // wrapped: stale stamps could collide
			for k := range gr.stamp {
				gr.stamp[k] = 0
			}
			gr.stampEpoch = 1
		}
		stamp := growU32(gr.stamp, nc)
		gr.stamp = stamp
		epoch := gr.stampEpoch
		nCov := 0
		for i := 0; i < nr; i++ {
			if rowCnt[i] != 0 {
				covered[i] = true
				nCov++
				if v == GammaRowImportance {
					for _, k := range p.Rows[i] {
						w[k] -= rowWeight[i]
					}
				}
				continue
			}
			covered[i] = false
			for _, k := range p.Rows[i] {
				if stamp[k] != epoch {
					stamp[k] = epoch
					n[k] = 1
					pos[k] = int32(na)
					act[na] = int32(k)
					na++
				} else {
					n[k]++
				}
			}
		}
		gr.nCovered = nCov
		for j := 0; j < nc; j++ {
			if ctilde[j] <= 0 && start[j+1] > start[j] {
				gr.sol = append(gr.sol, j)
			}
		}
	} else {
		for i := range covered {
			covered[i] = false
		}
		gr.nCovered = 0
		for j := 0; j < nc; j++ {
			n[j] = start[j+1] - start[j]
			if n[j] > 0 {
				pos[j] = int32(na)
				act[na] = int32(j)
				na++
			} else {
				pos[j] = -1
			}
		}
		// Start from the relaxed solution.  The scarcity weights are
		// deliberately NOT updated inside these adds: the start batch is
		// one atomic event — w_j depends on the set of rows it leaves
		// uncovered, not on the order they were covered in — so the
		// decrements are applied afterwards in ascending row order, the
		// canonical order the count-derived start replays bit for bit.
		// (Picks after the start update w inside add as usual: each pick
		// is its own event, and within one add the newly covered rows
		// are visited in ascending order too.)
		startAdds := v == GammaRowImportance
		for j := 0; j < nc; j++ {
			if ctilde[j] <= 0 && start[j+1] > start[j] {
				if startAdds {
					gr.sol = append(gr.sol, j)
					for _, ii := range idx[start[j]:start[j+1]] {
						i := int(ii)
						if covered[i] {
							continue
						}
						covered[i] = true
						gr.nCovered++
						for _, k := range p.Rows[i] {
							if n[k]--; n[k] == 0 {
								retire(k)
							}
						}
					}
				} else {
					add(j)
				}
			}
		}
		if startAdds {
			for i := 0; i < nr; i++ {
				if covered[i] {
					for _, k := range p.Rows[i] {
						w[k] -= rowWeight[i]
					}
				}
			}
		}
	}

	var lg, nlg []float64
	switch v {
	case GammaLog:
		lg = log2Table(nr)
	case GammaRowLog:
		nlg = nlog2Table(nr)
	}
	// Candidates all have c̃_j > 0 (non-positive ones were taken in the
	// start solution), so smaller γ is better.  Each variant gets its
	// own specialised scan — betterGamma with the short-circuits laid
	// bare and no per-candidate dispatch.
	cost := p.Cost
	for gr.nCovered < nr {
		best, bestGamma := -1, math.Inf(1)
		switch v {
		case GammaPerRow:
			for _, jj := range act[:na] {
				j := int(jj)
				gamma := ctilde[j] / float64(n[j])
				if best < 0 || gamma < bestGamma {
					best, bestGamma = j, gamma
				} else if gamma == bestGamma {
					if cj, cb := cost[j], cost[best]; cj < cb || (cj == cb && j < best) {
						best = j
					}
				}
			}
		case GammaLog:
			for _, jj := range act[:na] {
				j := int(jj)
				gamma := ctilde[j] / lg[n[j]]
				if best < 0 || gamma < bestGamma {
					best, bestGamma = j, gamma
				} else if gamma == bestGamma {
					if cj, cb := cost[j], cost[best]; cj < cb || (cj == cb && j < best) {
						best = j
					}
				}
			}
		case GammaRowLog:
			for _, jj := range act[:na] {
				j := int(jj)
				gamma := ctilde[j] / nlg[n[j]]
				if best < 0 || gamma < bestGamma {
					best, bestGamma = j, gamma
				} else if gamma == bestGamma {
					if cj, cb := cost[j], cost[best]; cj < cb || (cj == cb && j < best) {
						best = j
					}
				}
			}
		case GammaRowImportance:
			for _, jj := range act[:na] {
				j := int(jj)
				gamma := ctilde[j] / w[j]
				if best < 0 || gamma < bestGamma {
					best, bestGamma = j, gamma
				} else if gamma == bestGamma {
					if cj, cb := cost[j], cost[best]; cj < cb || (cj == cb && j < best) {
						best = j
					}
				}
			}
		}
		if best < 0 {
			return nil // uncoverable row
		}
		add(best)
	}
	return p.IrredundantUniqueWs(&gr.ws, gr.sol)
}

// prepGreedyWeights fills the phase-wide scarcity weights of the
// fourth rating variant: rowWeight[i] favours rows covered by few
// columns, and w0[j] is column j's total weight over its rows (the
// all-uncovered starting value of the incremental w).  Both depend
// only on the structure of p, so attach — and the public greedy
// wrappers, which run without attach — compute them once per phase
// instead of once per build.
func (sc *Scratch) prepGreedyWeights(p *matrix.Problem) {
	nr, nc := len(p.Rows), p.NCol
	start, idx := p.CSC()
	gr := &sc.gr
	gr.rowWeight = growF64(gr.rowWeight, nr)
	for i, r := range p.Rows {
		if len(r) <= 1 {
			gr.rowWeight[i] = 1e9 // essentially forced row
		} else {
			gr.rowWeight[i] = 1 / float64(len(r)-1)
		}
	}
	gr.w0 = growF64(gr.w0, nc)
	for j := 0; j < nc; j++ {
		w := 0.0
		for _, i := range idx[start[j]:start[j+1]] {
			w += gr.rowWeight[i]
		}
		gr.w0[j] = w
	}
}

// betterGamma is the full deterministic order on greedy candidates:
// smaller rating first, then smaller true cost, then smaller column
// id.  Spelling out the whole chain (instead of relying on the scan
// direction to break the final tie) makes the argmin independent of
// column visit order, which the sparse and dense greedy kernels — and
// the parallel restart portfolio built on their determinism — require.
func betterGamma(gamma, bestGamma float64, cost, bestCost, j, bestJ int) bool {
	if gamma != bestGamma {
		return gamma < bestGamma
	}
	if cost != bestCost {
		return cost < bestCost
	}
	return j < bestJ
}

// GreedyLagrangianDense is GreedyLagrangian on a dense bit-matrix: the
// covered-row set is a bitset, cover updates are word-wise ORs, and
// the per-column uncovered counts are popcounts of column ∧ uncovered.
// It produces exactly the same cover as the sparse kernel (same counts,
// same ratings, same tie-breaks); the differential tests hold the two
// to bit-equality.  The scarcity-weighted variant needs per-row float
// weights, which bitsets cannot fold, so it stays on the sparse path.
func GreedyLagrangianDense(p *matrix.Problem, bm *bitmat.Matrix, ctilde []float64, v GammaVariant) []int {
	var sc Scratch
	if v == GammaRowImportance {
		sc.prepGreedyWeights(p)
	}
	sol := sc.greedyDense(p, bm, ctilde, v, nil)
	if sol == nil {
		return nil
	}
	return append(make([]int, 0, len(sol)), sol...)
}

// greedyDense is the dense greedy kernel against sc's buffers; bm must
// hold exactly p.Rows.  Same contract as greedySparse.
func (sc *Scratch) greedyDense(p *matrix.Problem, bm *bitmat.Matrix, ctilde []float64, v GammaVariant, rowCnt []int32) []int {
	if v == GammaRowImportance {
		return sc.greedySparse(p, ctilde, v, rowCnt)
	}
	nr, nc := len(p.Rows), p.NCol
	gr := &sc.gr
	gr.uncovered = bitmat.GrowVec(gr.uncovered, nr)
	gr.uncovered.SetAll(nr)
	left := nr
	gr.inSol = growBool(gr.inSol, nc)
	for j := range gr.inSol {
		gr.inSol[j] = false
	}
	gr.sol = gr.sol[:0]

	add := func(j int) {
		gr.inSol[j] = true
		gr.sol = append(gr.sol, j)
		left = gr.uncovered.AndNotPopcount(bm.Col(j))
	}

	// Start from the relaxed solution.
	for j := 0; j < nc; j++ {
		if ctilde[j] <= 0 && bm.ColLen(j) > 0 {
			add(j)
		}
	}

	var lg, nlg []float64
	switch v {
	case GammaLog:
		lg = log2Table(nr)
	case GammaRowLog:
		nlg = nlog2Table(nr)
	}
	// Per-pick candidate counts, gathered from the sparse rows of the
	// still-uncovered set: n[j] built this way equals the bit-kernel
	// count popcount(col_j ∧ uncovered) exactly, but costs O(uncovered
	// nnz) instead of O(columns · words) — and after the relaxed start
	// the uncovered set is typically tiny.  betterGamma is a total
	// order, so the argmin does not depend on candidate visit order.
	// gcnt is all-zero between picks (each scan resets the entries it
	// touched), so reuse across builds needs no clearing pass.
	gr.gcnt = growI32(gr.gcnt, nc)
	cnt := gr.gcnt
	cand := gr.cand[:0]
	for left > 0 {
		cand = cand[:0]
		// Iterate the uncovered words directly (rather than Vec.Range)
		// to spare a closure call per set bit on the hottest loop.
		for wi, w := range gr.uncovered {
			base := wi << 6
			for w != 0 {
				i := base + bits.TrailingZeros64(w)
				w &= w - 1
				for _, j := range p.Rows[i] {
					if cnt[j] == 0 {
						cand = append(cand, int32(j))
					}
					cnt[j]++
				}
			}
		}
		best, bestGamma := -1, math.Inf(1)
		for _, jj := range cand {
			j := int(jj)
			n := int(cnt[j])
			cnt[j] = 0 // reset for the next pick as we scan
			if gr.inSol[j] {
				continue
			}
			var gamma float64
			switch v {
			case GammaPerRow:
				gamma = ctilde[j] / float64(n)
			case GammaLog:
				gamma = ctilde[j] / lg[n]
			case GammaRowLog:
				gamma = ctilde[j] / nlg[n]
			}
			if best < 0 || betterGamma(gamma, bestGamma, p.Cost[j], p.Cost[best], j, best) {
				best, bestGamma = j, gamma
			}
		}
		gr.cand = cand
		if best < 0 {
			return nil // uncoverable row
		}
		add(best)
	}
	gr.cand = cand
	return p.IrredundantUniqueWs(&gr.ws, gr.sol)
}

// BestGreedy runs all four rating variants against sc (nil for
// throwaway scratch) and returns the cheapest resulting cover by true
// cost, or nil if the problem is infeasible.  The returned slice is
// backed by sc; callers that keep it must copy.
func BestGreedy(p *matrix.Problem, sc *Scratch, ctilde []float64) []int {
	if sc == nil {
		sc = &Scratch{}
	}
	sc.attach(p)
	return sc.bestGreedy(p, ctilde)
}

// bestGreedy is BestGreedy against sc's own dense sidecar (set up by
// attach).  The winner is copied into sc.gr.bestBuf so later builds
// cannot clobber it.
func (sc *Scratch) bestGreedy(p *matrix.Problem, ctilde []float64) []int {
	if sc.gr.bestBuf == nil {
		sc.gr.bestBuf = make([]int, 0, p.NCol)
	}
	found := false
	bestCost := 0
	for v := GammaPerRow; v <= GammaRowImportance; v++ {
		sol := sc.greedyAuto(p, ctilde, v, nil)
		if sol == nil {
			continue
		}
		if c := p.CostOf(sol); !found || c < bestCost {
			sc.gr.bestBuf = append(sc.gr.bestBuf[:0], sol...)
			bestCost = c
			found = true
		}
	}
	if !found {
		return nil
	}
	return sc.gr.bestBuf
}

// greedyAuto routes one greedy build to the dense or sparse kernel;
// rowCnt is the engine's per-row count of c̃ ≤ 0 columns when the
// caller maintains it (see greedySparse), nil otherwise.
func (sc *Scratch) greedyAuto(p *matrix.Problem, ctilde []float64, v GammaVariant, rowCnt []int32) []int {
	if sc.useDense && v != GammaRowImportance {
		return sc.greedyDense(p, &sc.bm, ctilde, v, rowCnt)
	}
	return sc.greedySparse(p, ctilde, v, rowCnt)
}

// FloatCosts converts the integer cost vector of p to float64 for use
// as the trivial lagrangian costs (λ = 0).
func FloatCosts(p *matrix.Problem) []float64 {
	c := make([]float64, p.NCol)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	return c
}
