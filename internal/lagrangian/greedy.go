package lagrangian

import (
	"math"

	"ucp/internal/matrix"
)

// GammaVariant selects one of the paper's four rating functions used
// by the auxiliary greedy primal heuristic (§3.5).
type GammaVariant int

// The four rating functions γ_j of §3.5.
const (
	GammaPerRow        GammaVariant = iota // c̃_j / n_j
	GammaLog                               // c̃_j / lg₂(n_j + 1)
	GammaRowLog                            // c̃_j / (n_j · lg₂(n_j + 1))
	GammaRowImportance                     // c̃_j weighted by row scarcity
)

// GreedyLagrangian builds a feasible solution of p.  It starts from
// the lagrangian relaxation's solution (every column with c̃_j ≤ 0),
// then repeatedly adds the column minimising γ_j over the still
// uncovered rows, and finally drops redundant columns (highest true
// cost first).  ctilde may be the true costs (as floats) to obtain the
// classical Chvátal-style greedy start.
//
// The per-column "uncovered rows" counts (and, for the fourth variant,
// scarcity weights) are maintained incrementally, so one full build
// costs O(nnz + picks·columns) rather than O(picks·nnz).
func GreedyLagrangian(p *matrix.Problem, colRows [][]int, ctilde []float64, v GammaVariant) []int {
	nr := len(p.Rows)
	covered := make([]bool, nr)
	nCovered := 0
	inSol := make([]bool, p.NCol)
	var sol []int

	// Row scarcity weights for the fourth variant: rows covered by few
	// columns matter more.
	rowWeight := make([]float64, nr)
	if v == GammaRowImportance {
		for i, r := range p.Rows {
			if len(r) <= 1 {
				rowWeight[i] = 1e9 // essentially forced row
			} else {
				rowWeight[i] = 1 / float64(len(r)-1)
			}
		}
	}

	// n[j]: uncovered rows of column j; w[j]: their total weight.
	n := make([]int, p.NCol)
	w := make([]float64, p.NCol)
	for j := 0; j < p.NCol; j++ {
		n[j] = len(colRows[j])
		if v == GammaRowImportance {
			for _, i := range colRows[j] {
				w[j] += rowWeight[i]
			}
		}
	}

	add := func(j int) {
		inSol[j] = true
		sol = append(sol, j)
		for _, i := range colRows[j] {
			if covered[i] {
				continue
			}
			covered[i] = true
			nCovered++
			for _, k := range p.Rows[i] {
				n[k]--
				if v == GammaRowImportance {
					w[k] -= rowWeight[i]
				}
			}
		}
	}

	// Start from the relaxed solution.
	for j := 0; j < p.NCol; j++ {
		if ctilde[j] <= 0 && len(colRows[j]) > 0 {
			add(j)
		}
	}

	for nCovered < nr {
		best, bestGamma := -1, math.Inf(1)
		for j := 0; j < p.NCol; j++ {
			if inSol[j] || n[j] == 0 {
				continue
			}
			// Candidates here have c̃_j > 0 (non-positive ones were
			// taken in the start solution), so smaller γ is better.
			var gamma float64
			switch v {
			case GammaPerRow:
				gamma = ctilde[j] / float64(n[j])
			case GammaLog:
				gamma = ctilde[j] / math.Log2(float64(n[j])+1)
			case GammaRowLog:
				gamma = ctilde[j] / (float64(n[j]) * math.Log2(float64(n[j])+1))
			case GammaRowImportance:
				gamma = ctilde[j] / w[j]
			}
			if gamma < bestGamma || (gamma == bestGamma && best >= 0 && p.Cost[j] < p.Cost[best]) {
				best, bestGamma = j, gamma
			}
		}
		if best < 0 {
			return nil // uncoverable row
		}
		add(best)
	}
	return p.Irredundant(sol)
}

// BestGreedy runs all four rating variants and returns the cheapest
// resulting cover (by true cost), or nil if the problem is infeasible.
func BestGreedy(p *matrix.Problem, colRows [][]int, ctilde []float64) []int {
	var best []int
	bestCost := math.MaxInt
	for v := GammaPerRow; v <= GammaRowImportance; v++ {
		sol := GreedyLagrangian(p, colRows, ctilde, v)
		if sol == nil {
			continue
		}
		if c := p.CostOf(sol); c < bestCost {
			best, bestCost = sol, c
		}
	}
	return best
}

// FloatCosts converts the integer cost vector of p to float64 for use
// as the trivial lagrangian costs (λ = 0).
func FloatCosts(p *matrix.Problem) []float64 {
	c := make([]float64, p.NCol)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	return c
}
