package lagrangian

import (
	"math"
	"sync/atomic"

	"ucp/internal/bitmat"
	"ucp/internal/matrix"
)

// GammaVariant selects one of the paper's four rating functions used
// by the auxiliary greedy primal heuristic (§3.5).
type GammaVariant int

// The four rating functions γ_j of §3.5.
const (
	GammaPerRow        GammaVariant = iota // c̃_j / n_j
	GammaLog                               // c̃_j / lg₂(n_j + 1)
	GammaRowLog                            // c̃_j / (n_j · lg₂(n_j + 1))
	GammaRowImportance                     // c̃_j weighted by row scarcity
)

// GreedyLagrangian builds a feasible solution of p.  It starts from
// the lagrangian relaxation's solution (every column with c̃_j ≤ 0),
// then repeatedly adds the column minimising γ_j over the still
// uncovered rows, and finally drops redundant columns (highest true
// cost first).  ctilde may be the true costs (as floats) to obtain the
// classical Chvátal-style greedy start.
//
// The per-column "uncovered rows" counts (and, for the fourth variant,
// scarcity weights) are maintained incrementally, so one full build
// costs O(nnz + picks·columns) rather than O(picks·nnz).
// log2Cache holds the shared table with t[n] = lg₂(n+1): the greedy
// rating loops evaluate lg₂ once per candidate per pick, and a table
// of the exact same math.Log2 values (so bit-identical ratings) turns
// that hot transcendental into a load.  The table is grown
// copy-on-write behind an atomic pointer — entries depend only on
// their index, so concurrent growers in the restart portfolio all
// produce prefixes of the same table and any published version is
// valid.
var log2Cache atomic.Pointer[[]float64]

func log2Table(max int) []float64 {
	if t := log2Cache.Load(); t != nil && len(*t) > max {
		return *t
	}
	n := 2 * (max + 1)
	if t := log2Cache.Load(); t != nil && 2*len(*t) > n {
		n = 2 * len(*t)
	}
	nt := make([]float64, n)
	for i := 1; i < n; i++ {
		nt[i] = math.Log2(float64(i) + 1)
	}
	log2Cache.Store(&nt)
	return nt
}

func GreedyLagrangian(p *matrix.Problem, colRows [][]int, ctilde []float64, v GammaVariant) []int {
	nr := len(p.Rows)
	covered := make([]bool, nr)
	nCovered := 0
	inSol := make([]bool, p.NCol)
	var sol []int

	// Row scarcity weights for the fourth variant: rows covered by few
	// columns matter more.
	rowWeight := make([]float64, nr)
	if v == GammaRowImportance {
		for i, r := range p.Rows {
			if len(r) <= 1 {
				rowWeight[i] = 1e9 // essentially forced row
			} else {
				rowWeight[i] = 1 / float64(len(r)-1)
			}
		}
	}

	// n[j]: uncovered rows of column j; w[j]: their total weight.
	n := make([]int, p.NCol)
	w := make([]float64, p.NCol)
	for j := 0; j < p.NCol; j++ {
		n[j] = len(colRows[j])
		if v == GammaRowImportance {
			for _, i := range colRows[j] {
				w[j] += rowWeight[i]
			}
		}
	}

	add := func(j int) {
		inSol[j] = true
		sol = append(sol, j)
		for _, i := range colRows[j] {
			if covered[i] {
				continue
			}
			covered[i] = true
			nCovered++
			for _, k := range p.Rows[i] {
				n[k]--
				if v == GammaRowImportance {
					w[k] -= rowWeight[i]
				}
			}
		}
	}

	// Start from the relaxed solution.
	for j := 0; j < p.NCol; j++ {
		if ctilde[j] <= 0 && len(colRows[j]) > 0 {
			add(j)
		}
	}

	var lg []float64
	if v == GammaLog || v == GammaRowLog {
		lg = log2Table(nr)
	}
	for nCovered < nr {
		best, bestGamma := -1, math.Inf(1)
		for j := 0; j < p.NCol; j++ {
			if inSol[j] || n[j] == 0 {
				continue
			}
			// Candidates here have c̃_j > 0 (non-positive ones were
			// taken in the start solution), so smaller γ is better.
			var gamma float64
			switch v {
			case GammaPerRow:
				gamma = ctilde[j] / float64(n[j])
			case GammaLog:
				gamma = ctilde[j] / lg[n[j]]
			case GammaRowLog:
				gamma = ctilde[j] / (float64(n[j]) * lg[n[j]])
			case GammaRowImportance:
				gamma = ctilde[j] / w[j]
			}
			if best < 0 || betterGamma(gamma, bestGamma, p.Cost[j], p.Cost[best], j, best) {
				best, bestGamma = j, gamma
			}
		}
		if best < 0 {
			return nil // uncoverable row
		}
		add(best)
	}
	return p.Irredundant(sol)
}

// betterGamma is the full deterministic order on greedy candidates:
// smaller rating first, then smaller true cost, then smaller column
// id.  Spelling out the whole chain (instead of relying on the scan
// direction to break the final tie) makes the argmin independent of
// column visit order, which the sparse and dense greedy kernels — and
// the parallel restart portfolio built on their determinism — require.
func betterGamma(gamma, bestGamma float64, cost, bestCost, j, bestJ int) bool {
	if gamma != bestGamma {
		return gamma < bestGamma
	}
	if cost != bestCost {
		return cost < bestCost
	}
	return j < bestJ
}

// GreedyLagrangianDense is GreedyLagrangian on a dense bit-matrix: the
// covered-row set is a bitset, cover updates are word-wise ORs, and
// the per-column uncovered counts are popcounts of column ∧ uncovered.
// It produces exactly the same cover as the sparse kernel (same counts,
// same ratings, same tie-breaks); the differential tests hold the two
// to bit-equality.  The scarcity-weighted variant needs per-row float
// weights, which bitsets cannot fold, so it stays on the sparse path.
func GreedyLagrangianDense(p *matrix.Problem, bm *bitmat.Matrix, ctilde []float64, v GammaVariant) []int {
	if v == GammaRowImportance {
		return GreedyLagrangian(p, p.ColumnRows(), ctilde, v)
	}
	nr := len(p.Rows)
	uncovered := bitmat.NewVec(nr)
	uncovered.SetAll(nr)
	left := nr
	inSol := make([]bool, p.NCol)
	var sol []int

	add := func(j int) {
		inSol[j] = true
		sol = append(sol, j)
		uncovered.AndNot(bm.Col(j))
		left = uncovered.Popcount()
	}

	// Start from the relaxed solution.
	for j := 0; j < p.NCol; j++ {
		if ctilde[j] <= 0 && bm.ColLen(j) > 0 {
			add(j)
		}
	}

	var lg []float64
	if v == GammaLog || v == GammaRowLog {
		lg = log2Table(nr)
	}
	// Per-pick candidate counts, gathered from the sparse rows of the
	// still-uncovered set: n[j] built this way equals the bit-kernel
	// count popcount(col_j ∧ uncovered) exactly, but costs O(uncovered
	// nnz) instead of O(columns · words) — and after the relaxed start
	// the uncovered set is typically tiny.  betterGamma is a total
	// order, so the argmin does not depend on candidate visit order.
	cnt := make([]int32, p.NCol)
	cand := make([]int32, 0, p.NCol)
	for left > 0 {
		cand = cand[:0]
		uncovered.Range(func(i int) bool {
			for _, j := range p.Rows[i] {
				if cnt[j] == 0 {
					cand = append(cand, int32(j))
				}
				cnt[j]++
			}
			return true
		})
		best, bestGamma := -1, math.Inf(1)
		for _, jj := range cand {
			j := int(jj)
			n := int(cnt[j])
			cnt[j] = 0 // reset for the next pick as we scan
			if inSol[j] {
				continue
			}
			var gamma float64
			switch v {
			case GammaPerRow:
				gamma = ctilde[j] / float64(n)
			case GammaLog:
				gamma = ctilde[j] / lg[n]
			case GammaRowLog:
				gamma = ctilde[j] / (float64(n) * lg[n])
			}
			if best < 0 || betterGamma(gamma, bestGamma, p.Cost[j], p.Cost[best], j, best) {
				best, bestGamma = j, gamma
			}
		}
		if best < 0 {
			return nil // uncoverable row
		}
		add(best)
	}
	return p.IrredundantDense(bm, sol)
}

// BestGreedy runs all four rating variants and returns the cheapest
// resulting cover (by true cost), or nil if the problem is infeasible.
// A non-nil bm routes the unweighted variants through the dense
// bit-matrix kernel.
func BestGreedy(p *matrix.Problem, colRows [][]int, bm *bitmat.Matrix, ctilde []float64) []int {
	var best []int
	bestCost := math.MaxInt
	for v := GammaPerRow; v <= GammaRowImportance; v++ {
		sol := greedyAuto(p, colRows, bm, ctilde, v)
		if sol == nil {
			continue
		}
		if c := p.CostOf(sol); c < bestCost {
			best, bestCost = sol, c
		}
	}
	return best
}

// greedyAuto routes one greedy build to the dense or sparse kernel.
func greedyAuto(p *matrix.Problem, colRows [][]int, bm *bitmat.Matrix, ctilde []float64, v GammaVariant) []int {
	if bm != nil && v != GammaRowImportance {
		return GreedyLagrangianDense(p, bm, ctilde, v)
	}
	return GreedyLagrangian(p, colRows, ctilde, v)
}

// FloatCosts converts the integer cost vector of p to float64 for use
// as the trivial lagrangian costs (λ = 0).
func FloatCosts(p *matrix.Problem) []float64 {
	c := make([]float64, p.NCol)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	return c
}
