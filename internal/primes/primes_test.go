package primes

import (
	"math/rand"
	"testing"

	"ucp/internal/bnb"
	"ucp/internal/cube"
	"ucp/internal/matrix"
)

// mintermIn reports whether minterm (m, o) lies in cube c.
func mintermIn(s *cube.Space, c cube.Cube, m uint64, o int) bool {
	for i := 0; i < s.Inputs(); i++ {
		bit := cube.Zero
		if m>>i&1 == 1 {
			bit = cube.One
		}
		if s.Input(c, i)&bit == 0 {
			return false
		}
	}
	return s.Outputs() == 0 || s.Output(c, o)
}

func inCover(f *cube.Cover, m uint64, o int) bool {
	for _, c := range f.Cubes {
		if mintermIn(f.S, c, m, o) {
			return true
		}
	}
	return false
}

// allCubes enumerates every non-empty cube of a small space.
func allCubes(s *cube.Space) []cube.Cube {
	var out []cube.Cube
	lits := []cube.Literal{cube.Zero, cube.One, cube.DC}
	nIn := s.Inputs()
	nOut := s.Outputs()
	var inputs func(i int, c cube.Cube)
	inputs = func(i int, c cube.Cube) {
		if i == nIn {
			if nOut == 0 {
				out = append(out, s.Copy(c))
				return
			}
			for mask := 1; mask < 1<<nOut; mask++ {
				d := s.Copy(c)
				for o := 0; o < nOut; o++ {
					s.SetOutput(d, o, mask>>o&1 == 1)
				}
				out = append(out, d)
			}
			return
		}
		for _, l := range lits {
			s.SetInput(c, i, l)
			inputs(i+1, c)
		}
	}
	inputs(0, s.NewCube())
	return out
}

// brutePrimes computes all primes of care ∪ dc by definition: maximal
// cubes entirely inside the function.
func brutePrimes(f, d *cube.Cover) []cube.Cube {
	s := f.S
	union := cube.NewCover(s)
	for _, c := range f.Cubes {
		union.Add(c)
	}
	if d != nil {
		for _, c := range d.Cubes {
			union.Add(c)
		}
	}
	isImplicant := func(c cube.Cube) bool {
		nOut := s.Outputs()
		if nOut == 0 {
			nOut = 1
		}
		for o := 0; o < nOut; o++ {
			if s.Outputs() > 0 && !s.Output(c, o) {
				continue
			}
			ok := true
			s.Minterms(c, o, func(m uint64) bool {
				if !inCover(union, m, o) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	var imps []cube.Cube
	for _, c := range allCubes(s) {
		if isImplicant(c) {
			imps = append(imps, c)
		}
	}
	var primes []cube.Cube
	for _, c := range imps {
		maximal := true
		for _, d2 := range imps {
			if !s.Equal(c, d2) && s.Contains(d2, c) {
				maximal = false
				break
			}
		}
		if maximal {
			primes = append(primes, c)
		}
	}
	return primes
}

func randomCover(s *cube.Space, n int, rng *rand.Rand) *cube.Cover {
	f := cube.NewCover(s)
	for k := 0; k < n; k++ {
		c := s.NewCube()
		for i := 0; i < s.Inputs(); i++ {
			switch rng.Intn(4) {
			case 0:
				s.SetInput(c, i, cube.Zero)
			case 1:
				s.SetInput(c, i, cube.One)
			default:
				s.SetInput(c, i, cube.DC)
			}
		}
		any := false
		for o := 0; o < s.Outputs(); o++ {
			if rng.Intn(2) == 0 {
				s.SetOutput(c, o, true)
				any = true
			}
		}
		if s.Outputs() > 0 && !any {
			s.SetOutput(c, rng.Intn(s.Outputs()), true)
		}
		f.Add(c)
	}
	return f
}

func TestGenerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 120; trial++ {
		s := cube.NewSpace(1+rng.Intn(3), 1+rng.Intn(2))
		f := randomCover(s, 1+rng.Intn(4), rng)
		d := randomCover(s, rng.Intn(2), rng)
		got := Generate(f, d)
		want := brutePrimes(f, d)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: %d primes, brute force %d\nf:\n%sgot:\n%s",
				trial, got.Len(), len(want), f, got)
		}
		for _, w := range want {
			found := false
			for _, g := range got.Cubes {
				if s.Equal(g, w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: prime %s missing", trial, s.String(w))
			}
		}
	}
}

func TestGenerateClassicExample(t *testing.T) {
	// f = x'y + xy = y: the single prime is y with full DC on x.
	s := cube.NewSpace(2, 1)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("01", "1")
	b, _ := s.ParseCube("11", "1")
	f.Add(a)
	f.Add(b)
	got := Generate(f, nil)
	if got.Len() != 1 {
		t.Fatalf("got %d primes:\n%s", got.Len(), got)
	}
	if s.String(got.Cubes[0]) != "-1 1" {
		t.Fatalf("prime = %q", s.String(got.Cubes[0]))
	}
}

func TestBuildCoveringAndSolve(t *testing.T) {
	// Minimising via primes + exact covering must reproduce the known
	// minimum cover size of the full adder's sum/carry pair.
	s := cube.NewSpace(3, 2) // inputs a,b,cin; outputs sum, cout
	f := cube.NewCover(s)
	for m := uint64(0); m < 8; m++ {
		ones := 0
		for i := 0; i < 3; i++ {
			if m>>i&1 == 1 {
				ones++
			}
		}
		c := s.CubeOfMinterm(m, 0)
		s.SetOutput(c, 0, ones%2 == 1) // sum
		s.SetOutput(c, 1, ones >= 2)   // carry
		if ones%2 == 1 || ones >= 2 {
			f.Add(c)
		}
	}
	prs := Generate(f, nil)
	prob, ids, err := BuildCovering(f, nil, prs, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(prob.Rows) {
		t.Fatal("row ids out of sync")
	}
	res := bnb.Solve(prob, bnb.Options{})
	if res.Solution == nil {
		t.Fatal("covering unsolvable")
	}
	// The two-output full adder needs 4 sum minterm-products plus
	// carry products; classic result: 7 products with no sharing help
	// for sum (XOR has no larger primes), carry has 3 primes.
	cover := CoverFromColumns(prs, res.Solution)
	checkEquivalent(t, s, f, nil, cover)
	if res.Cost != 7 {
		t.Fatalf("minimum products = %d, want 7", res.Cost)
	}
}

// checkEquivalent verifies cover equals f modulo the DC set d.
func checkEquivalent(t *testing.T, s *cube.Space, f, d, cover *cube.Cover) {
	t.Helper()
	for o := 0; o < s.Outputs(); o++ {
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			on := inCover(f, m, o)
			dc := d != nil && inCover(d, m, o)
			got := inCover(cover, m, o)
			if dc {
				continue
			}
			if got != on {
				t.Fatalf("output %d minterm %b: cover=%v on=%v", o, m, got, on)
			}
		}
	}
}

func TestCoveringSolutionsAreCorrectCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 60; trial++ {
		s := cube.NewSpace(1+rng.Intn(4), 1+rng.Intn(2))
		f := randomCover(s, 1+rng.Intn(4), rng)
		d := randomCover(s, rng.Intn(2), rng)
		prs := Generate(f, d)
		prob, _, err := BuildCovering(f, d, prs, UnitCost)
		if err != nil {
			t.Fatal(err)
		}
		res := bnb.Solve(prob, bnb.Options{})
		if res.Solution == nil {
			// Only possible if F \ D is empty; then zero products do.
			if len(prob.Rows) != 0 {
				t.Fatalf("trial %d: unsolvable covering with %d rows", trial, len(prob.Rows))
			}
			continue
		}
		cover := CoverFromColumns(prs, res.Solution)
		checkEquivalent(t, s, f, d, cover)
	}
}

func TestLiteralCostModel(t *testing.T) {
	s := cube.NewSpace(3, 1)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("1--", "1")
	f.Add(a)
	prs := Generate(f, nil)
	prob, _, err := BuildCovering(f, nil, prs, LiteralCost)
	if err != nil {
		t.Fatal(err)
	}
	// The only prime is "1--": cost 1 literal + 1 = 2.
	if len(prob.Cost) != 1 || prob.Cost[0] != 2 {
		t.Fatalf("cost = %v", prob.Cost)
	}
}

func TestBuildCoveringRejectsHugeInputs(t *testing.T) {
	s := cube.NewSpace(MaxCoveringInputs+1, 1)
	f := cube.NewCover(s)
	if _, _, err := BuildCovering(f, nil, cube.NewCover(s), UnitCost); err == nil {
		t.Fatal("oversized input space accepted")
	}
}

func TestDontCaresExcuseRows(t *testing.T) {
	s := cube.NewSpace(2, 1)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("11", "1")
	f.Add(a)
	d := cube.NewCover(s)
	b, _ := s.ParseCube("11", "1") // same minterm is also DC
	d.Add(b)
	prs := Generate(f, d)
	prob, ids, err := BuildCovering(f, d, prs, UnitCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Rows) != 0 || len(ids) != 0 {
		t.Fatalf("DC minterm still required: %v", ids)
	}
}

func mustNotPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	fn()
}

func TestEmptyFunction(t *testing.T) {
	s := cube.NewSpace(2, 1)
	f := cube.NewCover(s)
	mustNotPanic(t, func() {
		prs := Generate(f, nil)
		if prs.Len() != 0 {
			t.Fatalf("primes of empty function: %d", prs.Len())
		}
		prob, _, err := BuildCovering(f, nil, prs, UnitCost)
		if err != nil || len(prob.Rows) != 0 {
			t.Fatalf("err=%v rows=%d", err, len(prob.Rows))
		}
		_ = matrix.Reduce(prob)
	})
}
