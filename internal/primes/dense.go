// DenseQMC-style bit-slice prime generation (arXiv 2302.10083).
//
// The Quine–McCluskey implicant lattice over n binary inputs — every
// cube in {0,1,-}^n — is represented densely: each input part takes
// two bits (01 = negative literal, 10 = positive literal, 11 = don't
// care), so a cube maps to an integer index and the whole lattice to a
// packed bit array holding one "is an implicant" bit per cube, one
// bit-plane per output.  The array is chunked: the low kLow variables
// address bits *inside* a chunk of 4^kLow bits (where the sweeps are
// word-parallel shifts and masks), the remaining high variables select
// the chunk through a base-3 key (parts 01/10/11 → digits 0/1/2), and
// chunks are materialised on demand in a dictionary so sparse
// functions never touch the full 3^n lattice.  The dictionary is
// bounded: DenseEligible pre-estimates the merge closure and the sweep
// hard-caps it at DenseMaxLatticeWords of chunk memory, falling back
// to iterated consensus rather than letting a wide don't-care input
// materialise an unbounded lattice.
//
// The sweep merges adjacent implicant classes one variable at a time,
// in increasing variable order:
//
//	A[x with var i = DC] = A[x with var i = 0] AND A[x with var i = 1]
//
// Processing variables in a fixed increasing order is the paper's
// remove-duplicates trick in lattice form: a cube whose don't-care set
// is S is computed exactly once — in the pass of max(S), from its two
// children whose don't-care sets are S\{max(S)} and therefore already
// final — so no implicant is ever generated twice and no containment
// scan is needed anywhere.  For variables below kLow the merge is an
// in-chunk shift/AND/OR over every word; for high variables it is a
// whole-chunk AND, which extends all previously computed low-variable
// don't-care combinations in one stroke.
//
// Primality is a second word-parallel sweep.  A cube x with maximal
// output set O(x) = {o : A_o[x]} is a (multi-output) prime iff O(x) is
// non-empty and no single-variable raise p of x has O(p) = O(x); since
// O(p) ⊆ O(x) always holds, the test per variable is the word
// expression OR_o (A_o[x] &^ A_o[p]) == 0.  Primes are emitted once
// each, with their maximal output part, and sorted into the same
// canonical order the iterated-consensus generator produces — the two
// engines yield bit-identical prime sets (see the differential tests
// and FuzzPrimesDense).
package primes

import (
	"math/bits"
	"sort"

	"ucp/internal/budget"
	"ucp/internal/cube"
)

// Dense-sweep eligibility limits.  Beyond them GenerateAutoBudget
// falls back to iterated consensus, which works directly on the cube
// list and needs no minterm enumeration.
const (
	// DenseMaxInputs bounds the lattice dimension (it matches the
	// explicit covering limit: larger functions cannot be minimised by
	// the QM pipeline anyway).
	DenseMaxInputs = MaxCoveringInputs
	// DenseMaxOutputs bounds the number of bit-planes.
	DenseMaxOutputs = 16
	// DenseMaxCare bounds the estimated care-minterm enumeration
	// (Σ per cube of driven-outputs × 2^don't-cares).
	DenseMaxCare = 1 << 24
	// DenseMaxLatticeWords bounds the memory the chunk dictionary may
	// materialise, in uint64 words across all planes (implicant planes
	// plus the primality sweep's covered plane) — 2^24 words is 128 MiB.
	// Care enumeration alone does not bound the merged lattice: a wide
	// don't-care cube touches few care minterms but its merge closure is
	// 3^(high don't-cares) chunks, which grows ×9 per two inputs and
	// would OOM long before any time budget fires.
	DenseMaxLatticeWords = 1 << 24
)

// denseMaxLatticeWords is DenseMaxLatticeWords as a variable so tests
// can shrink the bound to exercise the overflow path.
var denseMaxLatticeWords = uint64(DenseMaxLatticeWords)

// denseKLow is the number of low variables addressed inside a chunk:
// chunks span 4^denseKLow = 4096 bits = 64 words.
const denseKLow = 6

// DenseEligible reports whether the bit-slice sweep can handle the
// function: the space fits the lattice limits, every cube packs to
// (value, mask) form, the care-set enumeration is affordable, and the
// estimated merge closure — Σ per cube of 3^(high don't-cares) chunks,
// clamped at the full high lattice — fits the memory bound.  The
// estimate can undershoot (cross-cube merges reach chunks no single
// cube accounts for); the sweep itself enforces the same bound as a
// hard cap and falls back to consensus when it trips.
func DenseEligible(f, d *cube.Cover) bool {
	s := f.S
	if s.Inputs() > DenseMaxInputs || s.Outputs() > DenseMaxOutputs {
		return false
	}
	k := s.Inputs()
	if k > denseKLow {
		k = denseKLow
	}
	fullLattice := pow3(s.Inputs() - k)
	var care, lattice uint64
	count := func(cv *cube.Cover) bool {
		if cv == nil {
			return true
		}
		for _, c := range cv.Cubes {
			if s.IsEmpty(c) {
				return false // consensus semantics for degenerate cubes
			}
			_, mask, ok := s.PackInput(c)
			if !ok {
				return false
			}
			outs := 1
			if s.Outputs() > 0 {
				outs = s.OutputCount(c)
			}
			care += uint64(outs) << uint(bits.OnesCount64(mask))
			if care > DenseMaxCare {
				return false
			}
			if lattice += pow3(bits.OnesCount64(mask >> uint(k))); lattice > fullLattice {
				lattice = fullLattice
			}
		}
		return true
	}
	return count(f) && count(d) && lattice <= denseMaxChunks(s)
}

// pow3 computes 3^e (e ≤ DenseMaxInputs, so no overflow).
func pow3(e int) uint64 {
	p := uint64(1)
	for ; e > 0; e-- {
		p *= 3
	}
	return p
}

// denseMaxChunks is the chunk-count form of the lattice memory bound
// for the given space: DenseMaxLatticeWords divided by the words one
// chunk costs (implicant planes plus the covered plane).
func denseMaxChunks(s *cube.Space) uint64 {
	planes := s.Outputs()
	if planes == 0 {
		planes = 1
	}
	k := s.Inputs()
	if k > denseKLow {
		k = denseKLow
	}
	cw := 1
	if 2*k > 6 {
		cw = 1 << (2*k - 6)
	}
	max := denseMaxLatticeWords / (uint64(planes+1) * uint64(cw))
	if max < 1 {
		max = 1
	}
	return max
}

// GenerateAutoBudget selects the prime-generation engine: the dense
// bit-slice sweep when the function enumerates within the lattice
// limits, iterated consensus otherwise.  Both produce the identical
// canonical prime set; the choice is purely a performance front-end.
func GenerateAutoBudget(f, d *cube.Cover, tr *budget.Tracker) (*cube.Cover, bool) {
	if DenseEligible(f, d) {
		return GenerateDenseBudget(f, d, tr)
	}
	return GenerateBudget(f, d, tr)
}

// GenerateDense is GenerateDenseBudget without a budget.
func GenerateDense(f, d *cube.Cover) *cube.Cover {
	out, _ := GenerateDenseBudget(f, d, nil)
	return out
}

// GenerateDenseBudget computes all prime implicants with the dense
// bit-slice sweep.  Functions outside the DenseEligible limits are
// routed to the consensus generator, as is a sweep whose chunk
// dictionary outgrows DenseMaxLatticeWords mid-flight (the eligibility
// estimate is not a hard upper bound).  Under an exhausted budget it
// degrades exactly like GenerateBudget's contract: the returned cover
// is a valid implicant set containing F ∪ D (here: F ∪ D itself,
// deduplicated — the lattice holds no usable partial cube list), and
// complete=false.
func GenerateDenseBudget(f, d *cube.Cover, tr *budget.Tracker) (*cube.Cover, bool) {
	if !DenseEligible(f, d) {
		return GenerateBudget(f, d, tr)
	}
	sw := newDenseSweep(f.S, tr)
	if !sw.init(f, d) || !sw.merge() || !sw.cover() {
		if sw.overflow {
			// The realised chunk lattice outgrew the memory bound —
			// cross-cube merges can exceed the per-cube estimate
			// DenseEligible admits on.  Consensus works on the cube list
			// and never enumerates the lattice, so hand it the whole job.
			return GenerateBudget(f, d, tr)
		}
		return denseFallback(f, d), false
	}
	out := sw.emit()
	out.Sort()
	return out, true
}

// denseFallback is the budget-degradation result: F ∪ D deduplicated,
// in canonical order — a valid implicant set over which every
// ON-minterm remains coverable.
func denseFallback(f, d *cube.Cover) *cube.Cover {
	s := f.S
	work := cube.NewCover(s)
	for _, c := range f.Cubes {
		work.Add(s.Copy(c))
	}
	if d != nil {
		for _, c := range d.Cubes {
			work.Add(s.Copy(c))
		}
	}
	work, _ = dedupSig(s, work, nil)
	work.Sort()
	return work
}

// denseChunk is one 4^kLow-bit tile of the lattice: planes × cw words
// of implicant bits, plus (during the primality sweep) one plane of
// covered bits.
type denseChunk struct {
	a       []uint64 // planes * cw words; plane p starts at p*cw
	covered []uint64 // cw words, allocated by the cover sweep
}

type denseSweep struct {
	s      *cube.Space
	tr     *budget.Tracker
	n      int // inputs
	k      int // low (in-chunk) variables: min(n, denseKLow)
	planes int // max(1, outputs)
	cw     int // words per plane per chunk
	pow3   []uint64
	chunks map[uint64]*denseChunk
	keys   []uint64 // sorted chunk keys

	// maxChunks caps the dictionary at DenseMaxLatticeWords of chunk
	// memory; a create past it sets overflow and aborts the sweep,
	// which then restarts on the consensus engine.
	maxChunks uint64
	overflow  bool
}

func newDenseSweep(s *cube.Space, tr *budget.Tracker) *denseSweep {
	sw := &denseSweep{s: s, tr: tr, n: s.Inputs(), planes: s.Outputs()}
	if sw.planes == 0 {
		sw.planes = 1
	}
	sw.k = sw.n
	if sw.k > denseKLow {
		sw.k = denseKLow
	}
	sw.cw = 1
	if 2*sw.k > 6 {
		sw.cw = 1 << (2*sw.k - 6)
	}
	sw.pow3 = make([]uint64, sw.n-sw.k+1)
	p := uint64(1)
	for i := range sw.pow3 {
		sw.pow3[i] = p
		p *= 3
	}
	sw.chunks = make(map[uint64]*denseChunk)
	sw.maxChunks = denseMaxChunks(s)
	return sw
}

// chunk returns the chunk for key, materialising it on first touch.
// nil means the dictionary hit the memory cap (sw.overflow is set) and
// the sweep must abort.
func (sw *denseSweep) chunk(key uint64) *denseChunk {
	if c, ok := sw.chunks[key]; ok {
		return c
	}
	if uint64(len(sw.chunks)) >= sw.maxChunks {
		sw.overflow = true
		return nil
	}
	c := &denseChunk{a: make([]uint64, sw.planes*sw.cw)}
	sw.chunks[key] = c
	sw.keys = append(sw.keys, key)
	return c
}

// expandEven spreads bit i of v to bit 2i.
func expandEven(v uint64) uint64 {
	var out uint64
	for v != 0 {
		i := bits.TrailingZeros64(v)
		out |= 1 << (2 * i)
		v &^= 1 << i
	}
	return out
}

// key3 folds the high-variable assignment bits into a base-3 chunk
// key (digit 0 for a zero bit, digit 1 for a one bit).
func (sw *denseSweep) key3(high uint64) uint64 {
	var key uint64
	for high != 0 {
		i := bits.TrailingZeros64(high)
		key += sw.pow3[i]
		high &^= 1 << i
	}
	return key
}

// init marks every care minterm (ON ∪ DC, per output plane) in the
// chunk dictionary.  Returns false when the budget ran out.
func (sw *denseSweep) init(f, d *cube.Cover) bool {
	return sw.mark(f) && sw.mark(d)
}

func (sw *denseSweep) mark(cv *cube.Cover) bool {
	if cv == nil {
		return true
	}
	s, k := sw.s, sw.k
	lowAll := uint64(1)<<uint(k) - 1
	lowBase := (uint64(1)<<uint(2*k) - 1) / 3 // Σ 4^i: every low part = 01
	pat := make([]uint64, sw.cw)
	for _, c := range cv.Cubes {
		if sw.tr.Interrupted() {
			return false
		}
		value, mask, ok := s.PackInput(c)
		if !ok {
			continue // unreachable under DenseEligible
		}
		outs, _ := s.PackOutputs(c)
		if s.Outputs() == 0 {
			outs = 1
		} else if outs == 0 {
			continue
		}
		// Build the low-part bit pattern of the cube once: one bit per
		// low-minterm completion, at in-chunk index lowBase+expand(l).
		for i := range pat {
			pat[i] = 0
		}
		lowVal, lowMask := value&lowAll, mask&lowAll
		minW, maxW := sw.cw, 0
		for sub := lowMask; ; sub = (sub - 1) & lowMask {
			idx := lowBase + expandEven(lowVal|sub)
			w := int(idx >> 6)
			pat[w] |= 1 << (idx & 63)
			if w < minW {
				minW = w
			}
			if w >= maxW {
				maxW = w + 1
			}
			if sub == 0 {
				break
			}
		}
		// Scatter the pattern over every high-variable completion.
		highVal, highMask := value>>uint(k), mask>>uint(k)
		step := 0
		for sub := highMask; ; sub = (sub - 1) & highMask {
			if step++; step&1023 == 0 && sw.tr.Interrupted() {
				return false
			}
			ch := sw.chunk(sw.key3(highVal | sub))
			if ch == nil {
				return false
			}
			rem := outs
			for rem != 0 {
				o := bits.TrailingZeros64(rem)
				rem &^= 1 << o
				plane := ch.a[o*sw.cw : (o+1)*sw.cw]
				for w := minW; w < maxW; w++ {
					plane[w] |= pat[w]
				}
			}
			if sub == 0 {
				break
			}
		}
	}
	return true
}

// In-word digit-1 masks for the three lowest variables (index stride
// 4^i bits): positions whose 2-bit part equals 01.
var denseM1 = [3]uint64{
	0x2222222222222222, // var 0, stride 1
	0x00F000F000F000F0, // var 1, stride 4
	0x00000000FFFF0000, // var 2, stride 16
}

// merge runs the variable-ordered merge sweep: low variables as
// in-chunk word operations over the initial chunks, then high
// variables as whole-chunk ANDs in increasing order (each chunk's
// content is final the moment it is created — the remove-duplicates
// invariant).  Returns false when the budget ran out.
func (sw *denseSweep) merge() bool {
	sort.Slice(sw.keys, func(i, j int) bool { return sw.keys[i] < sw.keys[j] })

	// Low variables: word-parallel inside every chunk.
	for i := 0; i < sw.k; i++ {
		for ci, key := range sw.keys {
			if ci&255 == 0 && sw.tr.Interrupted() {
				return false
			}
			ch := sw.chunks[key]
			if i < 3 {
				s := uint(1) << uint(2*i) // bit stride 4^i
				m1 := denseM1[i]
				for w := range ch.a {
					x := ch.a[w]
					ch.a[w] = x | ((x>>s)&x&m1)<<(2*s)
				}
				continue
			}
			ws := 1 << uint(2*(i-3)) // word stride
			for p := 0; p < sw.planes; p++ {
				plane := ch.a[p*sw.cw : (p+1)*sw.cw]
				for base := 0; base+4*ws <= sw.cw; base += 4 * ws {
					for u := base + ws; u < base+2*ws; u++ {
						plane[u+2*ws] |= plane[u] & plane[u+ws]
					}
				}
			}
		}
	}

	// High variables: whole-chunk ANDs, increasing variable order.
	for j := sw.k; j < sw.n; j++ {
		pw := sw.pow3[j-sw.k]
		// Snapshot: keys created this pass have digit 2 at j and are
		// never sources of pass j.
		snapshot := append([]uint64(nil), sw.keys...)
		for ci, key := range snapshot {
			if ci&255 == 0 && sw.tr.Interrupted() {
				return false
			}
			if (key/pw)%3 != 0 {
				continue
			}
			c0 := sw.chunks[key]
			c1, ok := sw.chunks[key+pw]
			if !ok {
				continue
			}
			any := false
			for w := range c0.a {
				if c0.a[w]&c1.a[w] != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			t := sw.chunk(key + 2*pw)
			if t == nil {
				return false
			}
			for w := range t.a {
				t.a[w] = c0.a[w] & c1.a[w]
			}
		}
		sort.Slice(sw.keys, func(a, b int) bool { return sw.keys[a] < sw.keys[b] })
	}
	return true
}

// cover runs the primality sweep: for every variable, mark the cubes
// whose single-variable raise keeps the full output set.  Returns
// false when the budget ran out.
func (sw *denseSweep) cover() bool {
	for _, key := range sw.keys {
		sw.chunks[key].covered = make([]uint64, sw.cw)
	}

	// Low variables: in-chunk.
	for i := 0; i < sw.k; i++ {
		for ci, key := range sw.keys {
			if ci&255 == 0 && sw.tr.Interrupted() {
				return false
			}
			ch := sw.chunks[key]
			if i < 3 {
				s := uint(1) << uint(2*i)
				m1 := denseM1[i]
				m2 := m1 << s
				for w := 0; w < sw.cw; w++ {
					var d1, d2 uint64
					for p := 0; p < sw.planes; p++ {
						x := ch.a[p*sw.cw+w]
						d1 |= x &^ (x >> (2 * s))
						d2 |= x &^ (x >> s)
					}
					ch.covered[w] |= (m1 &^ d1) | (m2 &^ d2)
				}
				continue
			}
			ws := 1 << uint(2*(i-3))
			for base := 0; base+4*ws <= sw.cw; base += 4 * ws {
				for u := base + ws; u < base+2*ws; u++ {
					var d1, d2 uint64
					for p := 0; p < sw.planes; p++ {
						off := p * sw.cw
						d1 |= ch.a[off+u] &^ ch.a[off+u+2*ws]    // part 01 vs DC
						d2 |= ch.a[off+u+ws] &^ ch.a[off+u+2*ws] // part 10 vs DC
					}
					ch.covered[u] |= ^d1
					ch.covered[u+ws] |= ^d2
				}
			}
		}
	}

	// High variables: child chunk vs parent chunk.
	for j := sw.k; j < sw.n; j++ {
		pw := sw.pow3[j-sw.k]
		for ci, key := range sw.keys {
			if ci&255 == 0 && sw.tr.Interrupted() {
				return false
			}
			digit := (key / pw) % 3
			if digit == 2 {
				continue
			}
			parent, ok := sw.chunks[key+(2-digit)*pw]
			if !ok {
				continue // the raise is not an implicant for any output
			}
			ch := sw.chunks[key]
			for w := 0; w < sw.cw; w++ {
				var diff uint64
				for p := 0; p < sw.planes; p++ {
					diff |= ch.a[p*sw.cw+w] &^ parent.a[p*sw.cw+w]
				}
				ch.covered[w] |= ^diff
			}
		}
	}
	return true
}

// emit decodes every prime bit into a cube with its maximal output
// part.
func (sw *denseSweep) emit() *cube.Cover {
	s := sw.s
	out := cube.NewCover(s)
	for _, key := range sw.keys {
		ch := sw.chunks[key]
		for w := 0; w < sw.cw; w++ {
			var nz uint64
			for p := 0; p < sw.planes; p++ {
				nz |= ch.a[p*sw.cw+w]
			}
			pb := nz &^ ch.covered[w]
			for pb != 0 {
				b := bits.TrailingZeros64(pb)
				pb &^= 1 << b
				idx := uint64(w)<<6 | uint64(b)
				c := s.NewCube()
				for i := 0; i < sw.k; i++ {
					c_part := cube.Literal((idx >> uint(2*i)) & 3)
					s.SetInput(c, i, c_part)
				}
				for i := sw.k; i < sw.n; i++ {
					d := (key / sw.pow3[i-sw.k]) % 3
					s.SetInput(c, i, cube.Literal(d+1))
				}
				for o := 0; o < s.Outputs(); o++ {
					if ch.a[o*sw.cw+w]>>uint(b)&1 != 0 {
						s.SetOutput(c, o, true)
					}
				}
				out.Add(c)
			}
		}
	}
	return out
}
