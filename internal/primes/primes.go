// Package primes generates the prime implicants of a (multiple-output,
// incompletely specified) boolean function and reformulates two-level
// minimisation as a unate covering problem, Quine–McCluskey style:
// the rows are the ON-set minterms, the columns the primes, and a
// column covers a row when the prime contains the minterm.
package primes

import (
	"fmt"
	"sort"

	"ucp/internal/budget"
	"ucp/internal/cube"
	"ucp/internal/matrix"
)

// Generate returns every prime implicant of the function whose care
// ON-set is f and whose don't-care set is d, using iterated consensus:
// starting from F ∪ D, consensus cubes are added and single-cube
// contained cubes removed until closure; the surviving cubes are
// exactly the primes (Quine's theorem, extended to multiple outputs by
// treating the output part as one multi-valued variable).
func Generate(f, d *cube.Cover) *cube.Cover {
	out, _ := GenerateBudget(f, d, nil)
	return out
}

// GenerateBudget is Generate under a budget: the closure loop checks
// the tracker between consensus sweeps (and periodically inside them)
// and stops early when the budget runs out.  The returned cover is
// then still a valid implicant set containing F ∪ D — every ON-minterm
// remains coverable, so a covering problem built over it stays
// feasible — but some cubes may not yet be prime.  complete reports
// whether the closure finished (true ⇒ the cover is exactly the prime
// set).
func GenerateBudget(f, d *cube.Cover, tr *budget.Tracker) (out *cube.Cover, complete bool) {
	s := f.S
	work := cube.NewCover(s)
	for _, c := range f.Cubes {
		work.Add(s.Copy(c))
	}
	if d != nil {
		for _, c := range d.Cubes {
			work.Add(s.Copy(c))
		}
	}
	work = work.Dedup()

	for {
		if tr.Interrupted() {
			work.Sort()
			return work, false
		}
		var pending []cube.Cube
		for i := 0; i < len(work.Cubes); i++ {
			if i%64 == 0 && tr.Interrupted() {
				break // finish this sweep's bookkeeping below
			}
			for j := i + 1; j < len(work.Cubes); j++ {
				cons := s.Consensus(work.Cubes[i], work.Cubes[j])
				if cons == nil || s.IsEmpty(cons) {
					continue
				}
				contained := false
				for _, c := range work.Cubes {
					if s.Contains(c, cons) {
						contained = true
						break
					}
				}
				if !contained {
					for _, c := range pending {
						if s.Contains(c, cons) {
							contained = true
							break
						}
					}
				}
				if !contained {
					pending = append(pending, cons)
				}
			}
		}
		if len(pending) == 0 {
			if tr.Interrupted() {
				break // the sweep was cut short: closure not proven
			}
			work.Sort()
			return work, true
		}
		work.Cubes = append(work.Cubes, pending...)
		work = work.Dedup() // drop cubes swallowed by the new ones
	}
	work.Sort()
	return work, false
}

// RowID identifies one covering row: input minterm m of output o.
type RowID struct {
	Minterm uint64
	Output  int
}

// MaxCoveringInputs bounds the explicit minterm enumeration; beyond
// this the covering matrix would not fit in memory anyway.
const MaxCoveringInputs = 24

// CostModel selects the column costs of the covering problem.
type CostModel int

// Cost models for the covering formulation.
const (
	// UnitCost charges one per product term: the paper's primary
	// objective (cover cardinality).
	UnitCost CostModel = iota
	// LiteralCost charges one plus the number of input literals, so
	// minimisation also prefers larger cubes (the paper's "secondary
	// concern given to the number of literals").
	LiteralCost
)

// BuildCovering constructs the unate covering problem for the function
// (f care ON-set, d don't-care set) over the given prime cover: one
// row per ON-minterm not excused by d, one column per prime.  It
// returns the problem plus the row identities (for reporting).
func BuildCovering(f, d *cube.Cover, prs *cube.Cover, cm CostModel) (*matrix.Problem, []RowID, error) {
	s := f.S
	if s.Inputs() > MaxCoveringInputs {
		return nil, nil, fmt.Errorf("primes: %d inputs exceed the explicit covering limit %d", s.Inputs(), MaxCoveringInputs)
	}
	nOut := s.Outputs()
	if nOut == 0 {
		nOut = 1
	}
	// Collect the required minterms per output.
	type key struct {
		m uint64
		o int
	}
	need := make(map[key]bool)
	for o := 0; o < nOut; o++ {
		for _, c := range f.Cubes {
			if err := s.Minterms(c, o, func(m uint64) bool {
				need[key{m, o}] = true
				return true
			}); err != nil {
				return nil, nil, err
			}
		}
		if d != nil {
			for _, c := range d.Cubes {
				if err := s.Minterms(c, o, func(m uint64) bool {
					delete(need, key{m, o}) // don't cares need no cover
					return true
				}); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	ids := make([]RowID, 0, len(need))
	for k := range need {
		ids = append(ids, RowID{Minterm: k.m, Output: k.o})
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Output != ids[b].Output {
			return ids[a].Output < ids[b].Output
		}
		return ids[a].Minterm < ids[b].Minterm
	})

	rows := make([][]int, len(ids))
	for r, id := range ids {
		mc := s.CubeOfMinterm(id.Minterm, id.Output)
		for j, pc := range prs.Cubes {
			if s.Contains(pc, mc) {
				rows[r] = append(rows[r], j)
			}
		}
	}
	cost := make([]int, prs.Len())
	for j, pc := range prs.Cubes {
		switch cm {
		case LiteralCost:
			cost[j] = 1 + s.Inputs() - s.InputWeight(pc)
		default:
			cost[j] = 1
		}
	}
	p, err := matrix.New(rows, prs.Len(), cost)
	if err != nil {
		return nil, nil, err
	}
	return p, ids, nil
}

// CoverFromColumns converts a covering solution (prime indices) back
// into a two-level cover.
func CoverFromColumns(prs *cube.Cover, cols []int) *cube.Cover {
	out := cube.NewCover(prs.S)
	for _, j := range cols {
		out.Add(prs.S.Copy(prs.Cubes[j]))
	}
	return out
}
