// Package primes generates the prime implicants of a (multiple-output,
// incompletely specified) boolean function and reformulates two-level
// minimisation as a unate covering problem, Quine–McCluskey style:
// the rows are the ON-set minterms, the columns the primes, and a
// column covers a row when the prime contains the minterm.
package primes

import (
	"errors"

	"ucp/internal/budget"
	"ucp/internal/cube"
)

// sigOf folds a cube's words into a 64-bit occupancy signature.  For
// cubes a, b: a ⊆ b (word-wise a&^b == 0) implies sig(a)&^sig(b) == 0,
// so a nonzero sig(a)&^sig(b) refutes containment in one word op —
// the same short-circuit internal/matrix uses for its row/column
// dominance scans.  (For single-word cubes the test is exact.)
func sigOf(c cube.Cube) uint64 {
	var sig uint64
	for _, w := range c {
		sig |= w
	}
	return sig
}

// dedupSig is Cover.Dedup with the signature short-circuit: identical
// keep/drop decisions (the signature only skips pairs whose
// containment test must fail), returned together with the kept cubes'
// signatures so callers can reuse them.
func dedupSig(s *cube.Space, f *cube.Cover, sigs []uint64) (*cube.Cover, []uint64) {
	if sigs == nil {
		sigs = make([]uint64, len(f.Cubes))
		for i, c := range f.Cubes {
			sigs[i] = sigOf(c)
		}
	}
	kept := make([]bool, len(f.Cubes))
	for i := range f.Cubes {
		kept[i] = true
	}
	for i, a := range f.Cubes {
		if !kept[i] {
			continue
		}
		sa := sigs[i]
		for j, b := range f.Cubes {
			if i == j || !kept[j] || sa&^sigs[j] != 0 {
				continue
			}
			if s.Contains(b, a) && (!s.Equal(a, b) || j < i) {
				kept[i] = false
				break
			}
		}
	}
	g := cube.NewCover(s)
	outSigs := sigs[:0]
	for i, a := range f.Cubes {
		if kept[i] {
			g.Add(a)
			outSigs = append(outSigs, sigs[i])
		}
	}
	return g, outSigs
}

// Generate returns every prime implicant of the function whose care
// ON-set is f and whose don't-care set is d, using iterated consensus:
// starting from F ∪ D, consensus cubes are added and single-cube
// contained cubes removed until closure; the surviving cubes are
// exactly the primes (Quine's theorem, extended to multiple outputs by
// treating the output part as one multi-valued variable, for which the
// consensus is taken even at distance zero — see ConsensusOutput).
func Generate(f, d *cube.Cover) *cube.Cover {
	out, _ := GenerateBudget(f, d, nil)
	return out
}

// GenerateBudget is Generate under a budget: the closure loop checks
// the tracker between consensus sweeps (and periodically inside them)
// and stops early when the budget runs out.  The returned cover is
// then still a valid implicant set containing F ∪ D — every ON-minterm
// remains coverable, so a covering problem built over it stays
// feasible — but some cubes may not yet be prime.  complete reports
// whether the closure finished (true ⇒ the cover is exactly the prime
// set).
func GenerateBudget(f, d *cube.Cover, tr *budget.Tracker) (out *cube.Cover, complete bool) {
	s := f.S
	work := cube.NewCover(s)
	for _, c := range f.Cubes {
		work.Add(s.Copy(c))
	}
	if d != nil {
		for _, c := range d.Cubes {
			work.Add(s.Copy(c))
		}
	}
	var sigs []uint64
	work, sigs = dedupSig(s, work, nil)

	for {
		if tr.Interrupted() {
			work.Sort()
			return work, false
		}
		var pending []cube.Cube
		var psigs []uint64
		for i := 0; i < len(work.Cubes); i++ {
			if i%64 == 0 && tr.Interrupted() {
				break // finish this sweep's bookkeeping below
			}
			for j := i + 1; j < len(work.Cubes); j++ {
				// Two candidates per pair: the distance-one consensus
				// and the output-part consensus, which with three or
				// more outputs is productive even at distance zero
				// (overlapping output sets whose union is a strictly
				// larger implicant) — without it the closure misses
				// multiple-output primes.
				cand := s.Consensus(work.Cubes[i], work.Cubes[j])
				candOut := s.ConsensusOutput(work.Cubes[i], work.Cubes[j])
				for _, cons := range [2]cube.Cube{cand, candOut} {
					if cons == nil || s.IsEmpty(cons) {
						continue
					}
					csig := sigOf(cons)
					contained := false
					for k, c := range work.Cubes {
						if csig&^sigs[k] == 0 && s.Contains(c, cons) {
							contained = true
							break
						}
					}
					if !contained {
						for k, c := range pending {
							if csig&^psigs[k] == 0 && s.Contains(c, cons) {
								contained = true
								break
							}
						}
					}
					if !contained {
						pending = append(pending, cons)
						psigs = append(psigs, csig)
					}
				}
			}
		}
		if len(pending) == 0 {
			if tr.Interrupted() {
				break // the sweep was cut short: closure not proven
			}
			work.Sort()
			return work, true
		}
		work.Cubes = append(work.Cubes, pending...)
		sigs = append(sigs, psigs...)
		// Drop cubes swallowed by the new ones (Dedup semantics, with
		// the signature prune).
		work, sigs = dedupSig(s, work, sigs)
	}
	work.Sort()
	return work, false
}

// RowID identifies one covering row: input minterm m of output o.
type RowID struct {
	Minterm uint64
	Output  int
}

// MaxCoveringInputs bounds the explicit minterm enumeration; beyond
// this the covering matrix would not fit in memory anyway.
const MaxCoveringInputs = 24

// ErrCoveringLimit reports a function whose input count exceeds
// MaxCoveringInputs, so the explicit covering matrix cannot be built.
// It is a property of the instance size, not a malformed input: front
// ends should map it to a client error distinct from a parse failure.
var ErrCoveringLimit = errors.New("primes: inputs exceed the explicit covering limit")

// CostModel selects the column costs of the covering problem.
type CostModel int

// Cost models for the covering formulation.
const (
	// UnitCost charges one per product term: the paper's primary
	// objective (cover cardinality).
	UnitCost CostModel = iota
	// LiteralCost charges one plus the number of input literals, so
	// minimisation also prefers larger cubes (the paper's "secondary
	// concern given to the number of literals").
	LiteralCost
)

// CoverFromColumns converts a covering solution (prime indices) back
// into a two-level cover.
func CoverFromColumns(prs *cube.Cover, cols []int) *cube.Cover {
	out := cube.NewCover(prs.S)
	for _, j := range cols {
		out.Add(prs.S.Copy(prs.Cubes[j]))
	}
	return out
}
