package primes

import (
	"fmt"
	"math/bits"
	"sort"

	"ucp/internal/cube"
)

// implicant is a cube in (value, mask) form: mask bits are don't
// cares, value bits are the fixed assignment (value ∩ mask = 0).
type implicant struct {
	value, mask uint64
}

// TabularPrimes computes all prime implicants of the single-output
// function with ON-set minterms on and don't-care minterms dc over
// nvars variables, using the classical Quine–McCluskey tabulation:
// group implicants by the weight of their fixed ones, merge pairs that
// differ in exactly one fixed bit, and keep whatever never merges.
// It exists as an independently-implemented oracle for the iterated
// consensus generator (Generate); the two must produce identical prime
// sets on single-output functions.
func TabularPrimes(s *cube.Space, on, dc []uint64) (*cube.Cover, error) {
	nvars := s.Inputs()
	if s.Outputs() > 1 {
		return nil, fmt.Errorf("primes: tabular method handles at most one output, space has %d", s.Outputs())
	}
	if nvars > 63 {
		return nil, fmt.Errorf("primes: tabular method limited to 63 variables")
	}
	full := uint64(1)<<uint(nvars) - 1

	// Current generation, deduplicated.
	cur := make(map[implicant]bool)
	for _, m := range on {
		cur[implicant{m & full, 0}] = true
	}
	for _, m := range dc {
		cur[implicant{m & full, 0}] = true
	}

	primes := make(map[implicant]bool)
	for len(cur) > 0 {
		// Group by weight of the fixed ones for the adjacency scan.
		groups := make(map[int][]implicant)
		for imp := range cur {
			groups[bits.OnesCount64(imp.value)] = append(groups[bits.OnesCount64(imp.value)], imp)
		}
		merged := make(map[implicant]bool)
		next := make(map[implicant]bool)
		for w, g := range groups {
			hi := groups[w+1]
			for _, a := range g {
				for _, b := range hi {
					if a.mask != b.mask {
						continue
					}
					diff := a.value ^ b.value
					if bits.OnesCount64(diff) != 1 {
						continue
					}
					next[implicant{a.value &^ diff, a.mask | diff}] = true
					merged[a] = true
					merged[b] = true
				}
			}
		}
		for imp := range cur {
			if !merged[imp] {
				primes[imp] = true
			}
		}
		cur = next
	}

	// Emit as a cover, in a canonical order.
	list := make([]implicant, 0, len(primes))
	for imp := range primes {
		list = append(list, imp)
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].mask != list[b].mask {
			return list[a].mask < list[b].mask
		}
		return list[a].value < list[b].value
	})
	out := cube.NewCover(s)
	for _, imp := range list {
		c := s.NewCube()
		for i := 0; i < nvars; i++ {
			switch {
			case imp.mask>>uint(i)&1 == 1:
				s.SetInput(c, i, cube.DC)
			case imp.value>>uint(i)&1 == 1:
				s.SetInput(c, i, cube.One)
			default:
				s.SetInput(c, i, cube.Zero)
			}
		}
		if s.Outputs() == 1 {
			s.SetOutput(c, 0, true)
		}
		out.Add(c)
	}
	return out, nil
}

// MintermsOf enumerates the input minterms of a single-output cover
// (output 0 when the space has outputs).  Spaces beyond 63 inputs are
// not enumerable; their cubes contribute no minterms.
func MintermsOf(f *cube.Cover) []uint64 {
	seen := make(map[uint64]bool)
	for _, c := range f.Cubes {
		if err := f.S.Minterms(c, 0, func(m uint64) bool {
			seen[m] = true
			return true
		}); err != nil {
			break // >63 inputs: every cube fails the same way
		}
	}
	out := make([]uint64, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
