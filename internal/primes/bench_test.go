package primes

import (
	"testing"

	"ucp/internal/benchmarks"
)

// The prime-generation substrate benches compare the two front ends on
// a 16-input 2-output instance dense enough (100 cubes, half the
// literals don't-care) that the iterated-consensus work set grows into
// the thousands.  The dense sweep's cost is fixed by the care set, so
// the ratio here (>=5x expected) is the point of the bit-slice engine;
// on sparse instances the consensus path stays competitive and
// GenerateAutoBudget picks per-instance.
func BenchmarkPrimeGen(b *testing.B) {
	f := benchmarks.RandomPLA(11, 16, 2, 100, 0.5, 2)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := GenerateDenseBudget(f.F, f.D, nil); !ok {
				b.Fatal("dense sweep did not complete")
			}
		}
	})
	b.Run("consensus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := GenerateBudget(f.F, f.D, nil); !ok {
				b.Fatal("consensus did not complete")
			}
		}
	})
}

// BenchmarkBuildCovering compares the streaming bitset construction
// against the map-based reference oracle on a 20-input 3-output
// instance (158 primes, ~25k covering rows).
func BenchmarkBuildCovering(b *testing.B) {
	f := benchmarks.RandomPLA(7, 20, 3, 80, 0.3, 1)
	prs, ok := GenerateDenseBudget(f.F, f.D, nil)
	if !ok {
		b.Fatal("prime generation did not complete")
	}
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := BuildCovering(f.F, f.D, prs, UnitCost); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := buildCoveringReference(f.F, f.D, prs, UnitCost); err != nil {
				b.Fatal(err)
			}
		}
	})
}
