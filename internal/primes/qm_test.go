package primes

import (
	"math/rand"
	"testing"

	"ucp/internal/cube"
)

func TestTabularClassicExample(t *testing.T) {
	// The textbook example f = Σm(4,8,10,11,12,15) + d(9,14) over 4
	// variables has exactly four primes (in msb-first textbook
	// numbering).  Our bit order is lsb-first, so translate: textbook
	// minterm 4 = binary 0100 (a=0,b=1,c=0,d=0) maps to our mask with
	// bit per variable index 0..3 = a..d → 0b0010.
	rev := func(m uint64) uint64 { // reverse 4-bit value
		var r uint64
		for i := 0; i < 4; i++ {
			if m>>uint(i)&1 == 1 {
				r |= 1 << uint(3-i)
			}
		}
		return r
	}
	s := cube.NewSpace(4, 1)
	var on, dc []uint64
	for _, m := range []uint64{4, 8, 10, 11, 12, 15} {
		on = append(on, rev(m))
	}
	for _, m := range []uint64{9, 14} {
		dc = append(dc, rev(m))
	}
	prs, err := TabularPrimes(s, on, dc)
	if err != nil {
		t.Fatal(err)
	}
	// The known prime count for this classic is 4:
	// bd', ab', ac, b'c... (textbook) — verify count and primality
	// against the consensus generator instead of hand-listing.
	f := cube.NewCover(s)
	for _, m := range on {
		f.Add(s.CubeOfMinterm(m, 0))
	}
	d := cube.NewCover(s)
	for _, m := range dc {
		d.Add(s.CubeOfMinterm(m, 0))
	}
	want := Generate(f, d)
	if prs.Len() != want.Len() {
		t.Fatalf("tabular found %d primes, consensus %d\ntabular:\n%sconsensus:\n%s",
			prs.Len(), want.Len(), prs, want)
	}
}

func TestTabularMatchesConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(6)
		s := cube.NewSpace(n, 1)
		var on, dc []uint64
		for m := uint64(0); m < 1<<n; m++ {
			switch rng.Intn(4) {
			case 0:
				on = append(on, m)
			case 1:
				dc = append(dc, m)
			}
		}
		tab, err := TabularPrimes(s, on, dc)
		if err != nil {
			t.Fatal(err)
		}
		f := cube.NewCover(s)
		for _, m := range on {
			f.Add(s.CubeOfMinterm(m, 0))
		}
		d := cube.NewCover(s)
		for _, m := range dc {
			d.Add(s.CubeOfMinterm(m, 0))
		}
		cons := Generate(f, d)
		if tab.Len() != cons.Len() {
			t.Fatalf("trial %d: tabular %d primes, consensus %d", trial, tab.Len(), cons.Len())
		}
		// Same set, not just same count.
		for _, c := range cons.Cubes {
			found := false
			for _, tc := range tab.Cubes {
				if s.Equal(c, tc) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: consensus prime %s missing from tabular", trial, s.String(c))
			}
		}
	}
}

func TestTabularEmptyAndFull(t *testing.T) {
	s := cube.NewSpace(3, 1)
	empty, err := TabularPrimes(s, nil, nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty function: %v, %d primes", err, empty.Len())
	}
	var all []uint64
	for m := uint64(0); m < 8; m++ {
		all = append(all, m)
	}
	full, err := TabularPrimes(s, all, nil)
	if err != nil || full.Len() != 1 {
		t.Fatalf("tautology: %v, %d primes", err, full.Len())
	}
	if s.InputWeight(full.Cubes[0]) != 3 {
		t.Fatal("tautology prime should be the universal cube")
	}
}

func TestTabularRejectsMultiOutput(t *testing.T) {
	s := cube.NewSpace(3, 2)
	if _, err := TabularPrimes(s, []uint64{1}, nil); err == nil {
		t.Fatal("multi-output space accepted")
	}
}

func TestMintermsOf(t *testing.T) {
	s := cube.NewSpace(3, 1)
	f := cube.NewCover(s)
	c, _ := s.ParseCube("1--", "1")
	f.Add(c)
	ms := MintermsOf(f)
	if len(ms) != 4 {
		t.Fatalf("got %d minterms", len(ms))
	}
	for _, m := range ms {
		if m&1 == 0 {
			t.Fatalf("minterm %b missing the fixed literal", m)
		}
	}
}
