package primes

import (
	"context"
	"math/rand"
	"testing"

	"ucp/internal/budget"
	"ucp/internal/cube"
)

// requireSameCover fails unless the two canonical (sorted) covers are
// cube-for-cube identical.
func requireSameCover(t *testing.T, s *cube.Space, got, want *cube.Cover, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d cubes, want %d\ngot:\n%swant:\n%s", label, got.Len(), want.Len(), got, want)
	}
	for i := range want.Cubes {
		if !s.Equal(got.Cubes[i], want.Cubes[i]) {
			t.Fatalf("%s: cube %d = %s, want %s", label, i, s.String(got.Cubes[i]), s.String(want.Cubes[i]))
		}
	}
}

// requireSameCovering fails unless the two covering constructions are
// bit-identical: same row ids, same sorted column lists, same costs.
func requireSameCovering(t *testing.T, f, d, prs *cube.Cover, label string) {
	t.Helper()
	for _, cm := range []CostModel{UnitCost, LiteralCost} {
		gotP, gotIDs, gotErr := BuildCovering(f, d, prs, cm)
		wantP, wantIDs, wantErr := buildCoveringReference(f, d, prs, cm)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: err=%v, reference err=%v", label, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("%s: %d rows, reference %d", label, len(gotIDs), len(wantIDs))
		}
		for r := range wantIDs {
			if gotIDs[r] != wantIDs[r] {
				t.Fatalf("%s: row %d id %+v, reference %+v", label, r, gotIDs[r], wantIDs[r])
			}
			g, w := gotP.Rows[r], wantP.Rows[r]
			if len(g) != len(w) {
				t.Fatalf("%s: row %d has %d cols, reference %d", label, r, len(g), len(w))
			}
			for k := range w {
				if g[k] != w[k] {
					t.Fatalf("%s: row %d col %d = %d, reference %d", label, r, k, g[k], w[k])
				}
			}
		}
		if gotP.NCol != wantP.NCol {
			t.Fatalf("%s: ncol %d, reference %d", label, gotP.NCol, wantP.NCol)
		}
		for j := range wantP.Cost {
			if gotP.Cost[j] != wantP.Cost[j] {
				t.Fatalf("%s: cost[%d] = %d, reference %d", label, j, gotP.Cost[j], wantP.Cost[j])
			}
		}
	}
}

func TestDenseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		s := cube.NewSpace(1+rng.Intn(3), 1+rng.Intn(2))
		f := randomCover(s, 1+rng.Intn(4), rng)
		d := randomCover(s, rng.Intn(2), rng)
		if !DenseEligible(f, d) {
			t.Fatalf("trial %d: small random cover not dense-eligible", trial)
		}
		got, complete := GenerateDenseBudget(f, d, nil)
		if !complete {
			t.Fatalf("trial %d: unbudgeted sweep incomplete", trial)
		}
		want := brutePrimes(f, d)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: %d primes, brute force %d\nf:\n%sgot:\n%s",
				trial, got.Len(), len(want), f, got)
		}
		for _, w := range want {
			found := false
			for _, g := range got.Cubes {
				if s.Equal(g, w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: prime %s missing", trial, s.String(w))
			}
		}
	}
}

// TestDenseMatchesConsensus drives both engines over random functions
// large enough to exercise the high-variable chunk dictionary (inputs
// beyond denseKLow) and checks canonical prime sets and covering
// problems are bit-identical.
func TestDenseMatchesConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(10) // up to 10 inputs: 4 high variables
		s := cube.NewSpace(n, rng.Intn(4))
		f := randomCover(s, 1+rng.Intn(6), rng)
		d := randomCover(s, rng.Intn(3), rng)
		want, wc := GenerateBudget(f, d, nil)
		got, gc := GenerateDenseBudget(f, d, nil)
		if wc != gc {
			t.Fatalf("trial %d: complete=%v, consensus %v", trial, gc, wc)
		}
		requireSameCover(t, s, got, want, "primes")
		requireSameCovering(t, f, d, got, "covering")
	}
}

func TestDenseNoOutputsAndNoInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// Output-free space: cubes are pure input products.
	s := cube.NewSpace(4, 0)
	f := randomCover(s, 3, rng)
	requireSameCover(t, s, GenerateDenseBudget0(f, nil), Generate(f, nil), "no outputs")
	requireSameCovering(t, f, nil, Generate(f, nil), "no outputs covering")

	// Input-free space: cubes are pure output sets.
	s0 := cube.NewSpace(0, 3)
	g := cube.NewCover(s0)
	c := s0.NewCube()
	s0.SetOutput(c, 0, true)
	s0.SetOutput(c, 2, true)
	g.Add(c)
	c2 := s0.NewCube()
	s0.SetOutput(c2, 1, true)
	g.Add(c2)
	requireSameCover(t, s0, GenerateDenseBudget0(g, nil), Generate(g, nil), "no inputs")
}

// GenerateDenseBudget0 is a test shim: the dense sweep without budget.
func GenerateDenseBudget0(f, d *cube.Cover) *cube.Cover {
	out, complete := GenerateDenseBudget(f, d, nil)
	if !complete {
		panic("unbudgeted dense sweep incomplete")
	}
	return out
}

func TestDenseBudgetDegradation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := budget.Budget{Context: ctx}.Tracker()

	rng := rand.New(rand.NewSource(74))
	s := cube.NewSpace(8, 2)
	f := randomCover(s, 6, rng)
	d := randomCover(s, 2, rng)
	out, complete := GenerateDenseBudget(f, d, tr)
	if complete {
		t.Fatal("cancelled sweep reported complete")
	}
	// Contract: a valid implicant set containing F ∪ D — every care
	// minterm remains coverable.
	union := cube.NewCover(s)
	union.Cubes = append(union.Cubes, f.Cubes...)
	union.Cubes = append(union.Cubes, d.Cubes...)
	for o := 0; o < s.Outputs(); o++ {
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			if inCover(f, m, o) && !inCover(out, m, o) {
				t.Fatalf("ON minterm (%d,%d) not coverable after degradation", m, o)
			}
			// And nothing outside the function was invented.
			if inCover(out, m, o) && !inCover(union, m, o) {
				t.Fatalf("degraded set covers (%d,%d) outside F ∪ D", m, o)
			}
		}
	}
}

func TestGenerateAutoBudgetDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	s := cube.NewSpace(5, 2)
	f := randomCover(s, 4, rng)
	if !DenseEligible(f, nil) {
		t.Fatal("small cover should be dense-eligible")
	}
	got, complete := GenerateAutoBudget(f, nil, nil)
	if !complete {
		t.Fatal("auto dispatch incomplete")
	}
	want := Generate(f, nil)
	requireSameCover(t, s, got, want, "auto")

	// Oversized spaces must fall back to consensus (and still work).
	big := cube.NewSpace(DenseMaxInputs+1, 1)
	bf := cube.NewCover(big)
	c := big.FullCube()
	bf.Add(c)
	if DenseEligible(bf, nil) {
		t.Fatal("oversized space reported dense-eligible")
	}
	out, complete := GenerateAutoBudget(bf, nil, nil)
	if !complete || out.Len() != 1 || !big.Equal(out.Cubes[0], c) {
		t.Fatalf("fallback primes = %v (complete=%v)", out, complete)
	}

	// A cube with an empty part routes to consensus semantics too.
	se := cube.NewSpace(2, 1)
	fe := cube.NewCover(se)
	fe.Add(se.NewCube()) // all-Empty cube
	if DenseEligible(fe, nil) {
		t.Fatal("empty cube reported dense-eligible")
	}
}

func TestDenseCareBudgetLimit(t *testing.T) {
	// Lattice-cheap (the full high lattice is 3^2 = 9 chunks) but
	// enumeration-heavy: each full cube costs 16 outputs × 2^8 care
	// writes, so 4096 of them sit exactly at the 2^24 limit and one
	// more is over it.
	s := cube.NewSpace(8, 16)
	f := cube.NewCover(s)
	for i := 0; i < 4096; i++ {
		f.Add(s.FullCube())
	}
	if !DenseEligible(f, nil) {
		t.Fatal("2^24 care minterms should be eligible")
	}
	f.Add(s.FullCube())
	if DenseEligible(f, nil) {
		t.Fatal("over 2^24 care minterms should exceed the enumeration budget")
	}
}

func TestDenseLatticeMemoryLimit(t *testing.T) {
	// A single all-don't-care cube over 18 inputs enumerates only 2^18
	// care minterms, but its merge closure is the full 3^12-chunk high
	// lattice — hundreds of MB.  The lattice bound must reject it and
	// auto-dispatch must still answer (consensus proves the tautology
	// from the cube list without touching any minterm).
	s := cube.NewSpace(18, 1)
	f := cube.NewCover(s)
	f.Add(s.FullCube())
	if DenseEligible(f, nil) {
		t.Fatal("3^12-chunk merge closure reported dense-eligible")
	}
	out, complete := GenerateAutoBudget(f, nil, nil)
	if !complete || out.Len() != 1 || !s.Equal(out.Cubes[0], s.FullCube()) {
		t.Fatalf("tautology primes = %v (complete=%v)", out, complete)
	}
}

func TestDenseChunkCapOverflow(t *testing.T) {
	defer func(v uint64) { denseMaxLatticeWords = v }(denseMaxLatticeWords)

	// Four cubes fixing the two high variables to the four assignments,
	// low part all don't-care: DenseEligible's per-cube estimate is 4
	// chunks, but the merge closure is the full 3^2 = 9-chunk lattice.
	// A cap between the two admits the sweep and then trips the
	// in-flight guard, which must drop the dense state and finish via
	// consensus — completely, not with the degraded F ∪ D set.
	s := cube.NewSpace(8, 1)
	f := cube.NewCover(s)
	for hi := 0; hi < 4; hi++ {
		c := s.FullCube()
		lit := [2]cube.Literal{cube.Zero, cube.One}
		s.SetInput(c, 6, lit[hi&1])
		s.SetInput(c, 7, lit[hi>>1])
		f.Add(c)
	}
	denseMaxLatticeWords = 6 * 2 * 64 // six chunks of (1 plane + covered) × 64 words
	if !DenseEligible(f, nil) {
		t.Fatal("4-chunk estimate should pass the 6-chunk test cap")
	}
	got, complete := GenerateDenseBudget(f, nil, nil)
	if !complete {
		t.Fatal("chunk-cap overflow must complete via the consensus fallback")
	}
	want, _ := GenerateBudget(f, nil, nil)
	requireSameCover(t, s, got, want, "overflow fallback")
}

// FuzzPrimesDense is the differential acceptance gate: on arbitrary
// random functions the dense sweep and iterated consensus must produce
// identical canonical prime sets and bit-identical covering problems.
func FuzzPrimesDense(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(2), uint8(4))
	f.Add(uint64(42), uint8(8), uint8(1), uint8(6))
	f.Add(uint64(7), uint8(9), uint8(3), uint8(5))
	f.Add(uint64(99), uint8(1), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nIn, nOut, nCubes uint8) {
		n := 1 + int(nIn)%9 // 1..9 inputs
		m := int(nOut) % 4  // 0..3 outputs
		k := 1 + int(nCubes)%7
		rng := rand.New(rand.NewSource(int64(seed)))
		s := cube.NewSpace(n, m)
		fc := randomCover(s, k, rng)
		dc := randomCover(s, int(seed)%3, rng)
		want, wc := GenerateBudget(fc, dc, nil)
		got, gc := GenerateDenseBudget(fc, dc, nil)
		if wc != gc {
			t.Fatalf("complete=%v, consensus %v", gc, wc)
		}
		requireSameCover(t, s, got, want, "fuzz primes")
		requireSameCovering(t, fc, dc, got, "fuzz covering")
	})
}
