package primes

import (
	"fmt"
	"math/bits"
	"sort"

	"ucp/internal/cube"
	"ucp/internal/matrix"
)

// BuildCovering constructs the unate covering problem for the function
// (f care ON-set, d don't-care set) over the given prime cover: one
// row per ON-minterm not excused by d, one column per prime.  It
// returns the problem plus the row identities (for reporting).
//
// The construction streams: per output, the required minterms are
// collected into one reusable 2^n-bit set (F cubes set bits, D cubes
// clear them, both via packed (value, mask) submask enumeration with a
// word-fill fast path over the low don't-care bits), and rows are
// emitted in ascending minterm order directly from the bit set, with
// prime membership decided by the two-word test (m^value)&^mask == 0
// against the per-output packed prime list.  No per-minterm cube is
// allocated and no map is built; the row order (output-major, minterm-
// ascending) and contents are bit-identical to the one the original
// map-and-cube-containment construction produced.
//
// Functions with more than MaxCoveringInputs inputs fail with an error
// matching ErrCoveringLimit.
func BuildCovering(f, d *cube.Cover, prs *cube.Cover, cm CostModel) (*matrix.Problem, []RowID, error) {
	s := f.S
	n := s.Inputs()
	if n > MaxCoveringInputs {
		return nil, nil, fmt.Errorf("%w: %d inputs exceed %d", ErrCoveringLimit, n, MaxCoveringInputs)
	}
	nOut := s.Outputs()
	if nOut == 0 {
		nOut = 1
	}

	// Pack the primes once, bucketed per output (ascending column id).
	type packedPrime struct {
		col         int
		value, mask uint64
	}
	byOut := make([][]packedPrime, nOut)
	for j, pc := range prs.Cubes {
		value, mask, ok := s.PackInput(pc)
		if !ok {
			continue // empty input part: covers no minterm
		}
		if s.Outputs() == 0 {
			byOut[0] = append(byOut[0], packedPrime{j, value, mask})
			continue
		}
		outs, _ := s.PackOutputs(pc)
		for outs != 0 {
			o := bits.TrailingZeros64(outs)
			outs &^= 1 << o
			byOut[o] = append(byOut[o], packedPrime{j, value, mask})
		}
	}

	words := (1<<uint(n) + 63) / 64
	need := make([]uint64, words)

	// paint sets (on=true) or clears (on=false) the minterms of c in
	// the bit set.  The low six don't-care bits are folded into a
	// single word pattern, so each enumerated submask paints one word.
	paint := func(c cube.Cube, o int, on bool) {
		if s.Outputs() > 0 && !s.Output(c, o) {
			return
		}
		value, mask, ok := s.PackInput(c)
		if !ok {
			return // empty part: no minterms
		}
		maskLow := mask & 63
		maskHigh := mask &^ 63
		var wpat uint64
		for sub := maskLow; ; sub = (sub - 1) & maskLow {
			wpat |= 1 << (value&63 | sub)
			if sub == 0 {
				break
			}
		}
		valueHigh := value &^ 63
		for sub := maskHigh; ; sub = (sub - 1) & maskHigh {
			w := (valueHigh | sub) >> 6
			if on {
				need[w] |= wpat
			} else {
				need[w] &^= wpat
			}
			if sub == 0 {
				break
			}
		}
	}

	var (
		ids  []RowID
		rows [][]int
		cols []int // shared arena; rows are carved out after it is final
		ends []int // arena end offset per row
	)
	for o := 0; o < nOut; o++ {
		for i := range need {
			need[i] = 0
		}
		for _, c := range f.Cubes {
			paint(c, o, true)
		}
		if d != nil {
			for _, c := range d.Cubes {
				paint(c, o, false)
			}
		}
		ps := byOut[o]
		for w, bw := range need {
			for bw != 0 {
				b := bits.TrailingZeros64(bw)
				bw &^= 1 << b
				m := uint64(w)<<6 | uint64(b)
				ids = append(ids, RowID{Minterm: m, Output: o})
				for _, p := range ps {
					if (m^p.value)&^p.mask == 0 {
						cols = append(cols, p.col)
					}
				}
				ends = append(ends, len(cols))
			}
		}
	}
	rows = make([][]int, len(ids))
	start := 0
	for r, end := range ends {
		rows[r] = cols[start:end:end]
		start = end
	}

	cost := make([]int, prs.Len())
	for j, pc := range prs.Cubes {
		switch cm {
		case LiteralCost:
			cost[j] = 1 + s.Inputs() - s.InputWeight(pc)
		default:
			cost[j] = 1
		}
	}
	p, err := matrix.FromSortedRows(rows, prs.Len(), cost)
	if err != nil {
		return nil, nil, err
	}
	return p, ids, nil
}

// buildCoveringReference is the original map-and-cube-containment
// construction, kept as the oracle for the differential tests: the
// streaming BuildCovering must reproduce its rows, ids and costs
// bit-identically.
func buildCoveringReference(f, d *cube.Cover, prs *cube.Cover, cm CostModel) (*matrix.Problem, []RowID, error) {
	s := f.S
	if s.Inputs() > MaxCoveringInputs {
		return nil, nil, fmt.Errorf("%w: %d inputs exceed %d", ErrCoveringLimit, s.Inputs(), MaxCoveringInputs)
	}
	nOut := s.Outputs()
	if nOut == 0 {
		nOut = 1
	}
	type key struct {
		m uint64
		o int
	}
	need := make(map[key]bool)
	for o := 0; o < nOut; o++ {
		for _, c := range f.Cubes {
			if err := s.Minterms(c, o, func(m uint64) bool {
				need[key{m, o}] = true
				return true
			}); err != nil {
				return nil, nil, err
			}
		}
		if d != nil {
			for _, c := range d.Cubes {
				if err := s.Minterms(c, o, func(m uint64) bool {
					delete(need, key{m, o}) // don't cares need no cover
					return true
				}); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	ids := make([]RowID, 0, len(need))
	for k := range need {
		ids = append(ids, RowID{Minterm: k.m, Output: k.o})
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Output != ids[b].Output {
			return ids[a].Output < ids[b].Output
		}
		return ids[a].Minterm < ids[b].Minterm
	})

	rows := make([][]int, len(ids))
	for r, id := range ids {
		mc := s.CubeOfMinterm(id.Minterm, id.Output)
		for j, pc := range prs.Cubes {
			if s.Contains(pc, mc) {
				rows[r] = append(rows[r], j)
			}
		}
	}
	cost := make([]int, prs.Len())
	for j, pc := range prs.Cubes {
		switch cm {
		case LiteralCost:
			cost[j] = 1 + s.Inputs() - s.InputWeight(pc)
		default:
			cost[j] = 1
		}
	}
	p, err := matrix.New(rows, prs.Len(), cost)
	if err != nil {
		return nil, nil, err
	}
	return p, ids, nil
}
