package shard

// partitioner is a streaming union-find over the column universe: each
// incoming row unions its columns, so after one pass the sets of
// mutually reachable columns are exactly the connected components of
// the instance (rows join a component through any of their columns).
// 4 bytes per column, no per-row state.
type partitioner struct {
	parent []int32
}

func newPartitioner(ncols int) *partitioner {
	pt := &partitioner{parent: make([]int32, ncols)}
	for j := range pt.parent {
		pt.parent[j] = int32(j)
	}
	return pt
}

func (pt *partitioner) find(j int32) int32 {
	for pt.parent[j] != j {
		pt.parent[j] = pt.parent[pt.parent[j]] // path halving
		j = pt.parent[j]
	}
	return j
}

// addRow unions all the row's columns into one set.
func (pt *partitioner) addRow(cols []int) {
	if len(cols) < 2 {
		return
	}
	a := pt.find(int32(cols[0]))
	for _, c := range cols[1:] {
		b := pt.find(int32(c))
		if a == b {
			continue
		}
		// Smaller root wins: keeps find deterministic and cheap without
		// a rank array.
		if b < a {
			a, b = b, a
		}
		pt.parent[b] = a
	}
}
