package shard

import (
	"io"

	"ucp/internal/matrix"
	"ucp/internal/scpio"
)

// Header carries an instance's dimensions and costs — everything the
// driver must know before the rows stream.  Cost may be nil for
// uniform unit costs.
type Header struct {
	Rows int
	Cols int
	Cost []int
}

// RowReader hands out one row per call, in instance order: the row's
// 0-based column ids appended to buf[:0] (so callers can recycle the
// backing array), io.EOF after the last row.  Rows need not be sorted
// or duplicate-free — the driver normalizes them exactly as
// matrix.New would.
type RowReader interface {
	Next(buf []int) ([]int, error)
}

// Source opens a set-covering instance as a header plus a row stream.
// Reader-backed sources are one-shot: Solve consumes them in a single
// pass.
type Source interface {
	Open() (Header, RowReader, error)
}

// ORLib streams a Beasley OR-Library "scp" instance from r.
func ORLib(r io.Reader) Source { return orlibSource{r} }

type orlibSource struct{ r io.Reader }

func (s orlibSource) Open() (Header, RowReader, error) {
	or, err := scpio.NewORLibReader(s.r)
	if err != nil {
		return Header{}, nil, err
	}
	return Header{Rows: or.NumRows(), Cols: or.NumCols(), Cost: or.Cost()}, or, nil
}

// MatrixText streams an instance in the repo's covering-matrix text
// format from r.
func MatrixText(r io.Reader) Source { return matrixSource{r} }

type matrixSource struct{ r io.Reader }

func (s matrixSource) Open() (Header, RowReader, error) {
	mr, err := scpio.NewMatrixReader(s.r)
	if err != nil {
		return Header{}, nil, err
	}
	return Header{Rows: mr.NumRows(), Cols: mr.NumCols(), Cost: mr.Cost()}, mr, nil
}

// FromProblem adapts an in-memory problem, so an already-materialised
// instance can still be solved under a memory budget (its decoded
// per-component copies, not the input itself, are what the budget
// governs).
func FromProblem(p *matrix.Problem) Source { return problemSource{p} }

type problemSource struct{ p *matrix.Problem }

func (s problemSource) Open() (Header, RowReader, error) {
	return Header{Rows: len(s.p.Rows), Cols: s.p.NCol, Cost: s.p.Cost}, &problemRows{p: s.p}, nil
}

type problemRows struct {
	p *matrix.Problem
	i int
}

func (r *problemRows) Next(buf []int) ([]int, error) {
	if r.i >= len(r.p.Rows) {
		return nil, io.EOF
	}
	row := append(buf[:0], r.p.Rows[r.i]...)
	r.i++
	return row, nil
}
