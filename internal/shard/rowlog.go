package shard

import (
	"bufio"
	"bytes"
	"io"
)

// Row-log segment granularity: frames accumulate in a resident buffer,
// and sealed segments beyond the resident cap go to the spill file.
// Frames never straddle segments.  The buffer scales with the memory
// budget (an eighth, clamped) so a small budget is not consumed by the
// log's own buffering.
const (
	minSegSize = 16 << 10
	maxSegSize = 1 << 20
)

// segSizeFor picks the active-buffer size for a byte budget.
func segSizeFor(memBudget int64) int64 {
	s := memBudget / 8
	if s < minSegSize {
		return minSegSize
	}
	if s > maxSegSize {
		return maxSegSize
	}
	return s
}

// rowLog is the append-only log of encoded row frames built while the
// source streams: pass A appends every row, passes B and C scan it
// back (pass C consuming, so resident bytes drain as decoded
// components grow).  Resident segments and the active buffer are
// accounted in the gauge; spilled segments cost only disk.
type rowLog struct {
	spill   *spillFile
	g       *gauge
	resCap  int64 // resident sealed bytes beyond which segments spill
	segSize int64

	segs     []logSeg
	cur      []byte
	curCap   int64
	resident int64
	sealed   bool
}

type logSeg struct {
	mem []byte // nil when the segment lives in the spill file
	off int64
	n   int64
}

func newRowLog(spill *spillFile, g *gauge, resCap, segSize int64) *rowLog {
	l := &rowLog{spill: spill, g: g, resCap: resCap, segSize: segSize, cur: make([]byte, 0, segSize)}
	l.curCap = segSize
	g.add(segSize)
	return l
}

// append encodes one normalized row onto the log.
func (l *rowLog) append(cols []int) error {
	l.cur = appendFrame(l.cur, cols)
	if c := int64(cap(l.cur)); c != l.curCap {
		l.g.add(c - l.curCap)
		l.curCap = c
	}
	if int64(len(l.cur)) >= l.segSize {
		return l.rotate()
	}
	return nil
}

// rotate seals the active buffer into a segment.
func (l *rowLog) rotate() error {
	if len(l.cur) == 0 {
		return nil
	}
	n := int64(len(l.cur))
	if l.resident+n > l.resCap {
		off, err := l.spill.alloc(n)
		if err != nil {
			return err
		}
		if err := l.spill.writeAt(l.cur, off); err != nil {
			return err
		}
		l.segs = append(l.segs, logSeg{off: off, n: n})
	} else {
		seg := make([]byte, n)
		copy(seg, l.cur)
		l.segs = append(l.segs, logSeg{mem: seg, n: n})
		l.resident += n
		l.g.add(n)
	}
	l.cur = l.cur[:0]
	return nil
}

// finish seals the tail and releases the active buffer; the log is
// read-only from here on.
func (l *rowLog) finish() error {
	if err := l.rotate(); err != nil {
		return err
	}
	l.cur = nil
	l.g.add(-l.curCap)
	l.curCap = 0
	l.sealed = true
	return nil
}

// scan replays every frame in append order.  With consume set, each
// resident segment is released as soon as it has been fully read, so
// the caller can grow decoded state while the log shrinks.
func (l *rowLog) scan(consume bool, fn func(cols []int) error) error {
	var buf []int
	for i := range l.segs {
		seg := &l.segs[i]
		var br io.ByteReader
		if seg.mem != nil {
			br = bytes.NewReader(seg.mem)
		} else {
			br = bufio.NewReaderSize(io.NewSectionReader(l.spill.file(), seg.off, seg.n), 64<<10)
		}
		for {
			cols, err := readFrame(br, buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			buf = cols
			if err := fn(cols); err != nil {
				return err
			}
		}
		if consume && seg.mem != nil {
			l.resident -= seg.n
			l.g.add(-seg.n)
			seg.mem = nil
			seg.n = -1 // poison: a consumed segment cannot be re-read
		}
	}
	return nil
}
