// Package shard is the out-of-core component-sharded driver for the
// ZDD_SCG solver: it streams a set-covering instance once (never
// materialising the file), partitions it into connected components
// with a union-find over columns, and solves the components
// largest-first on a worker pool under a global byte budget, spilling
// decoded-but-not-yet-scheduled components to disk and re-admitting
// them on demand.  Each component runs the exact per-part pipeline of
// internal/scg (SolvePartCompact at the canonical part index), and the
// per-component results fold through scg.MergeParts — so a sharded
// solve is bit-identical to the direct scg.Solve of the same instance
// by construction (see DESIGN.md §17).
//
// The byte budget governs the driver's own tracked state: decoded
// component row data, resident row-log segments, the column union-find
// and the cost vector.  It does not bound the transient working memory
// of the per-component solves; a single component larger than the
// whole budget is admitted alone, exceeding the budget by exactly its
// size.
package shard

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"ucp/internal/budget"
	"ucp/internal/matrix"
	"ucp/internal/scg"
)

// ErrInput tags every parse or validation failure of the streamed
// source, so callers can tell malformed instances apart from
// environmental failures (spill-file IO), which pass through
// unwrapped.
var ErrInput = errors.New("shard: malformed input")

func inputErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInput, err)
}

// comp is one connected component's lifecycle record.
type comp struct {
	id         int   // canonical part index (ascending smallest row)
	rows, nnz  int   //
	frameBytes int64 // encoded size in the spill file / row log
	decBytes   int64 // tracked bytes of the decoded form

	state int // stSpilled | stResident | stRunning | stDone
	off   int64
	wr    int64   // demux write cursor into the spill extent
	data  [][]int // decoded rows, in input row order
}

const (
	stSpilled = iota
	stResident
	stRunning
	stDone
)

// compOverhead is the accounted fixed cost of one comp record.
const compOverhead = 96

// decSize estimates the tracked bytes of a decoded component: slice
// headers plus 8 bytes per nonzero.
func decSize(rows, nnz int) int64 { return int64(rows)*24 + int64(nnz)*8 }

// frameSize is len(appendFrame(nil, cols)) without encoding.
func frameSize(cols []int) int64 {
	n := uvarintLen(uint64(len(cols)))
	prev := 0
	for i, c := range cols {
		if i == 0 {
			n += uvarintLen(uint64(c))
		} else {
			n += uvarintLen(uint64(c - prev))
		}
		prev = c
	}
	return int64(n)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Solve streams the instance from src and solves it under
// opt.MemBudget tracked bytes (≤ 0: unlimited).  The result is
// bit-identical to scg.Solve on the materialised instance, with the
// Stats.Shard* counters filled in.  Errors are parse/validation
// failures of the source or spill-file IO failures.
func Solve(src Source, opt scg.Options) (*scg.Result, error) {
	t0 := time.Now()
	hdr, rr, err := src.Open()
	if err != nil {
		return nil, inputErr(err)
	}
	ncols := hdr.Cols
	if ncols < 0 {
		return nil, inputErr(fmt.Errorf("negative column count %d", ncols))
	}
	cost := hdr.Cost
	if cost == nil {
		cost = make([]int, ncols)
		for j := range cost {
			cost[j] = 1
		}
	}
	if len(cost) != ncols {
		return nil, inputErr(fmt.Errorf("%d costs for %d columns", len(cost), ncols))
	}
	for j, c := range cost {
		if c < 0 {
			return nil, inputErr(fmt.Errorf("column %d has negative cost %d", j, c))
		}
	}
	memBudget := opt.MemBudget
	if memBudget <= 0 {
		memBudget = 1 << 62
	}

	g := &gauge{}
	g.add(8 * int64(ncols)) // cost vector
	g.add(4 * int64(ncols)) // union-find parents
	spill := newSpillFile(opt.SpillDir)
	defer spill.close()

	resCap := (memBudget - g.current()) / 2
	if resCap < 0 {
		resCap = 0
	}
	log := newRowLog(spill, g, resCap, segSizeFor(memBudget))
	pt := newPartitioner(ncols)

	// ----- pass A: stream, normalize, log, union -----
	var scratch []int
	for {
		row, err := rr.Next(scratch)
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, inputErr(err)
		}
		scratch = row
		norm, err := normalize(row, ncols)
		if err != nil {
			return nil, inputErr(err)
		}
		if !opt.DisablePartition {
			pt.addRow(norm)
		}
		if err := log.append(norm); err != nil {
			return nil, err
		}
	}
	if err := log.finish(); err != nil {
		return nil, err
	}

	// ----- pass B: canonical component assignment and sizes -----
	var comps []*comp
	rootComp := map[int32]*comp{}
	var emptySeq []*comp
	newComp := func() *comp {
		c := &comp{id: len(comps)}
		comps = append(comps, c)
		g.add(compOverhead)
		return c
	}
	assign := func(cols []int) *comp {
		if opt.DisablePartition {
			if len(comps) == 0 {
				return newComp()
			}
			return comps[0]
		}
		if len(cols) == 0 {
			// An uncoverable row is its own singleton component at its
			// canonical position, like matrix.Components reports it.
			c := newComp()
			emptySeq = append(emptySeq, c)
			return c
		}
		root := pt.find(int32(cols[0]))
		c, ok := rootComp[root]
		if !ok {
			c = newComp()
			rootComp[root] = c
		}
		return c
	}
	err = log.scan(false, func(cols []int) error {
		c := assign(cols)
		c.rows++
		c.nnz += len(cols)
		c.frameBytes += frameSize(cols)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		// A rowless instance still runs one (empty) part, exactly like
		// scg.Solve's connected path on the empty problem.
		newComp()
	}
	for _, c := range comps {
		c.decBytes = decSize(c.rows, c.nnz)
	}

	// ----- residency: largest components stay decoded, the rest get a
	// contiguous extent in the spill file -----
	order := append([]*comp(nil), comps...)
	sort.Slice(order, func(a, b int) bool {
		if order[a].decBytes != order[b].decBytes {
			return order[a].decBytes > order[b].decBytes
		}
		return order[a].id < order[b].id
	})
	decodeCap := memBudget - g.current()
	if decodeCap < 0 {
		decodeCap = 0
	}
	var residentBytes, spillBytes int64
	spilled := 0
	for _, c := range order {
		if residentBytes+c.decBytes <= decodeCap {
			c.state = stResident
			residentBytes += c.decBytes
		} else {
			c.state = stSpilled
			spillBytes += c.frameBytes
			spilled++
		}
	}
	if spillBytes > 0 {
		off, err := spill.alloc(spillBytes)
		if err != nil {
			return nil, err
		}
		for _, c := range order {
			if c.state == stSpilled {
				c.off = off
				off += c.frameBytes
			}
		}
	}

	// ----- pass C: demux rows to decoded residents / spill extents,
	// draining the row log as it goes -----
	emptyIdx := 0
	var frame []byte
	nextRow := func(cols []int) *comp {
		if opt.DisablePartition {
			return comps[0]
		}
		if len(cols) == 0 {
			c := emptySeq[emptyIdx]
			emptyIdx++
			return c
		}
		return rootComp[pt.find(int32(cols[0]))]
	}
	err = log.scan(true, func(cols []int) error {
		c := nextRow(cols)
		if c.state == stResident {
			g.add(decSize(1, len(cols)))
			c.data = append(c.data, append([]int(nil), cols...))
			return nil
		}
		frame = appendFrame(frame[:0], cols)
		if err := spill.writeAt(frame, c.off+c.wr); err != nil {
			return err
		}
		c.wr += int64(len(frame))
		return nil
	})
	if err != nil {
		return nil, err
	}
	pt = nil
	g.add(-4 * int64(ncols)) // union-find released

	// ----- solve the components largest-first -----
	tr := opt.Budget.Tracker()
	prs, sc, err := runScheduler(order, len(comps), cost, ncols, opt, tr, g, spill, memBudget)
	if err != nil {
		return nil, err
	}
	res := scg.MergeParts(prs)
	res.Stats.ShardComponents = len(comps)
	res.Stats.ShardSpilled = spilled
	res.Stats.ShardRespilled = sc.respilled
	res.Stats.ShardDegraded = sc.degraded
	res.Stats.ShardPeakBytes = g.peakBytes()
	if r := tr.Reason(); r != budget.None {
		res.Interrupted = true
		res.StopReason = r
	}
	res.Stats.TotalTime = time.Since(t0)
	return res, nil
}

// SolveProblem runs the sharded driver over an already-materialised
// problem.
func SolveProblem(p *matrix.Problem, opt scg.Options) (*scg.Result, error) {
	return Solve(FromProblem(p), opt)
}

// normalize sorts and deduplicates a row in place and validates the
// column range, mirroring matrix.New.
func normalize(row []int, ncols int) ([]int, error) {
	sort.Ints(row)
	out := row[:0]
	for k, j := range row {
		if j < 0 || j >= ncols {
			return nil, fmt.Errorf("row references column %d outside universe %d", j, ncols)
		}
		if k > 0 && row[k-1] == j {
			continue
		}
		out = append(out, j)
	}
	return out, nil
}
