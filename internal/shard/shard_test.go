package shard

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ucp/internal/benchmarks"
	"ucp/internal/matrix"
	"ucp/internal/scg"
)

// stripSchedulingStats zeroes the fields exempt from the bit-identity
// contract: timings and the shard scheduling counters.
func stripSchedulingStats(st scg.Stats) scg.Stats {
	st.CyclicCoreTime = 0
	st.TotalTime = 0
	st.ShardComponents = 0
	st.ShardSpilled = 0
	st.ShardRespilled = 0
	st.ShardPeakBytes = 0
	st.ShardDegraded = 0
	return st
}

func requireIdentical(t *testing.T, direct, sharded *scg.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(direct.Solution, sharded.Solution) {
		t.Fatalf("%s: solution %v != %v", label, sharded.Solution, direct.Solution)
	}
	if direct.Cost != sharded.Cost || direct.LB != sharded.LB || direct.ProvedOptimal != sharded.ProvedOptimal {
		t.Fatalf("%s: cost/LB/proved (%d %v %v) != (%d %v %v)", label,
			sharded.Cost, sharded.LB, sharded.ProvedOptimal, direct.Cost, direct.LB, direct.ProvedOptimal)
	}
	if ds, ss := stripSchedulingStats(direct.Stats), stripSchedulingStats(sharded.Stats); ds != ss {
		t.Fatalf("%s: stats diverged\ndirect  %+v\nsharded %+v", label, ds, ss)
	}
}

// testProblems is a spread of instance shapes: multi-component,
// connected, with empty (uncoverable) rows, and single-row edge cases.
func testProblems(t *testing.T) map[string]*matrix.Problem {
	t.Helper()
	multi, err := benchmarks.ComponentCovering(benchmarks.ComponentSpec{
		Seed: 11, Components: 9, RowsPerComp: 14, ColsPerComp: 10, RowDegree: 3, MaxCost: 7})
	if err != nil {
		t.Fatal(err)
	}
	uneven, err := benchmarks.ComponentCovering(benchmarks.ComponentSpec{
		Seed: 12, Components: 4, RowsPerComp: 30, ColsPerComp: 12, RowDegree: 4, MaxCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*matrix.Problem{
		"multi":     multi,
		"uneven":    uneven,
		"connected": benchmarks.RandomCovering(3, 40, 25, 0.15, 6),
		"cyclic":    benchmarks.CyclicCovering(4, 30, 20, 3),
		"singleton": matrix.MustNew([][]int{{0}}, 1, nil),
		"empty":     matrix.MustNew(nil, 3, nil),
	}
}

// TestShardedMatchesDirect is the differential acceptance test: the
// sharded solve is bit-identical to scg.Solve across Workers 1/2/4/8,
// both fully in RAM and with spilling forced by a tiny budget.
func TestShardedMatchesDirect(t *testing.T) {
	for name, p := range testProblems(t) {
		for _, workers := range []int{1, 2, 4, 8} {
			opt := scg.Options{Seed: 7, NumIter: 3, Workers: workers}
			direct := scg.Solve(p, opt)
			for _, budgetBytes := range []int64{1 << 30, 16 << 10} {
				opt.MemBudget = budgetBytes
				res, err := SolveProblem(p, opt)
				if err != nil {
					t.Fatalf("%s workers=%d budget=%d: %v", name, workers, budgetBytes, err)
				}
				requireIdentical(t, direct, res, name)
				if res.Stats.ShardComponents == 0 && len(p.Rows) > 0 {
					t.Fatalf("%s: no components reported", name)
				}
			}
		}
	}
}

// TestShardedInfeasible: an uncoverable row surfaces as a nil solution
// at the same canonical fold position as the direct solve.
func TestShardedInfeasible(t *testing.T) {
	p := matrix.MustNew([][]int{{0, 1}, {}, {2}}, 3, nil)
	opt := scg.Options{Seed: 1, MemBudget: 1 << 20}
	direct := scg.Solve(p, scg.Options{Seed: 1})
	res, err := SolveProblem(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Solution != nil || res.Solution != nil {
		t.Fatalf("expected infeasible: direct %v sharded %v", direct.Solution, res.Solution)
	}
	requireIdentical(t, direct, res, "infeasible")
}

// TestShardedSources: the ORLib and matrix-text streaming sources
// produce the same result as the in-memory source.
func TestShardedSources(t *testing.T) {
	spec := benchmarks.ComponentSpec{Seed: 21, Components: 5, RowsPerComp: 12, ColsPerComp: 9, RowDegree: 3, MaxCost: 4}
	p, err := benchmarks.ComponentCovering(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := scg.Options{Seed: 9, MemBudget: 8 << 10}
	want, err := SolveProblem(p, opt)
	if err != nil {
		t.Fatal(err)
	}

	var orl bytes.Buffer
	if err := spec.WriteORLib(&orl); err != nil {
		t.Fatal(err)
	}
	got, err := Solve(ORLib(&orl), opt)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got, "orlib source")

	var mtx bytes.Buffer
	if err := spec.WriteMatrix(&mtx); err != nil {
		t.Fatal(err)
	}
	got, err = Solve(MatrixText(&mtx), opt)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got, "matrix source")
}

// TestShardedUnderBudget is the out-of-core acceptance test: an
// instance whose decoded size is more than 4× the memory budget solves
// to a verified feasible cover while the tracked peak stays under the
// budget.
func TestShardedUnderBudget(t *testing.T) {
	spec := benchmarks.ComponentSpec{Seed: 31, Components: 80, RowsPerComp: 300, ColsPerComp: 40, RowDegree: 4, MaxCost: 6}
	p, err := benchmarks.ComponentCovering(spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded := decSize(len(p.Rows), p.NNZ())
	memBudget := int64(256 << 10)
	if decoded < 4*memBudget {
		t.Fatalf("instance too small for the test: %d decoded bytes vs %d budget", decoded, memBudget)
	}
	opt := scg.Options{Seed: 5, MemBudget: memBudget, Workers: 4}
	res, err := SolveProblem(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil {
		t.Fatal("no cover found")
	}
	if err := verifyCover(p, res.Solution); err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardPeakBytes > memBudget {
		t.Fatalf("peak tracked bytes %d exceed budget %d", res.Stats.ShardPeakBytes, memBudget)
	}
	if res.Stats.ShardSpilled == 0 {
		t.Fatal("expected spilled components at this budget")
	}
	if res.Stats.ShardComponents != spec.Components {
		t.Fatalf("components %d, want %d", res.Stats.ShardComponents, spec.Components)
	}
	// And it is still the bit-identical answer.
	direct := scg.Solve(p, scg.Options{Seed: 5, Workers: 4})
	requireIdentical(t, direct, res, "under-budget")
}

func verifyCover(p *matrix.Problem, sol []int) error {
	in := make(map[int]bool, len(sol))
	for _, j := range sol {
		in[j] = true
	}
	for i, r := range p.Rows {
		ok := false
		for _, j := range r {
			if in[j] {
				ok = true
				break
			}
		}
		if !ok {
			return &rowUncovered{i}
		}
	}
	return nil
}

type rowUncovered struct{ row int }

func (e *rowUncovered) Error() string { return "row not covered" }

// TestShardedDeadlineDegrades: with an already-expired deadline every
// component completes greedily (the bottom rung of the ladder) and the
// result is still a feasible cover.
func TestShardedDeadlineDegrades(t *testing.T) {
	p, err := benchmarks.ComponentCovering(benchmarks.ComponentSpec{
		Seed: 41, Components: 6, RowsPerComp: 25, ColsPerComp: 10, RowDegree: 3, MaxCost: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the deadline has already passed when the solve starts
	opt := scg.Options{Seed: 2, MemBudget: 1 << 20}
	opt.Budget.Context = ctx
	res, err := SolveProblem(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil {
		t.Fatal("degraded solve must still produce a feasible cover")
	}
	if err := verifyCover(p, res.Solution); err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("interrupted flag not set")
	}
	if res.Stats.ShardDegraded == 0 {
		t.Fatal("expected greedy-degraded components")
	}
}

// TestEvictionRespill drives the scheduler's eviction path directly: a
// spilled high-priority component admitted while a decoded-but-
// unstarted one holds the budget must re-spill the latter.
func TestEvictionRespill(t *testing.T) {
	g := &gauge{}
	spill := newSpillFile(t.TempDir())
	defer spill.close()

	mk := func(id int, rows [][]int, state int) *comp {
		nnz := 0
		var fb int64
		for _, r := range rows {
			nnz += len(r)
			fb += frameSize(r)
		}
		c := &comp{id: id, rows: len(rows), nnz: nnz, frameBytes: fb, decBytes: decSize(len(rows), nnz), state: state}
		if state == stResident {
			c.data = rows
		}
		return c
	}
	big := mk(0, [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}}, stSpilled)
	small := mk(1, [][]int{{4, 5}}, stResident)
	// Write big's frames where its extent says they are.
	off, err := spill.alloc(big.frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	big.off = off
	var enc []byte
	for _, r := range [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}} {
		enc = appendFrame(enc, r)
	}
	if err := spill.writeAt(enc, off); err != nil {
		t.Fatal(err)
	}

	s := &sched{order: []*comp{big, small}, g: g, spill: spill}
	s.cond = sync.NewCond(&s.mu)
	s.decodedNow = small.decBytes
	s.decodeCap = big.decBytes + small.decBytes/2 // room for big only after evicting small

	s.mu.Lock()
	if !s.evictLocked() {
		t.Fatal("eviction did not fire")
	}
	s.mu.Unlock()
	if small.state != stSpilled || small.data != nil {
		t.Fatal("evicted component not re-spilled")
	}
	if s.respilled != 1 {
		t.Fatalf("respilled = %d, want 1", s.respilled)
	}
	// The evicted component must round-trip back off disk.
	rows, err := s.loadComp(small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, [][]int{{4, 5}}) {
		t.Fatalf("re-loaded rows = %v", rows)
	}
	rows, err = s.loadComp(big)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}}) {
		t.Fatalf("big rows = %v", rows)
	}
}

// TestFrameRoundTrip: the binary frame encoding decodes to exactly the
// input across random rows, including empty ones.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var enc []byte
	var rows [][]int
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12)
		row := make([]int, 0, n)
		c := 0
		for k := 0; k < n; k++ {
			c += 1 + rng.Intn(1<<uint(rng.Intn(20)))
			row = append(row, c)
		}
		rows = append(rows, row)
		enc = appendFrame(enc, row)
		if int64(len(enc)) != sumFrameSizes(rows) {
			t.Fatalf("frameSize disagrees with appendFrame at trial %d", trial)
		}
	}
	br := bytes.NewReader(enc)
	for i, want := range rows {
		got, err := readFrame(br, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: %v != %v", i, got, want)
		}
	}
}

func sumFrameSizes(rows [][]int) int64 {
	var n int64
	for _, r := range rows {
		n += frameSize(r)
	}
	return n
}

// TestShardedMalformedSources: parse failures stream back as errors
// with line numbers, not panics or partial results.
func TestShardedMalformedSources(t *testing.T) {
	if _, err := Solve(ORLib(bytes.NewReader([]byte("2 2\n1 1\n1 9\n"))), scg.Options{MemBudget: 1 << 20}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := Solve(MatrixText(bytes.NewReader([]byte("p 2 2\nr 0\n"))), scg.Options{MemBudget: 1 << 20}); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	if _, err := Solve(MatrixText(bytes.NewReader([]byte("p 1 2\nr 7\n"))), scg.Options{MemBudget: 1 << 20}); err == nil {
		t.Fatal("column outside universe accepted")
	}
}
