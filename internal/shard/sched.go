package shard

import (
	"bufio"
	"io"
	"runtime"
	"sort"
	"sync"

	"ucp/internal/budget"
	"ucp/internal/greedy"
	"ucp/internal/matrix"
	"ucp/internal/scg"
)

// sched runs the per-component solves largest-first on a worker pool,
// admitting spilled components under the byte budget and evicting
// decoded-but-not-yet-started ones (smallest first) when a
// higher-priority component needs the room.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	order      []*comp // schedule: decBytes desc, canonical id asc
	next       int
	decodedNow int64 // decoded component bytes currently held
	decodeCap  int64 // budget available to decoded components
	err        error

	g     *gauge
	spill *spillFile

	respilled int
	degraded  int
}

// runScheduler solves every component and returns the per-part
// results in canonical order.
func runScheduler(order []*comp, ncomps int, cost []int, ncols int, opt scg.Options, tr *budget.Tracker, g *gauge, spill *spillFile, memBudget int64) ([]*scg.PartResult, *sched, error) {
	s := &sched{order: order, g: g, spill: spill}
	s.cond = sync.NewCond(&s.mu)
	if ncomps == 0 {
		return nil, s, nil
	}
	for _, c := range order {
		if c.state == stResident {
			s.decodedNow += c.decBytes
		}
	}
	s.decodeCap = memBudget - (g.current() - s.decodedNow)
	if s.decodeCap < 0 {
		s.decodeCap = 0
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := workers
	if outer > ncomps {
		outer = ncomps
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	innerOpt := opt
	innerOpt.Workers = inner
	innerOpt.OnImprove = nil
	innerOpt.Cache = nil
	innerOpt.MemBudget = 0
	innerOpt.SpillDir = ""

	prs := make([]*scg.PartResult, ncomps)
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(prs, ncomps, cost, ncols, innerOpt, tr)
		}()
	}
	wg.Wait()
	if s.err != nil {
		return nil, s, s.err
	}
	return prs, s, nil
}

func (s *sched) worker(prs []*scg.PartResult, ncomps int, cost []int, ncols int, opt scg.Options, tr *budget.Tracker) {
	for {
		s.mu.Lock()
		if s.err != nil || s.next >= len(s.order) {
			s.mu.Unlock()
			return
		}
		c := s.order[s.next]
		s.next++
		if c.state == stSpilled {
			// Admit under the budget: evict decoded-but-unstarted
			// components (they are all lower priority than c), then wait
			// for running ones to release.  A component larger than the
			// whole budget is admitted alone.
			for s.decodedNow > 0 && s.decodedNow+c.decBytes > s.decodeCap {
				if !s.evictLocked() {
					s.cond.Wait()
					if s.err != nil {
						s.mu.Unlock()
						return
					}
				}
			}
			s.decodedNow += c.decBytes
			s.g.add(c.decBytes)
			c.state = stRunning
			s.mu.Unlock()
			data, err := s.loadComp(c)
			if err != nil {
				s.fail(err)
				return
			}
			c.data = data
		} else {
			c.state = stRunning
			s.mu.Unlock()
		}

		pr, degraded := solveComp(c, ncomps, cost, ncols, opt, tr)

		s.mu.Lock()
		prs[c.id] = pr
		c.state = stDone
		c.data = nil
		s.decodedNow -= c.decBytes
		s.g.add(-c.decBytes)
		if degraded {
			s.degraded++
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// evictLocked re-spills the lowest-priority decoded-but-unstarted
// component.  Called with s.mu held; does spill IO under the lock.
func (s *sched) evictLocked() bool {
	for i := len(s.order) - 1; i >= s.next; i-- {
		c := s.order[i]
		if c.state != stResident {
			continue
		}
		off, err := s.spill.alloc(c.frameBytes)
		if err != nil {
			s.err = err
			return false
		}
		if err := s.writeFrames(c.data, off); err != nil {
			s.err = err
			return false
		}
		c.off = off
		c.state = stSpilled
		c.data = nil
		s.decodedNow -= c.decBytes
		s.g.add(-c.decBytes)
		s.respilled++
		return true
	}
	return false
}

// writeFrames encodes rows and writes them contiguously at off.
func (s *sched) writeFrames(rows [][]int, off int64) error {
	buf := make([]byte, 0, 64<<10)
	cur := off
	for _, r := range rows {
		buf = appendFrame(buf, r)
		if len(buf) >= 64<<10 {
			if err := s.spill.writeAt(buf, cur); err != nil {
				return err
			}
			cur += int64(len(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return s.spill.writeAt(buf, cur)
	}
	return nil
}

// loadComp reads a spilled component's extent back into decoded rows.
func (s *sched) loadComp(c *comp) ([][]int, error) {
	br := bufio.NewReaderSize(io.NewSectionReader(s.spill.file(), c.off, c.frameBytes), 64<<10)
	rows := make([][]int, 0, c.rows)
	for len(rows) < c.rows {
		cols, err := readFrame(br, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, append([]int(nil), cols...))
	}
	return rows, nil
}

// solveComp runs one component through the identical per-part pipeline
// scg.Solve uses — SolvePart for a single-component instance (matching
// the connected fast path, no column compaction), SolvePartCompact at
// the canonical part index otherwise.  A component dispatched after
// the budget already ran out degrades straight to the greedy bottom
// rung of the deadline ladder instead of grinding through the reduced
// pipeline.
func solveComp(c *comp, ncomps int, cost []int, ncols int, opt scg.Options, tr *budget.Tracker) (*scg.PartResult, bool) {
	prob := &matrix.Problem{Rows: c.data, NCol: ncols, Cost: cost}
	if tr.Interrupted() {
		return greedyPart(prob, tr), true
	}
	if ncomps == 1 {
		return scg.SolvePart(prob, 0, opt, tr), false
	}
	return scg.SolvePartCompact(prob, c.id, opt, tr), false
}

// greedyPart completes a late component with the Chvátal greedy (which
// under an exhausted budget itself degrades to cheapest-column
// completion), yielding a feasible cover with a trivial lower bound.
func greedyPart(prob *matrix.Problem, tr *budget.Tracker) *scg.PartResult {
	sub, ids := prob.CompactSparse()
	sol, _, err := greedy.SolveBudget(sub, tr)
	if err != nil {
		return &scg.PartResult{} // uncoverable row: Solution stays nil
	}
	mapped := make([]int, len(sol))
	for k, j := range sol {
		mapped[k] = ids[j]
	}
	sort.Ints(mapped)
	return &scg.PartResult{Solution: mapped, Cost: prob.CostOf(mapped)}
}
