package shard

import (
	"fmt"
	"os"
	"sync"
)

// spillFile is the driver's single scratch file: an append-allocated
// region store, created lazily on the first spill and unlinked
// immediately so it can never outlive the process.  Regions are
// allocated once and accessed with positioned reads/writes, so
// concurrent workers never share a file offset.
type spillFile struct {
	dir string

	mu  sync.Mutex
	f   *os.File
	end int64
}

func newSpillFile(dir string) *spillFile { return &spillFile{dir: dir} }

// alloc reserves n bytes and returns the region's offset.
func (s *spillFile) alloc(n int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := os.CreateTemp(s.dir, "ucp-shard-*.spill")
		if err != nil {
			return 0, fmt.Errorf("shard: creating spill file: %w", err)
		}
		// Unlink right away: the data is reachable only through the open
		// descriptor and vanishes with the process.
		os.Remove(f.Name())
		s.f = f
	}
	off := s.end
	s.end += n
	return off, nil
}

func (s *spillFile) writeAt(p []byte, off int64) error {
	if _, err := s.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("shard: spill write: %w", err)
	}
	return nil
}

func (s *spillFile) readAt(p []byte, off int64) error {
	if _, err := s.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("shard: spill read: %w", err)
	}
	return nil
}

// file exposes the backing descriptor for positioned section reads.
// Only valid after an alloc created it.
func (s *spillFile) file() *os.File {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f
}

func (s *spillFile) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// gauge tracks the driver's accounted bytes — decoded component data,
// resident row-log segments, and the fixed per-solve overhead — and
// remembers the high-water mark reported as Stats.ShardPeakBytes.
type gauge struct {
	mu   sync.Mutex
	used int64
	peak int64
}

func (g *gauge) add(n int64) {
	g.mu.Lock()
	g.used += n
	if g.used > g.peak {
		g.peak = g.used
	}
	g.mu.Unlock()
}

func (g *gauge) current() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

func (g *gauge) peakBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}
