package shard

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Row frames are the sharded driver's at-rest encoding: a normalized
// (sorted, duplicate-free) row becomes
//
//	uvarint(k)  uvarint(col₀)  uvarint(col₁-col₀) ... uvarint(colₖ₋₁-colₖ₋₂)
//
// — the column count, the first column absolute, then the strictly
// positive gaps.  Frames are self-delimiting, so a log of them needs
// no index, and delta coding keeps a typical sparse row at one to two
// bytes per column.

// appendFrame encodes cols (sorted ascending, no duplicates) onto dst.
func appendFrame(dst []byte, cols []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	prev := 0
	for i, c := range cols {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(c))
		} else {
			dst = binary.AppendUvarint(dst, uint64(c-prev))
		}
		prev = c
	}
	return dst
}

// readFrame decodes one frame from br into buf[:0].  io.EOF (clean,
// at a frame boundary) is passed through; any other failure comes back
// wrapped.
func readFrame(br io.ByteReader, buf []int) ([]int, error) {
	k, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("shard: corrupt row frame: %w", err)
	}
	cols := buf[:0]
	prev := 0
	for i := uint64(0); i < k; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("shard: truncated row frame: %w", err)
		}
		if i == 0 {
			prev = int(d)
		} else {
			prev += int(d)
		}
		cols = append(cols, prev)
	}
	return cols, nil
}
