package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ucp"
	"ucp/internal/serve/faultinject"
)

// tinyProblem's minimum cover is {0, 1} at cost 3.
const tinyProblem = "p 3 3\nc 2 1 3\nr 0 1\nr 1 2\nr 0 2\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postRaw(t *testing.T, c *http.Client, url, body string) (*http.Response, Response) {
	t.Helper()
	resp, err := c.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var r Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("response not JSON (%v): %q", err, raw)
	}
	return resp, r
}

func postSolve(t *testing.T, c *http.Client, url string, req *Request) (*http.Response, Response) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, c, url, string(data))
}

func TestSolveUnaryAllSolvers(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, solver := range []string{"", "scg", "exact", "greedy"} {
		resp, r := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem, Solver: solver})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solver %q: status %d (%s)", solver, resp.StatusCode, r.Error)
		}
		if !r.Final {
			t.Fatalf("solver %q: unary response not final", solver)
		}
		p, err := ucp.ReadProblem(strings.NewReader(tinyProblem))
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsCover(r.Solution) {
			t.Fatalf("solver %q: returned non-cover %v", solver, r.Solution)
		}
		if solver == "exact" && (r.Cost != 3 || !r.Optimal) {
			t.Fatalf("exact: cost %d optimal=%v, want 3/true", r.Cost, r.Optimal)
		}
	}
}

func TestMalformedRequestsRejected400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := map[string]string{
		"truncated json":    `{"problem":`,
		"unknown field":     `{"problem":"p 1 1\nr 0\n","wat":1}`,
		"trailing garbage":  `{"problem":"p 1 1\nr 0\n"} {}`,
		"unknown solver":    `{"problem":"p 1 1\nr 0\n","solver":"wat"}`,
		"unknown format":    `{"problem":"x","format":"dimacs"}`,
		"missing problem":   `{"solver":"scg"}`,
		"mixed payloads":    `{"problem":"p 1 1\nr 0\n","ncols":1}`,
		"negative timeout":  `{"problem":"p 1 1\nr 0\n","timeout_ms":-1}`,
		"bad problem text":  `{"problem":"p 1 1\nr 5\n"}`,
		"negative json dim": `{"format":"json","ncols":-2,"rows":[[0]]}`,
	}
	for name, body := range cases {
		resp, r := postRaw(t, ts.Client(), ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (error %q)", name, resp.StatusCode, r.Error)
		}
		if r.Error == "" {
			t.Errorf("%s: 400 without an error message", name)
		}
	}
}

func TestRequestBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxRequestBytes: 256})
	big := `{"problem":"p 1 1\nr 0\n` + strings.Repeat("# pad\\n", 200) + `"}`
	resp, _ := postRaw(t, ts.Client(), ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestInfeasibleInstance422(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, solver := range []string{"greedy", "scg", "exact"} {
		req := &Request{Format: "json", Rows: [][]int{{0}, {}}, NCols: 1, Solver: solver}
		resp, r := postSolve(t, ts.Client(), ts.URL, req)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (%s), want 422", solver, resp.StatusCode, r.Error)
		}
	}
}

// blockingInjector parks every solve until release is closed; started
// receives one token per solve that reached the worker.
func blockingInjector(started chan struct{}, release chan struct{}) *faultinject.Injector {
	return &faultinject.Injector{
		PreSolve: func(ctx context.Context) error {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
}

func TestOverloadRejects429WithRetryAfter(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 1,
		Fault:    blockingInjector(started, release),
	})

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
			codes <- resp.StatusCode
		}()
	}
	launch() // occupies the single worker
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no solve started")
	}
	launch() // fills the single queue slot
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := s.sched.depth(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Worker busy, queue full: the next request must bounce.
	rejected, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
	if rejected.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", rejected.StatusCode)
	}
	if ra := rejected.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if s.Stats().RejectedOverload == 0 {
		t.Fatal("rejection counter not incremented")
	}

	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d, want 200", code)
		}
	}
}

func TestInflightByteBudgetRejects429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxInflightBytes: 64})
	body := `{"problem":"p 1 1\nr 0\n # ` + strings.Repeat("x", 100) + `"}`
	resp, _ := postRaw(t, ts.Client(), ts.URL, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestQueueFullInjection(t *testing.T) {
	inj := &faultinject.Injector{QueueFull: func() bool { return true }}
	_, ts := newTestServer(t, Config{Workers: 1, Fault: inj})
	resp, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if inj.QueueFullTrips.Load() != 1 {
		t.Fatalf("QueueFullTrips = %d, want 1", inj.QueueFullTrips.Load())
	}
}

func TestPostSolveFaultFails500(t *testing.T) {
	inj := &faultinject.Injector{PostSolve: func() error { return context.DeadlineExceeded }}
	_, ts := newTestServer(t, Config{Workers: 1, Fault: inj})
	resp, r := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if r.Solution != nil {
		t.Fatal("failed solve must not leak a solution")
	}
	if inj.PostSolveCalls.Load() == 0 {
		t.Fatal("PostSolve hook never fired")
	}
}

// TestClientDisconnectCancelsSolve: cancelling the request context must
// reach the in-flight solve's budget context promptly.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	started := make(chan struct{}, 1)
	cancelled := make(chan time.Time, 1)
	inj := &faultinject.Injector{
		PreSolve: func(ctx context.Context) error {
			started <- struct{}{}
			<-ctx.Done()
			cancelled <- time.Now()
			return ctx.Err()
		},
	}
	_, ts := newTestServer(t, Config{Workers: 1, Fault: inj})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(&Request{Problem: tinyProblem})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	go ts.Client().Do(req) //nolint:errcheck // the error IS the point: context cancelled

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("solve never started")
	}
	t0 := time.Now()
	cancel()
	select {
	case at := <-cancelled:
		if d := at.Sub(t0); d > 2*time.Second {
			t.Fatalf("solve observed the disconnect after %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve never observed the client disconnect")
	}
}

// TestClientDisconnectWhileQueued: a job whose client left before a
// worker picked it up is dropped without burning a solve (exercised
// directly on the worker path, where the race is deterministic).
func TestClientDisconnectWhileQueued(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	p, err := ucp.ReadProblem(strings.NewReader(tinyProblem))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the worker arrives
	j := &job{req: &Request{Problem: tinyProblem}, prob: p, ctx: ctx, done: make(chan struct{})}
	s.runJob(j)
	if j.status != statusClientGone {
		t.Fatalf("status %d, want internal client-gone marker", j.status)
	}
	if j.res.Solution != nil {
		t.Fatal("abandoned job was still solved")
	}
	if got := s.Stats().ClientGone; got != 1 {
		t.Fatalf("ClientGone = %d, want 1", got)
	}
}

func TestTenantHeaderOverridesBody(t *testing.T) {
	s := New(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(&Request{Problem: tinyProblem, Tenant: "from-body"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
	req.Header.Set("X-UCP-Tenant", "from-header")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTimeoutHeaderValidated(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(&Request{Problem: tinyProblem})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", bytes.NewReader(body))
	req.Header.Set("X-UCP-Timeout-Ms", "not-a-number")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem, Solver: "exact"})
	postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem, Solver: "exact"})

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Accepted != 2 || st.Completed != 2 || st.Status2xx != 2 {
		t.Fatalf("stats accepted=%d completed=%d 2xx=%d, want 2/2/2", st.Accepted, st.Completed, st.Status2xx)
	}
	if s.Stats().Queued != 0 || s.Stats().InflightBytes != 0 {
		t.Fatalf("idle server reports backlog: %+v", s.Stats())
	}
}

// TestStatsZDDProfile: an scg solve on an instance too small for the
// dense shortcut runs the ZDD implicit phase, and /stats surfaces the
// engine profile — peak and live nodes, the plain-equivalent count and
// the chain-compression ratio.
func TestStatsZDDProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	if resp, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem, Solver: "scg"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ZDD.PeakNodes == 0 {
		t.Fatalf("zdd peak nodes not recorded: %+v", st.ZDD)
	}
	if st.ZDD.LiveNodes <= 0 || st.ZDD.PlainNodes < st.ZDD.LiveNodes {
		t.Fatalf("zdd live/plain profile inconsistent: %+v", st.ZDD)
	}
	if st.ZDD.ChainRatio < 1 {
		t.Fatalf("chain ratio %v below 1", st.ZDD.ChainRatio)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}
