package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// fullAdderPLA: 3 inputs (a, b, cin), outputs (sum, cout).  The known
// minimum two-level cover has 7 products.
const fullAdderPLA = `.i 3
.o 2
001 10
010 10
011 01
100 10
101 01
110 01
111 11
.e
`

func TestSolvePLAUnary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, solver := range []string{"", "scg", "exact"} {
		req := &Request{Format: "pla", Problem: fullAdderPLA, Solver: solver}
		resp, r := postSolve(t, ts.Client(), ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solver %q: status %d (%s)", solver, resp.StatusCode, r.Error)
		}
		if !r.Final {
			t.Fatalf("solver %q: unary response not final", solver)
		}
		if len(r.Cover) == 0 || r.Solution != nil {
			t.Fatalf("solver %q: cover=%v solution=%v; want products, no column solution",
				solver, r.Cover, r.Solution)
		}
		if len(r.Cover) != r.Cost {
			t.Fatalf("solver %q: %d cover lines for cost %d", solver, len(r.Cover), r.Cost)
		}
		if solver == "exact" && (r.Cost != 7 || !r.Optimal) {
			t.Fatalf("exact: cost %d optimal=%v, want 7/true", r.Cost, r.Optimal)
		}
	}
}

func TestSolvePLACoveringLimit422(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	wide := ".i 25\n.o 1\n" + strings.Repeat("-", 25) + " 1\n.e\n"
	req := &Request{Format: "pla", Problem: wide}
	resp, r := postSolve(t, ts.Client(), ts.URL, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", resp.StatusCode, r.Error)
	}
	if !strings.Contains(r.Error, "covering limit") {
		t.Fatalf("422 error %q does not name the covering limit", r.Error)
	}
	// The rejection happens at decode time: nothing was accepted.
	var st Stats
	resp2, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 0 || st.Status4xx != 1 {
		t.Fatalf("accepted=%d status4xx=%d, want 0/1", st.Accepted, st.Status4xx)
	}
}

func TestSolvePLAMalformed400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := map[string]*Request{
		"bad pla text":       {Format: "pla", Problem: ".i nope\n"},
		"greedy on pla":      {Format: "pla", Problem: fullAdderPLA, Solver: "greedy"},
		"structural payload": {Format: "pla", Problem: fullAdderPLA, NCols: 3},
	}
	for name, req := range cases {
		resp, r := postSolve(t, ts.Client(), ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, r.Error)
		}
	}
}

// TestSolvePLAWideDontCareBounded: a ~40-byte PLA whose single cube is
// all don't-cares over 18 inputs has a tiny care description but a
// 3^12-chunk dense-merge lattice (hundreds of MB).  The lattice memory
// bound must route it to consensus and answer the one-product optimum
// instead of ballooning the heap (the admission contract: overload
// degrades to rejections or fallbacks, never to an OOM kill).
func TestSolvePLAWideDontCareBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	wide := ".i 18\n.o 1\n" + strings.Repeat("-", 18) + " 1\n.e\n"
	req := &Request{Format: "pla", Problem: wide}
	resp, r := postSolve(t, ts.Client(), ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200", resp.StatusCode, r.Error)
	}
	if r.Cost != 1 || len(r.Cover) != 1 {
		t.Fatalf("cost %d cover %v, want the single all-DC product", r.Cost, r.Cover)
	}
}
