package serve

import (
	"errors"
	"testing"
)

func mkjob(tenant string, bytes int64) *job {
	return &job{tenant: tenant, bytes: bytes, done: make(chan struct{})}
}

// TestSchedulerFairShare: a tenant's backlog must not starve other
// tenants — dequeue order interleaves round-robin.
func TestSchedulerFairShare(t *testing.T) {
	s := newScheduler(16, 1<<20)
	a1, a2, a3 := mkjob("a", 1), mkjob("a", 1), mkjob("a", 1)
	b1 := mkjob("b", 1)
	c1 := mkjob("c", 1)
	for _, j := range []*job{a1, a2, a3, b1, c1} {
		if err := s.enqueue(j); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	want := []*job{a1, b1, c1, a2, a3}
	for i, w := range want {
		j, ok := s.dequeue()
		if !ok {
			t.Fatalf("dequeue %d: queue unexpectedly drained", i)
		}
		if j != w {
			t.Fatalf("dequeue %d: tenant %q, want %q", i, j.tenant, w.tenant)
		}
	}
}

// TestSchedulerReenqueueKeepsFairness: a tenant that empties and comes
// back re-enters the ring.
func TestSchedulerReenqueueKeepsFairness(t *testing.T) {
	s := newScheduler(16, 1<<20)
	a1 := mkjob("a", 1)
	if err := s.enqueue(a1); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.dequeue(); j != a1 {
		t.Fatal("expected a1")
	}
	a2, b1 := mkjob("a", 1), mkjob("b", 1)
	if err := s.enqueue(a2); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(b1); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.dequeue(); j != a2 {
		t.Fatal("expected a2")
	}
	if j, _ := s.dequeue(); j != b1 {
		t.Fatal("expected b1")
	}
}

// TestSchedulerBounds: both admission bounds reject with ErrOverloaded.
func TestSchedulerBounds(t *testing.T) {
	s := newScheduler(2, 100)
	if err := s.enqueue(mkjob("a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(mkjob("a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(mkjob("a", 10)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue bound: %v, want ErrOverloaded", err)
	}

	s2 := newScheduler(10, 100)
	if err := s2.enqueue(mkjob("a", 90)); err != nil {
		t.Fatal(err)
	}
	if err := s2.enqueue(mkjob("b", 20)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("byte bound: %v, want ErrOverloaded", err)
	}
	// The bytes stay charged until released, even after dequeue.
	if _, ok := s2.dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	if err := s2.enqueue(mkjob("b", 20)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("byte bound after dequeue: %v, want ErrOverloaded", err)
	}
	s2.release(90)
	if err := s2.enqueue(mkjob("b", 20)); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestSchedulerDrain: drain flushes the backlog, rejects new work and
// releases the workers.
func TestSchedulerDrain(t *testing.T) {
	s := newScheduler(16, 1<<20)
	j1, j2 := mkjob("a", 1), mkjob("b", 1)
	if err := s.enqueue(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(j2); err != nil {
		t.Fatal(err)
	}
	flushed := s.drain()
	if len(flushed) != 2 {
		t.Fatalf("drain flushed %d jobs, want 2", len(flushed))
	}
	if err := s.enqueue(mkjob("c", 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("enqueue while draining: %v, want ErrDraining", err)
	}
	if _, ok := s.dequeue(); ok {
		t.Fatal("dequeue after drain must report shutdown")
	}
	if again := s.drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d jobs", len(again))
	}
	q, _ := s.depth()
	if q != 0 {
		t.Fatalf("queue depth %d after drain", q)
	}
}
