package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"ucp"
	"ucp/internal/benchmarks"
)

func readSSE(t *testing.T, body io.Reader) []Response {
	t.Helper()
	var recs []Response
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		const prefix = "data: "
		if len(line) < len(prefix) || line[:len(prefix)] != prefix {
			continue
		}
		var r Response
		if err := json.Unmarshal([]byte(line[len(prefix):]), &r); err != nil {
			t.Fatalf("bad SSE record %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return recs
}

func streamRequest(t *testing.T, ts string, c *http.Client, req *Request) (*http.Response, []Response) {
	t.Helper()
	req.Stream = true
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts+"/solve", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.Do(hreq)
	if err != nil {
		t.Fatalf("POST /solve (stream): %v", err)
	}
	defer resp.Body.Close()
	return resp, readSSE(t, resp.Body)
}

// checkStream verifies the universal stream contract: at least one
// record, exactly one Final (the last), every carried cover feasible,
// and the final at least as good as every streamed incumbent.
func checkStream(t *testing.T, p *ucp.Problem, recs []Response) Response {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("empty stream")
	}
	final := recs[len(recs)-1]
	if !final.Final {
		t.Fatalf("stream did not end with a final record: %+v", final)
	}
	for i, r := range recs[:len(recs)-1] {
		if r.Final {
			t.Fatalf("record %d of %d marked final", i, len(recs))
		}
	}
	for i, r := range recs {
		if r.Solution == nil {
			if r.Final && r.Error == "" {
				t.Fatalf("final record has neither cover nor error: %+v", r)
			}
			continue
		}
		if !p.IsCover(r.Solution) {
			t.Fatalf("record %d: streamed solution is not a cover", i)
		}
		if got := p.CostOf(r.Solution); got != r.Cost {
			t.Fatalf("record %d: reported cost %d, actual %d", i, r.Cost, got)
		}
		if !r.Final && final.Solution != nil && final.Cost > r.Cost {
			t.Fatalf("final cost %d worse than streamed incumbent %d", final.Cost, r.Cost)
		}
	}
	return final
}

func streamProblem(t *testing.T, seed int64, nr, nc, deg int) (*ucp.Problem, *Request) {
	t.Helper()
	p := benchmarks.CyclicCovering(seed, nr, nc, deg)
	if p == nil {
		t.Fatal("generator returned nil")
	}
	return p, &Request{Format: "json", Rows: p.Rows, NCols: p.NCol, Costs: p.Cost}
}

func TestStreamEndsWithVerifiedFinal(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	p, req := streamProblem(t, 9, 150, 100, 4)
	req.NumIter = 6
	req.Seed = 3
	resp, recs := streamRequest(t, ts.URL, ts.Client(), req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	final := checkStream(t, p, recs)
	if final.Solution == nil {
		t.Fatalf("no cover on the final record: %+v", final)
	}
	if final.LB > float64(final.Cost)+1e-9 {
		t.Fatalf("final LB %g exceeds cost %d", final.LB, final.Cost)
	}
}

// TestStreamBudgetExpiredStillFinalFeasible: the acceptance property —
// even when the budget expires mid-solve, the stream terminates with a
// final record whose cover verifies feasible.
func TestStreamBudgetExpiredStillFinalFeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	p, req := streamProblem(t, 5, 400, 300, 5)
	req.NumIter = 8
	req.TimeoutMS = 1 // expires essentially immediately
	resp, recs := streamRequest(t, ts.URL, ts.Client(), req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	final := checkStream(t, p, recs)
	if final.Solution == nil {
		t.Fatalf("budget-expired stream must still carry a feasible cover: %+v", final)
	}
	if !p.IsCover(final.Solution) {
		t.Fatal("final cover infeasible")
	}
}

// TestStreamCacheHit: a repeated instance is answered from the shared
// cache — still a well-formed stream with a feasible final record.
func TestStreamCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	p, req := streamProblem(t, 13, 200, 140, 4)
	req.NumIter = 4
	req.Seed = 7
	_, first := streamRequest(t, ts.URL, ts.Client(), req)
	checkStream(t, p, first)
	_, second := streamRequest(t, ts.URL, ts.Client(), req)
	final := checkStream(t, p, second)
	if final.Solution == nil {
		t.Fatal("cached stream lost its cover")
	}
	if f1 := first[len(first)-1]; f1.Cost != final.Cost {
		t.Fatalf("cache changed the answer: %d vs %d", f1.Cost, final.Cost)
	}
}

// TestAcceptHeaderMediaRanges: standard clients send compound Accept
// headers ("text/event-stream, */*", parameters, mixed case); any
// member naming text/event-stream selects streaming.
func TestAcceptHeaderMediaRanges(t *testing.T) {
	cases := map[string]bool{
		"text/event-stream":                   true,
		"text/event-stream, */*":              true,
		"application/json, text/event-stream": true,
		"text/event-stream;q=0.9, text/plain": true,
		"Text/Event-Stream":                   true,
		"":                                    false,
		"application/json":                    false,
		"text/event-stream-extended":          false,
	}
	for h, want := range cases {
		if got := acceptsEventStream(h); got != want {
			t.Errorf("acceptsEventStream(%q) = %v, want %v", h, got, want)
		}
	}

	// End to end: a compound Accept header (no Stream field) gets SSE.
	_, ts := newTestServer(t, Config{Workers: 2})
	p, req := streamProblem(t, 17, 120, 80, 4)
	req.NumIter = 4
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/solve", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Accept", "text/event-stream, */*")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	checkStream(t, p, readSSE(t, resp.Body))
}
