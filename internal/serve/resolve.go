package serve

import (
	"container/list"
	"net/http"
	"strconv"
	"sync"

	"ucp"
)

// The keep/parent protocol: a request with `keep` retains the solve's
// state server-side and answers with a `solve_id`; a follow-up request
// naming that id as `parent` is solved incrementally — the server
// reconstructs the edit between the two instances and replays the
// retained reductions and portfolio blocks instead of starting over.
// An expired or unknown id degrades to a from-scratch solve (counted
// in /stats), never an error: the id is a performance hint, not state
// the client may rely on.

// maxKeptStates bounds the retained-state table.  Retained states hold
// the parent's reduced core and per-block multiplier snapshots, so the
// table is deliberately small — an LRU of the most recent chains, not
// a durable store.
const maxKeptStates = 64

// keepStore is the id → retained-state LRU behind the keep/parent
// protocol.  Ids are generated server-side ("s1", "s2", ...) and never
// reused within a process.
type keepStore struct {
	mu   sync.Mutex
	ll   *list.List // front = most recently used
	m    map[string]*list.Element
	next int64
}

type keepEntry struct {
	id    string
	state *ucp.Resolvable
}

func newKeepStore() *keepStore {
	return &keepStore{ll: list.New(), m: make(map[string]*list.Element)}
}

// get looks an id up, refreshing its recency on a hit.
func (k *keepStore) get(id string) (*ucp.Resolvable, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	el, ok := k.m[id]
	if !ok {
		return nil, false
	}
	k.ll.MoveToFront(el)
	return el.Value.(*keepEntry).state, true
}

// put stores a state under a fresh id and returns the id.
func (k *keepStore) put(r *ucp.Resolvable) string {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.next++
	id := "s" + strconv.FormatInt(k.next, 10)
	k.m[id] = k.ll.PushFront(&keepEntry{id: id, state: r})
	for k.ll.Len() > maxKeptStates {
		old := k.ll.Back()
		k.ll.Remove(old)
		delete(k.m, old.Value.(*keepEntry).id)
	}
	return id
}

func (k *keepStore) len() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ll.Len()
}

// ResolveStats is the /stats `resolve` object: how the incremental
// re-solve path is doing.  The solver-level counters (resolves,
// hits, block reuse) come from the shared ucp.Solver; kept and
// unknown_parents are the service's own keep-protocol counters.
type ResolveStats struct {
	Resolves    int64 `json:"resolves"`     // incremental solves attempted
	ParentHits  int64 `json:"parent_hits"`  // served against a named parent id
	ArenaHits   int64 `json:"arena_hits"`   // parent recovered from the ancestor arena
	ArenaMisses int64 `json:"arena_misses"` // no usable ancestor found
	Fallbacks   int64 `json:"fallbacks"`    // parent unusable (options/problem drift)
	CompsReused int64 `json:"comps_reused"` // portfolio blocks carried over verbatim
	CompsSolved int64 `json:"comps_solved"` // portfolio blocks re-solved
	// ReplayFraction is comps_reused / (comps_reused + comps_solved):
	// the share of cyclic-core work the delta path avoided.
	ReplayFraction float64 `json:"replay_fraction"`
	Kept           int     `json:"kept"`            // retained states resident
	UnknownParents int64   `json:"unknown_parents"` // parent ids not found (expired or bogus)
}

func (s *Server) resolveStats() ResolveStats {
	rs := s.solver.ResolveStats()
	out := ResolveStats{
		Resolves:       rs.Resolves,
		ParentHits:     rs.ParentHits,
		ArenaHits:      rs.ArenaHits,
		ArenaMisses:    rs.ArenaMisses,
		Fallbacks:      rs.Fallbacks,
		CompsReused:    rs.CompsReused,
		CompsSolved:    rs.CompsSolved,
		Kept:           s.keeps.len(),
		UnknownParents: s.unknownParents.Load(),
	}
	if n := rs.CompsReused + rs.CompsSolved; n > 0 {
		out.ReplayFraction = float64(rs.CompsReused) / float64(n)
	}
	return out
}

// solveSCGKeep handles the keep/parent variants of an scg solve: the
// state is retained and its id returned; with a parent named, the
// solve replays that parent's state incrementally.  These solves pin
// the explicit reduction pipeline and bypass the cross-solve cache
// (the retained state, not the memoized result, is the product), and
// they emit no streamed incumbents — the final record is unaffected.
func (s *Server) solveSCGKeep(j *job, bud ucp.Budget) (Response, int) {
	bud.IterCap = j.req.IterCap
	opt := ucp.SCGOptions{
		Seed:    j.req.Seed,
		NumIter: j.req.NumIter,
		Budget:  bud,
	}
	var res *ucp.SCGResult
	var keep *ucp.Resolvable
	if j.req.Parent != "" {
		if parent, ok := s.keeps.get(j.req.Parent); ok {
			d := ucp.DeltaBetween(parent.Problem(), j.prob)
			res, keep = s.solver.Resolve(d, parent, opt, ucp.ResolveOptions{})
		} else {
			s.unknownParents.Add(1)
		}
	}
	if res == nil {
		res, keep = s.solver.SolveSCGKeep(j.prob, opt)
	}
	if res.Solution == nil {
		if res.Interrupted {
			err := res.StopReason.Err()
			return Response{Error: err.Error(), Interrupted: true, StopReason: res.StopReason.String()},
				http.StatusGatewayTimeout
		}
		return Response{Error: ucp.ErrInfeasible.Error()}, http.StatusUnprocessableEntity
	}
	return Response{
		Cost:        res.Cost,
		LB:          res.LB,
		Solution:    res.Solution,
		Optimal:     res.ProvedOptimal,
		Interrupted: res.Interrupted,
		StopReason:  stopString(res.Interrupted, res.StopReason),
		SolveID:     s.keeps.put(keep),
	}, http.StatusOK
}
