// Package faultinject wires controllable failures into the serve
// package so its robustness claims are testable instead of asserted:
// slow and failing solves, queue-full admission, and post-solve
// (cache/translation layer) corruption all become injectable.  A
// production server runs with a nil *Injector — every hook has a
// nil-receiver fast path and costs one pointer test.
package faultinject

import (
	"context"
	"sync/atomic"
)

// Injector is a set of optional fault hooks.  Fields are read once at
// server construction; the functions themselves must be safe for
// concurrent use (they run on every worker).
type Injector struct {
	// PreSolve runs on a worker immediately before the solve, under
	// the request's fully derived budget context (deadline applied,
	// client disconnect propagated).  Returning a non-nil error fails
	// the request as an internal error; blocking inside simulates a
	// slow solve — return ctx.Err() on cancellation to model a
	// cancellation-aware solver.
	PreSolve func(ctx context.Context) error

	// QueueFull, when it returns true, forces admission control to
	// report an exhausted queue for this request (429/Retry-After),
	// regardless of actual occupancy.
	QueueFull func() bool

	// PostSolve runs after a successful solve, before the response is
	// handed back.  A non-nil error discards the result and fails the
	// request as an internal error (modelling a corrupted cache entry
	// or translation failure that verification caught).
	PostSolve func() error

	// Counters, incremented by the server at each hook site; tests
	// assert against them.
	PreSolveCalls  atomic.Int64
	QueueFullTrips atomic.Int64
	PostSolveCalls atomic.Int64
}

// FireQueueFull reports whether admission must pretend the queue is
// full.
func (i *Injector) FireQueueFull() bool {
	if i == nil || i.QueueFull == nil {
		return false
	}
	if i.QueueFull() {
		i.QueueFullTrips.Add(1)
		return true
	}
	return false
}

// FirePreSolve runs the pre-solve hook.
func (i *Injector) FirePreSolve(ctx context.Context) error {
	if i == nil || i.PreSolve == nil {
		return nil
	}
	i.PreSolveCalls.Add(1)
	return i.PreSolve(ctx)
}

// FirePostSolve runs the post-solve hook.
func (i *Injector) FirePostSolve() error {
	if i == nil || i.PostSolve == nil {
		return nil
	}
	i.PostSolveCalls.Add(1)
	return i.PostSolve()
}
