package serve

import (
	"errors"
	"testing"

	"ucp"
)

// FuzzServeRequest fuzzes the wire decoder end to end: any byte string
// must either decode into a validated request whose problem builds, or
// fail with an error wrapping ucp.ErrMalformedInput — never panic,
// never mislabel.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"problem":"p 3 3\nc 2 1 3\nr 0 1\nr 1 2\nr 0 2\n"}`,
		`{"problem":"p 1 1\nr 0\n","solver":"exact","maxnodes":10,"timeout_ms":50}`,
		`{"problem":"p 1 1\nr 0\n","solver":"scg","numiter":2,"stream":true,"tenant":"t"}`,
		`{"format":"json","rows":[[0,1],[1,2]],"ncols":3,"costs":[1,1,1]}`,
		`{"format":"orlib","problem":"2 2\n1 1\n1 1\n1 2\n1 1\n"}`,
		`{"format":"json","rows":[[0],[]],"ncols":1}`,
		`{"problem":"p 1 1\nr 5\n"}`,
		`{`,
		`null`,
		`[]`,
		`{"problem":"p 1 1\nr 0\n"} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input; the handler's byte cap rejects these")
		}
		req, err := DecodeRequest(data)
		if err != nil {
			if !errors.Is(err, ucp.ErrMalformedInput) {
				t.Fatalf("decode error does not wrap ErrMalformedInput: %v", err)
			}
			if req != nil {
				t.Fatal("non-nil request alongside an error")
			}
			return
		}
		p, err := req.BuildProblem()
		if err != nil {
			if !errors.Is(err, ucp.ErrMalformedInput) {
				t.Fatalf("build error does not wrap ErrMalformedInput: %v", err)
			}
			return
		}
		if p == nil {
			t.Fatal("nil problem without an error")
		}
	})
}
