package serve

import (
	"encoding/json"
	"net/http"
)

// Anytime streaming.  A streaming solve pushes every improving
// incumbent to the client as an SSE record and always terminates with
// exactly one Final=true record carrying the authoritative (verified)
// result — including when the budget expired mid-solve, in which case
// the final record is the best feasible cover found plus the stop
// reason.

// conflateSend delivers ev on a capacity-1 channel, replacing any
// undelivered predecessor.  A slow client therefore sees the newest
// incumbent, never a backlog, and the solver never blocks on the
// network.
func conflateSend(ch chan Response, ev Response) {
	for {
		select {
		case ch <- ev:
			return
		default:
		}
		select {
		case <-ch: // discard the stale undelivered incumbent
		default:
		}
	}
}

// streamResponse writes the SSE event stream for an admitted job.
func (s *Server) streamResponse(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		// No streaming transport: degrade to unary on the same job.
		select {
		case <-j.done:
			s.writeJobResult(w, j)
		case <-r.Context().Done():
		}
		return
	}
	s.streamed.Add(1)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	// The status line is committed before the solve finishes, so a
	// failing solve reports through the final record's error field.
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev := <-j.events:
			if !writeSSE(w, fl, &ev) {
				return
			}
		case <-j.done:
			if j.status == statusClientGone {
				return
			}
			s.countStatus(j.status)
			// Any conflated leftover incumbent is superseded by the
			// final record, which is at least as good; skip it.
			final := j.res
			final.Final = true
			writeSSE(w, fl, &final)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one `data:` record; false means the client is gone.
func writeSSE(w http.ResponseWriter, fl http.Flusher, v *Response) bool {
	payload, err := json.Marshal(v)
	if err != nil {
		return false
	}
	if _, err := w.Write([]byte("data: ")); err != nil {
		return false
	}
	if _, err := w.Write(payload); err != nil {
		return false
	}
	if _, err := w.Write([]byte("\n\n")); err != nil {
		return false
	}
	fl.Flush()
	return true
}
