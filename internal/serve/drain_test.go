package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ucp/internal/serve/faultinject"
)

// TestShutdownDrains: draining finishes in-flight work, flushes the
// backlog with 503 and refuses new admissions with 503.
func TestShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, MaxQueue: 8, Fault: blockingInjector(started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code       int
		retryAfter string
		res        Response
	}
	results := make(chan outcome, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, r := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), r}
		}()
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("no solve started")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := s.sched.depth(); q == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backlog never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Draining is observable: health flips and new work bounces.
	for {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection without Retry-After")
	}

	close(release) // let the in-flight solve finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(results)

	var ok200, drained503 int
	for o := range results {
		switch o.code {
		case http.StatusOK:
			ok200++
			if o.res.Solution == nil {
				t.Fatal("drained in-flight solve returned no cover")
			}
		case http.StatusServiceUnavailable:
			drained503++
			if !strings.Contains(o.res.Error, "draining") {
				t.Fatalf("flushed job error %q", o.res.Error)
			}
			if o.retryAfter == "" {
				t.Fatal("flushed 503 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", o.code)
		}
	}
	if ok200 != 1 || drained503 != 2 {
		t.Fatalf("got %d×200 and %d×503, want 1 and 2", ok200, drained503)
	}
}

// TestShutdownDeadlineCancelsInflight: past the drain deadline the
// in-flight budget is cancelled and the solve unwinds with a feasible
// interrupted answer — the client still gets a 200.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	started := make(chan struct{}, 1)
	inj := &faultinject.Injector{
		PreSolve: func(ctx context.Context) error {
			started <- struct{}{}
			<-ctx.Done() // hold the worker until the drain deadline forces cancellation
			return nil
		},
	}
	s := New(Config{Workers: 1, Fault: inj})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code int
		res  Response
	}
	done := make(chan outcome, 1)
	go func() {
		resp, r := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
		done <- outcome{resp.StatusCode, r}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("solve never started")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("forced drain took %v", d)
	}
	select {
	case o := <-done:
		if o.code != http.StatusOK {
			t.Fatalf("force-cancelled solve answered %d (%s), want 200", o.code, o.res.Error)
		}
		if o.res.Solution == nil {
			t.Fatal("force-cancelled solve returned no cover")
		}
		if !o.res.Interrupted {
			t.Fatal("force-cancelled solve not marked interrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client never got an answer after forced drain")
	}
}

// TestNoGoroutineLeak: a full service lifecycle — solves, overload
// rejections, drain — must return the process to its goroutine
// baseline.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 2, MaxQueue: 1, Fault: blockingInjector(started, release)})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
		}()
	}
	// Occupy the workers one at a time: launching while a request sits
	// queued would race admission control (MaxQueue is 1).
	launch()
	<-started
	launch()
	<-started
	launch()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if q, _ := s.sched.depth(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backlog never formed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 4; i++ { // bounced by admission control
		resp, _ := postSolve(t, ts.Client(), ts.URL, &Request{Problem: tinyProblem})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated server answered %d", resp.StatusCode)
		}
	}
	close(release)
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()
	ts.Client().CloseIdleConnections()

	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
}
