package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ucp"
)

// biggerProblem is tinyProblem plus a redundant superset row — close
// enough for the delta path to reuse the parent state wholesale.
const biggerProblem = "p 4 3\nc 2 1 3\nr 0 1\nr 1 2\nr 0 2\nr 0 1 2\n"

// TestKeepParentChain: a keep solve returns a solve_id; a follow-up
// naming it as parent re-solves incrementally with the same answer a
// cold solve gives, and /stats reports the resolve counters.
func TestKeepParentChain(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := ts.Client()

	resp, r := postSolve(t, c, ts.URL, &Request{Problem: tinyProblem, Keep: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keep solve: status %d (%s)", resp.StatusCode, r.Error)
	}
	if r.SolveID == "" {
		t.Fatal("keep solve returned no solve_id")
	}

	resp2, r2 := postSolve(t, c, ts.URL, &Request{Problem: biggerProblem, Parent: r.SolveID})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("parent solve: status %d (%s)", resp2.StatusCode, r2.Error)
	}
	if r2.SolveID == "" {
		t.Fatal("parent solve returned no solve_id (keep is implied)")
	}
	// The incremental answer must match the from-scratch one.
	respCold, cold := postSolve(t, c, ts.URL, &Request{Problem: biggerProblem})
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d", respCold.StatusCode)
	}
	if r2.Cost != cold.Cost || r2.LB != cold.LB {
		t.Fatalf("incremental (cost %d, LB %v) != cold (cost %d, LB %v)",
			r2.Cost, r2.LB, cold.Cost, cold.LB)
	}
	p, err := ucp.ReadProblem(strings.NewReader(biggerProblem))
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsCover(r2.Solution) {
		t.Fatalf("incremental solve returned non-cover %v", r2.Solution)
	}

	// An unknown parent id degrades to a from-scratch solve, not an
	// error.
	resp3, r3 := postSolve(t, c, ts.URL, &Request{Problem: biggerProblem, Parent: "s999"})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("unknown parent: status %d (%s)", resp3.StatusCode, r3.Error)
	}
	if r3.Cost != cold.Cost {
		t.Fatalf("unknown-parent solve cost %d, want %d", r3.Cost, cold.Cost)
	}

	// /stats surfaces the resolve object and the cache counters with
	// their wire names.
	sr, err := c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	raw, err := io.ReadAll(sr.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Cache struct {
			Hits   *int64 `json:"hits"`
			Dedups *int64 `json:"dedups"`
		} `json:"cache"`
		Resolve ResolveStats `json:"resolve"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.Cache.Hits == nil || st.Cache.Dedups == nil {
		t.Fatalf("cache counters missing their wire names: %s", raw)
	}
	if st.Resolve.Resolves != 1 || st.Resolve.ParentHits != 1 {
		t.Fatalf("resolve counters wrong: %+v", st.Resolve)
	}
	if st.Resolve.UnknownParents != 1 {
		t.Fatalf("unknown_parents = %d, want 1", st.Resolve.UnknownParents)
	}
	if st.Resolve.Kept != 3 {
		t.Fatalf("kept = %d, want 3", st.Resolve.Kept)
	}
	if st.Resolve.CompsReused > 0 && st.Resolve.ReplayFraction == 0 {
		t.Fatalf("replay_fraction missing: %+v", st.Resolve)
	}
}

// TestKeepValidation: keep/parent are rejected for incompatible
// solvers and formats at decode time.
func TestKeepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := map[string]string{
		"keep with exact":  `{"problem":"p 1 1\nr 0\n","solver":"exact","keep":true}`,
		"parent with pla":  `{"problem":".i 1\n.o 1\n1 1\n.e\n","format":"pla","parent":"s1"}`,
		"keep with greedy": `{"problem":"p 1 1\nr 0\n","solver":"greedy","keep":true}`,
	}
	for name, body := range cases {
		resp, r := postRaw(t, ts.Client(), ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (error %q)", name, resp.StatusCode, r.Error)
		}
	}
}

// TestKeepStoreLRU: the keep store is bounded and expires the oldest
// ids first.
func TestKeepStoreLRU(t *testing.T) {
	ks := newKeepStore()
	var first string
	for i := 0; i <= maxKeptStates; i++ {
		id := ks.put(nil)
		if i == 0 {
			first = id
		}
	}
	if ks.len() != maxKeptStates {
		t.Fatalf("len = %d, want %d", ks.len(), maxKeptStates)
	}
	if _, ok := ks.get(first); ok {
		t.Fatalf("oldest id %s should have been evicted", first)
	}
}
