// Package serve implements ucpd, the solve service: an HTTP+JSON
// front end over the ucp solvers with a bounded admission-controlled
// queue, per-tenant fair-share scheduling, per-request budget
// derivation (client deadline headers clamped by server policy, client
// disconnects cancelling the solve), one shared cross-solve cache
// collapsing identical concurrent requests, anytime SSE streaming of
// improving incumbents, and a draining shutdown.  Failure behaviour is
// testable through the injectable hooks in serve/faultinject.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucp"
	"ucp/internal/budget"
	"ucp/internal/serve/faultinject"
)

// Config sizes the service.  The zero value of any field selects the
// default noted on it.
type Config struct {
	// MaxQueue bounds the admitted-but-unstarted request count;
	// default 256.  Past it, admission answers 429 with Retry-After.
	MaxQueue int
	// MaxInflightBytes bounds the summed body bytes of every admitted,
	// unfinished request — the memory the service has agreed to hold —
	// default 64 MiB.
	MaxInflightBytes int64
	// MaxRequestBytes bounds one request body; default 8 MiB.
	MaxRequestBytes int64
	// Workers is the solve concurrency; default GOMAXPROCS.
	Workers int
	// DefaultTimeout applies when a request names none; default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request's budget; default 2m.  Zero
	// keeps the default — use NoTimeoutCap for genuinely unlimited.
	MaxTimeout time.Duration
	// RetryAfter is advertised on 429/503 rejections; default 1s.
	RetryAfter time.Duration
	// CacheSize is the shared cross-solve cache capacity in entries;
	// default ucp.DefaultCacheSize.  Negative disables the cache.
	CacheSize int
	// MemBudget, when positive, routes SCG covering solves (plain and
	// PLA) through the out-of-core sharded driver with this many bytes
	// of tracked instance memory per solve.  Sharded solves bypass the
	// cross-solve cache; the incremental (keep) path stays direct.
	// Default 0: direct in-memory solves.
	MemBudget int64
	// SpillDir is where sharded solves keep their spill files (empty:
	// the OS temp directory).
	SpillDir string
	// Fault, when non-nil, wires the failure-injection hooks in; nil
	// in production.
	Fault *faultinject.Injector
}

// NoTimeoutCap as Config.MaxTimeout disables the budget clamp.
const NoTimeoutCap = time.Duration(-1)

func (c *Config) fill() {
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.MaxInflightBytes == 0 {
		c.MaxInflightBytes = 64 << 20
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	} else if c.MaxTimeout == NoTimeoutCap {
		c.MaxTimeout = 0
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = ucp.DefaultCacheSize
	}
}

// Stats is the /stats snapshot.
type Stats struct {
	Accepted         int64 `json:"accepted"`
	Completed        int64 `json:"completed"`
	Streamed         int64 `json:"streamed"`
	RejectedOverload int64 `json:"rejected_overload"` // 429s
	RejectedDraining int64 `json:"rejected_draining"` // 503s (admission + flushed queue)
	ClientGone       int64 `json:"client_gone"`
	Status2xx        int64 `json:"status_2xx"`
	Status4xx        int64 `json:"status_4xx"`
	Status5xx        int64 `json:"status_5xx"`

	Queued        int   `json:"queued"`
	InflightBytes int64 `json:"inflight_bytes"`
	Draining      bool  `json:"draining"`

	Cache   ucp.CacheStats `json:"cache"`
	Resolve ResolveStats   `json:"resolve"`
	ZDD     ZDDStats       `json:"zdd"`
	Shard   ShardStats     `json:"shard"`
}

// ZDDStats aggregates the implicit-phase engine profile across every
// solve that ran the ZDD (solves claimed by the dense shortcut or the
// cache contribute nothing): the largest node store any single solve
// grew, total live and plain-equivalent nodes of the surviving
// families, the chain-compression ratio of those totals, and the
// mark-sweep collections run.
type ZDDStats struct {
	PeakNodes   int64   `json:"peak_nodes"`
	LiveNodes   int64   `json:"live_nodes"`
	PlainNodes  int64   `json:"plain_nodes"`
	ChainRatio  float64 `json:"chain_ratio"`
	Collections int64   `json:"collections"`
}

// ShardStats aggregates the out-of-core driver's counters across every
// sharded solve (all zero while Config.MemBudget is unset): components
// partitioned, components spilled to disk before solving, components
// evicted-and-reloaded under memory pressure, components degraded to
// greedy completion by their deadline, and the largest tracked byte
// high-water any single solve reached.
type ShardStats struct {
	Components int64 `json:"components"`
	Spilled    int64 `json:"spilled"`
	Respilled  int64 `json:"respilled"`
	Degraded   int64 `json:"degraded"`
	PeakBytes  int64 `json:"peak_bytes"`
}

// statusClientGone marks a job whose client disconnected; nothing is
// ever written for it, so the value never reaches the wire.
const statusClientGone = 499

// Server is the solve service.  Construct with New, mount Handler on
// an http.Server, stop with Shutdown.
type Server struct {
	cfg    Config
	solver *ucp.Solver
	cache  *ucp.Cache
	sched  *scheduler
	fault  *faultinject.Injector
	mux    *http.ServeMux
	keeps  *keepStore

	wg sync.WaitGroup // worker goroutines

	// In-flight budget cancellation for the drain deadline.
	cancelMu    sync.Mutex
	cancels     map[*job]context.CancelFunc
	forceCancel bool

	draining atomic.Bool

	accepted, completed, streamed   atomic.Int64
	rejOverload, rejDraining, gone  atomic.Int64
	status2xx, status4xx, status5xx atomic.Int64

	zddPeak                         atomic.Int64 // max over solves
	zddLive, zddPlain, zddCollected atomic.Int64 // sums over solves

	shardComps, shardSpilled      atomic.Int64 // sums over sharded solves
	shardRespilled, shardDegraded atomic.Int64
	shardPeak                     atomic.Int64 // max over sharded solves

	unknownParents atomic.Int64 // parent ids that missed the keep store
}

// recordZDD folds one solve's implicit-phase profile into the /stats
// aggregates; solves that never ran the ZDD engine report peak 0 and
// are skipped.
func (s *Server) recordZDD(peak, live, plain, collections int) {
	if peak == 0 {
		return
	}
	for {
		old := s.zddPeak.Load()
		if int64(peak) <= old || s.zddPeak.CompareAndSwap(old, int64(peak)) {
			break
		}
	}
	s.zddLive.Add(int64(live))
	s.zddPlain.Add(int64(plain))
	s.zddCollected.Add(int64(collections))
}

// recordShard folds one sharded solve's scheduling profile into the
// /stats aggregates; direct solves report zero components and are
// skipped.
func (s *Server) recordShard(components, spilled, respilled, degraded int, peak int64) {
	if components == 0 {
		return
	}
	s.shardComps.Add(int64(components))
	s.shardSpilled.Add(int64(spilled))
	s.shardRespilled.Add(int64(respilled))
	s.shardDegraded.Add(int64(degraded))
	for {
		old := s.shardPeak.Load()
		if peak <= old || s.shardPeak.CompareAndSwap(old, peak) {
			break
		}
	}
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		cache:   ucp.NewCache(cfg.CacheSize, ucp.DefaultCacheMinWork),
		sched:   newScheduler(cfg.MaxQueue, cfg.MaxInflightBytes),
		fault:   cfg.Fault,
		cancels: make(map[*job]context.CancelFunc),
		keeps:   newKeepStore(),
	}
	s.solver = ucp.NewSolver(ucp.SolverOptions{Cache: s.cache})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	q, b := s.sched.depth()
	return Stats{
		Accepted:         s.accepted.Load(),
		Completed:        s.completed.Load(),
		Streamed:         s.streamed.Load(),
		RejectedOverload: s.rejOverload.Load(),
		RejectedDraining: s.rejDraining.Load(),
		ClientGone:       s.gone.Load(),
		Status2xx:        s.status2xx.Load(),
		Status4xx:        s.status4xx.Load(),
		Status5xx:        s.status5xx.Load(),
		Queued:           q,
		InflightBytes:    b,
		Draining:         s.draining.Load(),
		Cache:            s.solver.CacheStats(),
		Resolve:          s.resolveStats(),
		ZDD: ZDDStats{
			PeakNodes:   s.zddPeak.Load(),
			LiveNodes:   s.zddLive.Load(),
			PlainNodes:  s.zddPlain.Load(),
			ChainRatio:  chainRatio(s.zddLive.Load(), s.zddPlain.Load()),
			Collections: s.zddCollected.Load(),
		},
		Shard: ShardStats{
			Components: s.shardComps.Load(),
			Spilled:    s.shardSpilled.Load(),
			Respilled:  s.shardRespilled.Load(),
			Degraded:   s.shardDegraded.Load(),
			PeakBytes:  s.shardPeak.Load(),
		},
	}
}

func chainRatio(live, plain int64) float64 {
	if live <= 0 {
		return 0
	}
	return float64(plain) / float64(live)
}

// Shutdown drains the service: admission flips to 503, queued jobs are
// flushed with 503, and in-flight solves run to completion.  Once ctx
// expires the remaining in-flight budgets are cancelled, upon which
// the solvers unwind with their best feasible results (the anytime
// contract) and their clients still get answers.  Returns nil once
// every worker has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for _, j := range s.sched.drain() {
		j.status = http.StatusServiceUnavailable
		j.res = Response{Final: true, Error: "server draining"}
		j.retryAfter = true // flushed 503s advertise Retry-After too
		s.rejDraining.Add(1)
		s.sched.release(j.bytes)
		close(j.done) // the waiting handler writes the 503 and counts it
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelInflight()
		<-done
	}
	return nil
}

// cancelInflight cancels every tracked in-flight budget and marks any
// job that registers later for immediate cancellation.
func (s *Server) cancelInflight() {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	s.forceCancel = true
	for _, cancel := range s.cancels {
		cancel()
	}
}

func (s *Server) trackJob(j *job, cancel context.CancelFunc) {
	s.cancelMu.Lock()
	if s.forceCancel {
		cancel()
	}
	s.cancels[j] = cancel
	s.cancelMu.Unlock()
}

func (s *Server) untrackJob(j *job) {
	s.cancelMu.Lock()
	delete(s.cancels, j)
	s.cancelMu.Unlock()
}

// ----- HTTP layer -----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone: nothing left to do
}

func (s *Server) countStatus(status int) {
	switch {
	case status >= 500:
		s.status5xx.Add(1)
	case status >= 400:
		s.status4xx.Add(1)
	default:
		s.status2xx.Add(1)
	}
}

// reject writes an error response with the given status.
func (s *Server) reject(w http.ResponseWriter, status int, err error) {
	s.countStatus(status)
	writeJSON(w, status, Response{Final: true, Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reject(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxRequestBytes))
			return
		}
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	// Decode-time parse: a malformed instance is rejected before it
	// consumes queue space or a worker.  The parse cost is linear in
	// the (already capped) body size.
	var prob *ucp.Problem
	var plaFile *ucp.PLA
	if req.Format == "pla" {
		plaFile, err = req.BuildPLA()
	} else {
		prob, err = req.BuildProblem()
	}
	if err != nil {
		var status int
		switch {
		case errors.Is(err, ucp.ErrCoveringLimit):
			// Well-formed but beyond the QM pipeline's explicit
			// covering limit: the client's instance, not our bug.
			status = http.StatusUnprocessableEntity
		case errors.Is(err, ucp.ErrMalformedInput):
			status = http.StatusBadRequest
		default:
			status = http.StatusInternalServerError
		}
		s.reject(w, status, err)
		return
	}
	if t := r.Header.Get("X-UCP-Tenant"); t != "" {
		req.Tenant = t
	}
	if h := r.Header.Get("X-UCP-Timeout-Ms"); h != "" {
		ms, herr := strconv.ParseInt(h, 10, 64)
		if herr != nil || ms < 0 {
			s.reject(w, http.StatusBadRequest, fmt.Errorf("%w: bad X-UCP-Timeout-Ms %q", ucp.ErrMalformedInput, h))
			return
		}
		req.TimeoutMS = ms
	}
	stream := req.Stream || acceptsEventStream(r.Header.Get("Accept"))

	j := &job{
		req:    req,
		prob:   prob,
		pla:    plaFile,
		bytes:  int64(len(body)),
		tenant: req.Tenant,
		ctx:    r.Context(),
		done:   make(chan struct{}),
	}
	if stream {
		j.events = make(chan Response, 1)
	}

	if s.fault.FireQueueFull() {
		s.rejOverload.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusTooManyRequests, ErrOverloaded)
		return
	}
	if err := s.sched.enqueue(j); err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			s.rejDraining.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			s.reject(w, http.StatusServiceUnavailable, err)
		default:
			s.rejOverload.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			s.reject(w, http.StatusTooManyRequests, err)
		}
		return
	}
	s.accepted.Add(1)

	if stream {
		s.streamResponse(w, r, j)
		return
	}
	select {
	case <-j.done:
		s.writeJobResult(w, j)
	case <-r.Context().Done():
		// Client gone while queued or solving; the worker observes the
		// same context and accounts the job.
	}
}

// acceptsEventStream reports whether an Accept header lists
// text/event-stream among its comma-separated media ranges (media-type
// parameters ignored, comparison case-insensitive).
func acceptsEventStream(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = part[:i]
		}
		if strings.EqualFold(strings.TrimSpace(part), "text/event-stream") {
			return true
		}
	}
	return false
}

// writeJobResult writes a finished job's unary JSON response; shared
// by the plain path and the no-flusher streaming degrade.  Drain-
// flushed jobs advertise Retry-After like the admission rejections.
func (s *Server) writeJobResult(w http.ResponseWriter, j *job) {
	if j.status == statusClientGone {
		return
	}
	if j.retryAfter {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	}
	s.countStatus(j.status)
	writeJSON(w, j.status, &j.res)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ----- worker layer -----

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.dequeue()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one admitted job and publishes its result.
func (s *Server) runJob(j *job) {
	defer s.sched.release(j.bytes)
	defer close(j.done)

	if j.ctx.Err() != nil {
		// The client disconnected while the job sat in the queue:
		// don't burn a worker on an unwanted solve.
		s.gone.Add(1)
		j.status = statusClientGone
		return
	}

	bud, cancel := budget.Derive(j.ctx,
		time.Duration(j.req.TimeoutMS)*time.Millisecond,
		s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	defer cancel()
	s.trackJob(j, cancel)
	defer s.untrackJob(j)

	if err := s.fault.FirePreSolve(bud.Context); err != nil {
		s.fail(j, http.StatusInternalServerError, err)
		return
	}

	t0 := time.Now()
	var resp Response
	var status int
	switch {
	case j.pla != nil:
		resp, status = s.solvePLA(j, bud)
	case j.req.Solver == "greedy":
		resp, status = s.solveGreedy(j, bud)
	case j.req.Solver == "exact":
		resp, status = s.solveExact(j, bud)
	default: // "scg" and ""
		resp, status = s.solveSCG(j, bud)
	}
	if status < 400 {
		if err := s.fault.FirePostSolve(); err != nil {
			s.fail(j, http.StatusInternalServerError, err)
			return
		}
		// Server-side feasibility check: no response leaves with an
		// unverified cover (the acceptance bar for streamed finals,
		// and defence in depth against solver or cache corruption).
		// PLA results verify inside solvePLA instead.
		if j.prob != nil && resp.Solution != nil && !j.prob.IsCover(resp.Solution) {
			s.fail(j, http.StatusInternalServerError,
				errors.New("internal error: solver returned a non-cover"))
			return
		}
	}
	resp.Final = true
	resp.ElapsedMS = time.Since(t0).Milliseconds()
	j.status, j.res = status, resp
	s.completed.Add(1)
}

// fail records a failed job result.
func (s *Server) fail(j *job, status int, err error) {
	j.status = status
	j.res = Response{Final: true, Error: err.Error()}
	s.completed.Add(1)
}

func (s *Server) solveGreedy(j *job, bud ucp.Budget) (Response, int) {
	bud.IterCap = j.req.IterCap
	sol, interrupted, err := ucp.SolveGreedyBudget(j.prob, bud)
	if err != nil {
		if errors.Is(err, ucp.ErrInfeasible) {
			return Response{Error: err.Error()}, http.StatusUnprocessableEntity
		}
		return Response{Error: err.Error()}, http.StatusInternalServerError
	}
	return Response{
		Cost:        j.prob.CostOf(sol),
		Solution:    sol,
		Interrupted: interrupted,
	}, http.StatusOK
}

func (s *Server) solveExact(j *job, bud ucp.Budget) (Response, int) {
	res := s.solver.SolveExact(j.prob, ucp.ExactOptions{
		MaxNodes: j.req.MaxNodes,
		Budget:   bud,
	})
	if res.Solution == nil {
		if res.Interrupted {
			err := res.StopReason.Err()
			return Response{Error: err.Error(), Interrupted: true, StopReason: res.StopReason.String()},
				http.StatusGatewayTimeout
		}
		return Response{Error: ucp.ErrInfeasible.Error()}, http.StatusUnprocessableEntity
	}
	return Response{
		Cost:        res.Cost,
		LB:          float64(res.LB),
		Solution:    res.Solution,
		Optimal:     res.Optimal,
		Interrupted: res.Interrupted,
		StopReason:  stopString(res.Interrupted, res.StopReason),
		CacheHit:    res.CacheHit,
	}, http.StatusOK
}

func (s *Server) solveSCG(j *job, bud ucp.Budget) (Response, int) {
	if j.req.Keep || j.req.Parent != "" {
		return s.solveSCGKeep(j, bud)
	}
	bud.IterCap = j.req.IterCap
	opt := ucp.SCGOptions{
		Seed:      j.req.Seed,
		NumIter:   j.req.NumIter,
		Budget:    bud,
		MemBudget: s.cfg.MemBudget,
		SpillDir:  s.cfg.SpillDir,
	}
	if j.events != nil {
		events := j.events
		opt.OnImprove = func(sol []int, cost int, lb float64) {
			conflateSend(events, Response{Cost: cost, LB: lb, Solution: sol})
		}
	}
	res := s.solver.SolveSCG(j.prob, opt)
	s.recordZDD(res.Stats.ZDDNodes, res.Stats.ZDDLiveNodes, res.Stats.ZDDPlainNodes, res.Stats.ZDDCollections)
	s.recordShard(res.Stats.ShardComponents, res.Stats.ShardSpilled,
		res.Stats.ShardRespilled, res.Stats.ShardDegraded, res.Stats.ShardPeakBytes)
	if res.Solution == nil {
		if res.Interrupted {
			err := res.StopReason.Err()
			return Response{Error: err.Error(), Interrupted: true, StopReason: res.StopReason.String()},
				http.StatusGatewayTimeout
		}
		return Response{Error: ucp.ErrInfeasible.Error()}, http.StatusUnprocessableEntity
	}
	return Response{
		Cost:        res.Cost,
		LB:          res.LB,
		Solution:    res.Solution,
		Optimal:     res.ProvedOptimal,
		Interrupted: res.Interrupted,
		StopReason:  stopString(res.Interrupted, res.StopReason),
		CacheHit:    res.Stats.CacheHits > 0,
	}, http.StatusOK
}

// equivalentCheckMaxInputs bounds the server-side equivalence
// verification of PLA results: beyond it the symbolic containment
// recursion is not guaranteed cheap, and the worker must stay bounded
// by the request budget alone.  The dense/consensus differential
// fuzzers carry the correctness burden for the larger instances.
const equivalentCheckMaxInputs = 14

// solvePLA runs the two-level minimisation pipeline on a format "pla"
// job.  Streaming jobs emit only the final record: the pipeline's
// incumbents are covering columns over an instance the client never
// sees, so there is nothing meaningful to push before the cover maps
// back.
func (s *Server) solvePLA(j *job, bud ucp.Budget) (Response, int) {
	bud.IterCap = j.req.IterCap
	var res *ucp.TwoLevelResult
	var err error
	if j.req.Solver == "exact" {
		res, err = s.solver.MinimizeExact(j.pla, ucp.ExactOptions{
			MaxNodes: j.req.MaxNodes,
			Budget:   bud,
		})
	} else {
		res, err = s.solver.MinimizeSCG(j.pla, ucp.SCGOptions{
			Seed:      j.req.Seed,
			NumIter:   j.req.NumIter,
			Budget:    bud,
			MemBudget: s.cfg.MemBudget,
			SpillDir:  s.cfg.SpillDir,
		})
	}
	if err != nil {
		switch {
		case errors.Is(err, ucp.ErrCoveringLimit):
			return Response{Error: err.Error()}, http.StatusUnprocessableEntity
		case errors.Is(err, ucp.ErrBudgetExceeded):
			return Response{Error: err.Error(), Interrupted: true}, http.StatusGatewayTimeout
		default:
			return Response{Error: err.Error()}, http.StatusInternalServerError
		}
	}
	s.recordZDD(res.ZDDNodes, res.ZDDLiveNodes, res.ZDDPlainNodes, res.ZDDCollections)
	s.recordShard(res.ShardComponents, res.ShardSpilled,
		res.ShardRespilled, res.ShardDegraded, res.ShardPeakBytes)
	if j.pla.F.S.Inputs() <= equivalentCheckMaxInputs && !ucp.Equivalent(j.pla, res.Cover) {
		return Response{Error: "internal error: minimiser returned a non-equivalent cover"},
			http.StatusInternalServerError
	}
	cover := make([]string, res.Cover.Len())
	for i, c := range res.Cover.Cubes {
		cover[i] = res.Cover.S.String(c)
	}
	return Response{
		Cost:        res.Products,
		LB:          res.LB,
		Optimal:     res.ProvedOptimal,
		Interrupted: res.Interrupted,
		StopReason:  stopString(res.Interrupted, res.StopReason),
		CacheHit:    res.CacheHits > 0,
		Cover:       cover,
		Literals:    res.Literals,
	}, http.StatusOK
}

func stopString(interrupted bool, r ucp.StopReason) string {
	if !interrupted {
		return ""
	}
	return r.String()
}
