package serve

import (
	"context"
	"errors"
	"sync"

	"ucp"
)

// Admission control and fair-share scheduling.
//
// Every request is sized on arrival (its body length stands in for its
// decoded footprint, both being linear in each other) and admitted
// only while two bounds hold: the queued-request count and the total
// bytes of admitted-but-unfinished work.  Past either bound the server
// answers 429 with Retry-After instead of buffering without limit —
// overload degrades to fast rejections, never to an OOM kill.
//
// Admitted jobs queue per tenant; the workers drain tenants round-
// robin, so one tenant flooding the queue delays its own backlog, not
// everyone else's next request.  Draining flips admission off and
// flushes the queued (not yet started) jobs with 503 while in-flight
// solves run to completion.

// Admission errors.
var (
	// ErrOverloaded: the queue or the in-flight byte budget is full.
	ErrOverloaded = errors.New("serve: overloaded, retry later")
	// ErrDraining: the server is shutting down and admits nothing.
	ErrDraining = errors.New("serve: draining, not accepting work")
)

// job is one admitted request on its way through queue → worker →
// response.  The worker fills status/res and closes done; the handler
// goroutine (which may have abandoned the wait when its client
// disconnected) reads them only after done.
type job struct {
	req    *Request
	prob   *ucp.Problem // covering-matrix formats; nil for format "pla"
	pla    *ucp.PLA     // format "pla"; nil otherwise
	bytes  int64
	tenant string
	// ctx is the request-scoped context: the HTTP server cancels it
	// when the client disconnects, and the drain path cancels it past
	// the drain deadline.
	ctx    context.Context
	events chan Response // conflating incumbent stream; nil unless streaming

	done       chan struct{}
	status     int
	res        Response
	retryAfter bool // set on drain-flushed jobs: the 503 carries Retry-After
}

// tenantQ is one tenant's FIFO backlog.
type tenantQ struct {
	name string
	jobs []*job
}

// scheduler is the bounded multi-tenant queue.  All fields are guarded
// by mu; workers sleep on cond.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxQueue int
	maxBytes int64

	tenants map[string]*tenantQ
	ring    []*tenantQ // round-robin order over tenants with backlog
	next    int        // ring cursor

	queued        int
	inflightBytes int64 // admitted and not yet released (queued + solving)
	draining      bool
}

func newScheduler(maxQueue int, maxBytes int64) *scheduler {
	s := &scheduler{
		maxQueue: maxQueue,
		maxBytes: maxBytes,
		tenants:  make(map[string]*tenantQ),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue admits j or reports why it cannot.
func (s *scheduler) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.queued >= s.maxQueue || s.inflightBytes+j.bytes > s.maxBytes {
		return ErrOverloaded
	}
	tq := s.tenants[j.tenant]
	if tq == nil {
		tq = &tenantQ{name: j.tenant}
		s.tenants[j.tenant] = tq
	}
	if len(tq.jobs) == 0 {
		s.ring = append(s.ring, tq)
	}
	tq.jobs = append(tq.jobs, j)
	s.queued++
	s.inflightBytes += j.bytes
	s.cond.Signal()
	return nil
}

// dequeue blocks for the next job, drained fair-share across tenants.
// ok=false tells the worker to exit: the server is draining and the
// queue is empty.
func (s *scheduler) dequeue() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued == 0 {
		if s.draining {
			return nil, false
		}
		s.cond.Wait()
	}
	// Round-robin over the ring; empty tenants fell out on their last
	// pop, so the cursor always lands on a backlogged tenant.
	if s.next >= len(s.ring) {
		s.next = 0
	}
	tq := s.ring[s.next]
	j := tq.jobs[0]
	tq.jobs = tq.jobs[1:]
	s.queued--
	if len(tq.jobs) == 0 {
		// Tenant exhausted: remove from the ring; the cursor now
		// points at the next tenant already.
		s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
	} else {
		s.next++
	}
	return j, true
}

// release returns an admitted job's bytes to the budget (deferred by
// the worker, and by the drain flush for never-started jobs).
func (s *scheduler) release(n int64) {
	s.mu.Lock()
	s.inflightBytes -= n
	s.mu.Unlock()
}

// drain flips admission off and removes every queued job, returning
// them for completion with 503.  Idempotent; later calls return nil.
func (s *scheduler) drain() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	var flushed []*job
	for _, tq := range s.ring {
		flushed = append(flushed, tq.jobs...)
		tq.jobs = nil
	}
	s.ring = nil
	s.next = 0
	s.queued = 0
	s.cond.Broadcast() // wake idle workers so they observe draining and exit
	return flushed
}

// depth reports the current backlog and byte footprint.
func (s *scheduler) depth() (queued int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.inflightBytes
}
