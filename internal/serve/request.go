package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"ucp"
)

// The wire protocol: one JSON request per solve.  The instance
// travels either as text in one of the library's formats (`problem` +
// `format` "ucp", "orlib" or "pla"), or structurally (`format` "json"
// with `rows`/`ncols`/`costs`).  Format "pla" runs the full two-level
// minimisation pipeline (prime generation, covering formulation,
// covering solve) instead of solving a pre-built covering matrix.
// Limits are validated at decode time so a malformed or hostile
// request is rejected before it touches the queue.
type Request struct {
	// Format selects the instance encoding: "ucp" (default, the
	// package's covering-matrix text), "orlib" (Beasley OR-Library
	// text), "pla" (Berkeley PLA text, two-level minimisation), or
	// "json" (Rows/NCols/Costs below).
	Format string `json:"format,omitempty"`
	// Problem is the text payload for the ucp/orlib/pla formats.
	Problem string `json:"problem,omitempty"`
	// Rows/NCols/Costs are the structural payload for format "json".
	Rows  [][]int `json:"rows,omitempty"`
	NCols int     `json:"ncols,omitempty"`
	Costs []int   `json:"costs,omitempty"`

	// Solver selects the engine: "scg" (default), "exact" or "greedy".
	Solver string `json:"solver,omitempty"`
	// Seed / NumIter configure the scg portfolio.
	Seed    int64 `json:"seed,omitempty"`
	NumIter int   `json:"numiter,omitempty"`
	// MaxNodes caps the exact solver's branch-and-bound nodes.
	MaxNodes int64 `json:"maxnodes,omitempty"`
	// IterCap caps scg subgradient iterations (anytime degradation).
	IterCap int `json:"itercap,omitempty"`

	// Keep asks the server to retain the solve state for later
	// incremental re-solves; the response then carries a solve_id the
	// client can name as Parent in a follow-up request.  Matrix scg
	// solves only; keep solves pin the explicit reduction pipeline,
	// bypass the cross-solve cache and emit no streamed incumbents.
	Keep bool `json:"keep,omitempty"`
	// Parent names an earlier keep solve's solve_id: the server
	// reconstructs the edit from that retained instance to this one
	// and re-solves incrementally, bit-identical to a from-scratch
	// solve (Keep is implied, so chains keep working).  An expired or
	// unknown id silently degrades to a from-scratch solve — the id is
	// a performance hint, not state the client may rely on.
	Parent string `json:"parent,omitempty"`

	// TimeoutMS is the client's requested wall-clock budget in
	// milliseconds; the server clamps it to its configured maximum
	// (the X-UCP-Timeout-Ms header, when present, overrides it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream requests an SSE stream of improving incumbents instead
	// of a single JSON response.
	Stream bool `json:"stream,omitempty"`
	// Tenant names the fair-share scheduling bucket (the X-UCP-Tenant
	// header, when present, overrides it; empty means the shared
	// default bucket).
	Tenant string `json:"tenant,omitempty"`
}

// Hard structural limits on a decoded request, enforced before any
// problem construction.  They bound decode-time memory, not solve
// difficulty — the byte budget and the per-request Budget handle those.
const (
	maxNumIter   = 1 << 16
	maxDimension = 1 << 24 // matches the text parser's cap
)

var errTrailing = errors.New("trailing data after the JSON request")

// DecodeRequest parses and validates one wire request.  Unknown fields
// and trailing garbage are rejected, as is any structurally out-of-
// range parameter; every failure wraps ucp.ErrMalformedInput.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %w", ucp.ErrMalformedInput, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%w: %w", ucp.ErrMalformedInput, errTrailing)
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ucp.ErrMalformedInput, err)
	}
	return &req, nil
}

func (r *Request) validate() error {
	switch r.Solver {
	case "", "scg", "exact", "greedy":
	default:
		return fmt.Errorf("unknown solver %q", r.Solver)
	}
	structural := len(r.Rows) > 0 || r.NCols != 0 || len(r.Costs) > 0
	switch r.Format {
	case "", "ucp", "orlib", "pla":
		if r.Problem == "" {
			return fmt.Errorf("missing problem text for format %q", r.Format)
		}
		if structural {
			return fmt.Errorf("rows/ncols/costs belong to format \"json\", not %q", r.Format)
		}
		if r.Format == "pla" && r.Solver == "greedy" {
			return fmt.Errorf("the greedy solver applies to covering matrices, not format \"pla\"")
		}
	case "json":
		if r.Problem != "" {
			return fmt.Errorf("problem text belongs to the text formats, not \"json\"")
		}
		if r.NCols < 0 || r.NCols > maxDimension || len(r.Rows) > maxDimension {
			return fmt.Errorf("problem dimensions out of range")
		}
	default:
		return fmt.Errorf("unknown format %q", r.Format)
	}
	if r.Seed < 0 {
		return fmt.Errorf("negative seed")
	}
	if r.NumIter < 0 || r.NumIter > maxNumIter {
		return fmt.Errorf("numiter %d out of range [0, %d]", r.NumIter, maxNumIter)
	}
	if r.MaxNodes < 0 || r.IterCap < 0 || r.TimeoutMS < 0 {
		return fmt.Errorf("negative cap")
	}
	if r.Keep || r.Parent != "" {
		if r.Format == "pla" {
			return fmt.Errorf("keep/parent apply to covering matrices, not format \"pla\"")
		}
		switch r.Solver {
		case "", "scg":
		default:
			return fmt.Errorf("keep/parent need the scg solver, not %q", r.Solver)
		}
	}
	return nil
}

// BuildProblem constructs the covering instance.  Errors wrap
// ucp.ErrMalformedInput (the parsers tag them).
func (r *Request) BuildProblem() (*ucp.Problem, error) {
	switch r.Format {
	case "", "ucp":
		return ucp.ReadProblem(strings.NewReader(r.Problem))
	case "orlib":
		return ucp.ReadORLibProblem(strings.NewReader(r.Problem))
	default: // "json"; validate() admits nothing else
		return ucp.NewProblem(r.Rows, r.NCols, r.Costs)
	}
}

// BuildPLA parses the two-level instance for format "pla".  Parse
// failures wrap ucp.ErrMalformedInput; a function too wide for the
// Quine–McCluskey covering matrix wraps ucp.ErrCoveringLimit.  Both
// checks are linear in the (already capped) body size, preserving the
// decode-time admission contract — the expensive prime generation only
// runs on a worker, under the request's budget.
func (r *Request) BuildPLA() (*ucp.PLA, error) {
	f, err := ucp.ParsePLA(strings.NewReader(r.Problem))
	if err != nil {
		return nil, err
	}
	if n := f.F.S.Inputs(); n > ucp.MaxCoveringInputs {
		return nil, fmt.Errorf("%w: %d inputs exceed %d", ucp.ErrCoveringLimit, n, ucp.MaxCoveringInputs)
	}
	return f, nil
}

// Response is one result record.  Streaming responses emit a sequence
// of them — improving incumbents with Final=false, then exactly one
// Final=true record (the authoritative result, its cover verified
// feasible server-side).  Unary responses are a single record with
// Final=true.
type Response struct {
	Cost     int     `json:"cost"`
	LB       float64 `json:"lb"`
	Solution []int   `json:"solution,omitempty"`
	Optimal  bool    `json:"optimal,omitempty"`
	// Interrupted + StopReason report a budget-cut solve: the solution
	// is still feasible, the bound still valid.
	Interrupted bool   `json:"interrupted,omitempty"`
	StopReason  string `json:"stop_reason,omitempty"`
	// CacheHit marks a result served from the shared cross-solve cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// SolveID names the retained state of a keep/parent solve; pass it
	// as the next request's parent to re-solve incrementally.
	SolveID string `json:"solve_id,omitempty"`
	// Cover carries the minimised product terms (PLA cube notation,
	// one per line element) for format "pla" results; Cost is then the
	// product count and Literals the secondary literal cost.
	Cover    []string `json:"cover,omitempty"`
	Literals int      `json:"literals,omitempty"`
	// Final marks the authoritative last record of a stream.
	Final bool `json:"final"`
	// Error carries the failure for non-2xx (or failed-stream) results.
	Error     string `json:"error,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
}
