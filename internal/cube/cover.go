package cube

import (
	"sort"
	"strings"
)

// Cover is a set of cubes over a common space: a sum-of-products
// representation of a (multiple-output) boolean function.
type Cover struct {
	S     *Space
	Cubes []Cube
}

// NewCover returns an empty cover over s.
func NewCover(s *Space) *Cover { return &Cover{S: s} }

// Add appends cube c to the cover.
func (f *Cover) Add(c Cube) { f.Cubes = append(f.Cubes, c) }

// Len returns the number of cubes.
func (f *Cover) Len() int { return len(f.Cubes) }

// Clone returns a deep copy of the cover.
func (f *Cover) Clone() *Cover {
	g := &Cover{S: f.S, Cubes: make([]Cube, len(f.Cubes))}
	for i, c := range f.Cubes {
		g.Cubes[i] = f.S.Copy(c)
	}
	return g
}

// String renders the cover one cube per line in PLA notation.
func (f *Cover) String() string {
	var b strings.Builder
	for _, c := range f.Cubes {
		b.WriteString(f.S.String(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// Sort orders the cubes lexicographically by their words, giving the
// cover a canonical cube order (duplicates become adjacent).
func (f *Cover) Sort() {
	sort.Slice(f.Cubes, func(i, j int) bool {
		a, b := f.Cubes[i], f.Cubes[j]
		for w := range a {
			if a[w] != b[w] {
				return a[w] < b[w]
			}
		}
		return false
	})
}

// Dedup removes duplicate and single-cube-contained cubes: any cube
// contained in another single cube of the cover is dropped.  The
// result is returned as a new cover.
func (f *Cover) Dedup() *Cover {
	g := NewCover(f.S)
	kept := make([]bool, len(f.Cubes))
	for i := range f.Cubes {
		kept[i] = true
	}
	for i, a := range f.Cubes {
		if !kept[i] {
			continue
		}
		for j, b := range f.Cubes {
			if i == j || !kept[j] {
				continue
			}
			if f.S.Contains(b, a) && (!f.S.Equal(a, b) || j < i) {
				kept[i] = false
				break
			}
		}
	}
	for i, a := range f.Cubes {
		if kept[i] {
			g.Add(a)
		}
	}
	return g
}

// orAll returns the bitwise OR of all cubes (the supercube), or nil
// for an empty cover.
func (f *Cover) orAll() Cube { return f.S.SuperCube(f.Cubes) }

// activeInput reports whether any cube constrains input variable i
// (has a non-DC part there).
func (f *Cover) activeInput(i int) bool {
	for _, c := range f.Cubes {
		if f.S.Input(c, i) != DC {
			return true
		}
	}
	return false
}

// mostBinateInput returns the input variable on which the cover is
// "most binate": the one maximising min(#Zero, #One) occurrences, with
// total occurrences as tie break.  It returns -1 when no input
// variable is constrained by any cube.
func (f *Cover) mostBinateInput() int {
	s := f.S
	best, bestKey := -1, int64(-1)
	for i := 0; i < s.inputs; i++ {
		zeros, ones := 0, 0
		for _, c := range f.Cubes {
			switch s.Input(c, i) {
			case Zero:
				zeros++
			case One:
				ones++
			}
		}
		if zeros+ones == 0 {
			continue
		}
		lo := zeros
		if ones < lo {
			lo = ones
		}
		key := int64(lo)<<32 + int64(zeros+ones)
		if key > bestKey {
			best, bestKey = i, key
		}
	}
	return best
}

// CofactorCover returns the cover of the cofactors of every cube with
// respect to p, dropping cubes disjoint from p.
func (f *Cover) CofactorCover(p Cube) *Cover {
	g := NewCover(f.S)
	for _, c := range f.Cubes {
		if r := f.S.Cofactor(c, p); r != nil {
			g.Add(r)
		}
	}
	return g
}

// Tautology reports whether the cover equals the universal function:
// it covers every input minterm for every output of the space.  It
// uses the Espresso recursion: quick vacancy and full-cube checks,
// unate-variable reduction, then Shannon splitting on the most binate
// input.
func (f *Cover) Tautology() bool {
	s := f.S
	if len(f.Cubes) == 0 {
		return s.inputs == 0 && s.outputs == 0
	}
	or := f.orAll()
	full := s.FullCube()
	for w := range or {
		if or[w] != full[w] {
			return false // some value of some part is never covered
		}
	}
	for _, c := range f.Cubes {
		if s.Equal(c, full) {
			return true
		}
	}
	// Unate reduction: if variable i only ever appears with one
	// polarity, minterms on the opposite side are covered exactly by
	// the cubes with a don't care at i; the tautology question
	// restricts to those cubes.
	for i := 0; i < s.inputs; i++ {
		zeros, ones := 0, 0
		for _, c := range f.Cubes {
			switch s.Input(c, i) {
			case Zero:
				zeros++
			case One:
				ones++
			}
		}
		if (zeros == 0) != (ones == 0) { // unate, but not inactive
			g := NewCover(s)
			for _, c := range f.Cubes {
				if s.Input(c, i) == DC {
					g.Add(c)
				}
			}
			return g.Tautology()
		}
	}
	x := f.mostBinateInput()
	if x < 0 {
		// No cube constrains any input: every cube is full on the
		// input side, and the OR check above already ensured all
		// outputs are covered.
		return true
	}
	p1 := s.FullCube()
	s.SetInput(p1, x, One)
	p0 := s.FullCube()
	s.SetInput(p0, x, Zero)
	return f.CofactorCover(p1).Tautology() && f.CofactorCover(p0).Tautology()
}

// ContainsCube reports whether the cover contains cube c (every
// minterm of c is covered), via the cofactor-tautology test.
func (f *Cover) ContainsCube(c Cube) bool {
	return f.CofactorCover(c).Tautology()
}

// ContainsCover reports whether every cube of g is contained in f.
func (f *Cover) ContainsCover(g *Cover) bool {
	for _, c := range g.Cubes {
		if !f.ContainsCube(c) {
			return false
		}
	}
	return true
}

// EquivalentTo reports whether f and g denote the same function.
func (f *Cover) EquivalentTo(g *Cover) bool {
	return f.ContainsCover(g) && g.ContainsCover(f)
}

// Sharp returns the difference a \ b as a list of pairwise-disjoint
// cubes (the "disjoint sharp" operation), covering exactly the points
// of a that are not in b.
func (s *Space) Sharp(a, b Cube) []Cube {
	if !s.Intersects(a, b) {
		return []Cube{s.Copy(a)}
	}
	var out []Cube
	prefix := s.Copy(a) // parts already intersected with b
	for i := 0; i < s.inputs; i++ {
		la, lb := s.Input(a, i), s.Input(b, i)
		rest := la &^ lb
		if rest != Empty {
			c := s.Copy(prefix)
			s.SetInput(c, i, Literal(rest))
			out = append(out, c)
		}
		s.SetInput(prefix, i, la&lb)
	}
	if s.outputs > 0 {
		c := s.Copy(prefix)
		empty := true
		for w := range c {
			c[w] = c[w]&s.inMask[w] | (a[w] &^ b[w] & s.outMask[w])
			if c[w]&s.outMask[w] != 0 {
				empty = false
			}
		}
		if !empty {
			out = append(out, c)
		}
	}
	return out
}

// SharpCover returns the set difference f \ g as a cover of disjoint
// cubes.  The size of the result can grow quickly; it is intended for
// the moderate cover sizes used by the reduce and essential-point
// computations.
func (f *Cover) SharpCover(g *Cover) *Cover {
	rem := make([]Cube, len(f.Cubes))
	for i, c := range f.Cubes {
		rem[i] = f.S.Copy(c)
	}
	for _, b := range g.Cubes {
		var next []Cube
		for _, a := range rem {
			next = append(next, f.S.Sharp(a, b)...)
		}
		rem = next
		if len(rem) == 0 {
			break
		}
	}
	return &Cover{S: f.S, Cubes: rem}
}

// ComplementInputs complements the cover viewed as a pure input-space
// function (output parts are ignored).  The result has full output
// parts.  It uses Shannon expansion on the most binate input with
// single-cube-containment cleanup at each merge.
func (f *Cover) ComplementInputs() *Cover {
	s := f.S
	// Work on input projections only.
	proj := NewCover(s)
	for _, c := range f.Cubes {
		d := s.Copy(c)
		for w := range d {
			d[w] = d[w]&s.inMask[w] | s.outMask[w]
		}
		if !s.IsEmpty(d) {
			proj.Add(d)
		}
	}
	return proj.complementRec()
}

func (f *Cover) complementRec() *Cover {
	s := f.S
	if len(f.Cubes) == 0 {
		g := NewCover(s)
		g.Add(s.FullCube())
		return g
	}
	full := s.FullCube()
	for _, c := range f.Cubes {
		if s.Equal(c, full) {
			return NewCover(s)
		}
	}
	if len(f.Cubes) == 1 {
		// Complement of a single cube: one cube per constrained part.
		g := NewCover(s)
		c := f.Cubes[0]
		for i := 0; i < s.inputs; i++ {
			l := s.Input(c, i)
			if l != DC {
				d := s.FullCube()
				s.SetInput(d, i, DC&^l)
				g.Add(d)
			}
		}
		return g
	}
	x := f.mostBinateInput()
	if x < 0 {
		// All cubes full on inputs, at least one cube, outputs ignored
		// here: the function is the universe.
		return NewCover(s)
	}
	p1 := s.FullCube()
	s.SetInput(p1, x, One)
	p0 := s.FullCube()
	s.SetInput(p0, x, Zero)
	c1 := f.CofactorCover(p1).complementRec()
	c0 := f.CofactorCover(p0).complementRec()
	g := NewCover(s)
	for _, c := range c1.Cubes {
		d := s.Copy(c)
		s.SetInput(d, x, One)
		g.Add(d)
	}
	for _, c := range c0.Cubes {
		d := s.Copy(c)
		s.SetInput(d, x, Zero)
		g.Add(d)
	}
	// Merge cubes identical except for x, and clean up containments.
	g = mergeOnVar(g, x)
	return g.Dedup()
}

// mergeOnVar unions pairs of cubes that differ only in variable x into
// a single cube with x raised to don't care.
func mergeOnVar(f *Cover, x int) *Cover {
	s := f.S
	g := NewCover(s)
	used := make([]bool, len(f.Cubes))
	for i, a := range f.Cubes {
		if used[i] {
			continue
		}
		merged := s.Copy(a)
		for j := i + 1; j < len(f.Cubes); j++ {
			if used[j] {
				continue
			}
			b := f.Cubes[j]
			if s.Input(a, x)|s.Input(b, x) == DC && equalExcept(s, a, b, x) {
				s.SetInput(merged, x, DC)
				used[j] = true
				break
			}
		}
		g.Add(merged)
	}
	return g
}

func equalExcept(s *Space, a, b Cube, x int) bool {
	for i := 0; i < s.inputs; i++ {
		if i != x && s.Input(a, i) != s.Input(b, i) {
			return false
		}
	}
	return true
}

// Literals returns the total number of fixed input literals of the
// cover — the secondary cost measure of two-level minimisation (the
// primary one being the cube count).
func (f *Cover) Literals() int {
	n := 0
	for _, c := range f.Cubes {
		n += f.S.Inputs() - f.S.InputWeight(c)
	}
	return n
}
