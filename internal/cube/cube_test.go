package cube

import (
	"math/rand"
	"testing"
)

// mintermIn reports whether input minterm m with output o lies in cube c.
func mintermIn(s *Space, c Cube, m uint64, o int) bool {
	for i := 0; i < s.Inputs(); i++ {
		bit := m >> i & 1
		l := s.Input(c, i)
		if bit == 0 && l&Zero == 0 {
			return false
		}
		if bit == 1 && l&One == 0 {
			return false
		}
	}
	if s.Outputs() > 0 && !s.Output(c, o) {
		return false
	}
	return true
}

func mintermInCover(f *Cover, m uint64, o int) bool {
	for _, c := range f.Cubes {
		if mintermIn(f.S, c, m, o) {
			return true
		}
	}
	return false
}

// randomCover builds a random cover over s with n cubes.
func randomCover(s *Space, n int, rng *rand.Rand) *Cover {
	f := NewCover(s)
	for k := 0; k < n; k++ {
		c := s.NewCube()
		for i := 0; i < s.Inputs(); i++ {
			switch rng.Intn(4) {
			case 0:
				s.SetInput(c, i, Zero)
			case 1:
				s.SetInput(c, i, One)
			default:
				s.SetInput(c, i, DC)
			}
		}
		any := false
		for o := 0; o < s.Outputs(); o++ {
			if rng.Intn(2) == 0 {
				s.SetOutput(c, o, true)
				any = true
			}
		}
		if s.Outputs() > 0 && !any {
			s.SetOutput(c, rng.Intn(s.Outputs()), true)
		}
		f.Add(c)
	}
	return f
}

func TestLiteralRoundTrip(t *testing.T) {
	s := NewSpace(70, 5) // spans multiple words
	c := s.NewCube()
	for i := 0; i < 70; i++ {
		l := []Literal{Zero, One, DC}[i%3]
		s.SetInput(c, i, l)
	}
	for i := 0; i < 70; i++ {
		want := []Literal{Zero, One, DC}[i%3]
		if got := s.Input(c, i); got != want {
			t.Fatalf("input %d: got %v want %v", i, got, want)
		}
	}
	for o := 0; o < 5; o++ {
		s.SetOutput(c, o, o%2 == 0)
	}
	for o := 0; o < 5; o++ {
		if got := s.Output(c, o); got != (o%2 == 0) {
			t.Fatalf("output %d: got %v", o, got)
		}
	}
	// Flipping an input must not clobber neighbours.
	s.SetInput(c, 31, Zero) // straddles word boundary at bit 62..63
	s.SetInput(c, 32, One)
	if s.Input(c, 31) != Zero || s.Input(c, 32) != One {
		t.Fatal("word-boundary parts corrupted")
	}
}

func TestParseAndString(t *testing.T) {
	s := NewSpace(4, 2)
	c, err := s.ParseCube("10-0", "01")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(c); got != "10-0 01" {
		t.Fatalf("String = %q", got)
	}
	if s.Input(c, 0) != One || s.Input(c, 2) != DC {
		t.Fatal("parsed literals wrong")
	}
	if s.Output(c, 0) || !s.Output(c, 1) {
		t.Fatal("parsed outputs wrong")
	}
	if _, err := s.ParseCube("10-", "01"); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := s.ParseCube("10z0", "01"); err == nil {
		t.Fatal("bad char accepted")
	}
}

func TestEmptyAndFull(t *testing.T) {
	s := NewSpace(3, 2)
	if !s.IsEmpty(s.NewCube()) {
		t.Fatal("fresh cube should be empty")
	}
	f := s.FullCube()
	if s.IsEmpty(f) {
		t.Fatal("full cube empty")
	}
	for i := 0; i < 3; i++ {
		if s.Input(f, i) != DC {
			t.Fatal("full cube input not DC")
		}
	}
	c := s.Copy(f)
	s.SetOutput(c, 0, false)
	s.SetOutput(c, 1, false)
	if !s.IsEmpty(c) {
		t.Fatal("cube with no outputs should be empty")
	}
}

func TestContainsAndIntersect(t *testing.T) {
	s := NewSpace(3, 1)
	a, _ := s.ParseCube("1--", "1")
	b, _ := s.ParseCube("10-", "1")
	d, _ := s.ParseCube("0--", "1")
	if !s.Contains(a, b) || s.Contains(b, a) {
		t.Fatal("containment wrong")
	}
	if s.Intersects(a, d) {
		t.Fatal("disjoint cubes intersect")
	}
	if !s.Intersects(a, b) {
		t.Fatal("nested cubes must intersect")
	}
	x := s.And(a, d)
	if !s.IsEmpty(x) {
		t.Fatal("empty intersection not detected")
	}
}

func TestDistanceAndConsensus(t *testing.T) {
	s := NewSpace(3, 0)
	a, _ := s.ParseCube("10-", "")
	b, _ := s.ParseCube("11-", "")
	if d := s.Distance(a, b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
	c := s.Consensus(a, b)
	if c == nil {
		t.Fatal("consensus nil at distance 1")
	}
	if got := s.String(c); got != "1--" {
		t.Fatalf("consensus = %q, want 1--", got)
	}
	e, _ := s.ParseCube("01-", "")
	if s.Consensus(a, e) != nil {
		t.Fatal("consensus at distance 2 should be nil")
	}
	// Output-part consensus: same inputs, disjoint outputs.
	so := NewSpace(2, 2)
	p, _ := so.ParseCube("1-", "10")
	q, _ := so.ParseCube("1-", "01")
	if so.Distance(p, q) != 1 {
		t.Fatal("output distance wrong")
	}
	r := so.Consensus(p, q)
	if r == nil || !so.Output(r, 0) || !so.Output(r, 1) {
		t.Fatal("output consensus should union outputs")
	}
}

func TestTautologyBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s := NewSpace(1+rng.Intn(5), 1+rng.Intn(3))
		f := randomCover(s, rng.Intn(8), rng)
		want := true
	outer:
		for o := 0; o < s.Outputs(); o++ {
			for m := uint64(0); m < 1<<s.Inputs(); m++ {
				if !mintermInCover(f, m, o) {
					want = false
					break outer
				}
			}
		}
		if got := f.Tautology(); got != want {
			t.Fatalf("trial %d: Tautology = %v, brute force = %v\ncover:\n%s", trial, got, want, f)
		}
	}
}

func TestContainsCubeBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		s := NewSpace(1+rng.Intn(5), 1+rng.Intn(2))
		f := randomCover(s, 1+rng.Intn(6), rng)
		c := randomCover(s, 1, rng).Cubes[0]
		want := true
	outer:
		for o := 0; o < s.Outputs(); o++ {
			for m := uint64(0); m < 1<<s.Inputs(); m++ {
				if mintermIn(s, c, m, o) && !mintermInCover(f, m, o) {
					want = false
					break outer
				}
			}
		}
		if got := f.ContainsCube(c); got != want {
			t.Fatalf("trial %d: ContainsCube = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestComplementInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		s := NewSpace(1+rng.Intn(6), 0)
		f := randomCover(s, rng.Intn(7), rng)
		g := f.ComplementInputs()
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			inF := mintermInCover(f, m, 0)
			inG := mintermInCover(g, m, 0)
			if inF == inG {
				t.Fatalf("trial %d: minterm %b in both or neither (f=%v g=%v)", trial, m, inF, inG)
			}
		}
	}
}

func TestSharpBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := NewSpace(1+rng.Intn(4), 1+rng.Intn(2))
		a := randomCover(s, 1, rng).Cubes[0]
		b := randomCover(s, 1, rng).Cubes[0]
		parts := s.Sharp(a, b)
		// The parts must be pairwise disjoint and cover exactly a\b.
		for i := range parts {
			for j := i + 1; j < len(parts); j++ {
				if s.Intersects(parts[i], parts[j]) {
					t.Fatalf("trial %d: sharp parts intersect", trial)
				}
			}
		}
		pc := &Cover{S: s, Cubes: parts}
		for o := 0; o < s.Outputs(); o++ {
			for m := uint64(0); m < 1<<s.Inputs(); m++ {
				want := mintermIn(s, a, m, o) && !mintermIn(s, b, m, o)
				if got := mintermInCover(pc, m, o); got != want {
					t.Fatalf("trial %d: sharp wrong at m=%b o=%d: got %v want %v", trial, m, o, got, want)
				}
			}
		}
	}
}

func TestSharpCover(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		s := NewSpace(1+rng.Intn(4), 1)
		f := randomCover(s, 1+rng.Intn(3), rng)
		g := randomCover(s, rng.Intn(3), rng)
		d := f.SharpCover(g)
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			want := mintermInCover(f, m, 0) && !mintermInCover(g, m, 0)
			if got := mintermInCover(d, m, 0); got != want {
				t.Fatalf("trial %d: SharpCover wrong at m=%b", trial, m)
			}
		}
	}
}

func TestSuperCube(t *testing.T) {
	s := NewSpace(3, 1)
	a, _ := s.ParseCube("100", "1")
	b, _ := s.ParseCube("110", "1")
	sc := s.SuperCube([]Cube{a, b})
	if got := s.String(sc); got != "1-0 1" {
		t.Fatalf("supercube = %q", got)
	}
	if s.SuperCube(nil) != nil {
		t.Fatal("supercube of empty should be nil")
	}
}

func TestDedup(t *testing.T) {
	s := NewSpace(2, 1)
	f := NewCover(s)
	a, _ := s.ParseCube("1-", "1")
	b, _ := s.ParseCube("10", "1") // contained in a
	c, _ := s.ParseCube("1-", "1") // duplicate of a
	f.Add(a)
	f.Add(b)
	f.Add(c)
	g := f.Dedup()
	if g.Len() != 1 {
		t.Fatalf("Dedup kept %d cubes, want 1:\n%s", g.Len(), g)
	}
}

func TestMintermEnumeration(t *testing.T) {
	s := NewSpace(3, 2)
	c, _ := s.ParseCube("1--", "01")
	var ms []uint64
	s.Minterms(c, 1, func(m uint64) bool { ms = append(ms, m); return true })
	if len(ms) != 4 {
		t.Fatalf("got %d minterms, want 4", len(ms))
	}
	for _, m := range ms {
		if m&1 == 0 {
			t.Fatalf("minterm %b should have input 0 set", m)
		}
	}
	ms = nil
	s.Minterms(c, 0, func(m uint64) bool { ms = append(ms, m); return true })
	if len(ms) != 0 {
		t.Fatal("cube does not drive output 0")
	}
	// Round trip through CubeOfMinterm.
	mc := s.CubeOfMinterm(5, 1)
	if !mintermIn(s, mc, 5, 1) || mintermIn(s, mc, 4, 1) || mintermIn(s, mc, 5, 0) {
		t.Fatal("CubeOfMinterm wrong")
	}
}

func TestCofactorProperties(t *testing.T) {
	s := NewSpace(4, 1)
	c, _ := s.ParseCube("10--", "1")
	p, _ := s.ParseCube("1---", "1")
	r := s.Cofactor(c, p)
	if r == nil {
		t.Fatal("cofactor of intersecting cubes nil")
	}
	if s.Input(r, 0) != DC {
		t.Fatal("cofactored variable should become DC")
	}
	q, _ := s.ParseCube("0---", "1")
	if s.Cofactor(c, q) != nil {
		t.Fatal("cofactor of disjoint cubes should be nil")
	}
}

func TestEquivalentTo(t *testing.T) {
	s := NewSpace(2, 1)
	// x0 XOR-free identity: f = x0 + x0'x1 == x0 + x1
	f := NewCover(s)
	a, _ := s.ParseCube("1-", "1")
	b, _ := s.ParseCube("01", "1")
	f.Add(a)
	f.Add(b)
	g := NewCover(s)
	c, _ := s.ParseCube("1-", "1")
	d, _ := s.ParseCube("-1", "1")
	g.Add(c)
	g.Add(d)
	if !f.EquivalentTo(g) {
		t.Fatal("equivalent covers reported different")
	}
	h := NewCover(s)
	h.Add(s.Copy(a))
	if f.EquivalentTo(h) {
		t.Fatal("different covers reported equivalent")
	}
}

func TestLiterals(t *testing.T) {
	s := NewSpace(4, 1)
	f := NewCover(s)
	a, _ := s.ParseCube("10--", "1")
	b, _ := s.ParseCube("----", "1")
	c, _ := s.ParseCube("0011", "1")
	f.Add(a)
	f.Add(b)
	f.Add(c)
	if got := f.Literals(); got != 2+0+4 {
		t.Fatalf("Literals = %d, want 6", got)
	}
}
