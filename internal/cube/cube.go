// Package cube implements the positional-cube calculus for
// multiple-output two-level logic, in the style of Espresso.
//
// A cube over n binary inputs and m outputs is stored as a bit vector.
// Each input variable occupies two bits: bit 0 set means the variable
// may take value 0, bit 1 set means it may take value 1.  Thus 01
// encodes the negative literal, 10 the positive literal, 11 a don't
// care (the variable is absent from the product term) and 00 the empty
// part.  The m outputs form one multi-valued part with one bit per
// output: a set bit means the product term belongs to that output's
// cover.  A cube with no outputs (m = 0) is purely an input cube.
package cube

import (
	"fmt"
	"math/bits"
	"strings"
)

// Literal is the value of one binary input position of a cube.
type Literal uint8

// The four possible input parts.
const (
	Empty Literal = 0b00 // no value: the cube is empty
	Zero  Literal = 0b01 // negative literal (variable = 0)
	One   Literal = 0b10 // positive literal (variable = 1)
	DC    Literal = 0b11 // don't care (variable absent)
)

// String renders the literal in PLA notation.
func (l Literal) String() string {
	switch l {
	case Zero:
		return "0"
	case One:
		return "1"
	case DC:
		return "-"
	default:
		return "?"
	}
}

// Cube is a product term in positional-cube notation.  Cubes are plain
// word slices; every operation interpreting them is a method of the
// Space that created them.
type Cube []uint64

// Space describes a boolean space with a fixed number of binary inputs
// and outputs, and provides all cube operations for cubes of that
// shape.  Spaces are immutable and safe for concurrent use.
type Space struct {
	inputs  int
	outputs int
	words   int      // words per cube
	inMask  []uint64 // mask of the bits used by input parts, per word
	outMask []uint64 // mask of the bits used by output parts, per word
}

// NewSpace returns a space with the given number of binary input
// variables and output functions.  Both may be zero, but not
// simultaneously negative.
func NewSpace(inputs, outputs int) *Space {
	if inputs < 0 || outputs < 0 {
		panic(fmt.Sprintf("cube: invalid space %d/%d", inputs, outputs))
	}
	totalBits := 2*inputs + outputs
	words := (totalBits + 63) / 64
	if words == 0 {
		words = 1
	}
	s := &Space{
		inputs:  inputs,
		outputs: outputs,
		words:   words,
		inMask:  make([]uint64, words),
		outMask: make([]uint64, words),
	}
	for i := 0; i < 2*inputs; i++ {
		s.inMask[i/64] |= 1 << (i % 64)
	}
	for o := 0; o < outputs; o++ {
		b := 2*inputs + o
		s.outMask[b/64] |= 1 << (b % 64)
	}
	return s
}

// Inputs returns the number of binary input variables.
func (s *Space) Inputs() int { return s.inputs }

// Outputs returns the number of output functions.
func (s *Space) Outputs() int { return s.outputs }

// NewCube returns an empty cube (all parts 00 / outputs 0).
func (s *Space) NewCube() Cube { return make(Cube, s.words) }

// FullCube returns the universal cube: every input part is a don't
// care and every output bit is set.
func (s *Space) FullCube() Cube {
	c := s.NewCube()
	for w := range c {
		c[w] = s.inMask[w] | s.outMask[w]
	}
	return c
}

// Copy returns an independent copy of c.
func (s *Space) Copy(c Cube) Cube {
	d := make(Cube, s.words)
	copy(d, c)
	return d
}

// Input returns the literal of input variable i in c.
func (s *Space) Input(c Cube, i int) Literal {
	b := 2 * i
	return Literal((c[b/64] >> (b % 64)) & 3)
}

// SetInput sets the literal of input variable i in c.
func (s *Space) SetInput(c Cube, i int, l Literal) {
	b := 2 * i
	c[b/64] = c[b/64]&^(3<<(b%64)) | uint64(l)<<(b%64)
}

// Output reports whether output o is present in c.
func (s *Space) Output(c Cube, o int) bool {
	b := 2*s.inputs + o
	return c[b/64]>>(b%64)&1 != 0
}

// SetOutput adds or removes output o from c.
func (s *Space) SetOutput(c Cube, o int, on bool) {
	b := 2*s.inputs + o
	if on {
		c[b/64] |= 1 << (b % 64)
	} else {
		c[b/64] &^= 1 << (b % 64)
	}
}

// Equal reports whether a and b are the same cube.
func (s *Space) Equal(a, b Cube) bool {
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the cube denotes the empty set: some input
// part is 00, or the space has outputs and the output part is all
// zero.
func (s *Space) IsEmpty(c Cube) bool {
	for i := 0; i < s.inputs; i++ {
		if s.Input(c, i) == Empty {
			return true
		}
	}
	if s.outputs > 0 {
		any := false
		for w := range c {
			if c[w]&s.outMask[w] != 0 {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	return false
}

// Contains reports whether a contains b as a set (b ⊆ a), assuming
// both are non-empty.
func (s *Space) Contains(a, b Cube) bool {
	for w := range a {
		if b[w]&^a[w] != 0 {
			return false
		}
	}
	return true
}

// And intersects a and b into a fresh cube.  The result may be empty;
// check with IsEmpty.
func (s *Space) And(a, b Cube) Cube {
	c := make(Cube, s.words)
	for w := range c {
		c[w] = a[w] & b[w]
	}
	return c
}

// Intersects reports whether a ∩ b is non-empty without allocating.
func (s *Space) Intersects(a, b Cube) bool {
	for i := 0; i < s.inputs; i++ {
		b2 := 2 * i
		if (a[b2/64]>>(b2%64))&(b[b2/64]>>(b2%64))&3 == 0 {
			return false
		}
	}
	if s.outputs > 0 {
		any := false
		for w := range a {
			if a[w]&b[w]&s.outMask[w] != 0 {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

// Distance returns the number of empty input parts of a ∩ b, plus one
// if the space has outputs and the intersection's output part is
// empty.  Distance zero means the cubes intersect; distance one makes
// the consensus non-trivial.
func (s *Space) Distance(a, b Cube) int {
	d := 0
	for i := 0; i < s.inputs; i++ {
		b2 := 2 * i
		if (a[b2/64]>>(b2%64))&(b[b2/64]>>(b2%64))&3 == 0 {
			d++
		}
	}
	if s.outputs > 0 {
		any := false
		for w := range a {
			if a[w]&b[w]&s.outMask[w] != 0 {
				any = true
				break
			}
		}
		if !any {
			d++
		}
	}
	return d
}

// Consensus returns the consensus of a and b, or nil if their distance
// is not exactly one.  When the conflicting part is an input variable
// the consensus raises it to don't care in the intersection of the
// remaining parts; when it is the output part the consensus takes the
// union of the outputs with the intersection of the inputs.
func (s *Space) Consensus(a, b Cube) Cube {
	if s.Distance(a, b) != 1 {
		return nil
	}
	c := s.And(a, b)
	for i := 0; i < s.inputs; i++ {
		if s.Input(c, i) == Empty {
			s.SetInput(c, i, DC)
			return c
		}
	}
	// The conflict is in the output part: take the union there.
	for w := range c {
		c[w] = c[w]&s.inMask[w] | (a[w]|b[w])&s.outMask[w]
	}
	return c
}

// ConsensusOutput returns the consensus of a and b taken on the
// output part: the intersection of the input parts with the union of
// the output parts.  It is non-nil when the space has outputs and
// every input part of the intersection is non-empty.  Unlike
// Consensus it also applies at distance zero: with three or more
// outputs the union of two *overlapping* output sets can be a strictly
// larger implicant that no distance-one consensus produces, and the
// iterated-consensus closure needs these cubes to reach every
// multiple-output prime.
func (s *Space) ConsensusOutput(a, b Cube) Cube {
	if s.outputs == 0 {
		return nil
	}
	c := s.And(a, b)
	for i := 0; i < s.inputs; i++ {
		if s.Input(c, i) == Empty {
			return nil
		}
	}
	for w := range c {
		c[w] = c[w]&s.inMask[w] | (a[w]|b[w])&s.outMask[w]
	}
	return c
}

// Cofactor returns the Shannon cofactor of c with respect to cube p
// (the "cube cofactor" of Espresso): nil when c ∩ p is empty,
// otherwise each part of the result is c's part OR the complement of
// p's part.  Cofactoring against a positive literal of variable x
// yields c with the x part forced to don't care when c depends on x
// positively.
func (s *Space) Cofactor(c, p Cube) Cube {
	if !s.Intersects(c, p) {
		return nil
	}
	r := make(Cube, s.words)
	for w := range r {
		full := s.inMask[w] | s.outMask[w]
		r[w] = (c[w] | (full &^ p[w])) & full
	}
	return r
}

// SuperCube returns the smallest cube containing every cube of the
// slice (their bitwise union), or nil if the slice is empty.
func (s *Space) SuperCube(cs []Cube) Cube {
	if len(cs) == 0 {
		return nil
	}
	r := s.Copy(cs[0])
	for _, c := range cs[1:] {
		for w := range r {
			r[w] |= c[w]
		}
	}
	return r
}

// InputWeight returns the number of don't-care input parts of c; a
// larger weight means a larger cube.
func (s *Space) InputWeight(c Cube) int {
	n := 0
	for i := 0; i < s.inputs; i++ {
		if s.Input(c, i) == DC {
			n++
		}
	}
	return n
}

// OutputCount returns the number of outputs present in c.
func (s *Space) OutputCount(c Cube) int {
	n := 0
	for w := range c {
		n += bits.OnesCount64(c[w] & s.outMask[w])
	}
	return n
}

// ParseCube parses PLA-style text for a cube: an input field of
// {0,1,-} characters followed (if the space has outputs) by an output
// field of {0,1} characters (4 and ~ are accepted as output don't
// cares and read as 0).  Fields may be separated by spaces or tabs.
func (s *Space) ParseCube(in, out string) (Cube, error) {
	if len(in) != s.inputs {
		return nil, fmt.Errorf("cube: input field %q has %d characters, want %d", in, len(in), s.inputs)
	}
	if len(out) != s.outputs {
		return nil, fmt.Errorf("cube: output field %q has %d characters, want %d", out, len(out), s.outputs)
	}
	c := s.NewCube()
	for i, ch := range in {
		switch ch {
		case '0':
			s.SetInput(c, i, Zero)
		case '1':
			s.SetInput(c, i, One)
		case '-', '2', 'x', 'X':
			s.SetInput(c, i, DC)
		default:
			return nil, fmt.Errorf("cube: invalid input character %q", ch)
		}
	}
	for o, ch := range out {
		switch ch {
		case '1':
			s.SetOutput(c, o, true)
		case '0', '~', '4', '2', '-':
			s.SetOutput(c, o, false)
		default:
			return nil, fmt.Errorf("cube: invalid output character %q", ch)
		}
	}
	return c, nil
}

// String renders c in PLA notation ("10-1 01" style).
func (s *Space) String(c Cube) string {
	var b strings.Builder
	for i := 0; i < s.inputs; i++ {
		b.WriteString(s.Input(c, i).String())
	}
	if s.outputs > 0 {
		b.WriteByte(' ')
		for o := 0; o < s.outputs; o++ {
			if s.Output(c, o) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// Minterms enumerates the input minterms of cube c restricted to
// output o (o is ignored when the space has no outputs, and no
// minterms are produced if the cube does not drive output o).  Each
// minterm is reported as an integer whose bit i is input variable i.
// The callback may return false to stop the enumeration early.  Spaces
// beyond 63 inputs do not fit the minterm mask and are rejected with
// an error.
func (s *Space) Minterms(c Cube, o int, visit func(m uint64) bool) error {
	if s.inputs > 63 {
		return fmt.Errorf("cube: minterm enumeration limited to 63 inputs, got %d", s.inputs)
	}
	if s.outputs > 0 && !s.Output(c, o) {
		return nil
	}
	var rec func(i int, m uint64) bool
	rec = func(i int, m uint64) bool {
		if i == s.inputs {
			return visit(m)
		}
		switch s.Input(c, i) {
		case Zero:
			return rec(i+1, m)
		case One:
			return rec(i+1, m|1<<i)
		case DC:
			return rec(i+1, m) && rec(i+1, m|1<<i)
		default:
			return true // empty part: no minterms
		}
	}
	rec(0, 0)
	return nil
}

// PackInput converts the input part of c to (value, mask) form: bit i
// of mask is set when input variable i is a don't care, and bit i of
// value is set when the variable is fixed to one.  An input minterm m
// then lies in c exactly when (m^value)&^mask == 0.  Cubes with an
// Empty input part have no minterms; ok reports false for them.
// Spaces beyond 63 inputs do not fit the packing and also report
// ok=false.
func (s *Space) PackInput(c Cube) (value, mask uint64, ok bool) {
	if s.inputs > 63 {
		return 0, 0, false
	}
	for i := 0; i < s.inputs; i++ {
		switch s.Input(c, i) {
		case One:
			value |= 1 << i
		case DC:
			mask |= 1 << i
		case Zero:
		default:
			return 0, 0, false // empty part: no minterms
		}
	}
	return value, mask, true
}

// PackOutputs returns the output part of c as a bitmask (bit o set
// when the cube drives output o).  Spaces beyond 64 outputs do not fit
// and report ok=false; a space with no outputs packs to 0, true.
func (s *Space) PackOutputs(c Cube) (outs uint64, ok bool) {
	if s.outputs > 64 {
		return 0, false
	}
	for o := 0; o < s.outputs; o++ {
		if s.Output(c, o) {
			outs |= 1 << o
		}
	}
	return outs, true
}

// CubeOfMinterm builds the single-minterm cube for input assignment m
// driving output o (ignored when the space has no outputs).
func (s *Space) CubeOfMinterm(m uint64, o int) Cube {
	c := s.NewCube()
	for i := 0; i < s.inputs; i++ {
		if m>>i&1 != 0 {
			s.SetInput(c, i, One)
		} else {
			s.SetInput(c, i, Zero)
		}
	}
	if s.outputs > 0 {
		s.SetOutput(c, o, true)
	}
	return c
}
