// Package interrupt implements the CLIs' two-stage interrupt
// contract: the first signal cancels a context, so solvers and servers
// unwind gracefully with their best-so-far answers; a second signal
// means "now" — the cleanup hook runs (profile flushes, partial
// output) and the process exits non-zero immediately instead of
// finishing the graceful path.
package interrupt

import (
	"context"
	"os"
	"os/signal"
	"sync"
)

// ExitCode is the forced-exit status of the second interrupt; 130 is
// the shell convention for "terminated by SIGINT".
const ExitCode = 130

// exit is the test seam for os.Exit.
var exit = os.Exit

// Handle installs the contract on parent for the given signals
// (typically os.Interrupt): the returned context cancels on the first
// signal, and a second signal runs cleanup (may be nil) then exits
// with ExitCode.  The returned stop releases the handler and watcher.
func Handle(parent context.Context, cleanup func(), sigs ...os.Signal) (context.Context, context.CancelFunc) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	return handle(parent, ch, cleanup, func() { signal.Stop(ch) })
}

// handle is Handle with the signal source injected (the test seam).
// release undoes the signal registration.
func handle(parent context.Context, ch <-chan os.Signal, cleanup, release func()) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			cancel() // first interrupt: graceful unwind
		case <-done:
			return
		}
		select {
		case <-ch: // second interrupt: forced exit
			if cleanup != nil {
				cleanup()
			}
			exit(ExitCode)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if release != nil {
				release()
			}
			close(done)
			cancel()
		})
	}
	return ctx, stop
}
