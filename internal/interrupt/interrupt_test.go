package interrupt

import (
	"context"
	"os"
	"testing"
	"time"
)

// fakeExit swaps the exit seam for a recording stub.
func fakeExit(t *testing.T) chan int {
	t.Helper()
	codes := make(chan int, 1)
	old := exit
	exit = func(code int) { codes <- code }
	t.Cleanup(func() { exit = old })
	return codes
}

func TestFirstSignalCancelsSecondExits(t *testing.T) {
	codes := fakeExit(t)
	ch := make(chan os.Signal, 2)
	cleaned := make(chan struct{}, 1)
	ctx, stop := handle(context.Background(), ch, func() { cleaned <- struct{}{} }, nil)
	defer stop()

	ch <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	select {
	case code := <-codes:
		t.Fatalf("first signal already exited with %d", code)
	default:
	}

	ch <- os.Interrupt
	select {
	case code := <-codes:
		if code != ExitCode {
			t.Fatalf("forced exit code %d, want %d", code, ExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
	select {
	case <-cleaned:
	default:
		t.Fatal("cleanup did not run before the forced exit")
	}
}

func TestStopReleasesWatcher(t *testing.T) {
	codes := fakeExit(t)
	ch := make(chan os.Signal, 2)
	released := false
	ctx, stop := handle(context.Background(), ch, nil, func() { released = true })
	stop()
	if !released {
		t.Fatal("stop did not release the signal registration")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop did not cancel the context")
	}
	stop() // idempotent
	select {
	case code := <-codes:
		t.Fatalf("exit(%d) called without any signal", code)
	default:
	}
}

func TestNilCleanupSecondSignal(t *testing.T) {
	codes := fakeExit(t)
	ch := make(chan os.Signal, 2)
	_, stop := handle(context.Background(), ch, nil, nil)
	defer stop()
	ch <- os.Interrupt
	ch <- os.Interrupt
	select {
	case code := <-codes:
		if code != ExitCode {
			t.Fatalf("exit code %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no forced exit")
	}
}
