package pla

import (
	"bytes"
	"strings"
	"testing"

	"ucp/internal/cube"
)

const sample = `
# a 3-input 2-output example with don't cares
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
110 10
1-1 11
000 -1
011 01
.e
`

func TestParseBasics(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Space.Inputs() != 3 || f.Space.Outputs() != 2 {
		t.Fatalf("space %d/%d", f.Space.Inputs(), f.Space.Outputs())
	}
	if f.Type != "fd" {
		t.Fatalf("type = %q", f.Type)
	}
	if len(f.InputLabels) != 3 || f.InputLabels[0] != "a" {
		t.Fatalf("ilb = %v", f.InputLabels)
	}
	// Line "000 -1": output 0 is DC, output 1 is ON → one F cube for
	// g, one D cube for f.
	if f.F.Len() != 4 {
		t.Fatalf("F has %d cubes, want 4", f.F.Len())
	}
	if f.D.Len() != 1 {
		t.Fatalf("D has %d cubes, want 1", f.D.Len())
	}
	d := f.D.Cubes[0]
	if !f.Space.Output(d, 0) || f.Space.Output(d, 1) {
		t.Fatal("DC cube outputs wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".i 2\n.o 1\n101 1\n",    // wrong width
		".i 2\n.o 1\n1z 1\n",     // bad input char
		".i 2\n.o 1\n11 z\n",     // bad output char
		"11 1\n",                 // cube before .i/.o
		".i x\n.o 1\n",           // bad .i
		".i 2\n.o 1\n.type zz\n", // bad type
		"",                       // no declarations at all
		".i 2\n.o 0\n",           // zero outputs rejected
	}
	for k, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d: error expected for %q", k, src)
		}
	}
}

func TestParseTypeFR(t *testing.T) {
	src := ".i 2\n.o 1\n.type fr\n11 1\n00 0\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.F.Len() != 1 || f.R.Len() != 1 || f.D.Len() != 0 {
		t.Fatalf("F=%d R=%d D=%d", f.F.Len(), f.R.Len(), f.D.Len())
	}
	// Implicit D = ¬(F ∪ R) = {01, 10}.
	d := f.DontCares()
	n := 0
	for m := uint64(0); m < 4; m++ {
		mc := f.Space.CubeOfMinterm(m, 0)
		if d.ContainsCube(mc) {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("implicit DC covers %d minterms, want 2", n)
	}
	offs := f.OffSets()
	if len(offs) != 1 || offs[0].Len() != 1 {
		t.Fatalf("offsets = %v", offs)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !f.F.EquivalentTo(g.F) {
		t.Fatalf("F changed across round trip:\n%s\nvs\n%s", f.F, g.F)
	}
	if !f.D.EquivalentTo(g.D) {
		t.Fatal("D changed across round trip")
	}
	if len(g.InputLabels) != 3 || g.InputLabels[2] != "c" {
		t.Fatalf("labels lost: %v", g.InputLabels)
	}
}

func TestOffSetsComplement(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	offs := f.OffSets()
	s := f.Space
	for o := 0; o < s.Outputs(); o++ {
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			mc := s.CubeOfMinterm(m, o)
			inOn := f.F.ContainsCube(mc)
			inDC := f.D.ContainsCube(mc)
			inOff := false
			for _, c := range offs[o].Cubes {
				// offs are pure input cubes: compare inputs only.
				ok := true
				for i := 0; i < s.Inputs(); i++ {
					bit := cube.Zero
					if m>>i&1 == 1 {
						bit = cube.One
					}
					if s.Input(c, i)&bit == 0 {
						ok = false
						break
					}
				}
				if ok {
					inOff = true
					break
				}
			}
			if inOff == (inOn || inDC) {
				t.Fatalf("output %d minterm %b: off=%v on=%v dc=%v", o, m, inOff, inOn, inDC)
			}
		}
	}
}

func TestPipeSeparator(t *testing.T) {
	src := ".i 2\n.o 1\n10|1\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.F.Len() != 1 {
		t.Fatal("pipe-separated cube not parsed")
	}
}

func TestIgnoredDirectives(t *testing.T) {
	src := ".i 1\n.o 1\n.phase 1\n.pair (a b)\n1 1\n.end\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.F.Len() != 1 {
		t.Fatal("cube after ignored directives lost")
	}
}
