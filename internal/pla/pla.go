// Package pla reads and writes the Berkeley PLA format used by
// Espresso and the two-level minimisation benchmark suites: ".i/.o"
// headers, one product term per line with an input field over
// {0,1,-} and an output field whose meaning depends on the ".type"
// declaration (f, fd, fr or fdr).
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ucp/internal/cube"
)

// File is a parsed PLA: the ON-set F, the don't-care set D and the
// OFF-set R as multiple-output covers over a common space.  Depending
// on .type some of the three may be empty (the missing one is defined
// implicitly as the complement of the other two).
type File struct {
	Space        *cube.Space
	F, D, R      *cube.Cover
	Type         string // "f", "fd", "fr" or "fdr"
	InputLabels  []string
	OutputLabels []string
}

// Parse reads a PLA from r.  Unknown dot-directives are ignored, as
// Espresso does.  The default .type is "fd".
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := &File{Type: "fd"}
	var ni, no = -1, -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if line[0] == '.' {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".i":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla: line %d: malformed .i", lineNo)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 || v > 1<<20 {
					return nil, fmt.Errorf("pla: line %d: bad input count %q", lineNo, fields[1])
				}
				ni = v
			case ".o":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla: line %d: malformed .o", lineNo)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 1 || v > 1<<20 {
					return nil, fmt.Errorf("pla: line %d: bad output count %q", lineNo, fields[1])
				}
				no = v
			case ".type":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla: line %d: malformed .type", lineNo)
				}
				switch fields[1] {
				case "f", "fd", "fr", "fdr":
					f.Type = fields[1]
				default:
					return nil, fmt.Errorf("pla: line %d: unsupported type %q", lineNo, fields[1])
				}
			case ".ilb":
				f.InputLabels = fields[1:]
			case ".ob":
				f.OutputLabels = fields[1:]
			case ".e", ".end":
				goto done
			case ".p":
				// informative product count; ignored
			default:
				// other directives (.phase, .pair, ...) are ignored
			}
			continue
		}
		// A cube line.
		if ni < 0 || no < 0 {
			return nil, fmt.Errorf("pla: line %d: cube before .i/.o declarations", lineNo)
		}
		if f.Space == nil {
			f.Space = cube.NewSpace(ni, no)
			f.F = cube.NewCover(f.Space)
			f.D = cube.NewCover(f.Space)
			f.R = cube.NewCover(f.Space)
		}
		if err := f.addLine(line, lineNo); err != nil {
			return nil, err
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f.Space == nil {
		if ni < 0 || no < 0 {
			return nil, fmt.Errorf("pla: missing .i/.o declarations")
		}
		f.Space = cube.NewSpace(ni, no)
		f.F = cube.NewCover(f.Space)
		f.D = cube.NewCover(f.Space)
		f.R = cube.NewCover(f.Space)
	}
	return f, nil
}

// addLine parses one product-term line into the F/D/R covers.
func (f *File) addLine(line string, lineNo int) error {
	s := f.Space
	// Strip separators: espresso allows the input and output fields to
	// be separated by blanks or '|'.
	compact := make([]byte, 0, len(line))
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '|':
		default:
			compact = append(compact, line[i])
		}
	}
	if len(compact) != s.Inputs()+s.Outputs() {
		return fmt.Errorf("pla: line %d: term %q has %d characters, want %d",
			lineNo, line, len(compact), s.Inputs()+s.Outputs())
	}
	in := s.NewCube()
	for i := 0; i < s.Inputs(); i++ {
		switch compact[i] {
		case '0':
			s.SetInput(in, i, cube.Zero)
		case '1':
			s.SetInput(in, i, cube.One)
		case '-', '2', 'x', 'X':
			s.SetInput(in, i, cube.DC)
		default:
			return fmt.Errorf("pla: line %d: bad input character %q", lineNo, compact[i])
		}
	}
	var onOuts, dcOuts, offOuts []int
	for o := 0; o < s.Outputs(); o++ {
		switch c := compact[s.Inputs()+o]; c {
		case '1':
			onOuts = append(onOuts, o)
		case '-', '~', '2':
			dcOuts = append(dcOuts, o)
		case '4':
			// Espresso's "output is in neither set" marker; same as 0
			// for f/fd types.
			if f.Type == "fr" || f.Type == "fdr" {
				offOuts = append(offOuts, o)
			}
		case '0':
			if f.Type == "fr" || f.Type == "fdr" {
				offOuts = append(offOuts, o)
			}
			// For f/fd types a 0 simply means the product does not
			// assert this output.
		default:
			return fmt.Errorf("pla: line %d: bad output character %q", lineNo, c)
		}
	}
	addTo := func(cv *cube.Cover, outs []int) {
		if len(outs) == 0 {
			return
		}
		c := s.Copy(in)
		for _, o := range outs {
			s.SetOutput(c, o, true)
		}
		cv.Add(c)
	}
	addTo(f.F, onOuts)
	if f.Type == "fd" || f.Type == "fdr" {
		addTo(f.D, dcOuts)
	}
	addTo(f.R, offOuts)
	return nil
}

// Write emits the file in ".type fd" form: one line per F cube
// (outputs marked 1) and one per D cube (outputs marked -).  Cubes
// driving no output are skipped.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := f.Space
	fmt.Fprintf(bw, ".i %d\n.o %d\n", s.Inputs(), s.Outputs())
	if len(f.InputLabels) == s.Inputs() && s.Inputs() > 0 {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(f.InputLabels, " "))
	}
	if len(f.OutputLabels) == s.Outputs() && s.Outputs() > 0 {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(f.OutputLabels, " "))
	}
	nd := 0
	if f.D != nil {
		nd = f.D.Len()
	}
	fmt.Fprintf(bw, ".type fd\n.p %d\n", f.F.Len()+nd)
	emit := func(c cube.Cube, mark byte) {
		for i := 0; i < s.Inputs(); i++ {
			bw.WriteString(s.Input(c, i).String())
		}
		bw.WriteByte(' ')
		for o := 0; o < s.Outputs(); o++ {
			if s.Output(c, o) {
				bw.WriteByte(mark)
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	for _, c := range f.F.Cubes {
		emit(c, '1')
	}
	if f.D != nil {
		for _, c := range f.D.Cubes {
			emit(c, '-')
		}
	}
	bw.WriteString(".e\n")
	return bw.Flush()
}

// restrict collects the cubes of cv driving output o.
func (f *File) restrict(cv *cube.Cover, o int) *cube.Cover {
	out := cube.NewCover(f.Space)
	for _, c := range cv.Cubes {
		if f.Space.Output(c, o) {
			out.Add(c)
		}
	}
	return out
}

// OffSets returns, for every output, the OFF-set as a cover of pure
// input cubes: the declared R cubes for fr/fdr types, or the
// complement of ON ∪ DC when the type leaves R implicit.
func (f *File) OffSets() []*cube.Cover {
	s := f.Space
	offs := make([]*cube.Cover, s.Outputs())
	for o := 0; o < s.Outputs(); o++ {
		if f.Type == "fr" || f.Type == "fdr" {
			offs[o] = f.restrict(f.R, o)
			continue
		}
		onDC := f.restrict(f.F, o)
		for _, c := range f.restrict(f.D, o).Cubes {
			onDC.Add(c)
		}
		offs[o] = onDC.ComplementInputs()
	}
	return offs
}

// DontCares returns an explicit don't-care cover: the declared D for
// f/fd/fdr types, or the complement of ON ∪ OFF per output for fr
// files, where D is implicit.
func (f *File) DontCares() *cube.Cover {
	if f.Type != "fr" {
		return f.D
	}
	s := f.Space
	d := cube.NewCover(s)
	for o := 0; o < s.Outputs(); o++ {
		onOff := f.restrict(f.F, o)
		for _, c := range f.restrict(f.R, o).Cubes {
			onOff.Add(c)
		}
		for _, c := range onOff.ComplementInputs().Cubes {
			dc := s.Copy(c)
			for oo := 0; oo < s.Outputs(); oo++ {
				s.SetOutput(dc, oo, oo == o)
			}
			d.Add(dc)
		}
	}
	return d
}
