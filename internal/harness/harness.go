// Package harness regenerates every table and figure of the paper's
// evaluation section on the replica instances: the Figure 1 bound
// comparison, the easy-cyclic aggregate experiment, Tables 1–2
// (ZDD_SCG vs Espresso normal/strong) and Tables 3–4 (ZDD_SCG vs the
// exact solver on the same problems), plus the Proposition 1 bound
// study and the ablation sweeps of DESIGN.md §5.
//
// The absolute numbers differ from the paper — the instances are
// seeded synthetic replicas and the machine is not an UltraSparc — but
// each experiment preserves the comparison the paper draws, and the
// writers print paper-style rows so the shapes can be checked side by
// side.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"ucp/internal/benchmarks"
	"ucp/internal/bnb"
	"ucp/internal/espresso"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/primes"
	"ucp/internal/scg"
	"ucp/internal/simplex"
	"ucp/internal/solvecache"
)

// sessionCache, when installed with UseCache, is threaded into every
// scg and bnb solve the harness runs, so experiments that revisit the
// same covering problem (ablation sweeps share instances, Tables 3–4
// re-solve Table 1–2 functions) pay for each distinct problem once.
var sessionCache *solvecache.Cache

// UseCache installs (or, with nil, removes) a cross-solve cache for
// every subsequent harness experiment.  Install it before starting an
// experiment; it is not safe to swap mid-run.
func UseCache(c *solvecache.Cache) { sessionCache = c }

func scgOpts(opt scg.Options) scg.Options {
	if opt.Cache == nil {
		opt.Cache = sessionCache
	}
	return opt
}

func bnbOpts(opt bnb.Options) bnb.Options {
	if opt.Cache == nil {
		opt.Cache = sessionCache
	}
	return opt
}

// Covering builds the unate covering problem of an instance replica
// (primes × ON-minterms, unit costs).  The front end — dense bit-slice
// sweep or iterated consensus — is picked per instance.
func Covering(in benchmarks.Instance) *matrix.Problem {
	f := in.PLA()
	prs, _ := primes.GenerateAutoBudget(f.F, f.D, nil)
	prob, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
	if err != nil {
		panic(fmt.Sprintf("harness: %s: %v", in.Name, err))
	}
	return prob
}

// HeuristicRow is one line of the Table 1 / Table 2 comparison:
// ZDD_SCG against the Espresso-style minimiser in both modes on the
// same function.
type HeuristicRow struct {
	Name               string
	SCGSol             int
	SCGOptimal         bool
	SCGCoreTime        time.Duration // CC(s) column: cyclic core computation
	SCGTotalTime       time.Duration // T(s) column
	CoreRows, CoreCols int
	EspSol             int
	EspTime            time.Duration
	EspStrongSol       int
	EspStrongTime      time.Duration
	AllocMB            float64 // memory allocated by the ZDD_SCG run (the paper's M column)
	PaperSCG, PaperEsp int     // paper-reported values, for the writeup
}

func heuristicRow(in benchmarks.Instance, opt scg.Options) HeuristicRow {
	f := in.PLA()
	row := HeuristicRow{Name: in.Name, PaperSCG: in.PaperSol}

	t0 := time.Now()
	en := espresso.Minimize(f.F, f.D, espresso.Normal)
	row.EspSol, row.EspTime = en.Cover.Len(), time.Since(t0)

	t0 = time.Now()
	es := espresso.Minimize(f.F, f.D, espresso.Strong)
	row.EspStrongSol, row.EspStrongTime = es.Cover.Len(), time.Since(t0)

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	// Tables 1–2 reproduce the paper's T(s) comparison, so the pipeline
	// keeps the paper-era iterated-consensus front end here: with the
	// dense bit-slice sweep the replica-scale timing shape inverts (SCG
	// beats Espresso end to end) — that effect is measured separately by
	// the front-end study, not folded into the reproduction table.
	t0 = time.Now()
	prs := primes.Generate(f.F, f.D)
	prob, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
	if err != nil {
		panic(err)
	}
	front := time.Since(t0) // implicit front end: primes + matrix
	res := scg.Solve(prob, scgOpts(opt))
	runtime.ReadMemStats(&m1)
	row.AllocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
	row.SCGSol = res.Cost
	row.SCGOptimal = res.ProvedOptimal
	row.SCGCoreTime = front + res.Stats.CyclicCoreTime
	row.SCGTotalTime = front + res.Stats.TotalTime
	row.CoreRows, row.CoreCols = res.Stats.CoreRows, res.Stats.CoreCols
	return row
}

// Table1 reproduces Table 1: the difficult cyclic instances.
func Table1() []HeuristicRow {
	var out []HeuristicRow
	for _, in := range benchmarks.DifficultCyclic() {
		out = append(out, heuristicRow(in, scg.Options{Seed: in.Seed}))
	}
	return out
}

// Table2 reproduces Table 2: the challenging instances.
func Table2() []HeuristicRow {
	var out []HeuristicRow
	for _, in := range benchmarks.Challenging() {
		out = append(out, heuristicRow(in, scg.Options{Seed: in.Seed}))
	}
	return out
}

// WriteHeuristic prints rows in the paper's Table 1/2 layout.
func WriteHeuristic(w io.Writer, rows []HeuristicRow) {
	fmt.Fprintf(w, "%-10s %6s %8s %8s %7s %6s %8s %6s %8s\n",
		"Name", "Sol", "CC(s)", "T(s)", "M(MB)", "Esp", "T(s)", "EspS", "T(s)")
	for _, r := range rows {
		star := " "
		if r.SCGOptimal {
			star = "*"
		}
		fmt.Fprintf(w, "%-10s %5d%s %8.2f %8.2f %7.1f %6d %8.2f %6d %8.2f\n",
			r.Name, r.SCGSol, star,
			r.SCGCoreTime.Seconds(), r.SCGTotalTime.Seconds(), r.AllocMB,
			r.EspSol, r.EspTime.Seconds(),
			r.EspStrongSol, r.EspStrongTime.Seconds())
	}
}

// ExactRow is one line of the Table 3 / Table 4 comparison: ZDD_SCG
// against the exact branch-and-bound solver on the same covering
// problem.
type ExactRow struct {
	Name         string
	SCGSol       int
	SCGLB        float64 // lower bound (parenthesised in the paper)
	SCGOptimal   bool
	SCGTime      time.Duration
	Runs         int // the paper's MaxIter column
	ExactSol     int
	ExactOptimal bool
	ExactNodes   int64
	ExactTime    time.Duration
}

func exactRow(in benchmarks.Instance, numIter int, nodeBudget int64) ExactRow {
	prob := Covering(in)
	row := ExactRow{Name: in.Name}

	t0 := time.Now()
	res := scg.Solve(prob, scgOpts(scg.Options{Seed: in.Seed, NumIter: numIter}))
	row.SCGTime = time.Since(t0)
	row.SCGSol, row.SCGLB, row.SCGOptimal = res.Cost, res.LB, res.ProvedOptimal
	row.Runs = res.Stats.Runs
	if row.Runs == 0 {
		row.Runs = 1 // solved before any stochastic restart
	}

	// The exact solver runs standalone (no warm bound from the
	// heuristic), as Scherzo did in the paper's comparison.
	t0 = time.Now()
	ex := bnb.Solve(prob, bnbOpts(bnb.Options{MaxNodes: nodeBudget}))
	row.ExactTime = time.Since(t0)
	row.ExactNodes = ex.Nodes
	row.ExactOptimal = ex.Optimal
	if ex.Solution != nil {
		row.ExactSol = ex.Cost
	} else {
		row.ExactSol = res.Cost // budget ran out before finding any cover
	}
	return row
}

// Table3 reproduces Table 3: difficult cyclic instances, heuristic vs
// exact.  nodeBudget caps the exact search (0 = unlimited, as the
// paper's day-long Scherzo runs; the default binaries pass a budget).
func Table3(numIter int, nodeBudget int64) []ExactRow {
	var out []ExactRow
	for _, in := range benchmarks.DifficultCyclic() {
		out = append(out, exactRow(in, numIter, nodeBudget))
	}
	return out
}

// Table4 reproduces Table 4: the challenging subset the paper
// re-examines against Scherzo.
func Table4(numIter int, nodeBudget int64) []ExactRow {
	want := map[string]bool{}
	for _, n := range benchmarks.Table4Names() {
		want[n] = true
	}
	var out []ExactRow
	for _, in := range benchmarks.Challenging() {
		if want[in.Name] {
			out = append(out, exactRow(in, numIter, nodeBudget))
		}
	}
	return out
}

// WriteExact prints rows in the paper's Table 3/4 layout.
func WriteExact(w io.Writer, rows []ExactRow) {
	fmt.Fprintf(w, "%-10s %12s %9s %8s %8s %10s %9s\n",
		"Name", "Sol(LB)", "T(s)", "MaxIter", "Exact", "Nodes", "T(s)")
	for _, r := range rows {
		sol := fmt.Sprintf("%d(%d)", r.SCGSol, int(math.Ceil(r.SCGLB-1e-9)))
		if r.SCGOptimal {
			sol = fmt.Sprintf("%d*", r.SCGSol)
		}
		exact := fmt.Sprintf("%d", r.ExactSol)
		if !r.ExactOptimal {
			exact += "H" // best effort, like the paper's H marks
		}
		fmt.Fprintf(w, "%-10s %12s %9.2f %8d %8s %10d %9.2f\n",
			r.Name, sol, r.SCGTime.Seconds(), r.Runs,
			exact, r.ExactNodes, r.ExactTime.Seconds())
	}
}

// EasySummary aggregates the 49-instance easy-cyclic experiment the
// way the paper reports it: total ZDD_SCG cost vs total lower bound
// (gap), and the Espresso totals.
type EasySummary struct {
	Instances      int
	SolvedOptimal  int
	TotalSCG       int
	TotalLB        int
	TotalEsp       int
	TotalEspStrong int
	TotalExact     int // exact optima, for validating "all optimal"
	GapPercent     float64
}

// EasyCyclic runs the first experiment of §5.
func EasyCyclic() EasySummary {
	var s EasySummary
	for _, in := range benchmarks.EasyCyclic() {
		f := in.PLA()
		prs, _ := primes.GenerateAutoBudget(f.F, f.D, nil)
		prob, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
		if err != nil {
			panic(err)
		}
		res := scg.Solve(prob, scgOpts(scg.Options{Seed: in.Seed, NumIter: 3}))
		ex := bnb.Solve(prob, bnbOpts(bnb.Options{}))
		en := espresso.Minimize(f.F, f.D, espresso.Normal)
		es := espresso.Minimize(f.F, f.D, espresso.Strong)
		s.Instances++
		if res.ProvedOptimal {
			s.SolvedOptimal++
		}
		s.TotalSCG += res.Cost
		s.TotalLB += int(math.Ceil(res.LB - 1e-9))
		s.TotalEsp += en.Cover.Len()
		s.TotalEspStrong += es.Cover.Len()
		s.TotalExact += ex.Cost
	}
	if s.TotalSCG > 0 {
		s.GapPercent = 100 * float64(s.TotalSCG-s.TotalLB) / float64(s.TotalSCG)
	}
	return s
}

// WriteEasy prints the easy-cyclic aggregate.
func WriteEasy(w io.Writer, s EasySummary) {
	fmt.Fprintf(w, "easy cyclic: %d instances, %d proved optimal by ZDD_SCG\n", s.Instances, s.SolvedOptimal)
	fmt.Fprintf(w, "  total ZDD_SCG   %5d   (exact optimum total %d)\n", s.TotalSCG, s.TotalExact)
	fmt.Fprintf(w, "  total LB        %5d   (gap %.2f%%; paper: 0.22%%)\n", s.TotalLB, s.GapPercent)
	fmt.Fprintf(w, "  total Espresso  %5d   strong %d\n", s.TotalEsp, s.TotalEspStrong)
}

// Figure1Report carries the bound chain of the Figure 1 witness, in
// both cost regimes.
type Figure1Report struct {
	MIS        int
	DualAscent float64
	LinearRel  float64
	Rounded    int
	Optimum    int
	UniformMIS int
	UniformDA  float64
	UniformLR  float64
}

// Figure1 evaluates the reconstructed witness matrix.
func Figure1() Figure1Report {
	p := benchmarks.Figure1()
	var r Figure1Report
	r.MIS, _ = matrix.MISBound(p)
	_, r.DualAscent = lagrangian.DualAscent(p, nil)
	r.LinearRel = lpValue(p)
	r.Rounded = int(math.Ceil(r.LinearRel - 1e-9))
	r.Optimum = bnb.Solve(p, bnbOpts(bnb.Options{})).Cost
	u := benchmarks.Figure1Uniform()
	r.UniformMIS, _ = matrix.MISBound(u)
	_, r.UniformDA = lagrangian.DualAscent(u, nil)
	r.UniformLR = lpValue(u)
	return r
}

// WriteFigure1 prints the Figure 1 bound comparison.
func WriteFigure1(w io.Writer, r Figure1Report) {
	fmt.Fprintf(w, "Figure 1 witness (4 rows x 5 columns, c = 1,1,1,2,2):\n")
	fmt.Fprintf(w, "  LB_MIS = %d   LB_DA = %g   LB_LR = %.4g (-> %d)   optimum = %d\n",
		r.MIS, r.DualAscent, r.LinearRel, r.Rounded, r.Optimum)
	fmt.Fprintf(w, "  uniform costs: LB_MIS = %d   LB_DA = %g   LB_LR = %.4g (-> %d)\n",
		r.UniformMIS, r.UniformDA, r.UniformLR, int(math.Ceil(r.UniformLR-1e-9)))
}

func lpValue(p *matrix.Problem) float64 {
	n := p.NCol
	var a [][]float64
	var b []float64
	for _, r := range p.Rows {
		row := make([]float64, n)
		for _, j := range r {
			row[j] = 1
		}
		a = append(a, row)
		b = append(b, 1)
	}
	for j := 0; j < n; j++ {
		box := make([]float64, n)
		box[j] = -1
		a = append(a, box)
		b = append(b, -1)
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	_, z, err := simplex.Solve(c, a, b)
	if err != nil {
		return math.NaN()
	}
	return z
}

// BoundsRow is one instance of the Proposition 1 study: the four
// bounds on a random covering matrix.
type BoundsRow struct {
	Seed       int64
	Rows, Cols int
	MIS        int
	DualAscent float64
	Lagrangian float64
	LinearRel  float64
	Optimum    int
}

// BoundsStudy evaluates the Proposition 1 chain on n random covering
// instances.
func BoundsStudy(n int) []BoundsRow {
	var out []BoundsRow
	for k := 0; k < n; k++ {
		seed := int64(4000 + k)
		p := benchmarks.RandomCovering(seed, 12+k%8, 12+k%6, 0.25, 3)
		q, _ := p.Compact()
		row := BoundsRow{Seed: seed, Rows: len(q.Rows), Cols: q.NCol}
		row.MIS, _ = matrix.MISBound(q)
		_, row.DualAscent = lagrangian.DualAscent(q, nil)
		sg := lagrangian.Subgradient(q, lagrangian.Params{}, nil, 0)
		row.Lagrangian = sg.LB
		row.LinearRel = lpValue(q)
		row.Optimum = bnb.Solve(q, bnbOpts(bnb.Options{})).Cost
		out = append(out, row)
	}
	return out
}

// WriteBounds prints the Proposition 1 study.
func WriteBounds(w io.Writer, rows []BoundsRow) {
	fmt.Fprintf(w, "%6s %5s %5s %6s %8s %8s %8s %6s\n",
		"seed", "rows", "cols", "MIS", "DA", "Lagr", "LR", "opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %5d %5d %6d %8.3f %8.3f %8.3f %6d\n",
			r.Seed, r.Rows, r.Cols, r.MIS, r.DualAscent, r.Lagrangian, r.LinearRel, r.Optimum)
	}
}
