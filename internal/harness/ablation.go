package harness

import (
	"fmt"
	"io"
	"time"

	"ucp/internal/benchmarks"
	"ucp/internal/lagrangian"
	"ucp/internal/scg"
)

// ablationInstances is the instance set the ablation sweeps run on:
// the instances whose optimum the single-run heuristic does not
// trivially certify, so configuration changes show up as cost and
// certification differences rather than ties.
func ablationInstances() []benchmarks.Instance {
	var out []benchmarks.Instance
	for _, in := range append(benchmarks.DifficultCyclic(), benchmarks.Challenging()...) {
		switch in.Name {
		case "exam", "max1024", "test4", "ex1010", "test3":
			out = append(out, in)
		}
	}
	return out
}

// AblationResult is one configuration of an ablation sweep: total
// solution cost over the ablation set, how many instances were proved
// optimal, and the total time.
type AblationResult struct {
	Label   string
	Total   int
	Optimal int
	Time    time.Duration
}

func runAblation(label string, opt func(benchmarks.Instance) scg.Options) AblationResult {
	res := AblationResult{Label: label}
	t0 := time.Now()
	for _, in := range ablationInstances() {
		prob := Covering(in)
		r := scg.Solve(prob, scgOpts(opt(in)))
		res.Total += r.Cost
		if r.ProvedOptimal {
			res.Optimal++
		}
	}
	res.Time = time.Since(t0)
	return res
}

// AblationAlpha sweeps the σ_j = c̃_j − α·μ_j rating weight around the
// paper's α = 2.
func AblationAlpha() []AblationResult {
	var out []AblationResult
	for _, alpha := range []float64{0.5, 1, 2, 4, 8} {
		a := alpha
		out = append(out, runAblation(fmt.Sprintf("alpha=%g", a),
			func(in benchmarks.Instance) scg.Options {
				return scg.Options{Seed: in.Seed, Params: lagrangian.Params{Alpha: a}}
			}))
	}
	return out
}

// AblationPenalties compares the full fixing machinery against runs
// without penalty fixing, without promising-column fixing, and with
// neither (σ-rating only).
func AblationPenalties() []AblationResult {
	return []AblationResult{
		runAblation("full", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed}
		}),
		runAblation("no-penalties", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed, DisablePenalties: true}
		}),
		runAblation("no-promising", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed, DisablePromising: true}
		}),
		runAblation("sigma-only", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed, DisablePenalties: true, DisablePromising: true}
		}),
	}
}

// AblationImplicit compares the ZDD implicit reduction phase against
// purely explicit reductions.
func AblationImplicit() []AblationResult {
	return []AblationResult{
		runAblation("implicit+explicit", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed}
		}),
		runAblation("explicit-only", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed, DisableImplicit: true}
		}),
	}
}

// AblationRestarts sweeps the stochastic multi-run parameter NumIter.
func AblationRestarts() []AblationResult {
	var out []AblationResult
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		out = append(out, runAblation(fmt.Sprintf("NumIter=%d", n),
			func(in benchmarks.Instance) scg.Options {
				return scg.Options{Seed: in.Seed, NumIter: n}
			}))
	}
	return out
}

// GammaResult compares one greedy rating function across the ablation
// set: total cover cost when the subgradient's primal heuristic is
// restricted to that variant (measured standalone, on the true costs).
type GammaResult struct {
	Variant lagrangian.GammaVariant
	Label   string
	Total   int
}

// AblationGamma measures the four rating functions of §3.5 in
// isolation: each builds one greedy cover per instance from the true
// costs.
func AblationGamma() []GammaResult {
	labels := []string{"c/n", "c/lg(n+1)", "c/(n·lg(n+1))", "row-importance"}
	var out []GammaResult
	for v := lagrangian.GammaPerRow; v <= lagrangian.GammaRowImportance; v++ {
		g := GammaResult{Variant: v, Label: labels[v]}
		for _, in := range ablationInstances() {
			prob := Covering(in)
			q, _ := prob.Compact()
			sol := lagrangian.GreedyLagrangian(q, lagrangian.FloatCosts(q), v)
			g.Total += q.CostOf(sol)
		}
		out = append(out, g)
	}
	return out
}

// WarmStartResult compares multiplier initialisations for the
// subgradient ascent (§3.3: "a good estimate λ₀ is provided by the
// dual problem").
type WarmStartResult struct {
	Label   string
	TotalLB float64 // sum of lagrangian bounds over the set
	Iters   int     // total subgradient iterations used
}

// AblationWarmStart contrasts the dual-ascent λ₀ (the paper's choice)
// with an all-zero start under a tight iteration budget.
func AblationWarmStart() []WarmStartResult {
	budget := lagrangian.Params{MaxIters: 60}
	var warm, cold WarmStartResult
	warm.Label, cold.Label = "dual-ascent start", "zero start"
	for _, in := range ablationInstances() {
		prob := Covering(in)
		red := scg.ImplicitReduce(prob, 1, 1)
		core, _ := red.Core.Compact()
		if len(core.Rows) == 0 {
			continue
		}
		w := lagrangian.Subgradient(core, budget, nil, 0)
		warm.TotalLB += w.LB
		warm.Iters += w.Iters
		zero := &lagrangian.Multipliers{
			Lambda: make([]float64, len(core.Rows)),
			Mu:     make([]float64, core.NCol),
		}
		c := lagrangian.Subgradient(core, budget, zero, 0)
		cold.TotalLB += c.LB
		cold.Iters += c.Iters
	}
	return []WarmStartResult{warm, cold}
}

// WriteAblation prints an ablation sweep.
func WriteAblation(w io.Writer, name string, rows []AblationResult) {
	fmt.Fprintf(w, "%s:\n", name)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s total=%4d optimal=%d/%d t=%.2fs\n",
			r.Label, r.Total, r.Optimal, len(ablationInstances()), r.Time.Seconds())
	}
}

// AblationSolverWarmStart compares the full solver with and without
// inheriting multipliers across fixing phases (§3.2).
func AblationSolverWarmStart() []AblationResult {
	return []AblationResult{
		runAblation("warm-start", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed}
		}),
		runAblation("cold-restart", func(in benchmarks.Instance) scg.Options {
			return scg.Options{Seed: in.Seed, DisableWarmStart: true}
		}),
	}
}
