package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"ucp/internal/benchmarks"
	"ucp/internal/budget"
	"ucp/internal/primes"
)

// FrontEndRow is one instance of the prime-generation front-end study:
// the dense bit-slice sweep against iterated consensus on the same
// random function.
type FrontEndRow struct {
	Name    string
	Inputs  int
	Outputs int
	Cubes   int

	DensePrimes   int
	DenseTime     time.Duration
	DenseComplete bool

	ConsensusPrimes   int
	ConsensusTime     time.Duration
	ConsensusComplete bool // false: cut off by the per-run cap
}

// frontEndCorpus sweeps the regime boundary between the two front
// ends: a narrow sparse function where iterated consensus wins, the
// dense mid-width regime where its quadratic work-set scans explode,
// and a wide sparse function only the streaming pipeline reaches at
// all (consensus still finishes — the lattice is big but the work set
// stays small).
var frontEndCorpus = []struct {
	inputs, outputs, cubes int
	density                float64
	seed                   int64
}{
	{12, 2, 40, 0.3, 5},
	{16, 2, 60, 0.5, 11},
	{16, 2, 100, 0.5, 11},
	{20, 3, 80, 0.3, 7},
}

// FrontEndStudy times both front ends on the corpus.  The dense sweep
// runs unbounded (its cost is fixed by the care set); each consensus
// run is capped at cap wall clock and reports a partial work set when
// it trips.
func FrontEndStudy(cap time.Duration) []FrontEndRow {
	var out []FrontEndRow
	for _, c := range frontEndCorpus {
		f := benchmarks.RandomPLA(c.seed, c.inputs, c.outputs, c.cubes, c.density, 2)
		row := FrontEndRow{
			Name:   fmt.Sprintf("rand%d-%dx%d", c.inputs, c.cubes, c.outputs),
			Inputs: c.inputs, Outputs: c.outputs, Cubes: c.cubes,
		}

		t0 := time.Now()
		dp, ok := primes.GenerateDenseBudget(f.F, f.D, nil)
		row.DenseTime = time.Since(t0)
		row.DensePrimes, row.DenseComplete = dp.Len(), ok

		ctx, cancel := context.WithTimeout(context.Background(), cap)
		tr := budget.Budget{Context: ctx}.Tracker()
		t0 = time.Now()
		cp, ok := primes.GenerateBudget(f.F, f.D, tr)
		cancel()
		row.ConsensusTime = time.Since(t0)
		row.ConsensusPrimes, row.ConsensusComplete = cp.Len(), ok

		out = append(out, row)
	}
	return out
}

// WriteFrontEnd prints the front-end study.
func WriteFrontEnd(w io.Writer, cap time.Duration, rows []FrontEndRow) {
	fmt.Fprintf(w, "%-14s %4s %4s %6s %8s %10s %10s %8s\n",
		"instance", "in", "out", "cubes", "primes", "dense(s)", "cons(s)", "ratio")
	for _, r := range rows {
		cons := fmt.Sprintf("%10.3f", r.ConsensusTime.Seconds())
		ratio := fmt.Sprintf("%7.1fx", float64(r.ConsensusTime)/float64(r.DenseTime))
		if !r.ConsensusComplete {
			cons = fmt.Sprintf(">%9.3f", cap.Seconds())
			ratio = fmt.Sprintf(">%6.1fx", float64(cap)/float64(r.DenseTime))
		}
		fmt.Fprintf(w, "%-14s %4d %4d %6d %8d %10.3f %s %s\n",
			r.Name, r.Inputs, r.Outputs, r.Cubes, r.DensePrimes,
			r.DenseTime.Seconds(), cons, ratio)
	}
	fmt.Fprintf(w, "(consensus capped at %v per instance; primes column is the dense count, identical whenever both complete)\n", cap)
}
