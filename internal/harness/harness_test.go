package harness

import (
	"bytes"
	"math"
	"testing"
)

func TestFigure1Report(t *testing.T) {
	r := Figure1()
	if r.MIS != 1 || math.Abs(r.DualAscent-2) > 1e-9 || math.Abs(r.LinearRel-2.5) > 1e-6 {
		t.Fatalf("bound chain wrong: %+v", r)
	}
	if r.Rounded != 3 || r.Optimum != 3 {
		t.Fatalf("rounding/optimum wrong: %+v", r)
	}
	if r.UniformMIS != 1 || math.Abs(r.UniformDA-1) > 1e-9 {
		t.Fatalf("uniform bounds wrong: %+v", r)
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestBoundsStudyOrdering(t *testing.T) {
	rows := BoundsStudy(12)
	for _, r := range rows {
		if float64(r.MIS) > r.DualAscent+1e-6 {
			t.Fatalf("MIS > DA on seed %d", r.Seed)
		}
		if r.DualAscent > r.LinearRel+1e-6 {
			t.Fatalf("DA > LR on seed %d", r.Seed)
		}
		if r.Lagrangian > r.LinearRel+1e-6 {
			t.Fatalf("Lagr > LR on seed %d", r.Seed)
		}
		if r.LinearRel > float64(r.Optimum)+1e-6 {
			t.Fatalf("LR above optimum on seed %d", r.Seed)
		}
	}
	var buf bytes.Buffer
	WriteBounds(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty study output")
	}
}

// TestTable1Shape checks the paper's central qualitative claims on the
// difficult cyclic tier: ZDD_SCG never loses to either Espresso mode,
// strong never loses to normal, and Espresso is faster.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table is slow")
	}
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	faster := 0
	for _, r := range rows {
		if r.SCGSol > r.EspSol || r.SCGSol > r.EspStrongSol {
			t.Fatalf("%s: SCG %d worse than espresso %d/%d", r.Name, r.SCGSol, r.EspSol, r.EspStrongSol)
		}
		if r.EspStrongSol > r.EspSol {
			t.Fatalf("%s: strong %d worse than normal %d", r.Name, r.EspStrongSol, r.EspSol)
		}
		if r.EspTime < r.SCGTotalTime {
			faster++
		}
		if r.CoreRows == 0 {
			t.Fatalf("%s: empty cyclic core", r.Name)
		}
	}
	if faster < 5 {
		t.Fatalf("espresso faster on only %d/7 instances; the paper's speed shape is lost", faster)
	}
	var buf bytes.Buffer
	WriteHeuristic(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table is slow")
	}
	rows := Table3(2, 300_000)
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.ExactOptimal && r.SCGSol < r.ExactSol {
			t.Fatalf("%s: heuristic %d below certified optimum %d", r.Name, r.SCGSol, r.ExactSol)
		}
		if r.ExactOptimal && math.Ceil(r.SCGLB-1e-9) > float64(r.ExactSol) {
			t.Fatalf("%s: SCG lower bound %v above optimum %d", r.Name, r.SCGLB, r.ExactSol)
		}
		if r.SCGOptimal && r.ExactOptimal && r.SCGSol != r.ExactSol {
			t.Fatalf("%s: both certified but disagree (%d vs %d)", r.Name, r.SCGSol, r.ExactSol)
		}
	}
	var buf bytes.Buffer
	WriteExact(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestAblationGammaCoversAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := AblationGamma()
	if len(rows) != 4 {
		t.Fatalf("%d variants, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("variant %s produced no cover", r.Label)
		}
	}
}

func TestAblationWarmStartHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows := AblationWarmStart()
	if len(rows) != 2 {
		t.Fatal("want warm and cold rows")
	}
	// The dual-ascent start must not be worse than the zero start
	// under the same tight iteration budget (Proposition 1: a properly
	// initialised lagrangian bound dominates the dual ascent bound).
	if rows[0].TotalLB < rows[1].TotalLB-1e-6 {
		t.Fatalf("dual-ascent start LB %v below zero start %v", rows[0].TotalLB, rows[1].TotalLB)
	}
}
