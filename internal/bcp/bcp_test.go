package bcp

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/bnb"
	"ucp/internal/matrix"
)

// bruteForce finds the optimum by trying every assignment.
func bruteForce(p *Problem) (int, bool) {
	best := math.MaxInt
	feasible := false
	for mask := 0; mask < 1<<p.NCol; mask++ {
		ok := true
		for _, clause := range p.Rows {
			sat := false
			for _, l := range clause {
				bit := mask>>l.Col&1 == 1
				if bit != l.Neg {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		feasible = true
		c := 0
		for j := 0; j < p.NCol; j++ {
			if mask>>j&1 == 1 {
				c += p.Cost[j]
			}
		}
		if c < best {
			best = c
		}
	}
	return best, feasible
}

func randomBCP(rng *rand.Rand, maxRows, maxCols int) *Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]Lit, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			switch rng.Intn(5) {
			case 0:
				rows[i] = append(rows[i], Lit{Col: j})
			case 1:
				rows[i] = append(rows[i], Lit{Col: j, Neg: true})
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], Lit{Col: rng.Intn(nc), Neg: rng.Intn(2) == 0})
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(4)
	}
	p, err := New(rows, nc, cost)
	if err != nil {
		panic(err)
	}
	return p
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	infeasibles := 0
	for trial := 0; trial < 400; trial++ {
		p := randomBCP(rng, 8, 8)
		want, feasible := bruteForce(p)
		res := Solve(p, Options{})
		if !res.Optimal {
			t.Fatalf("trial %d: search not complete without a cap", trial)
		}
		if res.Feasible != feasible {
			t.Fatalf("trial %d: feasibility %v, want %v", trial, res.Feasible, feasible)
		}
		if !feasible {
			infeasibles++
			continue
		}
		if res.Cost != want {
			t.Fatalf("trial %d: cost %d, brute force %d", trial, res.Cost, want)
		}
		// The returned assignment must satisfy every clause.
		set := make(map[int]bool)
		for _, j := range res.Solution {
			set[j] = true
		}
		for i, clause := range p.Rows {
			sat := false
			for _, l := range clause {
				if set[l.Col] != l.Neg {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("trial %d: clause %d unsatisfied by %v", trial, i, res.Solution)
			}
		}
	}
	if infeasibles == 0 {
		t.Log("note: generator produced no infeasible instances this run")
	}
}

func TestUnateLiftMatchesUCP(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 200; trial++ {
		nr, nc := 1+rng.Intn(8), 1+rng.Intn(8)
		rows := make([][]int, nr)
		for i := range rows {
			for j := 0; j < nc; j++ {
				if rng.Intn(3) == 0 {
					rows[i] = append(rows[i], j)
				}
			}
			if len(rows[i]) == 0 {
				rows[i] = append(rows[i], rng.Intn(nc))
			}
		}
		cost := make([]int, nc)
		for j := range cost {
			cost[j] = 1 + rng.Intn(3)
		}
		u := matrix.MustNew(rows, nc, cost)
		want := bnb.Solve(u, bnb.Options{}).Cost
		lift, err := FromUnate(u)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := Solve(lift, Options{})
		if !got.Feasible || got.Cost != want {
			t.Fatalf("trial %d: binate lift cost %d, unate optimum %d", trial, got.Cost, want)
		}
	}
}

func TestInfeasible(t *testing.T) {
	p, err := New([][]Lit{{{Col: 0}}, {{Col: 0, Neg: true}}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p, Options{})
	if res.Feasible {
		t.Fatal("x ∧ ¬x reported feasible")
	}
}

func TestNegativeLiteralsAreFree(t *testing.T) {
	// Clause {¬0} alone: satisfied by leaving 0 unset, cost 0.
	p, err := New([][]Lit{{{Col: 0, Neg: true}}}, 1, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p, Options{})
	if !res.Feasible || res.Cost != 0 || len(res.Solution) != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestExclusionModel(t *testing.T) {
	// Pick at least one of {0,1}, at least one of {2,3}, but 0 and 2
	// are mutually exclusive (¬0 ∨ ¬2).  Costs favour 0 and 2, so the
	// exclusion forces a detour.
	p, err := New([][]Lit{
		{{Col: 0}, {Col: 1}},
		{{Col: 2}, {Col: 3}},
		{{Col: 0, Neg: true}, {Col: 2, Neg: true}},
	}, 4, []int{1, 3, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p, Options{})
	if res.Cost != 4 {
		t.Fatalf("cost %d, want 4 (one cheap + one expensive)", res.Cost)
	}
}

func TestTautologicalClauseDropped(t *testing.T) {
	p, err := New([][]Lit{{{Col: 0}, {Col: 0, Neg: true}}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 0 {
		t.Fatal("tautological clause kept")
	}
	res := Solve(p, Options{})
	if !res.Feasible || res.Cost != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New([][]Lit{{{Col: 2}}}, 1, nil); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := New(nil, 1, []int{-1}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := New(nil, 2, []int{1}); err == nil {
		t.Fatal("short cost vector accepted")
	}
}

func TestMaxNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	p := randomBCP(rng, 30, 25)
	res := Solve(p, Options{MaxNodes: 2})
	if res.Optimal && res.Nodes > 2 {
		t.Fatal("claimed optimal past the node cap")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// 0 forced on, which forbids 1, which forces 2 on.
	p, err := New([][]Lit{
		{{Col: 0}},
		{{Col: 0, Neg: true}, {Col: 1, Neg: true}},
		{{Col: 1}, {Col: 2}},
	}, 3, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p, Options{})
	if !res.Feasible || res.Cost != 2 {
		t.Fatalf("got %+v, want cost 2 via {0,2}", res)
	}
}
