// Package bcp implements the Binate Covering Problem, the
// generalisation of unate covering the paper points to in its
// introduction ("...or even for the more general Binate Covering
// Problem"): every row is a clause of signed column literals, and a
// 0/1 assignment to the columns must satisfy every clause at minimum
// cost.  Binate covering is the natural model for problems such as
// state minimisation with mandatory exclusions, technology mapping and
// boolean relations, where choosing one element can forbid another.
//
// The solver is a DPLL-flavoured branch and bound: unit propagation,
// clause cleanup, row dominance, a unate-subproblem independent-set
// lower bound, and binary branching on a variable of the most
// constrained clause.
package bcp

import (
	"fmt"
	"sort"

	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// Lit is a signed column literal: column Col, negated when Neg (a
// negated literal is satisfied by *not* choosing the column).
type Lit struct {
	Col int
	Neg bool
}

// Problem is a binate covering instance.
type Problem struct {
	Rows [][]Lit // clauses; each must contain a satisfied literal
	NCol int
	Cost []int // cost of setting a column to 1 (nothing is paid for 0)
}

// New validates and normalises a problem: duplicate literals collapse,
// clauses containing both polarities of a column are tautological and
// dropped.  A nil cost vector means unit costs.
func New(rows [][]Lit, ncol int, cost []int) (*Problem, error) {
	if cost == nil {
		cost = make([]int, ncol)
		for j := range cost {
			cost[j] = 1
		}
	}
	if len(cost) != ncol {
		return nil, fmt.Errorf("bcp: %d costs for %d columns", len(cost), ncol)
	}
	for j, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("bcp: column %d has negative cost", j)
		}
	}
	p := &Problem{NCol: ncol, Cost: cost}
	for i, r := range rows {
		seen := make(map[Lit]bool, len(r))
		taut := false
		clause := make([]Lit, 0, len(r))
		for _, l := range r {
			if l.Col < 0 || l.Col >= ncol {
				return nil, fmt.Errorf("bcp: row %d references column %d outside universe %d", i, l.Col, ncol)
			}
			if seen[Lit{l.Col, !l.Neg}] {
				taut = true
				break
			}
			if !seen[l] {
				seen[l] = true
				clause = append(clause, l)
			}
		}
		if taut {
			continue
		}
		sort.Slice(clause, func(a, b int) bool {
			if clause[a].Col != clause[b].Col {
				return clause[a].Col < clause[b].Col
			}
			return !clause[a].Neg && clause[b].Neg
		})
		p.Rows = append(p.Rows, clause)
	}
	return p, nil
}

// FromUnate lifts a unate covering problem into the binate form (all
// literals positive).  Optima coincide.  The error reports invalid
// input (negative costs, out-of-range column ids) instead of assuming
// u already passed matrix.New validation.
func FromUnate(u *matrix.Problem) (*Problem, error) {
	rows := make([][]Lit, len(u.Rows))
	for i, r := range u.Rows {
		for _, j := range r {
			if j < 0 {
				return nil, fmt.Errorf("bcp: row %d references negative column %d", i, j)
			}
			rows[i] = append(rows[i], Lit{Col: j})
		}
	}
	return New(rows, u.NCol, append([]int(nil), u.Cost...))
}

// Options controls the search.
type Options struct {
	// MaxNodes caps the branch-and-bound nodes (0 = unlimited); when
	// exhausted the best solution so far is returned with Optimal
	// unset.  It is merged with Budget.SearchCap (the tighter cap
	// wins).
	MaxNodes int64
	// Budget bounds the search (deadline, node cap).  When it runs out
	// the best satisfying assignment found so far is returned with
	// Interrupted set; unlike the unate solvers there is no cheap
	// completion heuristic for binate clauses, so an interrupted search
	// that never reached a satisfying assignment reports Feasible
	// false without proving infeasibility (check Optimal).
	Budget budget.Budget
}

// Result of a binate solve.
type Result struct {
	// Feasible reports whether any assignment satisfies all clauses.
	Feasible bool
	// Solution lists the columns set to 1 in the best assignment.
	Solution []int
	Cost     int
	Optimal  bool
	Nodes    int64
	// Interrupted reports that the budget (or MaxNodes) stopped the
	// search early.
	Interrupted bool
	// StopReason says which budget limit ran out.
	StopReason budget.Reason
}

const (
	unknown int8 = iota
	zero
	one
)

type solver struct {
	p        *Problem
	opt      Options
	tr       *budget.Tracker
	nodes    int64
	exceeded bool
	best     []int8
	bestCost int
}

// Solve finds a minimum-cost satisfying assignment.
func Solve(p *Problem, opt Options) *Result {
	b := opt.Budget
	if opt.MaxNodes > 0 && (b.SearchCap == 0 || opt.MaxNodes < b.SearchCap) {
		b.SearchCap = opt.MaxNodes
	}
	s := &solver{p: p, opt: opt, tr: b.Tracker(), bestCost: 1 << 30}
	assign := make([]int8, p.NCol)
	s.search(assign, 0)
	res := &Result{Nodes: s.nodes, Optimal: !s.exceeded}
	if r := s.tr.Reason(); r != budget.None {
		res.Interrupted = true
		res.StopReason = r
	}
	if s.best == nil {
		return res // a completed search proves infeasibility
	}
	res.Feasible = true
	res.Cost = s.bestCost
	for j, v := range s.best {
		if v == one {
			res.Solution = append(res.Solution, j)
		}
	}
	return res
}

// propagate applies unit propagation to completion.  It returns false
// on conflict.  assign is modified in place.
func (s *solver) propagate(assign []int8) bool {
	for {
		changed := false
		for _, clause := range s.p.Rows {
			sat := false
			var unit *Lit
			unassigned := 0
			for k := range clause {
				l := clause[k]
				switch assign[l.Col] {
				case unknown:
					unassigned++
					unit = &clause[k]
				case one:
					if !l.Neg {
						sat = true
					}
				case zero:
					if l.Neg {
						sat = true
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch unassigned {
			case 0:
				return false // falsified clause
			case 1:
				if unit.Neg {
					assign[unit.Col] = zero
				} else {
					assign[unit.Col] = one
				}
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}

// cost sums the price of the columns already set to one.
func (s *solver) cost(assign []int8) int {
	c := 0
	for j, v := range assign {
		if v == one {
			c += s.p.Cost[j]
		}
	}
	return c
}

// lowerBound computes an admissible bound for the partial assignment:
// the paid cost plus an independent-set bound over the still
// unsatisfied clauses that contain only positive unassigned literals
// (a unate subproblem embedded in the remainder).
func (s *solver) lowerBound(assign []int8) int {
	base := s.cost(assign)
	var unate [][]int
	for _, clause := range s.p.Rows {
		sat, pureUnate := false, true
		var cols []int
		for _, l := range clause {
			switch assign[l.Col] {
			case one:
				if !l.Neg {
					sat = true
				}
			case zero:
				if l.Neg {
					sat = true
				}
			case unknown:
				if l.Neg {
					pureUnate = false
				} else {
					cols = append(cols, l.Col)
				}
			}
			if sat {
				break
			}
		}
		if !sat && pureUnate && len(cols) > 0 {
			unate = append(unate, cols)
		}
	}
	if len(unate) == 0 {
		return base
	}
	sub, err := matrix.New(unate, s.p.NCol, s.p.Cost)
	if err != nil {
		return base
	}
	lb, _ := matrix.MISBound(sub)
	return base + lb
}

// search explores assignments; depth counts decisions for reporting.
func (s *solver) search(assign []int8, depth int) {
	s.nodes++
	if s.tr.AddSearchNodes(1) {
		s.exceeded = true
		return
	}
	work := make([]int8, len(assign))
	copy(work, assign)
	if !s.propagate(work) {
		return
	}
	if s.lowerBound(work) >= s.bestCost {
		return
	}

	// Find the most constrained unresolved clause.
	bestClause := -1
	bestOpen := 1 << 30
	for i, clause := range s.p.Rows {
		sat := false
		open := 0
		for _, l := range clause {
			switch work[l.Col] {
			case one:
				sat = !l.Neg
			case zero:
				sat = l.Neg
			case unknown:
				open++
			}
			if sat {
				break
			}
		}
		if !sat && open > 0 && open < bestOpen {
			bestClause, bestOpen = i, open
		}
	}
	if bestClause < 0 {
		// All clauses satisfied: record the solution (unassigned
		// columns default to zero, which is free).
		c := s.cost(work)
		if c < s.bestCost {
			s.bestCost = c
			s.best = make([]int8, len(work))
			copy(s.best, work)
		}
		return
	}

	// Branch on an unknown variable of that clause: the satisfying
	// polarity first.
	var v int
	var firstNeg bool
	for _, l := range s.p.Rows[bestClause] {
		if work[l.Col] == unknown {
			v, firstNeg = l.Col, l.Neg
			break
		}
	}
	order := [2]int8{one, zero}
	if firstNeg {
		order = [2]int8{zero, one}
	}
	for _, val := range order {
		work[v] = val
		s.search(work, depth+1)
		if s.exceeded {
			return
		}
	}
	work[v] = unknown
}
