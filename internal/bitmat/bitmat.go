// Package bitmat provides a dense bit-matrix representation of a
// covering problem's row/column incidence together with word-parallel
// kernels for the operations every solver layer hammers: subset tests
// (row and column dominance), popcounts (essentiality, coverage
// counting) and masked intersections (greedy cover updates, coverage
// of a candidate solution).
//
// The layout is the DenseQMC insight applied to the paper's explicit
// phase: a row is one strip of ⌈ncols/64⌉ uint64 words, a column one
// strip of ⌈nrows/64⌉ words, and both orientations are materialised so
// dominance checks on either axis are straight word loops.  On the
// cyclic cores this library actually solves (hundreds of rows and
// columns), a subset test is a handful of AND-NOT words instead of a
// merge over sorted []int slices, and a coverage count is a popcount
// instead of a map probe per element.
//
// The package is dependency-free; internal/matrix decides when the
// dense representation pays off (see matrix.DenseEligible) and falls
// back to the sparse path above a size/density threshold.
package bitmat

import "math/bits"

const wordShift = 6

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + 63) >> wordShift }

// Vec is a fixed-capacity bitset backed by 64-bit words.
type Vec []uint64

// NewVec returns an all-zero bitset able to hold n bits.
func NewVec(n int) Vec { return make(Vec, Words(n)) }

// Set sets bit i.
func (v Vec) Set(i int) { v[i>>wordShift] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (v Vec) Clear(i int) { v[i>>wordShift] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (v Vec) Has(i int) bool { return v[i>>wordShift]&(1<<(uint(i)&63)) != 0 }

// Zero clears every bit.
func (v Vec) Zero() {
	for k := range v {
		v[k] = 0
	}
}

// SetAll sets bits 0..n-1 in whole words (n must be the bit capacity
// the vector was allocated for, so no word extends past it).
func (v Vec) SetAll(n int) {
	for k := range v {
		v[k] = ^uint64(0)
	}
	if tail := uint(n) & 63; tail != 0 && len(v) > 0 {
		v[len(v)-1] = (1 << tail) - 1
	}
}

// Copy overwrites v with w (equal word counts).
func (v Vec) Copy(w Vec) { copy(v, w) }

// Popcount returns the number of set bits.
func (v Vec) Popcount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports v ⊆ w.
func (v Vec) SubsetOf(w Vec) bool {
	for k, x := range v {
		if x&^w[k] != 0 {
			return false
		}
	}
	return true
}

// Equal reports v == w.
func (v Vec) Equal(w Vec) bool {
	for k, x := range v {
		if x != w[k] {
			return false
		}
	}
	return true
}

// AndPopcount returns |v ∩ w| without materialising the intersection.
func (v Vec) AndPopcount(w Vec) int {
	n := 0
	for k, x := range v {
		n += bits.OnesCount64(x & w[k])
	}
	return n
}

// Intersects reports whether v ∩ w is non-empty.
func (v Vec) Intersects(w Vec) bool {
	for k, x := range v {
		if x&w[k] != 0 {
			return true
		}
	}
	return false
}

// Or folds w into v.
func (v Vec) Or(w Vec) {
	for k := range v {
		v[k] |= w[k]
	}
}

// AndNot removes w's bits from v.
func (v Vec) AndNot(w Vec) {
	for k := range v {
		v[k] &^= w[k]
	}
}

// AndNotPopcount removes w's bits from v and returns the number of
// bits still set, in one pass over the words.
func (v Vec) AndNotPopcount(w Vec) int {
	n := 0
	for k := range v {
		x := v[k] &^ w[k]
		v[k] = x
		n += bits.OnesCount64(x)
	}
	return n
}

// Range calls fn for every set bit in ascending order until fn returns
// false.
func (v Vec) Range(fn func(i int) bool) {
	for k, w := range v {
		base := k << wordShift
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits appends the indices of the set bits to out and returns it.
func (v Vec) Bits(out []int) []int {
	v.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Fold returns the OR of all words: bit g of the result is set when
// some bit i with i mod 64 == g is set.  The fold is the 64-bit
// occupancy signature the dominance engines use to reject subset
// candidates in one word: v ⊆ w implies Fold(v) &^ Fold(w) == 0.
func (v Vec) Fold() uint64 {
	var f uint64
	for _, w := range v {
		f |= w
	}
	return f
}

// First returns the index of the lowest set bit, or -1 when empty.
func (v Vec) First() int {
	for k, w := range v {
		if w != 0 {
			return k<<wordShift + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Matrix is a dense 0/1 incidence matrix held in both orientations:
// row-major strips over the column universe and column-major strips
// over the row universe.  The two views are kept in sync by the
// mutating kernels (KillRow, KillCol).
type Matrix struct {
	NRows, NCols int
	rw, cw       int // words per row strip / per column strip
	row, col     []uint64
}

// New returns an all-zero nrows × ncols matrix.
func New(nrows, ncols int) *Matrix {
	m := &Matrix{NRows: nrows, NCols: ncols, rw: Words(ncols), cw: Words(nrows)}
	m.row = make([]uint64, nrows*m.rw)
	m.col = make([]uint64, ncols*m.cw)
	return m
}

// Build loads a sparse row list (column ids per row, ids < ncols) into
// a dense matrix.
func Build(rows [][]int, ncols int) *Matrix {
	m := New(len(rows), ncols)
	for i, r := range rows {
		for _, j := range r {
			m.SetBit(i, j)
		}
	}
	return m
}

// SetBit sets entry (i, j) in both orientations.
func (m *Matrix) SetBit(i, j int) {
	m.Row(i).Set(j)
	m.Col(j).Set(i)
}

// Has reports entry (i, j).
func (m *Matrix) Has(i, j int) bool { return m.Row(i).Has(j) }

// Row returns the row-i bitset over columns (a live view, not a copy).
func (m *Matrix) Row(i int) Vec { return Vec(m.row[i*m.rw : (i+1)*m.rw]) }

// Col returns the column-j bitset over rows (a live view, not a copy).
func (m *Matrix) Col(j int) Vec { return Vec(m.col[j*m.cw : (j+1)*m.cw]) }

// RowLen returns the popcount of row i.
func (m *Matrix) RowLen(i int) int { return m.Row(i).Popcount() }

// ColLen returns the popcount of column j.
func (m *Matrix) ColLen(j int) int { return m.Col(j).Popcount() }

// KillRow zeroes row i in both orientations.
func (m *Matrix) KillRow(i int) {
	m.Row(i).Range(func(j int) bool {
		m.Col(j).Clear(i)
		return true
	})
	m.Row(i).Zero()
}

// KillCol zeroes column j in both orientations.
func (m *Matrix) KillCol(j int) {
	m.Col(j).Range(func(i int) bool {
		m.Row(i).Clear(j)
		return true
	})
	m.Col(j).Zero()
}

// CoverCounts writes, for every row, the number of its columns present
// in sel (a bitset over columns).  out must have NRows entries.
func (m *Matrix) CoverCounts(sel Vec, out []int) {
	for i := 0; i < m.NRows; i++ {
		out[i] = m.Row(i).AndPopcount(sel)
	}
}

// IsCover reports whether every row intersects sel (a bitset over
// columns).  Rows that are entirely empty count as uncovered.
func (m *Matrix) IsCover(sel Vec) bool {
	for i := 0; i < m.NRows; i++ {
		if !m.Row(i).Intersects(sel) {
			return false
		}
	}
	return true
}
