package bitmat

import (
	"math/rand"
	"testing"
)

func randSets(rng *rand.Rand, n, universe int) [][]int {
	out := make([][]int, n)
	for i := range out {
		seen := make(map[int]bool)
		for k := 0; k < rng.Intn(universe+1); k++ {
			j := rng.Intn(universe)
			if !seen[j] {
				seen[j] = true
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

func naiveSubset(a, b []int) bool {
	in := make(map[int]bool)
	for _, j := range b {
		in[j] = true
	}
	for _, j := range a {
		if !in[j] {
			return false
		}
	}
	return true
}

func TestVecOpsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(300) // spans 1..5 words incl. partial tails
		sets := randSets(rng, 2, universe)
		a, b := NewVec(universe), NewVec(universe)
		for _, j := range sets[0] {
			a.Set(j)
		}
		for _, j := range sets[1] {
			b.Set(j)
		}
		if got, want := a.Popcount(), len(sets[0]); got != want {
			t.Fatalf("popcount %d != %d", got, want)
		}
		if got, want := a.SubsetOf(b), naiveSubset(sets[0], sets[1]); got != want {
			t.Fatalf("subset %v != %v (%v vs %v)", got, want, sets[0], sets[1])
		}
		inter := 0
		for _, j := range sets[0] {
			if b.Has(j) {
				inter++
			}
		}
		if got := a.AndPopcount(b); got != inter {
			t.Fatalf("and-popcount %d != %d", got, inter)
		}
		if got, want := a.Intersects(b), inter > 0; got != want {
			t.Fatalf("intersects %v != %v", got, want)
		}
		var bitsOut []int
		bitsOut = a.Bits(bitsOut[:0])
		if len(bitsOut) != len(sets[0]) {
			t.Fatalf("bits returned %d indices, want %d", len(bitsOut), len(sets[0]))
		}
		for k := 1; k < len(bitsOut); k++ {
			if bitsOut[k-1] >= bitsOut[k] {
				t.Fatal("bits not ascending")
			}
		}
		c := NewVec(universe)
		c.Copy(a)
		c.AndNot(b)
		for _, j := range sets[0] {
			if c.Has(j) == b.Has(j) {
				t.Fatal("andnot wrong")
			}
		}
		c.Or(b)
		for _, j := range sets[1] {
			if !c.Has(j) {
				t.Fatal("or wrong")
			}
		}
	}
}

func TestVecFirstRangeEarlyStop(t *testing.T) {
	v := NewVec(200)
	if v.First() != -1 {
		t.Fatal("empty vec has a first bit")
	}
	v.Set(77)
	v.Set(140)
	if v.First() != 77 {
		t.Fatalf("first = %d", v.First())
	}
	count := 0
	v.Range(func(i int) bool {
		count++
		return false // stop immediately
	})
	if count != 1 {
		t.Fatalf("range visited %d bits after stop", count)
	}
}

func TestMatrixViewsStayInSync(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		nr, nc := 1+rng.Intn(80), 1+rng.Intn(130)
		rows := randSets(rng, nr, nc)
		m := Build(rows, nc)
		check := func() {
			for i := 0; i < nr; i++ {
				for j := 0; j < nc; j++ {
					if m.Row(i).Has(j) != m.Col(j).Has(i) {
						t.Fatalf("orientation mismatch at (%d,%d)", i, j)
					}
				}
			}
		}
		check()
		// Kill a few random rows and columns; views must stay in sync.
		for k := 0; k < 5; k++ {
			if rng.Intn(2) == 0 {
				m.KillRow(rng.Intn(nr))
			} else {
				m.KillCol(rng.Intn(nc))
			}
		}
		check()
		for i := 0; i < nr; i++ {
			if m.RowLen(i) != m.Row(i).Popcount() {
				t.Fatal("rowlen mismatch")
			}
		}
	}
}

func TestCoverKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		nr, nc := 1+rng.Intn(60), 1+rng.Intn(90)
		rows := randSets(rng, nr, nc)
		m := Build(rows, nc)
		sel := NewVec(nc)
		var chosen []int
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				sel.Set(j)
				chosen = append(chosen, j)
			}
		}
		counts := make([]int, nr)
		m.CoverCounts(sel, counts)
		allCovered := true
		for i, r := range rows {
			want := 0
			for _, j := range r {
				for _, c := range chosen {
					if c == j {
						want++
					}
				}
			}
			if counts[i] != want {
				t.Fatalf("row %d count %d != %d", i, counts[i], want)
			}
			if want == 0 {
				allCovered = false
			}
		}
		if m.IsCover(sel) != allCovered {
			t.Fatalf("iscover %v != %v", m.IsCover(sel), allCovered)
		}
	}
}
