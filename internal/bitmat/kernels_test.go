package bitmat

import (
	"math"
	"math/rand"
	"testing"
)

// The gather kernels must replay the exact accumulation sequence of
// the naive loops they replace — the engine's bit-identity contract
// rests on it — so every comparison here is on float bits, not values.

func TestGatherSubBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		k := rng.Intn(2 * n)
		idx32 := make([]int32, k)
		idx := make([]int, k)
		for q := 0; q < k; q++ {
			r := rng.Intn(n)
			idx32[q], idx[q] = int32(r), r
		}
		base := rng.NormFloat64()

		want := base
		for _, i := range idx {
			want -= v[i]
		}
		if got := GatherSub32(base, idx32, v); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("GatherSub32 = %x, naive loop = %x", math.Float64bits(got), math.Float64bits(want))
		}
		if got := GatherSub(base, idx, v); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("GatherSub = %x, naive loop = %x", math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestFoldKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50)
		v := make([]float64, n)
		c := make([]int, n)
		for i := range v {
			v[i] = rng.NormFloat64()
			c[i] = rng.Intn(1000)
		}
		sum, dot, sq := 0.0, 0.0, 0.0
		for i := range v {
			sum += v[i]
			dot += v[i] * float64(c[i])
			sq += v[i] * v[i]
		}
		if got := Sum(v); math.Float64bits(got) != math.Float64bits(sum) {
			t.Fatal("Sum differs from left-to-right fold")
		}
		if got := DotInts(v, c); math.Float64bits(got) != math.Float64bits(dot) {
			t.Fatal("DotInts differs from left-to-right fold")
		}
		if got := SumSquares(v); math.Float64bits(got) != math.Float64bits(sq) {
			t.Fatal("SumSquares differs from left-to-right fold")
		}
	}
}

func TestGrowVec(t *testing.T) {
	var v Vec
	v = GrowVec(v, 100)
	if len(v) != Words(100) {
		t.Fatalf("len = %d, want %d", len(v), Words(100))
	}
	v.Set(7)
	v.Set(99)
	// Shrinking reuses the backing array and must clear it.
	w := GrowVec(v, 64)
	if &w[0] != &v[0] {
		t.Fatal("GrowVec reallocated although capacity sufficed")
	}
	if w.Popcount() != 0 {
		t.Fatal("GrowVec returned a non-zero bitset")
	}
	// Growing past capacity allocates fresh zeros.
	g := GrowVec(w, 1000)
	if len(g) != Words(1000) || g.Popcount() != 0 {
		t.Fatal("GrowVec grow path wrong")
	}
}

func randRows(rng *rand.Rand, nr, nc int) [][]int {
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
	}
	return rows
}

func matricesEqual(a, b *Matrix) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		return false
	}
	for i := 0; i < a.NRows; i++ {
		if !a.Row(i).Equal(b.Row(i)) {
			return false
		}
	}
	for j := 0; j < a.NCols; j++ {
		if !a.Col(j).Equal(b.Col(j)) {
			return false
		}
	}
	return true
}

// TestBuildFromMatchesBuild drives one reused Matrix through a shrinking
// and growing sequence of shapes; after every BuildFrom it must be
// indistinguishable from a freshly Build-ed matrix.
func TestBuildFromMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var m Matrix
	for _, shape := range [][2]int{{70, 130}, {5, 9}, {64, 64}, {130, 70}, {1, 1}, {200, 3}} {
		nr, nc := shape[0], shape[1]
		rows := randRows(rng, nr, nc)
		m.BuildFrom(rows, nc)
		fresh := Build(rows, nc)
		if !matricesEqual(&m, fresh) {
			t.Fatalf("BuildFrom(%dx%d) differs from Build", nr, nc)
		}
	}
}

func TestResetZeroes(t *testing.T) {
	var m Matrix
	m.Reset(10, 10)
	for i := 0; i < 10; i++ {
		m.SetBit(i, i)
	}
	m.Reset(10, 10)
	for i := 0; i < 10; i++ {
		if m.Row(i).Popcount() != 0 {
			t.Fatal("Reset left stale bits")
		}
	}
}
