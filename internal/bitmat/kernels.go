package bitmat

// Fused float gather kernels for the lagrangian engine.  The sparse
// matrix keeps a column-major (CSC) mirror — one contiguous int32
// index array — and the subgradient loop folds a multiplier vector
// down a column (or across a row) into a single register accumulator.
// Each kernel subtracts strictly in index order, so a gather down
// column j is bit-identical to the row-major scatter it replaces: the
// same values leave the same accumulator in the same sequence.

// GatherSub32 returns base − Σ v[idx[k]], subtracting in index order.
func GatherSub32(base float64, idx []int32, v []float64) float64 {
	acc := base
	for _, i := range idx {
		acc -= v[i]
	}
	return acc
}

// GatherSub is GatherSub32 over an []int index list (a sparse row).
func GatherSub(base float64, idx []int, v []float64) float64 {
	acc := base
	for _, i := range idx {
		acc -= v[i]
	}
	return acc
}

// Sum folds v left to right.
func Sum(v []float64) float64 {
	acc := 0.0
	for _, x := range v {
		acc += x
	}
	return acc
}

// DotInts returns Σ v[j]·float64(c[j]), accumulating in index order.
func DotInts(v []float64, c []int) float64 {
	acc := 0.0
	for j, x := range v {
		acc += x * float64(c[j])
	}
	return acc
}

// SumSquares returns Σ v[j]², accumulating in index order.
func SumSquares(v []float64) float64 {
	acc := 0.0
	for _, x := range v {
		acc += x * x
	}
	return acc
}

// GrowVec returns an all-zero bitset able to hold n bits, reusing v's
// backing array when it is large enough.
func GrowVec(v Vec, n int) Vec {
	w := Words(n)
	if cap(v) < w {
		return make(Vec, w)
	}
	v = v[:w]
	v.Zero()
	return v
}

// Reset reshapes m to an all-zero nrows × ncols matrix, reusing the
// backing arrays when they are large enough — the scratch-pool path of
// the restart portfolio rebuilds its dense sidecar here once per
// subgradient phase instead of allocating one.
func (m *Matrix) Reset(nrows, ncols int) {
	m.NRows, m.NCols = nrows, ncols
	m.rw, m.cw = Words(ncols), Words(nrows)
	rn, cn := nrows*m.rw, ncols*m.cw
	if cap(m.row) < rn {
		m.row = make([]uint64, rn)
	} else {
		m.row = m.row[:rn]
		clear(m.row)
	}
	if cap(m.col) < cn {
		m.col = make([]uint64, cn)
	} else {
		m.col = m.col[:cn]
		clear(m.col)
	}
}

// BuildFrom loads a sparse row list into m, reusing its backing arrays
// (the reusable counterpart of Build).
func (m *Matrix) BuildFrom(rows [][]int, ncols int) {
	m.Reset(len(rows), ncols)
	for i, r := range rows {
		for _, j := range r {
			m.SetBit(i, j)
		}
	}
}
