package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnownLP(t *testing.T) {
	// min x+y s.t. x+2y ≥ 4, 3x+y ≥ 6 → optimum at intersection
	// (8/5, 6/5), z = 14/5.
	x, z, err := Solve(
		[]float64{1, 1},
		[][]float64{{1, 2}, {3, 1}},
		[]float64{4, 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(z, 2.8) {
		t.Fatalf("z = %v, want 2.8", z)
	}
	if !almost(x[0], 1.6) || !almost(x[1], 1.2) {
		t.Fatalf("x = %v", x)
	}
}

func TestCoveringTriangle(t *testing.T) {
	// Odd-cycle covering LP: rows {0,1},{1,2},{0,2}, unit costs.
	// Fractional optimum is x = (.5,.5,.5), z = 1.5.
	a := [][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 0, 1},
		// x ≤ 1 bounds as -x ≥ -1
		{-1, 0, 0}, {0, -1, 0}, {0, 0, -1},
	}
	b := []float64{1, 1, 1, -1, -1, -1}
	_, z, err := Solve([]float64{1, 1, 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(z, 1.5) {
		t.Fatalf("z = %v, want 1.5", z)
	}
}

func TestInfeasible(t *testing.T) {
	_, _, err := Solve([]float64{1}, [][]float64{{0}}, []float64{1})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x ≥ 0 (vacuous row) is unbounded below.
	_, _, err := Solve([]float64{-1}, [][]float64{{1}}, []float64{0})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x ≥ -5 (x ≤ 5): optimum x = 0.
	x, z, err := Solve([]float64{1}, [][]float64{{-1}}, []float64{-5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(z, 0) || !almost(x[0], 0) {
		t.Fatalf("x=%v z=%v", x, z)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate rows must not break phase 1 cleanup.
	x, z, err := Solve(
		[]float64{2, 3},
		[][]float64{{1, 1}, {1, 1}, {1, 1}},
		[]float64{2, 2, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(z, 4) {
		t.Fatalf("z = %v, want 4 (all weight on the cheap variable)", z)
	}
	_ = x
}

// randomCoveringLP builds a random covering LP (0/1 matrix, costs ≥ 1,
// every row non-empty) plus the x ≤ 1 box rows.
func randomCoveringLP(rng *rand.Rand) (c []float64, a [][]float64, b []float64, rows [][]int, nc int) {
	nr := 1 + rng.Intn(6)
	nc = 1 + rng.Intn(6)
	c = make([]float64, nc)
	for j := range c {
		c[j] = float64(1 + rng.Intn(4))
	}
	for i := 0; i < nr; i++ {
		row := make([]float64, nc)
		var idx []int
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				row[j] = 1
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			j := rng.Intn(nc)
			row[j] = 1
			idx = []int{j}
		}
		a = append(a, row)
		b = append(b, 1)
		rows = append(rows, idx)
	}
	for j := 0; j < nc; j++ {
		box := make([]float64, nc)
		box[j] = -1
		a = append(a, box)
		b = append(b, -1)
	}
	return
}

func TestCoveringLPBoundsIntegerOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		c, a, b, rows, nc := randomCoveringLP(rng)
		x, z, err := Solve(c, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility of the returned point.
		for i := range a {
			dot := 0.0
			for j := range x {
				dot += a[i][j] * x[j]
			}
			if dot < b[i]-1e-6 {
				t.Fatalf("trial %d: constraint %d violated (%v < %v)", trial, i, dot, b[i])
			}
		}
		// Integer optimum by brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<nc; mask++ {
			ok := true
			for _, row := range rows {
				cov := false
				for _, j := range row {
					if mask>>j&1 == 1 {
						cov = true
						break
					}
				}
				if !cov {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cost := 0.0
			for j := 0; j < nc; j++ {
				if mask>>j&1 == 1 {
					cost += c[j]
				}
			}
			if cost < best {
				best = cost
			}
		}
		if z > best+1e-6 {
			t.Fatalf("trial %d: LP bound %v exceeds integer optimum %v", trial, z, best)
		}
	}
}

func TestStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 150; trial++ {
		c, a, b, _, _ := randomCoveringLP(rng)
		_, zp, err := Solve(c, a, b)
		if err != nil {
			t.Fatalf("trial %d primal: %v", trial, err)
		}
		// Dual: max b·y s.t. Aᵀy ≤ c, y ≥ 0, rewritten as
		// min (-b)·y s.t. (-Aᵀ)y ≥ -c.
		m, n := len(a), len(c)
		dc := make([]float64, m)
		for i := range dc {
			dc[i] = -b[i]
		}
		da := make([][]float64, n)
		db := make([]float64, n)
		for j := 0; j < n; j++ {
			da[j] = make([]float64, m)
			for i := 0; i < m; i++ {
				da[j][i] = -a[i][j]
			}
			db[j] = -c[j]
		}
		_, zd, err := Solve(dc, da, db)
		if err != nil {
			t.Fatalf("trial %d dual: %v", trial, err)
		}
		if !almost(zp, -zd) {
			t.Fatalf("trial %d: strong duality fails: primal %v dual %v", trial, zp, -zd)
		}
	}
}

// TestTwoVariableGeometry cross-checks the simplex against an exact
// geometric solver for random two-variable LPs: the optimum of a
// feasible bounded LP lies on a vertex, i.e. the intersection of two
// constraint lines (including the axes x=0, y=0).
func TestTwoVariableGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(5)
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = []float64{float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3)}
			b[i] = float64(rng.Intn(7) - 3)
		}
		c := []float64{float64(1 + rng.Intn(5)), float64(1 + rng.Intn(5))}
		// Positive costs and x ≥ 0 keep the LP bounded below.
		feasible := func(x, y float64) bool {
			if x < -1e-9 || y < -1e-9 {
				return false
			}
			for i := range a {
				if a[i][0]*x+a[i][1]*y < b[i]-1e-9 {
					return false
				}
			}
			return true
		}
		// Candidate vertices: pairwise line intersections, including
		// the axes.
		lines := append([][]float64{{1, 0, 0}, {0, 1, 0}}, nil...)
		for i := range a {
			lines = append(lines, []float64{a[i][0], a[i][1], b[i]})
		}
		best := math.Inf(1)
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				d := lines[i][0]*lines[j][1] - lines[i][1]*lines[j][0]
				if math.Abs(d) < 1e-12 {
					continue
				}
				x := (lines[i][2]*lines[j][1] - lines[i][1]*lines[j][2]) / d
				y := (lines[i][0]*lines[j][2] - lines[i][2]*lines[j][0]) / d
				if feasible(x, y) {
					if z := c[0]*x + c[1]*y; z < best {
						best = z
					}
				}
			}
		}
		_, z, err := Solve(c, a, b)
		if math.IsInf(best, 1) {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: geometric infeasible, simplex says %v (z=%v)", trial, err, z)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: simplex failed on feasible LP: %v", trial, err)
		}
		if math.Abs(z-best) > 1e-6 {
			t.Fatalf("trial %d: simplex %v, geometry %v", trial, z, best)
		}
	}
}
