// Package simplex implements a small dense two-phase primal simplex
// solver for linear programs in the form
//
//	min c·x   subject to   Ax ≥ b,  x ≥ 0.
//
// It exists to compute the linear-relaxation lower bound z*_P of a
// unate covering problem exactly (the strongest of the four bounds
// compared in the paper's Proposition 1) on the moderate cyclic-core
// sizes where that comparison is made.  Bland's rule guarantees
// termination; all arithmetic is float64 with a fixed tolerance.
package simplex

import (
	"errors"
	"fmt"
)

// Tolerance for pivoting and feasibility decisions.
const eps = 1e-9

// Result statuses.
var (
	ErrInfeasible = errors.New("simplex: problem is infeasible")
	ErrUnbounded  = errors.New("simplex: objective is unbounded below")
)

// Solve minimises c·x subject to Ax ≥ b, x ≥ 0 and returns an optimal
// vertex x and its objective value.
func Solve(c []float64, a [][]float64, b []float64) ([]float64, float64, error) {
	m, n := len(a), len(c)
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, fmt.Errorf("simplex: row %d has %d entries, want %d", i, len(a[i]), n)
		}
	}
	if len(b) != m {
		return nil, 0, fmt.Errorf("simplex: %d right-hand sides for %d rows", len(b), m)
	}

	// Convert to equalities: Ax - s = b with surplus s ≥ 0, then add
	// one artificial variable per row, flipping signs so every
	// right-hand side is non-negative.
	// Column layout: [x (n) | surplus (m) | artificial (m)].
	total := n + 2*m
	t := make([][]float64, m) // constraint rows
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total)
		sign := 1.0
		if b[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * a[i][j]
		}
		t[i][n+i] = -sign // surplus
		t[i][n+m+i] = 1   // artificial
		rhs[i] = sign * b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + m + i
	}

	// Phase 1: minimise the sum of artificials.
	phase1 := make([]float64, total)
	for i := 0; i < m; i++ {
		phase1[n+m+i] = 1
	}
	if z1, err := runSimplex(t, rhs, basis, phase1, n+m); err != nil {
		return nil, 0, err
	} else if z1 > eps {
		return nil, 0, ErrInfeasible
	}
	// Drive any artificial still in the basis out of it (degenerate
	// feasible rows), or delete its row if it is all zero.
	for i := 0; i < m; i++ {
		if basis[i] < n+m {
			continue
		}
		pivoted := false
		for j := 0; j < n+m; j++ {
			if abs(t[i][j]) > eps {
				pivot(t, rhs, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint; the artificial stays basic at
			// value zero and never re-enters because phase 2 blocks
			// artificial columns.
			continue
		}
	}

	// Phase 2: original objective, artificial columns frozen.
	obj := make([]float64, total)
	copy(obj, c)
	if _, err := runSimplex(t, rhs, basis, obj, n+m); err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = rhs[i]
		}
	}
	z := 0.0
	for j := 0; j < n; j++ {
		z += c[j] * x[j]
	}
	return x, z, nil
}

// runSimplex optimises the given objective over the current tableau
// using Bland's smallest-index rule.  Columns ≥ limit (artificials in
// phase 2) are never chosen to enter the basis.
func runSimplex(t [][]float64, rhs []float64, basis []int, obj []float64, limit int) (float64, error) {
	m := len(t)
	// Reduced costs are computed directly: r_j = obj_j - y·A_j where y
	// solves the basic system; with an explicit tableau kept in
	// canonical form, r_j = obj_j - Σ_i obj[basis[i]]·t[i][j].
	for iter := 0; ; iter++ {
		if iter > 200000 {
			return 0, errors.New("simplex: iteration limit exceeded")
		}
		// Entering variable: Bland's rule.
		enter := -1
		for j := 0; j < limit; j++ {
			r := obj[j]
			for i := 0; i < m; i++ {
				r -= obj[basis[i]] * t[i][j]
			}
			if r < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			z := 0.0
			for i := 0; i < m; i++ {
				z += obj[basis[i]] * rhs[i]
			}
			return z, nil
		}
		// Leaving variable: minimum ratio, ties by smallest basis
		// index (Bland).
		leave := -1
		best := 0.0
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := rhs[i] / t[i][enter]
				if leave < 0 || ratio < best-eps || (ratio < best+eps && basis[i] < basis[leave]) {
					leave, best = i, ratio
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		pivot(t, rhs, basis, leave, enter)
	}
}

// pivot performs a Gauss-Jordan pivot on element (row, col) and
// updates the basis.
func pivot(t [][]float64, rhs []float64, basis []int, row, col int) {
	m := len(t)
	p := t[row][col]
	for j := range t[row] {
		t[row][j] /= p
	}
	rhs[row] /= p
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
		rhs[i] -= f * rhs[row]
		if abs(rhs[i]) < eps {
			rhs[i] = 0
		}
	}
	basis[row] = col
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
