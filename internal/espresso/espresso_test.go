package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucp/internal/bnb"
	"ucp/internal/cube"
	"ucp/internal/primes"
)

func mintermIn(s *cube.Space, c cube.Cube, m uint64, o int) bool {
	for i := 0; i < s.Inputs(); i++ {
		bit := cube.Zero
		if m>>i&1 == 1 {
			bit = cube.One
		}
		if s.Input(c, i)&bit == 0 {
			return false
		}
	}
	return s.Outputs() == 0 || s.Output(c, o)
}

func inCover(f *cube.Cover, m uint64, o int) bool {
	for _, c := range f.Cubes {
		if mintermIn(f.S, c, m, o) {
			return true
		}
	}
	return false
}

func randomCover(s *cube.Space, n int, rng *rand.Rand) *cube.Cover {
	f := cube.NewCover(s)
	for k := 0; k < n; k++ {
		c := s.NewCube()
		for i := 0; i < s.Inputs(); i++ {
			switch rng.Intn(4) {
			case 0:
				s.SetInput(c, i, cube.Zero)
			case 1:
				s.SetInput(c, i, cube.One)
			default:
				s.SetInput(c, i, cube.DC)
			}
		}
		any := false
		for o := 0; o < s.Outputs(); o++ {
			if rng.Intn(2) == 0 {
				s.SetOutput(c, o, true)
				any = true
			}
		}
		if s.Outputs() > 0 && !any {
			s.SetOutput(c, rng.Intn(s.Outputs()), true)
		}
		f.Add(c)
	}
	return f
}

// checkEquivalent verifies cover == f modulo the don't-care set d.
func checkEquivalent(t *testing.T, s *cube.Space, f, d, cover *cube.Cover, tag string) {
	t.Helper()
	nOut := s.Outputs()
	if nOut == 0 {
		nOut = 1
	}
	for o := 0; o < nOut; o++ {
		for m := uint64(0); m < 1<<s.Inputs(); m++ {
			on := inCover(f, m, o)
			dc := d != nil && inCover(d, m, o)
			got := inCover(cover, m, o)
			if dc {
				continue
			}
			if got != on {
				t.Fatalf("%s: output %d minterm %b: cover=%v on=%v\nf:\n%scover:\n%s",
					tag, o, m, got, on, f, cover)
			}
		}
	}
}

func TestMinimizeSimpleMerge(t *testing.T) {
	// xy + xy' = x.
	s := cube.NewSpace(2, 1)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("11", "1")
	b, _ := s.ParseCube("10", "1")
	f.Add(a)
	f.Add(b)
	res := Minimize(f, nil, Normal)
	if res.Cover.Len() != 1 {
		t.Fatalf("got %d cubes:\n%s", res.Cover.Len(), res.Cover)
	}
	if s.String(res.Cover.Cubes[0]) != "1- 1" {
		t.Fatalf("cube = %q", s.String(res.Cover.Cubes[0]))
	}
}

func TestMinimizeKeepsFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		s := cube.NewSpace(1+rng.Intn(4), 1+rng.Intn(3))
		f := randomCover(s, 1+rng.Intn(6), rng)
		d := randomCover(s, rng.Intn(2), rng)
		for _, mode := range []Mode{Normal, Strong} {
			res := Minimize(f, d, mode)
			checkEquivalent(t, s, f, d, res.Cover, "minimize")
			if res.Cover.Len() > f.Dedup().Len() {
				t.Fatalf("trial %d: cover grew: %d > %d", trial, res.Cover.Len(), f.Dedup().Len())
			}
		}
	}
}

func TestMinimizeIrredundantAndPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 60; trial++ {
		s := cube.NewSpace(1+rng.Intn(4), 1+rng.Intn(2))
		f := randomCover(s, 1+rng.Intn(5), rng)
		res := Minimize(f, nil, Normal)
		F := res.Cover
		offs := offSets(f, cube.NewCover(s))
		for k, c := range F.Cubes {
			// Irredundancy: removing any cube must break the cover.
			rest := cube.NewCover(s)
			for j, c2 := range F.Cubes {
				if j != k {
					rest.Add(c2)
				}
			}
			if rest.ContainsCube(c) {
				t.Fatalf("trial %d: cube %d redundant", trial, k)
			}
			// Primality: no literal can be raised, no output added.
			for i := 0; i < s.Inputs(); i++ {
				if s.Input(c, i) == cube.DC {
					continue
				}
				probe := s.Copy(c)
				s.SetInput(probe, i, cube.DC)
				if validAgainstOff(s, probe, offs) {
					t.Fatalf("trial %d: cube %d not prime in input %d", trial, k, i)
				}
			}
			for o := 0; o < s.Outputs(); o++ {
				if s.Output(c, o) {
					continue
				}
				if !anyInputIntersect(s, c, offs[o]) {
					t.Fatalf("trial %d: cube %d missing output %d", trial, k, o)
				}
			}
		}
	}
}

func TestStrongNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 80; trial++ {
		s := cube.NewSpace(2+rng.Intn(3), 1+rng.Intn(2))
		f := randomCover(s, 2+rng.Intn(6), rng)
		n := Minimize(f, nil, Normal).Cover.Len()
		st := Minimize(f, nil, Strong).Cover.Len()
		if st > n {
			t.Fatalf("trial %d: strong %d > normal %d", trial, st, n)
		}
	}
}

func TestHeuristicAtLeastExact(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	worse := 0
	for trial := 0; trial < 60; trial++ {
		s := cube.NewSpace(2+rng.Intn(3), 1)
		f := randomCover(s, 2+rng.Intn(5), rng)
		res := Minimize(f, nil, Strong)
		prs := primes.Generate(f, nil)
		prob, _, err := primes.BuildCovering(f, nil, prs, primes.UnitCost)
		if err != nil {
			t.Fatal(err)
		}
		exact := bnb.Solve(prob, bnb.Options{})
		if exact.Solution == nil {
			if len(prob.Rows) > 0 {
				t.Fatalf("trial %d: exact failed", trial)
			}
			continue
		}
		if res.Cover.Len() < exact.Cost {
			t.Fatalf("trial %d: heuristic %d below exact optimum %d",
				trial, res.Cover.Len(), exact.Cost)
		}
		if res.Cover.Len() > exact.Cost {
			worse++
		}
	}
	// The heuristic should be optimal on most tiny instances.
	if worse > 20 {
		t.Fatalf("heuristic suboptimal on %d/60 tiny instances", worse)
	}
}

func TestEmptyFunction(t *testing.T) {
	s := cube.NewSpace(3, 1)
	f := cube.NewCover(s)
	res := Minimize(f, nil, Strong)
	if res.Cover.Len() != 0 {
		t.Fatalf("empty function produced %d cubes", res.Cover.Len())
	}
}

func TestTautologyFunction(t *testing.T) {
	s := cube.NewSpace(3, 1)
	f := cube.NewCover(s)
	f.Add(s.FullCube())
	for m := uint64(0); m < 8; m++ {
		f.Add(s.CubeOfMinterm(m, 0))
	}
	res := Minimize(f, nil, Normal)
	if res.Cover.Len() != 1 {
		t.Fatalf("tautology should collapse to one cube, got %d", res.Cover.Len())
	}
}

func TestDontCaresEnableMerging(t *testing.T) {
	// ON = {00}, DC = {01}: with the DC the single prime 0- covers ON
	// with one cube; without it 00 is needed.  Either way one cube,
	// but the DC version must use the larger prime.
	s := cube.NewSpace(2, 1)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("00", "1")
	f.Add(a)
	d := cube.NewCover(s)
	b, _ := s.ParseCube("01", "1")
	d.Add(b)
	res := Minimize(f, d, Normal)
	if res.Cover.Len() != 1 {
		t.Fatalf("got %d cubes", res.Cover.Len())
	}
	if s.String(res.Cover.Cubes[0]) != "0- 1" {
		t.Fatalf("cube = %q, want the DC-merged prime", s.String(res.Cover.Cubes[0]))
	}
}

// TestQuickMinimizePreservesFunction drives Minimize with
// testing/quick-generated covers: whatever the generator produces, the
// minimised cover must implement the same incompletely-specified
// function.
func TestQuickMinimizePreservesFunction(t *testing.T) {
	prop := func(raw [][6]uint8, strong bool) bool {
		s := cube.NewSpace(4, 2)
		f := cube.NewCover(s)
		for _, spec := range raw {
			c := s.NewCube()
			for i := 0; i < 4; i++ {
				switch spec[i] % 3 {
				case 0:
					s.SetInput(c, i, cube.Zero)
				case 1:
					s.SetInput(c, i, cube.One)
				default:
					s.SetInput(c, i, cube.DC)
				}
			}
			s.SetOutput(c, 0, spec[4]%2 == 0)
			s.SetOutput(c, 1, spec[5]%2 == 0)
			if s.IsEmpty(c) {
				s.SetOutput(c, 0, true)
			}
			f.Add(c)
		}
		mode := Normal
		if strong {
			mode = Strong
		}
		res := Minimize(f, nil, mode)
		for o := 0; o < 2; o++ {
			for m := uint64(0); m < 16; m++ {
				if inCover(f, m, o) != inCover(res.Cover, m, o) {
					return false
				}
			}
		}
		return res.Cover.Len() <= f.Dedup().Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
