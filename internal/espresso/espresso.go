// Package espresso implements a heuristic two-level minimiser in the
// style of Espresso (Brayton et al. 1984): the EXPAND / IRREDUNDANT /
// REDUCE improvement loop over a multiple-output cover, with a
// LAST_GASP escape pass in the strong mode.  It plays the role of the
// "Espresso" and "Espresso strong" columns in the paper's Tables 1
// and 2: a fast heuristic that tends to leave a few extra products on
// problems with large cyclic cores.
package espresso

import (
	"sort"
	"time"

	"ucp/internal/budget"
	"ucp/internal/canon"
	"ucp/internal/cube"
	"ucp/internal/solvecache"
)

// Mode selects the effort level.
type Mode int

// Effort levels.
const (
	// Normal runs the classic expand/irredundant/reduce loop to a
	// fixed point.
	Normal Mode = iota
	// Strong additionally runs LAST_GASP rounds (maximal independent
	// reduction followed by re-expansion) until they stop helping,
	// mirroring Espresso's -strong option.
	Strong
)

// Result carries the minimised cover and loop statistics.
type Result struct {
	Cover      *cube.Cover
	Iterations int // improvement-loop passes executed
	GaspRounds int // LAST_GASP rounds that improved the cover
	// Interrupted reports that the budget cut the improvement loop
	// short; Cover is still a valid irredundant cover of the function
	// (the loop invariant holds between passes).
	Interrupted bool
	// CacheHit reports that MinimizeCached served this result from the
	// cross-solve cache (or an in-flight identical minimisation).
	CacheHit bool
}

// Minimize heuristically minimises the number of product terms of the
// incompletely specified function with care ON-set f and don't-care
// set d (d may be nil).  The returned cover is irredundant and every
// cube is prime.
func Minimize(f, d *cube.Cover, mode Mode) *Result {
	return MinimizeBudget(f, d, mode, nil)
}

// MinimizeCached is MinimizeBudget backed by a cross-solve cache: the
// whole minimisation is memoized under a key hashed from the input
// covers (cube sequences of f and d, the space shape, and the mode),
// so an iterated synthesis loop re-minimising the same function pays
// for it once.  Covers cross the cache boundary as clones; an
// interrupted minimisation is neither cached nor handed to concurrent
// waiters, which then minimise under their own budgets.
func MinimizeCached(f, d *cube.Cover, mode Mode, tr *budget.Tracker, c *solvecache.Cache) *Result {
	if c == nil {
		return MinimizeBudget(f, d, mode, tr)
	}
	key := coverKey(f, d, mode)
	var mine *Result
	v, _ := c.Do(key, func() (any, time.Duration, bool) {
		t0 := time.Now()
		mine = MinimizeBudget(f, d, mode, tr)
		return copyResult(mine), time.Since(t0), !mine.Interrupted
	})
	if mine != nil {
		return mine
	}
	res := copyResult(v.(*Result))
	res.CacheHit = true
	return res
}

// copyResult clones a result so cached covers never alias a caller's.
func copyResult(r *Result) *Result {
	cp := *r
	if r.Cover != nil {
		cp.Cover = r.Cover.Clone()
	}
	return &cp
}

// coverKey hashes the minimisation input.  The cube sequences are
// hashed in order: Espresso's improvement loop is order-sensitive, so
// two orderings of the same cube set are distinct computations and
// must not share a result (identical resubmissions — the iterated
// loop case — still do).
func coverKey(f, d *cube.Cover, mode Mode) solvecache.Key {
	words := []uint64{uint64(f.S.Inputs()), uint64(f.S.Outputs()), uint64(mode)}
	addCover := func(c *cube.Cover) {
		if c == nil {
			words = append(words, 0)
			return
		}
		words = append(words, uint64(len(c.Cubes))+1)
		for _, cu := range c.Cubes {
			words = append(words, canon.DigestWords(0x4355_4245, cu...)) // "CUBE"
		}
	}
	addCover(f)
	addCover(d)
	hi := canon.DigestWords(0x4553_5052, words...) // "ESPR"
	lo := canon.DigestWords(0x4553_5052^0x5f5f, words...)
	return solvecache.Key{Hi: hi, Lo: lo}
}

// MinimizeBudget is Minimize under a budget.  The tracker is polled
// between expand/irredundant/reduce passes, where the working cover is
// always a valid cover of the function: an interrupted minimisation
// returns a correct, merely less optimised, result.
func MinimizeBudget(f, d *cube.Cover, mode Mode, tr *budget.Tracker) *Result {
	s := f.S
	if d == nil {
		d = cube.NewCover(s)
	}
	offs := offSets(f, d)
	F := f.Dedup()
	F = expand(F, offs)
	F = irredundant(F, d)
	res := &Result{}

	improve := func(G *cube.Cover, shift int) *cube.Cover {
		for {
			if tr.Interrupted() {
				res.Interrupted = true
				return G
			}
			res.Iterations++
			before := G.Len()
			G = reduceOrdered(G, d, shift)
			G = expandOrdered(G, offs, shift)
			G = irredundant(G, d)
			if G.Len() >= before {
				return G
			}
		}
	}
	F = improve(F, 0)
	if mode == Strong {
		// Strong mode escapes the local minimum two ways, keeping any
		// improvement: LAST_GASP (independent maximal reductions
		// re-expanded into fresh primes) and improvement passes with
		// rotated reduce orders, which land in different minima.
		for round := 1; round <= 4; round++ {
			if tr.Interrupted() {
				res.Interrupted = true
				break
			}
			improved := false
			if G := lastGasp(F, d, offs); G.Len() < F.Len() {
				F = improve(G, 0)
				res.GaspRounds++
				improved = true
			}
			if H := improve(F.Clone(), round); H.Len() < F.Len() {
				F = H
				improved = true
			}
			if !improved {
				break
			}
		}
	}
	res.Cover = F
	return res
}

// offSets builds, per output, the OFF-set cover of pure input cubes:
// the complement of (F ∪ D) restricted to that output.
func offSets(f, d *cube.Cover) []*cube.Cover {
	s := f.S
	nOut := s.Outputs()
	if nOut == 0 {
		nOut = 1
	}
	offs := make([]*cube.Cover, nOut)
	for o := 0; o < nOut; o++ {
		onDC := cube.NewCover(s)
		for _, c := range f.Cubes {
			if s.Outputs() == 0 || s.Output(c, o) {
				onDC.Add(c)
			}
		}
		for _, c := range d.Cubes {
			if s.Outputs() == 0 || s.Output(c, o) {
				onDC.Add(c)
			}
		}
		offs[o] = onDC.ComplementInputs()
	}
	return offs
}

// inputsIntersect reports whether the input parts of a and b overlap
// (output parts are ignored; the off-set cubes carry full outputs).
func inputsIntersect(s *cube.Space, a, b cube.Cube) bool {
	for i := 0; i < s.Inputs(); i++ {
		if s.Input(a, i)&s.Input(b, i) == 0 {
			return false
		}
	}
	return true
}

// validAgainstOff reports whether cube c (inputs plus output set) hits
// no OFF-set point: for every output it drives, its input part must
// avoid that output's OFF cover.
func validAgainstOff(s *cube.Space, c cube.Cube, offs []*cube.Cover) bool {
	nOut := s.Outputs()
	if nOut == 0 {
		return !anyInputIntersect(s, c, offs[0])
	}
	for o := 0; o < nOut; o++ {
		if s.Output(c, o) && anyInputIntersect(s, c, offs[o]) {
			return false
		}
	}
	return true
}

func anyInputIntersect(s *cube.Space, c cube.Cube, off *cube.Cover) bool {
	for _, oc := range off.Cubes {
		if inputsIntersect(s, c, oc) {
			return true
		}
	}
	return false
}

// expand grows every cube of F into a prime against the OFF-sets:
// input literals are raised to don't care when no OFF point is hit,
// then missing outputs are added under the same test.  Cubes absorbed
// by an expanded prime are dropped.
func expand(F *cube.Cover, offs []*cube.Cover) *cube.Cover {
	return expandOrdered(F, offs, 0)
}

// expandOrdered is expand with the literal-raising order rotated by
// shift positions, so the strong mode's perturbed passes grow cubes
// into different primes.
func expandOrdered(F *cube.Cover, offs []*cube.Cover, shift int) *cube.Cover {
	s := F.S
	cubes := make([]cube.Cube, len(F.Cubes))
	for i, c := range F.Cubes {
		cubes[i] = s.Copy(c)
	}
	// Smallest cubes first: they gain the most from expansion and the
	// primes they become absorb their neighbours.
	sort.SliceStable(cubes, func(a, b int) bool {
		return s.InputWeight(cubes[a]) < s.InputWeight(cubes[b])
	})
	alive := make([]bool, len(cubes))
	for i := range alive {
		alive[i] = true
	}
	for k, c := range cubes {
		if !alive[k] {
			continue
		}
		// Rank candidate raises by how many OFF cubes block them: the
		// least-blocked literal is lifted first (espresso's "lower the
		// fence where fewest dogs bark" heuristic).
		type cand struct{ v, blockers int }
		var cands []cand
		for i := 0; i < s.Inputs(); i++ {
			if s.Input(c, i) == cube.DC {
				continue
			}
			blockers := 0
			probe := s.Copy(c)
			s.SetInput(probe, i, cube.DC)
			for o := range offs {
				if s.Outputs() > 0 && !s.Output(c, o) {
					continue
				}
				for _, oc := range offs[o].Cubes {
					if inputsIntersect(s, probe, oc) {
						blockers++
					}
				}
			}
			cands = append(cands, cand{i, blockers})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].blockers != cands[b].blockers {
				return cands[a].blockers < cands[b].blockers
			}
			return cands[a].v < cands[b].v
		})
		if shift > 0 && len(cands) > 1 {
			k := shift % len(cands)
			cands = append(cands[k:], cands[:k]...)
		}
		for _, cd := range cands {
			old := s.Input(c, cd.v)
			s.SetInput(c, cd.v, cube.DC)
			if !validAgainstOff(s, c, offs) {
				s.SetInput(c, cd.v, old)
			}
		}
		// Output part expansion.
		for o := 0; o < s.Outputs(); o++ {
			if s.Output(c, o) {
				continue
			}
			if !anyInputIntersect(s, c, offs[o]) {
				s.SetOutput(c, o, true)
			}
		}
		cubes[k] = c
		for j := range cubes {
			if j != k && alive[j] && s.Contains(c, cubes[j]) {
				alive[j] = false
			}
		}
	}
	out := cube.NewCover(s)
	for i, c := range cubes {
		if alive[i] {
			out.Add(c)
		}
	}
	return out
}

// irredundant greedily removes cubes covered by the rest of the cover
// plus the don't-care set.  Smaller cubes are tried first, since they
// are the most likely to be swallowed.
func irredundant(F *cube.Cover, d *cube.Cover) *cube.Cover {
	s := F.S
	order := make([]int, len(F.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.InputWeight(F.Cubes[order[a]]) < s.InputWeight(F.Cubes[order[b]])
	})
	alive := make([]bool, len(F.Cubes))
	for i := range alive {
		alive[i] = true
	}
	for _, k := range order {
		rest := cube.NewCover(s)
		for j, c := range F.Cubes {
			if j != k && alive[j] {
				rest.Add(c)
			}
		}
		for _, c := range d.Cubes {
			rest.Add(c)
		}
		if rest.ContainsCube(F.Cubes[k]) {
			alive[k] = false
		}
	}
	out := cube.NewCover(s)
	for i, c := range F.Cubes {
		if alive[i] {
			out.Add(c)
		}
	}
	return out
}

// sharpCap bounds the intermediate cube count of the sharp operations
// used by reduce; a cube whose remainder explodes past the cap is left
// unreduced (a sound, conservative fallback).
const sharpCap = 4096

// reduceCube returns the smallest cube containing the points of c not
// covered by others, or nil when others covers c completely.  The
// boolean is false when the computation overflowed sharpCap.
func reduceCube(s *cube.Space, c cube.Cube, others *cube.Cover) (cube.Cube, bool) {
	rem := []cube.Cube{s.Copy(c)}
	for _, b := range others.Cubes {
		var next []cube.Cube
		for _, a := range rem {
			next = append(next, s.Sharp(a, b)...)
			if len(next) > sharpCap {
				return nil, false
			}
		}
		rem = next
		if len(rem) == 0 {
			return nil, true
		}
	}
	return s.SuperCube(rem), true
}

// reduceOrdered shrinks each cube to the smallest cube still needed
// given the rest of the cover, processing the largest cubes first; the
// processing order is rotated by shift positions, which steers the
// loop into a different local minimum (used by the strong mode).  The
// cover's function is unchanged.
func reduceOrdered(F *cube.Cover, d *cube.Cover, shift int) *cube.Cover {
	s := F.S
	cubes := make([]cube.Cube, len(F.Cubes))
	for i, c := range F.Cubes {
		cubes[i] = s.Copy(c)
	}
	order := make([]int, len(cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.InputWeight(cubes[order[a]]) > s.InputWeight(cubes[order[b]])
	})
	if shift > 0 && len(order) > 1 {
		k := shift % len(order)
		order = append(order[k:], order[:k]...)
	}
	alive := make([]bool, len(cubes))
	for i := range alive {
		alive[i] = true
	}
	for _, k := range order {
		others := cube.NewCover(s)
		for j, c := range cubes {
			if j != k && alive[j] {
				others.Add(c)
			}
		}
		for _, c := range d.Cubes {
			others.Add(c)
		}
		rc, ok := reduceCube(s, cubes[k], others)
		if !ok {
			continue
		}
		if rc == nil {
			alive[k] = false
		} else {
			cubes[k] = rc
		}
	}
	out := cube.NewCover(s)
	for i, c := range cubes {
		if alive[i] {
			out.Add(c)
		}
	}
	return out
}

// lastGasp implements the strong-mode escape: every cube is maximally
// reduced against the *original* cover (independently, so the
// reductions do not interact), the reduced cubes are re-expanded into
// primes, and the union of old and new primes is made irredundant.
// When the cover was stuck in a local minimum of the ordinary loop,
// the new primes often unlock a smaller irredundant subset.
func lastGasp(F *cube.Cover, d *cube.Cover, offs []*cube.Cover) *cube.Cover {
	s := F.S
	union := F.Clone()
	for k := range F.Cubes {
		others := cube.NewCover(s)
		for j, c := range F.Cubes {
			if j != k {
				others.Add(c)
			}
		}
		for _, c := range d.Cubes {
			others.Add(c)
		}
		rc, ok := reduceCube(s, F.Cubes[k], others)
		if !ok || rc == nil {
			continue
		}
		union.Add(rc)
	}
	union = expand(union.Dedup(), offs)
	return irredundant(union, d)
}
