package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrExceeded is the sentinel wrapped by every error that reports a
// budget running out (deadline, cancellation, search or iteration
// cap).  Callers classify with errors.Is(err, ErrExceeded); the server
// front end maps it to a timeout status without string matching.
var ErrExceeded = errors.New("budget exceeded")

// Err converts a latched stop reason into an error wrapping
// ErrExceeded.  None yields nil: an uninterrupted solve has no budget
// error.
func (r Reason) Err() error {
	if r == None {
		return nil
	}
	return fmt.Errorf("%w (%v)", ErrExceeded, r)
}

// Err reports the tracker's budget error: nil while the budget holds,
// an ErrExceeded-wrapping error (carrying the latched reason) once it
// has run out.  Like Interrupted, the verdict polls the context first,
// so a freshly expired deadline is observed here too.
func (t *Tracker) Err() error {
	if t == nil || !t.Interrupted() {
		return nil
	}
	return t.Reason().Err()
}

// Derive builds a per-request Budget from a parent context and a
// client-requested timeout, under server-side policy:
//
//   - requested ≤ 0 falls back to def (the server's default timeout);
//   - max > 0 caps whichever of the two applies (a client cannot buy
//     more wall-clock than the server grants);
//   - the effective timeout, when positive, becomes a deadline on a
//     context derived from parent — so a parent cancellation (the
//     client disconnecting) still cancels the solve early;
//   - when no timeout applies the budget carries a cancellable child
//     of parent, preserving disconnect propagation.
//
// The returned CancelFunc is never nil and must be called when the
// solve finishes to release the context's resources.
func Derive(parent context.Context, requested, def, max time.Duration) (Budget, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	eff := requested
	if eff <= 0 {
		eff = def
	}
	if max > 0 && (eff <= 0 || eff > max) {
		eff = max
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if eff > 0 {
		ctx, cancel = context.WithTimeout(parent, eff)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	return Budget{Context: ctx}, cancel
}
