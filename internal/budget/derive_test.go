package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func deadlineOf(t *testing.T, b Budget) time.Duration {
	t.Helper()
	dl, ok := b.Context.Deadline()
	if !ok {
		t.Fatalf("budget context has no deadline")
	}
	return time.Until(dl)
}

func TestDeriveClampsToServerCaps(t *testing.T) {
	const def, max = 2 * time.Second, 5 * time.Second

	// Requested within the cap: honoured.
	b, cancel := Derive(context.Background(), 3*time.Second, def, max)
	if d := deadlineOf(t, b); d > 3*time.Second || d < 2*time.Second {
		t.Fatalf("requested 3s, derived deadline %v away", d)
	}
	cancel()

	// No request: the server default applies.
	b, cancel = Derive(context.Background(), 0, def, max)
	if d := deadlineOf(t, b); d > 2*time.Second || d < time.Second {
		t.Fatalf("default 2s, derived deadline %v away", d)
	}
	cancel()

	// Requested over the cap: clamped to max.
	b, cancel = Derive(context.Background(), time.Hour, def, max)
	if d := deadlineOf(t, b); d > 5*time.Second || d < 4*time.Second {
		t.Fatalf("capped at 5s, derived deadline %v away", d)
	}
	cancel()

	// No default either: max still applies (an unlimited request may
	// not exceed server policy).
	b, cancel = Derive(context.Background(), 0, 0, max)
	if d := deadlineOf(t, b); d > 5*time.Second || d < 4*time.Second {
		t.Fatalf("capped at 5s with no default, derived deadline %v away", d)
	}
	cancel()
}

func TestDeriveUnlimitedKeepsCancellation(t *testing.T) {
	parent, stop := context.WithCancel(context.Background())
	b, cancel := Derive(parent, 0, 0, 0)
	defer cancel()
	if _, ok := b.Context.Deadline(); ok {
		t.Fatalf("no timeout anywhere, but the derived context has a deadline")
	}
	tr := b.Tracker()
	if tr.Interrupted() {
		t.Fatal("interrupted before any cancellation")
	}
	stop() // client disconnect must reach the solve
	if !tr.Interrupted() || tr.Reason() != Cancelled {
		t.Fatalf("parent cancellation not observed: reason %v", tr.Reason())
	}
}

func TestDeriveNilParent(t *testing.T) {
	b, cancel := Derive(nil, 10*time.Millisecond, 0, 0)
	defer cancel()
	tr := b.Tracker()
	deadline := time.Now().Add(2 * time.Second)
	for !tr.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("10ms derived deadline never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if tr.Reason() != Deadline {
		t.Fatalf("reason = %v, want Deadline", tr.Reason())
	}
}

func TestTrackerErr(t *testing.T) {
	var nilTr *Tracker
	if err := nilTr.Err(); err != nil {
		t.Fatalf("nil tracker Err = %v", err)
	}
	if err := (None).Err(); err != nil {
		t.Fatalf("None.Err = %v", err)
	}
	for _, r := range []Reason{Deadline, Cancelled, SearchCap, IterCap} {
		if err := r.Err(); !errors.Is(err, ErrExceeded) {
			t.Fatalf("%v.Err() = %v, does not wrap ErrExceeded", r, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	tr := Budget{Context: ctx}.Tracker()
	if err := tr.Err(); err != nil {
		t.Fatalf("Err before cancellation = %v", err)
	}
	cancel()
	if err := tr.Err(); !errors.Is(err, ErrExceeded) {
		t.Fatalf("Err after cancellation = %v, does not wrap ErrExceeded", err)
	}
}
