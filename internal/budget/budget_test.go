package budget

import (
	"context"
	"testing"
	"time"
)

func TestZeroBudgetNeverInterrupts(t *testing.T) {
	var tr *Tracker = Budget{}.Tracker()
	if tr != nil {
		t.Fatal("an unlimited budget should produce a nil tracker")
	}
	// Every method must be nil-receiver safe.
	if tr.Interrupted() || tr.AddIters(1000) || tr.AddSearchNodes(1000) {
		t.Fatal("nil tracker interrupted")
	}
	if tr.Reason() != None || tr.Iters() != 0 || tr.SearchNodes() != 0 {
		t.Fatal("nil tracker reported consumption")
	}
}

func TestNodeCapAloneIsNotInterruptible(t *testing.T) {
	// NodeCap is a graceful-degradation rung consumed by the ZDD
	// phase, not a tracker limit.
	if tr := (Budget{NodeCap: 10}).Tracker(); tr != nil {
		t.Fatal("NodeCap alone should not create a tracker")
	}
}

func TestSearchCapLatches(t *testing.T) {
	tr := Budget{SearchCap: 3}.Tracker()
	for i := 0; i < 3; i++ {
		if tr.AddSearchNodes(1) {
			t.Fatalf("interrupted after %d of 3 nodes", i+1)
		}
	}
	if !tr.AddSearchNodes(1) {
		t.Fatal("4th node should exhaust a cap of 3")
	}
	if tr.Reason() != SearchCap {
		t.Fatalf("Reason = %v, want SearchCap", tr.Reason())
	}
	// Latched: later checks keep reporting the first reason.
	if !tr.Interrupted() || tr.Reason() != SearchCap {
		t.Fatal("verdict did not latch")
	}
	if tr.SearchNodes() != 4 {
		t.Fatalf("SearchNodes = %d, want 4", tr.SearchNodes())
	}
}

func TestIterCapLatches(t *testing.T) {
	tr := Budget{IterCap: 2}.Tracker()
	if tr.AddIters(2) {
		t.Fatal("2 iterations should fit a cap of 2")
	}
	if !tr.AddIters(1) {
		t.Fatal("3rd iteration should exhaust a cap of 2")
	}
	if tr.Reason() != IterCap || tr.Iters() != 3 {
		t.Fatalf("Reason=%v Iters=%d, want IterCap/3", tr.Reason(), tr.Iters())
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := Budget{Context: ctx}.Tracker()
	if tr.Interrupted() {
		t.Fatal("interrupted before cancellation")
	}
	cancel()
	if !tr.Interrupted() {
		t.Fatal("not interrupted after cancellation")
	}
	if tr.Reason() != Cancelled {
		t.Fatalf("Reason = %v, want Cancelled", tr.Reason())
	}
}

func TestExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	tr := Budget{Context: ctx}.Tracker()
	if !tr.Interrupted() || tr.Reason() != Deadline {
		t.Fatalf("Interrupted=%v Reason=%v, want Deadline", tr.Interrupted(), tr.Reason())
	}
}

func TestFirstReasonWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := Budget{Context: ctx, SearchCap: 1}.Tracker()
	tr.AddSearchNodes(5) // latches SearchCap
	cancel()
	if tr.Reason() != SearchCap {
		t.Fatalf("Reason = %v, want the first latched reason SearchCap", tr.Reason())
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		None:      "none",
		Deadline:  "deadline",
		Cancelled: "cancelled",
		SearchCap: "search-node cap",
		IterCap:   "subgradient-iteration cap",
	} {
		if got := r.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
	if Reason(99).String() != "unknown" {
		t.Fatal("out-of-range reason should stringify as unknown")
	}
}
