// Package budget bounds the work a solver may do.  The paper sells
// ZDD_SCG on predictable runtime, but subgradient ascent, implicit ZDD
// reduction and branch and bound can all run (or allocate) unboundedly
// on adversarial instances.  A Budget caps each of those resources;
// every solver in this library threads a Tracker through its loops and,
// when the budget runs out, stops gracefully with the best feasible
// solution and the tightest valid lower bound found so far.
package budget

import (
	"context"
	"errors"
	"sync/atomic"
)

// Reason classifies why a solve stopped before finishing its work.
type Reason int

// Stop reasons, in the order the Tracker latches them.
const (
	// None: the solve ran to completion.
	None Reason = iota
	// Deadline: the budget context's deadline expired.
	Deadline
	// Cancelled: the budget context was cancelled explicitly (e.g. by
	// a SIGINT handler).
	Cancelled
	// SearchCap: the branch-and-bound node cap was exhausted.
	SearchCap
	// IterCap: the subgradient iteration cap was exhausted.
	IterCap
)

func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case Deadline:
		return "deadline"
	case Cancelled:
		return "cancelled"
	case SearchCap:
		return "search-node cap"
	case IterCap:
		return "subgradient-iteration cap"
	}
	return "unknown"
}

// Budget bounds one solve.  The zero value is unlimited.  Budgets are
// plain configuration: hand the same value to as many solves as you
// like; each solve tracks its own consumption.
type Budget struct {
	// Context carries the wall-clock deadline and cancellation; nil
	// means no deadline.
	Context context.Context
	// NodeCap caps the decision-diagram nodes of the implicit (ZDD)
	// reduction phase.  The cap measures the live working set: the
	// phase garbage-collects dead nodes (mark-sweep from the surviving
	// family) both near the cap and in response to an overrun, so only
	// families whose reachable nodes crowd the cap trip it.  Exhausting
	// it is a graceful-degradation rung, not an interruption: the solve
	// falls back to the explicit matrix path and still finishes.
	// 0 = unlimited.
	NodeCap int
	// SearchCap caps branch-and-bound nodes across the whole solve.
	// 0 = unlimited.
	SearchCap int64
	// IterCap caps subgradient iterations across the whole solve
	// (all phases and restarts together).  0 = unlimited.
	IterCap int
}

// Tracker returns the runtime state for one solve under b, or nil when
// b imposes no interruptible limit (a nil *Tracker never interrupts —
// every method has a nil-receiver fast path).
func (b Budget) Tracker() *Tracker {
	if b.Context == nil && b.SearchCap == 0 && b.IterCap == 0 {
		return nil
	}
	t := &Tracker{searchCap: b.SearchCap, iterCap: int64(b.IterCap)}
	if b.Context != nil {
		t.done = b.Context.Done()
		t.ctxErr = b.Context.Err
	}
	return t
}

// Tracker accumulates one solve's consumption against its Budget.  All
// methods are safe for concurrent use: the portfolio solver charges
// iterations from several restart workers against the same caps, and a
// cancellation must be observed by every worker.  The first exhausted
// limit is latched and every later check reports it.
//
// Note that with concurrent chargers the exact instant a shared cap
// trips depends on scheduling, so interrupted solves are best-effort;
// the determinism contract of the portfolio solver applies to solves
// the budget did not cut short.
type Tracker struct {
	done   <-chan struct{}
	ctxErr func() error

	searchCap   int64
	iterCap     int64
	searchNodes atomic.Int64
	iters       atomic.Int64

	reason atomic.Int32
}

// latch records r as the stop reason unless one is already set.
func (t *Tracker) latch(r Reason) {
	t.reason.CompareAndSwap(int32(None), int32(r))
}

// Interrupted polls the budget: it returns true once the deadline has
// passed, the context was cancelled, or a cap was exhausted.  The
// verdict is latched — once true, always true.
func (t *Tracker) Interrupted() bool {
	if t == nil {
		return false
	}
	if Reason(t.reason.Load()) != None {
		return true
	}
	if t.done != nil {
		select {
		case <-t.done:
			if errors.Is(t.ctxErr(), context.DeadlineExceeded) {
				t.latch(Deadline)
			} else {
				t.latch(Cancelled)
			}
			return true
		default:
		}
	}
	return false
}

// Reason reports why the tracker latched, or None.
func (t *Tracker) Reason() Reason {
	if t == nil {
		return None
	}
	return Reason(t.reason.Load())
}

// AddSearchNodes charges n branch-and-bound nodes and reports whether
// the budget is now exhausted (by any limit, not just the node cap).
func (t *Tracker) AddSearchNodes(n int64) bool {
	if t == nil {
		return false
	}
	if t.searchNodes.Add(n) > t.searchCap && t.searchCap > 0 {
		t.latch(SearchCap)
	}
	return t.Interrupted()
}

// AddIters charges n subgradient iterations and reports whether the
// budget is now exhausted.
func (t *Tracker) AddIters(n int) bool {
	if t == nil {
		return false
	}
	if t.iters.Add(int64(n)) > t.iterCap && t.iterCap > 0 {
		t.latch(IterCap)
	}
	return t.Interrupted()
}

// SearchNodes returns the branch-and-bound nodes charged so far.
func (t *Tracker) SearchNodes() int64 {
	if t == nil {
		return 0
	}
	return t.searchNodes.Load()
}

// Iters returns the subgradient iterations charged so far.
func (t *Tracker) Iters() int {
	if t == nil {
		return 0
	}
	return int(t.iters.Load())
}
