package matrix

import "sync"

// parMinShard is the smallest per-worker candidate count worth a
// goroutine handoff: below it the dominance scan is cheaper than the
// scheduling, so the shard runs inline.  Calibrated with
// BenchmarkReduceFixpoint; the exact value only moves the crossover,
// never a result (the kill sets are order-independent).  It is a
// variable so the differential tests can drop it and drive real
// goroutines through small instances under the race detector.
var parMinShard = 256

// parShard splits [0, n) into one contiguous chunk per worker and runs
// fn on every chunk, concurrently when workers > 1.  fn must write only
// per-index state it owns (the dominance passes gather kill marks into
// distinct elements) and must read only state that is immutable for the
// duration of the call; the chunks partition the index space, so the
// union of the chunk results is identical for any worker count.
func parShard(n, workers int, fn func(lo, hi int)) {
	if maxW := n / parMinShard; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	fn(0, n/workers)
	wg.Wait()
}
