package matrix

import "ucp/internal/budget"

// ReplayReduce reduces a delta's child problem to its cyclic core using
// the parent's recorded reduction facts as a head start.  Two distinct
// mechanisms apply them, chosen so the result is bit-identical to
// ReduceTrackedTrace on the child:
//
//   - Row kills are re-verified at the child's input state (the witness
//     still precedes the victim in the canonical (length, index) order
//     and is still a subset) and pre-applied before the fixpoint runs.
//     That is exact: every verified kill is one the cold fixpoint's
//     first row-dominance pass makes anyway (row contents don't change
//     between the input and that pass), pre-killed rows are never
//     essential witnesses or unique dominance witnesses (a singleton
//     victim has a singleton-or-equal witness; a killed witness chains
//     down to a surviving one), so after its first row pass the replay
//     fixpoint stands on exactly the state the cold one does.
//
//   - Column kills are NOT pre-applied; they are handed to the
//     fixpoint's first column-dominance pass as hints, verified there
//     against the same pass-start state the scan uses (see
//     reduceScratch.colHints).  Pre-application would be unsound for
//     exactness even when every fact verifies: column dominance breaks
//     equal-coverage/equal-cost ties by id, and which pairs are tied
//     depends on the surviving rows, so applying a column fact ahead of
//     the schedule can flip a later tie and change the core.  (Concrete
//     failure: an edit reverses a dominance, the pre-applied kills make
//     some row a singleton early, its essential removes the row that
//     kept the reversed dominance strict, and the tie-break then keeps
//     the opposite column.)  As in-pass hints they only shortcut the
//     dominator scan, never change its answer.
//
// Every fact is re-verified before use, so a stale or outright alien
// trace degrades to a cold solve instead of corrupting the result; the
// differential fuzzer holds replay-vs-cold to bit equality.  RowOrigin
// indexes the child's rows.  The returned trace describes the child and
// seeds the next replay in a chain.
//
// The savings are proportional to how much of the parent's work
// survives the edit: verification costs O(size of the replayed facts),
// versus the quadratic (signature-pruned) candidate scans a cold
// fixpoint spends discovering them.
func ReplayReduce(d *Delta, trace *ReduceTrace, tr *budget.Tracker, workers int) (*TrackedReduction, *ReduceTrace) {
	child := d.Child
	newTrace := &ReduceTrace{}
	n := len(child.Rows)

	identity := func() *TrackedReduction {
		res := &TrackedReduction{}
		res.Core = child.Clone()
		res.RowOrigin = make([]int, n)
		for i := range res.RowOrigin {
			res.RowOrigin[i] = i
		}
		return res
	}
	// Mirror the cold fixpoint's entry checks exactly: an exhausted
	// budget stops before any work, and an empty row is infeasible at
	// the input state (within a reduction no pass ever empties a row,
	// so this is the only state infeasibility can surface at).
	if tr.Interrupted() {
		res := identity()
		res.Stopped = true
		return res, newTrace
	}
	for _, r := range child.Rows {
		if len(r) == 0 {
			res := identity()
			res.Infeasible = true
			return res, newTrace
		}
	}
	if trace == nil {
		trace = &ReduceTrace{}
	}

	// Child row lookup for the parent's facts, plus input signatures
	// for the one-word subset prefilter.
	toChild := make([]int, len(d.Parent.Rows))
	for i := range toChild {
		toChild[i] = -1
	}
	for i, pi := range d.RowMap {
		if pi >= 0 && pi < len(toChild) {
			toChild[pi] = i
		}
	}
	sig := make([]uint64, n)
	for i, r := range child.Rows {
		sig[i] = sigOf(r)
	}

	// ----- replay row kills -----
	//
	// A fact verifies when the witness still precedes the victim in
	// the canonical (length, index) order and its columns are still a
	// subset of the victim's — exactly the cold engine's kill
	// predicate, evaluated at the child's input state.
	killed := make([]bool, n)
	for _, f := range trace.RowKills {
		bp, ap := int(f[0]), int(f[1])
		if bp >= len(toChild) || ap >= len(toChild) {
			continue
		}
		b, a := toChild[bp], toChild[ap]
		if b < 0 || a < 0 || killed[b] {
			continue
		}
		ra, rb := child.Rows[a], child.Rows[b]
		if len(ra) > len(rb) || (len(ra) == len(rb) && a >= b) {
			continue
		}
		if sig[a]&^sig[b] != 0 || !isSubsetSorted(ra, rb) {
			continue
		}
		killed[b] = true
		newTrace.RowKills = append(newTrace.RowKills, [2]int32{int32(b), int32(a)})
	}
	work := &Problem{NCol: child.NCol, Cost: child.Cost}
	orig := make([]int, 0, n)
	for i, r := range child.Rows {
		if !killed[i] {
			work.Rows = append(work.Rows, r)
			orig = append(orig, i)
		}
	}

	// ----- fixpoint on the remainder -----
	//
	// Essentials, kills the edit introduced and cascades the pre-kills
	// enable all surface here, with the parent's column facts hinting
	// the first column pass; with an unchanged instance the loop is one
	// confirming pass.  Facts it records are in work-row indices —
	// remap them (and the provenance) to child rows on the way out.
	subTrace := &ReduceTrace{}
	red := reduceTrackedT(work, tr, workers, subTrace, trace.ColKills)
	for i, o := range red.RowOrigin {
		red.RowOrigin[i] = orig[o]
	}
	for _, f := range subTrace.RowKills {
		newTrace.RowKills = append(newTrace.RowKills,
			[2]int32{int32(orig[f[0]]), int32(orig[f[1]])})
	}
	newTrace.ColKills = append(newTrace.ColKills, subTrace.ColKills...)
	return red, newTrace
}
