package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// sameTracked asserts two tracked reductions are bit-identical:
// essentials, core rows, provenance and flags.
func sameTracked(t *testing.T, label string, got, want *TrackedReduction) {
	t.Helper()
	if got.Infeasible != want.Infeasible || got.Stopped != want.Stopped {
		t.Fatalf("%s: flags differ: got (inf %v, stop %v) want (inf %v, stop %v)",
			label, got.Infeasible, got.Stopped, want.Infeasible, want.Stopped)
	}
	if !reflect.DeepEqual(got.Essential, want.Essential) {
		t.Fatalf("%s: essentials differ: got %v want %v", label, got.Essential, want.Essential)
	}
	if len(got.Core.Rows) != len(want.Core.Rows) {
		t.Fatalf("%s: core sizes differ: got %d want %d", label, len(got.Core.Rows), len(want.Core.Rows))
	}
	for i := range want.Core.Rows {
		g, w := got.Core.Rows[i], want.Core.Rows[i]
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: core row %d differs: got %v want %v", label, i, g, w)
		}
	}
	if !reflect.DeepEqual(got.RowOrigin, want.RowOrigin) {
		t.Fatalf("%s: origins differ: got %v want %v", label, got.RowOrigin, want.RowOrigin)
	}
}

// TestReduceWorkersBitIdentical is the determinism contract of the
// sharded dominance passes: for any worker count, both engines must
// reproduce the sequential reduction exactly — same essentials, same
// core, same provenance.  The shard floor is dropped to 1 so even the
// small random instances genuinely fan out goroutines (the suite runs
// under -race in `make check`).
func TestReduceWorkersBitIdentical(t *testing.T) {
	defer SetParMinShard(1)()
	for _, engine := range []string{"sparse", "dense"} {
		t.Run(engine, func(t *testing.T) {
			defer SetReduceEngine(engine)()
			rng := rand.New(rand.NewSource(47))
			for trial := 0; trial < 150; trial++ {
				p := randReduceProblem(rng, 40, 40, 3, trial%7 == 0)
				want := ReduceTrackedWorkers(p, nil, 1)
				for _, workers := range []int{2, 4, 8} {
					got := ReduceTrackedWorkers(p, nil, workers)
					sameTracked(t, engine, got, want)
				}
			}
		})
	}
}

// TestReduceWorkersBitIdenticalLarge exercises the production shard
// floor: an instance wide enough that the passes really split without
// any test override.
func TestReduceWorkersBitIdenticalLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	rows := make([][]int, 900)
	for i := range rows {
		n := 2 + rng.Intn(6)
		seen := map[int]bool{}
		for len(rows[i]) < n {
			j := rng.Intn(700)
			if !seen[j] {
				seen[j] = true
				rows[i] = append(rows[i], j)
			}
		}
	}
	cost := make([]int, 700)
	for j := range cost {
		cost[j] = 1 + rng.Intn(3)
	}
	p := MustNew(rows, 700, cost)
	defer SetReduceEngine("sparse")()
	want := ReduceTrackedWorkers(p, nil, 1)
	for _, workers := range []int{2, 4, 8} {
		sameTracked(t, "large", ReduceTrackedWorkers(p, nil, workers), want)
	}
}

// TestParShardPartition: the chunks must cover [0, n) exactly once for
// any worker count, including degenerate ones.
func TestParShardPartition(t *testing.T) {
	defer SetParMinShard(1)()
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 64} {
			hits := make([]int32, n) // distinct indices: no lock needed
			parShard(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// FuzzSignatureSubset cross-checks the signature prune against the
// exact merge test: sigOf must never reject a true subset (a ⊆ b ⇒
// sig(a) &^ sig(b) == 0), so the pruned predicate — reject on a set
// signature bit missing from b, else run the merge — must equal
// isSubsetSorted on every input.
func FuzzSignatureSubset(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3, 4})
	f.Add([]byte{0, 64, 128}, []byte{0, 64})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		decode := func(bs []byte) []int {
			seen := map[int]bool{}
			var out []int
			for k, c := range bs {
				if k >= 24 {
					break
				}
				// Spread ids across several multiples of 64 so aliasing
				// (distinct ids, same signature bit) is exercised.
				v := int(c) + (k%3)*256
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			// Insertion sort keeps the helper dependency-free.
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		}
		a, b := decode(ab), decode(bb)
		exact := isSubsetSorted(a, b)
		pruned := sigOf(a)&^sigOf(b) == 0 && isSubsetSorted(a, b)
		if exact != pruned {
			t.Fatalf("signature prune disagrees: a=%v b=%v exact=%v pruned=%v", a, b, exact, pruned)
		}
		if exact && sigOf(a)&^sigOf(b) != 0 {
			t.Fatalf("signature rejected a true subset: a=%v b=%v", a, b)
		}
	})
}
