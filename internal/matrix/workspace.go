package matrix

import (
	"slices"
	"sort"

	"ucp/internal/bitmat"
)

// Workspace holds the scratch buffers of the irredundant-cover
// kernels, so the greedy heuristic — which runs a cleanup after every
// build, hundreds of times per subgradient phase — can reuse them
// instead of re-allocating.  Buffers grow to high-water marks and are
// never shrunk.  A Workspace is single-owner state: it must not be
// shared between goroutines, and the slice returned by the *Ws methods
// is backed by the workspace, valid only until its next use.
type Workspace struct {
	coverCnt []int32
	order    []int32
	keys     []int64
	removed  []bool
	first    []bool
	out      []int
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// removalOrder fills ws.order with 0..len(cols)-1 sorted by (cost
// descending, position ascending) — the paper's drop-most-expensive-
// first order.  The comparator is total, so any correct sort yields
// the same sequence; the fast path packs (cost, position) into one
// int64 key and sorts without a comparator closure, falling back to
// sort.Slice only for costs too large to pack.
func removalOrder(ws *Workspace, cols []int, cost []int) []int32 {
	n := len(cols)
	ws.order = growI32(ws.order, n)
	const maxPack = 1<<31 - 1
	packable := true
	for _, j := range cols {
		if cost[j] > maxPack {
			packable = false
			break
		}
	}
	if !packable { // pathological costs: correctness over allocations
		for k := range ws.order {
			ws.order[k] = int32(k)
		}
		sort.Slice(ws.order, func(a, b int) bool {
			ka, kb := ws.order[a], ws.order[b]
			ca, cb := cost[cols[ka]], cost[cols[kb]]
			if ca != cb {
				return ca > cb
			}
			return ka < kb
		})
		return ws.order
	}
	ws.keys = growI64(ws.keys, n)
	for k, j := range cols {
		ws.keys[k] = (int64(maxPack-cost[j]) << 32) | int64(k)
	}
	slices.Sort(ws.keys)
	for k, key := range ws.keys {
		ws.order[k] = int32(key & 0xffffffff)
	}
	return ws.order
}

// IrredundantWs is Irredundant against caller-owned scratch: identical
// removals in the identical order, but every buffer (including the
// returned slice) lives in ws.  The result is valid until the next use
// of ws; callers that keep it must copy.
//
// Column row sets come from the problem's CSC mirror, so the whole
// cleanup touches only the selected columns' entries — O(Σ|col_j|) for
// j in cols — never the full matrix.
func (p *Problem) IrredundantWs(ws *Workspace, cols []int) []int {
	return p.irredundantWs(ws, cols, true)
}

// IrredundantUniqueWs is IrredundantWs for callers that guarantee cols
// holds no duplicate column — the greedy kernels, whose solutions list
// each column at most once by construction (an added column covers all
// its rows, so it can never be a candidate again).  Skipping the
// duplicate scan saves an O(ncols) clear per call on a path that runs
// after every greedy build.
func (p *Problem) IrredundantUniqueWs(ws *Workspace, cols []int) []int {
	return p.irredundantWs(ws, cols, false)
}

func (p *Problem) irredundantWs(ws *Workspace, cols []int, dedup bool) []int {
	start, idx := p.CSC()
	ws.removed = growBool(ws.removed, len(cols))
	removed := ws.removed
	for k := range removed {
		removed[k] = false
	}
	ws.coverCnt = growI32(ws.coverCnt, len(p.Rows))
	coverCnt := ws.coverCnt
	for i := range coverCnt {
		coverCnt[i] = 0
	}
	if dedup {
		ws.first = growBool(ws.first, p.NCol)
		first := ws.first
		for j := range first {
			first[j] = false
		}
		for k, j := range cols {
			if first[j] {
				// A duplicate owns no rows (its first occurrence does), so
				// it is trivially redundant: dropping it decrements no
				// counts, which is exactly what visiting it in removal
				// order would do.
				removed[k] = true
				continue
			}
			first[j] = true
			for _, i := range idx[start[j]:start[j+1]] {
				coverCnt[i]++
			}
		}
	} else {
		for _, j := range cols {
			for _, i := range idx[start[j]:start[j+1]] {
				coverCnt[i]++
			}
		}
	}

	// A column is redundant when every row it covers is covered at
	// least twice.  Removing a column only decrements cover counts, so
	// one pass in (cost desc, position asc) order performs exactly the
	// removals of the round-based drop-most-expensive-first loop.
	order := removalOrder(ws, cols, p.Cost)
	for _, k := range order {
		if removed[k] {
			continue
		}
		j := cols[k]
		col := idx[start[j]:start[j+1]]
		red := true
		for _, i := range col {
			if coverCnt[i] == 1 {
				red = false
				break
			}
		}
		if !red {
			continue
		}
		removed[k] = true
		for _, i := range col {
			coverCnt[i]--
		}
	}
	if ws.out == nil {
		ws.out = make([]int, 0, len(cols))
	}
	ws.out = ws.out[:0]
	for k, j := range cols {
		if !removed[k] {
			ws.out = append(ws.out, j)
		}
	}
	return ws.out
}

// IrredundantDenseWs is IrredundantDense against caller-owned scratch;
// same contract as IrredundantWs.  bm must hold exactly p.Rows, so the
// CSC mirror yields the same column row sets as bm's bit columns and
// the two variants share one kernel.
func (p *Problem) IrredundantDenseWs(ws *Workspace, bm *bitmat.Matrix, cols []int) []int {
	_ = bm
	return p.IrredundantWs(ws, cols)
}
