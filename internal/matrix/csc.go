package matrix

import "sync/atomic"

// cscIndex is the column-major (CSC) mirror of Problem.Rows: one
// contiguous row-index array plus per-column offsets.  The rows of
// column j are Idx[Start[j]:Start[j+1]], ascending — the same order a
// row-major scan visits them, which is what lets the lagrangian engine
// swap its O(nnz) row scatters for column gathers without changing a
// single bit of the float results (subtracting λ_i down a column hits
// the same values in the same order as scattering row by row).
type cscIndex struct {
	Start []int32 // len NCol+1
	Idx   []int32 // len NNZ, row indices grouped by column
}

// CSC returns the cached column-major mirror of the problem, building
// it on first use.  The two slices are shared and must be treated as
// read-only; concurrent callers (the restart portfolio's workers all
// rate columns of the same cyclic core) may race the first build, in
// which case each builds an identical index and one of them wins the
// cache slot.
//
// The cache follows Rows: every method of this package that mutates
// Rows in place invalidates it, but callers who reach into the
// exported fields directly must call InvalidateCSC themselves.
func (p *Problem) CSC() (start, idx []int32) {
	if c := p.csc.Load(); c != nil {
		return c.Start, c.Idx
	}
	c := buildCSC(p)
	p.csc.Store(c)
	return c.Start, c.Idx
}

func buildCSC(p *Problem) *cscIndex {
	nnz := 0
	for _, r := range p.Rows {
		nnz += len(r)
	}
	c := &cscIndex{Start: make([]int32, p.NCol+1), Idx: make([]int32, nnz)}
	for _, r := range p.Rows {
		for _, j := range r {
			c.Start[j+1]++
		}
	}
	for j := 0; j < p.NCol; j++ {
		c.Start[j+1] += c.Start[j]
	}
	// Fill cursor per column; a second pass in row order keeps each
	// column's row list ascending.
	fill := make([]int32, p.NCol)
	copy(fill, c.Start[:p.NCol])
	for i, r := range p.Rows {
		for _, j := range r {
			c.Idx[fill[j]] = int32(i)
			fill[j]++
		}
	}
	return c
}

// InvalidateCSC drops the cached column-major mirror.  Call it after
// mutating Rows through the exported fields; the reduction passes in
// this package call it for their own in-place edits.
func (p *Problem) InvalidateCSC() { p.csc.Store(nil) }

// cscCache is the cache slot embedded in Problem.  It lives in its own
// struct so Problem literals elsewhere keep working unchanged.
type cscCache struct {
	csc atomic.Pointer[cscIndex]
}
