package matrix

import "sort"

// Gimpel's reduction (Gimpel 1965; surveyed in Coudert 1994, the
// paper's reference [10]).  It applies to a row r = {j, k} where
// column j covers only r and c_j ≤ c_k: every minimal solution either
// takes k (covering r) or takes j, so
//
//	opt(P) = c_j + opt(P')
//
// where P' removes row r and column j and reprices k to c_k − c_j
// (if the reduced solution contains k, the original pays c_k in place
// of (c_k − c_j) + c_j; if not, j is added).  With uniform costs the
// situation is already subsumed by column dominance plus essentiality
// — the reason the main Reduce pipeline, which the paper's unit-cost
// benchmarks exercise, omits it — but for weighted covering (e.g. the
// literal-count objective) it removes structure dominance cannot.

// GimpelStep records one application, enough to lift a reduced
// solution back.
type GimpelStep struct {
	J, K int // the removed column j and the repriced column k
}

// GimpelReduction is the outcome of ReduceGimpel.
type GimpelReduction struct {
	Core  *Problem     // reduced problem (owns a private cost vector)
	Steps []GimpelStep // applications, in order
	// Offset is the cost paid by the lift regardless of the reduced
	// solution (Σ c_j over the steps).
	Offset int
}

// ReduceGimpel applies Gimpel's reduction to fixpoint.  It does not
// run the other reductions; callers typically interleave it with
// Reduce.  The returned core holds a copy of the cost vector (column
// k's price changes), so the input problem is not modified.
func ReduceGimpel(p *Problem) *GimpelReduction {
	cur := p.Clone()
	res := &GimpelReduction{}
	for {
		step, ok := findGimpel(cur)
		if !ok {
			break
		}
		res.Offset += cur.Cost[step.J]
		cur.Cost[step.K] -= cur.Cost[step.J]
		// Drop row r (the only row containing j) and column j.
		var rows [][]int
		for _, r := range cur.Rows {
			if containsSorted(r, step.J) {
				continue
			}
			rows = append(rows, r)
		}
		cur.Rows = rows
		res.Steps = append(res.Steps, step)
	}
	res.Core = cur
	return res
}

// findGimpel searches for an applicable (j, k) pair: a row of exactly
// two columns whose first column covers only that row at no greater
// cost than the second.
func findGimpel(p *Problem) (GimpelStep, bool) {
	colCount := make([]int, p.NCol)
	for _, r := range p.Rows {
		for _, j := range r {
			colCount[j]++
		}
	}
	for _, r := range p.Rows {
		if len(r) != 2 {
			continue
		}
		a, b := r[0], r[1]
		if colCount[a] == 1 && p.Cost[a] <= p.Cost[b] {
			return GimpelStep{J: a, K: b}, true
		}
		if colCount[b] == 1 && p.Cost[b] <= p.Cost[a] {
			return GimpelStep{J: b, K: a}, true
		}
	}
	return GimpelStep{}, false
}

// Lift maps a solution of the reduced core back to the original
// problem: steps are unwound in reverse, adding j whenever the reduced
// solution does not contain k.  The returned cost under the original
// problem equals core cost + Offset.
func (g *GimpelReduction) Lift(coreSolution []int) []int {
	sol := append([]int(nil), coreSolution...)
	in := make(map[int]bool, len(sol))
	for _, j := range sol {
		in[j] = true
	}
	for i := len(g.Steps) - 1; i >= 0; i-- {
		st := g.Steps[i]
		if !in[st.K] {
			sol = append(sol, st.J)
			in[st.J] = true
		}
	}
	sort.Ints(sol)
	return sol
}
