package matrix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteForce returns the optimal cover cost of p by exhaustive search
// over column subsets, or -1 when no cover exists.  Only usable for
// small column counts.
func bruteForce(p *Problem) int {
	active := p.ActiveCols()
	best := -1
	for mask := 0; mask < 1<<len(active); mask++ {
		var cols []int
		for b, j := range active {
			if mask>>b&1 == 1 {
				cols = append(cols, j)
			}
		}
		if !p.IsCover(cols) {
			continue
		}
		c := p.CostOf(cols)
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}

func randomProblem(rng *rand.Rand, maxRows, maxCols int) *Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(4)
	}
	return MustNew(rows, nc, cost)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([][]int{{0, 5}}, 3, nil); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := New([][]int{{0}}, 2, []int{1}); err == nil {
		t.Fatal("short cost vector accepted")
	}
	if _, err := New([][]int{{0}}, 1, []int{-2}); err == nil {
		t.Fatal("negative cost accepted")
	}
	p := MustNew([][]int{{2, 0, 2, 1}}, 3, nil)
	if len(p.Rows[0]) != 3 || p.Rows[0][0] != 0 || p.Rows[0][2] != 2 {
		t.Fatalf("row not sorted/deduped: %v", p.Rows[0])
	}
}

func TestIsCoverAndCost(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {0, 2}}, 3, []int{2, 3, 4})
	if p.IsCover([]int{0}) {
		t.Fatal("partial cover accepted")
	}
	if !p.IsCover([]int{0, 1}) {
		t.Fatal("valid cover rejected")
	}
	if p.CostOf([]int{0, 2}) != 6 {
		t.Fatal("cost wrong")
	}
}

func TestReduceEssential(t *testing.T) {
	// Row {1} forces column 1; the rows containing 1 then vanish.
	p := MustNew([][]int{{1}, {1, 2}, {0, 2}}, 3, nil)
	r := Reduce(p)
	if r.Infeasible {
		t.Fatal("feasible problem reported infeasible")
	}
	// Column 1 is essential; the remaining row {0,2} collapses by
	// column dominance (equal coverage and cost keeps the smaller id),
	// making column 0 essential in the next pass.
	if len(r.Essential) != 2 || r.Essential[0] != 0 || r.Essential[1] != 1 {
		t.Fatalf("essential = %v", r.Essential)
	}
	if len(r.Core.Rows) != 0 {
		t.Fatalf("core should be empty, has %d rows", len(r.Core.Rows))
	}
}

func TestReduceInfeasible(t *testing.T) {
	p := &Problem{Rows: [][]int{{}}, NCol: 2, Cost: []int{1, 1}}
	r := Reduce(p)
	if !r.Infeasible {
		t.Fatal("empty row not flagged infeasible")
	}
}

func TestReducePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 7, 7)
		want := bruteForce(p)
		r := Reduce(p)
		if r.Infeasible {
			t.Fatalf("trial %d: random problem infeasible", trial)
		}
		got := p.CostOf(r.Essential)
		if bf := bruteForce(r.Core); bf >= 0 {
			got += bf
		} else if len(r.Core.Rows) > 0 {
			t.Fatalf("trial %d: core unsolvable", trial)
		}
		if got != want {
			t.Fatalf("trial %d: reduced optimum %d, original %d\nrows=%v cost=%v ess=%v core=%v",
				trial, got, want, p.Rows, p.Cost, r.Essential, r.Core.Rows)
		}
	}
}

func TestCyclicCoreIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 8, 8)
		r := Reduce(p)
		r2 := Reduce(r.Core)
		if len(r2.Essential) != 0 {
			t.Fatalf("trial %d: core not stable, found essentials %v", trial, r2.Essential)
		}
		if len(r2.Core.Rows) != len(r.Core.Rows) {
			t.Fatalf("trial %d: core shrank on second reduction", trial)
		}
	}
}

func TestIrredundant(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {2, 3}}, 4, []int{1, 1, 1, 5})
	// {0,1,2,3} is redundant: {1,2} suffices.
	sol := p.Irredundant([]int{0, 1, 2, 3})
	if !p.IsCover(sol) {
		t.Fatal("irredundant result is not a cover")
	}
	if len(sol) != 2 {
		t.Fatalf("sol = %v, want 2 columns", sol)
	}
	for _, j := range sol {
		if j == 3 {
			t.Fatal("highest-cost redundant column kept")
		}
	}
}

func TestIrredundantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 8, 8)
		all := p.ActiveCols()
		sol := p.Irredundant(all)
		if !p.IsCover(sol) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		// No column of sol may be removable.
		for k := range sol {
			rest := append(append([]int(nil), sol[:k]...), sol[k+1:]...)
			if p.IsCover(rest) {
				t.Fatalf("trial %d: solution still redundant: %v", trial, sol)
			}
		}
	}
}

func TestFixAndRemoveColumn(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {2}}, 3, nil)
	q := p.FixColumn(1)
	if len(q.Rows) != 1 || q.Rows[0][0] != 2 {
		t.Fatalf("FixColumn rows = %v", q.Rows)
	}
	r := p.RemoveColumn(1)
	if len(r.Rows) != 3 {
		t.Fatal("RemoveColumn dropped rows")
	}
	if len(r.Rows[0]) != 1 || r.Rows[0][0] != 0 {
		t.Fatalf("RemoveColumn row 0 = %v", r.Rows[0])
	}
}

func TestComponents(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {3, 4}, {4}}, 5, nil)
	comps := Components(p)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0].RowIdx) != 2 || comps[0].RowIdx[0] != 0 {
		t.Fatalf("component 0 rows = %v", comps[0].RowIdx)
	}
	if len(comps[1].RowIdx) != 2 || comps[1].RowIdx[0] != 2 {
		t.Fatalf("component 1 rows = %v", comps[1].RowIdx)
	}
}

func TestComponentsSolveIndependently(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 8, 8)
		whole := bruteForce(p)
		sum := 0
		for _, c := range Components(p) {
			sum += bruteForce(c.Problem)
		}
		if sum != whole {
			t.Fatalf("trial %d: component sum %d != whole %d", trial, sum, whole)
		}
	}
}

func TestCompact(t *testing.T) {
	p := MustNew([][]int{{2, 7}, {7, 9}}, 10, nil)
	q, ids := p.Compact()
	if q.NCol != 3 {
		t.Fatalf("compact NCol = %d", q.NCol)
	}
	want := []int{2, 7, 9}
	for k, j := range want {
		if ids[k] != j {
			t.Fatalf("ids = %v", ids)
		}
	}
	if q.Rows[0][0] != 0 || q.Rows[0][1] != 1 || q.Rows[1][1] != 2 {
		t.Fatalf("compact rows = %v", q.Rows)
	}
}

func TestMISBoundValid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 8, 8)
		lb, rows := MISBound(p)
		if !IndependentRows(p, rows) {
			t.Fatalf("trial %d: MIS rows not independent", trial)
		}
		opt := bruteForce(p)
		if lb > opt {
			t.Fatalf("trial %d: MIS bound %d exceeds optimum %d", trial, lb, opt)
		}
	}
}

func TestMISBoundExact(t *testing.T) {
	// Three pairwise disjoint rows: bound = sum of cheapest columns.
	p := MustNew([][]int{{0, 1}, {2, 3}, {4}}, 5, []int{3, 1, 2, 2, 7})
	lb, rows := MISBound(p)
	if lb != 1+2+7 {
		t.Fatalf("lb = %d, want 10", lb)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQuickReduceNeverRaisesOptimum(t *testing.T) {
	// Property: reduction plus brute force of the core equals brute
	// force of the original, for arbitrary small matrices.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 6, 6)
		r := Reduce(p)
		got := p.CostOf(r.Essential)
		if len(r.Core.Rows) > 0 {
			got += bruteForce(r.Core)
		}
		return got == bruteForce(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveColsSorted(t *testing.T) {
	p := MustNew([][]int{{9, 1}, {4}}, 10, nil)
	got := p.ActiveCols()
	if !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("ActiveCols = %v", got)
	}
}

func TestReduceTrackedProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 9, 9)
		tr := ReduceTracked(p)
		if tr.Infeasible {
			continue
		}
		if len(tr.RowOrigin) != len(tr.Core.Rows) {
			t.Fatalf("trial %d: %d origins for %d core rows", trial, len(tr.RowOrigin), len(tr.Core.Rows))
		}
		seen := map[int]bool{}
		for i, o := range tr.RowOrigin {
			if o < 0 || o >= len(p.Rows) {
				t.Fatalf("trial %d: origin %d out of range", trial, o)
			}
			if seen[o] {
				t.Fatalf("trial %d: origin %d repeated", trial, o)
			}
			seen[o] = true
			// A core row must be a sub-row of its origin (columns may
			// have been removed by dominance, never added).
			if !isSubsetSorted(tr.Core.Rows[i], p.Rows[o]) {
				t.Fatalf("trial %d: core row %v not within origin %v", trial, tr.Core.Rows[i], p.Rows[o])
			}
		}
	}
}

func TestFixColumnTracked(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {2}}, 3, nil)
	q, kept := p.FixColumnTracked(1)
	if len(q.Rows) != 1 || len(kept) != 1 || kept[0] != 2 {
		t.Fatalf("rows=%v kept=%v", q.Rows, kept)
	}
}
