package matrix

import (
	"math/rand"
	"testing"
)

func TestGimpelTextbookCase(t *testing.T) {
	// Row 0 = {0, 1}, column 0 covers only row 0, c_0 = 1 < c_1 = 3.
	// Column 1 also covers row 1 = {1, 2}.
	p := MustNew([][]int{{0, 1}, {1, 2}}, 3, []int{1, 3, 1})
	g := ReduceGimpel(p)
	// The reduction cascades: first (j=0, k=1) reprices column 1 to 2,
	// then the surviving row {1, 2} is itself a site (j=2, k=1), so
	// the whole problem collapses with offset 1 + 1 = 2 — exactly the
	// optimum ({0, 2}).
	if len(g.Steps) != 2 {
		t.Fatalf("expected the reduction to cascade twice, got %v", g.Steps)
	}
	if len(g.Core.Rows) != 0 {
		t.Fatalf("core should be empty, has %d rows", len(g.Core.Rows))
	}
	want := bruteForce(p)
	coreOpt := bruteForce(g.Core)
	if g.Offset+coreOpt != want {
		t.Fatalf("offset %d + core %d != original optimum %d", g.Offset, coreOpt, want)
	}
}

func TestGimpelPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	applied := 0
	for trial := 0; trial < 500; trial++ {
		p := randomProblem(rng, 8, 8)
		g := ReduceGimpel(p)
		if len(g.Steps) > 0 {
			applied++
		}
		want := bruteForce(p)
		core := bruteForce(g.Core)
		if core < 0 {
			t.Fatalf("trial %d: core unsolvable", trial)
		}
		if g.Offset+core != want {
			t.Fatalf("trial %d: offset %d + core %d != optimum %d\nrows=%v cost=%v steps=%v",
				trial, g.Offset, core, want, p.Rows, p.Cost, g.Steps)
		}
	}
	if applied == 0 {
		t.Log("note: no random instance triggered Gimpel this run")
	}
}

func TestGimpelLiftProducesValidCover(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 500; trial++ {
		p := randomProblem(rng, 8, 8)
		g := ReduceGimpel(p)
		if len(g.Steps) == 0 {
			continue
		}
		// Solve the core by brute force, keeping a witness.
		active := g.Core.ActiveCols()
		best := -1
		var bestCols []int
		for mask := 0; mask < 1<<len(active); mask++ {
			var cols []int
			for b, j := range active {
				if mask>>b&1 == 1 {
					cols = append(cols, j)
				}
			}
			if !g.Core.IsCover(cols) {
				continue
			}
			if c := g.Core.CostOf(cols); best < 0 || c < best {
				best, bestCols = c, cols
			}
		}
		lifted := g.Lift(bestCols)
		if !p.IsCover(lifted) {
			t.Fatalf("trial %d: lifted solution is not a cover of the original", trial)
		}
		if p.CostOf(lifted) != g.Offset+best {
			t.Fatalf("trial %d: lifted cost %d != offset %d + core %d",
				trial, p.CostOf(lifted), g.Offset, best)
		}
		if p.CostOf(lifted) != bruteForce(p) {
			t.Fatalf("trial %d: lifted solution not optimal", trial)
		}
	}
}

func TestGimpelUniformCostsSubsumed(t *testing.T) {
	// With unit costs the standard reductions alone reach the same
	// optimum on any Gimpel-prone structure: the claim DESIGN.md makes
	// for omitting Gimpel from the main pipeline.
	rng := rand.New(rand.NewSource(143))
	for trial := 0; trial < 300; trial++ {
		nr, nc := 1+rng.Intn(8), 1+rng.Intn(8)
		rows := make([][]int, nr)
		for i := range rows {
			for j := 0; j < nc; j++ {
				if rng.Intn(3) == 0 {
					rows[i] = append(rows[i], j)
				}
			}
			if len(rows[i]) == 0 {
				rows[i] = append(rows[i], rng.Intn(nc))
			}
		}
		p := MustNew(rows, nc, nil)
		g := ReduceGimpel(p)
		if len(g.Steps) == 0 {
			continue
		}
		// Every unit-cost Gimpel site must also fall to Reduce.
		red := Reduce(p)
		got := p.CostOf(red.Essential)
		if len(red.Core.Rows) > 0 {
			got += bruteForce(red.Core)
		}
		if got != bruteForce(p) {
			t.Fatalf("trial %d: standard reductions broke the optimum", trial)
		}
	}
}
