package matrix

import (
	"math/rand"
	"reflect"
	"testing"

	"ucp/internal/bitmat"
)

// bitmatOf builds the dense mirror of p for the dense-kernel tests.
func bitmatOf(p *Problem) *bitmat.Matrix { return bitmat.Build(p.Rows, p.NCol) }

func randReduceProblem(rng *rand.Rand, maxRows, maxCols, maxCost int, allowEmpty bool) *Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 && !allowEmpty {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	p := &Problem{Rows: rows, NCol: nc, Cost: cost}
	return p
}

// TestDenseSparseReductionsAgree is the differential contract of the
// two reduction engines: on any instance they must produce the exact
// same essentials, core rows and row provenance — they are one
// algorithm in two data layouts.
func TestDenseSparseReductionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		p := randReduceProblem(rng, 30, 30, 3, trial%5 == 0)

		restore := SetReduceEngine("sparse")
		want := ReduceTracked(p)
		restore()

		restore = SetReduceEngine("dense")
		got := ReduceTracked(p)
		restore()

		if got.Infeasible != want.Infeasible {
			t.Fatalf("trial %d: infeasibility disagreement (dense %v, sparse %v)",
				trial, got.Infeasible, want.Infeasible)
		}
		if !reflect.DeepEqual(got.Essential, want.Essential) {
			t.Fatalf("trial %d: essentials differ: dense %v sparse %v", trial, got.Essential, want.Essential)
		}
		if len(got.Core.Rows) != len(want.Core.Rows) {
			t.Fatalf("trial %d: core sizes differ: dense %d sparse %d",
				trial, len(got.Core.Rows), len(want.Core.Rows))
		}
		for i := range want.Core.Rows {
			g, w := got.Core.Rows[i], want.Core.Rows[i]
			if len(g) == 0 && len(w) == 0 {
				continue // nil vs empty slice are the same row
			}
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("trial %d row %d: dense %v sparse %v", trial, i, g, w)
			}
		}
		if !reflect.DeepEqual(got.RowOrigin, want.RowOrigin) {
			t.Fatalf("trial %d: row origins differ: dense %v sparse %v", trial, got.RowOrigin, want.RowOrigin)
		}
	}
}

// TestDenseReductionPreservesOptimumInvariants: the dense core must be
// an equivalent problem — every original row either was solved by an
// essential or descends to a core row that is a subset of it.
func TestDenseReductionOriginValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	restore := SetReduceEngine("dense")
	defer restore()
	for trial := 0; trial < 200; trial++ {
		p := randReduceProblem(rng, 25, 25, 3, false)
		red := ReduceTracked(p)
		if red.Infeasible {
			continue
		}
		if len(red.RowOrigin) != len(red.Core.Rows) {
			t.Fatalf("trial %d: origin length mismatch", trial)
		}
		for i, o := range red.RowOrigin {
			if o < 0 || o >= len(p.Rows) {
				t.Fatalf("trial %d: origin %d out of range", trial, o)
			}
			if !isSubsetSorted(red.Core.Rows[i], p.Rows[o]) {
				t.Fatalf("trial %d: core row %v not a subset of its origin %v",
					trial, red.Core.Rows[i], p.Rows[o])
			}
		}
	}
}

// TestIrredundantDenseAgrees: the bit-matrix cleanup must remove the
// exact same columns as the sparse one on any selection, including
// redundant oversized covers and duplicate entries.
func TestIrredundantDenseAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		p := randReduceProblem(rng, 30, 30, 3, false)
		bm := bitmatOf(p)
		// An oversized selection: every column with a coin flip, plus a
		// few duplicates.
		var sel []int
		for j := 0; j < p.NCol; j++ {
			if rng.Intn(2) == 0 {
				sel = append(sel, j)
			}
		}
		for k := 0; k < 3 && len(sel) > 0; k++ {
			sel = append(sel, sel[rng.Intn(len(sel))])
		}
		want := p.Irredundant(sel)
		got := p.IrredundantDense(bm, sel)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: dense %v sparse %v (sel %v)", trial, got, want, sel)
		}
	}
}

func TestDenseEligibleThresholds(t *testing.T) {
	// A mid-size, reasonably dense instance qualifies.
	rng := rand.New(rand.NewSource(43))
	p := randReduceProblem(rng, 200, 100, 1, false)
	for len(p.Rows) < denseMinRows {
		p.Rows = append(p.Rows, []int{0})
	}
	if !DenseEligible(p) {
		t.Fatal("mid-size dense instance rejected")
	}
	// An ultra-sparse, very wide matrix must stay sparse: one element
	// per row over a huge universe.
	wide := &Problem{NCol: 100000, Cost: make([]int, 100000)}
	for i := 0; i < 5000; i++ {
		wide.Rows = append(wide.Rows, []int{i * 17 % 100000})
	}
	if DenseEligible(wide) {
		t.Fatal("ultra-sparse wide matrix accepted")
	}
	// Degenerate sizes.
	if DenseEligible(&Problem{NCol: 4, Cost: []int{1, 1, 1, 1}}) {
		t.Fatal("empty problem accepted")
	}
}
