package matrix

import (
	"sort"
	"sync/atomic"

	"ucp/internal/bitmat"
	"ucp/internal/budget"
)

// Thresholds for choosing the dense bit-matrix reduction engine,
// calibrated with `make bench` on the cyclic-covering substrate
// benches (see DESIGN.md §8).  The dense engine pays a build of
// O(nnz + bits/64) and then does every dominance test in words; the
// sparse engine pays a merge over sorted []int per test.  Dense wins
// whenever the word strips are short relative to the average row, and
// its memory (two orientations) must stay bounded.
const (
	denseMinRows = 4       // below this the build outweighs the passes
	denseMaxRows = 8192    // O(R²·words) row dominance must stay sane
	denseMaxCols = 8192    // same for column dominance
	denseMaxBits = 1 << 23 // ≤ 1 MiB per orientation
	// Dense needs ⌈cols/64⌉ words per subset test where sparse needs
	// ~avgRowLen int compares: require rows·cols ≤ factor·nnz, i.e.
	// cols ≤ factor·avgRowLen, so ultra-sparse wide matrices stay on
	// the sparse path.
	denseDensityFactor = 256
)

// reduceOverride forces an engine in tests: 0 auto, 1 sparse, 2 dense.
var reduceOverride int

// DenseEligible reports whether the dense bit-matrix engine should
// carry this problem's reductions.  The decision counts active columns
// (the dense engine compacts the column universe first), so a problem
// with a huge sparse id space but few live columns still qualifies.
func DenseEligible(p *Problem) bool {
	nr := len(p.Rows)
	if nr < denseMinRows || nr > denseMaxRows {
		return false
	}
	seen := make([]bool, p.NCol)
	nnz, nact := 0, 0
	for _, r := range p.Rows {
		nnz += len(r)
		for _, j := range r {
			if !seen[j] {
				seen[j] = true
				nact++
			}
		}
	}
	if nact == 0 || nact > denseMaxCols {
		return false
	}
	bits := nr * nact
	return bits <= denseMaxBits && bits <= denseDensityFactor*nnz
}

// IrredundantDense is Irredundant reading each column's row set from
// the dense bit-matrix mirror bm of p (bm must hold exactly p.Rows):
// the same removals in the same order — the single (cost desc,
// position asc) pass, first-occurrence duplicates, monotone counts —
// without the O(nnz) selection-CSR build the sparse version pays, so
// the greedy heuristic can afford its per-build cleanup.
func (p *Problem) IrredundantDense(bm *bitmat.Matrix, cols []int) []int {
	var ws Workspace
	return p.IrredundantDenseWs(&ws, bm, cols)
}

// denseReducer runs the essential / row-dominance / column-dominance
// fixpoint on a bit-matrix with the column universe compacted to the
// active columns.  Every pass mirrors the sparse engine exactly —
// same visit orders, same tie-breaks — so the two engines produce
// identical cores, essentials and row origins (the differential tests
// in dense_test.go hold them to that).
type denseReducer struct {
	bm       *bitmat.Matrix
	colID    []int // compact id -> original column id
	cost     []int // cost per compact id
	rowLen   []int
	colLen   []int
	aliveRow []bool
	nAlive   int
}

func newDenseReducer(p *Problem) *denseReducer {
	active := p.ActiveCols()
	idx := make([]int32, p.NCol)
	for k, j := range active {
		idx[j] = int32(k)
	}
	nr, nc := len(p.Rows), len(active)
	d := &denseReducer{
		bm:       bitmat.New(nr, nc),
		colID:    active,
		cost:     make([]int, nc),
		rowLen:   make([]int, nr),
		colLen:   make([]int, nc),
		aliveRow: make([]bool, nr),
		nAlive:   nr,
	}
	for k, j := range active {
		d.cost[k] = p.Cost[j]
	}
	for i, r := range p.Rows {
		d.aliveRow[i] = true
		d.rowLen[i] = len(r)
		for _, j := range r {
			k := int(idx[j])
			d.bm.SetBit(i, k)
			d.colLen[k]++
		}
	}
	return d
}

func (d *denseReducer) killRow(i int) {
	d.bm.Row(i).Range(func(j int) bool {
		d.colLen[j]--
		return true
	})
	d.bm.KillRow(i)
	d.rowLen[i] = 0
	d.aliveRow[i] = false
	d.nAlive--
}

func (d *denseReducer) killCol(j int) {
	d.bm.Col(j).Range(func(i int) bool {
		d.rowLen[i]--
		return true
	})
	d.bm.KillCol(j)
	d.colLen[j] = 0
}

// decode rebuilds a sparse Problem (original column ids, original row
// order) from the surviving bits, with row provenance.
func (d *denseReducer) decode(p *Problem) (*Problem, []int) {
	core := &Problem{NCol: p.NCol, Cost: append([]int(nil), p.Cost...)}
	var origin []int
	for i := range d.aliveRow {
		if !d.aliveRow[i] {
			continue
		}
		row := make([]int, 0, d.rowLen[i])
		d.bm.Row(i).Range(func(j int) bool {
			row = append(row, d.colID[j])
			return true
		})
		core.Rows = append(core.Rows, row)
		origin = append(origin, i)
	}
	return core, origin
}

// denseReduce is the bit-matrix implementation of reduceTracked's
// fixpoint loop.  It fills res and returns; the caller sorts
// res.Essential.  Both dominance passes gather kill marks against
// immutable pass-start state — the kill sets are order-independent,
// see the sparse dropSupersetRows / dropDominatedCols for the
// argument — so they shard across workers and stay bit-identical to
// the sequential engine for any worker count.  The word-strip folds
// (bitmat.Vec.Fold) serve as the 64-bit occupancy signatures,
// recomputed exactly per pass since the matrix is frozen during each
// gather.
func denseReduce(p *Problem, tr *budget.Tracker, res *TrackedReduction, workers int) {
	d := newDenseReducer(p)
	nr, nc := d.bm.NRows, d.bm.NCols
	ess := make([]bool, nc)
	dead := make([]bool, nc)
	scratch := make([]int, 0, nr)
	order := make([]int, 0, nr)
	active := make([]int, 0, nc)
	rowSig := make([]uint64, nr)
	colSig := make([]uint64, nc)
	kill := make([]bool, nr)

	for {
		if tr.Interrupted() {
			res.Stopped = true
			break
		}
		changed := false

		// Empty rows mean infeasibility.
		for i := 0; i < nr; i++ {
			if d.aliveRow[i] && d.rowLen[i] == 0 {
				res.Infeasible = true
				res.Core, res.RowOrigin = d.decode(p)
				return
			}
		}

		// Essential columns: any row covered by a single column.
		scratch = scratch[:0] // essential compact ids, first-seen order
		for i := 0; i < nr; i++ {
			if d.aliveRow[i] && d.rowLen[i] == 1 {
				j := d.bm.Row(i).First()
				if !ess[j] {
					ess[j] = true
					scratch = append(scratch, j)
					res.Essential = append(res.Essential, d.colID[j])
				}
			}
		}
		if len(scratch) > 0 {
			changed = true
			for _, j := range scratch {
				// Collect then kill: KillRow mutates the column view.
				rows := d.bm.Col(j).Bits(order[:0])
				for _, i := range rows {
					d.killRow(i)
				}
			}
		}

		// Row dominance: keep only inclusion-minimal rows.  Candidates
		// sort by (popcount, index) exactly like the sparse engine; row
		// b dies iff some earlier candidate is a subset of it.
		order = order[:0]
		for i := 0; i < nr; i++ {
			if d.aliveRow[i] {
				order = append(order, i)
			}
		}
		sortByLenThenIdx(order, d.rowLen)
		for _, i := range order {
			rowSig[i] = d.bm.Row(i).Fold()
			kill[i] = false
		}
		var nKill atomic.Int64
		parShard(len(order), workers, func(lo, hi int) {
			kills := 0
			for bi := lo; bi < hi; bi++ {
				b := order[bi]
				rowB, sb := d.bm.Row(b), rowSig[b]
				for _, a := range order[:bi] {
					if rowSig[a]&^sb != 0 {
						continue
					}
					if d.bm.Row(a).SubsetOf(rowB) {
						kill[b] = true
						kills++
						break
					}
				}
			}
			if kills > 0 {
				nKill.Add(int64(kills))
			}
		})
		if nKill.Load() > 0 {
			changed = true
			for _, b := range order {
				if kill[b] {
					d.killRow(b)
				}
			}
		}

		// Column dominance: drop column k when some other column j
		// covers every row k covers at no greater cost.
		active = active[:0]
		for j := 0; j < nc; j++ {
			dead[j] = false
			if d.colLen[j] > 0 {
				active = append(active, j)
				colSig[j] = d.bm.Col(j).Fold()
			}
		}
		var nDead atomic.Int64
		parShard(len(active), workers, func(lo, hi int) {
			kills := 0
			for ki := lo; ki < hi; ki++ {
				k := active[ki]
				colK := d.bm.Col(k)
				sk, costK, lenK := colSig[k], d.cost[k], d.colLen[k]
				for _, j := range active {
					if j == k || d.cost[j] > costK {
						continue
					}
					if sk&^colSig[j] != 0 || lenK > d.colLen[j] {
						continue
					}
					if !colK.SubsetOf(d.bm.Col(j)) {
						continue
					}
					// Equal coverage and cost: keep the smaller id (compact
					// order preserves original id order).
					if lenK == d.colLen[j] && d.cost[j] == costK && j > k {
						continue
					}
					dead[k] = true
					kills++
					break
				}
			}
			if kills > 0 {
				nDead.Add(int64(kills))
			}
		})
		if nDead.Load() > 0 {
			changed = true
			for _, k := range active {
				if dead[k] {
					d.killCol(k)
				}
			}
		}

		if !changed {
			break
		}
	}
	res.Core, res.RowOrigin = d.decode(p)
}

// sortByLenThenIdx sorts row indices by (length ascending, index
// ascending) — the same visit order the sparse engine uses.
func sortByLenThenIdx(order []int, length []int) {
	sort.Slice(order, func(a, b int) bool {
		la, lb := length[order[a]], length[order[b]]
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
}
