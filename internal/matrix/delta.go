package matrix

import (
	"fmt"
	"sort"
)

// Delta records an edit script from a parent problem to a child: the
// two instances plus the row correspondence between them.  Deltas are
// the unit of incremental re-solving — ReplayReduce uses the parent's
// recorded reduction facts to shortcut the child's fixpoint, and the
// scg layer reuses whole portfolio blocks whose rows survived the edit
// untouched.
//
// Column ids are stable across a delta by construction: AddCols
// appends fresh ids at the top of the universe and RemoveCols empties
// a column without renumbering, so a column id means the same column
// in parent and child.  Rows keep their relative order (edits remove
// or append, never reorder), which the replay's duplicate-row
// tie-break relies on.
//
// A Delta is immutable: every edit method returns a new handle against
// the same parent.  The child shares the storage of unedited rows with
// the parent, so problems reachable through a Delta must be treated as
// read-only (every solver in this module already does).
type Delta struct {
	// Parent and Child are the endpoints of the edit script.
	Parent *Problem
	Child  *Problem
	// RowMap[i] is the parent row index child row i descends from, or
	// -1 for a row the edit script added.  Matched indices are strictly
	// increasing: the edit script never reorders surviving rows.
	RowMap []int
}

// BeginDelta opens an identity delta on p: child == parent, every row
// mapped to itself.  Edit methods chain from it.
func (p *Problem) BeginDelta() *Delta {
	m := make([]int, len(p.Rows))
	for i := range m {
		m[i] = i
	}
	return &Delta{Parent: p, Child: p, RowMap: m}
}

// AddRows returns the delta that appends the given rows to p.  Rows
// are normalised like New (sorted, deduplicated, bounds-checked).
func (p *Problem) AddRows(rows [][]int) (*Delta, error) { return p.BeginDelta().AddRows(rows) }

// RemoveRows returns the delta that deletes the rows at the given
// indices from p.
func (p *Problem) RemoveRows(idx []int) (*Delta, error) { return p.BeginDelta().RemoveRows(idx) }

// AddCols returns the delta that appends len(cost) fresh columns to
// p's universe; cover[k] lists the row indices the k-th new column
// covers.
func (p *Problem) AddCols(cost []int, cover [][]int) (*Delta, error) {
	return p.BeginDelta().AddCols(cost, cover)
}

// RemoveCols returns the delta that empties the given columns of p:
// the ids stay in the universe (and keep their cost) but cover no row.
func (p *Problem) RemoveCols(ids []int) (*Delta, error) { return p.BeginDelta().RemoveCols(ids) }

// AddRows appends rows to the child, normalising each like New.
func (d *Delta) AddRows(rows [][]int) (*Delta, error) {
	c := d.Child
	nr := make([][]int, 0, len(c.Rows)+len(rows))
	nr = append(nr, c.Rows...)
	nm := make([]int, 0, len(d.RowMap)+len(rows))
	nm = append(nm, d.RowMap...)
	for i, r := range rows {
		rr := append([]int(nil), r...)
		sort.Ints(rr)
		out := rr[:0]
		for k, j := range rr {
			if j < 0 || j >= c.NCol {
				return nil, fmt.Errorf("matrix: added row %d references column %d outside universe %d", i, j, c.NCol)
			}
			if k > 0 && rr[k-1] == j {
				continue
			}
			out = append(out, j)
		}
		nr = append(nr, out)
		nm = append(nm, -1)
	}
	return &Delta{Parent: d.Parent, Child: &Problem{Rows: nr, NCol: c.NCol, Cost: c.Cost}, RowMap: nm}, nil
}

// RemoveRows deletes the child rows at the given indices (duplicates
// collapsed).
func (d *Delta) RemoveRows(idx []int) (*Delta, error) {
	c := d.Child
	drop := make([]bool, len(c.Rows))
	for _, i := range idx {
		if i < 0 || i >= len(c.Rows) {
			return nil, fmt.Errorf("matrix: RemoveRows index %d out of range (%d rows)", i, len(c.Rows))
		}
		drop[i] = true
	}
	var nr [][]int
	var nm []int
	for i, r := range c.Rows {
		if !drop[i] {
			nr = append(nr, r)
			nm = append(nm, d.RowMap[i])
		}
	}
	return &Delta{Parent: d.Parent, Child: &Problem{Rows: nr, NCol: c.NCol, Cost: c.Cost}, RowMap: nm}, nil
}

// AddCols appends len(cost) fresh columns (ids NCol..NCol+k-1) to the
// child's universe; cover[k] lists the child row indices the k-th new
// column covers.  A fresh id is larger than every existing one, so the
// insert keeps each row sorted with a single append.
func (d *Delta) AddCols(cost []int, cover [][]int) (*Delta, error) {
	if len(cost) != len(cover) {
		return nil, fmt.Errorf("matrix: AddCols got %d costs for %d columns", len(cost), len(cover))
	}
	c := d.Child
	nc := c.NCol + len(cost)
	ncost := make([]int, 0, nc)
	ncost = append(ncost, c.Cost...)
	for k, ct := range cost {
		if ct < 0 {
			return nil, fmt.Errorf("matrix: added column %d has negative cost %d", k, ct)
		}
		ncost = append(ncost, ct)
	}
	nr := make([][]int, len(c.Rows))
	copy(nr, c.Rows)
	touched := make([]bool, len(c.Rows))
	for k, rows := range cover {
		id := c.NCol + k
		for _, i := range rows {
			if i < 0 || i >= len(nr) {
				return nil, fmt.Errorf("matrix: added column %d covers row %d out of range (%d rows)", k, i, len(nr))
			}
			if !touched[i] {
				// Copy on first touch: the old slice may be shared with
				// the parent (or an earlier delta in the chain).
				nr[i] = append(make([]int, 0, len(nr[i])+len(cost)), nr[i]...)
				touched[i] = true
			}
			if r := nr[i]; len(r) > 0 && r[len(r)-1] == id {
				continue // duplicate row index in cover
			}
			nr[i] = append(nr[i], id)
		}
	}
	nm := append([]int(nil), d.RowMap...)
	return &Delta{Parent: d.Parent, Child: &Problem{Rows: nr, NCol: nc, Cost: ncost}, RowMap: nm}, nil
}

// RemoveCols empties the given child columns: every row drops them,
// the universe and the cost vector stay put.
func (d *Delta) RemoveCols(ids []int) (*Delta, error) {
	c := d.Child
	dead := make([]bool, c.NCol)
	for _, j := range ids {
		if j < 0 || j >= c.NCol {
			return nil, fmt.Errorf("matrix: RemoveCols id %d outside universe %d", j, c.NCol)
		}
		dead[j] = true
	}
	nr := make([][]int, len(c.Rows))
	for i, r := range c.Rows {
		hit := false
		for _, j := range r {
			if dead[j] {
				hit = true
				break
			}
		}
		if !hit {
			nr[i] = r
			continue
		}
		out := make([]int, 0, len(r)-1)
		for _, j := range r {
			if !dead[j] {
				out = append(out, j)
			}
		}
		nr[i] = out
	}
	nm := append([]int(nil), d.RowMap...)
	return &Delta{Parent: d.Parent, Child: &Problem{Rows: nr, NCol: c.NCol, Cost: c.Cost}, RowMap: nm}, nil
}

// rowContentHash folds a row's column ids into a 64-bit hash for
// DeltaBetween's content matching (splitmix-style mixing per id).
func rowContentHash(r []int) uint64 {
	h := uint64(len(r))*0x9e3779b97f4a7c15 + 1
	for _, j := range r {
		h = mixDelta(h ^ uint64(j)*0xbf58476d1ce4e5b9)
	}
	return h
}

func mixDelta(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DeltaBetween reconstructs a delta from two independently built
// problems, for callers (the ucpd parent-chaining path) that hold the
// instances but never kept a handle.  Rows are matched greedily and
// monotonically by content: each child row takes the earliest
// unmatched parent row with identical content that keeps the matched
// parent indices strictly increasing; everything else maps to -1.  The
// match is a hint, not a promise — ReplayReduce re-verifies every
// replayed fact against the child's actual contents — so an imperfect
// match costs speed, never correctness.
//
// The two universes may differ in size; costs are not compared here
// (the scg reuse layer checks the costs a block actually references).
func DeltaBetween(parent, child *Problem) *Delta {
	// Bucket parent rows by content hash, each bucket in ascending row
	// order; consume buckets front to back to keep the match monotone.
	buckets := make(map[uint64][]int, len(parent.Rows))
	for i, r := range parent.Rows {
		h := rowContentHash(r)
		buckets[h] = append(buckets[h], i)
	}
	m := make([]int, len(child.Rows))
	last := -1
	for i, r := range child.Rows {
		m[i] = -1
		h := rowContentHash(r)
		b := buckets[h]
		for k, pi := range b {
			if pi > last && sameRow(parent.Rows[pi], r) {
				m[i] = pi
				last = pi
				buckets[h] = b[k+1:]
				break
			}
		}
	}
	return &Delta{Parent: parent, Child: child, RowMap: m}
}

func sameRow(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if b[i] != x {
			return false
		}
	}
	return true
}

// Equal reports whether two problems are identical instances: same
// universe, same costs, same rows in the same order.  It is the
// validation the ancestor arena runs behind a fingerprint match.
func Equal(p, q *Problem) bool {
	if p == nil || q == nil {
		return p == q
	}
	if p.NCol != q.NCol || len(p.Rows) != len(q.Rows) || len(p.Cost) != len(q.Cost) {
		return false
	}
	for j, c := range p.Cost {
		if q.Cost[j] != c {
			return false
		}
	}
	for i, r := range p.Rows {
		if !sameRow(r, q.Rows[i]) {
			return false
		}
	}
	return true
}
