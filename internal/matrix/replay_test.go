package matrix

import (
	"math/rand"
	"testing"
)

// editScript applies up to 8 edits decoded from raw bytes to p.  The
// decoding is fully deterministic in (p, raw) and every operand is
// clamped into range, so any byte string is a valid script — the shape
// the fuzzer needs.
func editScript(p *Problem, raw []byte) (*Delta, error) {
	d := p.BeginDelta()
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		if n <= 0 {
			return 0
		}
		rnd = mixDelta(rnd + 0xbf58476d1ce4e5b9)
		return int(rnd % uint64(n))
	}
	ops := 0
	for k := 0; k < len(raw) && ops < 8; k++ {
		b := raw[k]
		rnd ^= uint64(b) * 0x94d049bb133111eb
		var err error
		switch b % 5 {
		case 0: // fresh random row
			n := 1 + next(4)
			row := make([]int, 0, n)
			for t := 0; t < n; t++ {
				row = append(row, next(d.Child.NCol))
			}
			d, err = d.AddRows([][]int{row})
		case 1: // superset of an existing row (the near-duplicate case)
			if len(d.Child.Rows) == 0 {
				continue
			}
			src := d.Child.Rows[next(len(d.Child.Rows))]
			row := append(append([]int(nil), src...), next(d.Child.NCol))
			d, err = d.AddRows([][]int{row})
		case 2: // drop a row
			if len(d.Child.Rows) <= 1 {
				continue
			}
			d, err = d.RemoveRows([]int{next(len(d.Child.Rows))})
		case 3: // fresh column covering a few rows
			var cover []int
			for t := 0; t <= next(3); t++ {
				if len(d.Child.Rows) > 0 {
					cover = append(cover, next(len(d.Child.Rows)))
				}
			}
			d, err = d.AddCols([]int{1 + next(3)}, [][]int{cover})
		case 4: // empty a column
			d, err = d.RemoveCols([]int{next(d.Child.NCol)})
		}
		if err != nil {
			return nil, err
		}
		ops++
	}
	return d, nil
}

// checkReplay reduces d's child cold and by replay and asserts the two
// tracked reductions are bit-identical; it returns the replay's trace
// so chains can continue.
func checkReplay(t *testing.T, label string, d *Delta, trace *ReduceTrace, workers int) *ReduceTrace {
	t.Helper()
	want, _ := ReduceTrackedTrace(d.Child, nil, workers)
	got, newTrace := ReplayReduce(d, trace, nil, workers)
	sameTracked(t, label, got, want)
	return newTrace
}

func TestDeltaEditAPI(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}, {0, 3}}, 4, []int{1, 2, 3, 4})

	d, err := p.AddRows([][]int{{2, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Child.Rows[3]; !sameRow(got, []int{0, 2}) {
		t.Fatalf("AddRows did not normalise: %v", got)
	}
	if want := []int{0, 1, 2, -1}; !sameRow(d.RowMap, want) {
		t.Fatalf("AddRows RowMap = %v, want %v", d.RowMap, want)
	}

	d, err = d.RemoveRows([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 2, -1}; !sameRow(d.RowMap, want) {
		t.Fatalf("RemoveRows RowMap = %v, want %v", d.RowMap, want)
	}

	d, err = d.AddCols([]int{7}, [][]int{{0, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Child.NCol != 5 || d.Child.Cost[4] != 7 {
		t.Fatalf("AddCols universe: NCol=%d Cost=%v", d.Child.NCol, d.Child.Cost)
	}
	if got := d.Child.Rows[0]; !sameRow(got, []int{0, 1, 4}) {
		t.Fatalf("AddCols row 0 = %v", got)
	}
	if got := d.Child.Rows[2]; !sameRow(got, []int{0, 2, 4}) {
		t.Fatalf("AddCols row 2 = %v (duplicate cover index must collapse)", got)
	}

	d, err = d.RemoveCols([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Child.Rows[0]; !sameRow(got, []int{1, 4}) {
		t.Fatalf("RemoveCols row 0 = %v", got)
	}
	if d.Child.NCol != 5 {
		t.Fatalf("RemoveCols must keep the universe, NCol=%d", d.Child.NCol)
	}
	// The parent is never disturbed by any of it.
	if !Equal(p, MustNew([][]int{{0, 1}, {1, 2}, {0, 3}}, 4, []int{1, 2, 3, 4})) {
		t.Fatal("edits mutated the parent problem")
	}

	// Error paths.
	if _, err := p.AddRows([][]int{{99}}); err == nil {
		t.Fatal("AddRows accepted an out-of-universe column")
	}
	if _, err := p.RemoveRows([]int{17}); err == nil {
		t.Fatal("RemoveRows accepted an out-of-range index")
	}
	if _, err := p.AddCols([]int{-1}, [][]int{nil}); err == nil {
		t.Fatal("AddCols accepted a negative cost")
	}
	if _, err := p.RemoveCols([]int{-3}); err == nil {
		t.Fatal("RemoveCols accepted a bad id")
	}
}

func TestDeltaBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 80; trial++ {
		p := randReduceProblem(rng, 30, 25, 3, false)
		raw := make([]byte, 1+rng.Intn(10))
		rng.Read(raw)
		d, err := editScript(p, raw)
		if err != nil {
			t.Fatal(err)
		}
		got := DeltaBetween(p, d.Child)
		// The reconstruction must be a valid monotone content match:
		// every matched pair identical, parent indices increasing.
		last := -1
		matched := 0
		for i, pi := range got.RowMap {
			if pi < 0 {
				continue
			}
			if pi <= last {
				t.Fatalf("trial %d: match not monotone at child row %d", trial, i)
			}
			if !sameRow(p.Rows[pi], d.Child.Rows[i]) {
				t.Fatalf("trial %d: mismatched rows %v vs %v", trial, p.Rows[pi], d.Child.Rows[i])
			}
			last = pi
			matched++
		}
		// And it must be good enough to power an exact replay.
		trace := &ReduceTrace{}
		_, trace = ReduceTrackedTrace(p, nil, 1)
		want, _ := ReduceTrackedTrace(d.Child, nil, 1)
		res, _ := ReplayReduce(got, trace, nil, 1)
		sameTracked(t, "deltabetween-replay", res, want)
	}
}

// TestReplayReduceMatchesCold is the replay bit-exactness contract:
// for random instances, random edit scripts and several worker counts,
// replaying the parent's trace over the delta must reproduce the cold
// reduction of the child exactly — core rows, provenance, essentials
// and flags — and the emitted child trace must keep the property along
// a chain of further edits.
func TestReplayReduceMatchesCold(t *testing.T) {
	defer SetParMinShard(4)()
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 120; trial++ {
		p := randReduceProblem(rng, 35, 30, 3, false)
		_, trace := ReduceTrackedTrace(p, nil, 1+trial%3)
		cur := p
		for gen := 0; gen < 3; gen++ {
			raw := make([]byte, 1+rng.Intn(8))
			rng.Read(raw)
			d, err := editScript(cur, raw)
			if err != nil {
				t.Fatal(err)
			}
			workers := []int{1, 2, 4}[trial%3]
			trace = checkReplay(t, "chain", d, trace, workers)
			cur = d.Child
		}
	}
}

// TestReplayReduceStaleTrace: replay must stay exact when the trace is
// outright wrong for the child — here, a trace from an unrelated
// instance.  Every fact fails verification (or verifies by luck, which
// is just as sound) and the fixpoint re-derives the rest.
func TestReplayReduceStaleTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 60; trial++ {
		p := randReduceProblem(rng, 30, 25, 3, false)
		q := randReduceProblem(rng, 30, 25, 3, false)
		_, alien := ReduceTrackedTrace(q, nil, 1)
		raw := make([]byte, 1+rng.Intn(6))
		rng.Read(raw)
		d, err := editScript(p, raw)
		if err != nil {
			t.Fatal(err)
		}
		// Clamp the alien facts into p's index space so they are
		// plausible-but-wrong rather than discarded on bounds.
		for i := range alien.RowKills {
			alien.RowKills[i][0] %= int32(len(p.Rows))
			alien.RowKills[i][1] %= int32(len(p.Rows))
		}
		want, _ := ReduceTrackedTrace(d.Child, nil, 1)
		got, _ := ReplayReduce(d, alien, nil, 1)
		sameTracked(t, "stale", got, want)
	}
}

// FuzzDeltaReplay drives the replay equivalence from raw fuzz input: a
// seed picks the base instance, the script bytes pick the edits, and
// the replayed reduction must equal the cold one bit for bit.
func FuzzDeltaReplay(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4})
	f.Add(int64(7), []byte{4, 4, 4})
	f.Add(int64(42), []byte{1, 1, 0, 2, 3, 1})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		rng := rand.New(rand.NewSource(seed))
		p := randReduceProblem(rng, 25, 25, 3, false)
		_, trace := ReduceTrackedTrace(p, nil, 1)
		d, err := editScript(p, raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			want, _ := ReduceTrackedTrace(d.Child, nil, workers)
			got, _ := ReplayReduce(d, trace, nil, workers)
			sameTracked(t, "fuzz", got, want)
		}
	})
}
