package matrix

import "sort"

// MISBound computes the classical maximal-independent-set lower bound
// on the optimum of p: a set of pairwise non-intersecting rows is
// chosen greedily, and each contributes the cost of its cheapest
// covering column.  Any solution must pay at least that much, because
// no single column can cover two independent rows.  It returns the
// bound together with the indices of the chosen rows.
func MISBound(p *Problem) (int, []int) {
	n := len(p.Rows)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Shorter rows first: they conflict with fewer other rows, which
	// tends to let more rows into the independent set.  Ties favour
	// rows whose cheapest column is expensive (they raise the bound).
	minCost := make([]int, n)
	for i, r := range p.Rows {
		mc := 0
		for k, j := range r {
			if k == 0 || p.Cost[j] < mc {
				mc = p.Cost[j]
			}
		}
		minCost[i] = mc
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		if len(p.Rows[ra]) != len(p.Rows[rb]) {
			return len(p.Rows[ra]) < len(p.Rows[rb])
		}
		if minCost[ra] != minCost[rb] {
			return minCost[ra] > minCost[rb]
		}
		return ra < rb
	})
	used := make(map[int]bool) // columns touched by chosen rows
	var chosen []int
	bound := 0
	for _, i := range order {
		if len(p.Rows[i]) == 0 {
			continue
		}
		conflict := false
		for _, j := range p.Rows[i] {
			if used[j] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, j := range p.Rows[i] {
			used[j] = true
		}
		chosen = append(chosen, i)
		bound += minCost[i]
	}
	sort.Ints(chosen)
	return bound, chosen
}

// IndependentRows reports whether the given rows are pairwise
// non-intersecting in p.
func IndependentRows(p *Problem, rows []int) bool {
	used := make(map[int]bool)
	for _, i := range rows {
		for _, j := range p.Rows[i] {
			if used[j] {
				return false
			}
			used[j] = true
		}
	}
	return true
}
