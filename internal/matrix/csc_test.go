package matrix

import (
	"math/rand"
	"testing"
)

func checkCSC(t *testing.T, p *Problem) {
	t.Helper()
	start, idx := p.CSC()
	if len(start) != p.NCol+1 {
		t.Fatalf("len(start) = %d, want %d", len(start), p.NCol+1)
	}
	cols := p.ColumnRows()
	if int(start[p.NCol]) != len(idx) {
		t.Fatalf("start[NCol] = %d, want nnz %d", start[p.NCol], len(idx))
	}
	for j := 0; j < p.NCol; j++ {
		got := idx[start[j]:start[j+1]]
		if len(got) != len(cols[j]) {
			t.Fatalf("column %d: %d rows, want %d", j, len(got), len(cols[j]))
		}
		for k, i := range got {
			if int(i) != cols[j][k] {
				t.Fatalf("column %d: row list %v, want %v (ascending)", j, got, cols[j])
			}
		}
	}
}

func TestCSCMatchesColumnRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nr, nc := 1+rng.Intn(30), 1+rng.Intn(30)
		rows := make([][]int, nr)
		cost := make([]int, nc)
		for j := range cost {
			cost[j] = 1 + rng.Intn(9)
		}
		for i := range rows {
			for j := 0; j < nc; j++ {
				if rng.Intn(3) == 0 {
					rows[i] = append(rows[i], j)
				}
			}
		}
		p := &Problem{Rows: rows, NCol: nc, Cost: cost}
		checkCSC(t, p)
		// Cached second call returns the identical slices.
		s1, i1 := p.CSC()
		s2, i2 := p.CSC()
		if &s1[0] != &s2[0] || (len(i1) > 0 && &i1[0] != &i2[0]) {
			t.Fatal("second CSC call rebuilt the index")
		}
	}
}

// TestCSCInvalidatedByReductions checks the cache follows Rows through
// the in-place reduction passes: after ReduceTracked the core's CSC
// must describe the reduced matrix, not the original.
func TestCSCInvalidatedByReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		nr, nc := 8+rng.Intn(12), 8+rng.Intn(12)
		rows := make([][]int, nr)
		cost := make([]int, nc)
		for j := range cost {
			cost[j] = 1 + rng.Intn(4)
		}
		for i := range rows {
			for j := 0; j < nc; j++ {
				// Skewed density produces essential columns, dominated
				// rows and dominated columns — all three in-place edits.
				if rng.Intn(4) != 0 {
					rows[i] = append(rows[i], j)
				}
			}
			if len(rows[i]) == 0 {
				rows[i] = append(rows[i], rng.Intn(nc))
			}
		}
		p := MustNew(rows, nc, cost)
		p.CSC() // populate the cache before the reductions mutate Rows
		red := ReduceTracked(p)
		checkCSC(t, red.Core)
	}
}

func TestInvalidateCSC(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {1, 2}}, 3, []int{1, 1, 1})
	checkCSC(t, p)
	p.Rows[0] = []int{0}
	p.InvalidateCSC()
	checkCSC(t, p)
}
