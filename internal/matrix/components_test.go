package matrix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestComponentsEmptyRows: a row with no columns is uncoverable but
// must still surface as its own singleton component at its canonical
// position, so a partitioned solve reports infeasibility at the same
// fold step as the whole-problem solve.
func TestComponentsEmptyRows(t *testing.T) {
	p := MustNew([][]int{{0, 1}, {}, {1, 2}, {}}, 3, nil)
	comps := Components(p)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if !reflect.DeepEqual(comps[0].RowIdx, []int{0, 2}) {
		t.Fatalf("component 0 rows = %v, want [0 2]", comps[0].RowIdx)
	}
	if !reflect.DeepEqual(comps[1].RowIdx, []int{1}) {
		t.Fatalf("component 1 rows = %v, want [1]", comps[1].RowIdx)
	}
	if !reflect.DeepEqual(comps[2].RowIdx, []int{3}) {
		t.Fatalf("component 2 rows = %v, want [3]", comps[2].RowIdx)
	}
	if len(comps[1].Problem.Rows[0]) != 0 {
		t.Fatal("empty row lost its emptiness")
	}
	// A problem that is nothing but empty rows: one component per row.
	q := MustNew([][]int{{}, {}, {}}, 2, nil)
	if got := Components(q); len(got) != 3 {
		t.Fatalf("all-empty problem: %d components, want 3", len(got))
	}
}

// TestComponentsSingletonColumns: rows covered by pairwise-distinct
// single columns never connect — n rows, n components, in row order.
func TestComponentsSingletonColumns(t *testing.T) {
	rows := [][]int{{3}, {0}, {4}, {1}, {2}}
	p := MustNew(rows, 5, nil)
	comps := Components(p)
	if len(comps) != len(rows) {
		t.Fatalf("got %d components, want %d", len(comps), len(rows))
	}
	for i, c := range comps {
		if !reflect.DeepEqual(c.RowIdx, []int{i}) {
			t.Fatalf("component %d rows = %v, want [%d]", i, c.RowIdx, i)
		}
		if !reflect.DeepEqual(c.Problem.Rows[0], rows[i]) {
			t.Fatalf("component %d kept row %v, want %v", i, c.Problem.Rows[0], rows[i])
		}
	}
	// The same rows sharing one column collapse to a single component,
	// which Partition reports as "connected" (nil).
	for i := range rows {
		rows[i] = append(rows[i], 4)
	}
	q := MustNew(rows, 5, nil)
	if got := Components(q); len(got) != 1 {
		t.Fatalf("shared column: %d components, want 1", len(got))
	}
	if Partition(q) != nil {
		t.Fatal("Partition of a connected problem should be nil")
	}
}

// TestComponentsFullyConnected: a dense instance is one component, and
// Partition avoids materialising it.
func TestComponentsFullyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 12, 9)
	// Chain every row through column 0 so the instance is connected no
	// matter what the generator produced.
	for i := range p.Rows {
		p.Rows[i] = append([]int{}, p.Rows[i]...)
		p.Rows[i] = append(p.Rows[i], 0)
		sort.Ints(p.Rows[i])
	}
	p = MustNew(p.Rows, p.NCol, p.Cost)
	comps := Components(p)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if len(comps[0].Problem.Rows) != len(p.Rows) {
		t.Fatalf("component kept %d rows, want %d", len(comps[0].Problem.Rows), len(p.Rows))
	}
	if Partition(p) != nil {
		t.Fatal("Partition of a fully connected problem should be nil")
	}
}

// TestComponentsPermutationDeterminism: permuting rows permutes the
// decomposition but never changes the component row-sets, and the
// canonical order (ascending smallest row index, rows in input order
// inside each component) is always honoured.
func TestComponentsPermutationDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 10, 12)
		base := Components(p)

		perm := rng.Perm(len(p.Rows))
		rows := make([][]int, len(p.Rows))
		for i, pi := range perm {
			rows[pi] = p.Rows[i] // row i moves to position perm[i]
		}
		q := MustNew(rows, p.NCol, p.Cost)
		permuted := Components(q)
		if len(base) != len(permuted) {
			t.Fatalf("trial %d: %d components before, %d after permutation", trial, len(base), len(permuted))
		}

		// Components as sets of original row ids must be identical.
		canon := func(comps []Component, back func(int) int) []string {
			keys := make([]string, len(comps))
			for k, c := range comps {
				ids := make([]int, len(c.RowIdx))
				for t, i := range c.RowIdx {
					ids[t] = back(i)
				}
				sort.Ints(ids)
				keys[k] = intsKey(ids)
			}
			sort.Strings(keys)
			return keys
		}
		inv := make([]int, len(perm))
		for i, pi := range perm {
			inv[pi] = i
		}
		before := canon(base, func(i int) int { return i })
		after := canon(permuted, func(i int) int { return inv[i] })
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("trial %d: component row-sets changed under permutation\nbefore %v\nafter  %v", trial, before, after)
		}

		// Canonical order invariants on both decompositions.
		for _, comps := range [][]Component{base, permuted} {
			prevMin := -1
			for k, c := range comps {
				if !sort.IntsAreSorted(c.RowIdx) {
					t.Fatalf("trial %d: component %d rows out of input order: %v", trial, k, c.RowIdx)
				}
				if c.RowIdx[0] <= prevMin {
					t.Fatalf("trial %d: component %d first row %d not after previous %d", trial, k, c.RowIdx[0], prevMin)
				}
				prevMin = c.RowIdx[0]
			}
		}
	}
}

func intsKey(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, v := range ids {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

// TestCompactSparseMatchesCompact: the sparse compaction must be
// bit-identical to Compact — the partition-first pipeline and the
// sharded driver both rely on it.
func TestCompactSparseMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 8, 20)
		q1, ids1 := p.Compact()
		q2, ids2 := p.CompactSparse()
		if !reflect.DeepEqual(ids1, ids2) {
			t.Fatalf("trial %d: active cols %v != %v", trial, ids1, ids2)
		}
		if !reflect.DeepEqual(q1.Rows, q2.Rows) || q1.NCol != q2.NCol || !reflect.DeepEqual(q1.Cost, q2.Cost) {
			t.Fatalf("trial %d: compact problems differ", trial)
		}
	}
}
