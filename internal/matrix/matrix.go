// Package matrix implements the explicit sparse representation of a
// unate covering problem together with the classical logical
// reductions: essential columns, row dominance, column dominance and
// partitioning into independent blocks.  Iterating the reductions to a
// fixed point yields the cyclic core of the problem.
package matrix

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"ucp/internal/budget"
)

// ErrInfeasible reports a covering problem with an uncoverable row: no
// column set can satisfy it.  Solvers return it (possibly wrapped)
// instead of a bare nil solution.
var ErrInfeasible = errors.New("covering problem is infeasible: some row cannot be covered")

// Problem is a unate covering instance min c'p s.t. Ap ≥ e over binary
// p.  Rows hold, for each row of A, the sorted ids of the columns that
// cover it.  Column ids index Cost and may be sparse: a reduced
// problem keeps the original ids of the surviving columns.
type Problem struct {
	Rows [][]int // sorted column ids per row
	NCol int     // size of the column universe (ids are < NCol)
	Cost []int   // cost per column id, len NCol

	cscCache // lazy column-major mirror, see CSC()
}

// New builds a problem, sorting and deduplicating each row's column
// list, and validates it.  A nil cost vector means uniform unit costs.
func New(rows [][]int, ncol int, cost []int) (*Problem, error) {
	if cost == nil {
		cost = make([]int, ncol)
		for j := range cost {
			cost[j] = 1
		}
	}
	if len(cost) != ncol {
		return nil, fmt.Errorf("matrix: %d costs for %d columns", len(cost), ncol)
	}
	p := &Problem{Rows: make([][]int, len(rows)), NCol: ncol, Cost: cost}
	for i, r := range rows {
		rr := append([]int(nil), r...)
		sort.Ints(rr)
		out := rr[:0]
		for k, j := range rr {
			if j < 0 || j >= ncol {
				return nil, fmt.Errorf("matrix: row %d references column %d outside universe %d", i, j, ncol)
			}
			if k > 0 && rr[k-1] == j {
				continue
			}
			out = append(out, j)
		}
		p.Rows[i] = out
	}
	for j, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("matrix: column %d has negative cost %d", j, c)
		}
	}
	return p, nil
}

// FromSortedRows builds a problem from rows whose column lists are
// already sorted ascending and duplicate-free, taking ownership of the
// slices (no per-row copy or re-sort).  It validates the invariant —
// strictly increasing ids within the universe — so a caller bug fails
// loudly rather than corrupting the reduction engine.  A nil cost
// vector means uniform unit costs.
func FromSortedRows(rows [][]int, ncol int, cost []int) (*Problem, error) {
	if cost == nil {
		cost = make([]int, ncol)
		for j := range cost {
			cost[j] = 1
		}
	}
	if len(cost) != ncol {
		return nil, fmt.Errorf("matrix: %d costs for %d columns", len(cost), ncol)
	}
	for i, r := range rows {
		for k, j := range r {
			if j < 0 || j >= ncol {
				return nil, fmt.Errorf("matrix: row %d references column %d outside universe %d", i, j, ncol)
			}
			if k > 0 && r[k-1] >= j {
				return nil, fmt.Errorf("matrix: row %d is not strictly sorted at position %d", i, k)
			}
		}
	}
	for j, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("matrix: column %d has negative cost %d", j, c)
		}
	}
	return &Problem{Rows: rows, NCol: ncol, Cost: cost}, nil
}

// MustNew is New that panics on error, for tests and literals.
func MustNew(rows [][]int, ncol int, cost []int) *Problem {
	p, err := New(rows, ncol, cost)
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a deep copy.
func (p *Problem) Clone() *Problem {
	q := &Problem{Rows: make([][]int, len(p.Rows)), NCol: p.NCol, Cost: append([]int(nil), p.Cost...)}
	for i, r := range p.Rows {
		q.Rows[i] = append([]int(nil), r...)
	}
	return q
}

// NumRows returns the number of rows.
func (p *Problem) NumRows() int { return len(p.Rows) }

// ActiveCols returns the sorted ids of the columns appearing in at
// least one row.
func (p *Problem) ActiveCols() []int {
	seen := make([]bool, p.NCol)
	n := 0
	for _, r := range p.Rows {
		for _, j := range r {
			if !seen[j] {
				seen[j] = true
				n++
			}
		}
	}
	out := make([]int, 0, n)
	for j, s := range seen {
		if s {
			out = append(out, j)
		}
	}
	return out
}

// NNZ returns the number of non-zero entries (total row lengths).
func (p *Problem) NNZ() int {
	n := 0
	for _, r := range p.Rows {
		n += len(r)
	}
	return n
}

// ColumnRows returns, for every column id, the sorted list of row
// indices it covers.
func (p *Problem) ColumnRows() [][]int {
	cols := make([][]int, p.NCol)
	for i, r := range p.Rows {
		for _, j := range r {
			cols[j] = append(cols[j], i)
		}
	}
	return cols
}

// IsCover reports whether the column set covers every row.
func (p *Problem) IsCover(cols []int) bool {
	in := make([]bool, p.NCol)
	for _, j := range cols {
		in[j] = true
	}
	for _, r := range p.Rows {
		ok := false
		for _, j := range r {
			if in[j] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CostOf sums the costs of the given columns.
func (p *Problem) CostOf(cols []int) int {
	t := 0
	for _, j := range cols {
		t += p.Cost[j]
	}
	return t
}

// Irredundant removes redundant columns from a cover, dropping the
// highest-cost redundant column first, as the paper prescribes for the
// final cleanup of p_best.  The input is not modified.  Coverage
// counts are maintained incrementally, so the whole cleanup costs
// O(nnz + removals·|cols|·degree).  The scratch-reusing variant is
// IrredundantWs; this wrapper returns a fresh caller-owned slice.
func (p *Problem) Irredundant(cols []int) []int {
	var ws Workspace
	return p.IrredundantWs(&ws, cols)
}

func containsSorted(r []int, j int) bool {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if r[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r) && r[lo] == j
}

// Reduction is the outcome of reducing a problem to its cyclic core.
type Reduction struct {
	Core       *Problem // the cyclic core (may have zero rows)
	Essential  []int    // column ids forced into every minimum solution
	Infeasible bool     // an uncoverable row was found
	// Stopped is set when a budget ran out before the fixpoint; the
	// Core is then only partially reduced but still an equivalent
	// problem (every pass preserves the optimum).
	Stopped bool
}

// Reduce applies essential-column extraction, row dominance and column
// dominance until none of them changes the matrix, returning the
// cyclic core.  Column dominance keeps the cheaper column (breaking
// ties toward the smaller id), so at least one minimum solution of the
// original problem survives in the core.
func Reduce(p *Problem) *Reduction {
	return &ReduceTracked(p).Reduction
}

// ReduceBudget is Reduce under a budget: the tracker is polled between
// fixpoint passes and, when the budget runs out, the partially reduced
// problem is returned with Stopped set.  Each individual pass
// preserves the optimum, so a stopped reduction is still a valid,
// equivalent covering problem.
func ReduceBudget(p *Problem, tr *budget.Tracker) *Reduction {
	return &reduceTracked(p, tr, 1).Reduction
}

// ReduceBudgetWorkers is ReduceBudget with the dominance passes sharded
// across up to workers goroutines (≤ 1: fully sequential).  The output
// is bit-identical to the sequential engine for any worker count: each
// pass gathers its candidate kills per shard from immutable pass-start
// state — both kill sets are order-independent, see dropSupersetRows —
// and applies them in canonical index order.
func ReduceBudgetWorkers(p *Problem, tr *budget.Tracker, workers int) *Reduction {
	return &reduceTracked(p, tr, workers).Reduction
}

// TrackedReduction is a Reduction that also records, for every row of
// the core, the index of the input row it descends from — which lets
// callers carry per-row state (such as lagrangian multipliers) across
// a reduction.
type TrackedReduction struct {
	Reduction
	// RowOrigin[i] is the input-row index of core row i.
	RowOrigin []int
}

// ReduceTracked is Reduce with row provenance.
func ReduceTracked(p *Problem) *TrackedReduction {
	return reduceTracked(p, nil, 1)
}

// ReduceTrackedWorkers is ReduceTracked under a budget with sharded
// dominance passes; see ReduceBudgetWorkers for the determinism
// contract.
func ReduceTrackedWorkers(p *Problem, tr *budget.Tracker, workers int) *TrackedReduction {
	return reduceTracked(p, tr, workers)
}

// ReduceTrace records the dominance facts a reduction applied, as
// (victim, witness) pairs: the input-row index a killed row descends
// from together with the row that dominated it, and the id of a
// removed column together with its dominating column.  Essential
// extractions are not recorded — they are cheap to re-derive and their
// justification (a singleton row) rarely survives an edit verbatim.
//
// A trace is a set of hints, not a proof: facts later in the list may
// have been justified against an already-reduced intermediate state,
// so ReplayReduce re-verifies every pair against the edited child
// before applying it.  That is what makes replay sound under arbitrary
// edits — an invalidated fact simply fails verification and falls back
// to the fixpoint.
type ReduceTrace struct {
	// RowKills holds {killed, killer} input-row index pairs: killer's
	// column set was a subset of killed's when the kill happened.
	RowKills [][2]int32
	// ColKills holds {removed, dominator} column-id pairs: dominator
	// covered a superset of removed's rows at no greater cost.
	ColKills [][2]int32
}

// ReduceTrackedTrace is ReduceTrackedWorkers plus a fact trace for
// later incremental replay (see ReplayReduce).  Tracing pins the
// reduction to the sparse engine — whose output is bit-identical to
// the dense one by contract — and costs one extra O(rows+cols) scratch
// pass per fixpoint round.
func ReduceTrackedTrace(p *Problem, tr *budget.Tracker, workers int) (*TrackedReduction, *ReduceTrace) {
	trace := &ReduceTrace{}
	return reduceTrackedT(p, tr, workers, trace, nil), trace
}

// reduceScratch carries the fixpoint loop's reusable state: the packed
// (length, index) candidate ordering — hoisted out of the passes and
// re-sorted in place each pass instead of re-derived from scratch —
// the kill marks, and the occupancy signatures.
//
// A signature is the 64-bit fold of a row's column ids (bit j mod 64)
// or a column's row indices (bit i mod 64).  a ⊆ b implies
// sig(a) &^ sig(b) == 0, so a one-word test rejects most dominance
// candidates before any merge over the sorted id slices.  Row
// signatures are maintained incrementally across passes: rows are
// dropped whole (filter the slice) and only rows that lose a column to
// column dominance are re-folded.
type reduceScratch struct {
	workers int
	keys    []int64
	order   []int
	keep    []bool
	rowSig  []uint64
	colSig  []uint64
	active  []int
	deadCol []bool
	// trace, when non-nil, collects the dominance facts the passes
	// apply; killer/domBy are its per-pass witness scratch.
	trace  *ReduceTrace
	killer []int32
	domBy  []int32
	// colHints seeds the first column-dominance pass with candidate
	// (victim, dominator) pairs from a parent trace: each pair is
	// verified against the pass-start state — the same predicate the
	// scan applies — and a verified victim skips its dominator scan.
	// Hints can never change the kill set, only how cheaply it is
	// found, so replayed reductions stay bit-identical to cold ones.
	colHints [][2]int32
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// sigOf folds sorted ids into the 64-bit occupancy signature.
func sigOf(ids []int) uint64 {
	var s uint64
	for _, x := range ids {
		s |= 1 << (uint(x) & 63)
	}
	return s
}

func reduceTracked(p *Problem, tr *budget.Tracker, workers int) *TrackedReduction {
	return reduceTrackedT(p, tr, workers, nil, nil)
}

// colHints, when non-nil, seeds the first column-dominance pass with
// replayed candidate kills; see reduceScratch.colHints.
func reduceTrackedT(p *Problem, tr *budget.Tracker, workers int, trace *ReduceTrace, colHints [][2]int32) *TrackedReduction {
	res := &TrackedReduction{}
	// The dense bit-matrix engine and this sparse loop implement the
	// identical fixpoint (same orders, same tie-breaks); the choice is
	// purely a data-layout decision.  Tracing needs the sparse loop's
	// witness bookkeeping, so it pins the sparse engine.
	useDense := trace == nil &&
		(reduceOverride == 2 || (reduceOverride == 0 && DenseEligible(p)))
	if useDense {
		denseReduce(p, tr, res, workers)
		sort.Ints(res.Essential)
		return res
	}
	cur := p.Clone()
	origin := make([]int, len(cur.Rows))
	for i := range origin {
		origin[i] = i
	}
	st := &reduceScratch{workers: workers, trace: trace, colHints: colHints}
	st.rowSig = growU64(st.rowSig, len(cur.Rows))
	for i, r := range cur.Rows {
		st.rowSig[i] = sigOf(r)
	}
	for {
		if tr.Interrupted() {
			res.Stopped = true
			break
		}
		changed := false

		// Empty rows mean infeasibility.
		for _, r := range cur.Rows {
			if len(r) == 0 {
				res.Infeasible = true
				res.Core = cur
				res.RowOrigin = origin
				return res
			}
		}

		// Essential columns: any row covered by a single column.
		var ess []bool
		nEss := 0
		for _, r := range cur.Rows {
			if len(r) == 1 {
				if ess == nil {
					ess = make([]bool, cur.NCol)
				}
				if !ess[r[0]] {
					ess[r[0]] = true
					nEss++
					res.Essential = append(res.Essential, r[0])
				}
			}
		}
		if nEss > 0 {
			changed = true
			w := 0
			for i, r := range cur.Rows {
				covered := false
				for _, j := range r {
					if ess[j] {
						covered = true
						break
					}
				}
				if !covered {
					cur.Rows[w] = r
					origin[w] = origin[i]
					st.rowSig[w] = st.rowSig[i]
					w++
				}
			}
			if w == 0 {
				// Match the dense engine's decode: no surviving rows
				// means nil slices, not empty ones.
				cur.Rows, origin = nil, nil
			} else {
				cur.Rows = cur.Rows[:w]
				origin = origin[:w]
			}
			st.rowSig = st.rowSig[:w]
			cur.InvalidateCSC()
		}

		// Row dominance: keep only inclusion-minimal rows (a row that
		// is a superset of another is covered automatically).
		if o, ok := dropSupersetRows(cur, origin, st); ok {
			origin = o
			changed = true
		}

		// Column dominance: drop column k when some other column j
		// covers every row k covers at no greater cost.
		if dropDominatedCols(cur, st) {
			changed = true
		}

		if !changed {
			break
		}
	}
	sort.Ints(res.Essential)
	res.Core = cur
	res.RowOrigin = origin
	return res
}

// dropSupersetRows removes duplicate rows and rows that strictly
// contain another row, filtering the parallel origin slice alongside.
// It returns the surviving origins and whether anything changed.
//
// The pass gathers kills against immutable pass-start state: row b is
// killed exactly when some row a strictly before it in the canonical
// (length, index) order satisfies a ⊆ b.  That predicate matches the
// sequential engine that kills eagerly and skips killed rows as
// killers — b's earliest subset predecessor can itself never be killed
// (a killer of the killer would be an even earlier subset of b) — and
// it is independent of visit order, so the candidate positions shard
// freely across workers and the marks merge by index.
func dropSupersetRows(p *Problem, origin []int, st *reduceScratch) ([]int, bool) {
	n := len(p.Rows)
	// Sort candidates by (length, index), packed into int64 keys so the
	// sort runs without a comparator closure.  Subsets then always
	// precede their supersets, and the index tie-break makes the
	// survivor among duplicate rows canonical (smallest row index), so
	// the sparse and dense reduction engines agree exactly.
	st.keys = growI64(st.keys, n)
	for i, r := range p.Rows {
		st.keys[i] = int64(len(r))<<32 | int64(i)
	}
	slices.Sort(st.keys)
	st.order = growInt(st.order, n)
	order := st.order
	for k, key := range st.keys {
		order[k] = int(key & 0xffffffff)
	}
	st.keep = growBool(st.keep, n)
	keep := st.keep
	for i := range keep {
		keep[i] = true
	}
	sig := st.rowSig
	// Witness capture for the replay trace: killer[b] is the canonical
	// (first-in-order) dominator of a killed row b.  Shards write
	// disjoint b's, so the slice needs no synchronisation, and the
	// witness is deterministic because the inner scan order is.
	var killer []int32
	if st.trace != nil {
		st.killer = growI32(st.killer, n)
		killer = st.killer
	}
	var nKill atomic.Int64
	parShard(n, st.workers, func(lo, hi int) {
		kills := 0
		for bi := lo; bi < hi; bi++ {
			b := order[bi]
			rb, sb := p.Rows[b], sig[b]
			for _, a := range order[:bi] {
				if sig[a]&^sb != 0 {
					continue
				}
				if isSubsetSorted(p.Rows[a], rb) {
					keep[b] = false
					if killer != nil {
						killer[b] = int32(a)
					}
					kills++
					break
				}
			}
		}
		if kills > 0 {
			nKill.Add(int64(kills))
		}
	})
	if nKill.Load() == 0 {
		return origin, false
	}
	if st.trace != nil {
		// Record in ascending victim index, before the filter below
		// rewrites origin in place.
		for b := 0; b < n; b++ {
			if !keep[b] {
				st.trace.RowKills = append(st.trace.RowKills,
					[2]int32{int32(origin[b]), int32(origin[killer[b]])})
			}
		}
	}
	w := 0
	for i, r := range p.Rows {
		if keep[i] {
			p.Rows[w] = r
			origin[w] = origin[i]
			sig[w] = sig[i]
			w++
		}
	}
	p.Rows = p.Rows[:w]
	origin = origin[:w]
	st.rowSig = sig[:w]
	p.InvalidateCSC()
	return origin, true
}

func isSubsetSorted(a, b []int) bool { // a ⊆ b, both sorted
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func isSubsetSortedI32(a, b []int32) bool { // a ⊆ b, both sorted
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// dropDominatedCols removes columns dominated by another column:
// column k dies when some column j covers a superset of k's rows at no
// greater cost (ties broken toward the smaller id).  Like the row
// pass, the kill set is gathered against immutable pass-start state —
// k dies iff a dominator exists at all, because dominance with this
// tie-break is a strict partial order and any dominator of k sits
// below some never-killed maximal dominator — so the candidates shard
// across workers and the kills apply in index order afterwards.
// Column row sets come from the CSC mirror (one O(nnz) build per pass
// instead of per-column slice allocations).
func dropDominatedCols(p *Problem, st *reduceScratch) bool {
	start, idx := p.CSC()
	st.active = st.active[:0]
	for j := 0; j < p.NCol; j++ {
		if start[j+1] > start[j] {
			st.active = append(st.active, j)
		}
	}
	active := st.active
	st.colSig = growU64(st.colSig, p.NCol)
	colSig := st.colSig
	st.deadCol = growBool(st.deadCol, p.NCol)
	dead := st.deadCol
	for _, j := range active {
		var s uint64
		for _, i := range idx[start[j]:start[j+1]] {
			s |= 1 << (uint(i) & 63)
		}
		colSig[j] = s
		dead[j] = false
	}
	var domBy []int32
	if st.trace != nil {
		st.domBy = growI32(st.domBy, p.NCol)
		domBy = st.domBy
	}
	var nDead atomic.Int64
	// Hinted kills first: verify each replayed (victim, dominator) pair
	// with the exact predicate the scan below applies.  A verified
	// victim is killed without scanning for a dominator; an unverified
	// pair is simply dropped and the victim scans normally.  Either way
	// the kill set equals the scan's — a verified dominator IS a
	// witness for the scan's existential — only the recorded witness
	// may differ.  Hints apply to one pass only: they were recorded
	// against the parent's corresponding pass state, and later passes
	// run on states the parent never saw.
	if st.colHints != nil {
		nHint := 0
		for _, f := range st.colHints {
			k, j := int(f[0]), int(f[1])
			if k < 0 || j < 0 || k >= p.NCol || j >= p.NCol || k == j || dead[k] {
				continue
			}
			ck := idx[start[k]:start[k+1]]
			cj := idx[start[j]:start[j+1]]
			if len(ck) == 0 || p.Cost[j] > p.Cost[k] {
				continue
			}
			if colSig[k]&^colSig[j] != 0 || len(ck) > len(cj) || !isSubsetSortedI32(ck, cj) {
				continue
			}
			if len(ck) == len(cj) && p.Cost[j] == p.Cost[k] && j > k {
				continue
			}
			dead[k] = true
			if domBy != nil {
				domBy[k] = int32(j)
			}
			nHint++
		}
		st.colHints = nil
		if nHint > 0 {
			nDead.Add(int64(nHint))
		}
	}
	parShard(len(active), st.workers, func(lo, hi int) {
		kills := 0
		for ki := lo; ki < hi; ki++ {
			k := active[ki]
			if dead[k] {
				continue // killed by a verified hint above
			}
			ck := idx[start[k]:start[k+1]]
			sk, costK := colSig[k], p.Cost[k]
			for _, j := range active {
				if j == k || p.Cost[j] > costK {
					continue
				}
				if sk&^colSig[j] != 0 {
					continue
				}
				cj := idx[start[j]:start[j+1]]
				if len(ck) > len(cj) || !isSubsetSortedI32(ck, cj) {
					continue
				}
				// j covers everything k covers at no greater cost.  With
				// fully equal coverage and cost, keep the smaller id.
				if len(ck) == len(cj) && p.Cost[j] == costK && j > k {
					continue
				}
				dead[k] = true
				if domBy != nil {
					domBy[k] = int32(j)
				}
				kills++
				break
			}
		}
		if kills > 0 {
			nDead.Add(int64(kills))
		}
	})
	if nDead.Load() == 0 {
		return false
	}
	if st.trace != nil {
		for _, k := range active {
			if dead[k] {
				st.trace.ColKills = append(st.trace.ColKills, [2]int32{int32(k), domBy[k]})
			}
		}
	}
	for i, r := range p.Rows {
		out := r[:0]
		for _, j := range r {
			if !dead[j] {
				out = append(out, j)
			}
		}
		p.Rows[i] = out
		if len(out) != len(r) {
			st.rowSig[i] = sigOf(out)
		}
	}
	p.InvalidateCSC()
	return true
}

// FixColumn returns the problem that results from adding column j to
// the solution: rows covered by j disappear.  The column universe is
// unchanged.
func (p *Problem) FixColumn(j int) *Problem {
	q, _ := p.FixColumnTracked(j)
	return q
}

// FixColumnTracked is FixColumn plus the indices of the surviving rows
// in p, for callers carrying per-row state.
func (p *Problem) FixColumnTracked(j int) (*Problem, []int) {
	q := &Problem{NCol: p.NCol, Cost: p.Cost}
	var kept []int
	for i, r := range p.Rows {
		if !containsSorted(r, j) {
			q.Rows = append(q.Rows, append([]int(nil), r...))
			kept = append(kept, i)
		}
	}
	return q, kept
}

// RemoveColumn returns the problem with column j discarded from every
// row (j is excluded from the solution).
func (p *Problem) RemoveColumn(j int) *Problem {
	q := &Problem{NCol: p.NCol, Cost: p.Cost}
	for _, r := range p.Rows {
		out := make([]int, 0, len(r))
		for _, c := range r {
			if c != j {
				out = append(out, c)
			}
		}
		q.Rows = append(q.Rows, out)
	}
	return q
}

// Component is one independent block of a partitioned problem.
type Component struct {
	Problem *Problem
	RowIdx  []int // indices of the component's rows in the parent
}

// componentRoots runs the union-find over rows (rows are connected
// when they share a column) and returns the parent forest plus a find
// function with path compression applied.
func componentRoots(p *Problem) func(int) int {
	n := len(p.Rows)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	colFirst := make([]int, p.NCol)
	for j := range colFirst {
		colFirst[j] = -1
	}
	for i, r := range p.Rows {
		for _, j := range r {
			if f := colFirst[j]; f >= 0 {
				union(i, f)
			} else {
				colFirst[j] = i
			}
		}
	}
	return find
}

// Components splits the problem into its connected components: rows
// are connected when they share a column.  Solving each component
// independently and uniting the solutions solves the whole problem.
//
// Components are ordered by their smallest row index (the order the
// components first appear scanning rows top to bottom), and each
// component's rows keep their relative input order.  This makes the
// decomposition canonical: any process that discovers the same
// components — in particular the streaming partitioner of
// internal/shard, which never sees the assembled matrix — arrives at
// the same ordering.
func Components(p *Problem) []Component {
	return components(p, false)
}

// Partition is Components for callers on the partition-first solve
// path: it returns nil when the problem has at most one connected
// component (including the empty problem), so the common connected
// case costs one union-find pass and no row copies.
func Partition(p *Problem) []Component {
	return components(p, true)
}

func components(p *Problem, nilIfConnected bool) []Component {
	n := len(p.Rows)
	find := componentRoots(p)
	// Assign component indices in order of first appearance: component
	// k's smallest row index grows with k.
	compOf := make([]int, n)
	rootComp := make(map[int]int)
	ncomp := 0
	for i := 0; i < n; i++ {
		root := find(i)
		c, ok := rootComp[root]
		if !ok {
			c = ncomp
			rootComp[root] = c
			ncomp++
		}
		compOf[i] = c
	}
	if nilIfConnected && ncomp <= 1 {
		return nil
	}
	out := make([]Component, ncomp)
	for i := 0; i < n; i++ {
		c := compOf[i]
		if out[c].Problem == nil {
			out[c].Problem = &Problem{NCol: p.NCol, Cost: p.Cost}
		}
		out[c].Problem.Rows = append(out[c].Problem.Rows, append([]int(nil), p.Rows[i]...))
		out[c].RowIdx = append(out[c].RowIdx, i)
	}
	return out
}

// Compact renumbers the active columns densely from zero and returns
// the compacted problem plus the mapping from new to original ids.
// Solvers that maintain per-column state use the compact form.
func (p *Problem) Compact() (*Problem, []int) {
	active := p.ActiveCols()
	// Dense id remap: one int32 slice over the column universe instead
	// of a hash map — Compact runs once per fixing step, and the map
	// was the solver's single largest allocation site.
	newID := make([]int32, p.NCol)
	for k, j := range active {
		newID[j] = int32(k)
	}
	q := &Problem{NCol: len(active), Cost: make([]int, len(active)), Rows: make([][]int, len(p.Rows))}
	for k, j := range active {
		q.Cost[k] = p.Cost[j]
	}
	flat := make([]int, p.NNZ())
	for i, r := range p.Rows {
		rr := flat[:len(r):len(r)]
		flat = flat[len(r):]
		for t, j := range r {
			rr[t] = int(newID[j])
		}
		q.Rows[i] = rr
	}
	return q, active
}

// CompactSparse is Compact without the O(NCol) scratch: the active
// columns are gathered from the rows alone, so the cost scales with
// the problem's nonzeros, not the column universe.  A connected
// component carved out of a huge instance keeps the parent's NCol;
// compacting thousands of such components through Compact would cost
// O(components × NCol), which this variant avoids.  The result is
// bit-identical to Compact's.
func (p *Problem) CompactSparse() (*Problem, []int) {
	nnz := p.NNZ()
	all := make([]int, 0, nnz)
	for _, r := range p.Rows {
		all = append(all, r...)
	}
	sort.Ints(all)
	active := all[:0]
	for k, j := range all {
		if k > 0 && all[k-1] == j {
			continue
		}
		active = append(active, j)
	}
	active = append([]int(nil), active...) // free the nnz-sized backing
	newID := make(map[int]int32, len(active))
	for k, j := range active {
		newID[j] = int32(k)
	}
	q := &Problem{NCol: len(active), Cost: make([]int, len(active)), Rows: make([][]int, len(p.Rows))}
	for k, j := range active {
		q.Cost[k] = p.Cost[j]
	}
	flat := make([]int, nnz)
	for i, r := range p.Rows {
		rr := flat[:len(r):len(r)]
		flat = flat[len(r):]
		for t, j := range r {
			rr[t] = int(newID[j])
		}
		q.Rows[i] = rr
	}
	return q, active
}
