// Package matrix implements the explicit sparse representation of a
// unate covering problem together with the classical logical
// reductions: essential columns, row dominance, column dominance and
// partitioning into independent blocks.  Iterating the reductions to a
// fixed point yields the cyclic core of the problem.
package matrix

import (
	"errors"
	"fmt"
	"sort"

	"ucp/internal/budget"
)

// ErrInfeasible reports a covering problem with an uncoverable row: no
// column set can satisfy it.  Solvers return it (possibly wrapped)
// instead of a bare nil solution.
var ErrInfeasible = errors.New("covering problem is infeasible: some row cannot be covered")

// Problem is a unate covering instance min c'p s.t. Ap ≥ e over binary
// p.  Rows hold, for each row of A, the sorted ids of the columns that
// cover it.  Column ids index Cost and may be sparse: a reduced
// problem keeps the original ids of the surviving columns.
type Problem struct {
	Rows [][]int // sorted column ids per row
	NCol int     // size of the column universe (ids are < NCol)
	Cost []int   // cost per column id, len NCol

	cscCache // lazy column-major mirror, see CSC()
}

// New builds a problem, sorting and deduplicating each row's column
// list, and validates it.  A nil cost vector means uniform unit costs.
func New(rows [][]int, ncol int, cost []int) (*Problem, error) {
	if cost == nil {
		cost = make([]int, ncol)
		for j := range cost {
			cost[j] = 1
		}
	}
	if len(cost) != ncol {
		return nil, fmt.Errorf("matrix: %d costs for %d columns", len(cost), ncol)
	}
	p := &Problem{Rows: make([][]int, len(rows)), NCol: ncol, Cost: cost}
	for i, r := range rows {
		rr := append([]int(nil), r...)
		sort.Ints(rr)
		out := rr[:0]
		for k, j := range rr {
			if j < 0 || j >= ncol {
				return nil, fmt.Errorf("matrix: row %d references column %d outside universe %d", i, j, ncol)
			}
			if k > 0 && rr[k-1] == j {
				continue
			}
			out = append(out, j)
		}
		p.Rows[i] = out
	}
	for j, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("matrix: column %d has negative cost %d", j, c)
		}
	}
	return p, nil
}

// MustNew is New that panics on error, for tests and literals.
func MustNew(rows [][]int, ncol int, cost []int) *Problem {
	p, err := New(rows, ncol, cost)
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a deep copy.
func (p *Problem) Clone() *Problem {
	q := &Problem{Rows: make([][]int, len(p.Rows)), NCol: p.NCol, Cost: append([]int(nil), p.Cost...)}
	for i, r := range p.Rows {
		q.Rows[i] = append([]int(nil), r...)
	}
	return q
}

// NumRows returns the number of rows.
func (p *Problem) NumRows() int { return len(p.Rows) }

// ActiveCols returns the sorted ids of the columns appearing in at
// least one row.
func (p *Problem) ActiveCols() []int {
	seen := make([]bool, p.NCol)
	n := 0
	for _, r := range p.Rows {
		for _, j := range r {
			if !seen[j] {
				seen[j] = true
				n++
			}
		}
	}
	out := make([]int, 0, n)
	for j, s := range seen {
		if s {
			out = append(out, j)
		}
	}
	return out
}

// NNZ returns the number of non-zero entries (total row lengths).
func (p *Problem) NNZ() int {
	n := 0
	for _, r := range p.Rows {
		n += len(r)
	}
	return n
}

// ColumnRows returns, for every column id, the sorted list of row
// indices it covers.
func (p *Problem) ColumnRows() [][]int {
	cols := make([][]int, p.NCol)
	for i, r := range p.Rows {
		for _, j := range r {
			cols[j] = append(cols[j], i)
		}
	}
	return cols
}

// IsCover reports whether the column set covers every row.
func (p *Problem) IsCover(cols []int) bool {
	in := make([]bool, p.NCol)
	for _, j := range cols {
		in[j] = true
	}
	for _, r := range p.Rows {
		ok := false
		for _, j := range r {
			if in[j] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CostOf sums the costs of the given columns.
func (p *Problem) CostOf(cols []int) int {
	t := 0
	for _, j := range cols {
		t += p.Cost[j]
	}
	return t
}

// Irredundant removes redundant columns from a cover, dropping the
// highest-cost redundant column first, as the paper prescribes for the
// final cleanup of p_best.  The input is not modified.  Coverage
// counts are maintained incrementally, so the whole cleanup costs
// O(nnz + removals·|cols|·degree).  The scratch-reusing variant is
// IrredundantWs; this wrapper returns a fresh caller-owned slice.
func (p *Problem) Irredundant(cols []int) []int {
	var ws Workspace
	return p.IrredundantWs(&ws, cols)
}

func containsSorted(r []int, j int) bool {
	lo, hi := 0, len(r)
	for lo < hi {
		mid := (lo + hi) / 2
		if r[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r) && r[lo] == j
}

// Reduction is the outcome of reducing a problem to its cyclic core.
type Reduction struct {
	Core       *Problem // the cyclic core (may have zero rows)
	Essential  []int    // column ids forced into every minimum solution
	Infeasible bool     // an uncoverable row was found
	// Stopped is set when a budget ran out before the fixpoint; the
	// Core is then only partially reduced but still an equivalent
	// problem (every pass preserves the optimum).
	Stopped bool
}

// Reduce applies essential-column extraction, row dominance and column
// dominance until none of them changes the matrix, returning the
// cyclic core.  Column dominance keeps the cheaper column (breaking
// ties toward the smaller id), so at least one minimum solution of the
// original problem survives in the core.
func Reduce(p *Problem) *Reduction {
	return &ReduceTracked(p).Reduction
}

// ReduceBudget is Reduce under a budget: the tracker is polled between
// fixpoint passes and, when the budget runs out, the partially reduced
// problem is returned with Stopped set.  Each individual pass
// preserves the optimum, so a stopped reduction is still a valid,
// equivalent covering problem.
func ReduceBudget(p *Problem, tr *budget.Tracker) *Reduction {
	return &reduceTracked(p, tr).Reduction
}

// TrackedReduction is a Reduction that also records, for every row of
// the core, the index of the input row it descends from — which lets
// callers carry per-row state (such as lagrangian multipliers) across
// a reduction.
type TrackedReduction struct {
	Reduction
	// RowOrigin[i] is the input-row index of core row i.
	RowOrigin []int
}

// ReduceTracked is Reduce with row provenance.
func ReduceTracked(p *Problem) *TrackedReduction {
	return reduceTracked(p, nil)
}

func reduceTracked(p *Problem, tr *budget.Tracker) *TrackedReduction {
	res := &TrackedReduction{}
	// The dense bit-matrix engine and this sparse loop implement the
	// identical fixpoint (same orders, same tie-breaks); the choice is
	// purely a data-layout decision.
	useDense := reduceOverride == 2 || (reduceOverride == 0 && DenseEligible(p))
	if useDense {
		denseReduce(p, tr, res)
		sort.Ints(res.Essential)
		return res
	}
	cur := p.Clone()
	origin := make([]int, len(cur.Rows))
	for i := range origin {
		origin[i] = i
	}
	for {
		if tr.Interrupted() {
			res.Stopped = true
			break
		}
		changed := false

		// Empty rows mean infeasibility.
		for _, r := range cur.Rows {
			if len(r) == 0 {
				res.Infeasible = true
				res.Core = cur
				res.RowOrigin = origin
				return res
			}
		}

		// Essential columns: any row covered by a single column.
		var ess []bool
		nEss := 0
		for _, r := range cur.Rows {
			if len(r) == 1 {
				if ess == nil {
					ess = make([]bool, cur.NCol)
				}
				if !ess[r[0]] {
					ess[r[0]] = true
					nEss++
					res.Essential = append(res.Essential, r[0])
				}
			}
		}
		if nEss > 0 {
			changed = true
			var rows [][]int
			var keptOrigin []int
			for i, r := range cur.Rows {
				covered := false
				for _, j := range r {
					if ess[j] {
						covered = true
						break
					}
				}
				if !covered {
					rows = append(rows, r)
					keptOrigin = append(keptOrigin, origin[i])
				}
			}
			cur.Rows = rows
			origin = keptOrigin
			cur.InvalidateCSC()
		}

		// Row dominance: keep only inclusion-minimal rows (a row that
		// is a superset of another is covered automatically).
		if o, ok := dropSupersetRows(cur, origin); ok {
			origin = o
			changed = true
		}

		// Column dominance: drop column k when some other column j
		// covers every row k covers at no greater cost.
		if dropDominatedCols(cur) {
			changed = true
		}

		if !changed {
			break
		}
	}
	sort.Ints(res.Essential)
	res.Core = cur
	res.RowOrigin = origin
	return res
}

// dropSupersetRows removes duplicate rows and rows that strictly
// contain another row, filtering the parallel origin slice alongside.
// It returns the surviving origins and whether anything changed.
func dropSupersetRows(p *Problem, origin []int) ([]int, bool) {
	n := len(p.Rows)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	// Sort row order by length so subsets come first; compare each row
	// against shorter (or equal, earlier) rows.  The index tie-break
	// makes the survivor among duplicate rows canonical (smallest row
	// index), so the sparse and dense reduction engines agree exactly.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(p.Rows[order[a]]), len(p.Rows[order[b]])
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	changed := false
	for ai, a := range order {
		if !keep[a] {
			continue
		}
		for _, b := range order[ai+1:] {
			if !keep[b] {
				continue
			}
			if isSubsetSorted(p.Rows[a], p.Rows[b]) {
				keep[b] = false
				changed = true
			}
		}
	}
	if changed {
		var rows [][]int
		var keptOrigin []int
		for i, r := range p.Rows {
			if keep[i] {
				rows = append(rows, r)
				keptOrigin = append(keptOrigin, origin[i])
			}
		}
		p.Rows = rows
		origin = keptOrigin
		p.InvalidateCSC()
	}
	return origin, changed
}

func isSubsetSorted(a, b []int) bool { // a ⊆ b, both sorted
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// dropDominatedCols removes columns dominated by another column.
func dropDominatedCols(p *Problem) bool {
	cols := p.ColumnRows()
	active := p.ActiveCols()
	dead := make([]bool, p.NCol)
	nDead := 0
	for _, k := range active {
		for _, j := range active {
			if j == k || dead[j] || dead[k] {
				continue
			}
			if p.Cost[j] > p.Cost[k] {
				continue
			}
			if !isSubsetSorted(cols[k], cols[j]) {
				continue
			}
			// j covers everything k covers at no greater cost.  With
			// fully equal coverage and cost, keep the smaller id.
			if len(cols[k]) == len(cols[j]) && p.Cost[j] == p.Cost[k] && j > k {
				continue
			}
			dead[k] = true
			nDead++
			break
		}
	}
	if nDead == 0 {
		return false
	}
	for i, r := range p.Rows {
		out := r[:0]
		for _, j := range r {
			if !dead[j] {
				out = append(out, j)
			}
		}
		p.Rows[i] = out
	}
	p.InvalidateCSC()
	return true
}

// FixColumn returns the problem that results from adding column j to
// the solution: rows covered by j disappear.  The column universe is
// unchanged.
func (p *Problem) FixColumn(j int) *Problem {
	q, _ := p.FixColumnTracked(j)
	return q
}

// FixColumnTracked is FixColumn plus the indices of the surviving rows
// in p, for callers carrying per-row state.
func (p *Problem) FixColumnTracked(j int) (*Problem, []int) {
	q := &Problem{NCol: p.NCol, Cost: p.Cost}
	var kept []int
	for i, r := range p.Rows {
		if !containsSorted(r, j) {
			q.Rows = append(q.Rows, append([]int(nil), r...))
			kept = append(kept, i)
		}
	}
	return q, kept
}

// RemoveColumn returns the problem with column j discarded from every
// row (j is excluded from the solution).
func (p *Problem) RemoveColumn(j int) *Problem {
	q := &Problem{NCol: p.NCol, Cost: p.Cost}
	for _, r := range p.Rows {
		out := make([]int, 0, len(r))
		for _, c := range r {
			if c != j {
				out = append(out, c)
			}
		}
		q.Rows = append(q.Rows, out)
	}
	return q
}

// Component is one independent block of a partitioned problem.
type Component struct {
	Problem *Problem
	RowIdx  []int // indices of the component's rows in the parent
}

// Components splits the problem into its connected components: rows
// are connected when they share a column.  Solving each component
// independently and uniting the solutions solves the whole problem.
func Components(p *Problem) []Component {
	n := len(p.Rows)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	colFirst := make([]int, p.NCol)
	for j := range colFirst {
		colFirst[j] = -1
	}
	for i, r := range p.Rows {
		for _, j := range r {
			if f := colFirst[j]; f >= 0 {
				union(i, f)
			} else {
				colFirst[j] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]Component, 0, len(roots))
	for _, root := range roots {
		idx := groups[root]
		sort.Ints(idx)
		sub := &Problem{NCol: p.NCol, Cost: p.Cost}
		for _, i := range idx {
			sub.Rows = append(sub.Rows, append([]int(nil), p.Rows[i]...))
		}
		out = append(out, Component{Problem: sub, RowIdx: idx})
	}
	return out
}

// Compact renumbers the active columns densely from zero and returns
// the compacted problem plus the mapping from new to original ids.
// Solvers that maintain per-column state use the compact form.
func (p *Problem) Compact() (*Problem, []int) {
	active := p.ActiveCols()
	newID := make(map[int]int, len(active))
	for k, j := range active {
		newID[j] = k
	}
	q := &Problem{NCol: len(active), Cost: make([]int, len(active)), Rows: make([][]int, len(p.Rows))}
	for k, j := range active {
		q.Cost[k] = p.Cost[j]
	}
	for i, r := range p.Rows {
		rr := make([]int, len(r))
		for t, j := range r {
			rr[t] = newID[j]
		}
		q.Rows[i] = rr
	}
	return q, active
}
