package matrix

// SetReduceEngine forces a reduction engine in tests: "auto" (default
// threshold-driven choice), "sparse", or "dense".  It returns a restore
// function.
func SetReduceEngine(mode string) func() {
	old := reduceOverride
	switch mode {
	case "auto":
		reduceOverride = 0
	case "sparse":
		reduceOverride = 1
	case "dense":
		reduceOverride = 2
	default:
		panic("unknown reduce engine " + mode)
	}
	return func() { reduceOverride = old }
}

// SetParMinShard lowers the per-worker shard floor so tests can force
// genuinely concurrent dominance passes on small instances.  It
// returns a restore function.
func SetParMinShard(n int) func() {
	old := parMinShard
	parMinShard = n
	return func() { parMinShard = old }
}
