// Package prof wires the standard -cpuprofile/-memprofile flags into
// the command-line tools.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins a CPU profile in cpuFile and arranges for a heap
// profile in memFile; either may be empty.  The returned stop function
// flushes both and is idempotent, so commands can both defer it and
// call it on their fatal-exit path — including the SIGINT unwind,
// where the budget context cancels, the solver returns early and the
// deferred stop still writes complete profiles.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpu != nil {
				pprof.StopCPUProfile()
				if err := cpu.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
				}
			}
			if memFile != "" {
				f, err := os.Create(memFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
					return
				}
				runtime.GC() // up-to-date heap statistics
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				}
				f.Close()
			}
		})
	}, nil
}
