package solvecache

import (
	"sync"
	"testing"
)

func TestArenaLRUAndStats(t *testing.T) {
	a := NewArena(2)
	k1, k2, k3 := Key{Hi: 1}, Key{Hi: 2}, Key{Hi: 3}

	if _, ok := a.Get(k1); ok {
		t.Fatal("empty arena hit")
	}
	a.Put(k1, "one")
	a.Put(k2, "two")
	if v, ok := a.Get(k1); !ok || v != "one" {
		t.Fatalf("Get(k1) = %v, %v", v, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	a.Put(k3, "three")
	if _, ok := a.Get(k2); ok {
		t.Fatal("k2 survived eviction")
	}
	if v, ok := a.Get(k1); !ok || v != "one" {
		t.Fatalf("k1 lost: %v, %v", v, ok)
	}
	// Replacing an existing key must not evict.
	a.Put(k1, "uno")
	if v, _ := a.Get(k1); v != "uno" {
		t.Fatalf("replace failed: %v", v)
	}
	if _, ok := a.Get(k3); !ok {
		t.Fatal("k3 evicted by a replace")
	}

	st := a.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Stores != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("hit/miss counters empty: %+v", st)
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	if a != NewArena(0) {
		t.Fatal("size 0 must be the nil arena")
	}
	a.Put(Key{Hi: 1}, "x")
	if _, ok := a.Get(Key{Hi: 1}); ok {
		t.Fatal("nil arena stored a value")
	}
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil arena stats = %+v", st)
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Hi: uint64(g), Lo: uint64(i % 4)}
				a.Put(k, i)
				a.Get(k)
				a.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := a.Stats(); st.Entries > 8 {
		t.Fatalf("arena overfull: %+v", st)
	}
}
