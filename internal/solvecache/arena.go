package solvecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Arena is a small size-bounded LRU side store for retained solver
// states (the incremental-resolve ancestor arena).  It differs from
// Cache deliberately: no singleflight (states are written after a
// solve completes, never computed under the arena's lock), no work
// threshold (a state's value is its reusability, not its cost), and a
// single mutex (the arena holds tens of entries, not thousands).
//
// Values are opaque; keyed by the same 128-bit Key type as the cache.
// A nil *Arena is a valid always-miss arena.
type Arena struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element

	hits, misses, stores, evictions atomic.Int64
}

// ArenaStats is a point-in-time snapshot of the arena counters.  The
// json tags fix the wire names the ucpd /stats endpoint exposes.
type ArenaStats struct {
	Hits      int64 `json:"hits"`      // lookups served from a stored entry
	Misses    int64 `json:"misses"`    // lookups that found nothing
	Stores    int64 `json:"stores"`    // admissions (updates of an existing key included)
	Evictions int64 `json:"evictions"` // LRU evictions
	Entries   int   `json:"entries"`   // entries currently resident
}

// NewArena builds an arena holding up to size entries.  A size ≤ 0
// returns nil, the always-miss arena.
func NewArena(size int) *Arena {
	if size <= 0 {
		return nil
	}
	return &Arena{cap: size, ll: list.New(), m: make(map[Key]*list.Element)}
}

// Get returns the stored value for k, refreshing its LRU position.
func (a *Arena) Get(k Key) (any, bool) {
	if a == nil {
		return nil, false
	}
	a.mu.Lock()
	if el, ok := a.m[k]; ok {
		a.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		a.mu.Unlock()
		a.hits.Add(1)
		return v, true
	}
	a.mu.Unlock()
	a.misses.Add(1)
	return nil, false
}

// Put stores v under k, evicting the least recently used entry when
// the arena is full.  Storing under an existing key replaces the value
// and refreshes its position.
func (a *Arena) Put(k Key, v any) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if el, ok := a.m[k]; ok {
		el.Value.(*entry).val = v
		a.ll.MoveToFront(el)
		a.mu.Unlock()
		a.stores.Add(1)
		return
	}
	for a.ll.Len() >= a.cap {
		back := a.ll.Back()
		a.ll.Remove(back)
		delete(a.m, back.Value.(*entry).key)
		a.evictions.Add(1)
	}
	a.m[k] = a.ll.PushFront(&entry{key: k, val: v})
	a.mu.Unlock()
	a.stores.Add(1)
}

// Stats snapshots the counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	st := ArenaStats{
		Hits:      a.hits.Load(),
		Misses:    a.misses.Load(),
		Stores:    a.stores.Load(),
		Evictions: a.evictions.Load(),
	}
	a.mu.Lock()
	st.Entries = a.ll.Len()
	a.mu.Unlock()
	return st
}
