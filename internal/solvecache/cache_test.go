package solvecache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutLRU(t *testing.T) {
	c := New(64, 0) // roomy: no shard can evict during this test
	keys := []Key{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	for i, k := range keys {
		c.Put(k, i)
	}
	for i, k := range keys {
		v, ok := c.Get(k)
		if !ok || v.(int) != i {
			t.Fatalf("Get(%v) = %v,%v want %d", k, v, ok, i)
		}
	}
	st := c.Stats()
	if st.Stores != 4 || st.Hits != 4 || st.Entries != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEviction(t *testing.T) {
	c := New(1, 0) // single shard, single entry
	c.Put(Key{1, 1}, "a")
	c.Put(Key{2, 2}, "b")
	if _, ok := c.Get(Key{1, 1}); ok {
		t.Fatal("evicted entry still present")
	}
	if v, ok := c.Get(Key{2, 2}); !ok || v.(string) != "b" {
		t.Fatal("latest entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Put(Key{1, 1}, "x")
	if _, ok := c.Get(Key{1, 1}); ok {
		t.Fatal("nil cache returned a hit")
	}
	ran := false
	v, shared := c.Do(Key{1, 1}, func() (any, time.Duration, bool) {
		ran = true
		return 7, time.Second, true
	})
	if !ran || shared || v.(int) != 7 {
		t.Fatal("nil cache Do must compute directly")
	}
	if New(0, 0) != nil {
		t.Fatal("New(0) must return the nil cache")
	}
	_ = c.Stats()
	_ = c.MinWork()
}

func TestDoCachesAndHits(t *testing.T) {
	c := New(8, 0)
	calls := 0
	fn := func() (any, time.Duration, bool) {
		calls++
		return "v", time.Millisecond, true
	}
	if v, shared := c.Do(Key{9, 9}, fn); shared || v.(string) != "v" {
		t.Fatal("first Do must compute")
	}
	if v, shared := c.Do(Key{9, 9}, fn); !shared || v.(string) != "v" {
		t.Fatal("second Do must hit")
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

func TestAdmissionThreshold(t *testing.T) {
	c := New(8, 50*time.Millisecond)
	v, _ := c.Do(Key{5, 5}, func() (any, time.Duration, bool) {
		return "cheap", time.Millisecond, true
	})
	if v.(string) != "cheap" {
		t.Fatal("value lost")
	}
	if _, ok := c.Get(Key{5, 5}); ok {
		t.Fatal("below-threshold result was admitted")
	}
	c.Do(Key{6, 6}, func() (any, time.Duration, bool) {
		return "pricey", time.Second, true
	})
	if _, ok := c.Get(Key{6, 6}); !ok {
		t.Fatal("above-threshold result was not admitted")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(8, 0)
	const waiters = 8
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	sharedFlags := make([]bool, waiters+1)

	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		results[0], sharedFlags[0] = c.Do(Key{7, 7}, func() (any, time.Duration, bool) {
			calls.Add(1)
			close(started)
			<-release
			return 42, time.Millisecond, true
		})
	}()
	<-started
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], sharedFlags[i] = c.Do(Key{7, 7}, func() (any, time.Duration, bool) {
				calls.Add(1)
				return 42, time.Millisecond, true
			})
		}(i)
	}
	// Give the waiters a moment to register against the flight, then
	// release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v.(int) != 42 {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	if sharedFlags[0] {
		t.Fatal("leader reported shared")
	}
	// Every waiter that joined the flight (or hit the admitted entry
	// afterwards) must not have computed; a few may have raced past the
	// flight registration and computed for themselves, but the leader's
	// computation plus racers must stay well below waiters+1 total —
	// and with the leader blocked until all goroutines launched, racers
	// can only be waiters that started before the leader registered,
	// which cannot happen here.
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
}

func TestCancelledLeaderDoesNotPoisonOrDeadlock(t *testing.T) {
	c := New(8, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderV any
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // leader whose solve is "interrupted": share=false
		defer wg.Done()
		leaderV, _ = c.Do(Key{8, 8}, func() (any, time.Duration, bool) {
			close(started)
			<-release
			return "partial", time.Millisecond, false
		})
	}()
	<-started

	const waiters = 4
	var recomputes atomic.Int64
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Do(Key{8, 8}, func() (any, time.Duration, bool) {
				recomputes.Add(1)
				return "full", 0, true
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)

	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters deadlocked behind a cancelled leader")
	}

	if leaderV.(string) != "partial" {
		t.Fatal("leader must receive its own (interrupted) result")
	}
	for i, v := range results {
		if v.(string) != "full" {
			t.Fatalf("waiter %d received the interrupted result: %v", i, v)
		}
	}
	if recomputes.Load() == 0 {
		t.Fatal("waiters should have recomputed for themselves")
	}
	// The interrupted result must not be in the cache.
	if v, ok := c.Get(Key{8, 8}); ok && v.(string) != "full" {
		t.Fatalf("cache poisoned with %v", v)
	}
}

func TestPanickingLeaderReleasesWaiters(t *testing.T) {
	c := New(8, 0)
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		c.Do(Key{3, 1}, func() (any, time.Duration, bool) {
			close(started)
			time.Sleep(5 * time.Millisecond)
			panic("boom")
		})
	}()
	<-started
	done := make(chan any, 1)
	go func() {
		v, _ := c.Do(Key{3, 1}, func() (any, time.Duration, bool) { return "ok", 0, true })
		done <- v
	}()
	wg.Wait()
	select {
	case v := <-done:
		if v.(string) != "ok" {
			t.Fatalf("waiter got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked behind a panicking leader")
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	c := New(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{uint64(i % 32), uint64(g % 2)}
				v, _ := c.Do(k, func() (any, time.Duration, bool) {
					return int(k.Hi*100 + k.Lo), time.Millisecond, true
				})
				if v.(int) != int(k.Hi*100+k.Lo) {
					t.Errorf("wrong value for %v: %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Dedups == 0 {
		t.Fatalf("expected hits under mixed load: %+v", st)
	}
}

// TestContentionCancelledLeaders is the serving-tier stress test: many
// goroutines hammer a sharded cache while a fraction of leaders are
// "cancelled mid-solve" (they block, then return share=false).  The
// invariants under -race: no waiter ever observes a partial result as
// shared, every caller gets a complete value, and the counters stay
// consistent (each Do resolves as exactly one of hit/miss/dedup).
func TestContentionCancelledLeaders(t *testing.T) {
	c := New(256, 0)
	const (
		goroutines = 32
		iters      = 300
		keys       = 64 // > shard count, so waiters pile up across shards
	)

	type val struct {
		complete bool
		key      Key
	}
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := Key{uint64((g + i) % keys), 0xcafe}
				calls.Add(1)
				// Leaders on "unlucky" rounds simulate a budget
				// cancellation: they dawdle (letting waiters pile up)
				// and return an incomplete, unshareable value.
				cancelled := (g+i)%3 == 0
				v, shared := c.Do(k, func() (any, time.Duration, bool) {
					if cancelled {
						time.Sleep(time.Duration((g+i)%3) * 100 * time.Microsecond)
						return val{complete: false, key: k}, time.Millisecond, false
					}
					return val{complete: true, key: k}, time.Millisecond, true
				})
				got := v.(val)
				if got.key != k {
					t.Errorf("value for key %v carries key %v", k, got.key)
					return
				}
				if shared && !got.complete {
					t.Errorf("waiter received a partial/interrupted result for %v", k)
					return
				}
				if !shared && !cancelled && !got.complete {
					t.Errorf("own computation for %v reported incomplete despite completing", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if got, want := st.Hits+st.Misses+st.Dedups, calls.Load(); got != want {
		t.Fatalf("counter drift: hits+misses+dedups = %d, Do calls = %d (%+v)", got, want, st)
	}
	if st.Entries > 256 {
		t.Fatalf("resident entries %d exceed capacity", st.Entries)
	}
	// Nothing incomplete may have been admitted.
	for k := 0; k < keys; k++ {
		if v, ok := c.Get(Key{uint64(k), 0xcafe}); ok && !v.(val).complete {
			t.Fatalf("cache poisoned at key %d with a partial result", k)
		}
	}
}

// TestDoChanWaiterCancellation: a waiter whose cancel channel fires
// while the leader is still solving must stop waiting, compute for
// itself, and report shared=false; the leader's later completion still
// lands in the cache.
func TestDoChanWaiterCancellation(t *testing.T) {
	c := New(8, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	k := Key{42, 42}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slow leader, eventually completes shareably
		defer wg.Done()
		c.Do(k, func() (any, time.Duration, bool) {
			close(started)
			<-release
			return "leader", time.Millisecond, true
		})
	}()
	<-started

	cancel := make(chan struct{})
	close(cancel) // the waiter's client is already gone
	v, shared := c.DoChan(k, cancel, func() (any, time.Duration, bool) {
		return "own-interrupted", 0, false
	})
	if shared || v.(string) != "own-interrupted" {
		t.Fatalf("cancelled waiter got (%v, shared=%v), want its own result", v, shared)
	}

	close(release)
	wg.Wait()
	if v, ok := c.Get(k); !ok || v.(string) != "leader" {
		t.Fatalf("leader result missing from cache after waiter cancellation: %v, %v", v, ok)
	}
}
