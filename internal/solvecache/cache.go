// Package solvecache is a sharded, singleflight-deduplicated LRU for
// solver results keyed by 128-bit canonical fingerprints.
//
// The cache is sized in entries and split over a power-of-two number
// of shards, each with its own lock and LRU list, so concurrent
// portfolio workers and serving threads do not serialise on one
// mutex.  Admission is cost-aware: a computed result enters the cache
// only when producing it took at least the configured work threshold,
// so trivial solves do not evict expensive ones.
//
// Do deduplicates concurrent identical solves: the first caller (the
// leader) computes while later callers (waiters) block on its
// completion.  The contract is failure-safe by construction — the
// leader reports whether its result is shareable, and a leader whose
// solve was budget-interrupted reports it is not, in which case every
// waiter simply computes for itself under its own budget.  A leader
// can therefore never poison the cache (interrupted results are not
// admitted) nor deadlock waiters (the flight channel is closed on
// every exit path, panics included).
//
// The cache stores opaque values; callers own defensive copying on
// both sides of the boundary.
package solvecache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Key is a 128-bit cache key (a canonical fingerprint folded with a
// solver/options digest).
type Key struct {
	Hi, Lo uint64
}

// Stats is a point-in-time snapshot of the cache counters.  The json
// tags fix the wire names the ucpd /stats endpoint exposes.
type Stats struct {
	Hits      int64 `json:"hits"`      // lookups served from a stored entry
	Misses    int64 `json:"misses"`    // lookups that computed (leader or post-failure waiter)
	Dedups    int64 `json:"dedups"`    // lookups served by waiting on an in-flight leader
	Stores    int64 `json:"stores"`    // admissions
	Evictions int64 `json:"evictions"` // LRU evictions
	Entries   int   `json:"entries"`   // entries currently resident
}

type entry struct {
	key Key
	val any
}

type flight struct {
	done    chan struct{}
	val     any
	elapsed time.Duration
	ok      bool // val is complete and shareable with waiters
}

type shard struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	m      map[Key]*list.Element
	flight map[Key]*flight
}

// Cache is a sharded singleflight LRU. The zero value is not usable;
// construct with New. A nil *Cache is a valid always-miss cache that
// never dedups and never stores.
type Cache struct {
	shards  []shard
	mask    uint64
	minWork time.Duration

	hits, misses, dedups, stores, evictions atomic.Int64
}

const defaultShards = 16

// New builds a cache holding up to size entries in total, admitting
// only results whose computation took at least minWork. A size ≤ 0
// returns nil (the always-miss cache).
func New(size int, minWork time.Duration) *Cache {
	if size <= 0 {
		return nil
	}
	n := defaultShards
	for n > 1 && size < n {
		n >>= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), minWork: minWork}
	per := (size + n - 1) / n
	for i := range c.shards {
		c.shards[i] = shard{
			cap:    per,
			ll:     list.New(),
			m:      make(map[Key]*list.Element),
			flight: make(map[Key]*flight),
		}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[(k.Lo^k.Hi*0x9e3779b97f4a7c15)&c.mask]
}

// Get returns the stored value for k, refreshing its LRU position.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put stores v under k unconditionally (no work-threshold check),
// evicting the least recently used entry when the shard is full.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	c.putLocked(s, k, v)
	s.mu.Unlock()
}

func (c *Cache) putLocked(s *shard, k Key, v any) {
	if el, ok := s.m[k]; ok {
		el.Value.(*entry).val = v
		s.ll.MoveToFront(el)
		return
	}
	for s.ll.Len() >= s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
	s.m[k] = s.ll.PushFront(&entry{key: k, val: v})
	c.stores.Add(1)
}

// Do returns the value for k, computing it with fn on a miss.
// fn reports the computed value, how long the computation took (for
// cost-aware admission), and whether the value is complete — an
// interrupted solve returns share=false and is neither cached nor
// handed to waiters. The second return is true when the value came
// from the cache or from another flight's leader rather than from
// this caller's own fn.
func (c *Cache) Do(k Key, fn func() (v any, elapsed time.Duration, share bool)) (any, bool) {
	return c.DoChan(k, nil, fn)
}

// DoChan is Do with waiter cancellation: a caller that would block on
// an in-flight leader gives up as soon as cancel closes and computes
// with its own fn instead — under its own (presumably already
// cancelled) budget, so it returns promptly with its best-effort
// result rather than waiting out a leader on an unrelated, possibly
// much longer budget.  A nil cancel never fires, making DoChan(k, nil,
// fn) exactly Do.  Leaders are unaffected: a leader always runs fn to
// completion (fn itself observes the budget) and always releases its
// waiters, so a cancelled — or panicking — leader can neither poison
// the cache nor strand a waiter.
func (c *Cache) DoChan(k Key, cancel <-chan struct{}, fn func() (v any, elapsed time.Duration, share bool)) (any, bool) {
	if c == nil {
		v, _, _ := fn()
		return v, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	if fl, ok := s.flight[k]; ok {
		s.mu.Unlock()
		select {
		case <-fl.done:
		case <-cancel:
			// Our caller is gone (client disconnect, drain deadline):
			// stop waiting on the leader and let fn observe the
			// cancellation itself.
			c.misses.Add(1)
			v, _, _ := fn()
			return v, false
		}
		if fl.ok {
			c.dedups.Add(1)
			return fl.val, true
		}
		// The leader was interrupted (or panicked): its result is not
		// shareable. Compute under our own budget, without starting a
		// new flight — re-herding behind another possibly-doomed
		// leader would serialise every waiter behind repeated
		// failures.
		c.misses.Add(1)
		v, elapsed, share := fn()
		if share && elapsed >= c.minWork {
			c.Put(k, v)
		}
		return v, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flight[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		// On every exit — including a panicking fn — deregister the
		// flight and release waiters; fl.ok stays false unless the
		// computation completed shareably. Admission happens under the
		// same lock as deregistration, so a released waiter observes
		// the entry on its next lookup.
		s.mu.Lock()
		if fl.ok && fl.elapsed >= c.minWork {
			c.putLocked(s, k, fl.val)
		}
		delete(s.flight, k)
		s.mu.Unlock()
		close(fl.done)
	}()

	v, elapsed, share := fn()
	fl.val, fl.elapsed, fl.ok = v, elapsed, share
	return v, false
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}

// MinWork exposes the admission threshold.
func (c *Cache) MinWork() time.Duration {
	if c == nil {
		return 0
	}
	return c.minWork
}
