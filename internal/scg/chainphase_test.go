package scg

import (
	"reflect"
	"testing"

	"ucp/internal/benchmarks"
	"ucp/internal/budget"
	"ucp/internal/matrix"
	"ucp/internal/primes"
)

// plaCovering builds the UCP covering matrix of a paper-replica PLA
// instance through the real front end (prime generation + covering
// construction).  Two-level cover sets are the workload whose literal
// chains the chain-reduced ZDD engine compresses; the synthetic
// random-degree matrices of the other tests barely chain at all.
func plaCovering(t testing.TB, name string) *matrix.Problem {
	t.Helper()
	for _, in := range benchmarks.DifficultCyclic() {
		if in.Name != name {
			continue
		}
		f := in.PLA()
		prs, _ := primes.GenerateAutoBudget(f.F, f.D, nil)
		p, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	t.Fatalf("unknown paper instance %q", name)
	return nil
}

// implicitCores compares two implicit-phase results semantically: the
// same essential columns and the same decoded core rows.
func sameCore(a, b *ImplicitResult) bool {
	return reflect.DeepEqual(a.Essential, b.Essential) &&
		reflect.DeepEqual(a.Core.Rows, b.Core.Rows) &&
		a.Infeasible == b.Infeasible
}

// TestChainReducesLiveNodes is the nodes-per-instance acceptance bar
// of the chain representation: on the paper's covering families, at
// an equal NodeCap, the chain engine finishes the implicit phase with
// at least 2x fewer live nodes than the plain engine — the same
// budget holds a strictly larger implicit frontier.  The reduced
// cores must of course be identical.
func TestChainReducesLiveNodes(t *testing.T) {
	const cap = 500_000
	p := plaCovering(t, "max1024")

	chain := ImplicitReduceBudget(p, 1, 1, cap, nil)
	restore := SetZDDChain(false)
	plain := ImplicitReduceBudget(p, 1, 1, cap, nil)
	restore()

	if chain.Aborted || plain.Aborted {
		t.Fatalf("phase aborted under a loose cap: chain=%v plain=%v", chain.Aborted, plain.Aborted)
	}
	if !sameCore(chain, plain) {
		t.Fatal("chain and plain engines reduced to different cores")
	}
	if chain.LiveNodes <= 2 || plain.LiveNodes < 2*chain.LiveNodes {
		t.Fatalf("live-node reduction below 2x: chain %d vs plain %d", chain.LiveNodes, plain.LiveNodes)
	}
	// The engine's own profile tells the same story: the surviving
	// family would cost >= 2x the nodes without chain absorption.
	if chain.PlainNodes < 2*chain.LiveNodes {
		t.Fatalf("plain-equivalent profile below 2x: %d chain nodes, %d plain-equivalent",
			chain.LiveNodes, chain.PlainNodes)
	}

	// The synthetic random-degree gcdepth matrix chains far less (its
	// rows are random triples, not cover tails); the representation
	// must still strictly help, never hurt.
	g := cappedDepthInstance(t)
	gc := ImplicitReduceBudget(g, 1, 1, cap, nil)
	restore = SetZDDChain(false)
	gp := ImplicitReduceBudget(g, 1, 1, cap, nil)
	restore()
	if !sameCore(gc, gp) {
		t.Fatal("engines disagree on the gcdepth core")
	}
	if gc.LiveNodes >= gp.LiveNodes {
		t.Fatalf("chain engine not smaller on gcdepth: %d vs %d live nodes", gc.LiveNodes, gp.LiveNodes)
	}
}

// TestChainRaisesImplicitCeiling is the completion-rate acceptance
// bar: a NodeCap that forces the plain engine to degrade to the
// explicit fallback (its live working set crowds the cap even after
// collections) now completes implicitly on the chain engine, with the
// same core an uncapped run produces.  The cap sits between the two
// engines' minimal completing caps on the exam covering (measured
// 2304 chain vs 2936 plain; both deterministic).
func TestChainRaisesImplicitCeiling(t *testing.T) {
	const cap = 2620
	p := plaCovering(t, "exam")

	chain := ImplicitReduceBudget(p, 1, 1, cap, nil)
	if chain.Aborted {
		t.Fatalf("chain engine aborted under cap %d", cap)
	}
	if chain.Collections == 0 {
		t.Fatal("cap never pressured the chain engine: tighten the test")
	}
	// Loose-cap reference (nodeCap = 0 would take the dense shortcut,
	// which decodes its core in input order rather than ZDD order).
	ref := ImplicitReduceBudget(p, 1, 1, 500_000, nil)
	if !sameCore(chain, ref) {
		t.Fatal("capped chain run reduced to a different core than the uncapped run")
	}

	restore := SetZDDChain(false)
	plain := ImplicitReduceBudget(p, 1, 1, cap, nil)
	restore()
	if !plain.Aborted {
		t.Fatalf("plain engine completed under cap %d: cap too loose to show the ceiling gain", cap)
	}
}

// TestSolveChainVsPlainWorkers is the bit-identity contract across
// the representation change: a full Solve through the ZDD implicit
// phase returns the same solution, cost, bound and core on the chain
// and plain engines, for every worker count.  (Node accounting
// legitimately differs — that is the point — so only the semantic
// fields are compared.)
func TestSolveChainVsPlainWorkers(t *testing.T) {
	p := plaCovering(t, "exam")
	opt := Options{MaxR: 1, MaxC: 1, Budget: budget.Budget{NodeCap: 500_000}}

	type outcome struct {
		sol                []int
		cost               int
		lb                 float64
		opt                bool
		coreRows, coreCols int
	}
	var want *outcome
	for _, chain := range []bool{true, false} {
		restore := SetZDDChain(chain)
		for _, w := range []int{1, 2, 4, 8} {
			o := opt
			o.Workers = w
			res := Solve(p, o)
			got := &outcome{res.Solution, res.Cost, res.LB, res.ProvedOptimal,
				res.Stats.CoreRows, res.Stats.CoreCols}
			if want == nil {
				want = got
				if got.sol == nil {
					t.Fatal("reference solve found no cover")
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("solve diverges (chain=%v workers=%d):\ngot  %+v\nwant %+v", chain, w, got, want)
			}
		}
		restore()
	}
}
