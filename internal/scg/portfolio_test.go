package scg

import (
	"math/rand"
	"reflect"
	"testing"

	"ucp/internal/bnb"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
)

// TestWorkersBitIdentical is the portfolio's determinism contract: for
// a fixed Seed, the solution, cost, bound, optimality claim and every
// Stats counter must be bit-identical no matter how many workers run
// the restarts — including on problems that split into independent
// blocks.  Run with -race this also shakes out data races in the
// worker pool.
func TestWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		// Stitch two independent random blocks so the block dimension of
		// the portfolio is exercised, not just the restart dimension.
		a := randomProblem(rng, 10, 10, 3)
		b := randomProblem(rng, 10, 10, 3)
		rows := append([][]int(nil), a.Rows...)
		for _, r := range b.Rows {
			shifted := make([]int, len(r))
			for k, j := range r {
				shifted[k] = j + a.NCol
			}
			rows = append(rows, shifted)
		}
		cost := append(append([]int(nil), a.Cost...), b.Cost...)
		p := matrix.MustNew(rows, a.NCol+b.NCol, cost)

		base := Solve(p, Options{NumIter: 8, Seed: int64(trial), Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			got := Solve(p, Options{NumIter: 8, Seed: int64(trial), Workers: workers})
			if !reflect.DeepEqual(got.Solution, base.Solution) {
				t.Fatalf("trial %d: workers=%d solution %v != sequential %v",
					trial, workers, got.Solution, base.Solution)
			}
			if got.Cost != base.Cost || got.LB != base.LB || got.ProvedOptimal != base.ProvedOptimal {
				t.Fatalf("trial %d: workers=%d result (%d, %v, %v) != sequential (%d, %v, %v)",
					trial, workers, got.Cost, got.LB, got.ProvedOptimal,
					base.Cost, base.LB, base.ProvedOptimal)
			}
			gs, bs := got.Stats, base.Stats
			gs.CyclicCoreTime, bs.CyclicCoreTime = 0, 0 // timings are
			gs.TotalTime, bs.TotalTime = 0, 0           // exempt from the contract
			if gs != bs {
				t.Fatalf("trial %d: workers=%d stats %+v != sequential %+v",
					trial, workers, gs, bs)
			}
		}
	}
}

// TestWorkersStillValid: the parallel portfolio must keep every solver
// guarantee — feasible covers, costs at or above the optimum, honest
// optimality certificates.
func TestWorkersStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 12, 12, 3)
		opt := bnb.Solve(p, bnb.Options{})
		res := Solve(p, Options{NumIter: 4, Seed: int64(trial), Workers: 4})
		if res.Solution == nil || !p.IsCover(res.Solution) {
			t.Fatalf("trial %d: invalid cover", trial)
		}
		if res.Cost < opt.Cost {
			t.Fatalf("trial %d: cost %d below optimum %d", trial, res.Cost, opt.Cost)
		}
		if res.ProvedOptimal && res.Cost != opt.Cost {
			t.Fatalf("trial %d: false optimality certificate", trial)
		}
	}
}

// TestDirtyScratchPoolBitIdentical seeds the portfolio's scratch pool
// with buffers already dirtied on unrelated problems — the worst case
// of cross-restart scratch reuse — and holds every result to
// bit-identity with a clean-pool solve at every worker count.
func TestDirtyScratchPoolBitIdentical(t *testing.T) {
	clean := newScratch
	defer func() { newScratch = clean }()

	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 14, 14, 3)
		newScratch = clean
		base := Solve(p, Options{NumIter: 8, Seed: int64(trial), Workers: 1})

		// Every scratch the pool hands out starts full of state from a
		// differently-shaped problem.
		dirtySeed := int64(1000 + trial)
		newScratch = func() any {
			sc := &lagrangian.Scratch{}
			drng := rand.New(rand.NewSource(dirtySeed))
			q := randomProblem(drng, 25, 40, 6)
			lagrangian.SubgradientScratch(q, lagrangian.Params{MaxIters: 25}, nil, 0, nil, sc)
			return sc
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got := Solve(p, Options{NumIter: 8, Seed: int64(trial), Workers: workers})
			if !reflect.DeepEqual(got.Solution, base.Solution) ||
				got.Cost != base.Cost || got.LB != base.LB ||
				got.ProvedOptimal != base.ProvedOptimal {
				t.Fatalf("trial %d workers=%d: dirty-pool result (%v, %d) != clean (%v, %d)",
					trial, workers, got.Solution, got.Cost, base.Solution, base.Cost)
			}
			gs, bs := got.Stats, base.Stats
			gs.CyclicCoreTime, bs.CyclicCoreTime = 0, 0
			gs.TotalTime, bs.TotalTime = 0, 0
			if gs != bs {
				t.Fatalf("trial %d workers=%d: dirty-pool stats %+v != clean %+v",
					trial, workers, gs, bs)
			}
		}
	}
}

// TestRunSeedStreamsDistinct: the per-(block, restart) seeds must not
// collide across a realistic portfolio footprint.
func TestRunSeedStreamsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, seed := range []int64{0, 1, 42, -7} {
		for comp := int64(0); comp < 16; comp++ {
			for run := 1; run <= 64; run++ {
				s := runSeed(seed, comp, run)
				if seen[s] {
					t.Fatalf("seed collision at (%d, %d, %d)", seed, comp, run)
				}
				seen[s] = true
			}
		}
	}
}
