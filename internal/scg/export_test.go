package scg

// SetDenseImplicit flips the dense shortcut of the implicit phase for
// a test and returns a restore func, so the ZDD engine can be
// exercised on instances the shortcut would otherwise claim.
func SetDenseImplicit(on bool) (restore func()) {
	old := denseImplicit
	denseImplicit = on
	return func() { denseImplicit = old }
}
