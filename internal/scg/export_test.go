package scg

// SetDenseImplicit flips the dense shortcut of the implicit phase for
// a test and returns a restore func, so the ZDD engine can be
// exercised on instances the shortcut would otherwise claim.
func SetDenseImplicit(on bool) (restore func()) {
	old := denseImplicit
	denseImplicit = on
	return func() { denseImplicit = old }
}

// SetZDDGC flips the implicit phase's mark-sweep collections for a
// test and returns a restore func, so the capped-depth tests can
// contrast the GC ladder against plain cap-and-abort.
func SetZDDGC(on bool) (restore func()) {
	old := zddGC
	zddGC = on
	return func() { zddGC = old }
}

// SetZDDChain selects the implicit phase's node layout for a test and
// returns a restore func: true is the chain-reduced default, false the
// plain reference engine the differential tests compare against.
func SetZDDChain(on bool) (restore func()) {
	old := zddChain
	zddChain = on
	return func() { zddChain = old }
}
