package scg

import (
	"math"
	"sort"
	"sync"
)

// anytime assembles the portfolio's per-block incumbents into whole-
// problem covers for the Options.OnImprove hook.  Reductions guarantee
// that the essential columns plus one cover per independent block of
// the cyclic core form a cover of the input problem, so as soon as
// every block has produced its first incumbent the assembly is a
// feasible full cover; every later per-block improvement (a restart
// beating the block's best) yields a cheaper one.  The certified bound
// is the essential cost plus the per-block lower bounds.
//
// The struct is observational only: updates arrive from portfolio
// workers in scheduling order, emissions are serialised under mu, and
// nothing here feeds back into the solve — the bit-identical result
// contract is untouched.
type anytime struct {
	mu        sync.Mutex
	emit      func(sol []int, cost int, lb float64)
	essential []int
	essCost   int

	sols  [][]int   // current best cover per block (nil until first)
	costs []int     // cost of sols[i]
	lbs   []float64 // best certified LB per block (≥ 0; costs are non-negative)
	ready int       // blocks with a first incumbent

	emittedCost int
	emittedLB   float64
}

func newAnytime(essential []int, essCost, nblocks int, emit func([]int, int, float64)) *anytime {
	return &anytime{
		emit:        emit,
		essential:   essential,
		essCost:     essCost,
		sols:        make([][]int, nblocks),
		costs:       make([]int, nblocks),
		lbs:         make([]float64, nblocks),
		emittedCost: math.MaxInt,
		emittedLB:   -1,
	}
}

// update records block c's latest incumbent (sol may be nil: only the
// bound moved) and emits a fresh assembled cover when the global cost
// improved or the global bound tightened.
func (a *anytime) update(c int, sol []int, cost int, lb float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if sol != nil && (a.sols[c] == nil || cost < a.costs[c]) {
		if a.sols[c] == nil {
			a.ready++
		}
		a.sols[c], a.costs[c] = sol, cost
	}
	if lb > a.lbs[c] && !math.IsInf(lb, 1) {
		a.lbs[c] = lb
	}
	if a.ready < len(a.sols) {
		return // some block has no incumbent yet: nothing feasible to show
	}
	total := a.essCost
	lbSum := float64(a.essCost)
	n := len(a.essential)
	for i := range a.sols {
		total += a.costs[i]
		lbSum += a.lbs[i]
		n += len(a.sols[i])
	}
	if total >= a.emittedCost && lbSum <= a.emittedLB {
		return
	}
	if total < a.emittedCost {
		a.emittedCost = total
	}
	if lbSum > a.emittedLB {
		a.emittedLB = lbSum
	}
	full := make([]int, 0, n)
	full = append(full, a.essential...)
	for i := range a.sols {
		full = append(full, a.sols[i]...)
	}
	sort.Ints(full)
	a.emit(full, total, lbSum)
}
