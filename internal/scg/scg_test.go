package scg

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/bnb"
	"ucp/internal/matrix"
)

func randomProblem(rng *rand.Rand, maxRows, maxCols, maxCost int) *matrix.Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	return matrix.MustNew(rows, nc, cost)
}

func TestSolveValidAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	hit, total := 0, 0
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 10, 10, 3)
		opt := bnb.Solve(p, bnb.Options{})
		res := Solve(p, Options{Seed: int64(trial)})
		if res.Solution == nil {
			t.Fatalf("trial %d: no solution on feasible problem", trial)
		}
		if !p.IsCover(res.Solution) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		if res.Cost < opt.Cost {
			t.Fatalf("trial %d: impossible cost %d < optimum %d", trial, res.Cost, opt.Cost)
		}
		if math.Ceil(res.LB-1e-9) > float64(opt.Cost) {
			t.Fatalf("trial %d: invalid lower bound %v > optimum %d", trial, res.LB, opt.Cost)
		}
		if res.ProvedOptimal && res.Cost != opt.Cost {
			t.Fatalf("trial %d: claimed optimal %d, true optimum %d", trial, res.Cost, opt.Cost)
		}
		if res.Cost == opt.Cost {
			hit++
		}
		total++
	}
	// The paper reports nearly always hitting the optimum; on tiny
	// instances we should essentially always match it.
	if hit*20 < total*19 {
		t.Fatalf("optimum hit only %d/%d times", hit, total)
	}
}

func TestSolveUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	hit := 0
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 12, 12, 1)
		opt := bnb.Solve(p, bnb.Options{})
		res := Solve(p, Options{Seed: int64(trial)})
		if res.Cost == opt.Cost {
			hit++
		}
		if res.Cost < opt.Cost {
			t.Fatalf("trial %d: cost below optimum", trial)
		}
	}
	if hit < 95 {
		t.Fatalf("optimum hit only %d/100 times on uniform costs", hit)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{}}, NCol: 2, Cost: []int{1, 1}}
	res := Solve(p, Options{})
	if res.Solution != nil {
		t.Fatal("infeasible problem returned a cover")
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	p := matrix.MustNew(nil, 4, nil)
	res := Solve(p, Options{})
	if res.Solution == nil || len(res.Solution) != 0 || res.Cost != 0 || !res.ProvedOptimal {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestSolveReductionOnlyProblem(t *testing.T) {
	// Chain of essentials: reductions alone solve it; no subgradient
	// phase should be needed and optimality is certified.
	p := matrix.MustNew([][]int{{0}, {1}, {0, 1, 2}}, 3, nil)
	res := Solve(p, Options{})
	if !res.ProvedOptimal || res.Cost != 2 {
		t.Fatalf("got %+v", res)
	}
	if res.Stats.SubgradIters != 0 {
		t.Fatalf("subgradient ran on an empty core (%d iters)", res.Stats.SubgradIters)
	}
}

func TestMoreItersNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 14, 14, 2)
		r1 := Solve(p, Options{NumIter: 1, Seed: 7})
		r5 := Solve(p, Options{NumIter: 5, Seed: 7})
		if r5.Cost > r1.Cost {
			t.Fatalf("trial %d: NumIter=5 cost %d worse than NumIter=1 cost %d", trial, r5.Cost, r1.Cost)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p := randomProblem(rng, 15, 15, 2)
	a := Solve(p, Options{NumIter: 4, Seed: 42})
	b := Solve(p, Options{NumIter: 4, Seed: 42})
	if a.Cost != b.Cost || len(a.Solution) != len(b.Solution) {
		t.Fatal("same seed produced different results")
	}
	for i := range a.Solution {
		if a.Solution[i] != b.Solution[i] {
			t.Fatal("same seed produced different solutions")
		}
	}
}

func TestAblationsStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 10, 10, 3)
		opt := bnb.Solve(p, bnb.Options{})
		for _, o := range []Options{
			{DisableImplicit: true},
			{DisablePenalties: true},
			{DisablePromising: true},
			{DisableWarmStart: true},
			{DisablePartition: true},
			{DisableImplicit: true, DisablePenalties: true, DisablePromising: true, DisableWarmStart: true, DisablePartition: true},
		} {
			o.Seed = int64(trial)
			res := Solve(p, o)
			if res.Solution == nil || !p.IsCover(res.Solution) {
				t.Fatalf("trial %d opts %+v: invalid result", trial, o)
			}
			if res.Cost < opt.Cost {
				t.Fatalf("trial %d: cost below optimum", trial)
			}
			if res.ProvedOptimal && res.Cost != opt.Cost {
				t.Fatalf("trial %d opts %+v: false optimality claim", trial, o)
			}
		}
	}
}

func TestImplicitReducePreservesOptimum(t *testing.T) {
	// Both implicit engines must preserve the optimum: the dense
	// shortcut (default on these small dense instances) and the ZDD.
	for _, dense := range []bool{true, false} {
		restore := SetDenseImplicit(dense)
		rng := rand.New(rand.NewSource(86))
		for trial := 0; trial < 150; trial++ {
			p := randomProblem(rng, 9, 9, 3)
			want := bnb.Solve(p, bnb.Options{}).Cost
			ir := ImplicitReduce(p, 1, 1) // thresholds tiny: run to fixpoint
			if ir.Infeasible {
				t.Fatalf("dense=%v trial %d: feasible problem reported infeasible", dense, trial)
			}
			got := p.CostOf(ir.Essential)
			if len(ir.Core.Rows) > 0 {
				got += bnb.Solve(ir.Core, bnb.Options{}).Cost
			}
			if got != want {
				t.Fatalf("dense=%v trial %d: implicit reduction changed optimum: %d != %d\nrows=%v cost=%v ess=%v core=%v",
					dense, trial, got, want, p.Rows, p.Cost, ir.Essential, ir.Core.Rows)
			}
		}
		restore()
	}
}

func TestImplicitReduceAgreesWithExplicit(t *testing.T) {
	for _, dense := range []bool{true, false} {
		restore := SetDenseImplicit(dense)
		rng := rand.New(rand.NewSource(87))
		for trial := 0; trial < 100; trial++ {
			p := randomProblem(rng, 9, 9, 1)
			ir := ImplicitReduce(p, 1, 1)
			er := matrix.Reduce(p)
			if ir.Infeasible != er.Infeasible {
				t.Fatalf("dense=%v trial %d: infeasibility disagreement", dense, trial)
			}
			// The cyclic cores must have the same number of rows: both
			// reduction systems implement the same fixpoint.
			irFinal := matrix.Reduce(ir.Core) // implicit may stop at threshold
			if len(irFinal.Core.Rows) != len(er.Core.Rows) {
				t.Fatalf("dense=%v trial %d: core sizes differ: %d vs %d",
					dense, trial, len(irFinal.Core.Rows), len(er.Core.Rows))
			}
		}
		restore()
	}
}

func TestImplicitReduceInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{}, {0}}, NCol: 1, Cost: []int{1}}
	ir := ImplicitReduce(p, 100, 100)
	if !ir.Infeasible {
		t.Fatal("empty row not detected in implicit phase")
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	p := randomProblem(rng, 15, 15, 2)
	res := Solve(p, Options{NumIter: 2, Seed: 1})
	if res.Stats.TotalTime <= 0 {
		t.Fatal("total time not measured")
	}
	// The implicit phase ran on exactly one engine: ZDD nodes were
	// allocated, or the dense shortcut claimed the instance.
	if res.Stats.ZDDNodes == 0 && !res.Stats.ImplicitDense {
		t.Fatal("implicit phase did not run")
	}
	if res.Stats.ZDDNodes > 0 && res.Stats.ImplicitDense {
		t.Fatal("both implicit engines claim to have run")
	}

	// Forcing the ZDD engine must still populate its node counter.
	restore := SetDenseImplicit(false)
	defer restore()
	res = Solve(p, Options{NumIter: 2, Seed: 1})
	if res.Stats.ZDDNodes == 0 {
		t.Fatal("ZDD phase did not run")
	}
}

func TestPartitionedCore(t *testing.T) {
	// Two disjoint triangles plus one forced column: the components
	// must be solved independently and the bounds combined, certifying
	// the optimum 2 + 2 + 1.
	p := matrix.MustNew([][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{6},
	}, 7, nil)
	res := Solve(p, Options{})
	if res.Cost != 5 || !res.ProvedOptimal {
		t.Fatalf("got cost %d optimal=%v, want 5 certified", res.Cost, res.ProvedOptimal)
	}
	// And the same result with partitioning disabled.
	res2 := Solve(p, Options{DisablePartition: true})
	if res2.Cost != 5 {
		t.Fatalf("without partitioning: cost %d", res2.Cost)
	}
}

func TestPartitionAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 60; trial++ {
		// Stitch two independent random blocks into one problem.
		a := randomProblem(rng, 8, 8, 2)
		b := randomProblem(rng, 8, 8, 2)
		rows := append([][]int(nil), a.Rows...)
		for _, r := range b.Rows {
			shifted := make([]int, len(r))
			for k, j := range r {
				shifted[k] = j + a.NCol
			}
			rows = append(rows, shifted)
		}
		cost := append(append([]int(nil), a.Cost...), b.Cost...)
		p := matrix.MustNew(rows, a.NCol+b.NCol, cost)
		want := bnb.Solve(p, bnb.Options{}).Cost
		res := Solve(p, Options{Seed: int64(trial)})
		if res.Cost < want {
			t.Fatalf("trial %d: cost below optimum", trial)
		}
		if res.ProvedOptimal && res.Cost != want {
			t.Fatalf("trial %d: false certificate (%d vs %d)", trial, res.Cost, want)
		}
	}
}
