// Package scg implements ZDD_SCG, the paper's contribution: a greedy
// constructive heuristic for the unate covering problem driven by
// lagrangian relaxation (Figure 2 of the paper).
//
// The covering matrix first passes through an implicit reduction phase
// where it lives inside a single ZDD (one set of column ids per row):
// duplicate rows vanish by canonicity, row dominance is the Minimal
// operation, essential columns are the singleton sets, and column
// dominance is tested with Subset operations.  The (small) cyclic core
// is then decoded to a sparse matrix and the subgradient machinery of
// internal/lagrangian rates the columns; penalty tests fix columns in
// or out, "promising" columns are fixed heuristically, and one
// best-rated column is always fixed to guarantee progress.  The
// process repeats until the matrix empties, then the solution is made
// irredundant.  NumIter outer runs restart from the saved cyclic core,
// choosing among the BestCol top-rated columns at random.
package scg

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"ucp/internal/budget"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/solvecache"
)

// Options configures the solver.  The zero value selects the paper's
// defaults.
type Options struct {
	// NumIter is the number of constructive runs; from the second run
	// on, the fixing step picks at random among the best BestCol
	// candidates.  Default 1.
	NumIter int
	// BestCol is the stochastic window of the first randomised run; it
	// grows by one each later run.  Default 2.
	BestCol int
	// MaxR / MaxC stop the implicit reduction phase as soon as the
	// explicit matrix is small enough (the paper uses 5000 rows and
	// 10000 columns).
	MaxR, MaxC int
	// Params tunes the subgradient ascent.
	Params lagrangian.Params
	// Seed drives the stochastic runs.
	Seed int64
	// DisableImplicit skips the ZDD phase (for ablations): explicit
	// reductions do all the work.
	DisableImplicit bool
	// DisablePenalties skips the lagrangian and dual penalty fixing
	// (for ablations).
	DisablePenalties bool
	// DisablePromising skips the ĉ/μ̂ promising-column fixing (for
	// ablations).
	DisablePromising bool
	// DisablePartition turns off the independent-block decomposition
	// of the cyclic core (for ablations).
	DisablePartition bool
	// DisableWarmStart makes every subgradient phase of the fixing
	// loop start cold from dual ascent instead of inheriting the
	// previous phase's multipliers (for ablations; the paper
	// warm-starts, §3.2).
	DisableWarmStart bool
	// Workers bounds the solve's parallelism: the dominance passes of
	// the reduction fixpoints shard across up to Workers goroutines,
	// and the independent blocks of the cyclic core plus the NumIter
	// stochastic restarts of each block run on up to Workers
	// goroutines.  0 means GOMAXPROCS, 1 is fully sequential.  The
	// solution and every Stats counter are bit-identical for a given
	// Seed regardless of Workers (timings and interrupted solves
	// excepted); see DESIGN.md for the contract.
	Workers int
	// Budget bounds the solve (wall-clock deadline, ZDD node cap,
	// subgradient iteration cap).  The zero value is unlimited.  When
	// the budget runs out the solver degrades gracefully: the implicit
	// phase falls back to the explicit one, the fixing loop stops, and
	// the best feasible solution found so far is returned with
	// Interrupted set and a still-valid lower bound.
	Budget budget.Budget
	// OnImprove, when non-nil, receives every improving incumbent the
	// portfolio assembles while it runs: a feasible cover of the whole
	// input problem, its cost, and the best certified lower bound
	// known at that moment.  Calls are serialised and the slice is a
	// fresh copy the receiver owns.  The hook is observational only —
	// it cannot alter the solved result, which moments emit depends on
	// scheduling (so it is exempt from the bit-identity contract), and
	// it is excluded from the Cache digest; a solve answered from the
	// cache emits no intermediate incumbents, only the final Result.
	OnImprove func(sol []int, cost int, lb float64)
	// Cache, when non-nil, memoizes whole solves across calls: the
	// problem is canonicalised to a 128-bit fingerprint, folded with a
	// digest of the result-relevant options (everything above except
	// Workers, whose results are bit-identical by contract, and the
	// budget's deadline/caps, which only matter when they fire — and
	// interrupted solves are never cached), and looked up before any
	// work happens.  Concurrent identical solves are deduplicated
	// behind one leader; Solution and Stats come back as defensive
	// copies, with Stats.CacheHits/CacheMisses marking how the result
	// was obtained.
	Cache *solvecache.Cache
}

func (o *Options) fill() {
	if o.NumIter == 0 {
		o.NumIter = 1
	}
	if o.BestCol == 0 {
		o.BestCol = 2
	}
	if o.MaxR == 0 {
		o.MaxR = 5000
	}
	if o.MaxC == 0 {
		o.MaxC = 10000
	}
}

// Stats reports how the solve went.
type Stats struct {
	CyclicCoreTime time.Duration // implicit + explicit reduction time
	TotalTime      time.Duration
	CoreRows       int // rows of the cyclic core
	CoreCols       int // active columns of the cyclic core
	ZDDNodes       int // high-water ZDD node store of the implicit phase
	ZDDCollections int // mark-sweep collections run by the implicit phase
	// ZDDLiveNodes / ZDDPlainNodes profile the implicit phase's final
	// family: live chain-reduced nodes versus the plain-equivalent
	// node count a chain-free ZDD would store.  Their ratio is the
	// chain-compression factor; both stay zero on the dense shortcut.
	ZDDLiveNodes  int
	ZDDPlainNodes int
	FixSteps      int // column-fixing iterations over all runs
	Runs          int // constructive runs executed
	SubgradIters  int // total subgradient iterations
	// ImplicitAborted reports that the ZDD phase hit its node cap (or
	// the deadline) and the solve fell back to the explicit path.
	ImplicitAborted bool
	// ImplicitDense reports that the implicit phase ran on the dense
	// bit-matrix engine instead of the ZDD (small dense instances);
	// ZDDNodes is then zero by construction.
	ImplicitDense bool
	// CacheHits / CacheMisses report how Options.Cache served this
	// solve: a hit returned a stored (or in-flight leader's) result, a
	// miss computed it.  Both stay zero without a cache; like the
	// timing fields they are exempt from the bit-identity contracts
	// (the same solve answered from the cache differs here and nowhere
	// else).
	CacheHits   int64
	CacheMisses int64
}

// Result of a ZDD_SCG solve.
type Result struct {
	Solution []int // column ids of the input problem; nil if infeasible
	Cost     int
	LB       float64 // valid lower bound on the optimum of the input
	// ProvedOptimal is true when Cost == ⌈LB⌉, so the heuristic
	// solution is certified optimal.
	ProvedOptimal bool
	// Interrupted reports that the budget ran out before the solve
	// finished; Solution is then still a feasible cover (when one
	// exists) and LB a valid, if weaker, lower bound.
	Interrupted bool
	// StopReason says which budget limit ran out (None when not
	// interrupted).
	StopReason budget.Reason
	Stats      Stats
}

// Solve runs ZDD_SCG on the covering problem p, consulting
// Options.Cache when one is set.
func Solve(p *matrix.Problem, opt Options) *Result {
	opt.fill()
	if opt.Cache != nil {
		return solveCached(p, opt)
	}
	return solve(p, opt)
}

// solve is the uncached solver core; opt is already filled.
func solve(p *matrix.Problem, opt Options) *Result {
	t0 := time.Now()
	res := &Result{}
	tr := opt.Budget.Tracker()
	defer func() {
		if r := tr.Reason(); r != budget.None {
			res.Interrupted = true
			res.StopReason = r
		}
	}()

	// The reduction fixpoints shard their dominance passes across the
	// same worker budget the restart portfolio uses; the merge is
	// deterministic, so the cyclic core is bit-identical for any count.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// ----- implicit reduction to (near) cyclic core -----
	var essential []int
	work := p
	if !opt.DisableImplicit {
		ir := ImplicitReduceBudgetWorkers(p, opt.MaxR, opt.MaxC, opt.Budget.NodeCap, tr, workers)
		res.Stats.ZDDNodes = ir.ZDDNodes
		res.Stats.ZDDCollections = ir.Collections
		res.Stats.ZDDLiveNodes = ir.LiveNodes
		res.Stats.ZDDPlainNodes = ir.PlainNodes
		res.Stats.ImplicitDense = ir.Dense
		if ir.Aborted {
			// Node cap or deadline: degrade to the explicit reduction
			// path on the original matrix (the DisableImplicit route).
			res.Stats.ImplicitAborted = true
		} else if ir.Infeasible {
			res.Stats.TotalTime = time.Since(t0)
			return res
		} else {
			essential = append(essential, ir.Essential...)
			work = ir.Core
		}
	}

	// ----- explicit reductions -----
	red := matrix.ReduceBudgetWorkers(work, tr, workers)
	if red.Infeasible {
		res.Stats.TotalTime = time.Since(t0)
		return res
	}
	essential = append(essential, red.Essential...)
	core := red.Core
	res.Stats.CyclicCoreTime = time.Since(t0)
	res.Stats.CoreRows = len(core.Rows)
	res.Stats.CoreCols = len(core.ActiveCols())

	essCost := p.CostOf(essential)
	if len(core.Rows) == 0 {
		// The reductions solved the problem outright; essentials form
		// a minimum cover.
		if essential == nil {
			essential = []int{} // nil would read as "infeasible"
		}
		sort.Ints(essential)
		res.Solution = essential
		res.Cost = essCost
		res.LB = float64(essCost)
		res.ProvedOptimal = true
		res.Stats.TotalTime = time.Since(t0)
		return res
	}

	// ----- solve the cyclic core, one independent block at a time;
	// the blocks and their stochastic restarts run as a deterministic
	// worker-pool portfolio (see portfolio.go) -----
	comps := []matrix.Component{{Problem: core}}
	if !opt.DisablePartition {
		if split := matrix.Components(core); len(split) > 1 {
			comps = split
		}
	}
	var obs *anytime
	if opt.OnImprove != nil {
		obs = newAnytime(essential, essCost, len(comps), opt.OnImprove)
	}
	states := solveBlocks(comps, opt, tr, obs)
	best := append([]int(nil), essential...)
	lbSum := float64(essCost)
	ceilSum := essCost
	for _, cs := range states {
		sol, lb, ok := cs.merge(&res.Stats)
		if !ok {
			res.Stats.TotalTime = time.Since(t0)
			return res
		}
		best = append(best, sol...)
		lbSum += lb
		ceilSum += int(math.Ceil(lb - 1e-9))
	}
	res.finish(p, best, lbSum, ceilSum, t0)
	return res
}

// finish cleans up and records the combined solution.  ceilLB is the
// sum of the per-block integer-rounded bounds plus the essential cost,
// which certifies optimality when the final cost matches it.
func (r *Result) finish(p *matrix.Problem, best []int, lb float64, ceilLB int, t0 time.Time) {
	best = p.Irredundant(best)
	sort.Ints(best)
	r.Solution = best
	r.Cost = p.CostOf(best)
	r.LB = lb
	r.ProvedOptimal = r.Cost <= ceilLB
	r.Stats.TotalTime = time.Since(t0)
}

// runOnce executes one constructive run of the fixing loop on a copy
// of the saved cyclic core (zBest is the cost to beat), returning the
// completed cover (or nil when every path was abandoned), its cost,
// the best valid core lower bound observed (only the pre-fixing
// subgradient phase produces one), and iteration counts.
func runOnce(core *matrix.Problem, zBest int, opt Options, rng *rand.Rand, window int, tr *budget.Tracker, sc *lagrangian.Scratch) (sol []int, cost int, coreLB float64, sgIters, steps int) {
	var fixed []int
	cur := core.Clone()
	coreLB = math.Inf(-1)
	firstPhase := true

	// Multipliers inherited across fixing phases (§3.2: the previous
	// problem's best λ is the new problem's start).  lambda is aligned
	// with cur.Rows; mu lives in original column-id space.
	var lambda []float64
	var muFull []float64

	for {
		if tr.Interrupted() {
			// Abandon the run; the best candidate seen so far (possibly
			// nil) goes back to solveCore, which keeps its incumbent.
			return sol, cost, coreLB, sgIters, steps
		}
		steps++
		if len(cur.Rows) == 0 {
			full := core.Irredundant(fixed)
			return full, core.CostOf(full), coreLB, sgIters, steps
		}
		compact, ids := cur.Compact()
		var init *lagrangian.Multipliers
		if !opt.DisableWarmStart && lambda != nil && muFull != nil {
			mu := make([]float64, compact.NCol)
			for k, j := range ids {
				mu[k] = muFull[j]
			}
			init = &lagrangian.Multipliers{Lambda: lambda, Mu: mu}
		}
		sg := lagrangian.SubgradientScratch(compact, opt.Params, init, 0, tr, sc)
		sgIters += sg.Iters
		if sg.Best == nil {
			return nil, 0, coreLB, sgIters, steps
		}
		pathLB := float64(core.CostOf(fixed)) + sg.LB
		if firstPhase {
			coreLB = sg.LB // nothing fixed yet: a valid bound on the core
			firstPhase = false
		}
		// A complete candidate through this subproblem's heuristic.
		cand := append(append([]int(nil), fixed...), mapCols(sg.Best, ids)...)
		cand = core.Irredundant(cand)
		if c := core.CostOf(cand); c < zBest {
			zBest = c
			sol, cost = cand, c
		}
		// Abandon the path when it cannot beat the best known cover.
		if math.Ceil(pathLB-1e-9) >= float64(zBest) {
			return sol, cost, coreLB, sgIters, steps
		}
		// Budget for the penalty tests: how much the subproblem may
		// spend while still improving on the best known cover.
		budget := zBest - core.CostOf(fixed)

		// ----- penalty fixing -----
		toFix := map[int]bool{}
		toDrop := map[int]bool{}
		if !opt.DisablePenalties {
			pen := lagrangian.LagrangianPenalties(sg.CTilde, sg.LB, budget)
			prm := opt.Params
			if prm.DualPen == 0 {
				prm.DualPen = lagrangian.DefaultParams().DualPen
			}
			if compact.NCol <= prm.DualPen {
				pen = pen.Merge(lagrangian.DualPenalties(compact, sg.Lambda, budget))
			}
			if pen.NoBetter {
				return sol, cost, coreLB, sgIters, steps
			}
			for _, j := range pen.FixIn {
				toFix[j] = true
			}
			for _, j := range pen.FixOut {
				toDrop[j] = true
			}
		}

		// ----- promising columns (ĉ / μ̂ thresholds) -----
		if !opt.DisablePromising {
			for _, j := range lagrangian.Promising(sg.CTilde, sg.Mu, opt.Params) {
				if !toDrop[j] {
					toFix[j] = true
				}
			}
		}

		// ----- always fix one column: the σ-best (or a random pick
		// among the top `window` candidates on stochastic runs) -----
		if len(toFix) == 0 {
			alpha := opt.Params.Alpha
			if alpha == 0 {
				alpha = lagrangian.DefaultParams().Alpha
			}
			sigma := lagrangian.Sigma(sg.CTilde, sg.Mu, alpha)
			type rated struct {
				j int
				s float64
			}
			var order []rated
			for j := 0; j < compact.NCol; j++ {
				if !toDrop[j] {
					order = append(order, rated{j, sigma[j]})
				}
			}
			if len(order) == 0 {
				return sol, cost, coreLB, sgIters, steps
			}
			sort.Slice(order, func(a, b int) bool { return order[a].s < order[b].s })
			k := 0
			if window > 1 {
				w := window
				if w > len(order) {
					w = len(order)
				}
				k = rng.Intn(w)
			}
			toFix[order[k].j] = true
		}

		// Save the phase's best multipliers for the warm start of the
		// next phase (compact rows match cur.Rows positionally).
		lambda = sg.Lambda
		if muFull == nil {
			muFull = make([]float64, core.NCol)
		}
		for k, j := range ids {
			muFull[j] = sg.Mu[k]
		}

		// ----- apply fixes and re-reduce -----
		next := cur
		rowsKept := make([]int, len(cur.Rows)) // surviving cur-row index per next row
		for i := range rowsKept {
			rowsKept[i] = i
		}
		for j := range toFix {
			fixed = append(fixed, ids[j])
			var kept []int
			next, kept = next.FixColumnTracked(ids[j])
			mapped := make([]int, len(kept))
			for i, k := range kept {
				mapped[i] = rowsKept[k]
			}
			rowsKept = mapped
		}
		for j := range toDrop {
			if !toFix[j] {
				next = next.RemoveColumn(ids[j]) // rows unchanged
			}
		}
		// Per-restart re-reductions stay sequential: the portfolio
		// already spreads the restarts across the worker budget, so
		// sharding these small fixpoints too would only oversubscribe.
		red := matrix.ReduceTracked(next)
		if red.Infeasible {
			// Dropping columns emptied a row: no improving solution
			// completes this path.
			return sol, cost, coreLB, sgIters, steps
		}
		fixed = append(fixed, red.Essential...)
		// Thread λ through to the reduced rows.
		newLambda := make([]float64, len(red.Core.Rows))
		for i, o := range red.RowOrigin {
			newLambda[i] = lambda[rowsKept[o]]
		}
		lambda = newLambda
		cur = red.Core
	}
}

func mapCols(cols, ids []int) []int {
	out := make([]int, len(cols))
	for k, j := range cols {
		out[k] = ids[j]
	}
	return out
}
