// Package scg implements ZDD_SCG, the paper's contribution: a greedy
// constructive heuristic for the unate covering problem driven by
// lagrangian relaxation (Figure 2 of the paper).
//
// The covering matrix first passes through an implicit reduction phase
// where it lives inside a single ZDD (one set of column ids per row):
// duplicate rows vanish by canonicity, row dominance is the Minimal
// operation, essential columns are the singleton sets, and column
// dominance is tested with Subset operations.  The (small) cyclic core
// is then decoded to a sparse matrix and the subgradient machinery of
// internal/lagrangian rates the columns; penalty tests fix columns in
// or out, "promising" columns are fixed heuristically, and one
// best-rated column is always fixed to guarantee progress.  The
// process repeats until the matrix empties, then the solution is made
// irredundant.  NumIter outer runs restart from the saved cyclic core,
// choosing among the BestCol top-rated columns at random.
package scg

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"ucp/internal/budget"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/solvecache"
)

// Options configures the solver.  The zero value selects the paper's
// defaults.
type Options struct {
	// NumIter is the number of constructive runs; from the second run
	// on, the fixing step picks at random among the best BestCol
	// candidates.  Default 1.
	NumIter int
	// BestCol is the stochastic window of the first randomised run; it
	// grows by one each later run.  Default 2.
	BestCol int
	// MaxR / MaxC stop the implicit reduction phase as soon as the
	// explicit matrix is small enough (the paper uses 5000 rows and
	// 10000 columns).
	MaxR, MaxC int
	// Params tunes the subgradient ascent.
	Params lagrangian.Params
	// Seed drives the stochastic runs.
	Seed int64
	// DisableImplicit skips the ZDD phase (for ablations): explicit
	// reductions do all the work.
	DisableImplicit bool
	// DisablePenalties skips the lagrangian and dual penalty fixing
	// (for ablations).
	DisablePenalties bool
	// DisablePromising skips the ĉ/μ̂ promising-column fixing (for
	// ablations).
	DisablePromising bool
	// DisablePartition turns off the independent-block decomposition
	// of the cyclic core (for ablations).
	DisablePartition bool
	// DisableWarmStart makes every subgradient phase of the fixing
	// loop start cold from dual ascent instead of inheriting the
	// previous phase's multipliers (for ablations; the paper
	// warm-starts, §3.2).
	DisableWarmStart bool
	// Workers bounds the solve's parallelism: the dominance passes of
	// the reduction fixpoints shard across up to Workers goroutines,
	// and the independent blocks of the cyclic core plus the NumIter
	// stochastic restarts of each block run on up to Workers
	// goroutines.  0 means GOMAXPROCS, 1 is fully sequential.  The
	// solution and every Stats counter are bit-identical for a given
	// Seed regardless of Workers (timings and interrupted solves
	// excepted); see DESIGN.md for the contract.
	Workers int
	// Budget bounds the solve (wall-clock deadline, ZDD node cap,
	// subgradient iteration cap).  The zero value is unlimited.  When
	// the budget runs out the solver degrades gracefully: the implicit
	// phase falls back to the explicit one, the fixing loop stops, and
	// the best feasible solution found so far is returned with
	// Interrupted set and a still-valid lower bound.
	Budget budget.Budget
	// OnImprove, when non-nil, receives every improving incumbent the
	// portfolio assembles while it runs: a feasible cover of the whole
	// input problem, its cost, and the best certified lower bound
	// known at that moment.  Calls are serialised and the slice is a
	// fresh copy the receiver owns.  The hook is observational only —
	// it cannot alter the solved result, which moments emit depends on
	// scheduling (so it is exempt from the bit-identity contract), and
	// it is excluded from the Cache digest; a solve answered from the
	// cache emits no intermediate incumbents, only the final Result.
	OnImprove func(sol []int, cost int, lb float64)
	// MemBudget, when positive, asks for the out-of-core
	// component-sharded driver: ucp.SolveSCG (and the serve layer)
	// route the solve through internal/shard, which partitions the
	// input into connected components, schedules them largest-first
	// under this many bytes of tracked decoded-instance memory, and
	// spills not-yet-scheduled components to disk.  scg.Solve itself
	// ignores the field — the sharded result is bit-identical to the
	// direct one by construction (see DESIGN.md §17), which is also why
	// it is excluded from the Cache digest.  Sharded solves bypass the
	// Cache.
	MemBudget int64
	// SpillDir is where the sharded driver keeps its spill files
	// (empty: the OS temp directory).  Ignored by scg.Solve.
	SpillDir string
	// Cache, when non-nil, memoizes whole solves across calls: the
	// problem is canonicalised to a 128-bit fingerprint, folded with a
	// digest of the result-relevant options (everything above except
	// Workers, whose results are bit-identical by contract, and the
	// budget's deadline/caps, which only matter when they fire — and
	// interrupted solves are never cached), and looked up before any
	// work happens.  Concurrent identical solves are deduplicated
	// behind one leader; Solution and Stats come back as defensive
	// copies, with Stats.CacheHits/CacheMisses marking how the result
	// was obtained.
	Cache *solvecache.Cache
}

func (o *Options) fill() {
	if o.NumIter == 0 {
		o.NumIter = 1
	}
	if o.BestCol == 0 {
		o.BestCol = 2
	}
	if o.MaxR == 0 {
		o.MaxR = 5000
	}
	if o.MaxC == 0 {
		o.MaxC = 10000
	}
}

// Stats reports how the solve went.
type Stats struct {
	CyclicCoreTime time.Duration // implicit + explicit reduction time
	TotalTime      time.Duration
	CoreRows       int // rows of the cyclic core
	CoreCols       int // active columns of the cyclic core
	ZDDNodes       int // high-water ZDD node store of the implicit phase
	ZDDCollections int // mark-sweep collections run by the implicit phase
	// ZDDLiveNodes / ZDDPlainNodes profile the implicit phase's final
	// family: live chain-reduced nodes versus the plain-equivalent
	// node count a chain-free ZDD would store.  Their ratio is the
	// chain-compression factor; both stay zero on the dense shortcut.
	ZDDLiveNodes  int
	ZDDPlainNodes int
	FixSteps      int // column-fixing iterations over all runs
	Runs          int // constructive runs executed
	SubgradIters  int // total subgradient iterations
	// ImplicitAborted reports that the ZDD phase hit its node cap (or
	// the deadline) and the solve fell back to the explicit path.
	ImplicitAborted bool
	// ImplicitDense reports that the implicit phase ran on the dense
	// bit-matrix engine instead of the ZDD (small dense instances);
	// ZDDNodes is then zero by construction.
	ImplicitDense bool
	// CacheHits / CacheMisses report how Options.Cache served this
	// solve: a hit returned a stored (or in-flight leader's) result, a
	// miss computed it.  Both stay zero without a cache; like the
	// timing fields they are exempt from the bit-identity contracts
	// (the same solve answered from the cache differs here and nowhere
	// else).
	CacheHits   int64
	CacheMisses int64
	// Shard counters, populated only by the out-of-core sharded driver
	// (internal/shard); all zero on direct solves.  ShardComponents is
	// the number of connected components the partitioner found and
	// ShardSpilled how many of them went to disk before solving — both
	// deterministic for a given instance and budget.  ShardRespilled
	// (components evicted after decode and re-read later),
	// ShardPeakBytes (high-water tracked decoded bytes) and
	// ShardDegraded (components completed greedily after the deadline)
	// depend on scheduling, so like the timing fields they are exempt
	// from the bit-identity contracts.
	ShardComponents int
	ShardSpilled    int
	ShardRespilled  int
	ShardPeakBytes  int64
	ShardDegraded   int
}

// Result of a ZDD_SCG solve.
type Result struct {
	Solution []int // column ids of the input problem; nil if infeasible
	Cost     int
	LB       float64 // valid lower bound on the optimum of the input
	// ProvedOptimal is true when Cost == ⌈LB⌉, so the heuristic
	// solution is certified optimal.
	ProvedOptimal bool
	// Interrupted reports that the budget ran out before the solve
	// finished; Solution is then still a feasible cover (when one
	// exists) and LB a valid, if weaker, lower bound.
	Interrupted bool
	// StopReason says which budget limit ran out (None when not
	// interrupted).
	StopReason budget.Reason
	Stats      Stats
}

// Solve runs ZDD_SCG on the covering problem p, consulting
// Options.Cache when one is set.
func Solve(p *matrix.Problem, opt Options) *Result {
	opt.fill()
	if opt.Cache != nil {
		return solveCached(p, opt)
	}
	return solve(p, opt)
}

// solve is the uncached solver core; opt is already filled.
//
// The input first splits into its connected parts (rows share no
// column across parts), and each part runs the full pipeline —
// implicit reduction, explicit reduction, core-block portfolio,
// irredundant cleanup — independently; MergeParts folds the per-part
// results in canonical part order.  The sharded driver
// (internal/shard) runs the identical per-part pipeline under its own
// scheduler, so a sharded solve is bit-identical to this one by
// construction.  Connected inputs (and DisablePartition) take the
// single-part path, which is the historical pipeline unchanged.
func solve(p *matrix.Problem, opt Options) *Result {
	t0 := time.Now()
	res := &Result{}
	tr := opt.Budget.Tracker()
	defer func() {
		if r := tr.Reason(); r != budget.None {
			res.Interrupted = true
			res.StopReason = r
		}
	}()

	var parts []matrix.Component
	if !opt.DisablePartition {
		parts = matrix.Partition(p)
	}
	if parts == nil {
		// Connected input (or partitioning disabled): one part, no row
		// copies, no column compaction.
		pr := solvePart(p, 0, opt, tr, opt.OnImprove)
		mergeParts(res, []*PartResult{pr})
		res.Stats.TotalTime = time.Since(t0)
		return res
	}

	// Independent parts solve sequentially, each against its compacted
	// column universe; the portfolio inside each part still spreads its
	// blocks and restarts across the worker budget.  OnImprove
	// composes: each part's incumbents feed one slot of an outer
	// assembler that emits whole-problem covers.
	var outer *anytime
	if opt.OnImprove != nil {
		outer = newAnytime(nil, 0, len(parts), opt.OnImprove)
	}
	prs := make([]*PartResult, 0, len(parts))
	for k, part := range parts {
		var emit func([]int, int, float64)
		if outer != nil {
			kk := k
			emit = func(sol []int, cost int, lb float64) { outer.update(kk, sol, cost, lb) }
		}
		pr := solvePartCompact(part.Problem, k, opt, tr, emit)
		prs = append(prs, pr)
		if pr.Solution == nil {
			break // an uncoverable part: the whole problem is infeasible
		}
	}
	mergeParts(res, prs)
	res.Stats.TotalTime = time.Since(t0)
	return res
}

// PartResult is the complete solve outcome of one connected part of an
// input problem: the part's irredundant cover (essential columns
// included; nil when the part is uncoverable), its cost, the float and
// integer-rounded lower bounds, and the part-local Stats.  Parts
// compose: MergeParts folds a slice of these, in canonical part order
// (matrix.Components order: ascending smallest row index), into the
// whole-problem Result.
type PartResult struct {
	Solution []int
	Cost     int
	LB       float64
	CeilLB   int
	Stats    Stats
}

// SolvePart runs the full per-part pipeline on one connected part of
// an input problem.  partIdx is the part's canonical index, which
// seeds the part's restart RNG streams; column ids in part (and in the
// returned Solution) are the input problem's.  The caller owns the
// decomposition contract: part really is one connected component and
// partIdx its canonical position, or the solve is still valid but no
// longer bit-comparable with solving the whole input.  Options.Cache
// and Options.OnImprove are ignored at part level.
func SolvePart(part *matrix.Problem, partIdx int, opt Options, tr *budget.Tracker) *PartResult {
	opt.fill()
	return solvePart(part, partIdx, opt, tr, nil)
}

// SolvePartCompact is SolvePart for parts carved out of a much wider
// column universe: the part is first compacted to its active columns
// (an O(nnz) operation, see matrix.CompactSparse) and the solution is
// mapped back, so per-part costs never scale with the parent's NCol.
func SolvePartCompact(part *matrix.Problem, partIdx int, opt Options, tr *budget.Tracker) *PartResult {
	opt.fill()
	return solvePartCompact(part, partIdx, opt, tr, nil)
}

// solvePartCompact compacts the part's columns, solves, and maps the
// solution (and emitted incumbents) back to input column ids.
func solvePartCompact(part *matrix.Problem, partIdx int, opt Options, tr *budget.Tracker, emit func([]int, int, float64)) *PartResult {
	sub, ids := part.CompactSparse()
	inner := emit
	if emit != nil {
		inner = func(sol []int, cost int, lb float64) {
			emit(mapCols(sol, ids), cost, lb)
		}
	}
	pr := solvePart(sub, partIdx, opt, tr, inner)
	if pr.Solution != nil {
		pr.Solution = mapCols(pr.Solution, ids)
		sort.Ints(pr.Solution)
	}
	return pr
}

// solvePart is the historical single-pipeline solve applied to one
// part: implicit reduction, explicit reduction, block portfolio over
// the cyclic core, per-part irredundant cleanup.  emit (may be nil)
// receives the part's improving incumbents.
func solvePart(part *matrix.Problem, partIdx int, opt Options, tr *budget.Tracker, emit func([]int, int, float64)) *PartResult {
	t0 := time.Now()
	pr := &PartResult{}

	// The reduction fixpoints shard their dominance passes across the
	// same worker budget the restart portfolio uses; the merge is
	// deterministic, so the cyclic core is bit-identical for any count.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// ----- implicit reduction to (near) cyclic core -----
	var essential []int
	work := part
	if !opt.DisableImplicit {
		ir := ImplicitReduceBudgetWorkers(part, opt.MaxR, opt.MaxC, opt.Budget.NodeCap, tr, workers)
		pr.Stats.ZDDNodes = ir.ZDDNodes
		pr.Stats.ZDDCollections = ir.Collections
		pr.Stats.ZDDLiveNodes = ir.LiveNodes
		pr.Stats.ZDDPlainNodes = ir.PlainNodes
		pr.Stats.ImplicitDense = ir.Dense
		if ir.Aborted {
			// Node cap or deadline: degrade to the explicit reduction
			// path on the original matrix (the DisableImplicit route).
			pr.Stats.ImplicitAborted = true
		} else if ir.Infeasible {
			return pr
		} else {
			essential = append(essential, ir.Essential...)
			work = ir.Core
		}
	}

	// ----- explicit reductions -----
	red := matrix.ReduceBudgetWorkers(work, tr, workers)
	if red.Infeasible {
		return pr
	}
	essential = append(essential, red.Essential...)
	core := red.Core
	pr.Stats.CyclicCoreTime = time.Since(t0)
	pr.Stats.CoreRows = len(core.Rows)
	pr.Stats.CoreCols = len(core.ActiveCols())

	essCost := part.CostOf(essential)
	if len(core.Rows) == 0 {
		// The reductions solved the part outright; essentials form a
		// minimum cover of it.
		if essential == nil {
			essential = []int{} // nil would read as "infeasible"
		}
		sort.Ints(essential)
		pr.Solution = essential
		pr.Cost = essCost
		pr.LB = float64(essCost)
		pr.CeilLB = essCost
		return pr
	}

	// ----- solve the cyclic core, one independent block at a time;
	// the blocks and their stochastic restarts run as a deterministic
	// worker-pool portfolio (see portfolio.go) -----
	comps := []matrix.Component{{Problem: core}}
	if !opt.DisablePartition {
		if split := matrix.Components(core); len(split) > 1 {
			comps = split
		}
	}
	var obs *anytime
	if emit != nil {
		obs = newAnytime(essential, essCost, len(comps), emit)
	}
	states := solveBlocks(comps, partIdx, opt, tr, obs)
	best := append([]int(nil), essential...)
	lbSum := float64(essCost)
	ceilSum := essCost
	for _, cs := range states {
		sol, lb, ok := cs.merge(&pr.Stats)
		if !ok {
			return pr // uncoverable block (Solution stays nil)
		}
		best = append(best, sol...)
		lbSum += lb
		ceilSum += int(math.Ceil(lb - 1e-9))
	}
	best = part.Irredundant(best)
	sort.Ints(best)
	pr.Solution = best
	pr.Cost = part.CostOf(best)
	pr.LB = lbSum
	pr.CeilLB = ceilSum
	return pr
}

// MergeParts folds per-part results — in canonical part order — into
// one whole-problem Result: covers concatenate (parts share no
// columns, and each part's cover is already irredundant, so the union
// is too), costs and bounds add, counters fold.  The fold stops at the
// first uncoverable part, mirroring solve's early return, so a
// scheduler that solved later parts anyway merges to the identical
// Result.  Interrupted/StopReason stay for the caller, which owns the
// budget tracker.
func MergeParts(prs []*PartResult) *Result {
	res := &Result{}
	mergeParts(res, prs)
	return res
}

func mergeParts(res *Result, prs []*PartResult) {
	sol := []int{}
	cost, ceilSum := 0, 0
	lbSum := 0.0
	for _, pr := range prs {
		foldStats(&res.Stats, &pr.Stats)
		if pr.Solution == nil {
			res.Solution = nil
			return
		}
		sol = append(sol, pr.Solution...)
		cost += pr.Cost
		lbSum += pr.LB
		ceilSum += pr.CeilLB
	}
	sort.Ints(sol)
	res.Solution = sol
	res.Cost = cost
	res.LB = lbSum
	res.ProvedOptimal = cost <= ceilSum
}

// foldStats accumulates one part's counters into the whole-solve
// Stats: everything sums except ZDDNodes — each part runs its own ZDD
// manager, so the high-water store is the max over parts — and the
// two implicit-phase flags, which latch.
func foldStats(dst, src *Stats) {
	dst.CyclicCoreTime += src.CyclicCoreTime
	dst.CoreRows += src.CoreRows
	dst.CoreCols += src.CoreCols
	if src.ZDDNodes > dst.ZDDNodes {
		dst.ZDDNodes = src.ZDDNodes
	}
	dst.ZDDCollections += src.ZDDCollections
	dst.ZDDLiveNodes += src.ZDDLiveNodes
	dst.ZDDPlainNodes += src.ZDDPlainNodes
	dst.FixSteps += src.FixSteps
	dst.Runs += src.Runs
	dst.SubgradIters += src.SubgradIters
	dst.ImplicitAborted = dst.ImplicitAborted || src.ImplicitAborted
	dst.ImplicitDense = dst.ImplicitDense || src.ImplicitDense
}

// runOnce executes one constructive run of the fixing loop on a copy
// of the saved cyclic core (zBest is the cost to beat), returning the
// completed cover (or nil when every path was abandoned), its cost,
// the best valid core lower bound observed (only the pre-fixing
// subgradient phase produces one), and iteration counts.
func runOnce(core *matrix.Problem, zBest int, opt Options, rng *rand.Rand, window int, tr *budget.Tracker, sc *lagrangian.Scratch) (sol []int, cost int, coreLB float64, sgIters, steps int) {
	var fixed []int
	cur := core.Clone()
	coreLB = math.Inf(-1)
	firstPhase := true

	// Multipliers inherited across fixing phases (§3.2: the previous
	// problem's best λ is the new problem's start).  lambda is aligned
	// with cur.Rows; mu lives in original column-id space.
	var lambda []float64
	var muFull []float64

	for {
		if tr.Interrupted() {
			// Abandon the run; the best candidate seen so far (possibly
			// nil) goes back to solveCore, which keeps its incumbent.
			return sol, cost, coreLB, sgIters, steps
		}
		steps++
		if len(cur.Rows) == 0 {
			full := core.Irredundant(fixed)
			return full, core.CostOf(full), coreLB, sgIters, steps
		}
		compact, ids := cur.Compact()
		var init *lagrangian.Multipliers
		if !opt.DisableWarmStart && lambda != nil && muFull != nil {
			mu := make([]float64, compact.NCol)
			for k, j := range ids {
				mu[k] = muFull[j]
			}
			init = &lagrangian.Multipliers{Lambda: lambda, Mu: mu}
		}
		sg := lagrangian.SubgradientScratch(compact, opt.Params, init, 0, tr, sc)
		sgIters += sg.Iters
		if sg.Best == nil {
			return nil, 0, coreLB, sgIters, steps
		}
		pathLB := float64(core.CostOf(fixed)) + sg.LB
		if firstPhase {
			coreLB = sg.LB // nothing fixed yet: a valid bound on the core
			firstPhase = false
		}
		// A complete candidate through this subproblem's heuristic.
		cand := append(append([]int(nil), fixed...), mapCols(sg.Best, ids)...)
		cand = core.Irredundant(cand)
		if c := core.CostOf(cand); c < zBest {
			zBest = c
			sol, cost = cand, c
		}
		// Abandon the path when it cannot beat the best known cover.
		if math.Ceil(pathLB-1e-9) >= float64(zBest) {
			return sol, cost, coreLB, sgIters, steps
		}
		// Budget for the penalty tests: how much the subproblem may
		// spend while still improving on the best known cover.
		budget := zBest - core.CostOf(fixed)

		// ----- penalty fixing -----
		toFix := map[int]bool{}
		toDrop := map[int]bool{}
		if !opt.DisablePenalties {
			pen := lagrangian.LagrangianPenalties(sg.CTilde, sg.LB, budget)
			prm := opt.Params
			if prm.DualPen == 0 {
				prm.DualPen = lagrangian.DefaultParams().DualPen
			}
			if compact.NCol <= prm.DualPen {
				pen = pen.Merge(lagrangian.DualPenalties(compact, sg.Lambda, budget))
			}
			if pen.NoBetter {
				return sol, cost, coreLB, sgIters, steps
			}
			for _, j := range pen.FixIn {
				toFix[j] = true
			}
			for _, j := range pen.FixOut {
				toDrop[j] = true
			}
		}

		// ----- promising columns (ĉ / μ̂ thresholds) -----
		if !opt.DisablePromising {
			for _, j := range lagrangian.Promising(sg.CTilde, sg.Mu, opt.Params) {
				if !toDrop[j] {
					toFix[j] = true
				}
			}
		}

		// ----- always fix one column: the σ-best (or a random pick
		// among the top `window` candidates on stochastic runs) -----
		if len(toFix) == 0 {
			alpha := opt.Params.Alpha
			if alpha == 0 {
				alpha = lagrangian.DefaultParams().Alpha
			}
			sigma := lagrangian.Sigma(sg.CTilde, sg.Mu, alpha)
			type rated struct {
				j int
				s float64
			}
			var order []rated
			for j := 0; j < compact.NCol; j++ {
				if !toDrop[j] {
					order = append(order, rated{j, sigma[j]})
				}
			}
			if len(order) == 0 {
				return sol, cost, coreLB, sgIters, steps
			}
			sort.Slice(order, func(a, b int) bool { return order[a].s < order[b].s })
			k := 0
			if window > 1 {
				w := window
				if w > len(order) {
					w = len(order)
				}
				k = rng.Intn(w)
			}
			toFix[order[k].j] = true
		}

		// Save the phase's best multipliers for the warm start of the
		// next phase (compact rows match cur.Rows positionally).
		lambda = sg.Lambda
		if muFull == nil {
			muFull = make([]float64, core.NCol)
		}
		for k, j := range ids {
			muFull[j] = sg.Mu[k]
		}

		// ----- apply fixes and re-reduce -----
		next := cur
		rowsKept := make([]int, len(cur.Rows)) // surviving cur-row index per next row
		for i := range rowsKept {
			rowsKept[i] = i
		}
		for j := range toFix {
			fixed = append(fixed, ids[j])
			var kept []int
			next, kept = next.FixColumnTracked(ids[j])
			mapped := make([]int, len(kept))
			for i, k := range kept {
				mapped[i] = rowsKept[k]
			}
			rowsKept = mapped
		}
		for j := range toDrop {
			if !toFix[j] {
				next = next.RemoveColumn(ids[j]) // rows unchanged
			}
		}
		// Per-restart re-reductions stay sequential: the portfolio
		// already spreads the restarts across the worker budget, so
		// sharding these small fixpoints too would only oversubscribe.
		red := matrix.ReduceTracked(next)
		if red.Infeasible {
			// Dropping columns emptied a row: no improving solution
			// completes this path.
			return sol, cost, coreLB, sgIters, steps
		}
		fixed = append(fixed, red.Essential...)
		// Thread λ through to the reduced rows.
		newLambda := make([]float64, len(red.Core.Rows))
		for i, o := range red.RowOrigin {
			newLambda[i] = lambda[rowsKept[o]]
		}
		lambda = newLambda
		cur = red.Core
	}
}

func mapCols(cols, ids []int) []int {
	out := make([]int, len(cols))
	for k, j := range cols {
		out[k] = ids[j]
	}
	return out
}
