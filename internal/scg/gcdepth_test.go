package scg

import (
	"testing"

	"ucp/internal/benchmarks"
	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// cappedDepthInstance is a cyclic covering matrix padded with 100
// superset rows, so the implicit phase has real row dominance to do:
// its finished core (300 rows) is strictly smaller than the input
// (400 rows).  The ZDD fixpoint strands ~15k nodes of dead
// intermediates; the live family stays well under 10k.
func cappedDepthInstance(t *testing.T) *matrix.Problem {
	t.Helper()
	base := benchmarks.CyclicCovering(9, 300, 120, 3)
	rows := append([][]int(nil), base.Rows...)
	for i := 0; i < 100; i++ {
		r := append([]int(nil), base.Rows[i*3%len(base.Rows)]...)
		r = append(r, (r[len(r)-1]+7)%base.NCol)
		rows = append(rows, r)
	}
	p, err := matrix.New(rows, base.NCol, base.Cost)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The node cap under test: far below the ~15k nodes the phase ever
// allocates, comfortably above its live working set.
const cappedDepthNodeCap = 10_000

// TestNodeCapGCReachesSmallerCore is the budget-depth contract of the
// collector: under a node cap that the allocation history blows
// through but the live working set fits, the GC'd implicit phase now
// finishes — producing a core strictly smaller than the input — where
// the pre-GC engine (collections disabled) tripped the cap on dead
// nodes and aborted to the explicit fallback with no core at all.
func TestNodeCapGCReachesSmallerCore(t *testing.T) {
	p := cappedDepthInstance(t)

	ir := ImplicitReduceBudget(p, 1, 1, cappedDepthNodeCap, nil)
	if ir.Aborted {
		t.Fatalf("GC'd phase aborted under cap %d", cappedDepthNodeCap)
	}
	if ir.Collections == 0 {
		t.Fatal("phase finished without collecting: cap not exercised, tighten the test")
	}
	if len(ir.Core.Rows) >= len(p.Rows) {
		t.Fatalf("core not smaller than input: %d vs %d rows", len(ir.Core.Rows), len(p.Rows))
	}

	restore := SetZDDGC(false)
	pre := ImplicitReduceBudget(p, 1, 1, cappedDepthNodeCap, nil)
	restore()
	if !pre.Aborted {
		t.Fatalf("pre-GC engine finished under cap %d: cap too loose to show the depth gain", cappedDepthNodeCap)
	}

	// Sanity: the GC'd core agrees with the uncapped ZDD fixpoint.
	restoreDense := SetDenseImplicit(false)
	full := ImplicitReduce(p, 1, 1)
	restoreDense()
	if full.Aborted || len(full.Core.Rows) != len(ir.Core.Rows) {
		t.Fatalf("capped core has %d rows, uncapped fixpoint %d", len(ir.Core.Rows), len(full.Core.Rows))
	}
}

// TestNodeCapGCSolveEndToEnd: the same depth gain observed through
// Solve — with collections the capped solve keeps the implicit phase
// (no degradation), without them it falls back; both still return the
// same final cover.
func TestNodeCapGCSolveEndToEnd(t *testing.T) {
	p := cappedDepthInstance(t)
	opt := Options{Seed: 3, Budget: budget.Budget{NodeCap: cappedDepthNodeCap}}

	withGC := Solve(p, opt)
	if withGC.Stats.ImplicitAborted {
		t.Fatal("implicit phase degraded despite collections")
	}
	if withGC.Stats.ZDDCollections == 0 {
		t.Fatal("solve finished without collecting: cap not exercised")
	}

	restore := SetZDDGC(false)
	preGC := Solve(p, opt)
	restore()
	if !preGC.Stats.ImplicitAborted {
		t.Fatal("pre-GC solve kept the implicit phase: cap too loose")
	}
	if withGC.Cost != preGC.Cost {
		t.Fatalf("cover cost changed with GC: %d vs %d", withGC.Cost, preGC.Cost)
	}
	if !p.IsCover(withGC.Solution) {
		t.Fatal("GC'd solve returned a non-cover")
	}
}
