package scg

import (
	"math"
	"runtime"
	"sort"
	"time"

	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// Incremental re-solving.
//
// SolveKeep is Solve with the session state kept: the reduction trace,
// the cyclic core's block decomposition and every block's portfolio
// results survive in a SolveState.  ResolveState then solves an edited
// child problem by replaying the parent's reduction (ReplayReduce) and
// reusing, wholesale, every block whose rows the edit left untouched —
// a block's portfolio results are a pure function of (rows content,
// referenced costs, block index, options), so a positional content
// match makes reuse bit-exact, not approximate.
//
// The pipeline is pinned to the explicit-reduction path
// (DisableImplicit): the ZDD phase re-enumerates rows in canonical
// order, which destroys the row correspondence a delta carries.  On
// instances the implicit phase would shortcut anyway (dense-eligible
// cores) the two paths produce identical reductions by contract.

// SolveState is the retained state of a SolveKeep solve, the parent
// side of an incremental re-solve.  It is immutable once returned and
// safe to share: ResolveState only reads it.
type SolveState struct {
	problem   *matrix.Problem
	opt       Options // filled, implicit phase disabled
	red       *matrix.TrackedReduction
	trace     *matrix.ReduceTrace
	essential []int
	comps     []matrix.Component
	states    []*compState
	res       *Result
}

// Result returns the solve's result (the same value SolveKeep
// returned).
func (st *SolveState) Result() *Result { return st.res }

// Problem returns the instance the state solved.
func (st *SolveState) Problem() *matrix.Problem { return st.problem }

// ResolveOptions tunes an incremental re-solve.
type ResolveOptions struct {
	// WarmStart seeds the initial subgradient phase of re-solved
	// blocks with the parent's saved multipliers, mapped through the
	// delta's row correspondence (rows without a parent start at zero).
	// This usually converges in fewer iterations but abandons the
	// bit-identity-with-cold contract: the result is still a verified
	// feasible cover with a valid lower bound, just not necessarily the
	// same one a cold solve finds.
	WarmStart bool
}

// ResolveInfo reports how much of the parent solve a resolve reused.
type ResolveInfo struct {
	// Fallback is set when the parent state was unusable (nil, a
	// different problem than the delta's parent, interrupted, or solved
	// under different result-relevant options) and the child was solved
	// from scratch.
	Fallback bool
	// CompsReused / CompsSolved count the cyclic core's blocks that
	// were carried over versus re-solved.
	CompsReused, CompsSolved int
	// RowsReduced / RowsTotal measure the replayed reduction: input
	// rows it eliminated (by replayed facts, rederived facts or
	// essential coverage) versus total input rows.
	RowsReduced, RowsTotal int
}

// SolveKeep runs the explicit-reduction ZDD_SCG pipeline on p and
// returns the result together with the state a later ResolveState can
// build on.  Options.Cache and Options.OnImprove are ignored (the
// retained state is the memoization here, and the observational hook
// has no defined replay semantics); DisableImplicit is forced on — see
// the package comment above.
func SolveKeep(p *matrix.Problem, opt Options) (*Result, *SolveState) {
	opt.fill()
	opt.DisableImplicit = true
	opt.Cache = nil
	opt.OnImprove = nil
	st := &SolveState{problem: p, opt: opt}
	st.res = solveKept(p, opt, st, nil, nil, false)
	return st.res, st
}

// ResolveState solves the delta's child problem, reusing as much of
// the parent state as the edit allows.  The returned result is
// bit-identical to SolveKeep(d.Child, opt) when ro.WarmStart is off
// (and the parent state was not produced under an exhausted budget);
// the fresh SolveState makes resolves chainable.  A nil or unusable
// parent state degrades to a full solve, reported in ResolveInfo.
func ResolveState(d *matrix.Delta, st *SolveState, opt Options, ro ResolveOptions) (*Result, *SolveState, *ResolveInfo) {
	opt.fill()
	opt.DisableImplicit = true
	opt.Cache = nil
	opt.OnImprove = nil
	info := &ResolveInfo{RowsTotal: len(d.Child.Rows)}
	if st == nil || st.res == nil || st.res.Interrupted || st.red == nil || st.red.Stopped ||
		!sameResultOptions(st.opt, opt) || !matrix.Equal(st.problem, d.Parent) {
		info.Fallback = true
		res, next := SolveKeep(d.Child, opt)
		info.CompsSolved = len(next.comps)
		return res, next, info
	}
	next := &SolveState{problem: d.Child, opt: opt}
	next.res = solveKept(d.Child, opt, next, d, st, ro.WarmStart)
	for _, cs := range next.states {
		reused := false
		for _, ps := range st.states {
			if ps == cs {
				reused = true
				break
			}
		}
		if reused {
			info.CompsReused++
		} else {
			info.CompsSolved++
		}
	}
	if next.red != nil {
		info.RowsReduced = len(d.Child.Rows) - len(next.red.Core.Rows)
	}
	return next.res, next, info
}

// solveKept is solve() for the explicit pipeline with state capture:
// when d and parent are non-nil the reduction replays the parent's
// trace and unchanged blocks are carried over (warm-seeding re-solved
// blocks when warm is set).  st receives the session state as it is
// built.
func solveKept(p *matrix.Problem, opt Options, st *SolveState, d *matrix.Delta, parent *SolveState, warm bool) *Result {
	t0 := time.Now()
	res := &Result{}
	tr := opt.Budget.Tracker()
	defer func() {
		if r := tr.Reason(); r != budget.None {
			res.Interrupted = true
			res.StopReason = r
		}
	}()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// ----- explicit reductions, replayed when a parent trace exists -----
	var red *matrix.TrackedReduction
	var trace *matrix.ReduceTrace
	if d != nil && parent != nil {
		red, trace = matrix.ReplayReduce(d, parent.trace, tr, workers)
	} else {
		red, trace = matrix.ReduceTrackedTrace(p, tr, workers)
	}
	st.red, st.trace = red, trace
	if red.Infeasible {
		res.Stats.TotalTime = time.Since(t0)
		return res
	}
	essential := append([]int(nil), red.Essential...)
	st.essential = essential
	core := red.Core
	res.Stats.CyclicCoreTime = time.Since(t0)
	res.Stats.CoreRows = len(core.Rows)
	res.Stats.CoreCols = len(core.ActiveCols())

	essCost := p.CostOf(essential)
	if len(core.Rows) == 0 {
		if essential == nil {
			essential = []int{} // nil would read as "infeasible"
		}
		sort.Ints(essential)
		res.Solution = essential
		res.Cost = essCost
		res.LB = float64(essCost)
		res.ProvedOptimal = true
		res.Stats.TotalTime = time.Since(t0)
		return res
	}

	// ----- block decomposition, mirroring solve() exactly -----
	comps := []matrix.Component{{Problem: core, RowIdx: coreRowIdx(core)}}
	if !opt.DisablePartition {
		if split := matrix.Components(core); len(split) > 1 {
			comps = split
		}
	}
	st.comps = comps

	// ----- portfolio, reusing blocks the edit left untouched -----
	states := make([]*compState, len(comps))
	var pend []int
	var warmer *warmSource
	for c := range comps {
		if parent != nil && c < len(parent.states) && c < len(parent.comps) &&
			compMatches(parent.comps[c].Problem, comps[c].Problem) {
			// Positional content match: the block's results are a pure
			// function of (rows, referenced costs, index, options), all
			// equal — reuse is bit-exact.
			states[c] = parent.states[c]
			continue
		}
		states[c] = &compState{core: comps[c].Problem, idx: c, capture: true}
		if warm && parent != nil {
			if warmer == nil {
				warmer = newWarmSource(parent, d, red)
			}
			states[c].warm = warmer.forComp(comps[c])
		}
		pend = append(pend, c)
	}
	st.states = states
	runStates(states, pend, opt, tr, nil)

	best := append([]int(nil), essential...)
	lbSum := float64(essCost)
	ceilSum := essCost
	for _, cs := range states {
		sol, lb, ok := cs.merge(&res.Stats)
		if !ok {
			res.Stats.TotalTime = time.Since(t0)
			return res
		}
		best = append(best, sol...)
		lbSum += lb
		ceilSum += int(math.Ceil(lb - 1e-9))
	}
	best = p.Irredundant(best)
	sort.Ints(best)
	res.Solution = best
	res.Cost = p.CostOf(best)
	res.LB = lbSum
	res.ProvedOptimal = res.Cost <= ceilSum
	res.Stats.TotalTime = time.Since(t0)
	return res
}

// coreRowIdx is the identity row index for the single-component case.
func coreRowIdx(core *matrix.Problem) []int {
	idx := make([]int, len(core.Rows))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// compMatches reports whether two blocks are the same subproblem: the
// same rows in the same order and the same cost on every referenced
// column.  Universe sizes may differ (column ids are stable across a
// delta); only referenced columns influence a block's solve.
func compMatches(pp, cp *matrix.Problem) bool {
	if len(pp.Rows) != len(cp.Rows) {
		return false
	}
	for i, r := range pp.Rows {
		cr := cp.Rows[i]
		if len(r) != len(cr) {
			return false
		}
		for k, j := range r {
			if cr[k] != j {
				return false
			}
		}
	}
	for _, r := range pp.Rows {
		for _, j := range r {
			if j >= len(cp.Cost) || pp.Cost[j] != cp.Cost[j] {
				return false
			}
		}
	}
	return true
}

// sameResultOptions reports whether two (filled) option sets produce
// the same results — the fields the cache digest covers, minus Workers
// (bit-identical by contract) and the budget (fallback already rejects
// interrupted parents).
func sameResultOptions(a, b Options) bool {
	return a.NumIter == b.NumIter &&
		a.BestCol == b.BestCol &&
		a.MaxR == b.MaxR &&
		a.MaxC == b.MaxC &&
		a.Params == b.Params &&
		a.Seed == b.Seed &&
		a.DisablePenalties == b.DisablePenalties &&
		a.DisablePromising == b.DisablePromising &&
		a.DisablePartition == b.DisablePartition &&
		a.DisableWarmStart == b.DisableWarmStart
}

// warmSource maps the parent's captured multipliers into a child
// block's row/column spaces through the delta.
type warmSource struct {
	// lambdaByChildCore[i] is the parent's λ for the parent core row
	// child core row i descends from, or 0 when the edit broke the
	// chain; muByCol is indexed by original column id.
	lambdaByChildCore []float64
	muByCol           []float64
}

func newWarmSource(parent *SolveState, d *matrix.Delta, red *matrix.TrackedReduction) *warmSource {
	w := &warmSource{}
	if parent.red == nil {
		return w
	}
	// Parent core row → λ, via the parent's block decomposition.
	lambdaByParentCore := make([]float64, len(parent.red.RowOrigin))
	haveL := make([]bool, len(parent.red.RowOrigin))
	w.muByCol = make([]float64, parent.problem.NCol)
	for c, comp := range parent.comps {
		if c >= len(parent.states) {
			break
		}
		ps := parent.states[c]
		if ps.lambdaSnap == nil {
			continue
		}
		for pos, coreRow := range comp.RowIdx {
			if pos < len(ps.lambdaSnap) && coreRow < len(lambdaByParentCore) {
				lambdaByParentCore[coreRow] = ps.lambdaSnap[pos]
				haveL[coreRow] = true
			}
		}
		for j, mu := range ps.muSnap {
			if mu != 0 && j < len(w.muByCol) {
				w.muByCol[j] = mu
			}
		}
	}
	// Parent input row → parent core row.
	inputToCore := make(map[int]int, len(parent.red.RowOrigin))
	for k, o := range parent.red.RowOrigin {
		inputToCore[o] = k
	}
	// Child core row → child input row → parent input row → λ.
	w.lambdaByChildCore = make([]float64, len(red.RowOrigin))
	for i, childInput := range red.RowOrigin {
		if childInput >= len(d.RowMap) {
			continue
		}
		pi := d.RowMap[childInput]
		if pi < 0 {
			continue
		}
		if k, ok := inputToCore[pi]; ok && haveL[k] {
			w.lambdaByChildCore[i] = lambdaByParentCore[k]
		}
	}
	return w
}

// forComp slices the source down to one child block.
func (w *warmSource) forComp(comp matrix.Component) *warmStart {
	lambda := make([]float64, len(comp.RowIdx))
	any := false
	for pos, coreRow := range comp.RowIdx {
		if coreRow < len(w.lambdaByChildCore) {
			lambda[pos] = w.lambdaByChildCore[coreRow]
			if lambda[pos] != 0 {
				any = true
			}
		}
	}
	if !any {
		return nil // nothing carried over: a cold start is strictly better
	}
	return &warmStart{lambda: lambda, muByCol: w.muByCol}
}
