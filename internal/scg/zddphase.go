package scg

import (
	"sort"

	"ucp/internal/budget"
	"ucp/internal/matrix"
	"ucp/internal/zdd"
)

// ImplicitResult is the outcome of the ZDD reduction phase.
type ImplicitResult struct {
	Core       *matrix.Problem // decoded (near-)cyclic core
	Essential  []int           // column ids fixed by singleton rows
	Infeasible bool
	// Aborted is set when the node cap or the budget cut the phase
	// short; the other fields are then meaningless and the caller must
	// fall back to the explicit reduction path on the original matrix.
	Aborted  bool
	ZDDNodes int // high-water node store of the manager (survives GC)
	Passes   int // reduction sweeps executed
	// LiveNodes and PlainNodes profile the surviving family when the
	// phase ends: reachable chain nodes, and the plain-equivalent node
	// count a chain-free ZDD would need for the same family.  Their
	// ratio is the chain-compression factor (see zdd.LiveProfile).
	LiveNodes  int
	PlainNodes int
	// Collections counts the mark-sweep garbage collections the phase
	// ran to stay under the node cap (see the GC ladder below).
	Collections int
	// Dense is set when the phase ran on the dense bit-matrix engine
	// instead of the ZDD: the instance was small and dense enough that
	// word-parallel explicit reductions beat ZDD operations outright.
	// ZDDNodes and Passes are then zero.
	Dense bool
}

// denseImplicit gates the dense shortcut of ImplicitReduceBudget; the
// tests flip it to exercise the ZDD engine on instances the shortcut
// would otherwise claim.
var denseImplicit = true

// zddGC gates the mark-sweep collections of the implicit phase; the
// tests flip it off to measure how deep a capped phase reaches without
// node-store hygiene.
var zddGC = true

// zddChain selects the chain-reduced node layout for the implicit
// phase's manager; the differential tests flip it to run the same
// phase on the plain reference engine and compare results bit for
// bit (and node budgets not at all: chains are the budget win).
var zddChain = true

// zddGCRetries bounds how many times one phase may answer a node-cap
// panic with a collection and a retry.  Each retry wastes at most one
// partial pass, so the bound keeps the phase terminating even when a
// single operation's working set genuinely exceeds the cap (the sweep
// then frees the same garbage every round without progress).
const zddGCRetries = 8

// validCols reports whether every entry indexes the cost vector.
// matrix.New enforces this, but the implicit phase is also the place
// where hand-built Problems get caught, so the dense shortcut (whose
// kernels index unchecked) verifies before claiming the instance; the
// ZDD path reports bad ids through m.Set.
func validCols(p *matrix.Problem) bool {
	for _, r := range p.Rows {
		for _, j := range r {
			if j < 0 || j >= p.NCol {
				return false
			}
		}
	}
	return true
}

// ImplicitReduce loads the covering matrix into a single ZDD — one set
// of column ids per row — and iterates the implicit reductions of the
// paper's ZDD_Reductions procedure:
//
//   - duplicate rows collapse for free (ZDD canonicity),
//   - row dominance is the Minimal operation (keep inclusion-minimal
//     row sets),
//   - essential columns are the singleton sets; fixing one removes
//     every row that contains it (Subset0),
//   - column dominance removes column k when another column j with
//     cost_j ≤ cost_k covers a superset of k's rows, checked with
//     Subset operations.
//
// The loop stops when a sweep changes nothing or as soon as the
// explicit size falls below maxR rows and maxC columns (the paper's
// MaxR/MaxC early exit), and the surviving family is decoded back to a
// sparse matrix.
func ImplicitReduce(p *matrix.Problem, maxR, maxC int) *ImplicitResult {
	return ImplicitReduceBudget(p, maxR, maxC, 0, nil)
}

// ImplicitReduceBudget is ImplicitReduce under a budget.  nodeCap
// limits the ZDD manager's node store (0 = unlimited) and tr carries
// the deadline; when either cuts the phase short the result comes back
// with Aborted set and the caller degrades to the explicit reduction
// path — the paper's algorithm still terminates with the same final
// cover it would produce with the implicit phase disabled.
//
// The node cap measures the *live* working set, not the allocation
// history: the surviving family is a registered GC root, dead
// intermediate results are reclaimed by mark-sweep collections (both
// proactively near the cap and in response to a cap overrun, which is
// retried after the sweep), and only when the live nodes themselves
// crowd the cap — or the retry budget is spent — does the phase abort.
func ImplicitReduceBudget(p *matrix.Problem, maxR, maxC, nodeCap int, tr *budget.Tracker) (res *ImplicitResult) {
	return ImplicitReduceBudgetWorkers(p, maxR, maxC, nodeCap, tr, 1)
}

// ImplicitReduceBudgetWorkers is ImplicitReduceBudget with the
// explicit dominance passes of the dense shortcut sharded across up to
// workers goroutines; the ZDD engine itself is sequential (the manager
// is single-threaded by design), so workers only matters on instances
// the dense bit-matrix engine claims.
func ImplicitReduceBudgetWorkers(p *matrix.Problem, maxR, maxC, nodeCap int, tr *budget.Tracker, workers int) (res *ImplicitResult) {
	res = &ImplicitResult{}

	// Small dense instances skip the ZDD entirely: the dense bit-matrix
	// engine reaches the same fixpoint (same reductions, same
	// tie-breaks) in word-parallel passes with none of the ZDD-node
	// overhead.  A node cap is an explicit request to budget the ZDD
	// engine — the cap→GC→abort→explicit degradation ladder is part of
	// the budget contract — so the shortcut only applies without one.
	// If the deadline cuts the dense pass short the partially reduced
	// core is still an equivalent problem, so it is returned rather
	// than aborted.
	if denseImplicit && nodeCap == 0 && validCols(p) && matrix.DenseEligible(p) {
		red := matrix.ReduceBudgetWorkers(p, tr, workers)
		res.Dense = true
		res.Infeasible = red.Infeasible
		if !red.Infeasible {
			res.Essential = red.Essential
			res.Core = red.Core
		}
		return res
	}

	m := zdd.New()
	if !zddChain {
		m = zdd.NewPlain()
	}
	m.SetNodeLimit(nodeCap)
	f := zdd.Empty
	// The surviving family is the phase's only long-lived value: it is
	// the single permanent GC root, and every step below re-reads it
	// after a collection (Collect rewrites the root in place).
	m.AddRoot(&f)

	// run executes one step of the phase, answering a node-cap panic
	// with a mark-sweep collection and a retry.  Steps must be
	// restartable: they may read only f (and immutable inputs) at entry
	// and keep every intermediate Node local, so re-running one after a
	// sweep recomputes exactly the work the overrun threw away.  run
	// reports false when the phase must abort: GC disabled, nothing
	// reclaimed, live nodes still crowding the cap, or the retry budget
	// spent.
	retries := zddGCRetries
	run := func(step func()) bool {
		for {
			panicked := func() (bad bool) {
				defer func() {
					if r := recover(); r != nil {
						if r != zdd.ErrNodeLimit {
							panic(r)
						}
						bad = true
					}
				}()
				step()
				return false
			}()
			if !panicked {
				return true
			}
			if !zddGC || retries <= 0 {
				return false
			}
			retries--
			res.Collections++
			if freed := m.Collect(); freed == 0 || m.NodeCount() >= nodeCap {
				// The live family itself fills the cap: collecting
				// again cannot help, degrade to the explicit path.
				return false
			}
		}
	}
	// finish harvests the manager's observability counters into the
	// result; every exit path runs it so ucpsolve -v and ucpd /stats
	// see the phase's node profile even on aborts.
	finish := func() {
		res.ZDDNodes = m.PeakNodeCount()
		res.LiveNodes, res.PlainNodes = m.LiveProfile()
	}
	abort := func() *ImplicitResult {
		res.Aborted = true
		finish()
		return res
	}

	// Load the rows.  The resume index makes the step restartable: a
	// row whose Union overran the cap is redone from its Set.
	var loadErr error
	row := 0
	if !run(func() {
		for ; row < len(p.Rows); row++ {
			set, err := m.Set(p.Rows[row])
			if err != nil {
				// Negative column ids cannot index the cost vector;
				// such a matrix is invalid, which matrix.New already
				// rejects.  Degrade to the explicit path, which
				// reports the problem through its own validation.
				loadErr = err
				return
			}
			f = m.Union(f, set)
		}
	}) || loadErr != nil {
		return abort()
	}

	// essSeen guards the essential list against the duplicates a
	// retried step could otherwise append (the retry re-detects
	// singletons it had already recorded before the overrun).
	var essSeen []bool

	for {
		res.Passes++
		if tr.Interrupted() {
			return abort()
		}
		if m.HasEmptySet(f) {
			res.Infeasible = true
			finish()
			return res
		}
		// Node-store hygiene between passes: when the store nears the
		// cap, sweep the previous passes' dead intermediates before the
		// next one rams the limit.
		if zddGC && nodeCap > 0 && m.NodeCount() >= nodeCap-nodeCap/4 {
			res.Collections++
			m.Collect()
		}
		// start tracks whether the pass changed the family.  It is a
		// root for the duration of the pass so a mid-pass collection
		// renumbers it together with f, keeping the comparison exact
		// (canonicity: equal ids ⇔ equal families).
		start := f
		m.AddRoot(&start)

		// Row dominance.
		ok := run(func() { f = m.Minimal(f) })

		// Essential columns.
		ok = ok && run(func() {
			for {
				singles := m.Singletons(f)
				if singles == zdd.Empty {
					return
				}
				var ess []int
				m.Enumerate(singles, func(set []int) bool {
					ess = append(ess, set[0])
					return true
				})
				for _, j := range ess {
					if essSeen == nil {
						essSeen = make([]bool, p.NCol)
					}
					if !essSeen[j] {
						essSeen[j] = true
						res.Essential = append(res.Essential, j)
					}
					f = m.Subset0(f, j) // rows containing j are covered
				}
			}
		})

		// Column dominance on the surviving support.
		ok = ok && run(func() {
			support := m.Support(f)
			for _, k := range support {
				rowsK := m.Subset1(f, k)
				if rowsK == zdd.Empty {
					continue
				}
				for _, j := range support {
					if j == k || p.Cost[j] > p.Cost[k] {
						continue
					}
					// k is dominated when every row containing k also
					// contains j: no row in Subset1(f,k) avoids j.
					if m.Subset0(rowsK, j) != zdd.Empty {
						continue
					}
					// Tie-break for fully equal columns: keep smaller id.
					if p.Cost[j] == p.Cost[k] && j > k {
						rowsJ := m.Subset1(f, j)
						if m.Subset0(rowsJ, k) == zdd.Empty {
							continue // identical coverage: j will be removed instead
						}
					}
					f = m.Remove(f, k)
					break
				}
			}
		})

		m.RemoveRoot(&start)
		if !ok {
			return abort()
		}
		if f == start {
			break
		}
		rows := m.Count(f)
		cols := len(m.Support(f))
		if rows <= uint64(maxR) && cols <= maxC {
			// Small enough for the explicit phase; reductions continue
			// there.
			break
		}
	}

	if m.HasEmptySet(f) {
		res.Infeasible = true
		finish()
		return res
	}

	// Decode the family back to an explicit sparse matrix.
	core := &matrix.Problem{NCol: p.NCol, Cost: p.Cost}
	m.Enumerate(f, func(set []int) bool {
		core.Rows = append(core.Rows, append([]int(nil), set...))
		return true
	})
	sort.Ints(res.Essential)
	res.Core = core
	finish()
	return res
}
