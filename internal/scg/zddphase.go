package scg

import (
	"sort"

	"ucp/internal/budget"
	"ucp/internal/matrix"
	"ucp/internal/zdd"
)

// ImplicitResult is the outcome of the ZDD reduction phase.
type ImplicitResult struct {
	Core       *matrix.Problem // decoded (near-)cyclic core
	Essential  []int           // column ids fixed by singleton rows
	Infeasible bool
	// Aborted is set when the node cap or the budget cut the phase
	// short; the other fields are then meaningless and the caller must
	// fall back to the explicit reduction path on the original matrix.
	Aborted  bool
	ZDDNodes int // nodes allocated by the manager
	Passes   int // reduction sweeps executed
	// Dense is set when the phase ran on the dense bit-matrix engine
	// instead of the ZDD: the instance was small and dense enough that
	// word-parallel explicit reductions beat ZDD operations outright.
	// ZDDNodes and Passes are then zero.
	Dense bool
}

// denseImplicit gates the dense shortcut of ImplicitReduceBudget; the
// tests flip it to exercise the ZDD engine on instances the shortcut
// would otherwise claim.
var denseImplicit = true

// validCols reports whether every entry indexes the cost vector.
// matrix.New enforces this, but the implicit phase is also the place
// where hand-built Problems get caught, so the dense shortcut (whose
// kernels index unchecked) verifies before claiming the instance; the
// ZDD path reports bad ids through m.Set.
func validCols(p *matrix.Problem) bool {
	for _, r := range p.Rows {
		for _, j := range r {
			if j < 0 || j >= p.NCol {
				return false
			}
		}
	}
	return true
}

// ImplicitReduce loads the covering matrix into a single ZDD — one set
// of column ids per row — and iterates the implicit reductions of the
// paper's ZDD_Reductions procedure:
//
//   - duplicate rows collapse for free (ZDD canonicity),
//   - row dominance is the Minimal operation (keep inclusion-minimal
//     row sets),
//   - essential columns are the singleton sets; fixing one removes
//     every row that contains it (Subset0),
//   - column dominance removes column k when another column j with
//     cost_j ≤ cost_k covers a superset of k's rows, checked with
//     Subset operations.
//
// The loop stops when a sweep changes nothing or as soon as the
// explicit size falls below maxR rows and maxC columns (the paper's
// MaxR/MaxC early exit), and the surviving family is decoded back to a
// sparse matrix.
func ImplicitReduce(p *matrix.Problem, maxR, maxC int) *ImplicitResult {
	return ImplicitReduceBudget(p, maxR, maxC, 0, nil)
}

// ImplicitReduceBudget is ImplicitReduce under a budget.  nodeCap
// limits the ZDD manager's node store (0 = unlimited) and tr carries
// the deadline; when either cuts the phase short the result comes back
// with Aborted set and the caller degrades to the explicit reduction
// path — the paper's algorithm still terminates with the same final
// cover it would produce with the implicit phase disabled.
func ImplicitReduceBudget(p *matrix.Problem, maxR, maxC, nodeCap int, tr *budget.Tracker) (res *ImplicitResult) {
	res = &ImplicitResult{}

	// Small dense instances skip the ZDD entirely: the dense bit-matrix
	// engine reaches the same fixpoint (same reductions, same
	// tie-breaks) in word-parallel passes with none of the ZDD-node
	// overhead.  A node cap is an explicit request to budget the ZDD
	// engine — the cap→abort→explicit degradation ladder is part of the
	// budget contract — so the shortcut only applies without one.  If
	// the deadline cuts the dense pass short the partially reduced core
	// is still an equivalent problem, so it is returned rather than
	// aborted.
	if denseImplicit && nodeCap == 0 && validCols(p) && matrix.DenseEligible(p) {
		red := matrix.ReduceBudget(p, tr)
		res.Dense = true
		res.Infeasible = red.Infeasible
		if !red.Infeasible {
			res.Essential = red.Essential
			res.Core = red.Core
		}
		return res
	}

	m := zdd.New()
	m.SetNodeLimit(nodeCap)
	defer func() {
		if r := recover(); r != nil {
			if r != zdd.ErrNodeLimit {
				panic(r)
			}
			// The family under construction is lost; report abortion so
			// the caller restarts on the explicit path.
			*res = ImplicitResult{Aborted: true, ZDDNodes: m.NodeCount(), Passes: res.Passes}
		}
	}()

	f := zdd.Empty
	for _, r := range p.Rows {
		set, err := m.Set(r)
		if err != nil {
			// Negative column ids cannot index the cost vector; such a
			// matrix is invalid, which matrix.New already rejects.
			// Degrade to the explicit path, which reports the problem
			// through its own validation.
			res.Aborted = true
			res.ZDDNodes = m.NodeCount()
			return res
		}
		f = m.Union(f, set)
	}

	for {
		res.Passes++
		if tr.Interrupted() {
			res.Aborted = true
			res.ZDDNodes = m.NodeCount()
			return res
		}
		if m.HasEmptySet(f) {
			res.Infeasible = true
			res.ZDDNodes = m.NodeCount()
			return res
		}
		start := f

		// Row dominance.
		f = m.Minimal(f)

		// Essential columns.
		for {
			singles := m.Singletons(f)
			if singles == zdd.Empty {
				break
			}
			var ess []int
			m.Enumerate(singles, func(set []int) bool {
				ess = append(ess, set[0])
				return true
			})
			for _, j := range ess {
				res.Essential = append(res.Essential, j)
				f = m.Subset0(f, j) // rows containing j are covered
			}
		}

		// Column dominance on the surviving support.
		support := m.Support(f)
		for _, k := range support {
			rowsK := m.Subset1(f, k)
			if rowsK == zdd.Empty {
				continue
			}
			for _, j := range support {
				if j == k || p.Cost[j] > p.Cost[k] {
					continue
				}
				// k is dominated when every row containing k also
				// contains j: no row in Subset1(f,k) avoids j.
				if m.Subset0(rowsK, j) != zdd.Empty {
					continue
				}
				// Tie-break for fully equal columns: keep smaller id.
				if p.Cost[j] == p.Cost[k] && j > k {
					rowsJ := m.Subset1(f, j)
					if m.Subset0(rowsJ, k) == zdd.Empty {
						continue // identical coverage: j will be removed instead
					}
				}
				f = m.Remove(f, k)
				break
			}
		}

		if f == start {
			break
		}
		rows := m.Count(f)
		cols := len(m.Support(f))
		if rows <= uint64(maxR) && cols <= maxC {
			// Small enough for the explicit phase; reductions continue
			// there.
			break
		}
	}

	if m.HasEmptySet(f) {
		res.Infeasible = true
		res.ZDDNodes = m.NodeCount()
		return res
	}

	// Decode the family back to an explicit sparse matrix.
	core := &matrix.Problem{NCol: p.NCol, Cost: p.Cost}
	m.Enumerate(f, func(set []int) bool {
		core.Rows = append(core.Rows, append([]int(nil), set...))
		return true
	})
	sort.Ints(res.Essential)
	res.Core = core
	res.ZDDNodes = m.NodeCount()
	return res
}
