package scg

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/bnb"
	"ucp/internal/matrix"
)

// editProblem applies a few random edits to p through the public delta
// API: added rows (fresh and near-duplicate), dropped rows, added
// columns, emptied columns.
func editProblem(rng *rand.Rand, p *matrix.Problem) *matrix.Delta {
	d := p.BeginDelta()
	n := 1 + rng.Intn(4)
	for e := 0; e < n; e++ {
		var err error
		switch rng.Intn(5) {
		case 0: // fresh random row
			var row []int
			for t := 0; t <= rng.Intn(4); t++ {
				row = append(row, rng.Intn(d.Child.NCol))
			}
			d, err = d.AddRows([][]int{row})
		case 1: // superset near-duplicate of an existing row
			if len(d.Child.Rows) == 0 {
				continue
			}
			src := d.Child.Rows[rng.Intn(len(d.Child.Rows))]
			row := append(append([]int(nil), src...), rng.Intn(d.Child.NCol))
			d, err = d.AddRows([][]int{row})
		case 2: // drop a row
			if len(d.Child.Rows) <= 2 {
				continue
			}
			d, err = d.RemoveRows([]int{rng.Intn(len(d.Child.Rows))})
		case 3: // fresh column covering a few rows
			var cover []int
			for t := 0; t <= rng.Intn(3); t++ {
				if len(d.Child.Rows) > 0 {
					cover = append(cover, rng.Intn(len(d.Child.Rows)))
				}
			}
			d, err = d.AddCols([]int{1 + rng.Intn(3)}, [][]int{cover})
		case 4: // empty a column, but keep every row coverable
			j := rng.Intn(d.Child.NCol)
			sole := false
			for _, r := range d.Child.Rows {
				if len(r) == 1 && r[0] == j {
					sole = true
					break
				}
			}
			if sole {
				continue
			}
			d, err = d.RemoveCols([]int{j})
		}
		if err != nil {
			panic(err)
		}
	}
	return d
}

// sameSolve asserts two results agree on everything the bit-identity
// contract covers (timing, ZDD and cache counters are exempt).
func sameSolve(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Solution) != len(want.Solution) {
		t.Fatalf("%s: solutions differ: %v vs %v", label, got.Solution, want.Solution)
	}
	for i, j := range want.Solution {
		if got.Solution[i] != j {
			t.Fatalf("%s: solutions differ: %v vs %v", label, got.Solution, want.Solution)
		}
	}
	if got.Cost != want.Cost || got.LB != want.LB || got.ProvedOptimal != want.ProvedOptimal {
		t.Fatalf("%s: cost/LB differ: (%d, %v, %v) vs (%d, %v, %v)",
			label, got.Cost, got.LB, got.ProvedOptimal, want.Cost, want.LB, want.ProvedOptimal)
	}
	gs, ws := got.Stats, want.Stats
	if gs.CoreRows != ws.CoreRows || gs.CoreCols != ws.CoreCols ||
		gs.FixSteps != ws.FixSteps || gs.Runs != ws.Runs || gs.SubgradIters != ws.SubgradIters {
		t.Fatalf("%s: stats differ: core %dx%d steps %d runs %d iters %d vs core %dx%d steps %d runs %d iters %d",
			label, gs.CoreRows, gs.CoreCols, gs.FixSteps, gs.Runs, gs.SubgradIters,
			ws.CoreRows, ws.CoreCols, ws.FixSteps, ws.Runs, ws.SubgradIters)
	}
}

// TestSolveKeepMatchesSolve: keeping state must not perturb the solve —
// SolveKeep equals Solve on the explicit pipeline bit for bit.
func TestSolveKeepMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 14, 12, 3)
		opt := Options{Seed: int64(trial), NumIter: 3, DisableImplicit: true, Workers: 1 + trial%4}
		want := Solve(p, opt)
		got, st := SolveKeep(p, opt)
		sameSolve(t, "keep", got, want)
		if st.Result() != got || !matrix.Equal(st.Problem(), p) {
			t.Fatal("state accessors disagree with the returned result")
		}
	}
}

// TestResolveMatchesCold is the resolve bit-exactness contract: for
// random instances, random edit chains and worker counts 1/2/4/8, the
// incremental result must equal a cold SolveKeep of the child exactly —
// solution, cost, bounds and the deterministic Stats counters.
func TestResolveMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 16, 14, 3)
		workers := []int{1, 2, 4, 8}[trial%4]
		opt := Options{Seed: int64(trial), NumIter: 2, Workers: workers}
		_, st := SolveKeep(p, opt)
		cur := p
		for gen := 0; gen < 3; gen++ {
			d := editProblem(rng, cur)
			want, _ := SolveKeep(d.Child, opt)
			got, next, info := ResolveState(d, st, opt, ResolveOptions{})
			if info.Fallback {
				t.Fatalf("trial %d gen %d: unexpected fallback", trial, gen)
			}
			sameSolve(t, "resolve", got, want)
			st, cur = next, d.Child
		}
	}
}

// TestResolveIdentityReusesAllBlocks: an identity delta must reuse the
// parent's portfolio wholesale.
func TestResolveIdentityReusesAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 16, 14, 3)
		opt := Options{Seed: int64(trial), NumIter: 2}
		want, st := SolveKeep(p, opt)
		got, _, info := ResolveState(p.BeginDelta(), st, opt, ResolveOptions{})
		sameSolve(t, "identity", got, want)
		if info.CompsSolved != 0 {
			t.Fatalf("trial %d: identity delta re-solved %d blocks", trial, info.CompsSolved)
		}
	}
}

// TestResolveWarmStart: warm-started resolves give up bit-identity but
// must still produce a feasible cover and a valid lower bound.
func TestResolveWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 12, 10, 3)
		opt := Options{Seed: int64(trial), NumIter: 2}
		_, st := SolveKeep(p, opt)
		d := editProblem(rng, p)
		got, _, _ := ResolveState(d, st, opt, ResolveOptions{WarmStart: true})
		if got.Solution == nil {
			t.Fatalf("trial %d: warm resolve found no solution", trial)
		}
		if !d.Child.IsCover(got.Solution) {
			t.Fatalf("trial %d: warm resolve returned a non-cover", trial)
		}
		ref := bnb.Solve(d.Child, bnb.Options{})
		if math.Ceil(got.LB-1e-9) > float64(ref.Cost) {
			t.Fatalf("trial %d: warm resolve LB %v exceeds optimum %d", trial, got.LB, ref.Cost)
		}
		if got.Cost < ref.Cost {
			t.Fatalf("trial %d: impossible cost %d < optimum %d", trial, got.Cost, ref.Cost)
		}
	}
}

// TestResolveFallback: a nil, foreign or differently-configured parent
// state degrades to a correct full solve and reports it.
func TestResolveFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	p := randomProblem(rng, 14, 12, 3)
	q := randomProblem(rng, 14, 12, 3)
	opt := Options{Seed: 9, NumIter: 2}
	_, stQ := SolveKeep(q, opt)
	d := editProblem(rng, p)
	want, _ := SolveKeep(d.Child, opt)

	for name, st := range map[string]*SolveState{
		"nil":     nil,
		"foreign": stQ, // parent state of an unrelated problem
	} {
		got, _, info := ResolveState(d, st, opt, ResolveOptions{})
		if !info.Fallback {
			t.Fatalf("%s: fallback not reported", name)
		}
		sameSolve(t, name, got, want)
	}

	// Different result-relevant options: same problem, new seed.
	_, stP := SolveKeep(p, opt)
	opt2 := opt
	opt2.Seed = 10
	want2, _ := SolveKeep(d.Child, opt2)
	got2, _, info := ResolveState(d, stP, opt2, ResolveOptions{})
	if !info.Fallback {
		t.Fatal("options change: fallback not reported")
	}
	sameSolve(t, "options", got2, want2)
}
