package scg

import (
	"math"
	"sync"
	"testing"

	"ucp/internal/benchmarks"
	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// anytimeProblem builds a decomposable instance large enough for the
// portfolio to emit several incumbents.
func anytimeProblem(t *testing.T) *matrix.Problem {
	t.Helper()
	p := benchmarks.CyclicCovering(7, 60, 40, 4)
	if p == nil {
		t.Fatal("generator returned nil")
	}
	return p
}

// TestOnImproveEmitsFeasibleMonotoneIncumbents: every emitted cover
// must be feasible with a matching cost, costs must never increase,
// bounds must never decrease, and the hook must not perturb the solved
// result (bit-identity with a hook-less solve).
func TestOnImproveEmitsFeasibleMonotoneIncumbents(t *testing.T) {
	p := anytimeProblem(t)

	type ev struct {
		sol  []int
		cost int
		lb   float64
	}
	var mu sync.Mutex
	var events []ev
	opt := Options{Seed: 3, NumIter: 6, Workers: 4}
	opt.OnImprove = func(sol []int, cost int, lb float64) {
		mu.Lock()
		events = append(events, ev{sol, cost, lb})
		mu.Unlock()
	}
	res := Solve(p, opt)
	if res.Solution == nil {
		t.Fatal("instance unexpectedly infeasible")
	}
	if len(events) == 0 {
		t.Fatal("no incumbents emitted")
	}
	prevCost := math.MaxInt
	prevLB := math.Inf(-1)
	for i, e := range events {
		if !p.IsCover(e.sol) {
			t.Fatalf("event %d: emitted solution is not a cover", i)
		}
		if got := p.CostOf(e.sol); got != e.cost {
			t.Fatalf("event %d: reported cost %d, actual %d", i, e.cost, got)
		}
		if e.cost > prevCost && e.lb <= prevLB {
			t.Fatalf("event %d: neither cost improved (%d after %d) nor LB (%g after %g)",
				i, e.cost, prevCost, e.lb, prevLB)
		}
		if e.cost < prevCost {
			prevCost = e.cost
		}
		if e.lb > prevLB {
			prevLB = e.lb
		}
		if e.lb > float64(e.cost)+1e-9 {
			t.Fatalf("event %d: certified LB %g exceeds incumbent cost %d", i, e.lb, e.cost)
		}
	}
	// The final solution can only beat the last streamed incumbent (the
	// final pass re-irredundants globally).
	if res.Cost > prevCost {
		t.Fatalf("final cost %d worse than last streamed incumbent %d", res.Cost, prevCost)
	}

	// Observational only: identical result without the hook.
	plain := Solve(p, Options{Seed: 3, NumIter: 6, Workers: 4})
	if plain.Cost != res.Cost || plain.LB != res.LB {
		t.Fatalf("hook changed the result: (%d, %g) vs (%d, %g)", res.Cost, res.LB, plain.Cost, plain.LB)
	}
}

// TestOnImproveUnderBudget: even with an iteration-capped budget the
// emitted incumbents stay feasible and the final result is feasible.
func TestOnImproveUnderBudget(t *testing.T) {
	p := anytimeProblem(t)
	var mu sync.Mutex
	count := 0
	opt := Options{Seed: 5, NumIter: 4, Workers: 2,
		Budget: budget.Budget{IterCap: 40}}
	opt.OnImprove = func(sol []int, cost int, lb float64) {
		mu.Lock()
		defer mu.Unlock()
		count++
		if !p.IsCover(sol) {
			t.Error("budget-capped emission is not a cover")
		}
	}
	res := Solve(p, opt)
	if res.Solution == nil || !p.IsCover(res.Solution) {
		t.Fatal("interrupted solve must still return a feasible cover")
	}
}
