package scg

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ucp/internal/budget"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
)

// The restart portfolio.
//
// The cyclic core splits into independent blocks, and each block runs
// an initial subgradient phase plus NumIter stochastic constructive
// restarts.  All of that work is independent once two sequential
// couplings are cut:
//
//   - every restart of a block races the block's *initial* incumbent
//     (zBest from the first subgradient phase) instead of the evolving
//     one, so a restart's search path never depends on an earlier
//     restart's outcome;
//   - each (block, restart) pair draws from its own splitmix64-derived
//     RNG stream instead of sharing one cursor.
//
// The results are then folded sequentially in (block, restart) order,
// so the solution and the Stats counters are bit-identical for a given
// Seed no matter how many workers ran the jobs.  The sequential
// solver's early exit (stop restarting once the incumbent matches
// ⌈LB⌉) is preserved by tracking the same fold incrementally over the
// completed prefix of restarts: once the exit condition fires at
// restart r, restarts beyond r are skipped (or, if already running,
// executed but never merged).  Interrupted solves still return the
// best incumbent of every job that completed, but which jobs those are
// depends on timing, so the bit-identical contract covers
// uninterrupted solves only.

// compState carries one independent block of the cyclic core through
// the portfolio: the initial subgradient phase, the restart jobs, and
// the deterministic merge.
type compState struct {
	core *matrix.Problem
	idx  int // block index within its part, half of the RNG stream id
	part int // canonical index of the connected input part (see solvePart)

	// capture asks init to snapshot the initial phase's multipliers
	// (for later warm starts across solves); warm, when non-nil, seeds
	// the initial subgradient phase instead of starting cold.  Warm
	// starts trade the bit-identity contract for convergence speed —
	// see ResolveOptions.WarmStart.
	capture bool
	warm    *warmStart

	// Initial phase results.
	ok        bool // block is coverable (always true post-reduction)
	noRuns    bool // initial incumbent already matches ⌈LB⌉
	initIters int
	best      []int
	bestCost  int
	lb        float64

	// Multiplier snapshots of the initial phase, kept when capture is
	// set: lambdaSnap aligns with core.Rows, muSnap is indexed by
	// original column id (length core.NCol).
	lambdaSnap []float64
	muSnap     []float64

	// Restart jobs, indexed run-1.
	runs []runResult

	// Early-exit tracking over the completed prefix of runs.  exitAt
	// (atomic: read lock-free by workers deciding whether to skip a
	// job) is 0 until the sequential fold over runs[0:prefixIdx] meets
	// the exit condition, then the 1-based run index it fired at.
	mu        sync.Mutex
	exitAt    atomic.Int32
	prefixIdx int
	prefBest  int
	prefLB    float64
}

// runResult is one restart's outcome.  ran distinguishes a job that
// executed (even interrupted mid-run) from one never claimed or
// skipped: the merge folds the executed prefix only.
type runResult struct {
	ran   bool
	sol   []int
	cost  int
	lb    float64
	iters int
	steps int
}

// solveBlocks runs the portfolio: one init job per block, then one job
// per (block, restart), all on the shared worker pool.  partIdx is the
// canonical index of the connected input part the blocks belong to
// (zero for the whole problem), folded into every restart's RNG
// stream.  obs (may be nil) collects per-block incumbents for the
// OnImprove hook.
func solveBlocks(comps []matrix.Component, partIdx int, opt Options, tr *budget.Tracker, obs *anytime) []*compState {
	states := make([]*compState, len(comps))
	pend := make([]int, len(comps))
	for c, comp := range comps {
		states[c] = &compState{core: comp.Problem, idx: c, part: partIdx}
		pend[c] = c
	}
	runStates(states, pend, opt, tr, obs)
	return states
}

// runStates executes the portfolio for the listed (pending) blocks:
// one init job each, then one job per restart, all on the shared worker
// pool.  Blocks outside pend are left untouched — the resolve path
// passes states it carried over from a parent solve, already final.
func runStates(states []*compState, pend []int, opt Options, tr *budget.Tracker, obs *anytime) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One scratch pool per solve: each worker goroutine checks out a
	// lagrangian.Scratch for its whole claim loop, so every restart it
	// runs reuses the same buffers.  Scratch contents never reach a
	// Result (see the ownership rules on lagrangian.Scratch), so the
	// pooling cannot perturb the bit-identical merge.
	pool := &sync.Pool{New: newScratch}

	// The init jobs run unconditionally (nil tracker: no claim guard):
	// even with the budget already exhausted the initial subgradient
	// phase must produce its greedy feasible cover — the bottom rung of
	// the degradation ladder.  Each job observes the real tracker
	// internally and returns promptly.
	parallelDo(len(pend), workers, nil, pool, func(k int, sc *lagrangian.Scratch) {
		c := pend[k]
		states[c].init(opt, tr, sc)
		if cs := states[c]; cs.ok {
			obs.update(c, cs.best, cs.bestCost, cs.lb)
		}
	})

	type job struct{ c, r int }
	var jobs []job
	for _, c := range pend {
		if cs := states[c]; cs.ok && !cs.noRuns {
			for r := 1; r <= len(cs.runs); r++ {
				jobs = append(jobs, job{c, r})
			}
		}
	}
	parallelDo(len(jobs), workers, tr, pool, func(k int, sc *lagrangian.Scratch) {
		states[jobs[k].c].runJob(jobs[k].r, opt, tr, sc, obs)
	})
}

// warmStart carries multipliers into a block's initial subgradient
// phase: lambda aligns with the block's core rows, muByCol is indexed
// by original column id (ids at or past its length start at zero).
type warmStart struct {
	lambda  []float64
	muByCol []float64
}

// init runs the block's initial subgradient phase and prepares the
// restart slots.
func (cs *compState) init(opt Options, tr *budget.Tracker, sc *lagrangian.Scratch) {
	compact, ids := cs.core.Compact()
	var start *lagrangian.Multipliers
	if w := cs.warm; w != nil && len(w.lambda) == len(cs.core.Rows) {
		mu := make([]float64, compact.NCol)
		for k, j := range ids {
			if j < len(w.muByCol) {
				mu[k] = w.muByCol[j]
			}
		}
		start = &lagrangian.Multipliers{Lambda: w.lambda, Mu: mu}
	}
	sg := lagrangian.SubgradientScratch(compact, opt.Params, start, 0, tr, sc)
	cs.initIters = sg.Iters
	if cs.capture && len(sg.Lambda) == len(cs.core.Rows) && len(sg.Mu) == compact.NCol {
		cs.lambdaSnap = append([]float64(nil), sg.Lambda...)
		cs.muSnap = make([]float64, cs.core.NCol)
		for k, j := range ids {
			cs.muSnap[j] = sg.Mu[k]
		}
	}
	if sg.Best == nil {
		return // uncoverable block: ok stays false
	}
	cs.ok = true
	lb := sg.LB
	if math.IsInf(lb, -1) {
		// Zero iterations under an exhausted budget certify nothing
		// beyond the trivial bound (costs are non-negative).
		lb = 0
	}
	cs.lb = lb
	cs.best = cs.core.Irredundant(mapCols(sg.Best, ids))
	cs.bestCost = cs.core.CostOf(cs.best)
	if float64(cs.bestCost) <= math.Ceil(lb-1e-9) {
		cs.noRuns = true
		return
	}
	cs.runs = make([]runResult, opt.NumIter)
	cs.prefBest, cs.prefLB = cs.bestCost, cs.lb
}

// runJob executes restart r (1-based) of the block, then advances the
// early-exit fold over the completed prefix.
func (cs *compState) runJob(r int, opt Options, tr *budget.Tracker, sc *lagrangian.Scratch, obs *anytime) {
	if ex := cs.exitAt.Load(); ex > 0 && int(ex) < r {
		return // a completed prefix already met the exit condition
	}
	window := 1 // first restart: strictly best-rated column
	if r > 1 {
		window = opt.BestCol + (r - 2)
	}
	rng := rand.New(rand.NewSource(runSeed(opt.Seed, streamID(cs.part, cs.idx), r)))
	sol, cost, lbRun, iters, steps := runOnce(cs.core, cs.bestCost, opt, rng, window, tr, sc)
	obs.update(cs.idx, sol, cost, lbRun)

	cs.mu.Lock()
	rr := &cs.runs[r-1]
	rr.ran, rr.sol, rr.cost, rr.lb, rr.iters, rr.steps = true, sol, cost, lbRun, iters, steps
	// Advance the same fold merge() will do, over the prefix of runs
	// that have all completed; fire exitAt the moment it would break.
	for cs.exitAt.Load() == 0 && cs.prefixIdx < len(cs.runs) && cs.runs[cs.prefixIdx].ran {
		pr := &cs.runs[cs.prefixIdx]
		cs.prefixIdx++
		if pr.lb > cs.prefLB {
			cs.prefLB = pr.lb
		}
		if pr.sol != nil && pr.cost < cs.prefBest {
			cs.prefBest = pr.cost
		}
		if float64(cs.prefBest) <= math.Ceil(cs.prefLB-1e-9) {
			cs.exitAt.Store(int32(cs.prefixIdx))
		}
	}
	cs.mu.Unlock()
}

// merge folds the block's results in restart order — the authoritative
// sequential pass that defines the portfolio's semantics.  It stops at
// the first restart that never executed (budget interruption or
// early-exit skip) or as soon as the incumbent matches ⌈LB⌉, and only
// folded restarts contribute to the Stats counters.
func (cs *compState) merge(st *Stats) ([]int, float64, bool) {
	st.SubgradIters += cs.initIters
	if !cs.ok {
		return nil, 0, false
	}
	lb, best, bestCost := cs.lb, cs.best, cs.bestCost
	for r := range cs.runs {
		rr := &cs.runs[r]
		if !rr.ran {
			break
		}
		st.Runs++
		st.SubgradIters += rr.iters
		st.FixSteps += rr.steps
		if rr.lb > lb {
			lb = rr.lb
		}
		if rr.sol != nil && rr.cost < bestCost {
			best, bestCost = rr.sol, rr.cost
		}
		if float64(bestCost) <= math.Ceil(lb-1e-9) {
			break
		}
	}
	return best, lb, true
}

// newScratch feeds the per-solve pool.  It is a variable so the
// determinism tests can seed the pool with scratches already dirtied
// on unrelated problems, proving reuse cannot leak into results.
var newScratch = func() any { return &lagrangian.Scratch{} }

// parallelDo runs fn(0..n-1) on up to workers goroutines.  Indices are
// claimed in order from a shared counter, and claiming stops once the
// budget interrupts (tr nil: never) — in-flight jobs finish (they
// observe the interruption themselves), queued ones are abandoned, so
// every block is left with a clean executed prefix.  Each goroutine
// holds one pooled Scratch across its whole claim loop and passes it
// to every job it runs.
func parallelDo(n, workers int, tr *budget.Tracker, pool *sync.Pool, fn func(k int, sc *lagrangian.Scratch)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	work := func() {
		sc := pool.Get().(*lagrangian.Scratch)
		defer pool.Put(sc)
		for {
			k := int(next.Add(1)) - 1
			if k >= n || tr.Interrupted() {
				return
			}
			fn(k, sc)
		}
	}
	if workers <= 1 {
		work()
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// streamID packs a block's (part, block) identity into the 64-bit RNG
// stream selector.  Part 0 reduces to the bare block index, so solves
// of connected problems — every solve before the partition-first
// pipeline existed — keep their historical streams.
func streamID(part, idx int) int64 {
	return int64(part)<<32 | int64(idx)
}

// runSeed derives the RNG seed of restart run on block stream comp
// from the user's Seed with splitmix64 mixing: well-separated streams,
// and a fixed (comp, run) → seed map independent of scheduling.
func runSeed(seed int64, comp int64, run int) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	x = mix64(x + uint64(comp)*0xbf58476d1ce4e5b9)
	x = mix64(x + uint64(run)*0x94d049bb133111eb)
	return int64(x)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
