package scg

import (
	"math"
	"time"

	"ucp/internal/canon"
	"ucp/internal/matrix"
	"ucp/internal/solvecache"
)

// cacheKey builds the cache key for one solve: the problem's canonical
// 128-bit fingerprint (row/column permutations of the same instance
// share it) folded with a digest of every option that can change the
// result.  Workers is deliberately excluded — the portfolio's output
// is bit-identical for any worker count — and so are the budget's
// deadline, cancellation context, search and iteration caps: when one
// of those fires the solve reports Interrupted and is never admitted.
// The ZDD NodeCap does enter the digest, because the implicit phase's
// explicit-fallback degradation is a silent (non-interrupting) result
// change.
//
// The canonical form is returned alongside the key: because the key is
// label-invariant, solutions must cross the cache in canonical column
// indices (see toCanonical / fromCanonical), translated through each
// prober's own column permutation.
func cacheKey(p *matrix.Problem, opt *Options) (solvecache.Key, *canon.Canonical) {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	pp := opt.Params
	d := canon.DigestWords(0x5343_4731, // "SCG1"
		uint64(opt.NumIter), uint64(opt.BestCol),
		uint64(opt.MaxR), uint64(opt.MaxC), uint64(opt.Seed),
		b2u(opt.DisableImplicit), b2u(opt.DisablePenalties),
		b2u(opt.DisablePromising), b2u(opt.DisablePartition),
		b2u(opt.DisableWarmStart), uint64(opt.Budget.NodeCap),
		math.Float64bits(pp.Alpha), math.Float64bits(pp.CHat),
		math.Float64bits(pp.MuHat), math.Float64bits(pp.Delta),
		math.Float64bits(pp.T0), math.Float64bits(pp.TMin),
		uint64(pp.NT), uint64(pp.MaxIters), uint64(pp.DualPen),
		uint64(pp.GreedyEvery))
	cn := canon.Canonicalize(p)
	fp := cn.FP.Derive(d)
	return solvecache.Key{Hi: fp.Hi, Lo: fp.Lo}, cn
}

// copyResult deep-copies a result so cached values never alias a
// caller's slices (defensive on both sides of the cache boundary).
func copyResult(r *Result) *Result {
	cp := *r
	if r.Solution != nil {
		cp.Solution = append([]int(nil), r.Solution...)
	}
	return &cp
}

// solveCached serves one solve through the cross-solve cache with
// singleflight deduplication.  The leader computes and returns its own
// result; a defensive copy — with the solution translated to canonical
// indices, since any isomorphic relabeling probes the same key —
// enters the cache only when the solve ran to completion and took at
// least the cache's admission threshold.  A budget-interrupted leader
// shares nothing: its waiters compute for themselves under their own
// budgets (see solvecache.Do).  Hits translate the stored solution
// into the prober's labels and verify it covers; a verification
// failure (a fingerprint collision, p < 2⁻¹²⁸) falls back to solving.
func solveCached(p *matrix.Problem, opt Options) *Result {
	key, cn := cacheKey(p, &opt)
	// A budget-carrying solve passes its cancellation to the cache so a
	// waiter whose own context dies (client disconnect) stops waiting
	// on the leader and unwinds under its own budget immediately.
	var cancel <-chan struct{}
	if opt.Budget.Context != nil {
		cancel = opt.Budget.Context.Done()
	}
	var mine *Result
	v, _ := opt.Cache.DoChan(key, cancel, func() (any, time.Duration, bool) {
		t0 := time.Now()
		mine = solve(p, opt)
		mine.Stats.CacheMisses = 1
		cp := copyResult(mine)
		canSol, ok := cn.EncodeCols(cp.Solution, p.NCol)
		cp.Solution = canSol
		return cp, time.Since(t0), ok && !mine.Interrupted
	})
	if mine != nil {
		// This caller computed (leader, or waiter behind a failed
		// leader): its result is its own.
		return mine
	}
	res := copyResult(v.(*Result))
	sol, ok := cn.DecodeCols(res.Solution)
	if ok && sol != nil {
		ok = p.IsCover(sol) && p.CostOf(sol) == res.Cost
	}
	if !ok {
		res = solve(p, opt)
		res.Stats.CacheMisses = 1
		return res
	}
	res.Solution = sol
	res.Stats.CacheHits, res.Stats.CacheMisses = 1, 0
	return res
}
