package bnb

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/matrix"
)

func randomProblem(rng *rand.Rand, maxRows, maxCols, maxCost int) *matrix.Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	return matrix.MustNew(rows, nc, cost)
}

func bruteForce(p *matrix.Problem) int {
	active := p.ActiveCols()
	best := math.MaxInt
	for mask := 0; mask < 1<<len(active); mask++ {
		var cols []int
		for b, j := range active {
			if mask>>b&1 == 1 {
				cols = append(cols, j)
			}
		}
		if p.IsCover(cols) {
			if c := p.CostOf(cols); c < best {
				best = c
			}
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		p := randomProblem(rng, 9, 9, 4)
		want := bruteForce(p)
		res := Solve(p, Options{})
		if !res.Optimal {
			t.Fatalf("trial %d: not optimal without node cap", trial)
		}
		if res.Solution == nil {
			t.Fatalf("trial %d: no solution on feasible problem", trial)
		}
		if !p.IsCover(res.Solution) {
			t.Fatalf("trial %d: solution is not a cover", trial)
		}
		if res.Cost != want {
			t.Fatalf("trial %d: cost %d, brute force %d\nrows=%v cost=%v sol=%v",
				trial, res.Cost, want, p.Rows, p.Cost, res.Solution)
		}
	}
}

func TestSolveUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 10, 10, 1)
		want := bruteForce(p)
		res := Solve(p, Options{})
		if res.Cost != want {
			t.Fatalf("trial %d: cost %d, want %d", trial, res.Cost, want)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{}}, NCol: 1, Cost: []int{1}}
	res := Solve(p, Options{})
	if res.Solution != nil {
		t.Fatal("infeasible problem returned a solution")
	}
}

func TestSolveEmpty(t *testing.T) {
	p := matrix.MustNew(nil, 3, nil)
	res := Solve(p, Options{})
	if res.Cost != 0 || !res.Optimal || res.Solution == nil || len(res.Solution) != 0 {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestInitialUBDoesNotBreakOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		want := bruteForce(p)
		res := Solve(p, Options{InitialUB: want}) // tight bound
		if res.Cost != want || res.Solution == nil {
			t.Fatalf("trial %d: with tight UB got %d want %d", trial, res.Cost, want)
		}
		res2 := Solve(p, Options{InitialUB: want + 2})
		if res2.Cost != want {
			t.Fatalf("trial %d: with loose UB got %d want %d", trial, res2.Cost, want)
		}
	}
}

func TestAblationsStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		want := bruteForce(p)
		for _, opt := range []Options{
			{DisableLimitBound: true},
			{DisablePartition: true},
			{DisableLimitBound: true, DisablePartition: true},
		} {
			res := Solve(p, opt)
			if res.Cost != want {
				t.Fatalf("trial %d opts %+v: cost %d want %d", trial, opt, res.Cost, want)
			}
		}
	}
}

func TestMaxNodesCapsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// A biggish random instance to make the cap bite.
	p := randomProblem(rng, 40, 40, 1)
	res := Solve(p, Options{MaxNodes: 3})
	if res.Optimal && res.Nodes > 3 {
		t.Fatal("node cap exceeded while claiming optimality")
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes counted")
	}
}

func TestPartitionedProblem(t *testing.T) {
	// Two disjoint triangles: optimum is 2+2 with unit costs.
	p := matrix.MustNew([][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	}, 6, nil)
	res := Solve(p, Options{})
	if res.Cost != 4 {
		t.Fatalf("cost = %d, want 4", res.Cost)
	}
}

func TestTranspositionDifferential(t *testing.T) {
	// TT on vs off must agree on the optimum cost, optimality, and
	// cover validity on every instance; the TT may return a different
	// (equally optimal) cover, and must never visit more nodes.
	rng := rand.New(rand.NewSource(99))
	hits := int64(0)
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 12, 12, 3)
		if trial%10 == 0 {
			// Mix in repeated-structure instances, where the table
			// actually fires (random soup rarely repeats a core).
			p = isoBlocks(int64(trial), 2+trial%3, 12, 9, 3)
		}
		on := Solve(p, Options{})
		off := Solve(p, Options{DisableTT: true})
		if on.Optimal != off.Optimal || on.Cost != off.Cost {
			t.Fatalf("trial %d: TT changed the optimum: on=(%d,%v) off=(%d,%v)",
				trial, on.Cost, on.Optimal, off.Cost, off.Optimal)
		}
		if (on.Solution == nil) != (off.Solution == nil) {
			t.Fatalf("trial %d: TT changed feasibility", trial)
		}
		if on.Solution != nil {
			if !p.IsCover(on.Solution) || p.CostOf(on.Solution) != on.Cost {
				t.Fatalf("trial %d: TT solution invalid", trial)
			}
		}
		if on.Nodes > off.Nodes {
			t.Fatalf("trial %d: TT increased nodes: %d > %d", trial, on.Nodes, off.Nodes)
		}
		if off.TTHits != 0 || off.TTStores != 0 {
			t.Fatalf("trial %d: DisableTT still counted TT activity", trial)
		}
		hits += on.TTHits
	}
	if hits == 0 {
		t.Fatal("transposition table never hit across 300 random instances")
	}
}

func TestTranspositionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 12, 12, 3)
		a := Solve(p, Options{})
		b := Solve(p, Options{})
		if a.Cost != b.Cost || a.Nodes != b.Nodes || a.TTHits != b.TTHits {
			t.Fatalf("trial %d: repeated solves differ", trial)
		}
		if len(a.Solution) != len(b.Solution) {
			t.Fatalf("trial %d: solutions differ", trial)
		}
		for i := range a.Solution {
			if a.Solution[i] != b.Solution[i] {
				t.Fatalf("trial %d: solutions differ at %d", trial, i)
			}
		}
	}
}
