package bnb

import (
	"math"
	"math/rand"
	"testing"

	"ucp/internal/matrix"
)

func randomProblem(rng *rand.Rand, maxRows, maxCols, maxCost int) *matrix.Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	return matrix.MustNew(rows, nc, cost)
}

func bruteForce(p *matrix.Problem) int {
	active := p.ActiveCols()
	best := math.MaxInt
	for mask := 0; mask < 1<<len(active); mask++ {
		var cols []int
		for b, j := range active {
			if mask>>b&1 == 1 {
				cols = append(cols, j)
			}
		}
		if p.IsCover(cols) {
			if c := p.CostOf(cols); c < best {
				best = c
			}
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		p := randomProblem(rng, 9, 9, 4)
		want := bruteForce(p)
		res := Solve(p, Options{})
		if !res.Optimal {
			t.Fatalf("trial %d: not optimal without node cap", trial)
		}
		if res.Solution == nil {
			t.Fatalf("trial %d: no solution on feasible problem", trial)
		}
		if !p.IsCover(res.Solution) {
			t.Fatalf("trial %d: solution is not a cover", trial)
		}
		if res.Cost != want {
			t.Fatalf("trial %d: cost %d, brute force %d\nrows=%v cost=%v sol=%v",
				trial, res.Cost, want, p.Rows, p.Cost, res.Solution)
		}
	}
}

func TestSolveUniformCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 10, 10, 1)
		want := bruteForce(p)
		res := Solve(p, Options{})
		if res.Cost != want {
			t.Fatalf("trial %d: cost %d, want %d", trial, res.Cost, want)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{}}, NCol: 1, Cost: []int{1}}
	res := Solve(p, Options{})
	if res.Solution != nil {
		t.Fatal("infeasible problem returned a solution")
	}
}

func TestSolveEmpty(t *testing.T) {
	p := matrix.MustNew(nil, 3, nil)
	res := Solve(p, Options{})
	if res.Cost != 0 || !res.Optimal || res.Solution == nil || len(res.Solution) != 0 {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestInitialUBDoesNotBreakOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		want := bruteForce(p)
		res := Solve(p, Options{InitialUB: want}) // tight bound
		if res.Cost != want || res.Solution == nil {
			t.Fatalf("trial %d: with tight UB got %d want %d", trial, res.Cost, want)
		}
		res2 := Solve(p, Options{InitialUB: want + 2})
		if res2.Cost != want {
			t.Fatalf("trial %d: with loose UB got %d want %d", trial, res2.Cost, want)
		}
	}
}

func TestAblationsStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 8, 8, 3)
		want := bruteForce(p)
		for _, opt := range []Options{
			{DisableLimitBound: true},
			{DisablePartition: true},
			{DisableLimitBound: true, DisablePartition: true},
		} {
			res := Solve(p, opt)
			if res.Cost != want {
				t.Fatalf("trial %d opts %+v: cost %d want %d", trial, opt, res.Cost, want)
			}
		}
	}
}

func TestMaxNodesCapsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// A biggish random instance to make the cap bite.
	p := randomProblem(rng, 40, 40, 1)
	res := Solve(p, Options{MaxNodes: 3})
	if res.Optimal && res.Nodes > 3 {
		t.Fatal("node cap exceeded while claiming optimality")
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes counted")
	}
}

func TestPartitionedProblem(t *testing.T) {
	// Two disjoint triangles: optimum is 2+2 with unit costs.
	p := matrix.MustNew([][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
	}, 6, nil)
	res := Solve(p, Options{})
	if res.Cost != 4 {
		t.Fatalf("cost = %d, want 4", res.Cost)
	}
}
