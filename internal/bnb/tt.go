package bnb

import (
	"ucp/internal/canon"
	"ucp/internal/matrix"
)

// transTable is the per-solve transposition table.  The search
// repeatedly regenerates identical sub-cores along different branches
// (the branch columns partition the space, but reductions collapse
// many partial selections onto the same cyclic core) and across the
// independent-block decomposition; the table lets the second visit
// reuse the first visit's conclusion.
//
// Small cores (nnz ≤ ttCanonNNZ) are keyed by their canonical
// fingerprint, so *isomorphic* cores share an entry even when their
// column labels differ — which is exactly what the independent-block
// decomposition produces: label-disjoint but structurally repeated
// blocks.  Their covers are stored in canonical index space and
// translated through each probing core's own column permutation.
// Larger cores fall back to the cheap label-space SubFingerprint
// (sound because every sub-core of one solve shares the root problem's
// column universe); the two keyspaces are salted apart.
//
// Entries store *base-normalised* information: bounds and optima
// relative to the core itself, with the path's essential base cost
// excluded.  That is what makes an entry reusable under any path: a
// node reaching the same core with a different essential base and a
// different residual budget ub compares the stored core-relative
// values against its own core-relative budget.
//
// Two kinds of information are stored:
//
//   - exact: the core's optimum cost and one optimal cover, recorded
//     when a node's branch loop completed (neither interrupted nor
//     node-capped).  A later visit with residual budget ub returns the
//     cover when cost < ub and a sound "no improvement" otherwise.
//
//   - lb: a valid lower bound on the core's optimum — the MIS bound,
//     or the residual budget ub of a completed visit that proved no
//     cover cheaper than ub exists.  A later visit prunes when
//     lb ≥ its own ub.
//
// Nothing is ever stored from a node whose subtree was cut by a
// budget or node cap: an interrupted visit proves nothing.
type transTable struct {
	m       map[canon.Fingerprint]*ttEntry
	cap     int
	lookups int64
	hits    int64
	stores  int64
}

type ttEntry struct {
	nrows int32 // collision guards: the fingerprint is 128-bit, but
	nnz   int32 // these make a false hit need a structural collision too
	lb    int32
	cost  int32
	exact bool
	// canonical marks sol as canonical column indices (translate via
	// the probing core's ColPerm) rather than raw column ids.
	canonical bool
	sol       []int
}

const (
	ttDefaultCap = 1 << 18
	// ttCanonNNZ bounds the cores keyed canonically; larger cores use
	// the label-space SubFingerprint.
	ttCanonNNZ = 4096
	// ttCanonLeafCap bounds the per-node individualisation search:
	// symmetric cores would otherwise make canonicalisation the
	// dominant node cost.  A capped (inexact) form only costs hits.
	ttCanonLeafCap = 24
	// ttSubSalt separates the SubFingerprint keyspace from the
	// canonical one.
	ttSubSalt = 0x5542 // "UB"
)

func newTransTable() *transTable {
	return &transTable{m: make(map[canon.Fingerprint]*ttEntry), cap: ttDefaultCap}
}

// probe looks up the core. The returned entry is read-only for the
// caller; sol must be copied before use (the search appends to and
// sorts its covers in place).
func (t *transTable) probe(fp canon.Fingerprint, core *matrix.Problem) *ttEntry {
	t.lookups++
	e := t.m[fp]
	if e == nil || int(e.nrows) != len(core.Rows) || int(e.nnz) != core.NNZ() {
		return nil
	}
	return e
}

// storeLB records that the core's optimum is at least lb.
func (t *transTable) storeLB(fp canon.Fingerprint, core *matrix.Problem, lb int) {
	e := t.m[fp]
	if e == nil {
		if len(t.m) >= t.cap {
			return // full: stop inserting, existing entries stay valid
		}
		e = &ttEntry{nrows: int32(len(core.Rows)), nnz: int32(core.NNZ()), lb: int32(lb)}
		t.m[fp] = e
		t.stores++
		return
	}
	if int32(lb) > e.lb {
		e.lb = int32(lb)
	}
}

// storeExact records the core's optimum cost and one optimal cover;
// canonical marks sol as canonical-space indices.
func (t *transTable) storeExact(fp canon.Fingerprint, core *matrix.Problem, cost int, sol []int, canonical bool) {
	e := t.m[fp]
	if e == nil {
		if len(t.m) >= t.cap {
			return
		}
		e = &ttEntry{nrows: int32(len(core.Rows)), nnz: int32(core.NNZ())}
		t.m[fp] = e
		t.stores++
	}
	if e.exact {
		return // already exact; the optimum is the optimum
	}
	e.exact = true
	e.canonical = canonical
	e.cost = int32(cost)
	if e.lb < int32(cost) {
		e.lb = int32(cost)
	}
	e.sol = append([]int(nil), sol...)
}
