package bnb

import (
	"math/rand"
	"testing"

	"ucp/internal/matrix"
)

// isoBlocks builds k label-disjoint copies of one random hard block:
// nr rows of degree deg over nc columns with small random costs, the
// copies shifted into fresh column ranges.  The component
// decomposition solves the copies one by one, and from the second copy
// on the canonical transposition key must recognise the isomorphic
// core solved already.
func isoBlocks(seed int64, k, nr, nc, deg int) *matrix.Problem {
	rng := rand.New(rand.NewSource(seed))
	block := make([][]int, nr)
	for i := range block {
		seen := map[int]bool{}
		for len(block[i]) < deg {
			j := rng.Intn(nc)
			if !seen[j] {
				seen[j] = true
				block[i] = append(block[i], j)
			}
		}
	}
	bcost := make([]int, nc)
	for j := range bcost {
		bcost[j] = 1 + rng.Intn(3)
	}
	rows := make([][]int, 0, k*nr)
	cost := make([]int, k*nc)
	for c := 0; c < k; c++ {
		for _, r := range block {
			rr := make([]int, len(r))
			for t, j := range r {
				rr[t] = c*nc + j
			}
			rows = append(rows, rr)
		}
		copy(cost[c*nc:], bcost)
	}
	return matrix.MustNew(rows, k*nc, cost)
}

// TestTranspositionIsomorphicBlocks: on an instance made of k
// isomorphic independent blocks the table must solve the block once
// and reuse it k−1 times, cutting the node count by roughly k.
func TestTranspositionIsomorphicBlocks(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := isoBlocks(seed, 4, 40, 26, 3)
		on := Solve(p, Options{})
		off := Solve(p, Options{DisableTT: true})
		if on.Cost != off.Cost || on.Optimal != off.Optimal {
			t.Fatalf("seed %d: TT changed the result: on=(%d,%v) off=(%d,%v)",
				seed, on.Cost, on.Optimal, off.Cost, off.Optimal)
		}
		if !p.IsCover(on.Solution) || p.CostOf(on.Solution) != on.Cost {
			t.Fatalf("seed %d: TT solution invalid", seed)
		}
		if on.TTHits == 0 {
			t.Fatalf("seed %d: no transposition hits on isomorphic blocks", seed)
		}
		// The first copy costs the full search; the other three must be
		// settled (mostly) by the table.  Half is a loose bar: the real
		// reduction is near 4x, but tiny blocks can collapse early.
		if on.Nodes*2 > off.Nodes {
			t.Fatalf("seed %d: expected <=half the nodes with TT: on=%d off=%d",
				seed, on.Nodes, off.Nodes)
		}
	}
}

// TestTranspositionBudgetedStoresNothingWrong: a node-capped search
// must stay sound — the table never records conclusions from subtrees
// the cap cut short, so resuming with a fresh solve still finds the
// optimum.
func TestTranspositionUnderNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 14, 14, 3)
		full := Solve(p, Options{DisableTT: true})
		capped := Solve(p, Options{MaxNodes: 1 + int64(rng.Intn(20))})
		if capped.Solution != nil && !p.IsCover(capped.Solution) {
			t.Fatalf("trial %d: capped solution not a cover", trial)
		}
		if capped.Optimal && capped.Cost != full.Cost {
			t.Fatalf("trial %d: capped search claimed wrong optimum %d (want %d)",
				trial, capped.Cost, full.Cost)
		}
	}
}
