// Package bnb implements an exact branch-and-bound solver for the
// unate covering problem in the style of the classical mincov /
// Scherzo solvers: reductions to the cyclic core at every node, a
// maximal-independent-set lower bound, the limit bound theorem for
// column pruning, partitioning into independent blocks, and binary
// branching on a column of the most constrained row.
//
// It serves two purposes in this reproduction: it is the exact
// comparator of the paper's Tables 3 and 4, and it is the optimality
// oracle used by the test-suite to validate the heuristic.
package bnb

import (
	"sort"
	"time"

	"ucp/internal/bitmat"
	"ucp/internal/budget"
	"ucp/internal/canon"
	"ucp/internal/greedy"
	"ucp/internal/matrix"
	"ucp/internal/solvecache"
)

// Options controls the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes; 0 means
	// unlimited.  When the cap is hit the result is the best solution
	// found so far with Optimal unset.  It is merged with
	// Budget.SearchCap (the tighter cap wins).
	MaxNodes int64
	// InitialUB, when positive, is the cost of a known cover: the
	// search only looks for strictly better solutions but will return
	// a solution of exactly this cost if it proves nothing better
	// exists and finds one matching it.
	InitialUB int
	// DisableLimitBound turns off the Theorem 2 column pruning (for
	// the ablation benchmarks).
	DisableLimitBound bool
	// DisablePartition turns off independent-block decomposition.
	DisablePartition bool
	// DisableTT turns off the per-solve transposition table (for the
	// ablation benchmarks; the table is sound and on by default).
	DisableTT bool
	// Budget bounds the search (deadline, node cap).  When it runs out
	// the best feasible cover found so far is returned with Interrupted
	// set; if the search was cut before finding any cover, a greedy
	// cover stands in so the result is still feasible.
	Budget budget.Budget
	// Cache, when non-nil, memoizes whole exact solves across calls,
	// keyed by the problem's canonical fingerprint folded with the
	// result-relevant options (InitialUB and the Disable knobs; node
	// caps only matter when they fire, and interrupted solves are not
	// cached).  Solution comes back as a defensive copy; CacheHit on
	// the result marks a served lookup.
	Cache *solvecache.Cache
}

// Result of an exact solve.
type Result struct {
	Solution []int // a minimum cover (column ids of the input problem)
	Cost     int
	Optimal  bool  // true when the search completed
	Nodes    int64 // branch-and-bound nodes visited
	// LB is a valid lower bound on the optimum: Cost when Optimal,
	// otherwise the root relaxation bound.
	LB int
	// Interrupted reports that the budget (or MaxNodes) stopped the
	// search early; Solution is then the best feasible cover found.
	Interrupted bool
	// StopReason says which budget limit ran out.
	StopReason budget.Reason
	// TTHits counts transposition-table probes that cut a subtree
	// (exact reuse or lower-bound prune); TTStores counts entries
	// recorded. Both are 0 with DisableTT.
	TTHits   int64
	TTStores int64
	// CacheHit reports that this result was served from Options.Cache
	// (or an in-flight identical solve) instead of being computed.
	CacheHit bool
}

type solver struct {
	opt      Options
	tr       *budget.Tracker
	tt       *transTable
	nodes    int64
	exceeded bool
}

// Solve finds a minimum-cost cover of p, consulting Options.Cache when
// one is set.  The returned solution is nil only if the problem is
// infeasible (some row cannot be covered).
func Solve(p *matrix.Problem, opt Options) *Result {
	if opt.Cache != nil {
		return solveCached(p, opt)
	}
	return solve(p, opt)
}

// solveCached serves one exact solve through the cross-solve cache
// with singleflight deduplication; only completed (non-interrupted)
// solves are shared or admitted, and solutions cross the cache
// boundary as defensive copies.  The key is the canonical (label-
// invariant) fingerprint, so solutions are stored in canonical column
// indices and translated into each prober's labels on a hit, verified
// against the prober's matrix; a verification failure (a fingerprint
// collision, p < 2⁻¹²⁸) falls back to solving.
func solveCached(p *matrix.Problem, opt Options) *Result {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	d := canon.DigestWords(0x424e_4231, // "BNB1"
		uint64(opt.InitialUB), b2u(opt.DisableLimitBound),
		b2u(opt.DisablePartition), b2u(opt.DisableTT))
	cn := canon.Canonicalize(p)
	fp := cn.FP.Derive(d)
	key := solvecache.Key{Hi: fp.Hi, Lo: fp.Lo}
	// Waiter cancellation: a dead caller context stops the wait on the
	// leader and unwinds under its own budget (see solvecache.DoChan).
	var cancel <-chan struct{}
	if opt.Budget.Context != nil {
		cancel = opt.Budget.Context.Done()
	}
	var mine *Result
	v, _ := opt.Cache.DoChan(key, cancel, func() (any, time.Duration, bool) {
		t0 := time.Now()
		mine = solve(p, opt)
		cp := copyResult(mine)
		canSol, ok := cn.EncodeCols(cp.Solution, p.NCol)
		cp.Solution = canSol
		return cp, time.Since(t0), ok && !mine.Interrupted
	})
	if mine != nil {
		return mine
	}
	res := copyResult(v.(*Result))
	sol, ok := cn.DecodeCols(res.Solution)
	if ok && sol != nil {
		ok = p.IsCover(sol) && p.CostOf(sol) == res.Cost
	}
	if !ok {
		return solve(p, opt)
	}
	res.Solution = sol
	res.CacheHit = true
	return res
}

// copyResult deep-copies a result so cached values never alias a
// caller's slices.
func copyResult(r *Result) *Result {
	cp := *r
	if r.Solution != nil {
		cp.Solution = append([]int(nil), r.Solution...)
	}
	return &cp
}

// solve runs the search without the cross-solve cache.
func solve(p *matrix.Problem, opt Options) *Result {
	b := opt.Budget
	if opt.MaxNodes > 0 && (b.SearchCap == 0 || opt.MaxNodes < b.SearchCap) {
		b.SearchCap = opt.MaxNodes
	}
	s := &solver{opt: opt, tr: b.Tracker()}
	if !opt.DisableTT {
		s.tt = newTransTable()
	}
	ub := 1 << 30
	if opt.InitialUB > 0 {
		ub = opt.InitialUB + 1 // allow matching the known bound
	}
	rootLB, _ := matrix.MISBound(p)
	sol := s.search(p, ub)
	res := &Result{Nodes: s.nodes, LB: rootLB}
	if s.tt != nil {
		res.TTHits = s.tt.hits
		res.TTStores = s.tt.stores
	}
	if r := s.tr.Reason(); r != budget.None {
		res.Interrupted = true
		res.StopReason = r
	}
	if sol == nil && s.exceeded {
		// The cap cut the search before any cover materialised; a
		// greedy cover keeps the best-so-far contract (feasible
		// whenever the problem is).
		if g, err := greedy.Solve(p); err == nil {
			sol = g
		}
	}
	if sol == nil {
		return res
	}
	res.Solution = sol
	sort.Ints(res.Solution)
	res.Cost = p.CostOf(sol)
	res.Optimal = !s.exceeded
	if res.Optimal {
		res.LB = res.Cost
	}
	verifyCover(p, res.Solution)
	return res
}

// verifyCover asserts — on instances small and dense enough for the
// word-parallel kernel — that the incumbent really covers every row
// before it leaves the solver.  bnb is the optimality oracle of the
// whole test-suite, so a corrupted incumbent must fail loudly here
// rather than silently certify wrong "optima" downstream.  One
// bit-matrix build and an AND-sweep per solve: negligible next to the
// search itself.
func verifyCover(p *matrix.Problem, sol []int) {
	if !matrix.DenseEligible(p) {
		return
	}
	bm := bitmat.Build(p.Rows, p.NCol)
	sel := bitmat.NewVec(p.NCol)
	for _, j := range sol {
		sel.Set(j)
	}
	if !bm.IsCover(sel) {
		panic("bnb: incumbent solution is not a cover")
	}
}

// search returns a cover of p with cost < ub, or nil when none exists
// (or the node budget ran out).  It reduces p to its cyclic core and
// delegates the core to searchCore; every bound below the reduction is
// therefore base-normalised (relative to the core, with the essential
// cost already peeled off), which is what the transposition table
// stores and reuses.
func (s *solver) search(p *matrix.Problem, ub int) []int {
	s.nodes++
	if s.tr.AddSearchNodes(1) {
		s.exceeded = true
		return nil
	}
	red := matrix.Reduce(p)
	if red.Infeasible {
		return nil
	}
	base := p.CostOf(red.Essential)
	if base >= ub {
		return nil
	}
	core := red.Core
	if len(core.Rows) == 0 {
		if red.Essential == nil {
			return []int{} // solved with no columns; nil means failure
		}
		return red.Essential
	}
	got := s.searchCore(core, ub-base)
	if got == nil {
		return nil
	}
	return append(append([]int(nil), red.Essential...), got...)
}

// searchCore returns a cover of the cyclic core with cost < ub, or nil
// when none exists (or the node budget ran out).  ub is the residual
// budget after the caller's essential base cost.
func (s *solver) searchCore(core *matrix.Problem, ub int) []int {
	// Transposition probe: a previous complete visit to this same core
	// — reached along another branch, through a component split, or as
	// an isomorphic copy under different column labels — settles this
	// node without descending.
	var fp canon.Fingerprint
	var cn *canon.Canonical
	if s.tt != nil {
		cn, fp = ttKey(core)
		if e := s.tt.probe(fp, core); e != nil {
			if e.exact {
				if int(e.cost) >= ub {
					s.tt.hits++
					return nil
				}
				if sol, ok := ttSolution(e, cn, core); ok {
					s.tt.hits++
					return sol
				}
				// Translation failed (a fingerprint collision): fall
				// through and search; the entry is left alone.
			} else if int(e.lb) >= ub {
				s.tt.hits++
				return nil
			}
		}
	}

	// Partition into independent blocks and solve them separately.
	if !s.opt.DisablePartition {
		comps := matrix.Components(core)
		if len(comps) > 1 {
			best := s.searchComponents(comps, ub)
			s.ttRecord(fp, cn, core, ub, best)
			return best
		}
	}

	lb, misRows := matrix.MISBound(core)
	if lb >= ub {
		if s.tt != nil && !s.exceeded && !s.tr.Interrupted() {
			s.tt.storeLB(fp, core, lb) // the MIS bound holds under any budget
		}
		return nil
	}

	// Limit bound theorem: columns covering no MIS row whose cost
	// closes the gap can never appear in an improving solution.
	work := core
	if !s.opt.DisableLimitBound {
		for _, j := range lagRemovable(core, misRows, lb, ub) {
			work = work.RemoveColumn(j)
		}
	}

	// Branch on a column of the most constrained row: the shortest
	// row must be covered by one of its columns, so try them from the
	// most promising (covers many rows, costs little) down.
	bi := -1
	for i, r := range work.Rows {
		if bi < 0 || len(r) < len(work.Rows[bi]) {
			bi = i
		}
	}
	if len(work.Rows[bi]) == 0 {
		// Limit bound emptied a row: no improving solution under this
		// budget.  (Not a budget-free fact, so record only lb = ub.)
		s.ttRecord(fp, cn, core, ub, nil)
		return nil
	}
	colRows := work.ColumnRows()
	branch := append([]int(nil), work.Rows[bi]...)
	sort.Slice(branch, func(a, b int) bool {
		ja, jb := branch[a], branch[b]
		ca := float64(work.Cost[ja]) / float64(len(colRows[ja]))
		cb := float64(work.Cost[jb]) / float64(len(colRows[jb]))
		if ca != cb {
			return ca < cb
		}
		return ja < jb
	})

	ub0 := ub
	var best []int
	cur := work
	for _, j := range branch {
		// The k-th branch includes column j and assumes the first k−1
		// columns of the branching row are excluded (RemoveColumn
		// below enforces that as the loop advances), so the branches
		// partition the solution space.
		sub := cur.FixColumn(j)
		if got := s.search(sub, ub-work.Cost[j]); got != nil {
			cand := append([]int{j}, got...)
			cost := core.CostOf(cand)
			if cost < ub {
				ub = cost
				best = cand
			}
		}
		if s.exceeded {
			break
		}
		cur = cur.RemoveColumn(j)
	}
	s.ttRecord(fp, cn, core, ub0, best)
	return best
}

// ttKey picks the transposition key for a core: the canonical
// fingerprint when the core is small enough to canonicalise at node
// cost (isomorphic cores then share), the label-space SubFingerprint
// otherwise.  The two keyspaces are salted apart, and a core always
// lands in the same one (the choice depends only on its size).
func ttKey(core *matrix.Problem) (*canon.Canonical, canon.Fingerprint) {
	if core.NNZ() <= ttCanonNNZ {
		cn := canon.CanonicalizeCapped(core, ttCanonLeafCap)
		return cn, cn.FP
	}
	return nil, canon.SubFingerprint(core).Derive(ttSubSalt)
}

// ttSolution materialises a stored optimal cover for the probing core:
// canonical-space entries translate through the core's own column
// permutation and are verified against the core (a failed verification
// means a fingerprint collision and is treated as a miss); label-space
// entries copy directly.
func ttSolution(e *ttEntry, cn *canon.Canonical, core *matrix.Problem) ([]int, bool) {
	if !e.canonical {
		return append([]int(nil), e.sol...), true
	}
	if cn == nil {
		return nil, false
	}
	sol := make([]int, len(e.sol))
	for i, k := range e.sol {
		if k < 0 || k >= len(cn.ColPerm) {
			return nil, false
		}
		sol[i] = cn.ColPerm[k]
	}
	if !core.IsCover(sol) || core.CostOf(sol) != int(e.cost) {
		return nil, false
	}
	return sol, true
}

// ttRecord stores what a completed visit to core proved: with a cover,
// the core's exact optimum (the branch covers partition the space, so
// a finished loop that found a cover found the optimum); without one,
// that no cover cheaper than the entry budget ub exists.  An
// interrupted or node-capped visit proves neither and stores nothing.
func (s *solver) ttRecord(fp canon.Fingerprint, cn *canon.Canonical, core *matrix.Problem, ub int, best []int) {
	if s.tt == nil || s.exceeded || s.tr.Interrupted() {
		return
	}
	if best == nil {
		s.tt.storeLB(fp, core, ub)
		return
	}
	cost := core.CostOf(best)
	if cn == nil {
		s.tt.storeExact(fp, core, cost, best, false)
		return
	}
	inv := cn.InverseCol(core.NCol)
	csol := make([]int, len(best))
	for i, j := range best {
		k := inv[j]
		if k < 0 {
			return // cover uses a column outside the active set: don't store
		}
		csol[i] = int(k)
	}
	s.tt.storeExact(fp, core, cost, csol, true)
}

// searchComponents solves the core's independent blocks one by one,
// sharing the residual budget: each block gets what remains of ub
// after the other blocks' lower bounds and the blocks already solved.
func (s *solver) searchComponents(comps []matrix.Component, ub int) []int {
	lbs := make([]int, len(comps))
	lbSum := 0
	for k, c := range comps {
		lbs[k], _ = matrix.MISBound(c.Problem)
		lbSum += lbs[k]
	}
	if lbSum >= ub {
		return nil
	}
	sol := []int{}
	solved := 0
	for k, c := range comps {
		budget := ub - (lbSum - lbs[k]) - solved
		got := s.search(c.Problem, budget)
		if got == nil {
			return nil
		}
		cost := c.Problem.CostOf(got)
		solved += cost
		lbSum -= lbs[k]
		sol = append(sol, got...)
	}
	if solved >= ub {
		return nil
	}
	return sol
}

// lagRemovable lists the columns removable by the limit bound theorem
// given the MIS bound lb and budget (ub − path cost).
func lagRemovable(p *matrix.Problem, misRows []int, lb, budget int) []int {
	coversMIS := make([]bool, p.NCol)
	for _, i := range misRows {
		for _, j := range p.Rows[i] {
			coversMIS[j] = true
		}
	}
	var out []int
	for _, j := range p.ActiveCols() {
		if !coversMIS[j] && lb+p.Cost[j] >= budget {
			out = append(out, j)
		}
	}
	return out
}
