// Package bnb implements an exact branch-and-bound solver for the
// unate covering problem in the style of the classical mincov /
// Scherzo solvers: reductions to the cyclic core at every node, a
// maximal-independent-set lower bound, the limit bound theorem for
// column pruning, partitioning into independent blocks, and binary
// branching on a column of the most constrained row.
//
// It serves two purposes in this reproduction: it is the exact
// comparator of the paper's Tables 3 and 4, and it is the optimality
// oracle used by the test-suite to validate the heuristic.
package bnb

import (
	"sort"

	"ucp/internal/bitmat"
	"ucp/internal/budget"
	"ucp/internal/greedy"
	"ucp/internal/matrix"
)

// Options controls the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes; 0 means
	// unlimited.  When the cap is hit the result is the best solution
	// found so far with Optimal unset.  It is merged with
	// Budget.SearchCap (the tighter cap wins).
	MaxNodes int64
	// InitialUB, when positive, is the cost of a known cover: the
	// search only looks for strictly better solutions but will return
	// a solution of exactly this cost if it proves nothing better
	// exists and finds one matching it.
	InitialUB int
	// DisableLimitBound turns off the Theorem 2 column pruning (for
	// the ablation benchmarks).
	DisableLimitBound bool
	// DisablePartition turns off independent-block decomposition.
	DisablePartition bool
	// Budget bounds the search (deadline, node cap).  When it runs out
	// the best feasible cover found so far is returned with Interrupted
	// set; if the search was cut before finding any cover, a greedy
	// cover stands in so the result is still feasible.
	Budget budget.Budget
}

// Result of an exact solve.
type Result struct {
	Solution []int // a minimum cover (column ids of the input problem)
	Cost     int
	Optimal  bool  // true when the search completed
	Nodes    int64 // branch-and-bound nodes visited
	// LB is a valid lower bound on the optimum: Cost when Optimal,
	// otherwise the root relaxation bound.
	LB int
	// Interrupted reports that the budget (or MaxNodes) stopped the
	// search early; Solution is then the best feasible cover found.
	Interrupted bool
	// StopReason says which budget limit ran out.
	StopReason budget.Reason
}

type solver struct {
	opt      Options
	tr       *budget.Tracker
	nodes    int64
	exceeded bool
}

// Solve finds a minimum-cost cover of p.  The returned solution is nil
// only if the problem is infeasible (some row cannot be covered).
func Solve(p *matrix.Problem, opt Options) *Result {
	b := opt.Budget
	if opt.MaxNodes > 0 && (b.SearchCap == 0 || opt.MaxNodes < b.SearchCap) {
		b.SearchCap = opt.MaxNodes
	}
	s := &solver{opt: opt, tr: b.Tracker()}
	ub := 1 << 30
	if opt.InitialUB > 0 {
		ub = opt.InitialUB + 1 // allow matching the known bound
	}
	rootLB, _ := matrix.MISBound(p)
	sol := s.search(p, ub)
	res := &Result{Nodes: s.nodes, LB: rootLB}
	if r := s.tr.Reason(); r != budget.None {
		res.Interrupted = true
		res.StopReason = r
	}
	if sol == nil && s.exceeded {
		// The cap cut the search before any cover materialised; a
		// greedy cover keeps the best-so-far contract (feasible
		// whenever the problem is).
		if g, err := greedy.Solve(p); err == nil {
			sol = g
		}
	}
	if sol == nil {
		return res
	}
	res.Solution = sol
	sort.Ints(res.Solution)
	res.Cost = p.CostOf(sol)
	res.Optimal = !s.exceeded
	if res.Optimal {
		res.LB = res.Cost
	}
	verifyCover(p, res.Solution)
	return res
}

// verifyCover asserts — on instances small and dense enough for the
// word-parallel kernel — that the incumbent really covers every row
// before it leaves the solver.  bnb is the optimality oracle of the
// whole test-suite, so a corrupted incumbent must fail loudly here
// rather than silently certify wrong "optima" downstream.  One
// bit-matrix build and an AND-sweep per solve: negligible next to the
// search itself.
func verifyCover(p *matrix.Problem, sol []int) {
	if !matrix.DenseEligible(p) {
		return
	}
	bm := bitmat.Build(p.Rows, p.NCol)
	sel := bitmat.NewVec(p.NCol)
	for _, j := range sol {
		sel.Set(j)
	}
	if !bm.IsCover(sel) {
		panic("bnb: incumbent solution is not a cover")
	}
}

// search returns a cover of p with cost < ub, or nil when none exists
// (or the node budget ran out).
func (s *solver) search(p *matrix.Problem, ub int) []int {
	s.nodes++
	if s.tr.AddSearchNodes(1) {
		s.exceeded = true
		return nil
	}
	red := matrix.Reduce(p)
	if red.Infeasible {
		return nil
	}
	base := p.CostOf(red.Essential)
	if base >= ub {
		return nil
	}
	core := red.Core
	if len(core.Rows) == 0 {
		if red.Essential == nil {
			return []int{} // solved with no columns; nil means failure
		}
		return red.Essential
	}

	// Partition into independent blocks and solve them separately.
	if !s.opt.DisablePartition {
		comps := matrix.Components(core)
		if len(comps) > 1 {
			return s.searchComponents(red.Essential, base, comps, ub)
		}
	}

	lb, misRows := matrix.MISBound(core)
	if base+lb >= ub {
		return nil
	}

	// Limit bound theorem: columns covering no MIS row whose cost
	// closes the gap can never appear in an improving solution.
	work := core
	if !s.opt.DisableLimitBound {
		for _, j := range lagRemovable(core, misRows, lb, ub-base) {
			work = work.RemoveColumn(j)
		}
	}

	// Branch on a column of the most constrained row: the shortest
	// row must be covered by one of its columns, so try them from the
	// most promising (covers many rows, costs little) down.
	bi := -1
	for i, r := range work.Rows {
		if bi < 0 || len(r) < len(work.Rows[bi]) {
			bi = i
		}
	}
	if len(work.Rows[bi]) == 0 {
		return nil // limit bound emptied a row: no improving solution here
	}
	colRows := work.ColumnRows()
	branch := append([]int(nil), work.Rows[bi]...)
	sort.Slice(branch, func(a, b int) bool {
		ja, jb := branch[a], branch[b]
		ca := float64(work.Cost[ja]) / float64(len(colRows[ja]))
		cb := float64(work.Cost[jb]) / float64(len(colRows[jb]))
		if ca != cb {
			return ca < cb
		}
		return ja < jb
	})

	var best []int
	cur := work
	for _, j := range branch {
		// The k-th branch includes column j and assumes the first k−1
		// columns of the branching row are excluded (RemoveColumn
		// below enforces that as the loop advances), so the branches
		// partition the solution space.
		sub := cur.FixColumn(j)
		if got := s.search(sub, ub-base-work.Cost[j]); got != nil {
			cand := append(append([]int(nil), red.Essential...), j)
			cand = append(cand, got...)
			cost := p.CostOf(cand)
			if cost < ub {
				ub = cost
				best = cand
			}
		}
		if s.exceeded {
			break
		}
		cur = cur.RemoveColumn(j)
	}
	return best
}

// searchComponents solves the independent blocks one by one, sharing
// the upper bound: each block's budget is what remains of ub after the
// path cost and the other blocks' lower bounds.
func (s *solver) searchComponents(essential []int, base int, comps []matrix.Component, ub int) []int {
	lbs := make([]int, len(comps))
	lbSum := 0
	for k, c := range comps {
		lbs[k], _ = matrix.MISBound(c.Problem)
		lbSum += lbs[k]
	}
	if base+lbSum >= ub {
		return nil
	}
	sol := append([]int(nil), essential...)
	solved := 0
	for k, c := range comps {
		budget := ub - base - (lbSum - lbs[k]) - solved
		got := s.search(c.Problem, budget)
		if got == nil {
			return nil
		}
		cost := c.Problem.CostOf(got)
		solved += cost
		lbSum -= lbs[k]
		sol = append(sol, got...)
	}
	if base+solved >= ub {
		return nil
	}
	return sol
}

// lagRemovable lists the columns removable by the limit bound theorem
// given the MIS bound lb and budget (ub − path cost).
func lagRemovable(p *matrix.Problem, misRows []int, lb, budget int) []int {
	coversMIS := make([]bool, p.NCol)
	for _, i := range misRows {
		for _, j := range p.Rows[i] {
			coversMIS[j] = true
		}
	}
	var out []int
	for _, j := range p.ActiveCols() {
		if !coversMIS[j] && lb+p.Cost[j] >= budget {
			out = append(out, j)
		}
	}
	return out
}
