package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// truth evaluates f under the assignment mask (bit v = variable v).
func truth(m *Manager, f Node, mask uint64) bool {
	for f > True {
		if mask>>uint(m.varOf[f])&1 == 1 {
			f = m.hi[f]
		} else {
			f = m.lo[f]
		}
	}
	return f == True
}

// randomFunc builds a random function over nvars variables as a sum of
// products, returning both the BDD and a brute-force truth table.
func randomFunc(m *Manager, nvars int, rng *rand.Rand) (Node, []bool) {
	table := make([]bool, 1<<nvars)
	f := False
	terms := 1 + rng.Intn(5)
	for t := 0; t < terms; t++ {
		cube := True
		careMask, valMask := uint64(0), uint64(0)
		for v := 0; v < nvars; v++ {
			switch rng.Intn(3) {
			case 0:
				cube = m.And(cube, m.Var(v))
				careMask |= 1 << v
				valMask |= 1 << v
			case 1:
				cube = m.And(cube, m.NVar(v))
				careMask |= 1 << v
			}
		}
		f = m.Or(f, cube)
		for a := uint64(0); a < 1<<nvars; a++ {
			if a&careMask == valMask {
				table[a] = true
			}
		}
	}
	return f, table
}

func TestTerminalOps(t *testing.T) {
	m := New()
	if m.And(True, False) != False || m.Or(False, True) != True {
		t.Fatal("terminal connectives wrong")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("negation wrong")
	}
	x := m.Var(0)
	if m.And(x, m.Not(x)) != False || m.Or(x, m.Not(x)) != True {
		t.Fatal("complement laws fail")
	}
}

func TestCanonicity(t *testing.T) {
	m := New()
	// x0 ∧ x1 built two different ways must be the same node.
	a := m.And(m.Var(0), m.Var(1))
	b := m.Not(m.Or(m.Not(m.Var(0)), m.Not(m.Var(1))))
	if a != b {
		t.Fatal("De Morgan canonicity violated")
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		m := New()
		n := 1 + rng.Intn(5)
		f, tf := randomFunc(m, n, rng)
		g, tg := randomFunc(m, n, rng)
		and, or, xor, not := m.And(f, g), m.Or(f, g), m.Xor(f, g), m.Not(f)
		for a := uint64(0); a < 1<<n; a++ {
			if truth(m, and, a) != (tf[a] && tg[a]) {
				t.Fatalf("trial %d: AND wrong at %b", trial, a)
			}
			if truth(m, or, a) != (tf[a] || tg[a]) {
				t.Fatalf("trial %d: OR wrong at %b", trial, a)
			}
			if truth(m, xor, a) != (tf[a] != tg[a]) {
				t.Fatalf("trial %d: XOR wrong at %b", trial, a)
			}
			if truth(m, not, a) == tf[a] {
				t.Fatalf("trial %d: NOT wrong at %b", trial, a)
			}
		}
	}
}

func TestRestrictAndExists(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		m := New()
		n := 2 + rng.Intn(4)
		f, tf := randomFunc(m, n, rng)
		v := rng.Intn(n)
		r0 := m.Restrict(f, v, false)
		r1 := m.Restrict(f, v, true)
		ex := m.Exists(f, v)
		for a := uint64(0); a < 1<<n; a++ {
			a0 := a &^ (1 << v)
			a1 := a | 1<<v
			if truth(m, r0, a) != tf[a0] {
				t.Fatalf("trial %d: Restrict(v=0) wrong", trial)
			}
			if truth(m, r1, a) != tf[a1] {
				t.Fatalf("trial %d: Restrict(v=1) wrong", trial)
			}
			if truth(m, ex, a) != (tf[a0] || tf[a1]) {
				t.Fatalf("trial %d: Exists wrong", trial)
			}
		}
	}
}

func TestSatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		m := New()
		n := 1 + rng.Intn(6)
		f, tf := randomFunc(m, n, rng)
		want := uint64(0)
		for _, b := range tf {
			if b {
				want++
			}
		}
		if got := m.SatCount(f, n); got != want {
			t.Fatalf("trial %d: SatCount = %d, want %d", trial, got, want)
		}
	}
	m := New()
	if m.SatCount(True, 5) != 32 || m.SatCount(False, 5) != 0 {
		t.Fatal("terminal counts wrong")
	}
}

func TestMinterms(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 100; trial++ {
		m := New()
		n := 1 + rng.Intn(5)
		f, tf := randomFunc(m, n, rng)
		got := map[uint64]bool{}
		m.Minterms(f, n, func(a uint64) bool { got[a] = true; return true })
		for a := uint64(0); a < 1<<n; a++ {
			if got[a] != tf[a] {
				t.Fatalf("trial %d: minterm %b: got %v want %v", trial, a, got[a], tf[a])
			}
		}
	}
}

func TestMintermsEarlyStop(t *testing.T) {
	m := New()
	seen := 0
	m.Minterms(True, 6, func(uint64) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestImplies(t *testing.T) {
	m := New()
	x, y := m.Var(0), m.Var(1)
	if !m.Implies(m.And(x, y), x) {
		t.Fatal("x∧y ⇒ x should hold")
	}
	if m.Implies(x, m.And(x, y)) {
		t.Fatal("x ⇒ x∧y should not hold")
	}
}

func TestQuickBooleanLaws(t *testing.T) {
	m := New()
	build := func(spec []uint8) Node {
		f := False
		cube := True
		for i, b := range spec {
			v := int(b % 8)
			switch b % 3 {
			case 0:
				cube = m.And(cube, m.Var(v))
			case 1:
				cube = m.And(cube, m.NVar(v))
			}
			if i%3 == 2 {
				f = m.Or(f, cube)
				cube = True
			}
		}
		return m.Or(f, cube)
	}
	law := func(sa, sb, sc []uint8) bool {
		a, b, c := build(sa), build(sb), build(sc)
		if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
			return false
		}
		if m.Not(m.Not(a)) != a {
			return false
		}
		if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
			return false
		}
		if m.Xor(a, a) != False || m.Xor(a, False) != a {
			return false
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeReuseAcrossGrowth(t *testing.T) {
	m := New()
	// Force several unique-table growths, then verify canonicity still
	// holds for an early function.
	early := m.And(m.Var(0), m.Var(1))
	f := False
	for v := 0; v < 300; v++ {
		f = m.Or(f, m.And(m.Var(v), m.NVar(v+1)))
	}
	again := m.And(m.Var(0), m.Var(1))
	if early != again {
		t.Fatal("canonicity lost after table growth")
	}
	if m.NodeCount() < 300 {
		t.Fatal("expected many nodes")
	}
}
