package bdd

import "ucp/internal/cube"

// FromCover builds the characteristic function of the input minterms
// of the cover restricted to output o: the BDD encoding of a minterm
// set used by the pre-ZDD implicit minimisation pipeline (the paper's
// reference [22]).  Input variable i of the cube space becomes BDD
// variable i.  When the space has no outputs, o is ignored.
func FromCover(m *Manager, f *cube.Cover, o int) Node {
	s := f.S
	r := False
	for _, c := range f.Cubes {
		if s.Outputs() > 0 && !s.Output(c, o) {
			continue
		}
		term := True
		for i := 0; i < s.Inputs(); i++ {
			switch s.Input(c, i) {
			case cube.Zero:
				term = m.And(term, m.NVar(i))
			case cube.One:
				term = m.And(term, m.Var(i))
			case cube.Empty:
				term = False
			}
		}
		r = m.Or(r, term)
	}
	return r
}

// FromCube builds the characteristic function of a single cube's input
// part.
func FromCube(m *Manager, s *cube.Space, c cube.Cube) Node {
	term := True
	for i := 0; i < s.Inputs(); i++ {
		switch s.Input(c, i) {
		case cube.Zero:
			term = m.And(term, m.NVar(i))
		case cube.One:
			term = m.And(term, m.Var(i))
		case cube.Empty:
			return False
		}
	}
	return term
}

// CountMinterms returns the number of input minterms of the cover
// restricted to output o, by building the characteristic BDD and
// model-counting it.  DNF model counting is #P-hard in general; the
// BDD detour makes it practical for the cover sizes this library
// handles.
func CountMinterms(f *cube.Cover, o int) uint64 {
	m := New()
	return m.SatCount(FromCover(m, f, o), f.S.Inputs())
}
