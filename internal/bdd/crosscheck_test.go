package bdd

import (
	"math/rand"
	"testing"

	"ucp/internal/cube"
)

// The BDD engine doubles as an independent oracle for the cube
// calculus: tautology, complement and equivalence answers from
// internal/cube are re-derived here through canonical BDDs, on spaces
// too large for brute-force minterm enumeration to be comfortable.

func randomCover(s *cube.Space, n int, rng *rand.Rand) *cube.Cover {
	f := cube.NewCover(s)
	for k := 0; k < n; k++ {
		c := s.NewCube()
		for i := 0; i < s.Inputs(); i++ {
			switch rng.Intn(4) {
			case 0:
				s.SetInput(c, i, cube.Zero)
			case 1:
				s.SetInput(c, i, cube.One)
			default:
				s.SetInput(c, i, cube.DC)
			}
		}
		for o := 0; o < s.Outputs(); o++ {
			s.SetOutput(c, o, true)
		}
		f.Add(c)
	}
	return f
}

func TestCubeTautologyAgainstBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	agree := 0
	for trial := 0; trial < 150; trial++ {
		s := cube.NewSpace(4+rng.Intn(10), 0) // up to 13 inputs
		f := randomCover(s, 1+rng.Intn(20), rng)
		m := New()
		g := FromCover(m, f, 0)
		want := g == True
		if got := f.Tautology(); got != want {
			t.Fatalf("trial %d: cube tautology %v, BDD %v\n%s", trial, got, want, f)
		}
		if want {
			agree++
		}
	}
	if agree == 0 {
		t.Log("note: no tautologies generated; the check still exercised the negative path")
	}
}

func TestCubeComplementAgainstBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 100; trial++ {
		s := cube.NewSpace(4+rng.Intn(8), 0)
		f := randomCover(s, rng.Intn(12), rng)
		comp := f.ComplementInputs()
		m := New()
		bf := FromCover(m, f, 0)
		bc := FromCover(m, comp, 0)
		if m.Or(bf, bc) != True {
			t.Fatalf("trial %d: cover ∪ complement is not the universe", trial)
		}
		if m.And(bf, bc) != False {
			t.Fatalf("trial %d: cover ∩ complement is not empty", trial)
		}
	}
}

func TestCubeEquivalenceAgainstBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 100; trial++ {
		s := cube.NewSpace(4+rng.Intn(7), 0)
		f := randomCover(s, 1+rng.Intn(8), rng)
		g := randomCover(s, 1+rng.Intn(8), rng)
		m := New()
		want := FromCover(m, f, 0) == FromCover(m, g, 0)
		if got := f.EquivalentTo(g); got != want {
			t.Fatalf("trial %d: cube equivalence %v, BDD %v", trial, got, want)
		}
	}
}

func TestSharpAgainstBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	for trial := 0; trial < 100; trial++ {
		s := cube.NewSpace(4+rng.Intn(6), 0)
		f := randomCover(s, 1+rng.Intn(5), rng)
		g := randomCover(s, rng.Intn(4), rng)
		d := f.SharpCover(g)
		m := New()
		want := m.And(FromCover(m, f, 0), m.Not(FromCover(m, g, 0)))
		if got := FromCover(m, d, 0); got != want {
			t.Fatalf("trial %d: sharp disagrees with BDD difference", trial)
		}
	}
}

func TestFromCubeMatchesFromCover(t *testing.T) {
	s := cube.NewSpace(5, 0)
	c, _ := s.ParseCube("10-1-", "")
	f := cube.NewCover(s)
	f.Add(c)
	m := New()
	if FromCube(m, s, c) != FromCover(m, f, 0) {
		t.Fatal("single-cube encodings disagree")
	}
	if FromCube(m, s, s.NewCube()) != False {
		t.Fatal("empty cube should encode to False")
	}
}

func TestFromCoverOutputRestriction(t *testing.T) {
	s := cube.NewSpace(3, 2)
	f := cube.NewCover(s)
	a, _ := s.ParseCube("1--", "10")
	b, _ := s.ParseCube("-0-", "01")
	f.Add(a)
	f.Add(b)
	m := New()
	f0 := FromCover(m, f, 0)
	f1 := FromCover(m, f, 1)
	if f0 != FromCube(m, s, a) {
		t.Fatal("output 0 should see only cube a")
	}
	if f1 != FromCube(m, s, b) {
		t.Fatal("output 1 should see only cube b")
	}
}

func TestCountMintermsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	for trial := 0; trial < 100; trial++ {
		s := cube.NewSpace(1+rng.Intn(6), 1+rng.Intn(2))
		f := randomCover(s, rng.Intn(6), rng)
		for o := 0; o < s.Outputs(); o++ {
			want := uint64(0)
			for m := uint64(0); m < 1<<s.Inputs(); m++ {
				mc := s.CubeOfMinterm(m, o)
				for _, c := range f.Cubes {
					if s.Contains(c, mc) {
						want++
						break
					}
				}
			}
			if got := CountMinterms(f, o); got != want {
				t.Fatalf("trial %d output %d: count %d, want %d", trial, o, got, want)
			}
		}
	}
}
