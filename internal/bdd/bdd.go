// Package bdd implements reduced ordered Binary Decision Diagrams
// (Bryant 1986): a canonical DAG representation for boolean functions.
//
// Historically the implicit Quine–McCluskey pipeline encoded minterm
// and prime sets in a pair of BDDs (Swamy, McGeer, Brayton 1992 — the
// paper's reference [22]) before ZDDs proved better suited (Minato,
// reference [18]).  This package exists to reproduce that comparison
// (see BenchmarkImplicitEncoding) and to serve as an independent
// oracle for the cube-calculus code: tautology, complement and
// equivalence checks in internal/cube are cross-validated against BDD
// semantics in the test suite.
//
// The implementation mirrors internal/zdd: hash-consed nodes in an
// open-addressed unique table, a direct-mapped lossy computed cache,
// and no complement edges (kept simple deliberately).
package bdd

import (
	"errors"
	"fmt"
)

// ErrNodeLimit is the panic value raised when an operation would grow
// the manager past its node limit; see SetNodeLimit.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Node references a BDD node inside a Manager.  The terminals are
// False and True.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

const terminalVar = int32(1) << 30

// Operation codes for the computed cache.
const (
	opIte uint64 = iota + 1
	opRestrict
	opExists
	opCount
)

const cacheBits = 17

// Manager owns the node store of a BDD universe.  Not safe for
// concurrent use.
type Manager struct {
	varOf []int32
	lo    []Node // cofactor with var = 0
	hi    []Node // cofactor with var = 1

	uslots []int32
	umask  uint32

	ckeys []uint64
	cvals []Node

	// limit caps the node store; 0 = unlimited.
	limit int
}

// New returns an empty manager.
func New() *Manager {
	m := &Manager{
		uslots: make([]int32, 1024),
		umask:  1023,
		ckeys:  make([]uint64, 1<<cacheBits),
		cvals:  make([]Node, 1<<cacheBits),
	}
	m.varOf = append(m.varOf, terminalVar, terminalVar)
	m.lo = append(m.lo, False, False)
	m.hi = append(m.hi, False, False)
	return m
}

// NodeCount returns the number of live nodes, terminals included.
func (m *Manager) NodeCount() int { return len(m.varOf) }

// SetNodeLimit caps the node store at n nodes (0 removes the cap).  An
// operation that would allocate past the cap panics with ErrNodeLimit;
// callers recover it at a phase boundary and fall back to an explicit
// algorithm (the same graceful-degradation contract as the ZDD
// manager's limit).
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// mk returns the canonical node (v, lo, hi), applying the ROBDD
// reduction rule lo = hi ⇒ node = lo.
func (m *Manager) mk(v int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	idx := uint32(mix64(uint64(uint32(v))<<40^uint64(uint32(lo))<<20^uint64(uint32(hi)))) & m.umask
	for {
		s := m.uslots[idx]
		if s == 0 {
			break
		}
		n := Node(s - 1)
		if m.varOf[n] == v && m.lo[n] == lo && m.hi[n] == hi {
			return n
		}
		idx = (idx + 1) & m.umask
	}
	if m.limit > 0 && len(m.varOf) >= m.limit {
		panic(ErrNodeLimit)
	}
	n := Node(len(m.varOf))
	m.varOf = append(m.varOf, v)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.uslots[idx] = int32(n) + 1
	if uint32(len(m.varOf))*4 >= m.umask*3 {
		m.growUnique()
	}
	return n
}

func (m *Manager) growUnique() {
	m.umask = m.umask*2 + 1
	m.uslots = make([]int32, m.umask+1)
	for n := 2; n < len(m.varOf); n++ {
		idx := uint32(mix64(uint64(uint32(m.varOf[n]))<<40^uint64(uint32(m.lo[n]))<<20^uint64(uint32(m.hi[n])))) & m.umask
		for m.uslots[idx] != 0 {
			idx = (idx + 1) & m.umask
		}
		m.uslots[idx] = int32(n) + 1
	}
}

func cacheKey(op uint64, f, g, h Node) (uint64, bool) {
	if f >= 1<<19 || g >= 1<<19 || h >= 1<<19 {
		return 0, false
	}
	return op<<57 | uint64(f)<<38 | uint64(g)<<19 | uint64(h), true
}

func (m *Manager) cacheGet(op uint64, f, g, h Node) (Node, bool) {
	k, ok := cacheKey(op, f, g, h)
	if !ok {
		return 0, false
	}
	i := mix64(k) & (1<<cacheBits - 1)
	if m.ckeys[i] == k {
		return m.cvals[i], true
	}
	return 0, false
}

func (m *Manager) cachePut(op uint64, f, g, h, r Node) {
	k, ok := cacheKey(op, f, g, h)
	if !ok {
		return
	}
	i := mix64(k) & (1<<cacheBits - 1)
	m.ckeys[i] = k
	m.cvals[i] = r
}

// Var returns the function of the single variable v.
func (m *Manager) Var(v int) Node {
	if v < 0 {
		panic(fmt.Sprintf("bdd: negative variable %d", v))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the negated variable ¬v.
func (m *Manager) NVar(v int) Node { return m.mk(int32(v), True, False) }

// top returns the smaller top variable of the operands.
func (m *Manager) top(ns ...Node) int32 {
	t := terminalVar
	for _, n := range ns {
		if n > True && m.varOf[n] < t {
			t = m.varOf[n]
		}
	}
	return t
}

func (m *Manager) cof(f Node, v int32, val bool) Node {
	if f <= True || m.varOf[f] != v {
		return f
	}
	if val {
		return m.hi[f]
	}
	return m.lo[f]
}

// Ite computes if-then-else: f·g + ¬f·h, the universal connective.
func (m *Manager) Ite(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheGet(opIte, f, g, h); ok {
		return r
	}
	v := m.top(f, g, h)
	lo := m.Ite(m.cof(f, v, false), m.cof(g, v, false), m.cof(h, v, false))
	hi := m.Ite(m.cof(f, v, true), m.cof(g, v, true), m.cof(h, v, true))
	r := m.mk(v, lo, hi)
	m.cachePut(opIte, f, g, h, r)
	return r
}

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node { return m.Ite(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node { return m.Ite(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Node) Node { return m.Ite(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node { return m.Ite(f, m.Not(g), g) }

// Implies reports whether f ⇒ g holds for every assignment.
func (m *Manager) Implies(f, g Node) bool { return m.Ite(f, g, True) == True }

// Restrict fixes variable v of f to the given value.
func (m *Manager) Restrict(f Node, v int, val bool) Node {
	if f <= True {
		return f
	}
	t := m.varOf[f]
	switch {
	case t > int32(v):
		return f
	case t == int32(v):
		if val {
			return m.hi[f]
		}
		return m.lo[f]
	}
	aux := Node(v)
	valN := False
	if val {
		valN = True
	}
	if r, ok := m.cacheGet(opRestrict, f, aux, valN); ok {
		return r
	}
	r := m.mk(t, m.Restrict(m.lo[f], v, val), m.Restrict(m.hi[f], v, val))
	m.cachePut(opRestrict, f, aux, valN, r)
	return r
}

// Exists existentially quantifies variable v out of f.
func (m *Manager) Exists(f Node, v int) Node {
	if f <= True {
		return f
	}
	t := m.varOf[f]
	switch {
	case t > int32(v):
		return f
	case t == int32(v):
		return m.Or(m.lo[f], m.hi[f])
	}
	if r, ok := m.cacheGet(opExists, f, Node(v), False); ok {
		return r
	}
	r := m.mk(t, m.Exists(m.lo[f], v), m.Exists(m.hi[f], v))
	m.cachePut(opExists, f, Node(v), False, r)
	return r
}

// SatCount returns the number of satisfying assignments of f over the
// first nvars variables (every node variable must be < nvars).
func (m *Manager) SatCount(f Node, nvars int) uint64 {
	counts := make(map[Node]uint64)
	var rec func(Node) uint64 // assignments over variables below node's var
	rec = func(n Node) uint64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := counts[n]; ok {
			return c
		}
		v := m.varOf[n]
		lo, hi := rec(m.lo[n]), rec(m.hi[n])
		// Scale each branch by the variables skipped between this node
		// and the branch's top variable.
		c := lo<<uint(m.gapTo(m.lo[n], v, nvars)) + hi<<uint(m.gapTo(m.hi[n], v, nvars))
		counts[n] = c
		return c
	}
	if f <= True {
		if f == True {
			return 1 << uint(nvars)
		}
		return 0
	}
	return rec(f) << uint(m.varOf[f])
}

// gapTo returns how many variables lie strictly between v and the top
// variable of n (or nvars when n is terminal).
func (m *Manager) gapTo(n Node, v int32, nvars int) int32 {
	if n <= True {
		return int32(nvars) - v - 1
	}
	return m.varOf[n] - v - 1
}

// Minterms enumerates the satisfying assignments of f over nvars
// variables, reported as bit masks (bit v = variable v).  Return false
// from the callback to stop early.  Spaces beyond 63 variables do not
// fit the mask and are rejected with an error.
func (m *Manager) Minterms(f Node, nvars int, visit func(uint64) bool) error {
	if nvars > 63 {
		return fmt.Errorf("bdd: minterm enumeration limited to 63 variables, got %d", nvars)
	}
	var rec func(n Node, v int, acc uint64) bool
	rec = func(n Node, v int, acc uint64) bool {
		if v == nvars {
			return n != True || visit(acc)
		}
		if n == False {
			return true
		}
		if n > True && m.varOf[n] == int32(v) {
			return rec(m.lo[n], v+1, acc) && rec(m.hi[n], v+1, acc|1<<uint(v))
		}
		// Variable v is absent: both branches.
		return rec(n, v+1, acc) && rec(n, v+1, acc|1<<uint(v))
	}
	rec(f, 0, 0)
	return nil
}
