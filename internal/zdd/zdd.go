// Package zdd implements Zero-suppressed Binary Decision Diagrams
// (Minato, DAC 1993): a canonical DAG representation for families of
// sets over a finite universe of integer-indexed elements.
//
// The covering-problem front end of this library stores the covering
// matrix as a single ZDD family: one set per row, each set holding the
// indices of the columns that cover the row.  Duplicate rows collapse
// for free by canonicity, row dominance is the Minimal operation, and
// essential columns are the family's singleton sets.
//
// # Chain reduction
//
// Nodes are chain-reduced in the spirit of Bryant's CZDDs (arXiv
// 1710.06500), adapted to the literal chains covering matrices
// actually produce: a node carries an ascending *chain* of variables
// v1 < v2 < … < vk instead of a single variable, and denotes
//
//	S(node) = S(lo) ∪ { {v1,…,vk} ∪ s : s ∈ S(hi) }
//
// i.e. the whole chain is present together in every hi-side set.  A
// plain ZDD spells such a run as k nodes whose lo-edges all point at
// Empty; covering rows are exactly that shape (one all-present chain
// per row tail), so collapsing them stores the same family in a
// fraction of the nodes and a NodeCap admits a strictly larger
// implicit frontier.  Unlike Bryant's [t:b] spans the chain variables
// need not be consecutive — covering matrices produce gapped runs.
//
// Canonical form: a stored node never has a hi-child that is a "pure"
// node (a nonterminal with lo == Empty).  mk absorbs such a child by
// concatenating its chain, so maximal chains are formed bottom-up and
// the representation stays canonical — equal ids ⇔ equal families,
// which the scg implicit phase's fixpoint test relies on.  Operations
// work variable-at-a-time through a virtual cofactor view (top chain
// variable + tail residual), and absorption re-forms chains in their
// results automatically.
//
// The node store is hash-consed through an open-addressed unique
// table, and operation results go through a direct-mapped computed
// cache (lossy, as in CUDD: a collision merely costs a recomputation)
// that starts small and doubles alongside the unique table.
package zdd

import (
	"errors"
	"fmt"
	"slices"
)

// ErrNodeLimit is the panic value raised (and the error reported) when
// an operation would grow the manager past its node limit; see
// SetNodeLimit.
var ErrNodeLimit = errors.New("zdd: node limit exceeded")

// Node is a reference to a ZDD node inside a Manager.  The two
// terminal nodes are Empty (the empty family, ⊥) and Base (the family
// {∅}, ⊤).
type Node int32

// Terminal nodes.
const (
	Empty Node = 0 // no sets at all
	Base  Node = 1 // exactly the empty set
)

// Operation codes for the computed cache.
const (
	opUnion uint64 = iota + 1
	opIntersect
	opDiff
	opNonSup
	opMinimal
	opSingletons
	opSubset0
	opSubset1
	opNonSub
	opMaximal
)

const terminalVar = int32(1) << 30 // sentinel: below every real variable

// Computed-cache sizing: New starts at 2^cacheMinBits entries (~48 KiB)
// so tiny instances stop paying for a fixed multi-megabyte table, and
// growUnique doubles it alongside the unique table up to
// 2^cacheMaxBits (the former fixed size).  The count cache scales the
// same way within its own bounds.
const (
	cacheMinBits = 12
	cacheMaxBits = 17
	countMinBits = 10
	countMaxBits = 14
)

// Manager owns the node store, the hash-consing unique table and the
// operation cache of a ZDD universe.  A Manager is not safe for
// concurrent use.
type Manager struct {
	// Node store.  A node's chain is its top variable plus clen-1
	// further ascending variables held in cpool at coff (nodes with a
	// single-variable chain occupy no pool space).  Terminals use the
	// sentinel variable and chain length 0.
	top   []int32 // first chain variable of node i
	coff  []int32 // offset of the chain tail in cpool (clen > 1 only)
	clen  []int32 // chain length of node i
	lo    []Node  // cofactor: sets without the chain
	hi    []Node  // cofactor: sets with the whole chain (chain removed)
	cpool []int32 // chain-tail storage, compacted by Collect

	// chain gates absorption: true for New (chain-reduced nodes),
	// false for NewPlain (every chain has length 1 — the reference
	// plain-ZDD engine the differential tests compare against).
	chain bool

	// Unique table: open addressing with linear probing; a slot holds
	// node id + 1 (0 = empty).
	uslots []int32
	umask  uint32

	// Computed cache: direct mapped, lossy, power-of-two sized.
	ckeys []uint64
	cvals []Node

	// Count cache: direct mapped, lossy, power-of-two sized.
	nkeys []Node
	nvals []uint64

	// abuf is the chain-concatenation scratch of mk/mkChain (absorption
	// builds the merged chain here before consing it).
	abuf []int32

	// sbuf is Set's sort/dedup scratch: callers build one set per row
	// of a covering matrix, so the per-call copy dominated Set's
	// allocation profile before it was pooled here.
	sbuf []int

	// Visit stamps: one epoch counter plus a per-node stamp slice shared
	// by every traversal (Support, LiveNodeCount, the collector's mark
	// phase), so no walk ever allocates a visited map.  A node is marked
	// in the current traversal iff vstamp[n] == vepoch; opening a new
	// epoch invalidates all stamps in O(1).
	vstamp []int32
	vepoch int32

	// Garbage collection: externally registered roots (pointers, so the
	// sweep can rewrite them to the compacted ids), the old→new id
	// scratch of the sweep, and the double-buffered pool the sweep
	// compacts chains into.  peak is the high-water node count across
	// the manager's lifetime, surviving collections.
	roots    []*Node
	gcMap    []Node
	poolSwap []int32
	peak     int

	// limit caps the node store; 0 = unlimited.
	limit int
}

// New returns an empty chain-reduced manager.
func New() *Manager {
	m := newManager()
	m.chain = true
	return m
}

// NewPlain returns an empty manager with chain reduction disabled:
// every node carries a single variable, exactly the classic ZDD
// layout.  It exists as the reference engine for differential tests
// and compression measurements; the two engines represent the same
// families and every operation returns set-identical results.
func NewPlain() *Manager { return newManager() }

func newManager() *Manager {
	m := &Manager{
		uslots: make([]int32, 1024),
		umask:  1023,
		ckeys:  make([]uint64, 1<<cacheMinBits),
		cvals:  make([]Node, 1<<cacheMinBits),
		nkeys:  make([]Node, 1<<countMinBits),
		nvals:  make([]uint64, 1<<countMinBits),
	}
	// Slots 0 and 1 are the terminals.
	m.top = append(m.top, terminalVar, terminalVar)
	m.coff = append(m.coff, 0, 0)
	m.clen = append(m.clen, 0, 0)
	m.lo = append(m.lo, Empty, Empty)
	m.hi = append(m.hi, Empty, Empty)
	m.peak = 2
	return m
}

// ChainEnabled reports whether the manager absorbs literal chains
// (New) or stores plain single-variable nodes (NewPlain).
func (m *Manager) ChainEnabled() bool { return m.chain }

// NodeCount returns the number of nodes in the store, including the
// two terminals and any garbage not yet collected.
func (m *Manager) NodeCount() int { return len(m.top) }

// SetNodeLimit caps the node store at n nodes (0 removes the cap).  An
// operation that would allocate past the cap panics with ErrNodeLimit;
// callers that want graceful degradation recover it at their phase
// boundary (see scg.ImplicitReduce) and fall back to an explicit
// algorithm.  The manager's existing nodes stay valid after the panic,
// but the family under construction is lost.  With chain reduction a
// capped store holds whole chains per node, so the same cap admits a
// strictly larger family than the plain layout.
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

// Var returns the top (first chain) variable of f; it panics on
// terminals.
func (m *Manager) Var(f Node) int {
	if f <= Base {
		panic("zdd: Var of terminal")
	}
	return int(m.top[f])
}

// Lo returns the cofactor of f without its top variable (equivalently:
// without its chain — no set on the lo side contains any prefix of
// it).
func (m *Manager) Lo(f Node) Node { return m.lo[f] }

// Hi returns the stored cofactor of f with its whole chain (the chain
// variables removed from the member sets).  Note that under chain
// reduction this is the cofactor after *all* of ChainLen(f) variables,
// not just the top one; Tail gives the single-variable view.
func (m *Manager) Hi(f Node) Node { return m.hi[f] }

// ChainLen returns the number of variables on f's chain (1 for every
// node of a plain manager); it panics on terminals.
func (m *Manager) ChainLen(f Node) int {
	if f <= Base {
		panic("zdd: ChainLen of terminal")
	}
	return int(m.clen[f])
}

// AppendChain appends f's chain variables in ascending order to dst.
func (m *Manager) AppendChain(dst []int, f Node) []int {
	for i := 0; i < int(m.clen[f]); i++ {
		dst = append(dst, int(m.chainVar(f, i)))
	}
	return dst
}

// chainVar returns the i-th variable of f's chain (0-indexed).
func (m *Manager) chainVar(f Node, i int) int32 {
	if i == 0 {
		return m.top[f]
	}
	return m.cpool[m.coff[f]+int32(i)-1]
}

// restOf returns the chain tail of f (everything after the top
// variable) as a view into the pool; nil for single-variable chains.
func (m *Manager) restOf(f Node) []int32 {
	if m.clen[f] <= 1 {
		return nil
	}
	return m.cpool[m.coff[f] : m.coff[f]+m.clen[f]-1]
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (m *Manager) uniqueHash(top int32, rest []int32, lo, hi Node) uint32 {
	h := uint64(uint32(top))<<40 ^ uint64(uint32(lo))<<20 ^ uint64(uint32(hi))
	for _, v := range rest {
		h = mix64(h) ^ uint64(uint32(v))
	}
	return uint32(mix64(h))
}

// cons hash-conses the node (top·rest, lo, hi).  The caller guarantees
// canonical form: hi != Empty, and in chain mode hi is not pure (mk
// and mkChain absorb pure hi-children before consing).  rest may alias
// cpool — the insert path appends a copy before any slot is written.
func (m *Manager) cons(top int32, rest []int32, lo, hi Node) Node {
	k := int32(len(rest)) + 1
	idx := m.uniqueHash(top, rest, lo, hi) & m.umask
	for {
		s := m.uslots[idx]
		if s == 0 {
			break
		}
		n := Node(s - 1)
		if m.top[n] == top && m.clen[n] == k && m.lo[n] == lo && m.hi[n] == hi &&
			slices.Equal(m.restOf(n), rest) {
			return n
		}
		idx = (idx + 1) & m.umask
	}
	if m.limit > 0 && len(m.top) >= m.limit {
		panic(ErrNodeLimit)
	}
	n := Node(len(m.top))
	off := int32(0)
	if len(rest) > 0 {
		off = int32(len(m.cpool))
		m.cpool = append(m.cpool, rest...)
	}
	m.top = append(m.top, top)
	m.coff = append(m.coff, off)
	m.clen = append(m.clen, k)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	if len(m.top) > m.peak {
		m.peak = len(m.top)
	}
	m.uslots[idx] = int32(n) + 1
	if uint32(len(m.top))*4 >= m.umask*3 { // load factor 3/4
		m.growUnique()
	}
	return n
}

// pure reports whether f is a nonterminal whose lo-cofactor is Empty:
// every set of f contains f's whole chain.  Canonical chain form
// forbids a pure hi-child — mk absorbs it into the parent's chain.
func (m *Manager) pure(f Node) bool { return f > Base && m.lo[f] == Empty }

// mk returns the canonical node (v, lo, hi), applying the
// zero-suppression rule hi = Empty ⇒ node = lo and, in chain mode,
// absorbing a pure hi-child into the chain.  Absorption terminates in
// one step: a stored node's hi is never pure, by induction.
func (m *Manager) mk(v int32, lo, hi Node) Node {
	if hi == Empty {
		return lo
	}
	if m.chain && m.pure(hi) {
		b := append(m.abuf[:0], v, m.top[hi])
		b = append(b, m.restOf(hi)...)
		m.abuf = b
		return m.cons(v, b[1:], lo, m.hi[hi])
	}
	return m.cons(v, nil, lo, hi)
}

// mkChain returns the canonical node carrying the whole ascending
// chain vars over (lo, hi).  In plain mode it expands to the classic
// one-node-per-variable spine.
func (m *Manager) mkChain(vars []int32, lo, hi Node) Node {
	if hi == Empty {
		return lo
	}
	if !m.chain {
		for i := len(vars) - 1; i >= 1; i-- {
			hi = m.cons(vars[i], nil, Empty, hi)
		}
		return m.cons(vars[0], nil, lo, hi)
	}
	if m.pure(hi) {
		b := append(m.abuf[:0], vars...)
		b = append(b, m.top[hi])
		b = append(b, m.restOf(hi)...)
		m.abuf = b
		return m.cons(b[0], b[1:], lo, m.hi[hi])
	}
	return m.cons(vars[0], vars[1:], lo, hi)
}

// Tail returns the virtual hi-cofactor of f at its top variable alone:
// the family {s \ {top} : s ∈ f, top ∈ s}.  For a single-variable
// chain this is the stored hi; for a longer chain it is the pure node
// carrying the rest of the chain, which shares pool storage with f.
// Operations recurse through Tail to work variable-at-a-time.
func (m *Manager) Tail(f Node) Node {
	if m.clen[f] <= 1 {
		return m.hi[f]
	}
	r := m.restOf(f)
	return m.cons(r[0], r[1:], Empty, m.hi[f])
}

func (m *Manager) growUnique() {
	m.umask = m.umask*2 + 1
	m.uslots = make([]int32, m.umask+1)
	for n := 2; n < len(m.top); n++ {
		idx := m.uniqueHash(m.top[n], m.restOf(Node(n)), m.lo[n], m.hi[n]) & m.umask
		for m.uslots[idx] != 0 {
			idx = (idx + 1) & m.umask
		}
		m.uslots[idx] = int32(n) + 1
	}
	// The lossy caches scale with the unique table up to their caps;
	// resizing drops their contents, which only costs recomputation.
	if len(m.ckeys) < 1<<cacheMaxBits {
		m.ckeys = make([]uint64, 2*len(m.ckeys))
		m.cvals = make([]Node, 2*len(m.cvals))
	}
	if len(m.nkeys) < 1<<countMaxBits {
		m.nkeys = make([]Node, 2*len(m.nkeys))
		m.nvals = make([]uint64, 2*len(m.nvals))
	}
}

// cacheKey packs an operation and its operands.  Node ids above 2^28
// are not cached (they merely recompute), which keeps the key unique.
func cacheKey(op uint64, f, g Node) (uint64, bool) {
	if f >= 1<<28 || g >= 1<<28 {
		return 0, false
	}
	return op<<56 | uint64(f)<<28 | uint64(g), true
}

func (m *Manager) cacheGet(op uint64, f, g Node) (Node, bool) {
	k, ok := cacheKey(op, f, g)
	if !ok {
		return 0, false
	}
	i := mix64(k) & uint64(len(m.ckeys)-1)
	if m.ckeys[i] == k {
		return m.cvals[i], true
	}
	return 0, false
}

func (m *Manager) cachePut(op uint64, f, g, r Node) {
	k, ok := cacheKey(op, f, g)
	if !ok {
		return
	}
	i := mix64(k) & uint64(len(m.ckeys)-1)
	m.ckeys[i] = k
	m.cvals[i] = r
}

func (m *Manager) topVar(f Node) int32 { return m.top[f] }

// Set builds the family containing exactly one set with the given
// elements.  Elements may be passed in any order; duplicates are
// collapsed.  Negative elements are rejected with an error (elements
// index ZDD variables, which are non-negative by construction).  In
// chain mode the whole set is a single chain node.
func (m *Manager) Set(elems []int) (Node, error) {
	sorted := append(m.sbuf[:0], elems...)
	m.sbuf = sorted
	for i := 1; i < len(sorted); i++ { // insertion sort: inputs are short
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted) > 0 && sorted[0] < 0 {
		return Empty, fmt.Errorf("zdd: negative element %d", sorted[0])
	}
	vars := m.abuf[:0]
	for i, v := range sorted {
		if i > 0 && v == sorted[i-1] {
			continue
		}
		vars = append(vars, int32(v))
	}
	m.abuf = vars
	if len(vars) == 0 {
		return Base, nil
	}
	if !m.chain {
		n := Base
		for i := len(vars) - 1; i >= 0; i-- {
			n = m.cons(vars[i], nil, Empty, n)
		}
		return n, nil
	}
	return m.cons(vars[0], vars[1:], Empty, Base), nil
}

// Single returns the family {{v}}.
func (m *Manager) Single(v int) Node { return m.mk(int32(v), Empty, Base) }

// hasEmptySet reports whether ∅ ∈ f.  The empty set lives at the end
// of the lo-spine.
func (m *Manager) hasEmptySet(f Node) bool {
	for f > Base {
		f = m.lo[f]
	}
	return f == Base
}

// HasEmptySet reports whether the empty set belongs to the family.
// For a covering matrix it flags an uncoverable row.
func (m *Manager) HasEmptySet(f Node) bool { return m.hasEmptySet(f) }

// Count returns the number of sets in the family, saturating at
// MaxUint64.  A chain contributes a single branch point, so the
// recurrence is the plain one over the stored cofactors.
func (m *Manager) Count(f Node) uint64 {
	switch f {
	case Empty:
		return 0
	case Base:
		return 1
	}
	i := mix64(uint64(f)) & uint64(len(m.nkeys)-1)
	if m.nkeys[i] == f {
		return m.nvals[i]
	}
	a, b := m.Count(m.lo[f]), m.Count(m.hi[f])
	n := a + b
	if n < a { // overflow
		n = ^uint64(0)
	}
	m.nkeys[i] = f
	m.nvals[i] = n
	return n
}

// Support returns the sorted list of elements occurring in at least
// one set of f.
func (m *Manager) Support(f Node) []int {
	return m.AppendSupport(nil, f)
}

// AppendSupport appends the sorted support of f to dst and returns the
// extended slice.  The walk marks visited nodes with the manager's
// epoch-stamped visit slice — no per-call maps — so a caller that
// reuses dst across calls pays zero steady-state allocations.
func (m *Manager) AppendSupport(dst []int, f Node) []int {
	if f <= Base {
		return dst
	}
	m.beginVisit()
	base := len(dst)
	// One entry per chain variable, then sort + dedup: the same
	// variable appears on many nodes, but the node walk itself bounds
	// the work.
	var walk func(Node)
	walk = func(n Node) {
		for n > Base && m.vstamp[n] != m.vepoch {
			m.vstamp[n] = m.vepoch
			dst = m.AppendChain(dst, n)
			walk(m.hi[n])
			n = m.lo[n]
		}
	}
	walk(f)
	s := dst[base:]
	slices.Sort(s)
	w := base + 1
	for i := base + 1; i < len(dst); i++ {
		if dst[i] != dst[w-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// Enumerate visits every set of the family in lexicographic element
// order.  The callback receives a slice that is only valid for the
// duration of the call; return false to stop early.
func (m *Manager) Enumerate(f Node, visit func(set []int) bool) {
	var elems []int
	var rec func(Node) bool
	rec = func(n Node) bool {
		switch n {
		case Empty:
			return true
		case Base:
			return visit(elems)
		}
		if !rec(m.lo[n]) {
			return false
		}
		mark := len(elems)
		elems = m.AppendChain(elems, n)
		ok := rec(m.hi[n])
		elems = elems[:mark]
		return ok
	}
	rec(f)
}

// Member reports whether the given set belongs to the family.
func (m *Manager) Member(f Node, set []int) bool {
	sorted := append([]int(nil), set...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	i := 0
	for {
		if i == len(sorted) {
			return m.hasEmptySet(f)
		}
		if f <= Base {
			return false
		}
		v := m.topVar(f)
		switch {
		case int32(sorted[i]) < v:
			return false
		case int32(sorted[i]) == v:
			// The hi side carries the whole chain: the set must
			// contain every chain variable, consecutively in sorted
			// order up to the next gap.
			for j := 0; j < int(m.clen[f]); j++ {
				if i == len(sorted) || int32(sorted[i]) != m.chainVar(f, j) {
					return false
				}
				i++
			}
			f = m.hi[f]
		default:
			f = m.lo[f]
		}
	}
}
