// Package zdd implements Zero-suppressed Binary Decision Diagrams
// (Minato, DAC 1993): a canonical DAG representation for families of
// sets over a finite universe of integer-indexed elements.
//
// The covering-problem front end of this library stores the covering
// matrix as a single ZDD family: one set per row, each set holding the
// indices of the columns that cover the row.  Duplicate rows collapse
// for free by canonicity, row dominance is the Minimal operation, and
// essential columns are the family's singleton sets.
//
// The node store is hash-consed through an open-addressed unique
// table, and operation results go through a fixed-size direct-mapped
// computed cache (lossy, as in CUDD: a collision merely costs a
// recomputation).
package zdd

import (
	"errors"
	"fmt"
	"slices"
)

// ErrNodeLimit is the panic value raised (and the error reported) when
// an operation would grow the manager past its node limit; see
// SetNodeLimit.
var ErrNodeLimit = errors.New("zdd: node limit exceeded")

// Node is a reference to a ZDD node inside a Manager.  The two
// terminal nodes are Empty (the empty family, ⊥) and Base (the family
// {∅}, ⊤).
type Node int32

// Terminal nodes.
const (
	Empty Node = 0 // no sets at all
	Base  Node = 1 // exactly the empty set
)

// Operation codes for the computed cache.
const (
	opUnion uint64 = iota + 1
	opIntersect
	opDiff
	opNonSup
	opMinimal
	opSingletons
	opSubset0
	opSubset1
	opNonSub
	opMaximal
)

const terminalVar = int32(1) << 30 // sentinel: below every real variable

// cacheBits sizes the direct-mapped computed cache (2^cacheBits
// entries ≈ 12 bytes each).
const cacheBits = 17

// Manager owns the node store, the hash-consing unique table and the
// operation cache of a ZDD universe.  A Manager is not safe for
// concurrent use.
type Manager struct {
	varOf []int32 // variable of node i (terminals use sentinel)
	lo    []Node  // cofactor: sets without var
	hi    []Node  // cofactor: sets with var (var removed)

	// Unique table: open addressing with linear probing; a slot holds
	// node id + 1 (0 = empty).
	uslots []int32
	umask  uint32

	// Computed cache: direct mapped, lossy.
	ckeys []uint64
	cvals []Node

	// Count cache: direct mapped, lossy.
	nkeys []Node
	nvals []uint64

	// Visit stamps: one epoch counter plus a per-node stamp slice shared
	// by every traversal (Support, LiveNodeCount, the collector's mark
	// phase), so no walk ever allocates a visited map.  A node is marked
	// in the current traversal iff vstamp[n] == vepoch; opening a new
	// epoch invalidates all stamps in O(1).
	vstamp []int32
	vepoch int32

	// Garbage collection: externally registered roots (pointers, so the
	// sweep can rewrite them to the compacted ids) and the old→new id
	// scratch of the sweep.  peak is the high-water node count across
	// the manager's lifetime, surviving collections.
	roots []*Node
	gcMap []Node
	peak  int

	// limit caps the node store; 0 = unlimited.
	limit int
}

// New returns an empty manager.
func New() *Manager {
	m := &Manager{
		uslots: make([]int32, 1024),
		umask:  1023,
		ckeys:  make([]uint64, 1<<cacheBits),
		cvals:  make([]Node, 1<<cacheBits),
		nkeys:  make([]Node, 1<<14),
		nvals:  make([]uint64, 1<<14),
	}
	// Slots 0 and 1 are the terminals.
	m.varOf = append(m.varOf, terminalVar, terminalVar)
	m.lo = append(m.lo, Empty, Empty)
	m.hi = append(m.hi, Empty, Empty)
	m.peak = 2
	return m
}

// NodeCount returns the number of live nodes in the manager, including
// the two terminals.
func (m *Manager) NodeCount() int { return len(m.varOf) }

// SetNodeLimit caps the node store at n nodes (0 removes the cap).  An
// operation that would allocate past the cap panics with ErrNodeLimit;
// callers that want graceful degradation recover it at their phase
// boundary (see scg.ImplicitReduce) and fall back to an explicit
// algorithm.  The manager's existing nodes stay valid after the panic,
// but the family under construction is lost.
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

// Var returns the top variable of f; it panics on terminals.
func (m *Manager) Var(f Node) int {
	if f <= Base {
		panic("zdd: Var of terminal")
	}
	return int(m.varOf[f])
}

// Lo returns the cofactor of f without its top variable.
func (m *Manager) Lo(f Node) Node { return m.lo[f] }

// Hi returns the cofactor of f with its top variable (the variable
// removed from the member sets).
func (m *Manager) Hi(f Node) Node { return m.hi[f] }

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (m *Manager) uniqueHash(v int32, lo, hi Node) uint32 {
	return uint32(mix64(uint64(uint32(v))<<40 ^ uint64(uint32(lo))<<20 ^ uint64(uint32(hi))))
}

// mk returns the canonical node (v, lo, hi), applying the
// zero-suppression rule hi = Empty ⇒ node = lo.
func (m *Manager) mk(v int32, lo, hi Node) Node {
	if hi == Empty {
		return lo
	}
	idx := m.uniqueHash(v, lo, hi) & m.umask
	for {
		s := m.uslots[idx]
		if s == 0 {
			break
		}
		n := Node(s - 1)
		if m.varOf[n] == v && m.lo[n] == lo && m.hi[n] == hi {
			return n
		}
		idx = (idx + 1) & m.umask
	}
	if m.limit > 0 && len(m.varOf) >= m.limit {
		panic(ErrNodeLimit)
	}
	n := Node(len(m.varOf))
	m.varOf = append(m.varOf, v)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	if len(m.varOf) > m.peak {
		m.peak = len(m.varOf)
	}
	m.uslots[idx] = int32(n) + 1
	if uint32(len(m.varOf))*4 >= m.umask*3 { // load factor 3/4
		m.growUnique()
	}
	return n
}

func (m *Manager) growUnique() {
	m.umask = m.umask*2 + 1
	m.uslots = make([]int32, m.umask+1)
	for n := 2; n < len(m.varOf); n++ {
		idx := m.uniqueHash(m.varOf[n], m.lo[n], m.hi[n]) & m.umask
		for m.uslots[idx] != 0 {
			idx = (idx + 1) & m.umask
		}
		m.uslots[idx] = int32(n) + 1
	}
}

// beginVisit opens a traversal epoch: it grows the stamp slice to the
// node store and bumps the epoch counter, which invalidates every
// stamp of earlier traversals in O(1).  On (rare) epoch wraparound the
// stamps are cleared so a stale stamp can never alias the new epoch.
func (m *Manager) beginVisit() {
	if len(m.vstamp) < len(m.varOf) {
		m.vstamp = append(m.vstamp, make([]int32, len(m.varOf)-len(m.vstamp))...)
	}
	m.vepoch++
	if m.vepoch <= 0 {
		for i := range m.vstamp {
			m.vstamp[i] = 0
		}
		m.vepoch = 1
	}
}

// ----- garbage collection -----
//
// The node store is append-only between collections: operations
// hash-cons every intermediate result, so long reduction runs strand
// large amounts of dead nodes behind the live families.  A collection
// reclaims everything unreachable from the registered roots.
//
// Protocol: register every family that must survive with AddRoot
// (passing a *Node, because compaction renumbers ids and the collector
// rewrites the roots in place), call Collect only between operations —
// node ids held on the Go stack by an operation in flight are
// invisible to the collector — and treat every unregistered Node as
// invalidated by the sweep.

// AddRoot registers *f as an external GC root: the family *f (at the
// time of a future Collect) survives collections and *f is rewritten
// to the node's post-compaction id.  The same pointer may be
// registered once; AddRoot panics on re-registration to catch
// double-add bugs early.
func (m *Manager) AddRoot(f *Node) {
	for _, r := range m.roots {
		if r == f {
			panic("zdd: AddRoot: pointer already registered")
		}
	}
	m.roots = append(m.roots, f)
}

// RemoveRoot unregisters a pointer previously passed to AddRoot.  It
// is a no-op when the pointer is not registered.
func (m *Manager) RemoveRoot(f *Node) {
	for i, r := range m.roots {
		if r == f {
			m.roots = append(m.roots[:i], m.roots[i+1:]...)
			return
		}
	}
}

// markLive stamps every node reachable from the registered roots with
// the current epoch (the caller opens it) and returns the live node
// count, terminals included.
func (m *Manager) markLive() int {
	live := 2
	var mark func(Node)
	mark = func(n Node) {
		for n > Base && m.vstamp[n] != m.vepoch {
			m.vstamp[n] = m.vepoch
			live++
			mark(m.hi[n])
			n = m.lo[n]
		}
	}
	for _, r := range m.roots {
		mark(*r)
	}
	return live
}

// LiveNodeCount returns the number of nodes reachable from the
// registered roots, terminals included — the store size a Collect
// would compact to.  NodeCount, by contrast, counts every node ever
// allocated since the last collection; budgeting against LiveNodeCount
// lets a node cap measure the working set instead of the history.
func (m *Manager) LiveNodeCount() int {
	m.beginVisit()
	return m.markLive()
}

// PeakNodeCount returns the high-water node store size over the
// manager's lifetime; collections do not lower it.
func (m *Manager) PeakNodeCount() int { return m.peak }

// Collect reclaims every node unreachable from the registered roots
// and returns how many it freed.  The surviving nodes are compacted to
// the low ids (children always precede parents, so one in-order pass
// remaps lo/hi), the unique table is rebuilt over the compacted store,
// the computed and count caches are invalidated — their keys embed
// pre-sweep ids — and each registered root is rewritten to its new id.
// Every Node value not covered by a registered root is dangling after
// Collect returns and must not be used.
func (m *Manager) Collect() int {
	n := len(m.varOf)
	m.beginVisit()
	live := m.markLive()
	if live == n {
		return 0
	}
	// Sweep: compact stores in id order, remapping through gcMap.
	if cap(m.gcMap) < n {
		m.gcMap = make([]Node, n)
	}
	remap := m.gcMap[:n]
	remap[0], remap[1] = Empty, Base
	w := 2
	for i := 2; i < n; i++ {
		if m.vstamp[i] != m.vepoch {
			continue
		}
		remap[i] = Node(w)
		m.varOf[w] = m.varOf[i]
		m.lo[w] = remap[m.lo[i]]
		m.hi[w] = remap[m.hi[i]]
		w++
	}
	m.varOf = m.varOf[:w]
	m.lo = m.lo[:w]
	m.hi = m.hi[:w]
	// Stamps refer to pre-sweep ids; the next beginVisit re-arms them.
	m.vstamp = m.vstamp[:w]
	// Rebuild the unique table at the load factor mk maintains.
	size := uint32(1024)
	for size*3 < uint32(w)*4 {
		size *= 2
	}
	if uint32(len(m.uslots)) == size {
		for i := range m.uslots {
			m.uslots[i] = 0
		}
	} else {
		m.uslots = make([]int32, size)
	}
	m.umask = size - 1
	for i := 2; i < w; i++ {
		idx := m.uniqueHash(m.varOf[i], m.lo[i], m.hi[i]) & m.umask
		for m.uslots[idx] != 0 {
			idx = (idx + 1) & m.umask
		}
		m.uslots[idx] = int32(i) + 1
	}
	// Invalidate the computed and count caches: zeroed keys can never
	// match (operation codes start at 1; Count never caches terminals).
	for i := range m.ckeys {
		m.ckeys[i] = 0
	}
	for i := range m.nkeys {
		m.nkeys[i] = 0
	}
	for _, r := range m.roots {
		*r = remap[*r]
	}
	return n - w
}

// cacheKey packs an operation and its operands.  Node ids above 2^28
// are not cached (they merely recompute), which keeps the key unique.
func cacheKey(op uint64, f, g Node) (uint64, bool) {
	if f >= 1<<28 || g >= 1<<28 {
		return 0, false
	}
	return op<<56 | uint64(f)<<28 | uint64(g), true
}

func (m *Manager) cacheGet(op uint64, f, g Node) (Node, bool) {
	k, ok := cacheKey(op, f, g)
	if !ok {
		return 0, false
	}
	i := mix64(k) & (1<<cacheBits - 1)
	if m.ckeys[i] == k {
		return m.cvals[i], true
	}
	return 0, false
}

func (m *Manager) cachePut(op uint64, f, g, r Node) {
	k, ok := cacheKey(op, f, g)
	if !ok {
		return
	}
	i := mix64(k) & (1<<cacheBits - 1)
	m.ckeys[i] = k
	m.cvals[i] = r
}

func (m *Manager) topVar(f Node) int32 { return m.varOf[f] }

// Set builds the family containing exactly one set with the given
// elements.  Elements may be passed in any order; duplicates are
// collapsed.  Negative elements are rejected with an error (elements
// index ZDD variables, which are non-negative by construction).
func (m *Manager) Set(elems []int) (Node, error) {
	// Build bottom-up in decreasing variable order.
	sorted := append([]int(nil), elems...)
	for i := 1; i < len(sorted); i++ { // insertion sort: inputs are short
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted) > 0 && sorted[0] < 0 {
		return Empty, fmt.Errorf("zdd: negative element %d", sorted[0])
	}
	n := Base
	for i := len(sorted) - 1; i >= 0; i-- {
		if i+1 < len(sorted) && sorted[i] == sorted[i+1] {
			continue
		}
		n = m.mk(int32(sorted[i]), Empty, n)
	}
	return n, nil
}

// Single returns the family {{v}}.
func (m *Manager) Single(v int) Node { return m.mk(int32(v), Empty, Base) }

// Union returns f ∪ g.
func (m *Manager) Union(f, g Node) Node {
	switch {
	case f == Empty:
		return g
	case g == Empty, f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(opUnion, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.mk(vf, m.Union(m.lo[f], g), m.hi[f])
	case vf > vg:
		r = m.mk(vg, m.Union(f, m.lo[g]), m.hi[g])
	default:
		r = m.mk(vf, m.Union(m.lo[f], m.lo[g]), m.Union(m.hi[f], m.hi[g]))
	}
	m.cachePut(opUnion, f, g, r)
	return r
}

// Intersect returns f ∩ g.
func (m *Manager) Intersect(f, g Node) Node {
	switch {
	case f == Empty || g == Empty:
		return Empty
	case f == g:
		return f
	case f == Base:
		if m.hasEmptySet(g) {
			return Base
		}
		return Empty
	case g == Base:
		if m.hasEmptySet(f) {
			return Base
		}
		return Empty
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(opIntersect, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.Intersect(m.lo[f], g)
	case vf > vg:
		r = m.Intersect(f, m.lo[g])
	default:
		r = m.mk(vf, m.Intersect(m.lo[f], m.lo[g]), m.Intersect(m.hi[f], m.hi[g]))
	}
	m.cachePut(opIntersect, f, g, r)
	return r
}

// Diff returns f \ g.
func (m *Manager) Diff(f, g Node) Node {
	switch {
	case f == Empty || f == g:
		return Empty
	case g == Empty:
		return f
	case f == Base:
		if m.hasEmptySet(g) {
			return Empty
		}
		return Base
	}
	if r, ok := m.cacheGet(opDiff, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.mk(vf, m.Diff(m.lo[f], g), m.hi[f])
	case vf > vg:
		r = m.Diff(f, m.lo[g])
	default:
		r = m.mk(vf, m.Diff(m.lo[f], m.lo[g]), m.Diff(m.hi[f], m.hi[g]))
	}
	m.cachePut(opDiff, f, g, r)
	return r
}

// Subset1 returns {S \ {v} : S ∈ f, v ∈ S}: the sets containing v,
// with v removed.
func (m *Manager) Subset1(f Node, v int) Node {
	if f <= Base {
		return Empty
	}
	t := m.topVar(f)
	switch {
	case t > int32(v):
		return Empty // v is above every element of these sets
	case t == int32(v):
		return m.hi[f]
	}
	if r, ok := m.cacheGet(opSubset1, f, Node(v)); ok {
		return r
	}
	r := m.mk(t, m.Subset1(m.lo[f], v), m.Subset1(m.hi[f], v))
	m.cachePut(opSubset1, f, Node(v), r)
	return r
}

// Subset0 returns {S ∈ f : v ∉ S}.
func (m *Manager) Subset0(f Node, v int) Node {
	if f <= Base {
		return f
	}
	t := m.topVar(f)
	switch {
	case t > int32(v):
		return f
	case t == int32(v):
		return m.lo[f]
	}
	if r, ok := m.cacheGet(opSubset0, f, Node(v)); ok {
		return r
	}
	r := m.mk(t, m.Subset0(m.lo[f], v), m.Subset0(m.hi[f], v))
	m.cachePut(opSubset0, f, Node(v), r)
	return r
}

// Remove deletes element v from every set of f (the union of Subset0
// and Subset1).
func (m *Manager) Remove(f Node, v int) Node {
	return m.Union(m.Subset0(f, v), m.Subset1(f, v))
}

// hasEmptySet reports whether ∅ ∈ f.  The empty set lives at the end
// of the lo-spine.
func (m *Manager) hasEmptySet(f Node) bool {
	for f > Base {
		f = m.lo[f]
	}
	return f == Base
}

// HasEmptySet reports whether the empty set belongs to the family.
// For a covering matrix it flags an uncoverable row.
func (m *Manager) HasEmptySet(f Node) bool { return m.hasEmptySet(f) }

// Count returns the number of sets in the family, saturating at
// MaxUint64.
func (m *Manager) Count(f Node) uint64 {
	switch f {
	case Empty:
		return 0
	case Base:
		return 1
	}
	i := mix64(uint64(f)) & uint64(len(m.nkeys)-1)
	if m.nkeys[i] == f {
		return m.nvals[i]
	}
	a, b := m.Count(m.lo[f]), m.Count(m.hi[f])
	n := a + b
	if n < a { // overflow
		n = ^uint64(0)
	}
	m.nkeys[i] = f
	m.nvals[i] = n
	return n
}

// Support returns the sorted list of elements occurring in at least
// one set of f.
func (m *Manager) Support(f Node) []int {
	return m.AppendSupport(nil, f)
}

// AppendSupport appends the sorted support of f to dst and returns the
// extended slice.  The walk marks visited nodes with the manager's
// epoch-stamped visit slice — no per-call maps — so a caller that
// reuses dst across calls pays zero steady-state allocations.
func (m *Manager) AppendSupport(dst []int, f Node) []int {
	if f <= Base {
		return dst
	}
	m.beginVisit()
	base := len(dst)
	// One entry per node, then sort + dedup: the same variable appears
	// on many nodes, but the node walk itself bounds the work.
	var walk func(Node)
	walk = func(n Node) {
		for n > Base && m.vstamp[n] != m.vepoch {
			m.vstamp[n] = m.vepoch
			dst = append(dst, int(m.varOf[n]))
			walk(m.hi[n])
			n = m.lo[n]
		}
	}
	walk(f)
	s := dst[base:]
	slices.Sort(s)
	w := base + 1
	for i := base + 1; i < len(dst); i++ {
		if dst[i] != dst[w-1] {
			dst[w] = dst[i]
			w++
		}
	}
	return dst[:w]
}

// Enumerate visits every set of the family in lexicographic element
// order.  The callback receives a slice that is only valid for the
// duration of the call; return false to stop early.
func (m *Manager) Enumerate(f Node, visit func(set []int) bool) {
	var elems []int
	var rec func(Node) bool
	rec = func(n Node) bool {
		switch n {
		case Empty:
			return true
		case Base:
			return visit(elems)
		}
		if !rec(m.lo[n]) {
			return false
		}
		elems = append(elems, int(m.varOf[n]))
		ok := rec(m.hi[n])
		elems = elems[:len(elems)-1]
		return ok
	}
	rec(f)
}

// NonSupersets returns {S ∈ f : no T ∈ g satisfies T ⊆ S}.
func (m *Manager) NonSupersets(f, g Node) Node {
	switch {
	case g == Empty:
		return f
	case f == Empty:
		return Empty
	case m.hasEmptySet(g):
		return Empty // ∅ is a subset of everything
	case f == Base:
		return Base // ∅ has no non-empty subset
	case f == g:
		return Empty
	}
	if r, ok := m.cacheGet(opNonSup, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf == vg:
		// Sets of f.hi contain vf: they are supersets of T either when
		// T ∈ g.lo (T avoids vf) with T ⊆ S, or when T ∈ g.hi with
		// T\{vf} ⊆ S\{vf}.
		hi := m.Intersect(m.NonSupersets(m.hi[f], m.lo[g]), m.NonSupersets(m.hi[f], m.hi[g]))
		lo := m.NonSupersets(m.lo[f], m.lo[g])
		r = m.mk(vf, lo, hi)
	case vf < vg:
		// No set of g contains vf, so vf is irrelevant for the
		// subset tests.
		r = m.mk(vf, m.NonSupersets(m.lo[f], g), m.NonSupersets(m.hi[f], g))
	default: // vg < vf: sets of g containing vg cannot be subsets
		r = m.NonSupersets(f, m.lo[g])
	}
	m.cachePut(opNonSup, f, g, r)
	return r
}

// Minimal returns the sets of f that contain no other set of f: the
// minimal elements of the family under inclusion.  On a covering
// matrix stored row-wise this performs row dominance in one pass.
func (m *Manager) Minimal(f Node) Node {
	if f <= Base {
		return f
	}
	if m.hasEmptySet(f) {
		return Base
	}
	if r, ok := m.cacheGet(opMinimal, f, Empty); ok {
		return r
	}
	lo := m.Minimal(m.lo[f])
	hi := m.Minimal(m.hi[f])
	// A set containing v is minimal only if no minimal set without v
	// is included in it.
	hi = m.NonSupersets(hi, lo)
	r := m.mk(m.topVar(f), lo, hi)
	m.cachePut(opMinimal, f, Empty, r)
	return r
}

// NonSubsets returns {S ∈ f : no T ∈ g satisfies S ⊆ T}.
func (m *Manager) NonSubsets(f, g Node) Node {
	switch {
	case g == Empty:
		return f
	case f == Empty, f == g:
		return Empty
	case f == Base:
		return Empty // ∅ is a subset of any set of the non-empty g
	}
	if r, ok := m.cacheGet(opNonSub, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf == vg:
		// Sets without vf can hide inside g.lo or inside g.hi (their
		// supersets may or may not contain vf); sets with vf only
		// inside g.hi.
		lo := m.Intersect(m.NonSubsets(m.lo[f], m.lo[g]), m.NonSubsets(m.lo[f], m.hi[g]))
		hi := m.NonSubsets(m.hi[f], m.hi[g])
		r = m.mk(vf, lo, hi)
	case vf < vg:
		// Sets of f containing vf cannot be subsets of any set of g
		// (none contains vf), so they all survive.
		r = m.mk(vf, m.NonSubsets(m.lo[f], g), m.hi[f])
	default: // vg < vf
		lo := m.Intersect(m.NonSubsets(f, m.lo[g]), m.NonSubsets(f, m.hi[g]))
		r = lo
	}
	m.cachePut(opNonSub, f, g, r)
	return r
}

// Maximal returns the sets of f contained in no other set of f: the
// maximal elements of the family under inclusion (the dual of
// Minimal).
func (m *Manager) Maximal(f Node) Node {
	if f <= Base {
		return f
	}
	if r, ok := m.cacheGet(opMaximal, f, Empty); ok {
		return r
	}
	lo := m.Maximal(m.lo[f])
	hi := m.Maximal(m.hi[f])
	// A set without v is maximal only if it is not a subset of a
	// maximal set containing v.
	lo = m.NonSubsets(lo, hi)
	r := m.mk(m.topVar(f), lo, hi)
	m.cachePut(opMaximal, f, Empty, r)
	return r
}

// Singletons returns the subfamily of f consisting of its one-element
// sets.  On a covering matrix these identify essential columns.
func (m *Manager) Singletons(f Node) Node {
	if f <= Base {
		return Empty
	}
	if r, ok := m.cacheGet(opSingletons, f, Empty); ok {
		return r
	}
	hi := Empty
	if m.hasEmptySet(m.hi[f]) {
		hi = Base
	}
	r := m.mk(m.topVar(f), m.Singletons(m.lo[f]), hi)
	m.cachePut(opSingletons, f, Empty, r)
	return r
}

// Member reports whether the given set belongs to the family.
func (m *Manager) Member(f Node, set []int) bool {
	sorted := append([]int(nil), set...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	i := 0
	for {
		if i == len(sorted) {
			return m.hasEmptySet(f)
		}
		if f <= Base {
			return false
		}
		v := m.topVar(f)
		switch {
		case int32(sorted[i]) < v:
			return false
		case int32(sorted[i]) == v:
			f = m.hi[f]
			i++
		default:
			f = m.lo[f]
		}
	}
}
