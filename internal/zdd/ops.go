package zdd

// Set-algebra operations.  Every operation recurses
// variable-at-a-time through the virtual cofactor view (topVar for
// the first chain variable, lo for the stored lo-cofactor, Tail for
// the hi-cofactor at the top variable alone), and mk's absorption
// rule re-forms maximal chains in the results.  The recurrences are
// therefore the textbook plain-ZDD ones; chain reduction lives
// entirely in the node layer.  Results are memoized in the computed
// cache keyed on (op, f, g) — chain-node ids are canonical, so the
// cache contract is unchanged.

// Union returns f ∪ g.
func (m *Manager) Union(f, g Node) Node {
	switch {
	case f == Empty:
		return g
	case g == Empty, f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(opUnion, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.mk(vf, m.Union(m.lo[f], g), m.Tail(f))
	case vf > vg:
		r = m.mk(vg, m.Union(f, m.lo[g]), m.Tail(g))
	default:
		r = m.mk(vf, m.Union(m.lo[f], m.lo[g]), m.Union(m.Tail(f), m.Tail(g)))
	}
	m.cachePut(opUnion, f, g, r)
	return r
}

// Intersect returns f ∩ g.
func (m *Manager) Intersect(f, g Node) Node {
	switch {
	case f == Empty || g == Empty:
		return Empty
	case f == g:
		return f
	case f == Base:
		if m.hasEmptySet(g) {
			return Base
		}
		return Empty
	case g == Base:
		if m.hasEmptySet(f) {
			return Base
		}
		return Empty
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheGet(opIntersect, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.Intersect(m.lo[f], g)
	case vf > vg:
		r = m.Intersect(f, m.lo[g])
	default:
		r = m.mk(vf, m.Intersect(m.lo[f], m.lo[g]), m.Intersect(m.Tail(f), m.Tail(g)))
	}
	m.cachePut(opIntersect, f, g, r)
	return r
}

// Diff returns f \ g.
func (m *Manager) Diff(f, g Node) Node {
	switch {
	case f == Empty || f == g:
		return Empty
	case g == Empty:
		return f
	case f == Base:
		if m.hasEmptySet(g) {
			return Empty
		}
		return Base
	}
	if r, ok := m.cacheGet(opDiff, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf < vg:
		r = m.mk(vf, m.Diff(m.lo[f], g), m.Tail(f))
	case vf > vg:
		r = m.Diff(f, m.lo[g])
	default:
		r = m.mk(vf, m.Diff(m.lo[f], m.lo[g]), m.Diff(m.Tail(f), m.Tail(g)))
	}
	m.cachePut(opDiff, f, g, r)
	return r
}

// Subset1 returns {S \ {v} : S ∈ f, v ∈ S}: the sets containing v,
// with v removed.
func (m *Manager) Subset1(f Node, v int) Node {
	if f <= Base {
		return Empty
	}
	t := m.topVar(f)
	switch {
	case t > int32(v):
		return Empty // v is above every element of these sets
	case t == int32(v):
		return m.Tail(f)
	}
	if r, ok := m.cacheGet(opSubset1, f, Node(v)); ok {
		return r
	}
	r := m.mk(t, m.Subset1(m.lo[f], v), m.Subset1(m.Tail(f), v))
	m.cachePut(opSubset1, f, Node(v), r)
	return r
}

// Subset0 returns {S ∈ f : v ∉ S}.
func (m *Manager) Subset0(f Node, v int) Node {
	if f <= Base {
		return f
	}
	t := m.topVar(f)
	switch {
	case t > int32(v):
		return f
	case t == int32(v):
		return m.lo[f]
	}
	if r, ok := m.cacheGet(opSubset0, f, Node(v)); ok {
		return r
	}
	r := m.mk(t, m.Subset0(m.lo[f], v), m.Subset0(m.Tail(f), v))
	m.cachePut(opSubset0, f, Node(v), r)
	return r
}

// Remove deletes element v from every set of f (the union of Subset0
// and Subset1).
func (m *Manager) Remove(f Node, v int) Node {
	return m.Union(m.Subset0(f, v), m.Subset1(f, v))
}

// NonSupersets returns {S ∈ f : no T ∈ g satisfies T ⊆ S}.
func (m *Manager) NonSupersets(f, g Node) Node {
	switch {
	case g == Empty:
		return f
	case f == Empty:
		return Empty
	case m.hasEmptySet(g):
		return Empty // ∅ is a subset of everything
	case f == Base:
		return Base // ∅ has no non-empty subset
	case f == g:
		return Empty
	}
	if r, ok := m.cacheGet(opNonSup, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf == vg:
		// Sets of f.hi contain vf: they are supersets of T either when
		// T ∈ g.lo (T avoids vf) with T ⊆ S, or when T ∈ g.hi with
		// T\{vf} ⊆ S\{vf}.
		fh := m.Tail(f)
		hi := m.Intersect(m.NonSupersets(fh, m.lo[g]), m.NonSupersets(fh, m.Tail(g)))
		lo := m.NonSupersets(m.lo[f], m.lo[g])
		r = m.mk(vf, lo, hi)
	case vf < vg:
		// No set of g contains vf, so vf is irrelevant for the
		// subset tests.
		r = m.mk(vf, m.NonSupersets(m.lo[f], g), m.NonSupersets(m.Tail(f), g))
	default: // vg < vf: sets of g containing vg cannot be subsets
		r = m.NonSupersets(f, m.lo[g])
	}
	m.cachePut(opNonSup, f, g, r)
	return r
}

// Minimal returns the sets of f that contain no other set of f: the
// minimal elements of the family under inclusion.  On a covering
// matrix stored row-wise this performs row dominance in one pass.
func (m *Manager) Minimal(f Node) Node {
	if f <= Base {
		return f
	}
	if m.hasEmptySet(f) {
		return Base
	}
	if r, ok := m.cacheGet(opMinimal, f, Empty); ok {
		return r
	}
	lo := m.Minimal(m.lo[f])
	hi := m.Minimal(m.Tail(f))
	// A set containing v is minimal only if no minimal set without v
	// is included in it.
	hi = m.NonSupersets(hi, lo)
	r := m.mk(m.topVar(f), lo, hi)
	m.cachePut(opMinimal, f, Empty, r)
	return r
}

// NonSubsets returns {S ∈ f : no T ∈ g satisfies S ⊆ T}.
func (m *Manager) NonSubsets(f, g Node) Node {
	switch {
	case g == Empty:
		return f
	case f == Empty, f == g:
		return Empty
	case f == Base:
		return Empty // ∅ is a subset of any set of the non-empty g
	}
	if r, ok := m.cacheGet(opNonSub, f, g); ok {
		return r
	}
	vf, vg := m.topVar(f), m.topVar(g)
	var r Node
	switch {
	case vf == vg:
		// Sets without vf can hide inside g.lo or inside g.hi (their
		// supersets may or may not contain vf); sets with vf only
		// inside g.hi.
		gh := m.Tail(g)
		lo := m.Intersect(m.NonSubsets(m.lo[f], m.lo[g]), m.NonSubsets(m.lo[f], gh))
		hi := m.NonSubsets(m.Tail(f), gh)
		r = m.mk(vf, lo, hi)
	case vf < vg:
		// Sets of f containing vf cannot be subsets of any set of g
		// (none contains vf), so they all survive.
		r = m.mk(vf, m.NonSubsets(m.lo[f], g), m.Tail(f))
	default: // vg < vf
		r = m.Intersect(m.NonSubsets(f, m.lo[g]), m.NonSubsets(f, m.Tail(g)))
	}
	m.cachePut(opNonSub, f, g, r)
	return r
}

// Maximal returns the sets of f contained in no other set of f: the
// maximal elements of the family under inclusion (the dual of
// Minimal).
func (m *Manager) Maximal(f Node) Node {
	if f <= Base {
		return f
	}
	if r, ok := m.cacheGet(opMaximal, f, Empty); ok {
		return r
	}
	lo := m.Maximal(m.lo[f])
	hi := m.Maximal(m.Tail(f))
	// A set without v is maximal only if it is not a subset of a
	// maximal set containing v.
	lo = m.NonSubsets(lo, hi)
	r := m.mk(m.topVar(f), lo, hi)
	m.cachePut(opMaximal, f, Empty, r)
	return r
}

// Singletons returns the subfamily of f consisting of its one-element
// sets.  On a covering matrix these identify essential columns.
func (m *Manager) Singletons(f Node) Node {
	if f <= Base {
		return Empty
	}
	if r, ok := m.cacheGet(opSingletons, f, Empty); ok {
		return r
	}
	// A chain of length > 1 puts ≥ 2 elements in every hi-side set, so
	// only single-variable chains can contribute a singleton.
	hi := Empty
	if m.clen[f] == 1 && m.hasEmptySet(m.hi[f]) {
		hi = Base
	}
	r := m.mk(m.topVar(f), m.Singletons(m.lo[f]), hi)
	m.cachePut(opSingletons, f, Empty, r)
	return r
}
