package zdd

import (
	"math/rand"
	"reflect"
	"testing"
)

// familySets enumerates f as a sorted slice of sorted sets, the
// canonical semantic snapshot used to compare families across sweeps.
func familySets(m *Manager, f Node) [][]int {
	var out [][]int
	m.Enumerate(f, func(set []int) bool {
		out = append(out, append([]int(nil), set...))
		return true
	})
	return out
}

func randSet(rng *rand.Rand, universe int) []int {
	n := 1 + rng.Intn(5)
	s := make([]int, 0, n)
	for len(s) < n {
		s = append(s, rng.Intn(universe))
	}
	return s
}

// TestCollectPreservesFamilies drives random operation sequences with
// interleaved sweeps: after every Collect the registered families must
// enumerate to exactly the sets they held before, LiveNodeCount must
// never exceed NodeCount, and later operations (running against the
// rebuilt unique table and the invalidated caches) must keep producing
// correct results.  It runs on both engines — the sweep has to compact
// the chain pool correctly on top of the node store.
func TestCollectPreservesFamilies(t *testing.T) {
	t.Run("chain", func(t *testing.T) { testCollectPreservesFamilies(t, New) })
	t.Run("plain", func(t *testing.T) { testCollectPreservesFamilies(t, NewPlain) })
}

func testCollectPreservesFamilies(t *testing.T, mk func() *Manager) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		m := mk()
		f, g := Empty, Empty
		m.AddRoot(&f)
		m.AddRoot(&g)
		for step := 0; step < 60; step++ {
			s, err := m.Set(randSet(rng, 40))
			if err != nil {
				t.Fatal(err)
			}
			switch rng.Intn(6) {
			case 0:
				f = m.Union(f, s)
			case 1:
				g = m.Union(g, s)
			case 2:
				f = m.Minimal(m.Union(f, s))
			case 3:
				g = m.Diff(g, s)
			case 4:
				f = m.Subset0(f, rng.Intn(40))
			case 5:
				f = m.Union(f, m.Intersect(g, s))
			}
			if rng.Intn(4) != 0 {
				continue
			}
			// Sweep and verify semantics survive the compaction.
			before := familySets(m, f)
			beforeG := familySets(m, g)
			nodesBefore := m.NodeCount()
			live := m.LiveNodeCount()
			if live > nodesBefore {
				t.Fatalf("trial %d step %d: LiveNodeCount %d > NodeCount %d", trial, step, live, nodesBefore)
			}
			freed := m.Collect()
			if got := m.NodeCount(); got != nodesBefore-freed {
				t.Fatalf("trial %d step %d: Collect freed %d but store went %d -> %d",
					trial, step, freed, nodesBefore, got)
			}
			if got := m.NodeCount(); got != live {
				t.Fatalf("trial %d step %d: post-sweep store %d != pre-sweep live %d", trial, step, got, live)
			}
			if m.PeakNodeCount() < nodesBefore {
				t.Fatalf("trial %d step %d: peak %d below pre-sweep store %d",
					trial, step, m.PeakNodeCount(), nodesBefore)
			}
			if after := familySets(m, f); !reflect.DeepEqual(after, before) {
				t.Fatalf("trial %d step %d: f changed across Collect:\nbefore %v\nafter  %v",
					trial, step, before, after)
			}
			if after := familySets(m, g); !reflect.DeepEqual(after, beforeG) {
				t.Fatalf("trial %d step %d: g changed across Collect:\nbefore %v\nafter  %v",
					trial, step, beforeG, after)
			}
			checkStoreInvariants(t, m)
		}
		// Cross-check against a sweep-free replay of the same families.
		ref := mk()
		rf, rErr := refRebuild(ref, familySets(m, f))
		if rErr != nil {
			t.Fatal(rErr)
		}
		if !reflect.DeepEqual(familySets(ref, rf), familySets(m, f)) {
			t.Fatalf("trial %d: final family differs from sweep-free rebuild", trial)
		}
	}
}

func refRebuild(m *Manager, sets [][]int) (Node, error) {
	f := Empty
	for _, s := range sets {
		n, err := m.Set(s)
		if err != nil {
			return Empty, err
		}
		f = m.Union(f, n)
	}
	return f, nil
}

// TestCollectRebuildsUniqueTable: hash-consing must still canonicalise
// after a sweep — building an already-live set must return the
// existing node, not a duplicate.
func TestCollectRebuildsUniqueTable(t *testing.T) {
	m := New()
	f := Empty
	m.AddRoot(&f)
	for i := 0; i < 50; i++ {
		s, _ := m.Set([]int{i, i + 1, i + 2})
		f = m.Union(f, s)
	}
	// Strand garbage, then sweep.
	for i := 0; i < 50; i++ {
		s, _ := m.Set([]int{i + 100})
		m.Union(f, s)
	}
	if m.Collect() == 0 {
		t.Fatal("expected garbage to be freed")
	}
	s, _ := m.Set([]int{10, 11, 12})
	if !m.Member(f, []int{10, 11, 12}) {
		t.Fatal("family lost a member across Collect")
	}
	// Hash-consing must canonicalise against the rebuilt table: the
	// same set built again is the same node, with no fresh allocation.
	n := m.NodeCount()
	s2, _ := m.Set([]int{10, 11, 12})
	if s2 != s || m.NodeCount() != n {
		t.Fatalf("unique table broken after sweep: rebuilt node %d vs %d, %d fresh nodes",
			s2, s, m.NodeCount()-n)
	}
	if m.Intersect(f, s) != s {
		t.Fatal("intersection with a member set is not the set itself")
	}
}

// TestCollectRewritesRoots: ids are renumbered by compaction, so the
// registered pointers must be rewritten to the surviving node.
func TestCollectRewritesRoots(t *testing.T) {
	m := New()
	// Strand a pile of garbage below the root so the root's id moves.
	for i := 0; i < 200; i++ {
		if _, err := m.Set([]int{i, i + 7, i + 19}); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := m.Set([]int{3, 5, 9})
	m.AddRoot(&f)
	want := familySets(m, f)
	if m.Collect() == 0 {
		t.Fatal("expected garbage to be freed")
	}
	if got := familySets(m, f); !reflect.DeepEqual(got, want) {
		t.Fatalf("root not rewritten: got %v want %v", got, want)
	}
	// A removed root's referent becomes garbage on the next sweep.
	g, _ := m.Set([]int{30, 31})
	m.AddRoot(&g)
	m.RemoveRoot(&g)
	n := m.NodeCount()
	if m.Collect() == 0 || m.NodeCount() >= n {
		t.Fatal("unregistered family survived the sweep")
	}
}

// TestLiveNodeCountTracksRoots: with no roots only the terminals are
// live; adding and removing roots moves the count.  A 3-element set is
// three plain nodes but a single chain node — the difference is the
// whole point of the representation.
func TestLiveNodeCountTracksRoots(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Manager
		want int
	}{
		{"chain", New, 3},
		{"plain", NewPlain, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mk()
			f, _ := m.Set([]int{1, 2, 3})
			if got := m.LiveNodeCount(); got != 2 {
				t.Fatalf("no roots: live = %d, want 2 (terminals)", got)
			}
			m.AddRoot(&f)
			if got := m.LiveNodeCount(); got != tc.want {
				t.Fatalf("one 3-element set: live = %d, want %d", got, tc.want)
			}
			if nodes, plain := m.LiveProfile(); nodes != tc.want || plain != 5 {
				t.Fatalf("LiveProfile = (%d, %d), want (%d, 5)", nodes, plain, tc.want)
			}
			if m.LiveNodeCount() > m.NodeCount() {
				t.Fatal("live exceeds store")
			}
			m.RemoveRoot(&f)
			if got := m.LiveNodeCount(); got != 2 {
				t.Fatalf("after RemoveRoot: live = %d, want 2", got)
			}
		})
	}
}

// TestCollectNodeLimitInteraction: a sweep must make room under a node
// limit — after collecting, allocations that would have tripped the
// cap succeed again.
func TestCollectNodeLimitInteraction(t *testing.T) {
	m := New()
	f := Empty
	m.AddRoot(&f)
	s, _ := m.Set([]int{1, 2})
	f = s
	// Fill the store with garbage chains.
	for i := 0; i < 300; i++ {
		if _, err := m.Set([]int{i, i + 1, i + 2}); err != nil {
			t.Fatal(err)
		}
	}
	m.SetNodeLimit(m.NodeCount() + 1)
	func() {
		defer func() {
			if recover() != ErrNodeLimit {
				t.Fatal("expected ErrNodeLimit")
			}
		}()
		for i := 0; i < 10; i++ {
			m.Set([]int{1000 + i, 2000 + i})
		}
		t.Fatal("limit never tripped")
	}()
	if m.Collect() == 0 {
		t.Fatal("no garbage reclaimed")
	}
	// Room again: the same allocations now fit.
	for i := 0; i < 10; i++ {
		if _, err := m.Set([]int{1000 + i, 2000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Member(f, []int{1, 2}) {
		t.Fatal("root family damaged")
	}
}

// TestAddRootDuplicatePanics documents the double-registration guard.
func TestAddRootDuplicatePanics(t *testing.T) {
	m := New()
	f := Empty
	m.AddRoot(&f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate AddRoot")
		}
	}()
	m.AddRoot(&f)
}
