package zdd

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model is a brute-force reference implementation: a family of sets,
// each set encoded canonically as a sorted comma string.
type model map[string]struct{}

func keyOf(set []int) string {
	s := append([]int(nil), set...)
	sort.Ints(s)
	out := ""
	for i, e := range s {
		if i > 0 && s[i-1] == e {
			continue
		}
		out += fmt.Sprintf("%d,", e)
	}
	return out
}

func setOf(key string) []int {
	var set []int
	n := 0
	has := false
	for i := 0; i < len(key); i++ {
		if key[i] == ',' {
			set = append(set, n)
			n = 0
			has = false
		} else {
			n = n*10 + int(key[i]-'0')
			has = true
		}
	}
	_ = has
	return set
}

func (a model) union(b model) model {
	r := model{}
	for k := range a {
		r[k] = struct{}{}
	}
	for k := range b {
		r[k] = struct{}{}
	}
	return r
}

func (a model) intersect(b model) model {
	r := model{}
	for k := range a {
		if _, ok := b[k]; ok {
			r[k] = struct{}{}
		}
	}
	return r
}

func (a model) diff(b model) model {
	r := model{}
	for k := range a {
		if _, ok := b[k]; !ok {
			r[k] = struct{}{}
		}
	}
	return r
}

func contains(set []int, v int) bool {
	for _, e := range set {
		if e == v {
			return true
		}
	}
	return false
}

func subsetOf(a, b []int) bool { // a ⊆ b
	for _, e := range a {
		if !contains(b, e) {
			return false
		}
	}
	return true
}

func (a model) subset0(v int) model {
	r := model{}
	for k := range a {
		if !contains(setOf(k), v) {
			r[k] = struct{}{}
		}
	}
	return r
}

func (a model) subset1(v int) model {
	r := model{}
	for k := range a {
		set := setOf(k)
		if contains(set, v) {
			var rest []int
			for _, e := range set {
				if e != v {
					rest = append(rest, e)
				}
			}
			r[keyOf(rest)] = struct{}{}
		}
	}
	return r
}

func (a model) minimal() model {
	r := model{}
	for k := range a {
		sk := setOf(k)
		min := true
		for k2 := range a {
			if k2 != k && subsetOf(setOf(k2), sk) {
				min = false
				break
			}
		}
		if min {
			r[k] = struct{}{}
		}
	}
	return r
}

func (a model) nonSupersets(b model) model {
	r := model{}
	for k := range a {
		sk := setOf(k)
		bad := false
		for k2 := range b {
			if subsetOf(setOf(k2), sk) {
				bad = true
				break
			}
		}
		if !bad {
			r[k] = struct{}{}
		}
	}
	return r
}

// build loads a model into a manager.
func build(m *Manager, a model) Node {
	f := Empty
	for k := range a {
		f = m.Union(f, mustSet(m, setOf(k)))
	}
	return f
}

// extract reads a ZDD back into a model.
func extract(m *Manager, f Node) model {
	r := model{}
	m.Enumerate(f, func(set []int) bool {
		r[keyOf(set)] = struct{}{}
		return true
	})
	return r
}

func equalModels(a, b model) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func randomModel(rng *rand.Rand, universe, maxSets int) model {
	a := model{}
	n := rng.Intn(maxSets + 1)
	for i := 0; i < n; i++ {
		var set []int
		for v := 0; v < universe; v++ {
			if rng.Intn(3) == 0 {
				set = append(set, v)
			}
		}
		a[keyOf(set)] = struct{}{}
	}
	return a
}

func TestTerminals(t *testing.T) {
	m := New()
	if m.Count(Empty) != 0 || m.Count(Base) != 1 {
		t.Fatal("terminal counts wrong")
	}
	if !m.HasEmptySet(Base) || m.HasEmptySet(Empty) {
		t.Fatal("HasEmptySet on terminals wrong")
	}
	if m.Union(Empty, Base) != Base || m.Intersect(Base, Empty) != Empty {
		t.Fatal("terminal ops wrong")
	}
}

func TestSetAndMember(t *testing.T) {
	m := New()
	f := mustSet(m, []int{3, 1, 2, 1}) // unsorted with duplicate
	if m.Count(f) != 1 {
		t.Fatal("Set should contain one set")
	}
	if !m.Member(f, []int{1, 2, 3}) {
		t.Fatal("member lookup failed")
	}
	if m.Member(f, []int{1, 2}) || m.Member(f, []int{1, 2, 3, 4}) {
		t.Fatal("false member")
	}
	g := mustSet(m, []int{1, 2, 3})
	if f != g {
		t.Fatal("canonicity violated: same set, different nodes")
	}
}

func TestCanonicity(t *testing.T) {
	m := New()
	// Build {{0,1},{2}} in two different insertion orders.
	f := m.Union(mustSet(m, []int{0, 1}), mustSet(m, []int{2}))
	g := m.Union(mustSet(m, []int{2}), mustSet(m, []int{0, 1}))
	if f != g {
		t.Fatal("union canonicity violated")
	}
}

func TestOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New()
	for trial := 0; trial < 300; trial++ {
		u := 1 + rng.Intn(7)
		a := randomModel(rng, u, 8)
		b := randomModel(rng, u, 8)
		fa, fb := build(m, a), build(m, b)
		check := func(name string, got Node, want model) {
			t.Helper()
			if !equalModels(extract(m, got), want) {
				t.Fatalf("trial %d: %s mismatch\n got %v\nwant %v\n a=%v b=%v", trial, name, extract(m, got), want, a, b)
			}
		}
		check("union", m.Union(fa, fb), a.union(b))
		check("intersect", m.Intersect(fa, fb), a.intersect(b))
		check("diff", m.Diff(fa, fb), a.diff(b))
		v := rng.Intn(u)
		check("subset0", m.Subset0(fa, v), a.subset0(v))
		check("subset1", m.Subset1(fa, v), a.subset1(v))
		check("minimal", m.Minimal(fa), a.minimal())
		check("nonsup", m.NonSupersets(fa, fb), a.nonSupersets(b))
		if m.Count(fa) != uint64(len(a)) {
			t.Fatalf("trial %d: count %d want %d", trial, m.Count(fa), len(a))
		}
		if m.HasEmptySet(fa) != func() bool { _, ok := a[""]; return ok }() {
			t.Fatalf("trial %d: HasEmptySet mismatch", trial)
		}
	}
}

func TestSingletons(t *testing.T) {
	m := New()
	f := Empty
	for _, s := range [][]int{{1}, {4}, {1, 2}, {2, 3}, {}} {
		f = m.Union(f, mustSet(m, s))
	}
	s := m.Singletons(f)
	got := extract(m, s)
	want := model{keyOf([]int{1}): {}, keyOf([]int{4}): {}}
	if !equalModels(got, want) {
		t.Fatalf("singletons = %v, want %v", got, want)
	}
}

func TestSupport(t *testing.T) {
	m := New()
	f := m.Union(mustSet(m, []int{5, 9}), mustSet(m, []int{2}))
	got := m.Support(f)
	want := []int{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	m := New()
	f := Empty
	for i := 0; i < 10; i++ {
		f = m.Union(f, mustSet(m, []int{i}))
	}
	n := 0
	m.Enumerate(f, func([]int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d sets", n)
	}
}

func TestRemove(t *testing.T) {
	m := New()
	f := m.Union(mustSet(m, []int{1, 2}), mustSet(m, []int{2, 3}))
	g := m.Remove(f, 2)
	got := extract(m, g)
	want := model{keyOf([]int{1}): {}, keyOf([]int{3}): {}}
	if !equalModels(got, want) {
		t.Fatalf("remove = %v", got)
	}
	// Removing the sole element of a singleton yields the empty set.
	h := m.Remove(mustSet(m, []int{4}), 4)
	if h != Base {
		t.Fatal("removing single element should give {∅}")
	}
}

// TestQuickUnionProperties checks algebraic laws of Union/Intersect
// with testing/quick-generated inputs.
func TestQuickUnionProperties(t *testing.T) {
	m := New()
	toFamily := func(raw [][]uint8) Node {
		f := Empty
		for _, set := range raw {
			elems := make([]int, 0, len(set))
			for _, e := range set {
				elems = append(elems, int(e%12))
			}
			f = m.Union(f, mustSet(m, elems))
		}
		return f
	}
	law := func(ra, rb, rc [][]uint8) bool {
		a, b, c := toFamily(ra), toFamily(rb), toFamily(rc)
		if m.Union(a, b) != m.Union(b, a) {
			return false
		}
		if m.Union(a, m.Union(b, c)) != m.Union(m.Union(a, b), c) {
			return false
		}
		if m.Union(a, a) != a || m.Intersect(a, a) != a {
			return false
		}
		// Distributivity: a ∩ (b ∪ c) == (a∩b) ∪ (a∩c)
		if m.Intersect(a, m.Union(b, c)) != m.Union(m.Intersect(a, b), m.Intersect(a, c)) {
			return false
		}
		// Diff identity: (a \ b) ∪ (a ∩ b) == a
		if m.Union(m.Diff(a, b), m.Intersect(a, b)) != a {
			return false
		}
		return true
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinimalProperties: Minimal is idempotent and a subset of
// its input; NonSupersets(f, f) keeps nothing.
func TestQuickMinimalProperties(t *testing.T) {
	m := New()
	prop := func(raw [][]uint8) bool {
		f := Empty
		for _, set := range raw {
			elems := make([]int, 0, len(set))
			for _, e := range set {
				elems = append(elems, int(e%10))
			}
			f = m.Union(f, mustSet(m, elems))
		}
		min := m.Minimal(f)
		if m.Minimal(min) != min {
			return false
		}
		if m.Diff(min, f) != Empty {
			return false
		}
		if f != Empty && min == Empty {
			return false // a non-empty family has at least one minimal set
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCountGrowth(t *testing.T) {
	m := New()
	start := m.NodeCount()
	f := Empty
	for i := 0; i < 50; i++ {
		f = m.Union(f, mustSet(m, []int{i, i + 1}))
	}
	if m.NodeCount() <= start {
		t.Fatal("no nodes allocated")
	}
	if m.Count(f) != 50 {
		t.Fatalf("count = %d", m.Count(f))
	}
}

func (a model) maximal() model {
	r := model{}
	for k := range a {
		sk := setOf(k)
		max := true
		for k2 := range a {
			if k2 != k && subsetOf(sk, setOf(k2)) {
				max = false
				break
			}
		}
		if max {
			r[k] = struct{}{}
		}
	}
	return r
}

func (a model) nonSubsets(b model) model {
	r := model{}
	for k := range a {
		sk := setOf(k)
		bad := false
		for k2 := range b {
			if subsetOf(sk, setOf(k2)) {
				bad = true
				break
			}
		}
		if !bad {
			r[k] = struct{}{}
		}
	}
	return r
}

func TestMaximalAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := New()
	for trial := 0; trial < 300; trial++ {
		u := 1 + rng.Intn(7)
		a := randomModel(rng, u, 8)
		b := randomModel(rng, u, 8)
		fa, fb := build(m, a), build(m, b)
		if got := extract(m, m.Maximal(fa)); !equalModels(got, a.maximal()) {
			t.Fatalf("trial %d: maximal mismatch\n got %v\nwant %v\n a=%v", trial, got, a.maximal(), a)
		}
		if got := extract(m, m.NonSubsets(fa, fb)); !equalModels(got, a.nonSubsets(b)) {
			t.Fatalf("trial %d: nonsubsets mismatch\n got %v\nwant %v\n a=%v b=%v", trial, got, a.nonSubsets(b), a, b)
		}
	}
}

func TestMinimalMaximalDuality(t *testing.T) {
	m := New()
	f := Empty
	for _, s := range [][]int{{1}, {1, 2}, {1, 2, 3}, {4}, {2, 3}} {
		f = m.Union(f, mustSet(m, s))
	}
	min := extract(m, m.Minimal(f))
	max := extract(m, m.Maximal(f))
	wantMin := model{keyOf([]int{1}): {}, keyOf([]int{4}): {}, keyOf([]int{2, 3}): {}}
	wantMax := model{keyOf([]int{1, 2, 3}): {}, keyOf([]int{4}): {}}
	if !equalModels(min, wantMin) {
		t.Fatalf("minimal = %v", min)
	}
	if !equalModels(max, wantMax) {
		t.Fatalf("maximal = %v", max)
	}
}

// mustSet builds the set ZDD for elems; test inputs are always valid,
// so the validation error is fatal.
func mustSet(m *Manager, elems []int) Node {
	n, err := m.Set(elems)
	if err != nil {
		panic(err)
	}
	return n
}

func TestSetRejectsNegativeElement(t *testing.T) {
	m := New()
	if _, err := m.Set([]int{2, -1, 3}); err == nil {
		t.Fatal("Set accepted a negative element")
	}
}
