package zdd

import (
	"reflect"
	"testing"
)

// FuzzZDDChain drives a byte-coded operation sequence against the
// chain-reduced manager and the plain reference manager in lockstep.
// After every operation the two engines must agree op-for-op on
// Count, the full enumeration, emptiness and support — any divergence
// is a chain-reduction bug.  Periodic Collects on both sides exercise
// the pool-compacting sweep mid-sequence.
func FuzzZDDChain(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x15, 0x28, 0x3b, 0x4e, 0x61, 0x74, 0x87, 0x9a})
	f.Add([]byte{0x70, 0x70, 0x05, 0x16, 0x27, 0x38, 0x49, 0x5a, 0x6b, 0x7c, 0x8d, 0x9e, 0xaf})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x42, 0x42, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		mc, mp := New(), NewPlain()
		fc, fp := Empty, Empty
		gc, gp := Empty, Empty
		mc.AddRoot(&fc)
		mc.AddRoot(&gc)
		mp.AddRoot(&fp)
		mp.AddRoot(&gp)
		pos := 0
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := int(data[pos])
			pos++
			return b
		}
		for pos < len(data) {
			op := next()
			switch op % 12 {
			case 0, 1: // build a set from the next few bytes and union it in
				n := 1 + op%5
				elems := make([]int, 0, n)
				for i := 0; i < n; i++ {
					elems = append(elems, next()%48)
				}
				sc, err := mc.Set(elems)
				if err != nil {
					t.Fatal(err)
				}
				sp, _ := mp.Set(elems)
				fc, fp = mc.Union(fc, sc), mp.Union(fp, sp)
			case 2: // swap targets
				fc, gc = gc, fc
				fp, gp = gp, fp
			case 3:
				fc, fp = mc.Intersect(fc, gc), mp.Intersect(fp, gp)
			case 4:
				fc, fp = mc.Diff(fc, gc), mp.Diff(fp, gp)
			case 5:
				v := next() % 48
				fc, fp = mc.Subset0(fc, v), mp.Subset0(fp, v)
			case 6:
				v := next() % 48
				fc, fp = mc.Subset1(fc, v), mp.Subset1(fp, v)
			case 7:
				v := next() % 48
				fc, fp = mc.Remove(fc, v), mp.Remove(fp, v)
			case 8:
				fc, fp = mc.Minimal(fc), mp.Minimal(fp)
			case 9:
				fc, fp = mc.Maximal(fc), mp.Maximal(fp)
			case 10:
				fc, fp = mc.NonSupersets(fc, gc), mp.NonSupersets(fp, gp)
			case 11:
				fc, fp = mc.Singletons(fc), mp.Singletons(fp)
			}
			if op%7 == 0 {
				mc.Collect()
				mp.Collect()
			}
			if cc, cp := mc.Count(fc), mp.Count(fp); cc != cp {
				t.Fatalf("Count diverges after op %d: chain %d, plain %d", op%12, cc, cp)
			}
			if hc, hp := mc.HasEmptySet(fc), mp.HasEmptySet(fp); hc != hp {
				t.Fatalf("HasEmptySet diverges after op %d", op%12)
			}
			if sc, sp := familySets(mc, fc), familySets(mp, fp); !reflect.DeepEqual(sc, sp) {
				t.Fatalf("families diverge after op %d:\nchain %v\nplain %v", op%12, sc, sp)
			}
			if sc, sp := mc.Support(fc), mp.Support(fp); !reflect.DeepEqual(sc, sp) {
				t.Fatalf("Support diverges after op %d: %v vs %v", op%12, sc, sp)
			}
		}
	})
}
