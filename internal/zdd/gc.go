package zdd

// Garbage collection.
//
// The node store is append-only between collections: operations
// hash-cons every intermediate result, so long reduction runs strand
// large amounts of dead nodes behind the live families.  A collection
// reclaims everything unreachable from the registered roots.
//
// Protocol: register every family that must survive with AddRoot
// (passing a *Node, because compaction renumbers ids and the collector
// rewrites the roots in place), call Collect only between operations —
// node ids held on the Go stack by an operation in flight are
// invisible to the collector — and treat every unregistered Node as
// invalidated by the sweep.
//
// Chain reduction adds one asset to sweep: the chain pool.  Live
// chains are compacted into a fresh pool in node order (the old and
// new pools double-buffer across collections), so dead chains stop
// holding pool memory; a Tail residual consed after the sweep simply
// copies its suffix again.

// beginVisit opens a traversal epoch: it grows the stamp slice to the
// node store and bumps the epoch counter, which invalidates every
// stamp of earlier traversals in O(1).  On (rare) epoch wraparound the
// stamps are cleared so a stale stamp can never alias the new epoch.
func (m *Manager) beginVisit() {
	if len(m.vstamp) < len(m.top) {
		m.vstamp = append(m.vstamp, make([]int32, len(m.top)-len(m.vstamp))...)
	}
	m.vepoch++
	if m.vepoch <= 0 {
		for i := range m.vstamp {
			m.vstamp[i] = 0
		}
		m.vepoch = 1
	}
}

// AddRoot registers *f as an external GC root: the family *f (at the
// time of a future Collect) survives collections and *f is rewritten
// to the node's post-compaction id.  The same pointer may be
// registered once; AddRoot panics on re-registration to catch
// double-add bugs early.
func (m *Manager) AddRoot(f *Node) {
	for _, r := range m.roots {
		if r == f {
			panic("zdd: AddRoot: pointer already registered")
		}
	}
	m.roots = append(m.roots, f)
}

// RemoveRoot unregisters a pointer previously passed to AddRoot.  It
// is a no-op when the pointer is not registered.
func (m *Manager) RemoveRoot(f *Node) {
	for i, r := range m.roots {
		if r == f {
			m.roots = append(m.roots[:i], m.roots[i+1:]...)
			return
		}
	}
}

// markLive stamps every node reachable from the registered roots with
// the current epoch (the caller opens it) and returns the live node
// count, terminals included.
func (m *Manager) markLive() int {
	live := 2
	var mark func(Node)
	mark = func(n Node) {
		for n > Base && m.vstamp[n] != m.vepoch {
			m.vstamp[n] = m.vepoch
			live++
			mark(m.hi[n])
			n = m.lo[n]
		}
	}
	for _, r := range m.roots {
		mark(*r)
	}
	return live
}

// LiveNodeCount returns the number of nodes reachable from the
// registered roots, terminals included — the store size a Collect
// would compact to.  NodeCount, by contrast, counts every node ever
// allocated since the last collection; budgeting against LiveNodeCount
// lets a node cap measure the working set instead of the history.
func (m *Manager) LiveNodeCount() int {
	m.beginVisit()
	return m.markLive()
}

// PeakNodeCount returns the high-water node store size over the
// manager's lifetime; collections do not lower it.
func (m *Manager) PeakNodeCount() int { return m.peak }

// LiveProfile returns the live node count (exactly LiveNodeCount) and
// the plain-equivalent node count: the store a chain-free ZDD would
// need for the same families, counted as the total chain length over
// the live nodes plus the terminals.  The ratio plain/nodes is the
// chain-compression factor the stats surfaces report.  (Tail sharing
// in a plain manager can make its true store slightly smaller than
// plain, so treat the ratio as the storage win of absorption, not a
// bit-exact cross-engine node count.)
func (m *Manager) LiveProfile() (nodes, plain int) {
	m.beginVisit()
	nodes, plain = 2, 2
	var walk func(Node)
	walk = func(n Node) {
		for n > Base && m.vstamp[n] != m.vepoch {
			m.vstamp[n] = m.vepoch
			nodes++
			plain += int(m.clen[n])
			walk(m.hi[n])
			n = m.lo[n]
		}
	}
	for _, r := range m.roots {
		walk(*r)
	}
	return nodes, plain
}

// Collect reclaims every node unreachable from the registered roots
// and returns how many it freed.  The surviving nodes are compacted to
// the low ids (children always precede parents, so one in-order pass
// remaps lo/hi), their chains are compacted into a fresh pool, the
// unique table is rebuilt over the compacted store, the computed and
// count caches are invalidated — their keys embed pre-sweep ids — and
// each registered root is rewritten to its new id.  Every Node value
// not covered by a registered root is dangling after Collect returns
// and must not be used.
func (m *Manager) Collect() int {
	n := len(m.top)
	m.beginVisit()
	live := m.markLive()
	if live == n {
		return 0
	}
	// Sweep: compact stores in id order, remapping through gcMap.
	if cap(m.gcMap) < n {
		m.gcMap = make([]Node, n)
	}
	remap := m.gcMap[:n]
	remap[0], remap[1] = Empty, Base
	// The compacted pool never exceeds the old one; presizing the swap
	// buffer keeps the rebuild to zero append growth.
	if cap(m.poolSwap) < len(m.cpool) {
		m.poolSwap = make([]int32, 0, len(m.cpool))
	}
	npool := m.poolSwap[:0]
	w := 2
	for i := 2; i < n; i++ {
		if m.vstamp[i] != m.vepoch {
			continue
		}
		remap[i] = Node(w)
		m.top[w] = m.top[i]
		if k := m.clen[i]; k > 1 {
			off := int32(len(npool))
			npool = append(npool, m.cpool[m.coff[i]:m.coff[i]+k-1]...)
			m.coff[w] = off
		} else {
			m.coff[w] = 0
		}
		m.clen[w] = m.clen[i]
		m.lo[w] = remap[m.lo[i]]
		m.hi[w] = remap[m.hi[i]]
		w++
	}
	m.top = m.top[:w]
	m.coff = m.coff[:w]
	m.clen = m.clen[:w]
	m.lo = m.lo[:w]
	m.hi = m.hi[:w]
	m.poolSwap = m.cpool
	m.cpool = npool
	// Stamps refer to pre-sweep ids; the next beginVisit re-arms them.
	m.vstamp = m.vstamp[:w]
	// Rebuild the unique table at the load factor cons maintains.
	size := uint32(1024)
	for size*3 < uint32(w)*4 {
		size *= 2
	}
	if uint32(cap(m.uslots)) >= size {
		m.uslots = m.uslots[:size]
		for i := range m.uslots {
			m.uslots[i] = 0
		}
	} else {
		m.uslots = make([]int32, size)
	}
	m.umask = size - 1
	for i := 2; i < w; i++ {
		idx := m.uniqueHash(m.top[i], m.restOf(Node(i)), m.lo[i], m.hi[i]) & m.umask
		for m.uslots[idx] != 0 {
			idx = (idx + 1) & m.umask
		}
		m.uslots[idx] = int32(i) + 1
	}
	// Invalidate the computed and count caches: zeroed keys can never
	// match (operation codes start at 1; Count never caches terminals).
	for i := range m.ckeys {
		m.ckeys[i] = 0
	}
	for i := range m.nkeys {
		m.nkeys[i] = 0
	}
	for _, r := range m.roots {
		*r = remap[*r]
	}
	return n - w
}
