package zdd

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkStoreInvariants walks the whole node store and asserts the
// structural invariants of the chain representation: chains are
// strictly ascending and fit the pool, zero-suppression holds
// (hi != Empty), and in chain mode no node has a pure hi-child (the
// canonical maximal-chain rule mk's absorption maintains).
func checkStoreInvariants(t *testing.T, m *Manager) {
	t.Helper()
	for n := Node(2); int(n) < m.NodeCount(); n++ {
		k := int(m.clen[n])
		if k < 1 {
			t.Fatalf("node %d: chain length %d", n, k)
		}
		if k > 1 {
			off, end := int(m.coff[n]), int(m.coff[n])+k-1
			if off < 0 || end > len(m.cpool) {
				t.Fatalf("node %d: chain [%d:%d) outside pool of %d", n, off, end, len(m.cpool))
			}
		}
		prev := int32(-1)
		for i := 0; i < k; i++ {
			v := m.chainVar(n, i)
			if v <= prev {
				t.Fatalf("node %d: chain not strictly ascending at %d: %d after %d", n, i, v, prev)
			}
			prev = v
		}
		if m.hi[n] == Empty {
			t.Fatalf("node %d: zero-suppression violated (hi = Empty)", n)
		}
		if hi := m.hi[n]; hi > Base {
			if m.top[hi] <= prev {
				t.Fatalf("node %d: hi top %d not above chain end %d", n, m.top[hi], prev)
			}
			if m.chain && m.lo[hi] == Empty {
				t.Fatalf("node %d: pure hi-child %d not absorbed", n, hi)
			}
		}
		if lo := m.lo[n]; lo > Base && m.top[lo] <= m.top[n] {
			t.Fatalf("node %d: lo top %d not above node top %d", n, m.top[lo], m.top[n])
		}
		if !m.chain && k != 1 {
			t.Fatalf("node %d: plain manager stored a chain of length %d", n, k)
		}
	}
}

// TestChainSingleSet: one k-element set is one chain node.
func TestChainSingleSet(t *testing.T) {
	m := New()
	f, err := m.Set([]int{4, 9, 2, 17, 30})
	if err != nil {
		t.Fatal(err)
	}
	if m.NodeCount() != 3 {
		t.Fatalf("5-element set: store = %d nodes, want 3 (terminals + 1 chain)", m.NodeCount())
	}
	if got := m.ChainLen(f); got != 5 {
		t.Fatalf("ChainLen = %d, want 5", got)
	}
	if got := m.AppendChain(nil, f); !reflect.DeepEqual(got, []int{2, 4, 9, 17, 30}) {
		t.Fatalf("AppendChain = %v", got)
	}
	if m.Var(f) != 2 {
		t.Fatalf("Var = %d, want 2", m.Var(f))
	}
	if n := m.Count(f); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
	if !m.Member(f, []int{30, 2, 9, 4, 17}) {
		t.Fatal("Member lost the set")
	}
	if m.Member(f, []int{2, 4, 9, 17}) || m.Member(f, []int{2, 4, 9, 17, 30, 31}) {
		t.Fatal("Member accepted a proper subset or superset")
	}
	checkStoreInvariants(t, m)
}

// TestChainAbsorption: operation results re-form maximal chains — a
// family rebuilt by ops has the same compressed shape as one built
// directly from Set.
func TestChainAbsorption(t *testing.T) {
	m := New()
	a, _ := m.Set([]int{1, 3, 5, 7})
	b, _ := m.Set([]int{1, 3, 5, 7, 9})
	u := m.Union(a, b)
	// {1,3,5,7} and {1,3,5,7,9}: one chain (1,3,5,7) whose hi branches
	// to Base and to the absorbed (9) chain.
	if got := m.ChainLen(u); got != 4 {
		t.Fatalf("union top chain = %d vars, want 4", got)
	}
	// Dropping 9 from every set must give back exactly node a (equal
	// ids ⇔ equal families: the fixpoint tests depend on this).
	if r := m.Remove(u, 9); r != a {
		t.Fatalf("Remove(u, 9) = %d, want %d", r, a)
	}
	// Subset1 through a chain interior variable splits the chain.
	s := m.Subset1(u, 5)
	want := [][]int{{1, 3, 7}, {1, 3, 7, 9}}
	if got := familySets(m, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("Subset1(u, 5) = %v, want %v", got, want)
	}
	checkStoreInvariants(t, m)
}

// TestChainVsPlainOps replays random operation sequences on a chain
// and a plain manager in lockstep and requires identical families at
// every step — Count, enumeration order and membership all agree.
func TestChainVsPlainOps(t *testing.T) {
	rng := rand.New(rand.NewSource(929))
	for trial := 0; trial < 40; trial++ {
		mc, mp := New(), NewPlain()
		fc, fp := Empty, Empty
		gc, gp := Empty, Empty
		for step := 0; step < 50; step++ {
			s := randSet(rng, 30)
			sc, err := mc.Set(s)
			if err != nil {
				t.Fatal(err)
			}
			sp, _ := mp.Set(s)
			v := rng.Intn(30)
			switch rng.Intn(10) {
			case 0:
				fc, fp = mc.Union(fc, sc), mp.Union(fp, sp)
			case 1:
				gc, gp = mc.Union(gc, sc), mp.Union(gp, sp)
			case 2:
				fc, fp = mc.Intersect(fc, gc), mp.Intersect(fp, gp)
			case 3:
				fc, fp = mc.Diff(fc, gc), mp.Diff(fp, gp)
			case 4:
				fc, fp = mc.Subset0(fc, v), mp.Subset0(fp, v)
			case 5:
				fc, fp = mc.Subset1(fc, v), mp.Subset1(fp, v)
			case 6:
				fc, fp = mc.Remove(fc, v), mp.Remove(fp, v)
			case 7:
				fc, fp = mc.Minimal(mc.Union(fc, sc)), mp.Minimal(mp.Union(fp, sp))
			case 8:
				fc, fp = mc.Maximal(mc.Union(fc, sc)), mp.Maximal(mp.Union(fp, sp))
			case 9:
				fc, fp = mc.NonSupersets(fc, gc), mp.NonSupersets(fp, gp)
			}
			if cc, cp := mc.Count(fc), mp.Count(fp); cc != cp {
				t.Fatalf("trial %d step %d: Count %d (chain) != %d (plain)", trial, step, cc, cp)
			}
			if sc, sp := familySets(mc, fc), familySets(mp, fp); !reflect.DeepEqual(sc, sp) {
				t.Fatalf("trial %d step %d: families diverge:\nchain %v\nplain %v", trial, step, sc, sp)
			}
			if sc, sp := mc.Singletons(fc), mp.Singletons(fp); !reflect.DeepEqual(familySets(mc, sc), familySets(mp, sp)) {
				t.Fatalf("trial %d step %d: Singletons diverge", trial, step)
			}
			if hc, hp := mc.HasEmptySet(fc), mp.HasEmptySet(fp); hc != hp {
				t.Fatalf("trial %d step %d: HasEmptySet %v != %v", trial, step, hc, hp)
			}
			if sc, sp := mc.Support(fc), mp.Support(fp); !reflect.DeepEqual(sc, sp) {
				t.Fatalf("trial %d step %d: Support %v != %v", trial, step, sc, sp)
			}
		}
		checkStoreInvariants(t, mc)
		checkStoreInvariants(t, mp)
	}
}

// TestChainCompressionOnRowFamily: covering-matrix-shaped families
// (many rows with long tails) must store well under the plain node
// count — this is the nodes-per-instance win the NodeCap budget sees.
func TestChainCompressionOnRowFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New()
	f := Empty
	m.AddRoot(&f)
	for r := 0; r < 120; r++ {
		row := make([]int, 0, 12)
		for len(row) < 12 {
			row = append(row, rng.Intn(200))
		}
		s, err := m.Set(row)
		if err != nil {
			t.Fatal(err)
		}
		f = m.Union(f, s)
	}
	m.Collect()
	nodes, plain := m.LiveProfile()
	if nodes*2 > plain {
		t.Fatalf("chain compression below 2x on a row family: %d chain nodes vs %d plain-equivalent", nodes, plain)
	}
	checkStoreInvariants(t, m)
}

// TestAdaptiveCacheGrowth: the computed cache starts small and scales
// with the unique table up to the fixed cap.
func TestAdaptiveCacheGrowth(t *testing.T) {
	m := New()
	if got := len(m.ckeys); got != 1<<cacheMinBits {
		t.Fatalf("fresh cache = %d entries, want %d", got, 1<<cacheMinBits)
	}
	f := Empty
	m.AddRoot(&f)
	rng := rand.New(rand.NewSource(17))
	for i := 0; len(m.ckeys) < 1<<cacheMaxBits; i++ {
		if i > 1<<22 {
			t.Fatal("cache never reached its cap")
		}
		s, err := m.Set(randSet(rng, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		f = m.Union(f, s)
	}
	if got := len(m.ckeys); got != 1<<cacheMaxBits {
		t.Fatalf("cache cap = %d entries, want %d", got, 1<<cacheMaxBits)
	}
	m.growUnique()
	if got := len(m.ckeys); got != 1<<cacheMaxBits {
		t.Fatalf("cache grew past its cap: %d entries", got)
	}
	// Operations stay correct across every resize (lossy drop only).
	if m.Member(f, nil) != m.HasEmptySet(f) {
		t.Fatal("membership inconsistent after growth")
	}
}
