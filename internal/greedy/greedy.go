// Package greedy implements the classical Chvátal greedy heuristic
// for set covering: repeatedly pick the column with the best
// cost-per-newly-covered-row ratio.  It is the baseline the paper's
// lagrangian-guided heuristic is designed to improve upon, and ships
// as an independent implementation so comparisons do not share code
// with the contribution.
package greedy

import "ucp/internal/matrix"

// Solve returns a cover of p built by Chvátal's rule, made
// irredundant, or nil when some row cannot be covered.  The H_n-factor
// approximation guarantee of Chvátal (1979) applies to the cost before
// the irredundant cleanup; the cleanup can only help.
func Solve(p *matrix.Problem) []int {
	nr := len(p.Rows)
	covered := make([]bool, nr)
	nCovered := 0
	colRows := p.ColumnRows()
	inSol := make([]bool, p.NCol)
	var sol []int
	for nCovered < nr {
		best := -1
		var bestNum, bestDen int // ratio cost/new as a fraction
		for j := 0; j < p.NCol; j++ {
			if inSol[j] {
				continue
			}
			n := 0
			for _, i := range colRows[j] {
				if !covered[i] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			// Compare cost[j]/n < bestNum/bestDen without floats.
			if best < 0 || p.Cost[j]*bestDen < bestNum*n ||
				(p.Cost[j]*bestDen == bestNum*n && n > bestDen) {
				best, bestNum, bestDen = j, p.Cost[j], n
			}
		}
		if best < 0 {
			return nil
		}
		inSol[best] = true
		sol = append(sol, best)
		for _, i := range colRows[best] {
			if !covered[i] {
				covered[i] = true
				nCovered++
			}
		}
	}
	return p.Irredundant(sol)
}
