// Package greedy implements the classical Chvátal greedy heuristic
// for set covering: repeatedly pick the column with the best
// cost-per-newly-covered-row ratio.  It is the baseline the paper's
// lagrangian-guided heuristic is designed to improve upon, and ships
// as an independent implementation so comparisons do not share code
// with the contribution.
package greedy

import (
	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// Solve returns a cover of p built by Chvátal's rule, made
// irredundant, or matrix.ErrInfeasible when some row cannot be
// covered.  The H_n-factor approximation guarantee of Chvátal (1979)
// applies to the cost before the irredundant cleanup; the cleanup can
// only help.
func Solve(p *matrix.Problem) ([]int, error) {
	sol, _, err := SolveBudget(p, nil)
	return sol, err
}

// SolveBudget is Solve under a budget.  Greedy is the bottom rung of
// the degradation ladder, so it never returns empty-handed: when the
// budget runs out mid-construction it stops ratio scanning and
// completes the cover with the cheapest column of each remaining
// uncovered row (one O(nnz) sweep), reporting interrupted = true.
// The returned cover is feasible in every case.
func SolveBudget(p *matrix.Problem, tr *budget.Tracker) (sol []int, interrupted bool, err error) {
	nr := len(p.Rows)
	covered := make([]bool, nr)
	nCovered := 0
	colRows := p.ColumnRows()
	inSol := make([]bool, p.NCol)
	for nCovered < nr {
		if tr.Interrupted() {
			interrupted = true
			break
		}
		best := -1
		var bestNum, bestDen int // ratio cost/new as a fraction
		for j := 0; j < p.NCol; j++ {
			if inSol[j] {
				continue
			}
			n := 0
			for _, i := range colRows[j] {
				if !covered[i] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			// Compare cost[j]/n < bestNum/bestDen without floats.
			if best < 0 || p.Cost[j]*bestDen < bestNum*n ||
				(p.Cost[j]*bestDen == bestNum*n && n > bestDen) {
				best, bestNum, bestDen = j, p.Cost[j], n
			}
		}
		if best < 0 {
			return nil, interrupted, matrix.ErrInfeasible
		}
		inSol[best] = true
		sol = append(sol, best)
		for _, i := range colRows[best] {
			if !covered[i] {
				covered[i] = true
				nCovered++
			}
		}
	}
	if nCovered < nr {
		// Budget ran out: finish with the cheapest column per uncovered
		// row, no ratio scan.
		for i, r := range p.Rows {
			if covered[i] {
				continue
			}
			best := -1
			for _, j := range r {
				if inSol[j] {
					best = j // already paid for: row is actually covered
					break
				}
				if best < 0 || p.Cost[j] < p.Cost[best] {
					best = j
				}
			}
			if best < 0 {
				return nil, interrupted, matrix.ErrInfeasible
			}
			if !inSol[best] {
				inSol[best] = true
				sol = append(sol, best)
			}
			for _, k := range colRows[best] {
				if !covered[k] {
					covered[k] = true
					nCovered++
				}
			}
		}
	}
	return p.Irredundant(sol), interrupted, nil
}
