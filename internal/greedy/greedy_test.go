package greedy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ucp/internal/matrix"
)

func randomProblem(rng *rand.Rand, maxRows, maxCols, maxCost int) *matrix.Problem {
	nr := 1 + rng.Intn(maxRows)
	nc := 1 + rng.Intn(maxCols)
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	return matrix.MustNew(rows, nc, cost)
}

func bruteForce(p *matrix.Problem) int {
	active := p.ActiveCols()
	best := math.MaxInt
	for mask := 0; mask < 1<<len(active); mask++ {
		var cols []int
		for b, j := range active {
			if mask>>b&1 == 1 {
				cols = append(cols, j)
			}
		}
		if p.IsCover(cols) {
			if c := p.CostOf(cols); c < best {
				best = c
			}
		}
	}
	return best
}

func TestGreedyCoversAndIsIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng, 10, 10, 4)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: greedy failed on feasible problem: %v", trial, err)
		}
		if !p.IsCover(sol) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		for k := range sol {
			rest := append(append([]int(nil), sol[:k]...), sol[k+1:]...)
			if p.IsCover(rest) {
				t.Fatalf("trial %d: redundant column", trial)
			}
		}
	}
}

func TestGreedyInfeasible(t *testing.T) {
	p := &matrix.Problem{Rows: [][]int{{}}, NCol: 1, Cost: []int{1}}
	sol, err := Solve(p)
	if !errors.Is(err, matrix.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if sol != nil {
		t.Fatal("greedy returned a cover for an uncoverable row")
	}
}

// TestGreedyApproximationRatio checks Chvátal's H_n guarantee: the
// greedy cost is at most H(max row frequency per column)·opt; we use
// the weaker but simple H(#rows) bound.
func TestGreedyApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 9, 9, 3)
		sol, _ := Solve(p)
		opt := bruteForce(p)
		h := 0.0
		for k := 1; k <= len(p.Rows); k++ {
			h += 1 / float64(k)
		}
		if float64(p.CostOf(sol)) > h*float64(opt)+1e-9 {
			t.Fatalf("trial %d: greedy %d exceeds H_n bound %v (opt %d)",
				trial, p.CostOf(sol), h*float64(opt), opt)
		}
	}
}

func TestGreedyPicksRatioNotCost(t *testing.T) {
	// Column 2 covers both rows at cost 3 (ratio 1.5); columns 0 and 1
	// cover one row each at cost 1 (ratio 1).  Greedy takes the unit
	// columns and wins here.
	p := matrix.MustNew([][]int{{0, 2}, {1, 2}}, 3, []int{1, 1, 3})
	sol, _ := Solve(p)
	if p.CostOf(sol) != 2 {
		t.Fatalf("cost = %d, want 2 (sol %v)", p.CostOf(sol), sol)
	}
}
