package canon

import (
	"math/rand"
	"slices"
	"testing"

	"ucp/internal/matrix"
)

// mustProblem builds a problem, failing the test on malformed input.
func mustProblem(t *testing.T, rows [][]int, cost []int) *matrix.Problem {
	t.Helper()
	p, err := matrix.New(rows, len(cost), cost)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

// permuteProblem relabels columns by colPerm (old id → new id) and
// shuffles the row order, yielding an isomorphic instance.
func permuteProblem(p *matrix.Problem, colPerm []int, rng *rand.Rand) *matrix.Problem {
	rows := make([][]int, len(p.Rows))
	for i, r := range p.Rows {
		rr := make([]int, len(r))
		for t, j := range r {
			rr[t] = colPerm[j]
		}
		slices.Sort(rr)
		rows[i] = rr
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	cost := make([]int, p.NCol)
	for j, c := range p.Cost {
		cost[colPerm[j]] = c
	}
	q, err := matrix.New(rows, p.NCol, cost)
	if err != nil {
		panic(err)
	}
	return q
}

func randPerm(n int, rng *rand.Rand) []int { return rng.Perm(n) }

func TestCanonicalizePermutationInvariant(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int
		cost []int
	}{
		{"varied", [][]int{{0, 1}, {1, 2, 3}, {0, 3}, {2}}, []int{1, 2, 3, 4}},
		// A bipartite 4-cycle with unit costs: colour refinement alone
		// cannot separate the columns, so this exercises the
		// individualisation search.
		{"cycle4", [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, []int{1, 1, 1, 1}},
		// Twin columns and twin rows.
		{"twins", [][]int{{0, 1, 2}, {0, 1, 2}, {3, 4}, {3, 4}}, []int{2, 2, 2, 5, 5}},
		// Two disjoint cycles of different lengths.
		{"cycles46", [][]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0},
			{4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 4},
		}, []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustProblem(t, tc.rows, tc.cost)
			c0 := Canonicalize(p)
			if !c0.Exact {
				t.Fatalf("expected exact canonicalisation for %s", tc.name)
			}
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 20; trial++ {
				q := permuteProblem(p, randPerm(p.NCol, rng), rng)
				cq := Canonicalize(q)
				if !cq.Exact {
					t.Fatalf("trial %d: permuted copy not exact", trial)
				}
				if cq.FP != c0.FP {
					t.Fatalf("trial %d: fingerprint changed under permutation: %v vs %v", trial, cq.FP, c0.FP)
				}
				if !slices.Equal(cq.Serial(), c0.Serial()) {
					t.Fatalf("trial %d: canonical serials differ", trial)
				}
			}
		})
	}
}

func TestCanonicalizeDistinguishes(t *testing.T) {
	p1 := mustProblem(t, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, []int{1, 1, 1, 1})
	// One 8-cycle vs two 4-cycles: same degrees everywhere, different
	// structure.
	p2 := mustProblem(t, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, []int{1, 1, 1, 1, 1})
	if Canonicalize(p1).FP == Canonicalize(p2).FP {
		t.Fatal("structurally distinct problems share a fingerprint")
	}
	// Cost changes must change the fingerprint.
	p3 := mustProblem(t, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, []int{1, 1, 1, 2})
	if Canonicalize(p1).FP == Canonicalize(p3).FP {
		t.Fatal("cost change did not change the fingerprint")
	}
}

func TestCanonicalizeInactiveColumnsIgnored(t *testing.T) {
	p1 := mustProblem(t, [][]int{{0, 2}, {2}}, []int{1, 7, 3})
	p2 := mustProblem(t, [][]int{{0, 1}, {1}}, []int{1, 3})
	c1, c2 := Canonicalize(p1), Canonicalize(p2)
	if c1.FP != c2.FP {
		t.Fatal("instances differing only in inactive columns should share a fingerprint")
	}
	if c1.NCols != 2 || len(c1.ColPerm) != 2 {
		t.Fatalf("NCols=%d len(ColPerm)=%d, want 2", c1.NCols, len(c1.ColPerm))
	}
}

func TestCanonicalColPermRoundTrip(t *testing.T) {
	p := mustProblem(t, [][]int{{0, 1}, {1, 2, 3}, {0, 3}, {2}}, []int{1, 2, 3, 4})
	c := Canonicalize(p)
	inv := c.InverseCol(p.NCol)
	for k, j := range c.ColPerm {
		if inv[j] != int32(k) {
			t.Fatalf("InverseCol mismatch at canonical %d / original %d", k, j)
		}
	}
	// Translating a solution original→canonical→original must be the
	// identity.
	sol := []int{0, 2, 3}
	for _, j := range sol {
		if got := c.ColPerm[inv[j]]; got != j {
			t.Fatalf("round trip %d → %d", j, got)
		}
	}
}

func TestSubFingerprintRowOrderInvariant(t *testing.T) {
	p := mustProblem(t, [][]int{{0, 1}, {1, 2, 3}, {0, 3}, {2}}, []int{1, 2, 3, 4})
	fp := SubFingerprint(p)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		rows := make([][]int, len(p.Rows))
		copy(rows, p.Rows)
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
		q := mustProblem(t, rows, p.Cost)
		if SubFingerprint(q) != fp {
			t.Fatalf("trial %d: SubFingerprint changed under row reorder", trial)
		}
	}
	// Column ids matter (it is a label-space hash).
	q := mustProblem(t, [][]int{{0, 2}, {1, 2, 3}, {0, 3}, {2}}, []int{1, 2, 3, 4})
	if SubFingerprint(q) == fp {
		t.Fatal("distinct structure shares a SubFingerprint")
	}
}

func TestDeriveChangesFingerprint(t *testing.T) {
	fp := Fingerprint{Hi: 3, Lo: 9}
	if fp.Derive(1) == fp || fp.Derive(1) == fp.Derive(2) {
		t.Fatal("Derive must separate salts")
	}
	if fp.Derive(1) != fp.Derive(1) {
		t.Fatal("Derive must be deterministic")
	}
	if !(Fingerprint{}).IsZero() || fp.IsZero() {
		t.Fatal("IsZero sentinel broken")
	}
}

// decodeFuzzProblem builds a small problem deterministically from fuzz
// bytes: nothing here may panic for any input.
func decodeFuzzProblem(data []byte) *matrix.Problem {
	if len(data) < 4 {
		return nil
	}
	ncol := int(data[0]%6) + 1
	nrow := int(data[1]%6) + 1
	cost := make([]int, ncol)
	for j := range cost {
		cost[j] = int(data[2+(j%2)]%9) + 1
	}
	rows := make([][]int, 0, nrow)
	pos := 4
	for i := 0; i < nrow; i++ {
		var r []int
		seen := make(map[int]bool)
		for t := 0; t < 3; t++ {
			if pos >= len(data) {
				break
			}
			j := int(data[pos]) % ncol
			pos++
			if !seen[j] {
				seen[j] = true
				r = append(r, j)
			}
		}
		if len(r) == 0 {
			r = []int{i % ncol}
		}
		slices.Sort(r)
		rows = append(rows, r)
	}
	p, err := matrix.New(rows, ncol, cost)
	if err != nil {
		return nil
	}
	return p
}

// FuzzCanonFingerprint checks, for random instances, that (a) random
// row/column permutations fingerprint identically when the search is
// exact, and (b) fingerprint equality between mutated variants implies
// exact canonical-form equality — i.e. no structural false positives
// hide behind the hash.
func FuzzCanonFingerprint(f *testing.F) {
	f.Add([]byte{4, 4, 1, 2, 0, 1, 1, 2, 2, 3, 3, 0}, int64(1))
	f.Add([]byte{2, 2, 1, 1, 0, 1, 1, 0}, int64(7))
	f.Add([]byte{5, 3, 2, 4, 0, 1, 2, 3, 4, 0, 2, 4}, int64(99))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		p := decodeFuzzProblem(data)
		if p == nil {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		c0 := Canonicalize(p)

		// Permutation invariance.
		q := permuteProblem(p, randPerm(p.NCol, rng), rng)
		cq := Canonicalize(q)
		if c0.Exact && cq.Exact {
			if cq.FP != c0.FP {
				t.Fatalf("fingerprint not permutation invariant")
			}
			if !slices.Equal(cq.Serial(), c0.Serial()) {
				t.Fatalf("canonical serials differ for isomorphic instances")
			}
		}

		// Collision cross-check: perturb a cost; if fingerprints
		// collide the canonical serials must still be equal.
		cost2 := append([]int(nil), p.Cost...)
		cost2[int(data[0])%len(cost2)] += 1 + int(seed&3)
		p2, err := matrix.New(p.Rows, p.NCol, cost2)
		if err != nil {
			t.Fatalf("NewProblem on perturbed costs: %v", err)
		}
		c2 := Canonicalize(p2)
		if c2.FP == c0.FP && !slices.Equal(c2.Serial(), c0.Serial()) {
			t.Fatalf("fingerprint collision between distinct canonical forms")
		}

		// The canonical solution-translation contract: every canonical
		// index maps to an active original column and back.
		inv := c0.InverseCol(p.NCol)
		for k, j := range c0.ColPerm {
			if j < 0 || j >= p.NCol || inv[j] != int32(k) {
				t.Fatalf("ColPerm/InverseCol inconsistent")
			}
		}
	})
}
