// Package canon computes canonical forms and 128-bit fingerprints of
// covering problems, so that solves of the same instance — including
// row/column permutations of it — can share one cache entry.
//
// Two levels are provided:
//
//   - Canonicalize builds a full canonical form: a relabelling of the
//     active columns (and an implied sorting of the rows) such that
//     permuted copies of the same instance map to the identical
//     serialized form, byte for byte.  The fingerprint is a 128-bit
//     hash of that serialization, and the column permutation is
//     returned so cached solutions (stored in canonical label space)
//     can be translated into any requesting instance's own ids.
//
//   - SubFingerprint is a cheap O(nnz) structural hash in the
//     instance's own label space, commutative over rows, for the
//     branch-and-bound transposition table: identical sub-cores
//     regenerated across branches and components of one search hash
//     identically, whatever order their rows arrived in.
//
// Canonicalisation runs colour refinement (rows and columns refine
// each other's keys; costs and degrees seed the column classes) and,
// when refinement alone does not separate every column, an
// individualisation search over the first ambiguous class, keeping the
// lexicographically smallest serialization over all branches.  The
// search is capped; an aborted search still yields a deterministic
// form for the given instance, but Exact is cleared and permuted
// copies are then no longer guaranteed to fingerprint identically
// (they can only miss the cache, never corrupt it: equality of the
// serialized forms — what the fingerprint hashes — implies the
// instances really are permutations of each other).
package canon

import (
	"slices"
	"sort"

	"ucp/internal/matrix"
)

// Fingerprint is a 128-bit hash of a canonical (or structural) form.
// The zero value never results from hashing real content and can be
// used as a sentinel.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the zero sentinel.
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// Derive mixes a salt into the fingerprint, for building cache keys
// that separate solver kinds and option sets sharing one problem.
func (f Fingerprint) Derive(salt uint64) Fingerprint {
	return Fingerprint{
		Hi: mix64(f.Hi ^ salt*0x9e3779b97f4a7c15),
		Lo: mix64(f.Lo + salt*0xc2b2ae3d27d4eb4f),
	}
}

// Canonical is the canonicalisation of one problem.
type Canonical struct {
	// FP is the 128-bit hash of the canonical serialization.
	FP Fingerprint
	// Exact reports that the individualisation search completed within
	// its cap, so permuted copies of the instance produce the same FP.
	// When false the form is still deterministic for this exact
	// instance (identical resubmissions share), but permutation
	// invariance is not guaranteed.
	Exact bool
	// NRows and NCols are the row count and the active-column count.
	NRows, NCols int
	// ColPerm maps canonical column index → original column id, over
	// the active columns only.
	ColPerm []int

	serial []uint64
}

// Serial exposes the canonical serialization for collision
// cross-checks in tests: equal serials mean genuinely isomorphic
// instances, whatever the fingerprints say.
func (c *Canonical) Serial() []uint64 { return c.serial }

// EncodeCols rewrites a solution from the problem's column labels into
// canonical column indices, the label-free form a cross-solve cache
// must store: the cache key is label-invariant, so any isomorphic
// relabeling of the instance probes the same entry and must be able to
// decode the solution through its own Canonical.  ok is false when a
// column has no canonical index (inactive — impossible for a cover's
// columns, but a caller seeing false must skip caching rather than
// store a lie).  A nil solution encodes to nil.
func (c *Canonical) EncodeCols(sol []int, ncol int) ([]int, bool) {
	if sol == nil {
		return nil, true
	}
	inv := c.InverseCol(ncol)
	out := make([]int, len(sol))
	for i, j := range sol {
		if j < 0 || j >= ncol || inv[j] < 0 {
			return nil, false
		}
		out[i] = int(inv[j])
	}
	return out, true
}

// DecodeCols rewrites a canonical-index solution (stored by EncodeCols
// under an isomorphic labeling) into this instance's column labels.
// ok is false when an index is out of range, which is only possible
// under a 128-bit fingerprint collision between structurally different
// problems; callers treat that as a cache miss.
func (c *Canonical) DecodeCols(sol []int) ([]int, bool) {
	if sol == nil {
		return nil, true
	}
	out := make([]int, len(sol))
	for i, k := range sol {
		if k < 0 || k >= len(c.ColPerm) {
			return nil, false
		}
		out[i] = c.ColPerm[k]
	}
	return out, true
}

// InverseCol builds the original-id → canonical-index map (−1 for
// columns outside ColPerm), for translating solutions into canonical
// label space before caching.
func (c *Canonical) InverseCol(ncol int) []int32 {
	inv := make([]int32, ncol)
	for j := range inv {
		inv[j] = -1
	}
	for k, j := range c.ColPerm {
		inv[j] = int32(k)
	}
	return inv
}

const (
	mulA = 0x9e3779b97f4a7c15
	mulB = 0xc2b2ae3d27d4eb4f
	mulC = 0xbf58476d1ce4e5b9
	mulD = 0x94d049bb133111eb

	rowSalt   = 0xd6e8feb86659fd93
	colSalt   = 0xa0761d6478bd642f
	indivSalt = 0xe7037ed1a0b428db
)

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mulC
	x ^= x >> 27
	x *= mulD
	x ^= x >> 31
	return x
}

// DigestWords folds words into a 64-bit digest under a caller salt:
// the building block for cache-key option digests (fold the digest
// into a problem fingerprint with Fingerprint.Derive).
func DigestWords(salt uint64, words ...uint64) uint64 {
	h := mix64(salt ^ mulA)
	for _, w := range words {
		h = mix64(h ^ w*mulB)
	}
	return mix64(h + uint64(len(words))*mulC)
}

// hash128 folds a word stream into a 128-bit fingerprint.
func hash128(words []uint64) Fingerprint {
	h1, h2 := uint64(0x243f6a8885a308d3), uint64(0x13198a2e03707344)
	for _, w := range words {
		h1 = mix64(h1 ^ w*mulA)
		h2 = mix64(h2 + w*mulB)
	}
	h1 = mix64(h1 ^ uint64(len(words)))
	h2 = mix64(h2 + uint64(len(words))*mulC)
	return Fingerprint{Hi: h1, Lo: h2}
}

// canonState carries one canonicalisation.
type canonState struct {
	p       *matrix.Problem
	act     []int     // active column ids, ascending
	pos     []int32   // column id → index in act (−1 inactive)
	colRows [][]int32 // per act index, ascending row indices

	leafCap int
	leaves  int
	exact   bool

	bestSerial []uint64
	bestPerm   []int
}

// Canonicalize computes the canonical form of p.  Inactive columns
// (appearing in no row) carry no structure and are excluded: a cover
// never uses them, so instances differing only there share a form.
func Canonicalize(p *matrix.Problem) *Canonical { return CanonicalizeCapped(p, 0) }

// CanonicalizeCapped is Canonicalize with an explicit cap on the
// individualisation leaves (0 picks the default size-scaled cap).  A
// tight cap bounds the worst case on symmetric instances — the
// branch-and-bound transposition table canonicalises at every node and
// cannot afford a large search — at the price of Exact being cleared
// more often (a miss, never a wrong hit).
func CanonicalizeCapped(p *matrix.Problem, leafCap int) *Canonical {
	cs := &canonState{p: p, exact: true, leafCap: leafCap}
	cs.pos = make([]int32, p.NCol)
	for j := range cs.pos {
		cs.pos[j] = -1
	}
	deg := make([]int, p.NCol)
	for _, r := range p.Rows {
		for _, j := range r {
			deg[j]++
		}
	}
	for j, d := range deg {
		if d > 0 {
			cs.pos[j] = int32(len(cs.act))
			cs.act = append(cs.act, j)
		}
	}
	cs.colRows = make([][]int32, len(cs.act))
	for k, j := range cs.act {
		cs.colRows[k] = make([]int32, 0, deg[j])
	}
	for i, r := range p.Rows {
		for _, j := range r {
			k := cs.pos[j]
			cs.colRows[k] = append(cs.colRows[k], int32(i))
		}
	}

	// The individualisation search serializes one candidate form per
	// leaf; cap the leaves so canonicalising never costs more than a
	// small multiple of reading the instance.  Large instances almost
	// always refine to a discrete partition (varied costs and degrees),
	// so they get a tight cap.
	if cs.leafCap <= 0 {
		switch nnz := p.NNZ(); {
		case nnz <= 512:
			cs.leafCap = 512
		case nnz <= 4096:
			cs.leafCap = 64
		default:
			cs.leafCap = 8
		}
	}

	colKey := make([]uint64, len(cs.act))
	rowKey := make([]uint64, len(p.Rows))
	for k, j := range cs.act {
		colKey[k] = mix64(uint64(p.Cost[j])*mulA ^ uint64(deg[j])*mulB)
	}
	for i, r := range p.Rows {
		rowKey[i] = mix64(uint64(len(r))*mulC + 1)
	}
	cs.search(colKey, rowKey)

	return &Canonical{
		FP:      hash128(cs.bestSerial),
		Exact:   cs.exact,
		NRows:   len(p.Rows),
		NCols:   len(cs.act),
		ColPerm: cs.bestPerm,
		serial:  cs.bestSerial,
	}
}

// Fingerprint128 is Canonicalize reduced to its fingerprint.
func Fingerprint128(p *matrix.Problem) Fingerprint { return Canonicalize(p).FP }

// refine runs colour refinement to a fixed point: row keys fold in
// their columns' keys, column keys fold in their rows' keys (and the
// column's cost and degree through the initial key), and each new key
// mixes over the old one, so classes only ever split — which preserves
// individualisation marks across rounds.
func (cs *canonState) refine(colKey, rowKey []uint64) {
	scratch := make([]uint64, 0, len(colKey)+len(rowKey))
	prev := -1
	for round := 0; round < 64; round++ {
		for i, r := range cs.p.Rows {
			var s uint64
			for _, j := range r {
				s += mix64(colKey[cs.pos[j]] ^ rowSalt)
			}
			rowKey[i] = mix64(rowKey[i] ^ s)
		}
		for k := range cs.act {
			var s uint64
			for _, i := range cs.colRows[k] {
				s += mix64(rowKey[i] ^ colSalt)
			}
			colKey[k] = mix64(colKey[k] ^ s)
		}
		d := countDistinct(colKey, scratch) + countDistinct(rowKey, scratch)
		if d == prev {
			return
		}
		prev = d
	}
}

// countDistinct counts distinct values via a sorted scratch copy.
func countDistinct(keys []uint64, scratch []uint64) int {
	scratch = append(scratch[:0], keys...)
	slices.Sort(scratch)
	n := 0
	for i, v := range scratch {
		if i == 0 || scratch[i-1] != v {
			n++
		}
	}
	return n
}

// search refines, then either serializes (discrete partition) or
// branches over the members of the first ambiguous column class,
// individualising each in turn and keeping the smallest serialization.
// The class is chosen by smallest key — an isomorphism-invariant
// choice — and branching over all of its members keeps the minimum
// invariant too.
func (cs *canonState) search(colKey, rowKey []uint64) {
	cs.refine(colKey, rowKey)

	order := make([]int, len(cs.act))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := colKey[order[a]], colKey[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})

	// First ambiguous class in key order.
	groupLo, groupHi := -1, -1
	for k := 0; k < len(order); {
		h := k + 1
		for h < len(order) && colKey[order[h]] == colKey[order[k]] {
			h++
		}
		if h-k > 1 {
			groupLo, groupHi = k, h
			break
		}
		k = h
	}

	if groupLo < 0 {
		// Discrete: one leaf.
		if cs.leaves >= cs.leafCap && cs.bestSerial != nil {
			cs.exact = false
			return
		}
		cs.leaves++
		cs.leaf(order)
		return
	}

	members := order[groupLo:groupHi]
	if cs.leaves+len(members) > cs.leafCap {
		// Partial branch exploration would make the minimum depend on
		// the (arbitrary) member order; take the first branch for a
		// deterministic form and drop the invariance claim.
		cs.exact = false
		members = members[:1]
	}
	for _, m := range members {
		ck := append([]uint64(nil), colKey...)
		rk := append([]uint64(nil), rowKey...)
		ck[m] = mix64(ck[m] ^ indivSalt)
		cs.search(ck, rk)
		if !cs.exact && cs.bestSerial != nil {
			return
		}
	}
}

// leaf serializes the form induced by the discrete column order and
// keeps it when it beats the best so far.
func (cs *canonState) leaf(order []int) {
	newID := make([]int32, cs.p.NCol)
	perm := make([]int, len(order))
	for canonIdx, k := range order {
		j := cs.act[k]
		newID[j] = int32(canonIdx)
		perm[canonIdx] = j
	}
	rows := make([][]int, len(cs.p.Rows))
	flat := make([]int, cs.p.NNZ())
	for i, r := range cs.p.Rows {
		rr := flat[:len(r):len(r)]
		flat = flat[len(r):]
		for t, j := range r {
			rr[t] = int(newID[j])
		}
		sort.Ints(rr)
		rows[i] = rr
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		if len(ra) != len(rb) {
			return len(ra) < len(rb)
		}
		for t := range ra {
			if ra[t] != rb[t] {
				return ra[t] < rb[t]
			}
		}
		return false
	})

	serial := make([]uint64, 0, 2+len(order)+len(rows)+cs.p.NNZ())
	serial = append(serial, uint64(len(rows)), uint64(len(order)))
	for _, j := range perm {
		serial = append(serial, uint64(cs.p.Cost[j]))
	}
	for _, r := range rows {
		serial = append(serial, uint64(len(r)))
		for _, j := range r {
			serial = append(serial, uint64(j))
		}
	}

	if cs.bestSerial == nil || lessWords(serial, cs.bestSerial) {
		cs.bestSerial = serial
		cs.bestPerm = perm
	}
}

// lessWords compares equal-length word slices lexicographically.
func lessWords(a, b []uint64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SubFingerprint hashes the problem in its own label space: each row
// folds its column ids and their costs, and the row hashes combine
// commutatively, so row order is immaterial but ids are not.  It is
// the transposition-table key inside one branch-and-bound search,
// where all sub-cores share the parent's column universe: identical
// sub-matrices reached along different branches (or through the
// component decomposition) hash identically at O(nnz) cost.
//
// Row hashes combine by addition, so a caller maintaining a running
// sum can update the fingerprint incrementally as rows are removed;
// the branch-and-bound solver recomputes it per node on the (already
// reduced) core, which the reductions have shrunk far below the
// parent.
func SubFingerprint(p *matrix.Problem) Fingerprint {
	var s1, s2 uint64
	for _, r := range p.Rows {
		h := RowHash(r, p.Cost)
		s1 += h
		s2 += mix64(h ^ mulD)
	}
	return Fingerprint{
		Hi: mix64(s1 ^ uint64(len(p.Rows))*mulA),
		Lo: mix64(s2 + uint64(len(p.Rows))*mulB),
	}
}

// ProblemKey fingerprints a problem in its own label space for the
// incremental-resolve ancestor arena: SubFingerprint folded with the
// universe size and a digest of the whole cost vector.  Unlike the
// cache's canonical fingerprint it is O(nnz + NCol) with no search,
// and unlike SubFingerprint alone it separates instances that differ
// only in unreferenced columns — the arena validates a hit with full
// structural equality, so the extra discrimination buys fewer wasted
// comparisons, not correctness.
func ProblemKey(p *matrix.Problem) Fingerprint {
	h := mix64(uint64(p.NCol) * mulA)
	for _, c := range p.Cost {
		h = mix64(h ^ uint64(c)*mulB)
	}
	return SubFingerprint(p).Derive(h)
}

// RowHash hashes one sorted row (ids plus their costs) for the
// commutative combination used by SubFingerprint.
func RowHash(r []int, cost []int) uint64 {
	h := uint64(0x6c62272e07bb0142)
	for _, j := range r {
		h = mix64(h ^ mix64(uint64(j)*mulA^uint64(cost[j])*mulB))
	}
	return mix64(h ^ uint64(len(r)))
}
