package benchmarks

import (
	"bytes"
	"reflect"
	"testing"

	"ucp/internal/matrix"
)

func TestComponentCoveringStructure(t *testing.T) {
	spec := ComponentSpec{Seed: 42, Components: 7, RowsPerComp: 20, ColsPerComp: 15, RowDegree: 4, MaxCost: 9}
	p, err := ComponentCovering(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != spec.NumRows() || p.NCol != spec.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", len(p.Rows), p.NCol, spec.NumRows(), spec.NumCols())
	}
	comps := matrix.Components(p)
	if len(comps) != spec.Components {
		t.Fatalf("got %d components, want %d", len(comps), spec.Components)
	}
	// Round-robin emission: consecutive rows belong to different blocks.
	for i, r := range p.Rows {
		if len(r) != spec.RowDegree {
			t.Fatalf("row %d has degree %d, want %d", i, len(r), spec.RowDegree)
		}
		block := (i % spec.Components) * spec.ColsPerComp
		for _, j := range r {
			if j < block || j >= block+spec.ColsPerComp {
				t.Fatalf("row %d references column %d outside its block [%d,%d)", i, j, block, block+spec.ColsPerComp)
			}
		}
	}
}

// TestComponentCoveringORLibRoundTrip: the streamed ORLib emission and
// the in-memory materialisation describe the same instance.
func TestComponentCoveringORLibRoundTrip(t *testing.T) {
	spec := ComponentSpec{Seed: 5, Components: 3, RowsPerComp: 10, ColsPerComp: 8, RowDegree: 3, MaxCost: 4}
	p, err := ComponentCovering(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spec.WriteORLib(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadORLib(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Rows, q.Rows) || p.NCol != q.NCol || !reflect.DeepEqual(p.Cost, q.Cost) {
		t.Fatal("ORLib round trip changed the instance")
	}
}

func TestComponentSpecValidation(t *testing.T) {
	if _, err := ComponentCovering(ComponentSpec{Components: 0, RowsPerComp: 1, ColsPerComp: 1, RowDegree: 1}); err == nil {
		t.Fatal("zero components accepted")
	}
	if _, err := ComponentCovering(ComponentSpec{Components: 1, RowsPerComp: 1, ColsPerComp: 2, RowDegree: 3}); err == nil {
		t.Fatal("degree above block width accepted")
	}
}
