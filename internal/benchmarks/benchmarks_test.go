package benchmarks

import (
	"math"
	"testing"

	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/primes"
)

func TestFigure1Properties(t *testing.T) {
	p := Figure1()
	// Pairwise intersecting rows.
	for i := range p.Rows {
		for k := i + 1; k < len(p.Rows); k++ {
			inter := false
			for _, a := range p.Rows[i] {
				for _, b := range p.Rows[k] {
					if a == b {
						inter = true
					}
				}
			}
			if !inter {
				t.Fatalf("rows %d and %d do not intersect", i, k)
			}
		}
	}
	// Every row has a unit-cost column → LB_MIS = 1.
	mis, _ := matrix.MISBound(p)
	if mis != 1 {
		t.Fatalf("MIS bound = %d, want 1", mis)
	}
	// The paper's dual solution m = (1,1,0,0) is feasible with value 2.
	if !lagrangian.DualFeasible(p, []float64{1, 1, 0, 0}, 1e-12) {
		t.Fatal("m = (1,1,0,0) infeasible")
	}
	_, da := lagrangian.DualAscent(p, nil)
	if math.Abs(da-2) > 1e-9 {
		t.Fatalf("dual ascent = %v, want 2", da)
	}
	// The paper's fractional optimum p = (.5,.5,.5,0,.5) is feasible
	// and costs 2.5.
	x := []float64{.5, .5, .5, 0, .5}
	for i, r := range p.Rows {
		s := 0.0
		for _, j := range r {
			s += x[j]
		}
		if s < 1-1e-12 {
			t.Fatalf("row %d uncovered by the fractional optimum", i)
		}
	}
	z := 0.0
	for j, v := range x {
		z += v * float64(p.Cost[j])
	}
	if math.Abs(z-2.5) > 1e-12 {
		t.Fatalf("fractional cost = %v, want 2.5", z)
	}
	// Integer optimum is 3 = ⌈2.5⌉.
	best := 1 << 30
	for mask := 0; mask < 32; mask++ {
		var cols []int
		for j := 0; j < 5; j++ {
			if mask>>j&1 == 1 {
				cols = append(cols, j)
			}
		}
		if p.IsCover(cols) && p.CostOf(cols) < best {
			best = p.CostOf(cols)
		}
	}
	if best != 3 {
		t.Fatalf("integer optimum = %d, want 3", best)
	}
	// Uniform variant: MIS = DA = 1.
	u := Figure1Uniform()
	misU, _ := matrix.MISBound(u)
	_, daU := lagrangian.DualAscent(u, nil)
	if misU != 1 || math.Abs(daU-1) > 1e-9 {
		t.Fatalf("uniform MIS/DA = %d/%v, want 1/1", misU, daU)
	}
}

func TestInstancesDeterministic(t *testing.T) {
	a := DifficultCyclic()[0].PLA()
	b := DifficultCyclic()[0].PLA()
	if a.F.Len() != b.F.Len() {
		t.Fatal("same seed produced different PLAs")
	}
	for i := range a.F.Cubes {
		if !a.Space.Equal(a.F.Cubes[i], b.F.Cubes[i]) {
			t.Fatal("same seed produced different cubes")
		}
	}
}

func TestRegistryShape(t *testing.T) {
	if n := len(DifficultCyclic()); n != 7 {
		t.Fatalf("difficult cyclic has %d instances, want 7 (as in Table 1)", n)
	}
	if n := len(Challenging()); n != 16 {
		t.Fatalf("challenging has %d instances, want 16 (as in Table 2)", n)
	}
	if n := len(EasyCyclic()); n != 49 {
		t.Fatalf("easy cyclic has %d instances, want 49", n)
	}
	if n := len(Table4Names()); n != 9 {
		t.Fatalf("Table 4 has %d instances, want 9", n)
	}
	names := map[string]bool{}
	for _, in := range Challenging() {
		names[in.Name] = true
	}
	for _, n := range Table4Names() {
		if !names[n] {
			t.Fatalf("Table 4 instance %q not in the challenging set", n)
		}
	}
	seen := map[string]bool{}
	for _, in := range append(append(DifficultCyclic(), Challenging()...), EasyCyclic()...) {
		if seen[in.Name] {
			t.Fatalf("duplicate instance name %q", in.Name)
		}
		seen[in.Name] = true
		if in.Inputs < 4 || in.Outputs < 1 || in.Kernels < 1 {
			t.Fatalf("instance %q has degenerate shape", in.Name)
		}
	}
}

// TestHardInstancesHaveCyclicCores is the central quality property of
// the replica generator: the difficult and challenging functions must
// survive the reductions with a non-empty cyclic core, like the paper
// originals.
func TestHardInstancesHaveCyclicCores(t *testing.T) {
	if testing.Short() {
		t.Skip("prime generation across the registry is slow")
	}
	for _, in := range append(DifficultCyclic(), Challenging()...) {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			f := in.PLA()
			prs := primes.Generate(f.F, f.D)
			prob, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
			if err != nil {
				t.Fatal(err)
			}
			red := matrix.Reduce(prob)
			if red.Infeasible {
				t.Fatal("replica infeasible")
			}
			if len(red.Core.Rows) == 0 {
				t.Fatalf("replica of %s reduces to an empty core", in.Name)
			}
		})
	}
}

func TestEasyInstancesMostlyCyclic(t *testing.T) {
	if testing.Short() {
		t.Skip("prime generation across the registry is slow")
	}
	empty := 0
	for _, in := range EasyCyclic() {
		f := in.PLA()
		prs := primes.Generate(f.F, f.D)
		prob, _, err := primes.BuildCovering(f.F, f.D, prs, primes.UnitCost)
		if err != nil {
			t.Fatal(err)
		}
		if red := matrix.Reduce(prob); len(red.Core.Rows) == 0 {
			empty++
		}
	}
	if empty > 5 {
		t.Fatalf("%d/49 easy instances reduce to empty cores; the class should be cyclic", empty)
	}
}

func TestRandomCoveringShape(t *testing.T) {
	p := RandomCovering(3, 20, 15, 0.3, 4)
	if len(p.Rows) != 20 || p.NCol != 15 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
	for i, r := range p.Rows {
		if len(r) == 0 {
			t.Fatalf("row %d empty", i)
		}
	}
	for _, c := range p.Cost {
		if c < 1 || c > 4 {
			t.Fatalf("cost %d out of range", c)
		}
	}
	q := RandomCovering(3, 20, 15, 0.3, 4)
	for i := range p.Rows {
		if len(p.Rows[i]) != len(q.Rows[i]) {
			t.Fatal("not deterministic")
		}
	}
}

func TestCyclicCoveringShape(t *testing.T) {
	p := CyclicCovering(5, 60, 40, 3)
	if len(p.Rows) != 60 || p.NCol != 40 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
	for i, r := range p.Rows {
		if len(r) != 3 {
			t.Fatalf("row %d degree %d, want 3", i, len(r))
		}
	}
}
