// Package benchmarks is the instance registry of the reproduction.
//
// The paper evaluates on 72 Berkeley PLA benchmarks (bench1, ex5, …,
// test2/3/4), which are not redistributable and not available offline.
// Following the substitution rule documented in DESIGN.md, this
// package provides deterministic seeded *replicas*: synthetic PLAs and
// covering matrices named after the paper's instances and scaled so
// the suite runs on a laptop.  Purely random functions reduce to empty
// cyclic cores (essentials plus dominance solve them), so the replica
// functions are sums of *symmetric-interval kernels* — "weight of a
// variable subset lies in [a, a+1]" — whose prime-implicant tables are
// the classic source of cyclic covering structure; kernel count and
// width tune the core size per difficulty tier.  Every solver in a
// comparison sees the identical instance, so the paper's qualitative
// results (who wins, by roughly how much) remain meaningful.
package benchmarks

import (
	"math/bits"
	"math/rand"

	"ucp/internal/cube"
	"ucp/internal/matrix"
	"ucp/internal/pla"
)

// Figure1 returns the reconstructed 4×5 witness of the paper's
// Figure 1, derived from the constraints stated in §3.4 (the original
// drawing is not reproducible from the text):
//
//	row 1: columns {1, 4, 5}      costs: c = (1, 1, 1, 2, 2)
//	row 2: columns {2, 5}
//	row 3: columns {3, 5}
//	row 4: columns {2, 3, 4}
//
// Its bounds are exactly those of the paper: LB_MIS = 1 (all rows
// pairwise intersect and each has a unit-cost column), the dual
// solution m = (1,1,0,0) is feasible with value LB_DA = 2, the linear
// relaxation optimum is 2.5 at p = (.5,.5,.5,0,.5), raised to 3 by
// integrality — which is the integer optimum.  With uniform costs
// LB_MIS = LB_DA = 1 while the linear relaxation is 5/3, i.e. 2 after
// integrality rounding (the bound the paper quotes).
func Figure1() *matrix.Problem {
	return matrix.MustNew(
		[][]int{{0, 3, 4}, {1, 4}, {2, 4}, {1, 2, 3}},
		5,
		[]int{1, 1, 1, 2, 2},
	)
}

// Figure1Uniform is Figure1 with all costs set to one.
func Figure1Uniform() *matrix.Problem {
	return matrix.MustNew(
		[][]int{{0, 3, 4}, {1, 4}, {2, 4}, {1, 2, 3}},
		5,
		nil,
	)
}

// Class labels the difficulty tier an instance belonged to in the
// paper's taxonomy.
type Class string

// The paper's three difficulty tiers.
const (
	EasyCyclicClass  Class = "easy cyclic"
	DifficultClass   Class = "difficult cyclic"
	ChallengingClass Class = "challenging"
)

// Instance describes one replica of a paper benchmark.
type Instance struct {
	Name  string
	Class Class
	// Shape of the replica function.
	Inputs, Outputs int
	// Kernels is the number of symmetric-interval kernels summed into
	// the function; KernelVars how many variables each spans.  More
	// and wider kernels give larger cyclic cores.
	Kernels, KernelVars int
	// DCKernels adds don't-care cubes around the kernels.
	DCKernels int
	Seed      int64
	// PaperSol is the solution cost the paper reports for ZDD_SCG on
	// the original instance (0 when not applicable), for the
	// EXPERIMENTS.md side-by-side tables.
	PaperSol int
	// PaperOptimal marks instances the paper proved optimal.
	PaperOptimal bool
}

// PLA synthesises the replica function deterministically from the
// seed: Kernels symmetric-interval kernels on random variable subsets
// (each localised by one or two extra fixed literals so the kernels
// interact without merging), plus DCKernels random don't-care cubes.
func (in Instance) PLA() *pla.File {
	rng := rand.New(rand.NewSource(in.Seed))
	s := cube.NewSpace(in.Inputs, in.Outputs)
	f := cube.NewCover(s)
	d := cube.NewCover(s)
	for k := 0; k < in.Kernels; k++ {
		perm := rng.Perm(in.Inputs)
		vars := perm[:in.KernelVars]
		a := 1 + rng.Intn(in.KernelVars-2)
		out := rng.Intn(in.Outputs)
		nFix := rng.Intn(2) + 1
		if in.KernelVars+nFix > in.Inputs {
			nFix = in.Inputs - in.KernelVars
		}
		fixed := map[int]cube.Literal{}
		for _, v := range perm[in.KernelVars : in.KernelVars+nFix] {
			if rng.Intn(2) == 0 {
				fixed[v] = cube.Zero
			} else {
				fixed[v] = cube.One
			}
		}
		addSymmetricKernel(s, f, vars, a, out, fixed)
	}
	for k := 0; k < in.DCKernels; k++ {
		c := s.NewCube()
		for i := 0; i < in.Inputs; i++ {
			switch {
			case rng.Float64() >= 0.55:
				s.SetInput(c, i, cube.DC)
			case rng.Intn(2) == 0:
				s.SetInput(c, i, cube.Zero)
			default:
				s.SetInput(c, i, cube.One)
			}
		}
		s.SetOutput(c, rng.Intn(in.Outputs), true)
		d.Add(c)
	}
	return &pla.File{Space: s, F: f, D: d, R: cube.NewCover(s), Type: "fd"}
}

// RandomPLA generates a density-controlled random multiple-output
// PLA: cubes ON-cubes whose input parts draw a don't care with
// probability density (and otherwise a random literal), each driving a
// random non-empty output subset, plus dcCubes don't-care cubes drawn
// the same way.  Unlike the kernel replicas it scales to arbitrarily
// wide input spaces with a bounded cube count, which is what the
// dense prime-generation front end is for: at 20+ inputs the ON-set
// is a vanishing fraction of the minterm lattice, so the chunked
// sweep stays sparse while iterated consensus drowns in containment
// scans.
func RandomPLA(seed int64, inputs, outputs, cubes int, density float64, dcCubes int) *pla.File {
	rng := rand.New(rand.NewSource(seed))
	s := cube.NewSpace(inputs, outputs)
	draw := func() cube.Cube {
		c := s.NewCube()
		for i := 0; i < inputs; i++ {
			switch {
			case rng.Float64() < density:
				s.SetInput(c, i, cube.DC)
			case rng.Intn(2) == 0:
				s.SetInput(c, i, cube.Zero)
			default:
				s.SetInput(c, i, cube.One)
			}
		}
		any := false
		for o := 0; o < outputs; o++ {
			if rng.Intn(2) == 0 {
				s.SetOutput(c, o, true)
				any = true
			}
		}
		if outputs > 0 && !any {
			s.SetOutput(c, rng.Intn(outputs), true)
		}
		return c
	}
	f := cube.NewCover(s)
	d := cube.NewCover(s)
	for k := 0; k < cubes; k++ {
		f.Add(draw())
	}
	for k := 0; k < dcCubes; k++ {
		d.Add(draw())
	}
	return &pla.File{Space: s, F: f, D: d, R: cube.NewCover(s), Type: "fd"}
}

// addSymmetricKernel adds, as one cube per qualifying minterm over
// vars, the function "weight of vars ∈ {a, a+1}" restricted by the
// fixed literals, on output out.
func addSymmetricKernel(s *cube.Space, f *cube.Cover, vars []int, a, out int, fixed map[int]cube.Literal) {
	k := len(vars)
	for m := 0; m < 1<<k; m++ {
		w := bits.OnesCount(uint(m))
		if w != a && w != a+1 {
			continue
		}
		c := s.NewCube()
		for i := 0; i < s.Inputs(); i++ {
			s.SetInput(c, i, cube.DC)
		}
		for idx, v := range vars {
			if m>>idx&1 == 1 {
				s.SetInput(c, v, cube.One)
			} else {
				s.SetInput(c, v, cube.Zero)
			}
		}
		for v, l := range fixed {
			s.SetInput(c, v, l)
		}
		s.SetOutput(c, out, true)
		f.Add(c)
	}
}

// DifficultCyclic returns the replicas of the paper's seven difficult
// cyclic instances (Tables 1 and 3).
func DifficultCyclic() []Instance {
	return []Instance{
		{Name: "bench1", Class: DifficultClass, Inputs: 8, Outputs: 2, Kernels: 4, KernelVars: 5, DCKernels: 2, Seed: 101, PaperSol: 121},
		{Name: "ex5", Class: DifficultClass, Inputs: 8, Outputs: 2, Kernels: 4, KernelVars: 5, DCKernels: 1, Seed: 102, PaperSol: 65},
		{Name: "exam", Class: DifficultClass, Inputs: 9, Outputs: 2, Kernels: 4, KernelVars: 5, DCKernels: 2, Seed: 103, PaperSol: 63},
		{Name: "max1024", Class: DifficultClass, Inputs: 9, Outputs: 2, Kernels: 5, KernelVars: 5, DCKernels: 1, Seed: 104, PaperSol: 260},
		{Name: "prom2", Class: DifficultClass, Inputs: 9, Outputs: 3, Kernels: 4, KernelVars: 5, DCKernels: 1, Seed: 105, PaperSol: 287},
		{Name: "t1", Class: DifficultClass, Inputs: 7, Outputs: 2, Kernels: 3, KernelVars: 5, DCKernels: 0, Seed: 106, PaperSol: 100, PaperOptimal: true},
		{Name: "test4", Class: DifficultClass, Inputs: 9, Outputs: 2, Kernels: 5, KernelVars: 6, DCKernels: 2, Seed: 107, PaperSol: 96},
	}
}

// Challenging returns the replicas of the sixteen challenging
// instances (Tables 2 and 4).  The hardest three of the paper (test2,
// test3, ex1010) get the largest kernel budgets.
func Challenging() []Instance {
	return []Instance{
		{Name: "ex1010", Class: ChallengingClass, Inputs: 10, Outputs: 2, Kernels: 6, KernelVars: 6, DCKernels: 3, Seed: 201, PaperSol: 239},
		{Name: "ex4", Class: ChallengingClass, Inputs: 8, Outputs: 3, Kernels: 3, KernelVars: 5, DCKernels: 0, Seed: 202, PaperSol: 279, PaperOptimal: true},
		{Name: "ibm", Class: ChallengingClass, Inputs: 8, Outputs: 3, Kernels: 3, KernelVars: 4, DCKernels: 0, Seed: 203, PaperSol: 173, PaperOptimal: true},
		{Name: "jbp", Class: ChallengingClass, Inputs: 9, Outputs: 3, Kernels: 3, KernelVars: 5, DCKernels: 0, Seed: 204, PaperSol: 122, PaperOptimal: true},
		{Name: "misg", Class: ChallengingClass, Inputs: 7, Outputs: 2, Kernels: 2, KernelVars: 4, DCKernels: 0, Seed: 205, PaperSol: 69, PaperOptimal: true},
		{Name: "mish", Class: ChallengingClass, Inputs: 7, Outputs: 3, Kernels: 2, KernelVars: 4, DCKernels: 0, Seed: 206, PaperSol: 82, PaperOptimal: true},
		{Name: "misj", Class: ChallengingClass, Inputs: 6, Outputs: 2, Kernels: 2, KernelVars: 4, DCKernels: 0, Seed: 207, PaperSol: 35, PaperOptimal: true},
		{Name: "pdc", Class: ChallengingClass, Inputs: 9, Outputs: 3, Kernels: 5, KernelVars: 5, DCKernels: 3, Seed: 208, PaperSol: 96},
		{Name: "shift", Class: ChallengingClass, Inputs: 8, Outputs: 3, Kernels: 3, KernelVars: 4, DCKernels: 0, Seed: 209, PaperSol: 100, PaperOptimal: true},
		{Name: "soar.pla", Class: ChallengingClass, Inputs: 10, Outputs: 3, Kernels: 5, KernelVars: 6, DCKernels: 1, Seed: 210, PaperSol: 352},
		{Name: "test2", Class: ChallengingClass, Inputs: 11, Outputs: 3, Kernels: 8, KernelVars: 6, DCKernels: 3, Seed: 211, PaperSol: 865},
		{Name: "test3", Class: ChallengingClass, Inputs: 10, Outputs: 2, Kernels: 6, KernelVars: 6, DCKernels: 2, Seed: 212, PaperSol: 436},
		{Name: "ti", Class: ChallengingClass, Inputs: 9, Outputs: 3, Kernels: 4, KernelVars: 5, DCKernels: 1, Seed: 213, PaperSol: 213, PaperOptimal: true},
		{Name: "ts10", Class: ChallengingClass, Inputs: 7, Outputs: 2, Kernels: 2, KernelVars: 5, DCKernels: 0, Seed: 214, PaperSol: 128, PaperOptimal: true},
		{Name: "x2dn", Class: ChallengingClass, Inputs: 8, Outputs: 3, Kernels: 3, KernelVars: 5, DCKernels: 1, Seed: 215, PaperSol: 104, PaperOptimal: true},
		{Name: "xparc", Class: ChallengingClass, Inputs: 9, Outputs: 3, Kernels: 4, KernelVars: 5, DCKernels: 1, Seed: 216, PaperSol: 254, PaperOptimal: true},
	}
}

// Table4Names lists the challenging instances the paper re-examines
// against Scherzo in Table 4.
func Table4Names() []string {
	return []string{"ex1010", "ex4", "jbp", "pdc", "soar.pla", "test2", "test3", "ti", "xparc"}
}

// EasyCyclic returns the 49 easy cyclic replicas of the paper's first
// experiment (the paper: ZDD_SCG solves all to optimality, total cost
// 5225 vs total lower bound 5213, a 0.22% gap; Espresso pays +105
// products in normal mode and +56 in strong mode over the set).
func EasyCyclic() []Instance {
	out := make([]Instance, 0, 49)
	for k := 0; k < 49; k++ {
		out = append(out, Instance{
			Name:       "easy" + string(rune('A'+k/10)) + string(rune('0'+k%10)),
			Class:      EasyCyclicClass,
			Inputs:     6 + k%3,
			Outputs:    1 + k%2,
			Kernels:    2 + k%2,
			KernelVars: 4 + k%2,
			DCKernels:  k % 2,
			Seed:       int64(1000 + k),
		})
	}
	return out
}

// RandomCovering generates a pure set-covering instance (no logic
// front end): nr rows over nc columns, each row covering each column
// with the given density, costs uniform in [1, maxCost].  Every row is
// guaranteed non-empty.  Used by the bound-comparison experiment and
// the OR-style examples.
func RandomCovering(seed int64, nr, nc int, density float64, maxCost int) *matrix.Problem {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, nr)
	for i := range rows {
		for j := 0; j < nc; j++ {
			if rng.Float64() < density {
				rows[i] = append(rows[i], j)
			}
		}
		if len(rows[i]) == 0 {
			rows[i] = append(rows[i], rng.Intn(nc))
		}
	}
	cost := make([]int, nc)
	for j := range cost {
		cost[j] = 1 + rng.Intn(maxCost)
	}
	return matrix.MustNew(rows, nc, cost)
}

// CyclicCovering generates a sparse covering matrix in the style of a
// hard cyclic core: every row covers exactly rowDegree random columns,
// unit costs.  At low degree (3–4) dominance rarely fires and the
// matrix stays cyclic, emulating the Steiner-triple-like cores the
// exact solvers struggle with.
func CyclicCovering(seed int64, nr, nc, rowDegree int) *matrix.Problem {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, nr)
	for i := range rows {
		seen := map[int]bool{}
		for len(seen) < rowDegree {
			seen[rng.Intn(nc)] = true
		}
		for j := range seen {
			rows[i] = append(rows[i], j)
		}
	}
	return matrix.MustNew(rows, nc, nil)
}
