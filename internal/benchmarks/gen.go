package benchmarks

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ucp/internal/matrix"
)

// ComponentSpec describes a random set-covering instance assembled
// from independent column blocks: block k owns columns
// [k·ColsPerComp, (k+1)·ColsPerComp) and every one of its rows covers
// the block's spine column (the first of the block) plus RowDegree-1
// further random columns of the block.  The spine keeps each block
// internally connected, so the instance has exactly Components
// connected components, and rows are emitted round-robin across
// blocks so the components interleave in row order — the worst case
// for a streaming partitioner.
//
// Rows can be generated one at a time (EachRow), so arbitrarily large
// instances stream straight to disk without ever materialising.
type ComponentSpec struct {
	Seed        int64
	Components  int
	RowsPerComp int
	ColsPerComp int
	RowDegree   int // columns per row, spine included
	MaxCost     int // uniform in [1, MaxCost]; 0 means unit costs
}

func (s ComponentSpec) validate() error {
	if s.Components < 1 || s.RowsPerComp < 1 || s.ColsPerComp < 1 {
		return fmt.Errorf("benchmarks: spec needs at least one component, row, and column")
	}
	if s.RowDegree < 1 || s.RowDegree > s.ColsPerComp {
		return fmt.Errorf("benchmarks: row degree %d outside [1, %d]", s.RowDegree, s.ColsPerComp)
	}
	return nil
}

// NumRows returns the total row count.
func (s ComponentSpec) NumRows() int { return s.Components * s.RowsPerComp }

// NumCols returns the total column count.
func (s ComponentSpec) NumCols() int { return s.Components * s.ColsPerComp }

// Costs returns the column cost vector; nil when MaxCost is 0 (unit).
func (s ComponentSpec) Costs() []int {
	if s.MaxCost <= 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	cost := make([]int, s.NumCols())
	for j := range cost {
		cost[j] = 1 + rng.Intn(s.MaxCost)
	}
	return cost
}

// EachRow generates every row in emission order (round-robin across
// blocks) and hands its sorted column ids to fn; the slice is reused
// between calls.  Generation is deterministic in Seed.
func (s ComponentSpec) EachRow(fn func(row int, cols []int) error) error {
	if err := s.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cols := make([]int, 0, s.RowDegree)
	seen := make(map[int]bool, s.RowDegree)
	for i := 0; i < s.NumRows(); i++ {
		comp := i % s.Components
		base := comp * s.ColsPerComp
		cols = cols[:0]
		for k := range seen {
			delete(seen, k)
		}
		cols = append(cols, base) // spine
		seen[base] = true
		for len(cols) < s.RowDegree {
			c := base + rng.Intn(s.ColsPerComp)
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		sort.Ints(cols)
		if err := fn(i, cols); err != nil {
			return err
		}
	}
	return nil
}

// ComponentCovering materialises the spec as an in-memory problem.
func ComponentCovering(s ComponentSpec) (*matrix.Problem, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rows := make([][]int, 0, s.NumRows())
	s.EachRow(func(_ int, cols []int) error {
		rows = append(rows, append([]int(nil), cols...))
		return nil
	})
	return matrix.New(rows, s.NumCols(), s.Costs())
}

// WriteORLib streams the instance to w in the Beasley OR-Library
// format without materialising it.
func (s ComponentSpec) WriteORLib(w io.Writer) error {
	if err := s.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", s.NumRows(), s.NumCols())
	cost := s.Costs()
	for j := 0; j < s.NumCols(); j++ {
		if j > 0 {
			bw.WriteByte(' ')
		}
		c := 1
		if cost != nil {
			c = cost[j]
		}
		fmt.Fprintf(bw, "%d", c)
	}
	bw.WriteByte('\n')
	err := s.EachRow(func(_ int, cols []int) error {
		fmt.Fprintf(bw, "%d\n", len(cols))
		for k, j := range cols {
			if k > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", j+1)
		}
		bw.WriteByte('\n')
		return bw.Flush() // bound buffered bytes; surfaces write errors early
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMatrix streams the instance to w in the repo's covering-matrix
// text format.
func (s ComponentSpec) WriteMatrix(w io.Writer) error {
	if err := s.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p %d %d\n", s.NumRows(), s.NumCols())
	if cost := s.Costs(); cost != nil {
		bw.WriteString("c")
		for _, c := range cost {
			fmt.Fprintf(bw, " %d", c)
		}
		bw.WriteByte('\n')
	}
	err := s.EachRow(func(_ int, cols []int) error {
		bw.WriteString("r")
		for _, j := range cols {
			fmt.Fprintf(bw, " %d", j)
		}
		bw.WriteByte('\n')
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
