package benchmarks

import (
	"bufio"
	"fmt"
	"io"

	"ucp/internal/matrix"
)

// ReadORLib parses a set-covering instance in the Beasley OR-Library
// "scp" format, the de-facto interchange format of the lagrangian
// set-covering literature the paper builds on (Beasley 1987; Caprara,
// Fischetti, Toth 1996):
//
//	m n
//	cost_1 ... cost_n
//	k_1  col ... col      (for each row i: its column count, then the
//	k_2  col ... col       1-based columns covering it, free-format)
//	...
//
// All tokens are whitespace separated and may wrap lines arbitrarily.
func ReadORLib(r io.Reader) (*matrix.Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	next := func() (int, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return 0, io.ErrUnexpectedEOF
		}
		v := 0
		neg := false
		tok := sc.Text()
		for i, ch := range tok {
			if i == 0 && ch == '-' {
				neg = true
				continue
			}
			if ch < '0' || ch > '9' {
				return 0, fmt.Errorf("benchmarks: non-numeric token %q", tok)
			}
			v = v*10 + int(ch-'0')
			if v > 1<<31 {
				return 0, fmt.Errorf("benchmarks: numeric token %q out of range", tok)
			}
		}
		if neg {
			v = -v
		}
		return v, nil
	}
	m, err := next()
	if err != nil {
		return nil, fmt.Errorf("benchmarks: reading row count: %w", err)
	}
	n, err := next()
	if err != nil {
		return nil, fmt.Errorf("benchmarks: reading column count: %w", err)
	}
	const maxDim = 1 << 24
	if m < 0 || n <= 0 || m > maxDim || n > maxDim {
		return nil, fmt.Errorf("benchmarks: invalid size %d x %d", m, n)
	}
	cost := make([]int, n)
	for j := range cost {
		if cost[j], err = next(); err != nil {
			return nil, fmt.Errorf("benchmarks: reading cost %d: %w", j, err)
		}
	}
	rows := make([][]int, m)
	for i := range rows {
		k, err := next()
		if err != nil {
			return nil, fmt.Errorf("benchmarks: reading degree of row %d: %w", i, err)
		}
		if k < 0 {
			return nil, fmt.Errorf("benchmarks: row %d has negative degree", i)
		}
		for t := 0; t < k; t++ {
			col, err := next()
			if err != nil {
				return nil, fmt.Errorf("benchmarks: reading row %d: %w", i, err)
			}
			if col < 1 || col > n {
				return nil, fmt.Errorf("benchmarks: row %d references column %d of %d", i, col, n)
			}
			rows[i] = append(rows[i], col-1)
		}
	}
	return matrix.New(rows, n, cost)
}

// WriteORLib emits the problem in the Beasley format (costs first,
// then each row's degree and 1-based columns).
func WriteORLib(w io.Writer, p *matrix.Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", len(p.Rows), p.NCol)
	for j, c := range p.Cost {
		if j > 0 {
			bw.WriteByte(' ')
		}
		fmt.Fprintf(bw, "%d", c)
	}
	bw.WriteByte('\n')
	for _, r := range p.Rows {
		fmt.Fprintf(bw, "%d\n", len(r))
		for k, j := range r {
			if k > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", j+1)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
