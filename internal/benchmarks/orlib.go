package benchmarks

import (
	"bufio"
	"fmt"
	"io"

	"ucp/internal/matrix"
	"ucp/internal/scpio"
)

// ReadORLib parses a set-covering instance in the Beasley OR-Library
// "scp" format, the de-facto interchange format of the lagrangian
// set-covering literature the paper builds on (Beasley 1987; Caprara,
// Fischetti, Toth 1996):
//
//	m n
//	cost_1 ... cost_n
//	k_1  col ... col      (for each row i: its column count, then the
//	k_2  col ... col       1-based columns covering it, free-format)
//	...
//
// All tokens are whitespace separated and may wrap lines arbitrarily.
// The file is streamed through a fixed-size buffer (never slurped) and
// every parse error carries the 1-based line number it was detected on.
func ReadORLib(r io.Reader) (*matrix.Problem, error) {
	or, err := scpio.NewORLibReader(r)
	if err != nil {
		return nil, fmt.Errorf("benchmarks: %w", err)
	}
	rows := make([][]int, 0, or.NumRows())
	for {
		row, err := or.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("benchmarks: %w", err)
		}
		rows = append(rows, row)
	}
	return matrix.New(rows, or.NumCols(), or.Cost())
}

// WriteORLib emits the problem in the Beasley format (costs first,
// then each row's degree and 1-based columns).
func WriteORLib(w io.Writer, p *matrix.Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", len(p.Rows), p.NCol)
	for j, c := range p.Cost {
		if j > 0 {
			bw.WriteByte(' ')
		}
		fmt.Fprintf(bw, "%d", c)
	}
	bw.WriteByte('\n')
	for _, r := range p.Rows {
		fmt.Fprintf(bw, "%d\n", len(r))
		for k, j := range r {
			if k > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", j+1)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
