package benchmarks

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadORLib(t *testing.T) {
	src := `
3 4
2 3 1 4
2
1 3
1 2
3 1 2 4
`
	p, err := ReadORLib(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 3 || p.NCol != 4 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
	if p.Cost[2] != 1 {
		t.Fatalf("costs %v", p.Cost)
	}
	// 1-based columns become 0-based.
	if len(p.Rows[0]) != 2 || p.Rows[0][0] != 0 || p.Rows[0][1] != 2 {
		t.Fatalf("row 0 = %v", p.Rows[0])
	}
	if len(p.Rows[2]) != 3 {
		t.Fatalf("row 2 = %v", p.Rows[2])
	}
}

func TestReadORLibWrappedTokens(t *testing.T) {
	// The OR-Library files wrap tokens arbitrarily; everything on one
	// line must parse identically.
	src := "2 3 1 1 1 2 1 2 1 3"
	p, err := ReadORLib(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 2 || p.NCol != 3 {
		t.Fatalf("shape %dx%d", len(p.Rows), p.NCol)
	}
}

func TestReadORLibErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"2",            // missing column count
		"1 2 1 1",      // missing degree/columns
		"1 2 1 1 1 5",  // column out of range
		"1 2 1 1 x",    // non-numeric
		"-1 2",         // negative size
		"1 2 1 1 -1 1", // negative degree
	}
	for k, src := range cases {
		if _, err := ReadORLib(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d: error expected for %q", k, src)
		}
	}
}

func TestORLibRoundTrip(t *testing.T) {
	p := RandomCovering(77, 25, 18, 0.2, 5)
	var buf bytes.Buffer
	if err := WriteORLib(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadORLib(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != len(p.Rows) || q.NCol != p.NCol {
		t.Fatal("shape changed")
	}
	for i := range p.Rows {
		if len(p.Rows[i]) != len(q.Rows[i]) {
			t.Fatalf("row %d changed", i)
		}
		for k := range p.Rows[i] {
			if p.Rows[i][k] != q.Rows[i][k] {
				t.Fatalf("row %d changed", i)
			}
		}
	}
	for j := range p.Cost {
		if p.Cost[j] != q.Cost[j] {
			t.Fatal("costs changed")
		}
	}
}
