// Package ucp is a Go reproduction of "An Efficient Heuristic
// Approach to Solve the Unate Covering Problem" (Cordone, Ferrandi,
// Sciuto, Wolfler Calvo — DATE 2000).
//
// It provides, as a library:
//
//   - the unate covering problem (UCP) with the classical reductions
//     (essentials, row/column dominance, partitioning) both explicit
//     and implicit over Zero-suppressed BDDs;
//   - ZDD_SCG, the paper's lagrangian-guided constructive heuristic
//     (SolveSCG), with its subgradient ascent, dual ascent, penalty
//     tests and stochastic multi-run fixing;
//   - an exact branch-and-bound solver (SolveExact), the Chvátal
//     greedy baseline (SolveGreedy), and the four lower bounds of
//     Proposition 1 (LowerBounds);
//   - a complete two-level logic minimisation front end: Berkeley PLA
//     parsing, prime-implicant generation, the Quine–McCluskey
//     covering formulation, and an Espresso-style heuristic minimiser
//     as comparison baseline (MinimizeSCG / MinimizeExact /
//     MinimizeEspresso);
//   - an exact solver for the more general binate covering problem
//     (SolveBinate), and Beasley OR-Library I/O for pure set-covering
//     instances.
//
// Everything is pure Go with no dependencies outside the standard
// library.
package ucp

import (
	"errors"
	"fmt"
	"io"
	"math"

	"ucp/internal/bnb"
	"ucp/internal/budget"
	"ucp/internal/greedy"
	"ucp/internal/lagrangian"
	"ucp/internal/matrix"
	"ucp/internal/scg"
	"ucp/internal/shard"
	"ucp/internal/simplex"
)

// Budget bounds the work a solve may do: a wall-clock deadline or
// cancellation via Context, a node cap for the implicit (ZDD) phase, a
// branch-and-bound node cap and a subgradient iteration cap.  The zero
// value is unlimited.  Every solver accepts one through its options
// struct and, when the budget runs out, stops gracefully with the best
// feasible solution and the tightest valid lower bound found so far,
// reporting Interrupted and a StopReason on its result.
type Budget = budget.Budget

// StopReason classifies why an interrupted solve stopped early.
type StopReason = budget.Reason

// Stop reasons reported by interrupted solves.
const (
	// StopNone: the solve ran to completion.
	StopNone = budget.None
	// StopDeadline: the budget context's deadline expired.
	StopDeadline = budget.Deadline
	// StopCancelled: the budget context was cancelled (e.g. SIGINT).
	StopCancelled = budget.Cancelled
	// StopSearchCap: the branch-and-bound node cap was exhausted.
	StopSearchCap = budget.SearchCap
	// StopIterCap: the subgradient iteration cap was exhausted.
	StopIterCap = budget.IterCap
)

// guard converts a panic escaping the internal layers into a returned
// error, so no malformed input can crash a caller of the public API.
func guard(errp *error) {
	if r := recover(); r != nil {
		if e, ok := r.(error); ok {
			*errp = fmt.Errorf("ucp: internal error: %w", e)
		} else {
			*errp = fmt.Errorf("ucp: internal error: %v", r)
		}
	}
}

// Problem is a unate covering instance: for each row, the sorted ids
// of the columns covering it, plus a per-column cost vector.
type Problem = matrix.Problem

// NewProblem builds and validates a covering problem.  Rows are
// sorted and deduplicated; a nil cost vector means unit costs.
func NewProblem(rows [][]int, ncols int, costs []int) (p *Problem, err error) {
	defer malformed(&err)
	defer guard(&err)
	return matrix.New(rows, ncols, costs)
}

// Reduction is the outcome of reducing a problem to its cyclic core.
type Reduction = matrix.Reduction

// ReduceProblem applies essential-column extraction and row/column
// dominance until fixpoint, returning the cyclic core.
func ReduceProblem(p *Problem) *Reduction { return matrix.Reduce(p) }

// SCGOptions configures the ZDD_SCG solver; the zero value uses the
// paper's parameters (α = 2, ĉ = 0.001, μ̂ = 0.999, DualPen = 100,
// MaxR = 5000, MaxC = 10000, NumIter = 1).
type SCGOptions = scg.Options

// SCGResult is a ZDD_SCG outcome: solution, cost, certified lower
// bound and run statistics.
type SCGResult = scg.Result

// SolveSCG runs the paper's heuristic on a covering problem.  With
// Options.MemBudget set, the solve routes through the out-of-core
// component-sharded driver (internal/shard): connected components are
// scheduled largest-first under the byte budget with
// not-yet-scheduled components spilled to disk, and the result is
// bit-identical to the direct solve (Stats.Shard* report how the
// scheduling went).  Sharded solves bypass Options.Cache; should the
// spill file fail (an environmental IO error), the solve transparently
// falls back to the direct in-memory path.
func SolveSCG(p *Problem, opt SCGOptions) *SCGResult {
	if opt.MemBudget > 0 {
		if res, err := shard.SolveProblem(p, opt); err == nil {
			return res
		}
		// Spill IO failed: the instance is already in memory, so the
		// direct solve still answers (without the budget's protection).
	}
	return scg.Solve(p, opt)
}

// SolveSCGORLib streams a Beasley OR-Library instance from r through
// the sharded driver without materialising it, honouring
// Options.MemBudget (0 keeps everything resident).  Parse failures
// wrap ErrMalformedInput with the offending line number; spill-file IO
// failures pass through unwrapped.
func SolveSCGORLib(r io.Reader, opt SCGOptions) (res *SCGResult, err error) {
	defer guard(&err)
	return tagShardInput(shard.Solve(shard.ORLib(r), opt))
}

// SolveSCGMatrix is SolveSCGORLib for the covering-matrix text format.
func SolveSCGMatrix(r io.Reader, opt SCGOptions) (res *SCGResult, err error) {
	defer guard(&err)
	return tagShardInput(shard.Solve(shard.MatrixText(r), opt))
}

// tagShardInput maps the sharded driver's input-error sentinel onto
// the public taxonomy.
func tagShardInput(res *SCGResult, err error) (*SCGResult, error) {
	if err != nil && errors.Is(err, shard.ErrInput) {
		err = fmt.Errorf("%w: %w", ErrMalformedInput, err)
	}
	return res, err
}

// ExactOptions configures the exact branch-and-bound solver.
type ExactOptions = bnb.Options

// ExactResult is an exact-solver outcome.
type ExactResult = bnb.Result

// SolveExact finds a minimum cover by branch and bound (the Scherzo /
// mincov role of the paper's Tables 3 and 4).
func SolveExact(p *Problem, opt ExactOptions) *ExactResult { return bnb.Solve(p, opt) }

// SolveGreedy runs the classical Chvátal greedy heuristic and returns
// an irredundant cover.  The error is ErrInfeasible when some row of p
// cannot be covered.
func SolveGreedy(p *Problem) (sol []int, err error) {
	defer guard(&err)
	sol, err = greedy.Solve(p)
	return sol, err
}

// SolveGreedyBudget is SolveGreedy under a budget.  Greedy is the
// bottom rung of the degradation ladder: when the budget runs out
// mid-construction it completes the cover with the cheapest column per
// remaining uncovered row, so the returned cover is feasible in every
// case (interrupted reports whether that happened).
func SolveGreedyBudget(p *Problem, b Budget) (sol []int, interrupted bool, err error) {
	defer guard(&err)
	sol, interrupted, err = greedy.SolveBudget(p, b.Tracker())
	return sol, interrupted, err
}

// Bounds carries the four lower bounds compared in the paper's
// Proposition 1, in increasing order of strength (and cost):
// independent set ≤ dual ascent ≤ lagrangian ≤ linear relaxation.
type Bounds struct {
	MIS              int     // maximal-independent-set bound
	DualAscent       float64 // two-phase dual ascent
	Lagrangian       float64 // subgradient-optimised lagrangian bound
	LinearRelaxation float64 // exact LP bound (NaN when skipped)
	// LPExact reports whether LinearRelaxation was computed; the dense
	// simplex is only run when rows+columns ≤ LPLimit.
	LPExact bool
}

// LPLimit bounds the size (rows + active columns) up to which
// LowerBounds solves the linear relaxation exactly with the dense
// simplex.
const LPLimit = 260

// LowerBounds computes the four bounds of Proposition 1 on p.
func LowerBounds(p *Problem) Bounds {
	q, _ := p.Compact()
	var b Bounds
	b.MIS, _ = matrix.MISBound(q)
	_, b.DualAscent = lagrangian.DualAscent(q, nil)
	sg := lagrangian.Subgradient(q, lagrangian.Params{}, nil, 0)
	b.Lagrangian = sg.LB
	if len(q.Rows) == 0 {
		b.Lagrangian = 0
		b.LinearRelaxation = 0
		b.LPExact = true
		return b
	}
	if len(q.Rows)+q.NCol <= LPLimit {
		b.LinearRelaxation = lpBound(q)
		b.LPExact = true
	} else {
		b.LinearRelaxation = math.NaN()
	}
	return b
}

// lpBound solves min c'x, Ax ≥ 1, 0 ≤ x ≤ 1 exactly.
func lpBound(p *Problem) float64 {
	n := p.NCol
	a := make([][]float64, 0, len(p.Rows)+n)
	b := make([]float64, 0, len(p.Rows)+n)
	for _, r := range p.Rows {
		row := make([]float64, n)
		for _, j := range r {
			row[j] = 1
		}
		a = append(a, row)
		b = append(b, 1)
	}
	for j := 0; j < n; j++ {
		box := make([]float64, n)
		box[j] = -1
		a = append(a, box)
		b = append(b, -1)
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = float64(p.Cost[j])
	}
	_, z, err := simplex.Solve(c, a, b)
	if err != nil {
		return math.NaN()
	}
	return z
}
