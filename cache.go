package ucp

import (
	"time"

	"ucp/internal/solvecache"
)

// Cache is a cross-solve memoization cache shared by the solvers: a
// power-of-two-sharded LRU keyed by 128-bit canonical problem
// fingerprints (row/column permutations of the same instance share an
// entry), with singleflight deduplication of concurrent identical
// solves and cost-aware admission — only solves that took at least the
// work threshold enter, so trivial results never evict expensive ones.
// Interrupted (budget-cut) solves are never cached, and solutions
// cross the cache boundary as defensive copies.
//
// A Cache is safe for concurrent use.  The nil *Cache is valid and
// always misses.  Construct one with NewCache and hand it to a Solver
// (or set it directly on SCGOptions.Cache / ExactOptions.Cache).
type Cache = solvecache.Cache

// CacheStats is a point-in-time snapshot of a Cache's counters: hits,
// misses, singleflight dedups, stores, evictions and resident entries.
type CacheStats = solvecache.Stats

// Defaults used by the CLIs' -cache flag; library callers pick their
// own.
const (
	// DefaultCacheSize is the entry capacity behind -cache.
	DefaultCacheSize = 4096
	// DefaultCacheMinWork is the admission threshold: a solve cheaper
	// than this is recomputed faster than it is worth caching (the
	// canonical fingerprint alone costs a fraction of it), so it never
	// displaces an expensive entry.
	DefaultCacheMinWork = 200 * time.Microsecond
)

// NewCache builds a cache holding up to size entries, admitting only
// results whose computation took at least minWork.  size ≤ 0 returns
// the nil always-miss cache.
func NewCache(size int, minWork time.Duration) *Cache {
	return solvecache.New(size, minWork)
}
