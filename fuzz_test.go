package ucp

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets double as robustness tests: under plain `go test`
// they run their seed corpus; under `go test -fuzz` they explore
// further.  The parsers must never panic and anything they accept must
// survive a write/re-read round trip.

func FuzzReadProblem(f *testing.F) {
	f.Add("p 2 3\nr 0 1\nr 2\n")
	f.Add("p 1 1\nc 5\nr 0\n")
	f.Add("# only a comment\np 0 1\n")
	f.Add("p 2 2\nr 0 0 0\nr 1\n")
	f.Add("p -1 -1\n")
	f.Add("r 0\np 1 1\n")
	f.Add("p 1 1\nr 99\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadProblem(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		q, err := ReadProblem(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\n%s", err, buf.String())
		}
		if len(q.Rows) != len(p.Rows) || q.NCol != p.NCol {
			t.Fatal("round trip changed the problem shape")
		}
	})
}

func FuzzParsePLA(f *testing.F) {
	f.Add(".i 2\n.o 1\n11 1\n")
	f.Add(".i 2\n.o 2\n.type fr\n10 01\n")
	f.Add(".i 0\n.o 1\n 1\n")
	f.Add(".i 3\n.o 1\n.ilb a b c\n.ob z\n--- 1\n.e\n")
	f.Add(".i 1\n.o 1\n.type fdr\n1 -\n0 0\n")
	f.Add(".i 2\n.o 1\n1z 1\n")
	f.Add("11 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		pla, err := ParsePLA(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := pla.Write(&buf); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		again, err := ParsePLA(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if !pla.F.EquivalentTo(again.F) {
			t.Fatal("round trip changed the ON-set")
		}
	})
}

func FuzzReadORLibProblem(f *testing.F) {
	f.Add("2 3\n1 2 3\n2\n1 2\n1\n3\n")
	f.Add("1 1 1 1 1")
	f.Add("0 1 7")
	f.Add("2 2 1 1 0 0")
	f.Add("3 3\n1 1 1\n1\n1\n1\n2\n1\n3\n")
	f.Add("1 2\n5 5\n0\n")
	f.Add("-1 -1\n")
	f.Add("2 2\n1 1\n9 1 2\n1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadORLibProblem(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteORLibProblem(&buf, p); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadORLibProblem(&buf); err != nil {
			t.Fatalf("re-read of own output failed: %v", err)
		}
	})
}

// FuzzSolveParsedProblem drives every unate solver on whatever the
// matrix parser accepts: no input, however contrived, may panic a
// solver reached through the public API, and anything a solver returns
// must be a feasible cover.
func FuzzSolveParsedProblem(f *testing.F) {
	f.Add("p 2 3\nr 0 1\nr 2\n")
	f.Add("p 1 1\nc 5\nr 0\n")
	f.Add("p 3 3\nr 0 1\nr 1 2\nr 0 2\n")
	f.Add("p 2 2\nr 0\nr\n") // second row uncoverable
	f.Add("p 1 2\nc 0 0\nr 0 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadProblem(strings.NewReader(src))
		if err != nil {
			return
		}
		if len(p.Rows) > 40 || p.NCol > 40 {
			return // keep the harness fast; size adds nothing here
		}
		g, gerr := SolveGreedy(p)
		if gerr == nil && !p.IsCover(g) {
			t.Fatalf("greedy returned a non-cover %v", g)
		}
		res := SolveSCG(p, SCGOptions{Budget: Budget{IterCap: 30}})
		if res.Solution != nil && !p.IsCover(res.Solution) {
			t.Fatalf("scg returned a non-cover %v", res.Solution)
		}
		if (res.Solution == nil) != (gerr != nil) {
			t.Fatalf("scg feasibility (%v) disagrees with greedy (%v)", res.Solution, gerr)
		}
		ex := SolveExact(p, ExactOptions{Budget: Budget{SearchCap: 200}})
		if ex.Solution != nil && !p.IsCover(ex.Solution) {
			t.Fatalf("exact returned a non-cover %v", ex.Solution)
		}
		if bp, err := BinateFromUnate(p); err == nil {
			SolveBinate(bp, BinateOptions{MaxNodes: 200})
		}
	})
}

// FuzzMinimizeParsedPLA pushes whatever the PLA parser accepts through
// the whole two-level pipeline (primes, covering, SCG, Espresso) under
// a tight iteration budget, checking that the minimised covers still
// implement the parsed function.
func FuzzMinimizeParsedPLA(f *testing.F) {
	f.Add(".i 2\n.o 1\n11 1\n00 1\n")
	f.Add(".i 3\n.o 2\n.type fd\n1-- 10\n-1- 01\n--1 11\n")
	f.Add(".i 1\n.o 1\n- 1\n")
	f.Add(".i 2\n.o 1\n.type fr\n10 1\n01 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		pla, err := ParsePLA(strings.NewReader(src))
		if err != nil {
			return
		}
		if pla.Space.Inputs() > 8 || pla.F.Len() > 16 {
			return // exponential minterm work adds nothing to the fuzz
		}
		res, err := MinimizeSCG(pla, SCGOptions{Budget: Budget{IterCap: 30}})
		if err == nil && !Equivalent(pla, res.Cover) {
			t.Fatal("SCG cover does not implement the parsed function")
		}
		esp := MinimizeEspresso(pla, EspressoNormal)
		if !Equivalent(pla, esp.Cover) {
			t.Fatal("espresso cover does not implement the parsed function")
		}
	})
}
