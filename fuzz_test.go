package ucp

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets double as robustness tests: under plain `go test`
// they run their seed corpus; under `go test -fuzz` they explore
// further.  The parsers must never panic and anything they accept must
// survive a write/re-read round trip.

func FuzzReadProblem(f *testing.F) {
	f.Add("p 2 3\nr 0 1\nr 2\n")
	f.Add("p 1 1\nc 5\nr 0\n")
	f.Add("# only a comment\np 0 1\n")
	f.Add("p 2 2\nr 0 0 0\nr 1\n")
	f.Add("p -1 -1\n")
	f.Add("r 0\np 1 1\n")
	f.Add("p 1 1\nr 99\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadProblem(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		q, err := ReadProblem(&buf)
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\n%s", err, buf.String())
		}
		if len(q.Rows) != len(p.Rows) || q.NCol != p.NCol {
			t.Fatal("round trip changed the problem shape")
		}
	})
}

func FuzzParsePLA(f *testing.F) {
	f.Add(".i 2\n.o 1\n11 1\n")
	f.Add(".i 2\n.o 2\n.type fr\n10 01\n")
	f.Add(".i 0\n.o 1\n 1\n")
	f.Add(".i 3\n.o 1\n.ilb a b c\n.ob z\n--- 1\n.e\n")
	f.Add(".i 1\n.o 1\n.type fdr\n1 -\n0 0\n")
	f.Add(".i 2\n.o 1\n1z 1\n")
	f.Add("11 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		pla, err := ParsePLA(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := pla.Write(&buf); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		again, err := ParsePLA(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if !pla.F.EquivalentTo(again.F) {
			t.Fatal("round trip changed the ON-set")
		}
	})
}

func FuzzReadORLibProblem(f *testing.F) {
	f.Add("2 3\n1 2 3\n2\n1 2\n1\n3\n")
	f.Add("1 1 1 1 1")
	f.Add("0 1 7")
	f.Add("2 2 1 1 0 0")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadORLibProblem(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteORLibProblem(&buf, p); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadORLibProblem(&buf); err != nil {
			t.Fatalf("re-read of own output failed: %v", err)
		}
	})
}
