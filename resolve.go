package ucp

import (
	"sync/atomic"

	"ucp/internal/canon"
	"ucp/internal/matrix"
	"ucp/internal/scg"
	"ucp/internal/solvecache"
)

// Incremental re-solving.
//
// A Delta describes an edit script from a solved problem to a new one
// (rows added or removed, columns added or emptied).  Solver.Resolve
// answers the edited problem by replaying the parent solve's recorded
// reduction facts and reusing every portfolio block the edit left
// untouched, instead of starting over; with warm starts off the result
// is bit-identical to a from-scratch SolveSCGKeep of the child.
//
// The parent state travels either explicitly — SolveSCGKeep and
// Resolve both return a *Resolvable handle — or implicitly through the
// Solver's ancestor arena, a small LRU of recent states keyed by a
// structural fingerprint: Resolve with a nil parent looks up the
// delta's parent problem there, so callers that dropped the handle
// (or never had it, like a server receiving independent requests)
// still resolve incrementally.

// Delta is an edit script between two covering problems; build one
// with Problem.BeginDelta / AddRows / RemoveRows / AddCols /
// RemoveCols, or reconstruct one with DeltaBetween.
type Delta = matrix.Delta

// DeltaBetween reconstructs a delta between two independently built
// problems by monotone row-content matching.  The match is a hint —
// replay re-verifies everything — so an imperfect reconstruction
// costs speed, never correctness.
func DeltaBetween(parent, child *Problem) *Delta {
	return matrix.DeltaBetween(parent, child)
}

// Resolvable is the retained state of a SolveSCGKeep (or Resolve)
// call: the parent side of an incremental re-solve.  It is immutable
// and safe to share across goroutines.
type Resolvable struct {
	state *scg.SolveState
}

// Result returns the solve result the state was built from.
func (r *Resolvable) Result() *SCGResult { return r.state.Result() }

// Problem returns the instance the state solved.
func (r *Resolvable) Problem() *Problem { return r.state.Problem() }

// ResolveOptions tunes Solver.Resolve.
type ResolveOptions struct {
	// WarmStart seeds re-solved blocks' subgradient phases with the
	// parent's multipliers mapped through the delta.  Usually faster to
	// converge, but the result is then only guaranteed to be a valid
	// feasible cover with a correct lower bound — not bit-identical to
	// a cold solve.
	WarmStart bool
}

// ResolveStats counts how a Solver's incremental re-solves went.
type ResolveStats struct {
	Resolves    int64 // Resolve calls
	ParentHits  int64 // served against an explicitly passed parent
	ArenaHits   int64 // parent state recovered from the ancestor arena
	ArenaMisses int64 // no usable ancestor: solved from scratch
	Fallbacks   int64 // parent present but unusable (options/problem drift)
	CompsReused int64 // cyclic-core blocks carried over verbatim
	CompsSolved int64 // cyclic-core blocks re-solved
}

// resolveCounters is the Solver-internal atomic mirror of
// ResolveStats.
type resolveCounters struct {
	resolves, parentHits, arenaHits, arenaMisses atomic.Int64
	fallbacks, compsReused, compsSolved          atomic.Int64
}

func (c *resolveCounters) snapshot() ResolveStats {
	return ResolveStats{
		Resolves:    c.resolves.Load(),
		ParentHits:  c.parentHits.Load(),
		ArenaHits:   c.arenaHits.Load(),
		ArenaMisses: c.arenaMisses.Load(),
		Fallbacks:   c.fallbacks.Load(),
		CompsReused: c.compsReused.Load(),
		CompsSolved: c.compsSolved.Load(),
	}
}

// SolveSCGKeep is SolveSCG with the session state kept for later
// incremental re-solves.  The pipeline is pinned to the explicit
// reductions (the ZDD phase has no replayable row correspondence), so
// on instances where the implicit phase matters the first solve can
// be slower than SolveSCG — the payoff is every subsequent Resolve.
// The state is also admitted to the Solver's ancestor arena, keyed by
// the problem's structural fingerprint.
func (s *Solver) SolveSCGKeep(p *Problem, opt SCGOptions) (*SCGResult, *Resolvable) {
	res, st := scg.SolveKeep(p, opt)
	keep := &Resolvable{state: st}
	s.admit(p, keep)
	return res, keep
}

// Resolve solves the delta's child problem incrementally.  parent may
// be nil: the Solver then looks for the delta's parent problem in its
// ancestor arena (structural fingerprint, validated by full equality).
// With no usable parent state the child is solved from scratch — the
// result is correct in every case, only the speed differs.  The
// returned Resolvable makes resolves chainable and is admitted to the
// arena like a kept solve.
func (s *Solver) Resolve(d *Delta, parent *Resolvable, opt SCGOptions, ro ResolveOptions) (*SCGResult, *Resolvable) {
	s.resolveCtr.resolves.Add(1)
	var st *scg.SolveState
	switch {
	case parent != nil:
		st = parent.state
		s.resolveCtr.parentHits.Add(1)
	case s.arena != nil:
		if v, ok := s.arena.Get(arenaKey(d.Parent)); ok {
			if r, good := v.(*Resolvable); good && matrix.Equal(r.state.Problem(), d.Parent) {
				st = r.state
				s.resolveCtr.arenaHits.Add(1)
			}
		}
		if st == nil {
			s.resolveCtr.arenaMisses.Add(1)
		}
	default:
		s.resolveCtr.arenaMisses.Add(1)
	}
	res, next, info := scg.ResolveState(d, st, opt, scg.ResolveOptions{WarmStart: ro.WarmStart})
	if info.Fallback && st != nil {
		s.resolveCtr.fallbacks.Add(1)
	}
	s.resolveCtr.compsReused.Add(int64(info.CompsReused))
	s.resolveCtr.compsSolved.Add(int64(info.CompsSolved))
	keep := &Resolvable{state: next}
	s.admit(d.Child, keep)
	return res, keep
}

// ResolveStats snapshots the session's incremental-resolve counters.
func (s *Solver) ResolveStats() ResolveStats { return s.resolveCtr.snapshot() }

// ArenaStats snapshots the ancestor arena's counters (zero without an
// arena).
func (s *Solver) ArenaStats() ArenaStats { return s.arena.Stats() }

// ArenaStats is the ancestor arena's counter snapshot.
type ArenaStats = solvecache.ArenaStats

// admit stores a kept state in the ancestor arena.
func (s *Solver) admit(p *Problem, r *Resolvable) {
	if s.arena != nil {
		s.arena.Put(arenaKey(p), r)
	}
}

// arenaKey is the arena's lookup key: the problem's own-label
// structural fingerprint (canon.ProblemKey), cheap enough to compute
// per call and validated by full equality on every hit.
func arenaKey(p *Problem) solvecache.Key {
	fp := canon.ProblemKey(p)
	return solvecache.Key{Hi: fp.Hi, Lo: fp.Lo}
}
