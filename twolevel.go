package ucp

import (
	"fmt"
	"io"
	"os"
	"time"

	"ucp/internal/budget"
	"ucp/internal/cube"
	"ucp/internal/espresso"
	"ucp/internal/pla"
	"ucp/internal/primes"
)

// PLA is a parsed Berkeley-format PLA: the ON-set F, don't-care set D
// and OFF-set R over a common multiple-output cube space.
type PLA = pla.File

// Cover is a multiple-output sum-of-products over a cube space.
type Cover = cube.Cover

// Space describes the boolean space of a cover.
type Space = cube.Space

// ParsePLA reads a PLA file from r (.i/.o headers, {0,1,-} input
// field, .type f/fd/fr/fdr output semantics).
func ParsePLA(r io.Reader) (f *PLA, err error) {
	defer malformed(&err)
	defer guard(&err)
	return pla.Parse(r)
}

// ParsePLAFile reads a PLA from the named file.  A failed open passes
// through untagged; parse failures wrap ErrMalformedInput.
func ParsePLAFile(path string) (p *PLA, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParsePLA(f)
}

// CostModel selects the covering objective: the number of products
// (the paper's primary cost) or products weighted by literal count.
type CostModel = primes.CostModel

// Cost models for BuildCovering / MinimizeSCG.
const (
	UnitCost    = primes.UnitCost
	LiteralCost = primes.LiteralCost
)

// TwoLevelResult is the outcome of a two-level minimisation.
type TwoLevelResult struct {
	Cover    *Cover  // the minimised cover
	Products int     // number of product terms (the paper's cost)
	Literals int     // total input literals (the secondary objective)
	LB       float64 // certified lower bound on the minimum (0 if n/a)
	// ProvedOptimal is set when LB certifies the cover size.
	ProvedOptimal bool
	// Covering-formulation statistics.
	Primes, Rows       int // primes and ON-minterm rows of the UCP
	CoreRows, CoreCols int // cyclic core size
	CyclicCoreTime     time.Duration
	TotalTime          time.Duration
	// Interrupted reports that the budget cut the minimisation short
	// (during prime generation or during the covering solve).  The
	// cover is still a valid implementation of the function; LB and
	// ProvedOptimal are conservative (a partial prime set certifies no
	// bound on the true minimum).
	Interrupted bool
	// StopReason says which budget limit ran out.
	StopReason StopReason
	// CacheHits / CacheMisses report how the session cache served the
	// underlying solve (the covering solve for the SCG and exact
	// pipelines, the whole minimisation for Espresso); both stay zero
	// without a cache.  TTHits counts branch-and-bound
	// transposition-table cutoffs (exact pipeline only).
	CacheHits   int64
	CacheMisses int64
	TTHits      int64
	// ZDD engine profile of the implicit reduction phase (SCG pipeline
	// only; all zero for Espresso, the exact pipeline, or when the
	// dense shortcut claimed the instance): high-water node store,
	// live and plain-equivalent nodes of the surviving family, and
	// mark-sweep collections.  See scg.Stats.
	ZDDNodes       int
	ZDDLiveNodes   int
	ZDDPlainNodes  int
	ZDDCollections int
	// Shard counters of the out-of-core sharded covering solve
	// (SCGOptions.MemBudget > 0); all zero on direct solves.  See
	// scg.Stats.
	ShardComponents int
	ShardSpilled    int
	ShardRespilled  int
	ShardPeakBytes  int64
	ShardDegraded   int
}

// BuildCovering reformulates the minimisation of f (ON-set F, DC-set
// D) as a unate covering problem over the function's primes, returning
// the problem and the prime cover indexed by its columns.
func BuildCovering(f *PLA, cm CostModel) (p *Problem, c *Cover, err error) {
	defer guard(&err)
	p, c, _, err = buildCovering(f, cm, nil)
	return p, c, err
}

// buildCovering is BuildCovering under a budget: when the tracker cuts
// prime generation short, the covering problem ranges over a partial
// implicant set that still contains every cube of F ∪ D, so the
// formulation stays feasible and every solution is a valid cover —
// complete=false just means its optimum may exceed the true minimum.
// Prime generation picks its engine automatically: the dense bit-slice
// sweep when the function enumerates within the lattice limits,
// iterated consensus otherwise (see primes.GenerateAutoBudget).
func buildCovering(f *PLA, cm CostModel, tr *budget.Tracker) (*Problem, *Cover, bool, error) {
	prs, complete := primes.GenerateAutoBudget(f.F, f.DontCares(), tr)
	prob, _, err := primes.BuildCovering(f.F, f.DontCares(), prs, cm)
	if err != nil {
		return nil, nil, complete, err
	}
	return prob, prs, complete, nil
}

// MinimizeSCG minimises the PLA with the paper's full pipeline:
// prime generation, Quine–McCluskey covering formulation, implicit
// (ZDD) and explicit reductions, and the ZDD_SCG lagrangian heuristic.
// The budget in opt spans the whole pipeline.
func MinimizeSCG(f *PLA, opt SCGOptions) (out *TwoLevelResult, err error) {
	defer guard(&err)
	t0 := time.Now()
	tr := opt.Budget.Tracker()
	prob, prs, complete, err := buildCovering(f, UnitCost, tr)
	if err != nil {
		return nil, err
	}
	res := SolveSCG(prob, opt)
	if res.Solution == nil {
		return nil, fmt.Errorf("ucp: covering problem unexpectedly infeasible")
	}
	cover := primes.CoverFromColumns(prs, res.Solution)
	out = &TwoLevelResult{
		Cover:           cover,
		Products:        res.Cost,
		Literals:        cover.Literals(),
		LB:              res.LB,
		ProvedOptimal:   res.ProvedOptimal,
		Primes:          prs.Len(),
		Rows:            len(prob.Rows),
		CoreRows:        res.Stats.CoreRows,
		CoreCols:        res.Stats.CoreCols,
		CyclicCoreTime:  res.Stats.CyclicCoreTime,
		TotalTime:       time.Since(t0),
		Interrupted:     res.Interrupted || !complete,
		StopReason:      res.StopReason,
		CacheHits:       res.Stats.CacheHits,
		CacheMisses:     res.Stats.CacheMisses,
		ZDDNodes:        res.Stats.ZDDNodes,
		ZDDLiveNodes:    res.Stats.ZDDLiveNodes,
		ZDDPlainNodes:   res.Stats.ZDDPlainNodes,
		ZDDCollections:  res.Stats.ZDDCollections,
		ShardComponents: res.Stats.ShardComponents,
		ShardSpilled:    res.Stats.ShardSpilled,
		ShardRespilled:  res.Stats.ShardRespilled,
		ShardPeakBytes:  res.Stats.ShardPeakBytes,
		ShardDegraded:   res.Stats.ShardDegraded,
	}
	if !complete {
		// The covering ranged over a partial implicant set: its bound
		// does not apply to the true minimum over all primes.
		out.LB = 0
		out.ProvedOptimal = false
		if out.StopReason == StopNone {
			out.StopReason = tr.Reason()
		}
	}
	return out, nil
}

// MinimizeExact minimises the PLA exactly: prime generation, covering
// formulation and branch and bound.  On hard instances bound the
// search with ExactOptions.MaxNodes or ExactOptions.Budget; the result
// then reports the best cover found with Interrupted set and a zero
// LB.
func MinimizeExact(f *PLA, opt ExactOptions) (out *TwoLevelResult, err error) {
	defer guard(&err)
	t0 := time.Now()
	tr := opt.Budget.Tracker()
	prob, prs, complete, err := buildCovering(f, UnitCost, tr)
	if err != nil {
		return nil, err
	}
	res := SolveExact(prob, opt)
	if res.Solution == nil {
		return nil, fmt.Errorf("ucp: exact search found no cover (node budget exhausted?)")
	}
	cover := primes.CoverFromColumns(prs, res.Solution)
	out = &TwoLevelResult{
		Cover:         cover,
		Products:      res.Cost,
		Literals:      cover.Literals(),
		ProvedOptimal: res.Optimal && complete,
		Primes:        prs.Len(),
		Rows:          len(prob.Rows),
		TotalTime:     time.Since(t0),
		Interrupted:   res.Interrupted || !complete,
		StopReason:    res.StopReason,
		TTHits:        res.TTHits,
	}
	if res.CacheHit {
		out.CacheHits = 1
	} else if opt.Cache != nil {
		out.CacheMisses = 1
	}
	if out.ProvedOptimal {
		out.LB = float64(res.Cost)
	} else if complete {
		// The search bound is valid for the true minimum as long as
		// the covering formulation saw every prime.
		out.LB = float64(res.LB)
	}
	if !complete && out.StopReason == StopNone {
		out.StopReason = tr.Reason()
	}
	return out, nil
}

// EspressoMode selects the comparison minimiser's effort.
type EspressoMode = espresso.Mode

// Espresso effort levels.
const (
	EspressoNormal = espresso.Normal
	EspressoStrong = espresso.Strong
)

// MinimizeEspresso minimises the PLA with the Espresso-style
// expand/irredundant/reduce heuristic (the baseline of the paper's
// Tables 1 and 2).  It never certifies optimality.
func MinimizeEspresso(f *PLA, mode EspressoMode) *TwoLevelResult {
	return MinimizeEspressoBudget(f, mode, Budget{})
}

// MinimizeEspressoBudget is MinimizeEspresso under a budget: the
// improvement loop stops at the first pass boundary after the budget
// runs out, where the working cover is always a valid implementation
// of the function.
func MinimizeEspressoBudget(f *PLA, mode EspressoMode, b Budget) *TwoLevelResult {
	return minimizeEspresso(f, mode, b, nil)
}

// minimizeEspresso runs the Espresso loop, memoizing the whole
// minimisation in cache when one is supplied (the Solver session
// path).
func minimizeEspresso(f *PLA, mode EspressoMode, b Budget, cache *Cache) *TwoLevelResult {
	t0 := time.Now()
	tr := b.Tracker()
	res := espresso.MinimizeCached(f.F, f.DontCares(), mode, tr, cache)
	out := &TwoLevelResult{
		Cover:       res.Cover,
		Products:    res.Cover.Len(),
		Literals:    res.Cover.Literals(),
		TotalTime:   time.Since(t0),
		Interrupted: res.Interrupted,
		StopReason:  tr.Reason(),
	}
	if res.CacheHit {
		out.CacheHits = 1
	} else if cache != nil {
		out.CacheMisses = 1
	}
	return out
}

// Equivalent reports whether the cover implements the PLA's function:
// it covers the whole ON-set and stays inside ON ∪ DC.
func Equivalent(f *PLA, cover *Cover) bool {
	onDC := f.F.Clone()
	if d := f.DontCares(); d != nil {
		for _, c := range d.Cubes {
			onDC.Add(c)
		}
	}
	coverPlusDC := cover.Clone()
	if d := f.DontCares(); d != nil {
		for _, c := range d.Cubes {
			coverPlusDC.Add(c)
		}
	}
	return onDC.ContainsCover(cover) && coverPlusDC.ContainsCover(f.F)
}
