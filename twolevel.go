package ucp

import (
	"fmt"
	"io"
	"os"
	"time"

	"ucp/internal/cube"
	"ucp/internal/espresso"
	"ucp/internal/pla"
	"ucp/internal/primes"
)

// PLA is a parsed Berkeley-format PLA: the ON-set F, don't-care set D
// and OFF-set R over a common multiple-output cube space.
type PLA = pla.File

// Cover is a multiple-output sum-of-products over a cube space.
type Cover = cube.Cover

// Space describes the boolean space of a cover.
type Space = cube.Space

// ParsePLA reads a PLA file from r (.i/.o headers, {0,1,-} input
// field, .type f/fd/fr/fdr output semantics).
func ParsePLA(r io.Reader) (*PLA, error) { return pla.Parse(r) }

// ParsePLAFile reads a PLA from the named file.
func ParsePLAFile(path string) (*PLA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pla.Parse(f)
}

// CostModel selects the covering objective: the number of products
// (the paper's primary cost) or products weighted by literal count.
type CostModel = primes.CostModel

// Cost models for BuildCovering / MinimizeSCG.
const (
	UnitCost    = primes.UnitCost
	LiteralCost = primes.LiteralCost
)

// TwoLevelResult is the outcome of a two-level minimisation.
type TwoLevelResult struct {
	Cover    *Cover  // the minimised cover
	Products int     // number of product terms (the paper's cost)
	Literals int     // total input literals (the secondary objective)
	LB       float64 // certified lower bound on the minimum (0 if n/a)
	// ProvedOptimal is set when LB certifies the cover size.
	ProvedOptimal bool
	// Covering-formulation statistics.
	Primes, Rows       int // primes and ON-minterm rows of the UCP
	CoreRows, CoreCols int // cyclic core size
	CyclicCoreTime     time.Duration
	TotalTime          time.Duration
}

// BuildCovering reformulates the minimisation of f (ON-set F, DC-set
// D) as a unate covering problem over the function's primes, returning
// the problem and the prime cover indexed by its columns.
func BuildCovering(f *PLA, cm CostModel) (*Problem, *Cover, error) {
	prs := primes.Generate(f.F, f.DontCares())
	prob, _, err := primes.BuildCovering(f.F, f.DontCares(), prs, cm)
	if err != nil {
		return nil, nil, err
	}
	return prob, prs, nil
}

// MinimizeSCG minimises the PLA with the paper's full pipeline:
// prime generation, Quine–McCluskey covering formulation, implicit
// (ZDD) and explicit reductions, and the ZDD_SCG lagrangian heuristic.
func MinimizeSCG(f *PLA, opt SCGOptions) (*TwoLevelResult, error) {
	t0 := time.Now()
	prob, prs, err := BuildCovering(f, UnitCost)
	if err != nil {
		return nil, err
	}
	res := SolveSCG(prob, opt)
	if res.Solution == nil {
		return nil, fmt.Errorf("ucp: covering problem unexpectedly infeasible")
	}
	cover := primes.CoverFromColumns(prs, res.Solution)
	out := &TwoLevelResult{
		Cover:          cover,
		Products:       res.Cost,
		Literals:       cover.Literals(),
		LB:             res.LB,
		ProvedOptimal:  res.ProvedOptimal,
		Primes:         prs.Len(),
		Rows:           len(prob.Rows),
		CoreRows:       res.Stats.CoreRows,
		CoreCols:       res.Stats.CoreCols,
		CyclicCoreTime: res.Stats.CyclicCoreTime,
		TotalTime:      time.Since(t0),
	}
	return out, nil
}

// MinimizeExact minimises the PLA exactly: prime generation, covering
// formulation and branch and bound.  On hard instances bound the
// search with ExactOptions.MaxNodes; the result then reports
// Optimal=false via a zero LB.
func MinimizeExact(f *PLA, opt ExactOptions) (*TwoLevelResult, error) {
	t0 := time.Now()
	prob, prs, err := BuildCovering(f, UnitCost)
	if err != nil {
		return nil, err
	}
	res := SolveExact(prob, opt)
	if res.Solution == nil {
		return nil, fmt.Errorf("ucp: exact search found no cover (node budget exhausted?)")
	}
	cover := primes.CoverFromColumns(prs, res.Solution)
	out := &TwoLevelResult{
		Cover:         cover,
		Products:      res.Cost,
		Literals:      cover.Literals(),
		ProvedOptimal: res.Optimal,
		Primes:        prs.Len(),
		Rows:          len(prob.Rows),
		TotalTime:     time.Since(t0),
	}
	if res.Optimal {
		out.LB = float64(res.Cost)
	}
	return out, nil
}

// EspressoMode selects the comparison minimiser's effort.
type EspressoMode = espresso.Mode

// Espresso effort levels.
const (
	EspressoNormal = espresso.Normal
	EspressoStrong = espresso.Strong
)

// MinimizeEspresso minimises the PLA with the Espresso-style
// expand/irredundant/reduce heuristic (the baseline of the paper's
// Tables 1 and 2).  It never certifies optimality.
func MinimizeEspresso(f *PLA, mode EspressoMode) *TwoLevelResult {
	t0 := time.Now()
	res := espresso.Minimize(f.F, f.DontCares(), mode)
	return &TwoLevelResult{
		Cover:     res.Cover,
		Products:  res.Cover.Len(),
		Literals:  res.Cover.Literals(),
		TotalTime: time.Since(t0),
	}
}

// Equivalent reports whether the cover implements the PLA's function:
// it covers the whole ON-set and stays inside ON ∪ DC.
func Equivalent(f *PLA, cover *Cover) bool {
	onDC := f.F.Clone()
	if d := f.DontCares(); d != nil {
		for _, c := range d.Cubes {
			onDC.Add(c)
		}
	}
	coverPlusDC := cover.Clone()
	if d := f.DontCares(); d != nil {
		for _, c := range d.Cubes {
			coverPlusDC.Add(c)
		}
	}
	return onDC.ContainsCover(cover) && coverPlusDC.ContainsCover(f.F)
}
