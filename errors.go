package ucp

import (
	"errors"
	"fmt"

	"ucp/internal/budget"
	"ucp/internal/matrix"
	"ucp/internal/primes"
)

// The public error taxonomy.  Every error returned by the package is
// classifiable with errors.Is against one of these sentinels (or is an
// environmental error like a failed file open, passed through
// unwrapped), so a server front end can map failures to status codes
// without string matching.
var (
	// ErrInfeasible reports a covering problem in which some row is
	// not covered by any column, so no cover exists.  The instance is
	// well-formed; it just has no solution.
	ErrInfeasible = matrix.ErrInfeasible

	// ErrBudgetExceeded reports a Budget that ran out (deadline,
	// cancellation, search or iteration cap) before the operation
	// could finish.  Solvers normally degrade instead of erroring —
	// they return their best feasible result with Interrupted set —
	// so this sentinel surfaces where no partial result exists;
	// StopReason.Err() produces it from a reported stop reason.
	ErrBudgetExceeded = budget.ErrExceeded

	// ErrMalformedInput tags every parse or validation failure of the
	// input formats (covering-matrix text, OR-Library, PLA) and of
	// NewProblem's structural checks.
	ErrMalformedInput = errors.New("ucp: malformed input")

	// ErrCoveringLimit reports a PLA whose input count exceeds
	// MaxCoveringInputs, so the explicit Quine–McCluskey covering
	// matrix cannot be built.  The input is well-formed — the instance
	// is just too large for the QM pipeline — so it is distinct from
	// ErrMalformedInput; servers should map it to an unprocessable-
	// instance client error rather than an internal failure.
	ErrCoveringLimit = primes.ErrCoveringLimit
)

// MaxCoveringInputs is the largest PLA input count the two-level
// pipeline can handle: beyond it the explicit covering matrix (one row
// per ON-minterm) does not fit in memory.
const MaxCoveringInputs = primes.MaxCoveringInputs

// malformed tags a returned parse/validation error with
// ErrMalformedInput.  Infeasibility and the covering-size limit are
// well-formed properties of the instance, not input errors, and keep
// their own sentinels.  Deferred after guard (so it runs second and
// also tags converted panics).
func malformed(errp *error) {
	err := *errp
	if err == nil || errors.Is(err, ErrMalformedInput) || errors.Is(err, ErrInfeasible) || errors.Is(err, ErrCoveringLimit) {
		return
	}
	*errp = fmt.Errorf("%w: %w", ErrMalformedInput, err)
}
