package ucp

import (
	"errors"
	"fmt"

	"ucp/internal/budget"
	"ucp/internal/matrix"
)

// The public error taxonomy.  Every error returned by the package is
// classifiable with errors.Is against one of these sentinels (or is an
// environmental error like a failed file open, passed through
// unwrapped), so a server front end can map failures to status codes
// without string matching.
var (
	// ErrInfeasible reports a covering problem in which some row is
	// not covered by any column, so no cover exists.  The instance is
	// well-formed; it just has no solution.
	ErrInfeasible = matrix.ErrInfeasible

	// ErrBudgetExceeded reports a Budget that ran out (deadline,
	// cancellation, search or iteration cap) before the operation
	// could finish.  Solvers normally degrade instead of erroring —
	// they return their best feasible result with Interrupted set —
	// so this sentinel surfaces where no partial result exists;
	// StopReason.Err() produces it from a reported stop reason.
	ErrBudgetExceeded = budget.ErrExceeded

	// ErrMalformedInput tags every parse or validation failure of the
	// input formats (covering-matrix text, OR-Library, PLA) and of
	// NewProblem's structural checks.
	ErrMalformedInput = errors.New("ucp: malformed input")
)

// malformed tags a returned parse/validation error with
// ErrMalformedInput.  Infeasibility is a well-formed property of the
// instance, not an input error, and keeps its own sentinel.  Deferred
// after guard (so it runs second and also tags converted panics).
func malformed(errp *error) {
	err := *errp
	if err == nil || errors.Is(err, ErrMalformedInput) || errors.Is(err, ErrInfeasible) {
		return
	}
	*errp = fmt.Errorf("%w: %w", ErrMalformedInput, err)
}
